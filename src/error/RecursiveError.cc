#include "error/RecursiveError.hh"

#include "codes/ConcatenatedCode.hh"
#include "common/Logging.hh"
#include "error/BatchAncillaSim.hh"

namespace qc {

namespace {

/**
 * Probability a block move fails uncorrectably: seven concurrent
 * sub-moves (each at `subMoveRate`, the per-sub-unit rate over the
 * moveScalePerLevel-times longer path) must produce a weight >= 2
 * pattern the distance-3 code cannot absorb: C(7,2) draws.
 */
double
blockMoveFailureRate(double lowerMoveRate)
{
    const double sub =
        ConcatenatedSteane::moveScalePerLevel * lowerMoveRate;
    return 21.0 * sub * sub;
}

} // namespace

double
RecursiveErrorAnalysis::projectedFailureRate(int level) const
{
    if (level < 1 || levels.size() < 2)
        return 0;
    // Seed the recursion from the measured level-1 point and apply
    // f_{l+1} = A f_l^2 upward.
    double f = levels[1].pGate;
    for (int l = 1; l < level; ++l)
        f = gateAmplification * f * f;
    return f;
}

bool
RecursiveErrorAnalysis::belowThreshold() const
{
    return !levels.empty() && pseudoThreshold > 0
        && levels[0].pGate < pseudoThreshold;
}

LevelErrorRates
levelOneLogicalRates(const PrepEstimate &level1,
                     const ErrorParams &physical)
{
    LevelErrorRates rates;
    rates.level = 1;
    // The QEC step after every encoded gate is only as good as its
    // ancillae (Section 2.3): the verified-and-corrected block
    // failure rate is the per-op logical gate rate.
    rates.pGate = level1.errorRate();
    rates.pMove = blockMoveFailureRate(physical.pMove);
    return rates;
}

RecursiveErrorAnalysis
analyzeRecursiveError(ErrorParams physical, MovementModel movement,
                      std::uint64_t seed, std::uint64_t level1Trials,
                      std::uint64_t level2Trials)
{
    if (level1Trials == 0)
        panic("analyzeRecursiveError: level1Trials must be > 0");

    RecursiveErrorAnalysis out;
    out.levels.push_back(
        LevelErrorRates{0, physical.pGate, physical.pMove});

    // Level 1: the Section 2.3 Monte Carlo at physical rates.
    BatchAncillaSim sim1(physical, movement, seed);
    out.level1Prep = sim1.estimate(ZeroPrepStrategy::VerifyAndCorrect,
                                   level1Trials);
    out.level1AcceptRate = 1.0 - out.level1Prep.discardRate();
    LevelErrorRates l1 =
        levelOneLogicalRates(out.level1Prep, physical);
    if (out.level1Prep.failures == 0) {
        // Deep below threshold a finite run can see zero failures;
        // a hard zero would collapse the fit and the level-2 pass.
        // Fall back to the 95% Wilson upper bound: a conservative
        // but non-degenerate rate.
        l1.pGate = out.level1Prep.errorInterval().hi;
    }
    out.levels.push_back(l1);

    // Quadratic fit: two independent faults must conspire to slip a
    // logical error past verification + correction.
    const double p = physical.pGate;
    const double f1 = out.levels[1].pGate;
    out.gateAmplification = p > 0 ? f1 / (p * p) : 0;
    out.pseudoThreshold = out.gateAmplification > 0
        ? 1.0 / out.gateAmplification
        : 0;

    // Level 2: re-run the self-similar schedule with level-1 rates
    // as the "physical" rates (the two-level Monte Carlo mode).
    LevelErrorRates l2;
    l2.level = 2;
    l2.pMove = blockMoveFailureRate(out.levels[1].pMove);
    if (level2Trials > 0 && f1 > 0) {
        ErrorParams asPhysical;
        asPhysical.pGate = out.levels[1].pGate;
        asPhysical.pMove = out.levels[1].pMove;
        BatchAncillaSim sim2(asPhysical, movement, seed + 1);
        out.level2Prep = sim2.estimate(
            ZeroPrepStrategy::VerifyAndCorrect, level2Trials);
        out.level2AcceptRate = 1.0 - out.level2Prep.discardRate();
        l2.pGate = out.level2Prep.errorRate();
    } else {
        l2.pGate = out.gateAmplification * f1 * f1;
    }
    out.levels.push_back(l2);
    return out;
}

} // namespace qc
