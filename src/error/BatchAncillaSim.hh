/**
 * @file
 * Batched (bit-parallel) Monte Carlo estimation of the encoded-zero
 * ancilla preparation strategies and the pi/8 conversion: the
 * 64-trials-per-word-op production engine behind
 * AncillaPrepSimulator::estimate / estimatePi8.
 *
 * Semantics match the scalar reference (AncillaPrepSimulator::
 * simulateOnce) trial-for-trial in distribution: the same circuits,
 * the same error injection sites and Pauli kinds, the same
 * verification-retry and correction-discard control flow. Per-trial
 * divergence (a block failing verification, a correction stage
 * detecting an error) is handled with active-trial masks: finished
 * trials are tallied by popcount and dropped from the mask, while
 * stragglers rerun in lockstep until the batch drains.
 *
 * estimate()/estimatePi8() shard the batch sequence across worker
 * threads. Each 64*wordsPerQubit-trial batch owns an independent RNG
 * stream split deterministically from the run seed, so results are
 * bit-identical for a given (seed, trial count) regardless of thread
 * count or scheduling.
 */

#ifndef QC_ERROR_BATCH_ANCILLA_SIM_HH
#define QC_ERROR_BATCH_ANCILLA_SIM_HH

#include <cstdint>

#include "error/AncillaSim.hh"
#include "error/BatchPauliFrame.hh"

namespace qc {

/** Tuning knobs for the batched engine. */
struct BatchSimConfig
{
    /**
     * Words per qubit bit-plane: each batch runs 64 * wordsPerQubit
     * concurrent trials. A few hundred trials per batch amortizes
     * the per-batch setup without inflating straggler rework in the
     * retry loops.
     */
    int wordsPerQubit = 4;

    /**
     * Worker threads sharding the batch sequence. 0 selects
     * std::thread::hardware_concurrency(). Results are independent
     * of this value.
     */
    int threads = 1;
};

/**
 * Bit-parallel batched counterpart of AncillaPrepSimulator.
 *
 * Successive estimate() calls on one instance consume a
 * deterministic sequence of run seeds, so repeated estimates are
 * independent but a freshly constructed instance always reproduces
 * the same sequence.
 */
class BatchAncillaSim
{
  public:
    BatchAncillaSim(ErrorParams errors, MovementModel movement,
                    std::uint64_t seed,
                    CorrectionSemantics semantics =
                        CorrectionSemantics::DiscardOnSyndrome,
                    BatchSimConfig config = {});

    /** Batched equivalent of AncillaPrepSimulator::estimate. */
    PrepEstimate estimate(ZeroPrepStrategy strategy,
                          std::uint64_t trials);

    /** Batched equivalent of AncillaPrepSimulator::estimatePi8. */
    PrepEstimate estimatePi8(std::uint64_t trials);

    /** Trials advanced per batch (64 * wordsPerQubit). */
    int batchTrials() const { return 64 * config_.wordsPerQubit; }

  private:
    PrepEstimate run(ZeroPrepStrategy strategy, bool pi8,
                     std::uint64_t trials);

    ErrorParams errors_;
    MovementModel movement_;
    CorrectionSemantics semantics_;
    BatchSimConfig config_;
    Rng seeder_;
};

} // namespace qc

#endif // QC_ERROR_BATCH_ANCILLA_SIM_HH
