/**
 * @file
 * Batched (bit-parallel) Monte Carlo estimation of the encoded-zero
 * ancilla preparation strategies and the pi/8 conversion: the
 * 64-trials-per-word-op production engine behind
 * AncillaPrepSimulator::estimate / estimatePi8.
 *
 * Semantics match the scalar reference (AncillaPrepSimulator::
 * simulateOnce) trial-for-trial in distribution: the same circuits,
 * the same error injection sites and Pauli kinds, the same
 * verification-retry and correction-discard control flow. Per-trial
 * divergence (a block failing verification, a correction stage
 * detecting an error) is handled with active-trial masks: finished
 * trials are tallied by popcount and dropped from the mask, while
 * stragglers rerun in lockstep until the batch drains.
 *
 * estimate()/estimatePi8() shard the batch sequence across worker
 * threads. Each 64*wordsPerQubit-trial batch owns an independent RNG
 * stream split deterministically from the run seed, so results are
 * bit-identical for a given (seed, trial count) regardless of thread
 * count or scheduling.
 */

#ifndef QC_ERROR_BATCH_ANCILLA_SIM_HH
#define QC_ERROR_BATCH_ANCILLA_SIM_HH

#include <cstdint>

#include "common/simd/SimdDispatch.hh"
#include "error/AncillaSim.hh"
#include "error/BatchPauliFrame.hh"
#include "error/ImportanceSampler.hh"

namespace qc {

/** Tuning knobs for the batched engine. */
struct BatchSimConfig
{
    /**
     * Words per qubit bit-plane: each batch runs 64 * wordsPerQubit
     * concurrent trials. A few thousand trials per batch amortizes
     * the per-batch setup and per-site RNG bookkeeping across the
     * SIMD lanes (the frame still fits L1 at 64 words) without
     * inflating straggler rework in the retry loops; measured
     * throughput on the basic-prep workload more than doubles going
     * from 4 to 64 words at every width.
     */
    int wordsPerQubit = 64;

    /**
     * Worker threads sharding the batch sequence. 0 selects
     * std::thread::hardware_concurrency(). Results are independent
     * of this value.
     */
    int threads = 1;

    /**
     * SIMD width of the frame loops. Auto resolves to the
     * QC_FORCE_WIDTH environment override if set, else the widest
     * width this CPU supports whose lanes a batch can fill. Every
     * width — including the scalar fallback — produces bit-identical
     * results; this knob only trades throughput.
     */
    simd::Width width = simd::Width::Auto;
};

/**
 * Bit-parallel batched counterpart of AncillaPrepSimulator.
 *
 * Successive estimate() calls on one instance consume a
 * deterministic sequence of run seeds, so repeated estimates are
 * independent but a freshly constructed instance always reproduces
 * the same sequence.
 */
class BatchAncillaSim
{
  public:
    BatchAncillaSim(ErrorParams errors, MovementModel movement,
                    std::uint64_t seed,
                    CorrectionSemantics semantics =
                        CorrectionSemantics::DiscardOnSyndrome,
                    BatchSimConfig config = {});

    /** Batched equivalent of AncillaPrepSimulator::estimate. */
    PrepEstimate estimate(ZeroPrepStrategy strategy,
                          std::uint64_t trials);

    /** Batched equivalent of AncillaPrepSimulator::estimatePi8. */
    PrepEstimate estimatePi8(std::uint64_t trials);

    /**
     * Rare-event importance-sampled estimate: stratify trials by
     * the number of injected (gate, movement) faults, weight each
     * stratum by its binomial prior, and combine per-stratum Wilson
     * intervals (see error/ImportanceSampler.hh for the estimator
     * math). Runs the scalar reference circuit through a fault
     * oracle — per-trial sequential logic does not bit-pack — so
     * its throughput is the scalar engine's, but deep-subthreshold
     * points get tight CIs at fixed cost where naive MC would need
     * billions of trials. Seeds draw from the same seeder sequence
     * as estimate(); sharded over config.threads deterministically.
     */
    StratifiedEstimate estimateStratified(ZeroPrepStrategy strategy,
                                          const ImportanceConfig &config);

    /** Stratified counterpart of estimatePi8. */
    StratifiedEstimate
    estimateStratifiedPi8(const ImportanceConfig &config);

    /** Trials advanced per batch (64 * wordsPerQubit). */
    int batchTrials() const { return 64 * config_.wordsPerQubit; }

    /** The SIMD width estimate() will run at (resolves Auto). */
    simd::Width resolvedWidth() const;

  private:
    PrepEstimate run(ZeroPrepStrategy strategy, bool pi8,
                     std::uint64_t trials);

    ErrorParams errors_;
    MovementModel movement_;
    CorrectionSemantics semantics_;
    BatchSimConfig config_;
    Rng seeder_;
};

} // namespace qc

#endif // QC_ERROR_BATCH_ANCILLA_SIM_HH
