/**
 * @file
 * Fixed-fault-count importance sampling for deep-subthreshold
 * preparation error rates (Bravyi & Vargo-style subset sampling).
 *
 * Naive Monte Carlo at a failure rate f needs ~100/f trials for a
 * tight CI — hopeless at the apply-fix 4.5e-6 point and impossible
 * at projected level-2 rates (~1e-12). This sampler instead
 * stratifies trials by the number of injected faults per class:
 *
 *   1. A noiseless dry run counts the nominal path's fault sites
 *      per class: N_g gate sites (prep/1q/2q/measurement at pGate)
 *      and N_m movement sites (at pMove). Faults only ever add
 *      work (verify retries, correction recycles, extra extraction
 *      rounds), so every realized path visits at least N_g / N_m
 *      sites of each class.
 *   2. The failure probability decomposes exactly over the joint
 *      count (A, B) of faults among the first N_g gate and first
 *      N_m movement sites realized:
 *
 *          f = sum_{a,b} P(A=a) P(B=b) f_{ab},
 *
 *      with A ~ Binomial(N_g, pGate) and B ~ Binomial(N_m, pMove)
 *      exactly (each realized site is a fresh independent
 *      Bernoulli, so the first-N indicators are i.i.d. even though
 *      sites are revealed adaptively).
 *   3. Each stratum (a, b) with a + b <= maxFaults is estimated by
 *      dedicated trials whose oracle plants *exactly* a gate and b
 *      movement faults among those first sites, via sequential
 *      conditional sampling: at a class-c site with r faults left
 *      to place among m remaining slots, fault with probability
 *      r/m (a uniformly random size-r subset, valid under adaptive
 *      revelation). Sites beyond the first N_c (only reachable
 *      when a fault already fired) sample at the natural rate.
 *      The (0, 0) stratum is analytic: zero faults on the nominal
 *      path cannot fail, f_00 = 0.
 *
 * The combined estimate weighs per-stratum Wilson intervals by the
 * binomial priors; the truncated tail mass (strata beyond
 * maxFaults) is added to the upper bound, so the interval is
 * conservative. Priors use iterative pmf recurrences (no lgamma /
 * pow), keeping results bit-identical across platforms.
 *
 * The sampler drives the *scalar* reference circuit through the
 * FaultOracle seam — per-trial sequential decisions do not
 * bit-pack — so its throughput is the scalar engine's; its win is
 * statistical: variance concentrates in strata that actually fail,
 * giving deep-subthreshold points tight CIs at fixed cost.
 */

#ifndef QC_ERROR_IMPORTANCE_SAMPLER_HH
#define QC_ERROR_IMPORTANCE_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/Params.hh"
#include "common/Rng.hh"
#include "common/Stats.hh"
#include "error/AncillaSim.hh"

namespace qc {

/** Knobs for the stratified estimator. */
struct ImportanceConfig
{
    /** Truncation order: strata with a + b <= maxFaults are run. */
    int maxFaults = 4;

    /** Monte Carlo trials per (non-analytic) stratum. */
    std::uint64_t trialsPerStratum = 100000;

    /**
     * Strata whose prior falls below this are skipped, their mass
     * folded into the truncation tail (still conservative: the
     * tail is added to the upper confidence bound).
     */
    double minStratumPrior = 1e-18;
};

/** One (gateFaults, moveFaults) stratum's prior and tallies. */
struct StratumEstimate
{
    int gateFaults = 0;
    int moveFaults = 0;
    double prior = 0.0; ///< P(A=a) * P(B=b)
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
    bool analytic = false; ///< (0,0): f == 0 exactly, no trials

    /** Conditional failure rate estimate f_ab. */
    double rate() const;

    /** 95% Wilson interval on f_ab ({0,0} for the analytic stratum). */
    Interval interval() const;
};

/** Combined stratified estimate. */
struct StratifiedEstimate
{
    std::vector<StratumEstimate> strata;
    std::uint64_t gateSites = 0; ///< nominal-path gate-class sites
    std::uint64_t moveSites = 0; ///< nominal-path movement sites
    double truncatedPrior = 0.0; ///< prior mass outside the strata
    std::uint64_t totalTrials = 0;

    /** Prior-weighted point estimate of the failure rate. */
    double errorRate() const;

    /**
     * Conservative 95% interval: prior-weighted per-stratum Wilson
     * bounds, with the truncated prior mass added to the upper
     * bound (its conditional failure rate is bounded by 1).
     */
    Interval errorInterval() const;
};

/**
 * Stratified rare-event estimator over the scalar preparation
 * circuits. Deterministic for a fixed (seeder, config): per-stratum
 * seeds are pre-split, so results are independent of `threads`.
 */
class StratifiedPrepSampler
{
  public:
    StratifiedPrepSampler(ErrorParams errors, MovementModel movement,
                          Rng seeder, CorrectionSemantics semantics,
                          int threads = 1);

    /** Stratified estimate of a zero-prep strategy's failure rate. */
    StratifiedEstimate estimate(ZeroPrepStrategy strategy,
                                const ImportanceConfig &config);

    /** Stratified estimate of the pi/8 conversion failure rate. */
    StratifiedEstimate estimatePi8(const ImportanceConfig &config);

    /**
     * Binomial pmf P(K = k | n, p) by iterative recurrence (no
     * transcendentals beyond +-*-/ — bit-identical across
     * platforms). Exposed for the stratum-weight unit tests.
     */
    static double binomialPmf(std::uint64_t n, double p,
                              std::uint64_t k);

  private:
    StratifiedEstimate run(ZeroPrepStrategy strategy, bool pi8,
                           const ImportanceConfig &config);

    ErrorParams errors_;
    MovementModel movement_;
    CorrectionSemantics semantics_;
    Rng seeder_;
    int threads_;
};

} // namespace qc

#endif // QC_ERROR_IMPORTANCE_SAMPLER_HH
