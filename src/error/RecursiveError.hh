/**
 * @file
 * Recursive (concatenated-code) error-rate analytics: what the
 * level-1 Monte Carlo acceptance/failure rates of Section 2.3 imply
 * for level-2 encoded blocks.
 *
 * Concatenation is self-similar, so the level-2 preparation circuit
 * is the level-1 circuit with every physical operation replaced by
 * a level-1 encoded operation. Two consequences drive this module:
 *
 *  1. *Analytic recursion.* A level-1 verified-and-corrected block
 *     fails with probability f1 ~= A * pGate^2 (two faults must
 *     conspire; single faults are caught by the distance-3 code plus
 *     verification). The amplification A is a property of the
 *     circuit, not the rate, so fitting A = f1 / pGate^2 at the
 *     measured point projects every higher level:
 *         f_{l+1} = A * f_l^2,
 *     with pseudo-threshold p_th = 1/A (the rate at which
 *     re-encoding stops helping).
 *
 *  2. *Two-level Monte Carlo.* The same BatchAncillaSim engine
 *     re-runs the preparation schedule with the measured level-1
 *     logical rates standing in for the physical rates, giving an
 *     independent level-2 estimate to cross-validate the recursion
 *     (and the level-2 verification acceptance the factory designs
 *     need).
 *
 * All rates are probabilities per operation at the stated level;
 * trials/seeds follow the BatchAncillaSim conventions (results are
 * bit-identical for a fixed seed regardless of thread count). Deep
 * below threshold a finite level-1 run can observe zero failures;
 * the analysis then substitutes the 95% Wilson upper bound for the
 * level-1 rate so the fit and the level-2 pass stay meaningful
 * (conservative, and clearly marked by level1Prep.failures == 0).
 */

#ifndef QC_ERROR_RECURSIVE_ERROR_HH
#define QC_ERROR_RECURSIVE_ERROR_HH

#include <cstdint>
#include <vector>

#include "error/AncillaSim.hh"

namespace qc {

/** Effective per-operation error rates at one recursion level. */
struct LevelErrorRates
{
    int level = 0;    ///< 0 = physical ops, 1 = level-1 encoded, ...
    double pGate = 0; ///< per gate-type op (prep/1q/2q/measure)
    double pMove = 0; ///< per movement op (straight move or turn)
};

/** Outcome of the recursive error analysis. */
struct RecursiveErrorAnalysis
{
    /** Rates per level: [0] physical, [1] level-1, [2] level-2. */
    std::vector<LevelErrorRates> levels;

    /** Fitted quadratic amplification A in f_{l+1} = A * f_l^2. */
    double gateAmplification = 0;

    /**
     * Pseudo-threshold 1/A: the per-op rate below which each
     * additional concatenation level suppresses the logical error.
     */
    double pseudoThreshold = 0;

    /** Level-1 Monte Carlo (verify-and-correct, physical rates). */
    PrepEstimate level1Prep;

    /** Level-2 Monte Carlo (same schedule at level-1 rates). */
    PrepEstimate level2Prep;

    /** Per-attempt verification acceptance measured at level 1. */
    double level1AcceptRate = 1.0;

    /** Per-attempt verification acceptance measured at level 2. */
    double level2AcceptRate = 1.0;

    /** Analytic A-recursion projection of the level-l block failure
     *  rate (level >= 1), seeded from the measured level-1 point. */
    double projectedFailureRate(int level) const;

    /** True when the physical rate sits below pseudo-threshold. */
    bool belowThreshold() const;
};

/**
 * Run the full analysis: level-1 Monte Carlo at the physical rates,
 * the analytic A-fit, and the two-level Monte Carlo cross-check.
 *
 * @param physical     physical per-op error rates (Section 2.2)
 * @param movement     movement charges per gate (shared by both
 *                     levels: the factory layout is self-similar,
 *                     with the distance growth already folded into
 *                     the level-1 move rate)
 * @param seed         deterministic seed for both engines
 * @param level1Trials Monte Carlo trials at physical rates
 * @param level2Trials Monte Carlo trials at level-1 rates (level-2
 *                     failures are ~A f1^2, so this wants to be
 *                     larger; 0 skips the two-level pass and leaves
 *                     level2Prep empty with the analytic projection
 *                     in levels[2])
 */
RecursiveErrorAnalysis
analyzeRecursiveError(ErrorParams physical, MovementModel movement,
                      std::uint64_t seed = 1,
                      std::uint64_t level1Trials = 1 << 20,
                      std::uint64_t level2Trials = 1 << 22);

/**
 * The effective error rates seen by level-2 circuitry, derived from
 * a measured level-1 preparation estimate: gate rate = the level-1
 * verified-and-corrected block failure rate; move rate = the
 * probability a level-1 block movement (seven concurrent physical
 * sub-moves over a moveScalePerLevel-times longer path) deposits an
 * uncorrectable weight >= 2 pattern.
 */
LevelErrorRates levelOneLogicalRates(const PrepEstimate &level1,
                                     const ErrorParams &physical);

} // namespace qc

#endif // QC_ERROR_RECURSIVE_ERROR_HH
