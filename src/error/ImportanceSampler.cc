#include "error/ImportanceSampler.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

namespace qc {

namespace {

/**
 * Counting oracle: never faults, tallies the sites per class. With
 * no faults the circuit follows its deterministic noiseless path,
 * so the counts are the nominal-path site counts N_g and N_m. The
 * pi/8 fix-up coin is pinned to the minimal-site branch (no
 * fix-up) so the counts are a lower bound over every realized
 * path — the invariant the scheduled oracle's conditional sampling
 * rule needs.
 */
class CountingOracle final : public FaultOracle
{
  public:
    bool
    fault(Rng & /*rng*/, FaultClass cls, double /*p*/) override
    {
        if (cls == FaultClass::Gate)
            ++gateSites;
        else
            ++moveSites;
        return false;
    }

    bool coin(Rng & /*rng*/) override { return false; }

    std::uint64_t gateSites = 0;
    std::uint64_t moveSites = 0;
};

/**
 * Scheduled oracle: plants exactly `target` faults of each class
 * among the first `total` realized sites of that class, via the
 * sequential r-of-m rule (fault with probability remaining/slots —
 * a uniformly random subset of the slots, valid even though slots
 * are revealed one at a time). Sites past the first `total` sample
 * at their natural rate. beginTrial() rearms the schedule.
 */
class ScheduledOracle final : public FaultOracle
{
  public:
    void
    configure(std::uint64_t gate_sites, std::uint64_t move_sites,
              int gate_faults, int move_faults)
    {
        cls_[0].total = gate_sites;
        cls_[0].target = static_cast<std::uint64_t>(gate_faults);
        cls_[1].total = move_sites;
        cls_[1].target = static_cast<std::uint64_t>(move_faults);
    }

    void
    beginTrial()
    {
        for (auto &c : cls_) {
            c.visited = 0;
            c.remaining = c.target;
        }
    }

    bool
    fault(Rng &rng, FaultClass cls, double p) override
    {
        auto &c = cls_[cls == FaultClass::Gate ? 0 : 1];
        if (c.visited >= c.total)
            return rng.bernoulli(p); // beyond the nominal sites
        const std::uint64_t slots = c.total - c.visited;
        ++c.visited;
        if (c.remaining == 0)
            return false;
        if (rng.below(slots) < c.remaining) {
            --c.remaining;
            return true;
        }
        return false;
    }

  private:
    struct ClassState
    {
        std::uint64_t total = 0;
        std::uint64_t target = 0;
        std::uint64_t visited = 0;
        std::uint64_t remaining = 0;
    };
    ClassState cls_[2];
};

} // namespace

double
StratumEstimate::rate() const
{
    if (analytic || trials == 0)
        return 0.0;
    return static_cast<double>(failures)
        / static_cast<double>(trials);
}

Interval
StratumEstimate::interval() const
{
    if (analytic || trials == 0)
        return {0.0, 0.0};
    return wilsonInterval(failures, trials);
}

double
StratifiedEstimate::errorRate() const
{
    double f = 0.0;
    for (const StratumEstimate &s : strata)
        f += s.prior * s.rate();
    return f;
}

Interval
StratifiedEstimate::errorInterval() const
{
    Interval ci{0.0, 0.0};
    for (const StratumEstimate &s : strata) {
        const Interval si = s.interval();
        ci.lo += s.prior * si.lo;
        ci.hi += s.prior * si.hi;
    }
    ci.hi = std::min(1.0, ci.hi + truncatedPrior);
    return ci;
}

double
StratifiedPrepSampler::binomialPmf(std::uint64_t n, double p,
                                   std::uint64_t k)
{
    if (k > n)
        return 0.0;
    if (p <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0)
        return k == n ? 1.0 : 0.0;
    // pmf(0) = (1-p)^n by repeated multiplication, then the ratio
    // recurrence pmf(j+1) = pmf(j) * (n-j)/(j+1) * p/(1-p). Only
    // +-*-/ so the result is bit-identical across platforms; for
    // the subthreshold regime (n*p << 1) pmf(0) is ~1 and the
    // recurrence loses nothing to underflow where it matters.
    double pmf = 1.0;
    for (std::uint64_t i = 0; i < n; ++i)
        pmf *= 1.0 - p;
    const double ratio = p / (1.0 - p);
    for (std::uint64_t j = 0; j < k; ++j)
        pmf *= ratio * static_cast<double>(n - j)
            / static_cast<double>(j + 1);
    return pmf;
}

StratifiedPrepSampler::StratifiedPrepSampler(
    ErrorParams errors, MovementModel movement, Rng seeder,
    CorrectionSemantics semantics, int threads)
    : errors_(errors), movement_(movement), semantics_(semantics),
      seeder_(seeder), threads_(threads < 1 ? 1 : threads)
{
}

StratifiedEstimate
StratifiedPrepSampler::estimate(ZeroPrepStrategy strategy,
                                const ImportanceConfig &config)
{
    return run(strategy, /*pi8=*/false, config);
}

StratifiedEstimate
StratifiedPrepSampler::estimatePi8(const ImportanceConfig &config)
{
    return run(ZeroPrepStrategy::VerifyAndCorrect, /*pi8=*/true,
               config);
}

StratifiedEstimate
StratifiedPrepSampler::run(ZeroPrepStrategy strategy, bool pi8,
                           const ImportanceConfig &config)
{
    if (config.maxFaults < 0)
        throw std::invalid_argument(
            "ImportanceConfig.maxFaults must be >= 0");

    StratifiedEstimate out;

    // Nominal-path site counts from a noiseless dry run. The
    // counting oracle never consumes RNG, so the run is exactly the
    // deterministic noiseless path.
    {
        CountingOracle counter;
        AncillaPrepSimulator sim(errors_, movement_, /*seed=*/0,
                                 semantics_);
        sim.setFaultOracle(&counter);
        if (pi8)
            sim.simulatePi8Once();
        else
            sim.simulateOnce(strategy);
        out.gateSites = counter.gateSites;
        out.moveSites = counter.moveSites;
    }

    // Enumerate strata (a, b), a + b <= maxFaults, with their
    // binomial priors; (0,0) is analytic. Total prior mass not
    // covered (beyond the truncation order, above the per-class
    // site count, or skipped as negligible) is the truncation tail.
    double covered = 0.0;
    for (int a = 0; a <= config.maxFaults; ++a) {
        if (static_cast<std::uint64_t>(a) > out.gateSites)
            break;
        const double pa =
            binomialPmf(out.gateSites, errors_.pGate,
                        static_cast<std::uint64_t>(a));
        for (int b = 0; a + b <= config.maxFaults; ++b) {
            if (static_cast<std::uint64_t>(b) > out.moveSites)
                break;
            const double prior = pa
                * binomialPmf(out.moveSites, errors_.pMove,
                              static_cast<std::uint64_t>(b));
            if (a + b > 0 && prior < config.minStratumPrior)
                continue;
            StratumEstimate s;
            s.gateFaults = a;
            s.moveFaults = b;
            s.prior = prior;
            s.analytic = a == 0 && b == 0;
            covered += prior;
            out.strata.push_back(s);
        }
    }
    out.truncatedPrior = std::max(0.0, 1.0 - covered);

    // Pre-split one seed per stratum so results are independent of
    // the thread count, then shard strata across workers.
    std::vector<std::uint64_t> seeds(out.strata.size());
    for (auto &s : seeds)
        s = seeder_();

    struct Tally
    {
        std::uint64_t failures = 0;
    };
    std::vector<Tally> tallies(out.strata.size());

    auto runStratum = [&](std::size_t i) {
        StratumEstimate &s = out.strata[i];
        if (s.analytic)
            return;
        s.trials = config.trialsPerStratum;
        ScheduledOracle oracle;
        oracle.configure(out.gateSites, out.moveSites, s.gateFaults,
                         s.moveFaults);
        AncillaPrepSimulator sim(errors_, movement_, seeds[i],
                                 semantics_);
        sim.setFaultOracle(&oracle);
        std::uint64_t failures = 0;
        for (std::uint64_t t = 0; t < s.trials; ++t) {
            oracle.beginTrial();
            const PrepOutcome o = pi8 ? sim.simulatePi8Once()
                                      : sim.simulateOnce(strategy);
            if (o.failed())
                ++failures;
        }
        tallies[i].failures = failures;
    };

    const int threads = std::min<int>(
        threads_, static_cast<int>(out.strata.size()) + 1);
    if (threads <= 1) {
        for (std::size_t i = 0; i < out.strata.size(); ++i)
            runStratum(i);
    } else {
        // Strata are independent; a relaxed claim counter shards
        // them (see BatchAncillaSim::run for the memory-order
        // argument). Per-stratum tallies land in disjoint slots.
        std::atomic<std::size_t> next{0};
        auto work = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= out.strata.size())
                    break;
                runStratum(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(work);
        for (auto &th : pool)
            th.join();
    }

    for (std::size_t i = 0; i < out.strata.size(); ++i) {
        out.strata[i].failures = tallies[i].failures;
        out.totalTrials += out.strata[i].trials;
    }
    return out;
}

} // namespace qc
