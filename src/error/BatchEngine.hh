/**
 * @file
 * The batched Monte Carlo worker, templated on SIMD width.
 *
 * BatchWorkerT<Ops> is the engine behind BatchAncillaSim: a frame
 * wide enough for one batch plus the masked circuit routines and
 * popcount tallies, mirroring AncillaPrepSimulator step for step.
 * The Ops policy (common/simd/SimdOps.hh) picks how many 64-bit
 * words the pure-bitwise frame loops advance per step; every
 * RNG-consuming routine is ordered per 64-bit word of the *bit
 * stream* (RareBernoulliStream), so a batch's results are a pure
 * function of its seed — bit-identical across every width,
 * including the scalar fallback.
 *
 * Each width is instantiated in its own translation unit
 * (src/error/simd/BatchEngine*.cc) so the 256/512-bit ones can be
 * compiled with -mavx2/-mavx512f without imposing those ISAs on the
 * rest of the binary; makeBatchWorker() dispatches on a resolved
 * simd::Width (see common/simd/SimdDispatch.hh for the resolution
 * rules and the QC_FORCE_WIDTH override).
 */

#ifndef QC_ERROR_BATCH_ENGINE_HH
#define QC_ERROR_BATCH_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "codes/SteaneCode.hh"
#include "common/Rng.hh"
#include "common/simd/SimdDispatch.hh"
#include "error/AncillaSim.hh"
#include "error/BatchPauliFrame.hh"

namespace qc {

/**
 * Width-erased interface of one batch worker. Tallies accumulate
 * across run*Batch calls; the driver folds them into the shared
 * board once per worker thread.
 */
class BatchWorkerBase
{
  public:
    using Word = std::uint64_t;

    virtual ~BatchWorkerBase() = default;

    /** Build the batch's active mask for its first k trials. */
    virtual const Word *activeMask(int k) = 0;

    /** Run one batch of zero-prep trials under the active mask. */
    virtual void runZeroBatch(Rng rng, ZeroPrepStrategy strategy,
                              const Word *active) = 0;

    /** Run one batch of pi/8 conversion trials (Fig 5b). */
    virtual void runPi8Batch(Rng rng, const Word *active) = 0;

    std::uint64_t failures = 0;
    std::uint64_t verifyAttempts = 0;
    std::uint64_t verifyFailures = 0;
    std::uint64_t correctionAttempts = 0;
    std::uint64_t correctionFailures = 0;
};

/**
 * Construct a worker for the given (already resolved, non-Auto)
 * width. Defined in src/error/simd/BatchEngineFactory.cc; each case
 * forwards to the factory exported by that width's translation unit.
 */
std::unique_ptr<BatchWorkerBase>
makeBatchWorker(simd::Width width, const ErrorParams &errors,
                const MovementModel &movement,
                CorrectionSemantics semantics, int words);

namespace batch_detail {

inline std::uint64_t
popcount(const std::uint64_t *m, int words)
{
    std::uint64_t n = 0;
    for (int w = 0; w < words; ++w)
        n += static_cast<std::uint64_t>(__builtin_popcountll(m[w]));
    return n;
}

inline bool
any(const std::uint64_t *m, int words)
{
    for (int w = 0; w < words; ++w) {
        if (m[w])
            return true;
    }
    return false;
}

/**
 * Run `body(ops, w)` over a word range: full Ops-wide blocks first,
 * then a 1-lane tail. The body is generic over the ops policy, so
 * each pure-bitwise loop is written once and lowered at both widths
 * (when Ops is WordOps the first loop already covers everything).
 */
template <class Ops, class F>
inline void
spans(int words, F &&body)
{
    int w = 0;
    for (; w + Ops::kLanes <= words; w += Ops::kLanes)
        body(Ops{}, w);
    for (; w < words; ++w)
        body(simd::WordOps{}, w);
}

// Block base offsets within the batched frame (same layout as the
// scalar engine: output block, two correction ancillae, cat qubits).
constexpr int blockA = 0;
constexpr int blockB = 7;
constexpr int blockC = 14;
constexpr int catBase = 21;
constexpr int frameQubits = 28;

} // namespace batch_detail

/**
 * One shard of the batched Monte Carlo at a fixed SIMD width. The
 * control flow mirrors AncillaPrepSimulator step for step; every
 * routine takes the active-trial mask of the trials it advances.
 */
template <class Ops>
class BatchWorkerT final : public BatchWorkerBase
{
  public:
    BatchWorkerT(const ErrorParams &errors,
                 const MovementModel &movement,
                 CorrectionSemantics semantics, int words)
        : movement_(movement), semantics_(semantics), words_(words),
          pGate_(errors.pGate), pMove_(errors.pMove),
          frame_(batch_detail::frameQubits, words), meas_(7 * wv()),
          active_(wv()), pending_(wv()), survivors_(wv()),
          done_(wv()), ok_(wv()), prepMask_(wv()), flip_(wv()),
          measTmp_(wv()), eq_(wv()), parity_(wv()), confirm_(wv()),
          have_(wv()), agree_(wv()), prevS0_(wv()), prevS1_(wv()),
          prevS2_(wv()), prevP_(wv()), coin_(wv())
    {
    }

    const Word *
    activeMask(int k) override
    {
        for (int w = 0; w < words_; ++w) {
            const int lo = 64 * w;
            if (k >= lo + 64)
                active_[w] = ~Word{0};
            else if (k <= lo)
                active_[w] = 0;
            else
                active_[w] = (Word{1} << (k - lo)) - 1;
        }
        return active_.data();
    }

    void
    runZeroBatch(Rng rng, ZeroPrepStrategy strategy,
                 const Word *active) override
    {
        rng_ = rng;
        pGate_.reset(rng_);
        pMove_.reset(rng_);
        frame_.clear();
        const bool verified =
            strategy == ZeroPrepStrategy::VerifyOnly ||
            strategy == ZeroPrepStrategy::VerifyAndCorrect;
        const bool corrected =
            strategy == ZeroPrepStrategy::CorrectOnly ||
            strategy == ZeroPrepStrategy::VerifyAndCorrect;

        if (!corrected) {
            prepareBlock(batch_detail::blockA, verified, active);
            classifyTally(active);
            return;
        }

        drainCorrectedPrep(active, verified, /*tally=*/true);
    }

    void
    runPi8Batch(Rng rng, const Word *active) override
    {
        rng_ = rng;
        pGate_.reset(rng_);
        pMove_.reset(rng_);
        frame_.clear();

        // Verified-and-corrected zero input, as in runZeroBatch
        // (residuals are classified after the conversion, not here).
        drainCorrectedPrep(active, /*verified=*/true,
                           /*tally=*/false);

        // 7-qubit cat state on the freed block B.
        const int cat7 = batch_detail::blockB;
        for (int i = 0; i < 7; ++i)
            gatePrep(cat7 + i, active);
        gateH(cat7, active);
        for (int i = 0; i < 6; ++i)
            gateCx(cat7 + i, cat7 + i + 1, active);

        // Transversal cat/zero interaction plus transversal pi/8
        // (conjugated through the frame as S, as in the scalar
        // engine).
        for (int i = 0; i < 7; ++i) {
            chargeCxMovement(cat7 + i, batch_detail::blockA + i,
                             active);
            frame_.applyCz(cat7 + i, batch_detail::blockA + i,
                           active);
            frame_.inject2q(rng_, pGate_, cat7 + i,
                            batch_detail::blockA + i, active);
        }
        for (int i = 0; i < 7; ++i) {
            frame_.applyS(batch_detail::blockA + i, active);
            frame_.inject1q(rng_, pGate_, batch_detail::blockA + i,
                            active);
        }

        // Decode the cat block and measure it out.
        for (int i = 5; i >= 0; --i)
            gateCx(cat7 + i, cat7 + i + 1, active);
        gateH(cat7, active);
        for (int i = 0; i < 7; ++i)
            measureZFlip(cat7 + i, active, measTmp_.data());

        // Conditional transversal Z fix-up on half the outcomes: the
        // intended gate leaves the frame untouched but its physical
        // ops still inject errors. One fair coin per trial.
        for (int w = 0; w < words_; ++w)
            coin_[w] = rng_() & active[w];
        for (int i = 0; i < 7; ++i)
            frame_.inject1q(rng_, pGate_, batch_detail::blockA + i,
                            coin_.data());

        classifyTally(active);
    }

  private:
    std::size_t wv() const { return static_cast<std::size_t>(words_); }

    /**
     * Drain the corrected-preparation pipeline for every trial in
     * `active`: prepare blocks A and B, bit-correct, prepare C,
     * phase-correct. Trials whose correction stage detects an error
     * recycle the whole pipeline; finished trials drop out of the
     * mask and their frame bits stay frozen while the stragglers
     * loop (every op is masked). When `tally` is set, finished
     * trials are classified as they complete (runZeroBatch); the
     * pi/8 path defers classification to after the conversion.
     */
    void
    drainCorrectedPrep(const Word *active, bool verified, bool tally)
    {
        using batch_detail::any;
        // Under ApplyFix a verified pipeline must not trust a
        // single Z-syndrome extraction (the ancilla's correlated Z
        // errors are invisible to verification and would be patched
        // onto A): the phase patch requires two consecutive
        // agreeing extractions instead (phaseCorrectConfirmed).
        const bool confirmed = verified
            && semantics_ == CorrectionSemantics::ApplyFix;
        std::copy(active, active + words_, pending_.begin());
        while (any(pending_.data(), words_)) {
            prepareBlock(batch_detail::blockA, verified,
                         pending_.data());
            prepareBlock(batch_detail::blockB, verified,
                         pending_.data());
            correctStage(false, batch_detail::blockA,
                         batch_detail::blockB, pending_.data());
            batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                using O = decltype(ops);
                O::store(survivors_.data() + w,
                         O::load(pending_.data() + w)
                             & O::load(ok_.data() + w));
            });
            if (!any(survivors_.data(), words_)) {
                std::fill(done_.begin(), done_.end(), Word{0});
            } else if (confirmed) {
                phaseCorrectConfirmed(batch_detail::blockA,
                                      batch_detail::blockC,
                                      survivors_.data());
                std::copy(survivors_.begin(), survivors_.end(),
                          done_.begin());
            } else {
                prepareBlock(batch_detail::blockC, verified,
                             survivors_.data());
                correctStage(true, batch_detail::blockA,
                             batch_detail::blockC,
                             survivors_.data());
                batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                    using O = decltype(ops);
                    O::store(done_.data() + w,
                             O::load(survivors_.data() + w)
                                 & O::load(ok_.data() + w));
                });
            }
            if (tally)
                classifyTally(done_.data());
            batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                using O = decltype(ops);
                O::store(pending_.data() + w,
                         O::load(pending_.data() + w)
                             & ~O::load(done_.data() + w));
            });
        }
    }

    void
    chargeCxMovement(int a, int b, const Word *m)
    {
        for (int i = 0; i < movement_.movesPerCx; ++i)
            frame_.inject1q(rng_, pMove_, (i & 1) ? b : a, m);
        for (int i = 0; i < movement_.turnsPerCx; ++i)
            frame_.inject1q(rng_, pMove_, (i & 1) ? b : a, m);
    }

    void
    chargeMeasMovement(int q, const Word *m)
    {
        for (int i = 0; i < movement_.movesPerMeas; ++i)
            frame_.inject1q(rng_, pMove_, q, m);
    }

    void
    gateH(int q, const Word *m)
    {
        for (int i = 0; i < movement_.movesPer1q; ++i)
            frame_.inject1q(rng_, pMove_, q, m);
        frame_.applyH(q, m);
        frame_.inject1q(rng_, pGate_, q, m);
    }

    void
    gatePrep(int q, const Word *m)
    {
        frame_.clearQubit(q, m);
        frame_.inject1q(rng_, pGate_, q, m);
    }

    void
    gateCx(int control, int target, const Word *m)
    {
        chargeCxMovement(control, target, m);
        frame_.applyCx(control, target, m);
        frame_.inject2q(rng_, pGate_, control, target, m);
    }

    /**
     * Per-trial recorded-outcome flips of a Z-basis measurement.
     * The flip stream advances over all words regardless of the
     * mask (width-invariant RNG); flips outside the mask are
     * discarded.
     */
    void
    measureZFlip(int q, const Word *m, Word *out)
    {
        chargeMeasMovement(q, m);
        const Word *xq = frame_.x(q);
        std::fill(out, out + words_, Word{0});
        pGate_.window(rng_, words_,
                      [&](int w, Word f) { out[w] = f; });
        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            O::store(out + w, (O::load(xq + w) ^ O::load(out + w))
                                  & O::load(m + w));
        });
        frame_.clearQubit(q, m);
    }

    /** X-basis measurement flips (phase errors flip the outcome). */
    void
    measureXFlip(int q, const Word *m, Word *out)
    {
        chargeMeasMovement(q, m);
        const Word *zq = frame_.z(q);
        std::fill(out, out + words_, Word{0});
        pGate_.window(rng_, words_,
                      [&](int w, Word f) { out[w] = f; });
        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            O::store(out + w, (O::load(zq + w) ^ O::load(out + w))
                                  & O::load(m + w));
        });
        frame_.clearQubit(q, m);
    }

    void
    basicEncode(int base, const Word *m)
    {
        for (int q = 0; q < SteaneCode::numPhysical; ++q)
            gatePrep(base + q, m);
        for (int seed : SteaneCode::encoderSeeds)
            gateH(base + seed, m);
        for (const auto &cx : SteaneCode::encoderCxs)
            gateCx(base + cx.control, base + cx.target, m);
    }

    /**
     * Verify the block against a 3-qubit cat; on return flip_ holds
     * the rejected trials (subset of m). Tallies attempts/failures.
     */
    void
    verifyBlock(int base, const Word *m)
    {
        using batch_detail::catBase;
        verifyAttempts += batch_detail::popcount(m, words_);

        for (int i = 0; i < 3; ++i)
            gatePrep(catBase + i, m);
        gateH(catBase, m);
        gateCx(catBase, catBase + 1, m);
        gateCx(catBase + 1, catBase + 2, m);

        int cat = catBase;
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (SteaneCode::verifyMask & (SteaneCode::Mask{1} << q)) {
                chargeCxMovement(base + q, cat, m);
                frame_.applyCz(base + q, cat, m);
                frame_.inject2q(rng_, pGate_, base + q, cat, m);
                ++cat;
            }
        }

        std::fill(flip_.begin(), flip_.end(), Word{0});
        for (int i = 0; i < 3; ++i) {
            measureXFlip(catBase + i, m, measTmp_.data());
            batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                using O = decltype(ops);
                O::store(flip_.data() + w,
                         O::load(flip_.data() + w)
                             ^ O::load(measTmp_.data() + w));
            });
        }
        verifyFailures += batch_detail::popcount(flip_.data(), words_);
    }

    /**
     * Encode (and, if verified, verify with masked retries) the
     * block for every trial in m. On return all m trials hold an
     * accepted block.
     */
    void
    prepareBlock(int base, bool verified, const Word *m)
    {
        std::copy(m, m + words_, prepMask_.begin());
        for (;;) {
            basicEncode(base, prepMask_.data());
            if (!verified)
                return;
            verifyBlock(base, prepMask_.data());
            batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                using O = decltype(ops);
                O::store(prepMask_.data() + w,
                         O::load(prepMask_.data() + w)
                             & O::load(flip_.data() + w));
            });
            if (!batch_detail::any(prepMask_.data(), words_))
                return;
        }
    }

    /**
     * One correction stage (bit stage when phase == false, phase
     * stage otherwise) on block A using a fresh ancilla block. On
     * return ok_ holds the trials that keep their block (under
     * DiscardOnSyndrome, trials with a non-trivial syndrome or odd
     * readout parity are dropped; under ApplyFix every trial passes
     * and the decoded single-qubit patch is applied per trial).
     */
    void
    correctStage(bool phase, int base_a, int base_anc, const Word *m)
    {
        correctionAttempts += batch_detail::popcount(m, words_);

        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (phase)
                gateCx(base_anc + q, base_a + q, m);
            else
                gateCx(base_a + q, base_anc + q, m);
        }
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            Word *out = &meas_[static_cast<std::size_t>(q) * wv()];
            if (phase)
                measureXFlip(base_anc + q, m, out);
            else
                measureZFlip(base_anc + q, m, out);
        }

        if (semantics_ == CorrectionSemantics::ApplyFix) {
            applyFixScatter(phase, base_a, m);
            std::copy(m, m + words_, ok_.begin());
            return;
        }

        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            auto s0 = O::zero(), s1 = O::zero(), s2 = O::zero();
            auto parity = O::zero();
            for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                const auto e = O::load(
                    &meas_[static_cast<std::size_t>(q) * wv()] + w);
                parity = parity ^ e;
                const unsigned col = static_cast<unsigned>(q) + 1;
                if (col & 1u)
                    s0 = s0 ^ e;
                if (col & 2u)
                    s1 = s1 ^ e;
                if (col & 4u)
                    s2 = s2 ^ e;
            }
            const auto bad = (s0 | s1 | s2 | parity) & O::load(m + w);
            O::store(measTmp_.data() + w, bad);
            O::store(ok_.data() + w, O::load(m + w) & ~bad);
        });
        for (int w = 0; w < words_; ++w)
            correctionFailures += static_cast<std::uint64_t>(
                __builtin_popcountll(measTmp_[w]));
    }

    /**
     * Parity-aware patch scatter from the current meas_ readout
     * (SteaneCode::fixFor): over the 15 non-trivial (syndrome,
     * parity) readout classes, trials in a class get the decoded
     * minimal-weight patch (one gate error per patched qubit) on
     * block A — X patches for the bit stage, Z for the phase
     * stage. The patch matches the readout's coset, so correlated
     * even-parity patterns are not "completed" into logical
     * operators (the first-order failure path of a syndrome-only
     * single-qubit decode).
     */
    void
    applyFixScatter(bool phase, int base_a, const Word *m)
    {
        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            auto parity = O::zero();
            for (int q = 0; q < SteaneCode::numPhysical; ++q)
                parity = parity
                    ^ O::load(&meas_[static_cast<std::size_t>(q)
                                     * wv()]
                              + w);
            O::store(parity_.data() + w, parity);
        });
        for (int odd = 1; odd >= 0; --odd) {
            for (unsigned s = 0; s < 8; ++s) {
                const SteaneCode::Mask fix =
                    SteaneCode::fixFor(s, odd != 0);
                if (!fix)
                    continue;
                syndromeEquals(s, m);
                batch_detail::spans<Ops>(words_, [&](auto ops,
                                                     int w) {
                    using O = decltype(ops);
                    const auto p = O::load(parity_.data() + w);
                    O::store(eq_.data() + w,
                             O::load(eq_.data() + w)
                                 & (odd ? p : ~p));
                });
                if (!batch_detail::any(eq_.data(), words_))
                    continue;
                for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                    if (!(fix & (SteaneCode::Mask{1} << q)))
                        continue;
                    if (phase)
                        frame_.flipZ(base_a + q, eq_.data());
                    else
                        frame_.flipX(base_a + q, eq_.data());
                    frame_.inject1q(rng_, pGate_, base_a + q,
                                    eq_.data());
                }
            }
        }
    }

    /**
     * ApplyFix phase correction for verified pipelines: Shor-style
     * repeated syndrome extraction, mirroring the scalar engine's
     * phaseCorrectConfirmed. Each round preps a fresh verified
     * ancilla for the still-unconfirmed trials, extracts (syndrome,
     * parity), and patches the trials whose extraction agrees with
     * their previous one; the rest carry the new readout into the
     * next round. Each extraction tallies a correction attempt.
     */
    void
    phaseCorrectConfirmed(int base_a, int base_c, const Word *m)
    {
        using batch_detail::any;
        std::copy(m, m + words_, confirm_.begin());
        std::fill(have_.begin(), have_.end(), Word{0});
        while (any(confirm_.data(), words_)) {
            prepareBlock(base_c, /*verified=*/true,
                         confirm_.data());
            correctionAttempts +=
                batch_detail::popcount(confirm_.data(), words_);
            for (int q = 0; q < SteaneCode::numPhysical; ++q)
                gateCx(base_c + q, base_a + q, confirm_.data());
            for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                Word *out =
                    &meas_[static_cast<std::size_t>(q) * wv()];
                measureXFlip(base_c + q, confirm_.data(), out);
            }
            batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
                using O = decltype(ops);
                auto s0 = O::zero(), s1 = O::zero(), s2 = O::zero();
                auto parity = O::zero();
                for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                    const auto e = O::load(
                        &meas_[static_cast<std::size_t>(q) * wv()]
                        + w);
                    parity = parity ^ e;
                    const unsigned col =
                        static_cast<unsigned>(q) + 1;
                    if (col & 1u)
                        s0 = s0 ^ e;
                    if (col & 2u)
                        s1 = s1 ^ e;
                    if (col & 4u)
                        s2 = s2 ^ e;
                }
                const auto confirm = O::load(confirm_.data() + w);
                O::store(
                    agree_.data() + w,
                    confirm & O::load(have_.data() + w)
                        & ~((s0 ^ O::load(prevS0_.data() + w))
                            | (s1 ^ O::load(prevS1_.data() + w))
                            | (s2 ^ O::load(prevS2_.data() + w))
                            | (parity
                               ^ O::load(prevP_.data() + w))));
                O::store(prevS0_.data() + w, s0);
                O::store(prevS1_.data() + w, s1);
                O::store(prevS2_.data() + w, s2);
                O::store(prevP_.data() + w, parity);
                O::store(have_.data() + w,
                         O::load(have_.data() + w) | confirm);
            });
            if (any(agree_.data(), words_)) {
                applyFixScatter(/*phase=*/true, base_a,
                                agree_.data());
                batch_detail::spans<Ops>(words_, [&](auto ops,
                                                     int w) {
                    using O = decltype(ops);
                    O::store(confirm_.data() + w,
                             O::load(confirm_.data() + w)
                                 & ~O::load(agree_.data() + w));
                });
            }
        }
    }

    /** eq_ := trials in m whose readout syndrome equals `value`. */
    void
    syndromeEquals(unsigned value, const Word *m)
    {
        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            auto s0 = O::zero(), s1 = O::zero(), s2 = O::zero();
            for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                const auto e = O::load(
                    &meas_[static_cast<std::size_t>(q) * wv()] + w);
                const unsigned col = static_cast<unsigned>(q) + 1;
                if (col & 1u)
                    s0 = s0 ^ e;
                if (col & 2u)
                    s1 = s1 ^ e;
                if (col & 4u)
                    s2 = s2 ^ e;
            }
            auto mismatch = s0 ^ ((value & 1u) ? ~O::zero()
                                               : O::zero());
            mismatch = mismatch
                | (s1 ^ ((value & 2u) ? ~O::zero() : O::zero()));
            mismatch = mismatch
                | (s2 ^ ((value & 4u) ? ~O::zero() : O::zero()));
            O::store(eq_.data() + w, ~mismatch & O::load(m + w));
        });
    }

    /**
     * Word-parallel residual classification of block A. For the
     * Steane code with perfect decoding, the residual is logical iff
     * parity(error) XOR (syndrome != 0): the correction flips one
     * qubit exactly when the syndrome is non-trivial, and a
     * trivial-syndrome residual is a stabilizer (even parity) or a
     * logical representative (odd parity). A unit test checks this
     * identity against SteaneCode::badCoset for all 128 patterns.
     */
    void
    classifyTally(const Word *m)
    {
        if (!batch_detail::any(m, words_))
            return;
        batch_detail::spans<Ops>(words_, [&](auto ops, int w) {
            using O = decltype(ops);
            auto fail = O::zero();
            for (int plane = 0; plane < 2; ++plane) {
                auto parity = O::zero();
                auto s0 = O::zero(), s1 = O::zero(), s2 = O::zero();
                for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                    const auto e = O::load(
                        (plane == 0
                             ? frame_.x(batch_detail::blockA + q)
                             : frame_.z(batch_detail::blockA + q))
                        + w);
                    parity = parity ^ e;
                    const unsigned col = static_cast<unsigned>(q) + 1;
                    if (col & 1u)
                        s0 = s0 ^ e;
                    if (col & 2u)
                        s1 = s1 ^ e;
                    if (col & 4u)
                        s2 = s2 ^ e;
                }
                fail = fail | (parity ^ (s0 | s1 | s2));
            }
            O::store(measTmp_.data() + w, fail & O::load(m + w));
        });
        for (int w = 0; w < words_; ++w)
            failures += static_cast<std::uint64_t>(
                __builtin_popcountll(measTmp_[w]));
    }

    MovementModel movement_;
    CorrectionSemantics semantics_;
    int words_;
    Rng rng_;
    RareBernoulliStream pGate_;
    RareBernoulliStream pMove_;
    BatchPauliFrameT<Ops> frame_;

    std::vector<Word> meas_; ///< 7 readout-flip planes (7 * words_)
    std::vector<Word> active_;
    std::vector<Word> pending_;
    std::vector<Word> survivors_;
    std::vector<Word> done_;
    std::vector<Word> ok_;
    std::vector<Word> prepMask_;
    std::vector<Word> flip_;
    std::vector<Word> measTmp_;
    std::vector<Word> eq_;
    std::vector<Word> parity_; ///< logical readout parity per trial
    // Confirmed phase-correction state (syndrome bits + parity of
    // the previous extraction, per trial).
    std::vector<Word> confirm_; ///< trials awaiting confirmation
    std::vector<Word> have_;    ///< trials with a previous readout
    std::vector<Word> agree_;   ///< trials whose extractions agree
    std::vector<Word> prevS0_;
    std::vector<Word> prevS1_;
    std::vector<Word> prevS2_;
    std::vector<Word> prevP_;
    std::vector<Word> coin_;
};

} // namespace qc

#endif // QC_ERROR_BATCH_ENGINE_HH
