#include "error/BatchAncillaSim.hh"

#include <atomic>
#include <thread>
#include <vector>

#include "common/Mutex.hh"
#include "error/BatchEngine.hh"
#include "error/ImportanceSampler.hh"

namespace qc {

using Word = BatchPauliFrame::Word;

BatchAncillaSim::BatchAncillaSim(ErrorParams errors,
                                 MovementModel movement,
                                 std::uint64_t seed,
                                 CorrectionSemantics semantics,
                                 BatchSimConfig config)
    : errors_(errors), movement_(movement), semantics_(semantics),
      config_(config), seeder_(seed)
{
    if (config_.wordsPerQubit < 1)
        config_.wordsPerQubit = 1;
}

simd::Width
BatchAncillaSim::resolvedWidth() const
{
    return simd::resolveWidth(config_.width, config_.wordsPerQubit);
}

PrepEstimate
BatchAncillaSim::estimate(ZeroPrepStrategy strategy,
                          std::uint64_t trials)
{
    return run(strategy, /*pi8=*/false, trials);
}

PrepEstimate
BatchAncillaSim::estimatePi8(std::uint64_t trials)
{
    PrepEstimate est =
        run(ZeroPrepStrategy::VerifyAndCorrect, /*pi8=*/true, trials);
    // Match the scalar engine's reporting: estimatePi8 publishes
    // only the verification tallies.
    est.correctionTrials = 0;
    est.correctionDiscards = 0;
    return est;
}

StratifiedEstimate
BatchAncillaSim::estimateStratified(ZeroPrepStrategy strategy,
                                    const ImportanceConfig &config)
{
    StratifiedPrepSampler sampler(errors_, movement_, seeder_.split(),
                                  semantics_, config_.threads);
    return sampler.estimate(strategy, config);
}

StratifiedEstimate
BatchAncillaSim::estimateStratifiedPi8(const ImportanceConfig &config)
{
    StratifiedPrepSampler sampler(errors_, movement_, seeder_.split(),
                                  semantics_, config_.threads);
    return sampler.estimatePi8(config);
}

PrepEstimate
BatchAncillaSim::run(ZeroPrepStrategy strategy, bool pi8,
                     std::uint64_t trials)
{
    PrepEstimate est;
    est.trials = trials;
    if (trials == 0)
        return est;

    const int words = config_.wordsPerQubit;
    // Resolve the SIMD width up front (one env lookup / CPU probe
    // per run, and a forced-but-unsupported width fails loudly here
    // rather than inside a worker thread). Purely a throughput
    // choice: every width is bit-identical.
    const simd::Width width = resolvedWidth();
    const std::uint64_t per = static_cast<std::uint64_t>(64 * words);
    const std::uint64_t num_batches = (trials + per - 1) / per;

    // One independent RNG stream per batch, split deterministically
    // from this run's seed: results depend only on (construction
    // seed, call number, trial count), never on thread scheduling.
    Rng master = seeder_.split();
    std::vector<std::uint64_t> seeds(num_batches);
    for (auto &s : seeds)
        s = master();

    int threads = config_.threads;
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::uint64_t>(threads) > num_batches)
        threads = static_cast<int>(num_batches);

    /**
     * Cross-thread tally aggregation behind an annotated mutex:
     * each worker folds its whole-run counters in once, at the end.
     * Unsigned sums commute, so the (scheduling-dependent) merge
     * order cannot affect the totals — thread-count invariance of
     * the estimate is preserved by algebra, not by ordering.
     */
    struct TallyBoard
    {
        Mutex mutex;
        std::uint64_t failures QC_GUARDED_BY(mutex) = 0;
        std::uint64_t verifyTrials QC_GUARDED_BY(mutex) = 0;
        std::uint64_t discards QC_GUARDED_BY(mutex) = 0;
        std::uint64_t correctionTrials QC_GUARDED_BY(mutex) = 0;
        std::uint64_t correctionDiscards QC_GUARDED_BY(mutex) = 0;
    } tallies;

    // The batch-claim counter is memory_order_relaxed on purpose:
    // it only partitions indices. Each claimed batch touches
    // nothing shared (worker-local frame, read-only seed table),
    // and every tally is published under tallies.mutex after the
    // loop — the counter itself synchronizes nothing. See
    // docs/ANALYSIS.md ("Relaxed atomics").
    std::atomic<std::uint64_t> next{0};

    auto work = [&]() {
        const std::unique_ptr<BatchWorkerBase> worker =
            makeBatchWorker(width, errors_, movement_, semantics_,
                            words);
        for (;;) {
            const std::uint64_t b =
                next.fetch_add(1, std::memory_order_relaxed);
            if (b >= num_batches)
                break;
            const std::uint64_t lo = b * per;
            const int k = static_cast<int>(
                std::min<std::uint64_t>(per, trials - lo));
            const Word *active = worker->activeMask(k);
            if (pi8)
                worker->runPi8Batch(Rng(seeds[b]), active);
            else
                worker->runZeroBatch(Rng(seeds[b]), strategy,
                                     active);
        }
        MutexLock lock(tallies.mutex);
        tallies.failures += worker->failures;
        tallies.verifyTrials += worker->verifyAttempts;
        tallies.discards += worker->verifyFailures;
        tallies.correctionTrials += worker->correctionAttempts;
        tallies.correctionDiscards += worker->correctionFailures;
    };

    if (threads == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(work);
        for (auto &th : pool)
            th.join();
    }

    {
        MutexLock lock(tallies.mutex);
        est.failures = tallies.failures;
        est.verifyTrials = tallies.verifyTrials;
        est.discards = tallies.discards;
        est.correctionTrials = tallies.correctionTrials;
        est.correctionDiscards = tallies.correctionDiscards;
    }
    return est;
}

} // namespace qc
