#include "error/BatchAncillaSim.hh"

#include <atomic>
#include <thread>
#include <vector>

#include "codes/SteaneCode.hh"
#include "common/Mutex.hh"

namespace qc {

namespace {

using Word = BatchPauliFrame::Word;

// Block base offsets within the batched frame (same layout as the
// scalar engine: output block, two correction ancillae, cat qubits).
constexpr int blockA = 0;
constexpr int blockB = 7;
constexpr int blockC = 14;
constexpr int catBase = 21;
constexpr int frameQubits = 28;

std::uint64_t
popcount(const Word *m, int words)
{
    std::uint64_t n = 0;
    for (int w = 0; w < words; ++w)
        n += static_cast<std::uint64_t>(__builtin_popcountll(m[w]));
    return n;
}

bool
any(const Word *m, int words)
{
    for (int w = 0; w < words; ++w) {
        if (m[w])
            return true;
    }
    return false;
}

/**
 * One shard of the batched Monte Carlo: a frame wide enough for one
 * batch plus the masked circuit routines and popcount tallies. The
 * control flow mirrors AncillaPrepSimulator step for step; every
 * routine takes the active-trial mask of the trials it advances.
 */
class BatchWorker
{
  public:
    BatchWorker(const ErrorParams &errors,
                const MovementModel &movement,
                CorrectionSemantics semantics, int words)
        : movement_(movement), semantics_(semantics), words_(words),
          pGate_(errors.pGate), pMove_(errors.pMove),
          frame_(frameQubits, words), meas_(7 * wv()), active_(wv()),
          pending_(wv()), survivors_(wv()), done_(wv()), ok_(wv()),
          prepMask_(wv()), flip_(wv()), measTmp_(wv()), eq_(wv()),
          parity_(wv()), confirm_(wv()), have_(wv()), agree_(wv()),
          prevS0_(wv()), prevS1_(wv()), prevS2_(wv()),
          prevP_(wv()), coin_(wv())
    {
    }

    /** Build the batch's active mask for its first k trials. */
    const Word *
    activeMask(int k)
    {
        for (int w = 0; w < words_; ++w) {
            const int lo = 64 * w;
            if (k >= lo + 64)
                active_[w] = ~Word{0};
            else if (k <= lo)
                active_[w] = 0;
            else
                active_[w] = (Word{1} << (k - lo)) - 1;
        }
        return active_.data();
    }

    /** Run one batch of zero-prep trials under the active mask. */
    void
    runZeroBatch(Rng rng, ZeroPrepStrategy strategy, const Word *active)
    {
        rng_ = rng;
        frame_.clear();
        const bool verified =
            strategy == ZeroPrepStrategy::VerifyOnly ||
            strategy == ZeroPrepStrategy::VerifyAndCorrect;
        const bool corrected =
            strategy == ZeroPrepStrategy::CorrectOnly ||
            strategy == ZeroPrepStrategy::VerifyAndCorrect;

        if (!corrected) {
            prepareBlock(blockA, verified, active);
            classifyTally(active);
            return;
        }

        drainCorrectedPrep(active, verified, /*tally=*/true);
    }

    /** Run one batch of pi/8 conversion trials (Fig 5b). */
    void
    runPi8Batch(Rng rng, const Word *active)
    {
        rng_ = rng;
        frame_.clear();

        // Verified-and-corrected zero input, as in runZeroBatch
        // (residuals are classified after the conversion, not here).
        drainCorrectedPrep(active, /*verified=*/true,
                           /*tally=*/false);

        // 7-qubit cat state on the freed block B.
        const int cat7 = blockB;
        for (int i = 0; i < 7; ++i)
            gatePrep(cat7 + i, active);
        gateH(cat7, active);
        for (int i = 0; i < 6; ++i)
            gateCx(cat7 + i, cat7 + i + 1, active);

        // Transversal cat/zero interaction plus transversal pi/8
        // (conjugated through the frame as S, as in the scalar
        // engine).
        for (int i = 0; i < 7; ++i) {
            chargeCxMovement(cat7 + i, blockA + i, active);
            frame_.applyCz(cat7 + i, blockA + i, active);
            frame_.inject2q(rng_, pGate_, cat7 + i, blockA + i,
                            active);
        }
        for (int i = 0; i < 7; ++i) {
            frame_.applyS(blockA + i, active);
            frame_.inject1q(rng_, pGate_, blockA + i, active);
        }

        // Decode the cat block and measure it out.
        for (int i = 5; i >= 0; --i)
            gateCx(cat7 + i, cat7 + i + 1, active);
        gateH(cat7, active);
        for (int i = 0; i < 7; ++i)
            measureZFlip(cat7 + i, active, measTmp_.data());

        // Conditional transversal Z fix-up on half the outcomes: the
        // intended gate leaves the frame untouched but its physical
        // ops still inject errors. One fair coin per trial.
        for (int w = 0; w < words_; ++w)
            coin_[w] = rng_() & active[w];
        for (int i = 0; i < 7; ++i)
            frame_.inject1q(rng_, pGate_, blockA + i, coin_.data());

        classifyTally(active);
    }

    std::uint64_t failures = 0;
    std::uint64_t verifyAttempts = 0;
    std::uint64_t verifyFailures = 0;
    std::uint64_t correctionAttempts = 0;
    std::uint64_t correctionFailures = 0;

  private:
    std::size_t wv() const { return static_cast<std::size_t>(words_); }

    /**
     * Drain the corrected-preparation pipeline for every trial in
     * `active`: prepare blocks A and B, bit-correct, prepare C,
     * phase-correct. Trials whose correction stage detects an error
     * recycle the whole pipeline; finished trials drop out of the
     * mask and their frame bits stay frozen while the stragglers
     * loop (every op is masked). When `tally` is set, finished
     * trials are classified as they complete (runZeroBatch); the
     * pi/8 path defers classification to after the conversion.
     */
    void
    drainCorrectedPrep(const Word *active, bool verified, bool tally)
    {
        // Under ApplyFix a verified pipeline must not trust a
        // single Z-syndrome extraction (the ancilla's correlated Z
        // errors are invisible to verification and would be patched
        // onto A): the phase patch requires two consecutive
        // agreeing extractions instead (phaseCorrectConfirmed).
        const bool confirmed = verified
            && semantics_ == CorrectionSemantics::ApplyFix;
        std::copy(active, active + words_, pending_.begin());
        while (any(pending_.data(), words_)) {
            prepareBlock(blockA, verified, pending_.data());
            prepareBlock(blockB, verified, pending_.data());
            correctStage(false, blockA, blockB, pending_.data());
            for (int w = 0; w < words_; ++w)
                survivors_[w] = pending_[w] & ok_[w];
            if (!any(survivors_.data(), words_)) {
                std::fill(done_.begin(), done_.end(), Word{0});
            } else if (confirmed) {
                phaseCorrectConfirmed(blockA, blockC,
                                      survivors_.data());
                std::copy(survivors_.begin(), survivors_.end(),
                          done_.begin());
            } else {
                prepareBlock(blockC, verified, survivors_.data());
                correctStage(true, blockA, blockC,
                             survivors_.data());
                for (int w = 0; w < words_; ++w)
                    done_[w] = survivors_[w] & ok_[w];
            }
            if (tally)
                classifyTally(done_.data());
            for (int w = 0; w < words_; ++w)
                pending_[w] &= ~done_[w];
        }
    }

    void
    chargeCxMovement(int a, int b, const Word *m)
    {
        for (int i = 0; i < movement_.movesPerCx; ++i)
            frame_.inject1q(rng_, pMove_, (i & 1) ? b : a, m);
        for (int i = 0; i < movement_.turnsPerCx; ++i)
            frame_.inject1q(rng_, pMove_, (i & 1) ? b : a, m);
    }

    void
    chargeMeasMovement(int q, const Word *m)
    {
        for (int i = 0; i < movement_.movesPerMeas; ++i)
            frame_.inject1q(rng_, pMove_, q, m);
    }

    void
    gateH(int q, const Word *m)
    {
        for (int i = 0; i < movement_.movesPer1q; ++i)
            frame_.inject1q(rng_, pMove_, q, m);
        frame_.applyH(q, m);
        frame_.inject1q(rng_, pGate_, q, m);
    }

    void
    gatePrep(int q, const Word *m)
    {
        frame_.clearQubit(q, m);
        frame_.inject1q(rng_, pGate_, q, m);
    }

    void
    gateCx(int control, int target, const Word *m)
    {
        chargeCxMovement(control, target, m);
        frame_.applyCx(control, target, m);
        frame_.inject2q(rng_, pGate_, control, target, m);
    }

    /** Per-trial recorded-outcome flips of a Z-basis measurement. */
    void
    measureZFlip(int q, const Word *m, Word *out)
    {
        chargeMeasMovement(q, m);
        const Word *xq = frame_.x(q);
        for (int w = 0; w < words_; ++w)
            out[w] = m[w] ? (xq[w] ^ pGate_.next(rng_)) & m[w] : 0;
        frame_.clearQubit(q, m);
    }

    /** X-basis measurement flips (phase errors flip the outcome). */
    void
    measureXFlip(int q, const Word *m, Word *out)
    {
        chargeMeasMovement(q, m);
        const Word *zq = frame_.z(q);
        for (int w = 0; w < words_; ++w)
            out[w] = m[w] ? (zq[w] ^ pGate_.next(rng_)) & m[w] : 0;
        frame_.clearQubit(q, m);
    }

    void
    basicEncode(int base, const Word *m)
    {
        for (int q = 0; q < SteaneCode::numPhysical; ++q)
            gatePrep(base + q, m);
        for (int seed : SteaneCode::encoderSeeds)
            gateH(base + seed, m);
        for (const auto &cx : SteaneCode::encoderCxs)
            gateCx(base + cx.control, base + cx.target, m);
    }

    /**
     * Verify the block against a 3-qubit cat; on return flip_ holds
     * the rejected trials (subset of m). Tallies attempts/failures.
     */
    void
    verifyBlock(int base, const Word *m)
    {
        verifyAttempts += popcount(m, words_);

        for (int i = 0; i < 3; ++i)
            gatePrep(catBase + i, m);
        gateH(catBase, m);
        gateCx(catBase, catBase + 1, m);
        gateCx(catBase + 1, catBase + 2, m);

        int cat = catBase;
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (SteaneCode::verifyMask & (SteaneCode::Mask{1} << q)) {
                chargeCxMovement(base + q, cat, m);
                frame_.applyCz(base + q, cat, m);
                frame_.inject2q(rng_, pGate_, base + q, cat, m);
                ++cat;
            }
        }

        std::fill(flip_.begin(), flip_.end(), Word{0});
        for (int i = 0; i < 3; ++i) {
            measureXFlip(catBase + i, m, measTmp_.data());
            for (int w = 0; w < words_; ++w)
                flip_[w] ^= measTmp_[w];
        }
        verifyFailures += popcount(flip_.data(), words_);
    }

    /**
     * Encode (and, if verified, verify with masked retries) the
     * block for every trial in m. On return all m trials hold an
     * accepted block.
     */
    void
    prepareBlock(int base, bool verified, const Word *m)
    {
        std::copy(m, m + words_, prepMask_.begin());
        for (;;) {
            basicEncode(base, prepMask_.data());
            if (!verified)
                return;
            verifyBlock(base, prepMask_.data());
            for (int w = 0; w < words_; ++w)
                prepMask_[w] &= flip_[w];
            if (!any(prepMask_.data(), words_))
                return;
        }
    }

    /**
     * One correction stage (bit stage when phase == false, phase
     * stage otherwise) on block A using a fresh ancilla block. On
     * return ok_ holds the trials that keep their block (under
     * DiscardOnSyndrome, trials with a non-trivial syndrome or odd
     * readout parity are dropped; under ApplyFix every trial passes
     * and the decoded single-qubit patch is applied per trial).
     */
    void
    correctStage(bool phase, int base_a, int base_anc, const Word *m)
    {
        correctionAttempts += popcount(m, words_);

        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (phase)
                gateCx(base_anc + q, base_a + q, m);
            else
                gateCx(base_a + q, base_anc + q, m);
        }
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            Word *out = &meas_[static_cast<std::size_t>(q) * wv()];
            if (phase)
                measureXFlip(base_anc + q, m, out);
            else
                measureZFlip(base_anc + q, m, out);
        }

        if (semantics_ == CorrectionSemantics::ApplyFix) {
            applyFixScatter(phase, base_a, m);
            std::copy(m, m + words_, ok_.begin());
            return;
        }

        for (int w = 0; w < words_; ++w) {
            Word s_any = 0;
            Word parity = 0;
            for (int bit = 0; bit < 3; ++bit)
                s_any |= syndromeWord(bit, w);
            for (int q = 0; q < SteaneCode::numPhysical; ++q)
                parity ^= meas_[static_cast<std::size_t>(q) * wv()
                                + static_cast<std::size_t>(w)];
            const Word bad = (s_any | parity) & m[w];
            correctionFailures += static_cast<std::uint64_t>(
                __builtin_popcountll(bad));
            ok_[w] = m[w] & ~bad;
        }
    }

    /**
     * Parity-aware patch scatter from the current meas_ readout
     * (SteaneCode::fixFor): over the 15 non-trivial (syndrome,
     * parity) readout classes, trials in a class get the decoded
     * minimal-weight patch (one gate error per patched qubit) on
     * block A — X patches for the bit stage, Z for the phase
     * stage. The patch matches the readout's coset, so correlated
     * even-parity patterns are not "completed" into logical
     * operators (the first-order failure path of a syndrome-only
     * single-qubit decode).
     */
    void
    applyFixScatter(bool phase, int base_a, const Word *m)
    {
        for (int w = 0; w < words_; ++w) {
            Word parity = 0;
            for (int q = 0; q < SteaneCode::numPhysical; ++q)
                parity ^= meas_[static_cast<std::size_t>(q) * wv()
                                + static_cast<std::size_t>(w)];
            parity_[static_cast<std::size_t>(w)] = parity;
        }
        for (int odd = 1; odd >= 0; --odd) {
            for (unsigned s = 0; s < 8; ++s) {
                const SteaneCode::Mask fix =
                    SteaneCode::fixFor(s, odd != 0);
                if (!fix)
                    continue;
                syndromeEquals(s, m);
                for (int w = 0; w < words_; ++w) {
                    const Word p =
                        parity_[static_cast<std::size_t>(w)];
                    eq_[static_cast<std::size_t>(w)] &=
                        odd ? p : ~p;
                }
                if (!any(eq_.data(), words_))
                    continue;
                for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                    if (!(fix & (SteaneCode::Mask{1} << q)))
                        continue;
                    if (phase)
                        frame_.flipZ(base_a + q, eq_.data());
                    else
                        frame_.flipX(base_a + q, eq_.data());
                    frame_.inject1q(rng_, pGate_, base_a + q,
                                    eq_.data());
                }
            }
        }
    }

    /**
     * ApplyFix phase correction for verified pipelines: Shor-style
     * repeated syndrome extraction, mirroring the scalar engine's
     * phaseCorrectConfirmed. Each round preps a fresh verified
     * ancilla for the still-unconfirmed trials, extracts (syndrome,
     * parity), and patches the trials whose extraction agrees with
     * their previous one; the rest carry the new readout into the
     * next round. Each extraction tallies a correction attempt.
     */
    void
    phaseCorrectConfirmed(int base_a, int base_c, const Word *m)
    {
        std::copy(m, m + words_, confirm_.begin());
        std::fill(have_.begin(), have_.end(), Word{0});
        while (any(confirm_.data(), words_)) {
            prepareBlock(base_c, /*verified=*/true,
                         confirm_.data());
            correctionAttempts += popcount(confirm_.data(), words_);
            for (int q = 0; q < SteaneCode::numPhysical; ++q)
                gateCx(base_c + q, base_a + q, confirm_.data());
            for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                Word *out =
                    &meas_[static_cast<std::size_t>(q) * wv()];
                measureXFlip(base_c + q, confirm_.data(), out);
            }
            for (int w = 0; w < words_; ++w) {
                const Word s0 = syndromeWord(0, w);
                const Word s1 = syndromeWord(1, w);
                const Word s2 = syndromeWord(2, w);
                Word parity = 0;
                for (int q = 0; q < SteaneCode::numPhysical; ++q)
                    parity ^=
                        meas_[static_cast<std::size_t>(q) * wv()
                              + static_cast<std::size_t>(w)];
                agree_[w] = confirm_[w] & have_[w]
                    & ~((s0 ^ prevS0_[w]) | (s1 ^ prevS1_[w])
                        | (s2 ^ prevS2_[w]) | (parity ^ prevP_[w]));
                prevS0_[w] = s0;
                prevS1_[w] = s1;
                prevS2_[w] = s2;
                prevP_[w] = parity;
                have_[w] |= confirm_[w];
            }
            if (any(agree_.data(), words_)) {
                applyFixScatter(/*phase=*/true, base_a,
                                agree_.data());
                for (int w = 0; w < words_; ++w)
                    confirm_[w] &= ~agree_[w];
            }
        }
    }

    /** Word `w` of Hamming-syndrome bit `bit` over the readouts. */
    Word
    syndromeWord(int bit, int w) const
    {
        Word s = 0;
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if ((static_cast<unsigned>(q) + 1) & (1u << bit))
                s ^= meas_[static_cast<std::size_t>(q) * wv()
                           + static_cast<std::size_t>(w)];
        }
        return s;
    }

    /** eq_ := trials in m whose readout syndrome equals `value`. */
    void
    syndromeEquals(unsigned value, const Word *m)
    {
        for (int w = 0; w < words_; ++w) {
            Word mismatch = 0;
            for (int bit = 0; bit < 3; ++bit) {
                const Word want =
                    (value & (1u << bit)) ? ~Word{0} : Word{0};
                mismatch |= syndromeWord(bit, w) ^ want;
            }
            eq_[w] = ~mismatch & m[w];
        }
    }

    /**
     * Word-parallel residual classification of block A. For the
     * Steane code with perfect decoding, the residual is logical iff
     * parity(error) XOR (syndrome != 0): the correction flips one
     * qubit exactly when the syndrome is non-trivial, and a
     * trivial-syndrome residual is a stabilizer (even parity) or a
     * logical representative (odd parity). A unit test checks this
     * identity against SteaneCode::badCoset for all 128 patterns.
     */
    void
    classifyTally(const Word *m)
    {
        if (!any(m, words_))
            return;
        for (int w = 0; w < words_; ++w) {
            Word fail = 0;
            for (int plane = 0; plane < 2; ++plane) {
                Word parity = 0;
                Word s0 = 0, s1 = 0, s2 = 0;
                for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                    const Word e = plane == 0
                        ? frame_.x(blockA + q)[w]
                        : frame_.z(blockA + q)[w];
                    parity ^= e;
                    const unsigned col = static_cast<unsigned>(q) + 1;
                    if (col & 1u)
                        s0 ^= e;
                    if (col & 2u)
                        s1 ^= e;
                    if (col & 4u)
                        s2 ^= e;
                }
                fail |= parity ^ (s0 | s1 | s2);
            }
            failures += static_cast<std::uint64_t>(
                __builtin_popcountll(fail & m[w]));
        }
    }

    MovementModel movement_;
    CorrectionSemantics semantics_;
    int words_;
    Rng rng_;
    BernoulliWord pGate_;
    BernoulliWord pMove_;
    BatchPauliFrame frame_;

    std::vector<Word> meas_; ///< 7 readout-flip planes (7 * words_)
    std::vector<Word> active_;
    std::vector<Word> pending_;
    std::vector<Word> survivors_;
    std::vector<Word> done_;
    std::vector<Word> ok_;
    std::vector<Word> prepMask_;
    std::vector<Word> flip_;
    std::vector<Word> measTmp_;
    std::vector<Word> eq_;
    std::vector<Word> parity_; ///< logical readout parity per trial
    // Confirmed phase-correction state (syndrome bits + parity of
    // the previous extraction, per trial).
    std::vector<Word> confirm_; ///< trials awaiting confirmation
    std::vector<Word> have_;    ///< trials with a previous readout
    std::vector<Word> agree_;   ///< trials whose extractions agree
    std::vector<Word> prevS0_;
    std::vector<Word> prevS1_;
    std::vector<Word> prevS2_;
    std::vector<Word> prevP_;
    std::vector<Word> coin_;
};

} // namespace

BatchAncillaSim::BatchAncillaSim(ErrorParams errors,
                                 MovementModel movement,
                                 std::uint64_t seed,
                                 CorrectionSemantics semantics,
                                 BatchSimConfig config)
    : errors_(errors), movement_(movement), semantics_(semantics),
      config_(config), seeder_(seed)
{
    if (config_.wordsPerQubit < 1)
        config_.wordsPerQubit = 1;
}

PrepEstimate
BatchAncillaSim::estimate(ZeroPrepStrategy strategy,
                          std::uint64_t trials)
{
    return run(strategy, /*pi8=*/false, trials);
}

PrepEstimate
BatchAncillaSim::estimatePi8(std::uint64_t trials)
{
    PrepEstimate est =
        run(ZeroPrepStrategy::VerifyAndCorrect, /*pi8=*/true, trials);
    // Match the scalar engine's reporting: estimatePi8 publishes
    // only the verification tallies.
    est.correctionTrials = 0;
    est.correctionDiscards = 0;
    return est;
}

PrepEstimate
BatchAncillaSim::run(ZeroPrepStrategy strategy, bool pi8,
                     std::uint64_t trials)
{
    PrepEstimate est;
    est.trials = trials;
    if (trials == 0)
        return est;

    const int words = config_.wordsPerQubit;
    const std::uint64_t per = static_cast<std::uint64_t>(64 * words);
    const std::uint64_t num_batches = (trials + per - 1) / per;

    // One independent RNG stream per batch, split deterministically
    // from this run's seed: results depend only on (construction
    // seed, call number, trial count), never on thread scheduling.
    Rng master = seeder_.split();
    std::vector<std::uint64_t> seeds(num_batches);
    for (auto &s : seeds)
        s = master();

    int threads = config_.threads;
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::uint64_t>(threads) > num_batches)
        threads = static_cast<int>(num_batches);

    /**
     * Cross-thread tally aggregation behind an annotated mutex:
     * each worker folds its whole-run counters in once, at the end.
     * Unsigned sums commute, so the (scheduling-dependent) merge
     * order cannot affect the totals — thread-count invariance of
     * the estimate is preserved by algebra, not by ordering.
     */
    struct TallyBoard
    {
        Mutex mutex;
        std::uint64_t failures QC_GUARDED_BY(mutex) = 0;
        std::uint64_t verifyTrials QC_GUARDED_BY(mutex) = 0;
        std::uint64_t discards QC_GUARDED_BY(mutex) = 0;
        std::uint64_t correctionTrials QC_GUARDED_BY(mutex) = 0;
        std::uint64_t correctionDiscards QC_GUARDED_BY(mutex) = 0;
    } tallies;

    // The batch-claim counter is memory_order_relaxed on purpose:
    // it only partitions indices. Each claimed batch touches
    // nothing shared (worker-local frame, read-only seed table),
    // and every tally is published under tallies.mutex after the
    // loop — the counter itself synchronizes nothing. See
    // docs/ANALYSIS.md ("Relaxed atomics").
    std::atomic<std::uint64_t> next{0};

    auto work = [&]() {
        BatchWorker worker(errors_, movement_, semantics_, words);
        for (;;) {
            const std::uint64_t b =
                next.fetch_add(1, std::memory_order_relaxed);
            if (b >= num_batches)
                break;
            const std::uint64_t lo = b * per;
            const int k = static_cast<int>(
                std::min<std::uint64_t>(per, trials - lo));
            const Word *active = worker.activeMask(k);
            if (pi8)
                worker.runPi8Batch(Rng(seeds[b]), active);
            else
                worker.runZeroBatch(Rng(seeds[b]), strategy, active);
        }
        MutexLock lock(tallies.mutex);
        tallies.failures += worker.failures;
        tallies.verifyTrials += worker.verifyAttempts;
        tallies.discards += worker.verifyFailures;
        tallies.correctionTrials += worker.correctionAttempts;
        tallies.correctionDiscards += worker.correctionFailures;
    };

    if (threads == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(work);
        for (auto &th : pool)
            th.join();
    }

    {
        MutexLock lock(tallies.mutex);
        est.failures = tallies.failures;
        est.verifyTrials = tallies.verifyTrials;
        est.discards = tallies.discards;
        est.correctionTrials = tallies.correctionTrials;
        est.correctionDiscards = tallies.correctionDiscards;
    }
    return est;
}

} // namespace qc
