/**
 * @file
 * Monte Carlo simulation of the encoded-zero ancilla preparation
 * strategies of paper Section 2.3 / Figure 4, and of the pi/8
 * ancilla conversion of Section 2.4 / Figure 5b.
 *
 * Each strategy is simulated at the physical-circuit level with
 * Pauli-frame tracking: gate errors at rate pGate on every prep,
 * one-qubit gate, two-qubit gate and measurement; movement errors at
 * rate pMove per movement op (counts set by a MovementModel, by
 * default calibrated from the Fig 11-style factory layout); CX
 * propagation of bit/phase flips; verification post-selection on
 * cat-state parity; and perfect-decoder classification of the
 * residual error on the output block.
 */

#ifndef QC_ERROR_ANCILLA_SIM_HH
#define QC_ERROR_ANCILLA_SIM_HH

#include <cstdint>

#include "common/Params.hh"
#include "common/Rng.hh"
#include "common/Stats.hh"
#include "error/FaultOracle.hh"
#include "error/PauliFrame.hh"

namespace qc {

/** The four preparation strategies of Figure 4 (plus bare basic). */
enum class ZeroPrepStrategy
{
    Basic,            ///< Fig 3b only (error 1.8e-3 in the paper)
    VerifyOnly,       ///< Fig 4a (3.7e-4)
    CorrectOnly,      ///< Fig 4b (1.1e-3)
    VerifyAndCorrect, ///< Fig 4c (2.9e-5)
};

/** Display name for a strategy. */
const char *zeroPrepStrategyName(ZeroPrepStrategy strategy);

/**
 * What a correction stage does when its extracted syndrome (or the
 * logical parity of the readout word) is non-trivial.
 *
 * The paper's Fig 4b/4c circuits apply the decoded fix in place
 * (ApplyFix). A factory producing short-lived ancillae can instead
 * discard and recycle the block (DiscardOnSyndrome), which the paper
 * motivates in Section 3 and which strictly dominates in output
 * fidelity at a small yield cost. The Figure 4 bench reports both.
 */
enum class CorrectionSemantics
{
    DiscardOnSyndrome, ///< recycle the block on any detected error
    ApplyFix,          ///< apply the decoded single-qubit patch
};

/**
 * Movement operations charged around each physical gate
 * (Section 2.2: "the addition of qubit movement error from our
 * detailed layout"). Defaults approximate the hand-optimized
 * schedule of the Fig 11 factory: 30 straight moves and 8 turns
 * over ~19 gate ops, i.e. roughly 1-2 moves and half a turn per
 * gate operand; the layout module can produce calibrated instances
 * from routed layouts.
 */
struct MovementModel
{
    /** Straight moves charged per two-qubit gate. */
    int movesPerCx = 3;
    /** Turns charged per two-qubit gate. */
    int turnsPerCx = 1;
    /** Straight moves charged per measurement (to the gate port). */
    int movesPerMeas = 1;
    /** No movement by default for 1q gates/preps (in-trap ops). */
    int movesPer1q = 0;
};

/** Outcome of a single simulated preparation. */
struct PrepOutcome
{
    bool discarded = false; ///< a verification failed (pre-retry)
    bool logicalX = false;  ///< uncorrectable X on the output block
    bool logicalZ = false;  ///< uncorrectable Z on the output block

    /** Any uncorrectable error. */
    bool failed() const { return logicalX || logicalZ; }
};

/** Aggregated Monte Carlo estimate. */
struct PrepEstimate
{
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;    ///< uncorrectable outputs
    std::uint64_t discards = 0;    ///< verification rejections
    std::uint64_t verifyTrials = 0;///< verification attempts made
    std::uint64_t correctionDiscards = 0; ///< correction recycles
    std::uint64_t correctionTrials = 0;   ///< correction attempts

    /** Estimated output logical error rate. */
    double errorRate() const;

    /** 95% Wilson interval on the error rate. */
    Interval errorInterval() const;

    /** Estimated per-attempt verification failure rate. */
    double discardRate() const;

    /** Estimated per-attempt correction-stage recycle rate. */
    double correctionDiscardRate() const;
};

/**
 * Simulator for encoded-ancilla preparation error rates.
 */
class AncillaPrepSimulator
{
  public:
    AncillaPrepSimulator(
        ErrorParams errors, MovementModel movement, std::uint64_t seed,
        CorrectionSemantics semantics =
            CorrectionSemantics::DiscardOnSyndrome);

    /**
     * Simulate one preparation with the given strategy. Verified
     * strategies retry each block until it passes verification
     * (discards are tallied, matching the factory's recycling of
     * failed blocks).
     */
    PrepOutcome simulateOnce(ZeroPrepStrategy strategy);

    /**
     * Run many trials and aggregate. Delegates to the bit-parallel
     * batched engine (BatchAncillaSim), which advances 64+ trials
     * per word op; the run seed is drawn from this simulator's RNG
     * stream so successive calls are independent but a fixed
     * construction seed reproduces the same sequence.
     */
    PrepEstimate estimate(ZeroPrepStrategy strategy,
                          std::uint64_t trials);

    /**
     * Scalar reference version of estimate(): one simulateOnce call
     * per trial. Kept for cross-validation of the batched engine
     * and for microbenchmark baselines.
     */
    PrepEstimate estimateScalar(ZeroPrepStrategy strategy,
                                std::uint64_t trials);

    /**
     * Simulate one pi/8 ancilla conversion (Fig 5b): a verified and
     * corrected zero ancilla plus a 7-qubit cat state, transversal
     * interaction, decode and measurement fix-up. The outcome
     * classifies the residual error on the produced pi/8 block.
     */
    PrepOutcome simulatePi8Once();

    /** Aggregate pi/8 conversion failure rate (batched engine). */
    PrepEstimate estimatePi8(std::uint64_t trials);

    /** Scalar reference version of estimatePi8(). */
    PrepEstimate estimateScalarPi8(std::uint64_t trials);

    /**
     * Install a fault oracle owning every site's fire/no-fire
     * decision (non-owning pointer; nullptr restores the natural
     * Bernoulli draws, whose RNG stream is identical to the
     * pre-oracle engine). Used by the stratified importance sampler.
     */
    void setFaultOracle(FaultOracle *oracle) { oracle_ = oracle; }

  private:
    /** Run the Fig 3b basic encode on block at base offset. */
    void basicEncode(int base);

    /**
     * Verify block with a 3-qubit cat (measure the weight-3 logical
     * Z representative). Returns true if accepted. Tallies a
     * verification attempt.
     */
    bool verifyBlock(int base);

    /** Prepare a block with optional verification (with retries). */
    void prepareBlock(int base, bool verified);

    /**
     * Bit-correction stage on block A using freshly prepared block
     * B (Steane-style syndrome extraction). In the factory setting
     * a detected error discards the block instead of patching it —
     * ancillae are cheap to recycle (Section 3) — so this returns
     * false when the extracted X syndrome or the logical parity of
     * the readout word is non-trivial.
     */
    bool bitCorrect(int baseA, int baseB);

    /** Phase-correction stage (Z syndrome via X-basis readout). */
    bool phaseCorrect(int baseA, int baseC);

    /**
     * ApplyFix phase correction for verified pipelines: Shor-style
     * repeated syndrome extraction. Fresh verified ancillas extract
     * the Z syndrome (and logical readout parity) until two
     * consecutive extractions agree; only then is the decoded patch
     * (SteaneCode::fixFor) applied. A single fault — in an ancilla,
     * a coupling, or a readout — corrupts at most one extraction
     * and so can never confirm a wrong multi-qubit patch, closing
     * the first-order path where an ancilla's correlated Z errors
     * (which verification cannot screen) would be patched onto the
     * output block. Each extraction tallies a correction attempt.
     */
    void phaseCorrectConfirmed(int baseA, int baseC);

    /** Movement error charges. */
    void chargeCxMovement(int a, int b);
    void chargeMeasMovement(int q);

    /** Fault sites (oracle-mediated fire decision + kind draw). */
    bool siteFault(FaultClass cls, double p);
    void inject1(FaultClass cls, double p, int q);
    void inject2(FaultClass cls, double p, int a, int b);

    /** Gate wrappers (apply + inject). */
    void gateH(int q);
    void gatePrep(int q);
    void gateCx(int control, int target);
    /** Measure in Z: returns whether the *recorded outcome* flipped. */
    bool measureZFlip(int q);
    /** Measure in X basis (H then Z). */
    bool measureXFlip(int q);

    /** Classify the residual on a block as a PrepOutcome. */
    PrepOutcome classify(int base) const;

    ErrorParams errors_;
    MovementModel movement_;
    CorrectionSemantics semantics_;
    Rng rng_;
    PauliFrame frame_;
    FaultOracle *oracle_ = nullptr;
    std::uint64_t verifyAttempts_ = 0;
    std::uint64_t verifyFailures_ = 0;
    std::uint64_t correctionAttempts_ = 0;
    std::uint64_t correctionFailures_ = 0;
};

} // namespace qc

#endif // QC_ERROR_ANCILLA_SIM_HH
