#include "error/AncillaSim.hh"

#include "codes/SteaneCode.hh"
#include "common/Logging.hh"
#include "error/BatchAncillaSim.hh"

namespace qc {

namespace {

// Block base offsets within the Pauli frame.
constexpr int blockA = 0;   // output block
constexpr int blockB = 7;   // bit-correction ancilla
constexpr int blockC = 14;  // phase-correction ancilla
constexpr int catBase = 21; // cat qubits (3 or 7)

} // namespace

const char *
zeroPrepStrategyName(ZeroPrepStrategy strategy)
{
    switch (strategy) {
      case ZeroPrepStrategy::Basic:
        return "Basic 0 (no conditioning)";
      case ZeroPrepStrategy::VerifyOnly:
        return "Verify Only (Fig 4a)";
      case ZeroPrepStrategy::CorrectOnly:
        return "Correct Only (Fig 4b)";
      case ZeroPrepStrategy::VerifyAndCorrect:
        return "Verify and Correct (Fig 4c)";
    }
    return "?";
}

double
PrepEstimate::errorRate() const
{
    return trials ? static_cast<double>(failures)
                      / static_cast<double>(trials)
                  : 0.0;
}

Interval
PrepEstimate::errorInterval() const
{
    return wilsonInterval(failures, trials ? trials : 1);
}

double
PrepEstimate::discardRate() const
{
    return verifyTrials ? static_cast<double>(discards)
                            / static_cast<double>(verifyTrials)
                        : 0.0;
}

double
PrepEstimate::correctionDiscardRate() const
{
    return correctionTrials
               ? static_cast<double>(correctionDiscards)
                     / static_cast<double>(correctionTrials)
               : 0.0;
}

AncillaPrepSimulator::AncillaPrepSimulator(ErrorParams errors,
                                           MovementModel movement,
                                           std::uint64_t seed,
                                           CorrectionSemantics semantics)
    : errors_(errors), movement_(movement), semantics_(semantics),
      rng_(seed)
{
}

// Every stochastic fault site funnels through siteFault so an
// installed FaultOracle can own the fire decision (stratified
// importance sampling). Without an oracle the natural Bernoulli
// draw below consumes exactly the pre-seam RNG stream.
bool
AncillaPrepSimulator::siteFault(FaultClass cls, double p)
{
    if (oracle_ != nullptr)
        return oracle_->fault(rng_, cls, p);
    return rng_.bernoulli(p);
}

void
AncillaPrepSimulator::inject1(FaultClass cls, double p, int q)
{
    if (siteFault(cls, p))
        frame_.applyUniform1(rng_, q);
}

void
AncillaPrepSimulator::inject2(FaultClass cls, double p, int a, int b)
{
    if (siteFault(cls, p))
        frame_.applyUniform2(rng_, a, b);
}

void
AncillaPrepSimulator::chargeCxMovement(int a, int b)
{
    for (int i = 0; i < movement_.movesPerCx; ++i)
        inject1(FaultClass::Move, errors_.pMove, (i & 1) ? b : a);
    for (int i = 0; i < movement_.turnsPerCx; ++i)
        inject1(FaultClass::Move, errors_.pMove, (i & 1) ? b : a);
}

void
AncillaPrepSimulator::chargeMeasMovement(int q)
{
    for (int i = 0; i < movement_.movesPerMeas; ++i)
        inject1(FaultClass::Move, errors_.pMove, q);
}

void
AncillaPrepSimulator::gateH(int q)
{
    for (int i = 0; i < movement_.movesPer1q; ++i)
        inject1(FaultClass::Move, errors_.pMove, q);
    frame_.applyH(q);
    inject1(FaultClass::Gate, errors_.pGate, q);
}

void
AncillaPrepSimulator::gatePrep(int q)
{
    frame_.clearRange(q, 1);
    inject1(FaultClass::Gate, errors_.pGate, q);
}

void
AncillaPrepSimulator::gateCx(int control, int target)
{
    chargeCxMovement(control, target);
    frame_.applyCx(control, target);
    inject2(FaultClass::Gate, errors_.pGate, control, target);
}

bool
AncillaPrepSimulator::measureZFlip(int q)
{
    chargeMeasMovement(q);
    const bool flip =
        frame_.hasX(q) ^ siteFault(FaultClass::Gate, errors_.pGate);
    frame_.clearRange(q, 1); // qubit leaves the computation
    return flip;
}

bool
AncillaPrepSimulator::measureXFlip(int q)
{
    chargeMeasMovement(q);
    const bool flip =
        frame_.hasZ(q) ^ siteFault(FaultClass::Gate, errors_.pGate);
    frame_.clearRange(q, 1);
    return flip;
}

void
AncillaPrepSimulator::basicEncode(int base)
{
    for (int q = 0; q < SteaneCode::numPhysical; ++q)
        gatePrep(base + q);
    for (int seed : SteaneCode::encoderSeeds)
        gateH(base + seed);
    for (const auto &cx : SteaneCode::encoderCxs)
        gateCx(base + cx.control, base + cx.target);
}

bool
AncillaPrepSimulator::verifyBlock(int base)
{
    ++verifyAttempts_;

    // 3-qubit cat state.
    for (int i = 0; i < 3; ++i)
        gatePrep(catBase + i);
    gateH(catBase);
    gateCx(catBase, catBase + 1);
    gateCx(catBase + 1, catBase + 2);

    // Shor-style parity check of the weight-3 logical Z
    // representative (CZ orientation with X-basis cat readout; the
    // factory layout realizes the equivalent CX-conjugated form).
    int cat = catBase;
    for (int q = 0; q < SteaneCode::numPhysical; ++q) {
        if (SteaneCode::verifyMask & (SteaneCode::Mask{1} << q)) {
            chargeCxMovement(base + q, cat);
            frame_.applyCz(base + q, cat);
            inject2(FaultClass::Gate, errors_.pGate, base + q, cat);
            ++cat;
        }
    }

    bool parity_flip = false;
    for (int i = 0; i < 3; ++i)
        parity_flip ^= measureXFlip(catBase + i);

    if (parity_flip) {
        ++verifyFailures_;
        return false;
    }
    return true;
}

void
AncillaPrepSimulator::prepareBlock(int base, bool verified)
{
    do {
        frame_.clearRange(base, SteaneCode::numPhysical);
        basicEncode(base);
    } while (verified && !verifyBlock(base));
}

bool
AncillaPrepSimulator::bitCorrect(int base_a, int base_b)
{
    ++correctionAttempts_;

    // Transversal CX data->ancilla copies the data's X errors onto
    // the ancilla; Z-basis readout of the ancilla yields the
    // syndrome (the ancilla's own codeword bits are syndromeless)
    // and its overall parity the logical-X check.
    for (int q = 0; q < SteaneCode::numPhysical; ++q)
        gateCx(base_a + q, base_b + q);

    SteaneCode::Mask measured = 0;
    for (int q = 0; q < SteaneCode::numPhysical; ++q) {
        if (measureZFlip(base_b + q))
            measured |= SteaneCode::Mask{1} << q;
    }
    if (semantics_ == CorrectionSemantics::ApplyFix) {
        // Parity-aware fix-up: the readout word's logical parity
        // disambiguates the coset, so correlated even-parity
        // patterns get a (stabilizer-residual) multi-qubit patch
        // instead of being "completed" into a logical operator.
        const SteaneCode::Mask fix =
            SteaneCode::fixFor(SteaneCode::syndromeOf(measured),
                               SteaneCode::parity(measured));
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (fix & (SteaneCode::Mask{1} << q)) {
                frame_.flipX(base_a + q);
                inject1(FaultClass::Gate, errors_.pGate, base_a + q);
            }
        }
        return true;
    }
    if (SteaneCode::syndromeOf(measured) != 0 ||
        SteaneCode::parity(measured)) {
        ++correctionFailures_;
        return false;
    }
    return true;
}

bool
AncillaPrepSimulator::phaseCorrect(int base_a, int base_c)
{
    ++correctionAttempts_;

    // Transversal CX ancilla->data copies the data's Z errors onto
    // the ancilla; X-basis readout yields the Z syndrome.
    for (int q = 0; q < SteaneCode::numPhysical; ++q)
        gateCx(base_c + q, base_a + q);

    SteaneCode::Mask measured = 0;
    for (int q = 0; q < SteaneCode::numPhysical; ++q) {
        if (measureXFlip(base_c + q))
            measured |= SteaneCode::Mask{1} << q;
    }
    if (semantics_ == CorrectionSemantics::ApplyFix) {
        // Same parity-aware decode as the bit stage (see there).
        const SteaneCode::Mask fix =
            SteaneCode::fixFor(SteaneCode::syndromeOf(measured),
                               SteaneCode::parity(measured));
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (fix & (SteaneCode::Mask{1} << q)) {
                frame_.flipZ(base_a + q);
                inject1(FaultClass::Gate, errors_.pGate, base_a + q);
            }
        }
        return true;
    }
    if (SteaneCode::syndromeOf(measured) != 0 ||
        SteaneCode::parity(measured)) {
        ++correctionFailures_;
        return false;
    }
    return true;
}

void
AncillaPrepSimulator::phaseCorrectConfirmed(int base_a, int base_c)
{
    bool have = false;
    unsigned prev_s = 0;
    bool prev_p = false;
    for (;;) {
        prepareBlock(base_c, /*verified=*/true);
        ++correctionAttempts_;

        // One Z-syndrome extraction, as in phaseCorrect.
        for (int q = 0; q < SteaneCode::numPhysical; ++q)
            gateCx(base_c + q, base_a + q);
        SteaneCode::Mask measured = 0;
        for (int q = 0; q < SteaneCode::numPhysical; ++q) {
            if (measureXFlip(base_c + q))
                measured |= SteaneCode::Mask{1} << q;
        }
        const unsigned s = SteaneCode::syndromeOf(measured);
        const bool p = SteaneCode::parity(measured);

        if (have && s == prev_s && p == prev_p) {
            // Confirmed: apply the parity-aware minimal-weight
            // patch (one gate error per patched qubit).
            const SteaneCode::Mask fix = SteaneCode::fixFor(s, p);
            for (int q = 0; q < SteaneCode::numPhysical; ++q) {
                if (fix & (SteaneCode::Mask{1} << q)) {
                    frame_.flipZ(base_a + q);
                    inject1(FaultClass::Gate, errors_.pGate, base_a + q);
                }
            }
            return;
        }
        have = true;
        prev_s = s;
        prev_p = p;
    }
}

PrepOutcome
AncillaPrepSimulator::classify(int base) const
{
    PrepOutcome out;
    out.logicalX = SteaneCode::badCoset(static_cast<
        SteaneCode::Mask>(frame_.xBits(base, SteaneCode::numPhysical)));
    out.logicalZ = SteaneCode::badCoset(static_cast<
        SteaneCode::Mask>(frame_.zBits(base, SteaneCode::numPhysical)));
    return out;
}

PrepOutcome
AncillaPrepSimulator::simulateOnce(ZeroPrepStrategy strategy)
{
    frame_.clear();
    const std::uint64_t fails_before = verifyFailures_;
    const bool verified =
        strategy == ZeroPrepStrategy::VerifyOnly ||
        strategy == ZeroPrepStrategy::VerifyAndCorrect;
    const bool corrected =
        strategy == ZeroPrepStrategy::CorrectOnly ||
        strategy == ZeroPrepStrategy::VerifyAndCorrect;

    if (!corrected) {
        prepareBlock(blockA, verified);
    } else {
        // A detected error at either correction stage discards the
        // whole pipeline output and recycles the qubits (short-lived
        // ancillae are cheap to re-encode, Section 3). Bit
        // correction runs first, so Z junk copied onto A by block B
        // is still screened by the phase stage (Fig 2's ordering).
        // Under ApplyFix a verified pipeline must not trust a
        // single Z-syndrome extraction (the ancilla's correlated Z
        // errors are invisible to verification and would be patched
        // onto A): the phase patch requires two consecutive
        // agreeing extractions instead.
        const bool confirmed = verified
            && semantics_ == CorrectionSemantics::ApplyFix;
        for (;;) {
            frame_.clear();
            prepareBlock(blockA, verified);
            prepareBlock(blockB, verified);
            if (!bitCorrect(blockA, blockB))
                continue;
            if (confirmed) {
                phaseCorrectConfirmed(blockA, blockC);
                break;
            }
            prepareBlock(blockC, verified);
            if (!phaseCorrect(blockA, blockC))
                continue;
            break;
        }
    }
    PrepOutcome out = classify(blockA);
    out.discarded = verifyFailures_ != fails_before;
    return out;
}

PrepEstimate
AncillaPrepSimulator::estimate(ZeroPrepStrategy strategy,
                               std::uint64_t trials)
{
    BatchAncillaSim batch(errors_, movement_, rng_(), semantics_);
    return batch.estimate(strategy, trials);
}

PrepEstimate
AncillaPrepSimulator::estimateScalar(ZeroPrepStrategy strategy,
                                     std::uint64_t trials)
{
    PrepEstimate est;
    est.trials = trials;
    const std::uint64_t attempts_before = verifyAttempts_;
    const std::uint64_t failures_before = verifyFailures_;
    const std::uint64_t corr_attempts_before = correctionAttempts_;
    const std::uint64_t corr_failures_before = correctionFailures_;
    for (std::uint64_t i = 0; i < trials; ++i) {
        if (simulateOnce(strategy).failed())
            ++est.failures;
    }
    est.verifyTrials = verifyAttempts_ - attempts_before;
    est.discards = verifyFailures_ - failures_before;
    est.correctionTrials = correctionAttempts_ - corr_attempts_before;
    est.correctionDiscards =
        correctionFailures_ - corr_failures_before;
    return est;
}

PrepOutcome
AncillaPrepSimulator::simulatePi8Once()
{
    frame_.clear();
    const std::uint64_t fails_before = verifyFailures_;

    // High-fidelity encoded zero input (Fig 4c); ApplyFix instances
    // confirm the phase patch by repeated extraction, as in
    // simulateOnce.
    for (;;) {
        frame_.clear();
        prepareBlock(blockA, true);
        prepareBlock(blockB, true);
        if (!bitCorrect(blockA, blockB))
            continue;
        if (semantics_ == CorrectionSemantics::ApplyFix) {
            phaseCorrectConfirmed(blockA, blockC);
            break;
        }
        prepareBlock(blockC, true);
        if (!phaseCorrect(blockA, blockC))
            continue;
        break;
    }

    // 7-qubit cat state (Fig 5b): prep, H, CX chain.
    const int cat7 = blockB; // blocks B/C are free again
    for (int i = 0; i < 7; ++i)
        gatePrep(cat7 + i);
    gateH(cat7);
    for (int i = 0; i < 6; ++i)
        gateCx(cat7 + i, cat7 + i + 1);

    // Transversal controlled interaction between cat and the zero
    // block, plus the transversal pi/8 gates. T is not Clifford; we
    // conjugate the frame through it as through S (standard
    // approximation for rate estimation).
    for (int i = 0; i < 7; ++i) {
        chargeCxMovement(cat7 + i, blockA + i);
        frame_.applyCz(cat7 + i, blockA + i);
        inject2(FaultClass::Gate, errors_.pGate, cat7 + i, blockA + i);
    }
    for (int i = 0; i < 7; ++i) {
        frame_.applyS(blockA + i);
        inject1(FaultClass::Gate, errors_.pGate, blockA + i);
    }

    // Decode the cat block (reverse chain + H) and measure it.
    for (int i = 5; i >= 0; --i)
        gateCx(cat7 + i, cat7 + i + 1);
    gateH(cat7);
    bool outcome_flip = false;
    for (int i = 0; i < 7; ++i)
        outcome_flip ^= measureZFlip(cat7 + i);
    (void)outcome_flip;

    // Conditional transversal Z fix-up: applied for half of the
    // measurement outcomes; the intended gate leaves the frame
    // untouched but contributes gate errors.
    const bool fixup = oracle_ != nullptr ? oracle_->coin(rng_)
                                          : rng_.bernoulli(0.5);
    if (fixup) {
        for (int i = 0; i < 7; ++i)
            inject1(FaultClass::Gate, errors_.pGate, blockA + i);
    }

    PrepOutcome out = classify(blockA);
    out.discarded = verifyFailures_ != fails_before;
    return out;
}

PrepEstimate
AncillaPrepSimulator::estimatePi8(std::uint64_t trials)
{
    BatchAncillaSim batch(errors_, movement_, rng_(), semantics_);
    return batch.estimatePi8(trials);
}

PrepEstimate
AncillaPrepSimulator::estimateScalarPi8(std::uint64_t trials)
{
    PrepEstimate est;
    est.trials = trials;
    const std::uint64_t attempts_before = verifyAttempts_;
    const std::uint64_t failures_before = verifyFailures_;
    for (std::uint64_t i = 0; i < trials; ++i) {
        if (simulatePi8Once().failed())
            ++est.failures;
    }
    est.verifyTrials = verifyAttempts_ - attempts_before;
    est.discards = verifyFailures_ - failures_before;
    return est;
}

} // namespace qc
