/**
 * @file
 * Fault-site decision seam for the scalar ancilla simulator.
 *
 * Every stochastic fault site in AncillaPrepSimulator — gate-class
 * sites (prep/1q/2q gate errors and measurement readout flips at
 * pGate) and movement-class sites (straight moves and turns at
 * pMove) — routes its fire/no-fire decision through a FaultOracle.
 * The default (no oracle installed) draws the natural Bernoulli(p)
 * with exactly the pre-seam RNG stream, so scalar results are
 * unchanged. The importance sampler (error/ImportanceSampler.hh)
 * installs oracles that first *count* the noiseless path's sites
 * and then *schedule* an exact fixed fault count per trial.
 *
 * The pi/8 conversion's fair-coin fix-up branch also routes through
 * the oracle (coin()): it is not a fault site, but the counting
 * oracle must pin the branch that realizes the minimal site count
 * so every realized path has at least as many sites per class as
 * the count (the invariant the stratified estimator's conditional
 * sampling rule relies on).
 */

#ifndef QC_ERROR_FAULT_ORACLE_HH
#define QC_ERROR_FAULT_ORACLE_HH

#include "common/Rng.hh"

namespace qc {

/** The two independently stratified fault classes. */
enum class FaultClass
{
    Gate, ///< gate/prep/measurement error at pGate
    Move, ///< movement (straight move or turn) error at pMove
};

/** Decision seam for the scalar simulator's stochastic sites. */
class FaultOracle
{
  public:
    virtual ~FaultOracle() = default;

    /**
     * Whether the next realized site of class `cls` (natural rate
     * p) faults. Implementations that fault must leave `rng` ready
     * for the caller's subsequent Pauli-kind draw.
     */
    virtual bool fault(Rng &rng, FaultClass cls, double p) = 0;

    /**
     * The pi/8 conditional fix-up coin (fair, not a fault site).
     * Overridden by the counting oracle to pin the minimal-site
     * branch.
     */
    virtual bool
    coin(Rng &rng)
    {
        return rng.bernoulli(0.5);
    }
};

} // namespace qc

#endif // QC_ERROR_FAULT_ORACLE_HH
