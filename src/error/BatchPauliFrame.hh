/**
 * @file
 * Bit-parallel batched Pauli-frame tracking: the trial-major
 * transposition of PauliFrame.
 *
 * Where PauliFrame stores one trial as an X and a Z mask over 64
 * qubits, BatchPauliFrameT stores, per qubit, `wordsPerQubit` 64-bit
 * words whose bit t is the X (resp. Z) error of Monte Carlo trial t.
 * Every Clifford conjugation then advances 64*wordsPerQubit
 * independent trials with a handful of XOR/AND word operations and
 * no branches, which is the standard batched-frame layout from the
 * stabilizer-simulation literature.
 *
 * The class is templated on a simd::*Ops word-width policy (see
 * common/simd/SimdOps.hh): the pure-bitwise masked Clifford loops
 * are blocked by Ops::kLanes words per step (256/512-bit vectors
 * under the matching target flags) with a scalar tail, while every
 * RNG-consuming loop stays ordered per 64-bit word — which is what
 * makes results bit-identical across every width including the
 * scalar fallback. `BatchPauliFrame` aliases the 1-lane reference
 * instantiation.
 *
 * All mutators take an active-trial mask (one word array of the
 * same width): bits outside the mask are left untouched, which is
 * what lets divergent per-trial control flow (verification retries,
 * correction-stage discards) run in lockstep — finished trials are
 * simply dropped from the mask while stragglers loop again.
 *
 * Error injection comes in two flavours: the original per-word
 * BernoulliWord form (one uniform draw per *word*), and the
 * RareBernoulliStream form the batch engine now uses (one uniform
 * draw per *hit*, O(1) skip over hit-free injection sites). The
 * stream form always advances over all words_ regardless of the
 * mask — masked-out hits are discarded, they draw no Pauli kind —
 * so the RNG stream is a pure function of the injection sequence.
 */

#ifndef QC_ERROR_BATCH_PAULI_FRAME_HH
#define QC_ERROR_BATCH_PAULI_FRAME_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/Rng.hh"
#include "common/simd/SimdOps.hh"

namespace qc {

/** X/Z error bit-planes over numQubits x (64 * wordsPerQubit) trials. */
template <class Ops = simd::WordOps>
class BatchPauliFrameT
{
  public:
    using Word = std::uint64_t;

    BatchPauliFrameT(int num_qubits, int words_per_qubit)
        : numQubits_(num_qubits), words_(words_per_qubit),
          xw_(static_cast<std::size_t>(num_qubits * words_per_qubit)),
          zw_(static_cast<std::size_t>(num_qubits * words_per_qubit))
    {
        assert(num_qubits > 0 && words_per_qubit > 0);
    }

    int numQubits() const { return numQubits_; }

    /** Words per qubit bit-plane (batch width / 64). */
    int wordsPerQubit() const { return words_; }

    /** Concurrent Monte Carlo trials per batch. */
    int trials() const { return 64 * words_; }

    /** X bit-plane of qubit q (wordsPerQubit() words). */
    Word *x(int q) { return &xw_[plane(q)]; }
    const Word *x(int q) const { return &xw_[plane(q)]; }

    /** Z bit-plane of qubit q. */
    Word *z(int q) { return &zw_[plane(q)]; }
    const Word *z(int q) const { return &zw_[plane(q)]; }

    /** Clear every error bit of every trial. */
    void
    clear()
    {
        std::fill(xw_.begin(), xw_.end(), Word{0});
        std::fill(zw_.begin(), zw_.end(), Word{0});
    }

    /** Forget qubit q's errors in the masked trials (fresh prep). */
    void
    clearQubit(int q, const Word *m)
    {
        Word *xq = x(q);
        Word *zq = z(q);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes) {
            const auto keep = ~Ops::load(m + w);
            Ops::store(xq + w, Ops::load(xq + w) & keep);
            Ops::store(zq + w, Ops::load(zq + w) & keep);
        }
        for (; w < words_; ++w) {
            xq[w] &= ~m[w];
            zq[w] &= ~m[w];
        }
    }

    /** Toggle an X error on q in the masked trials. */
    void
    flipX(int q, const Word *m)
    {
        Word *xq = x(q);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes)
            Ops::store(xq + w, Ops::load(xq + w) ^ Ops::load(m + w));
        for (; w < words_; ++w)
            xq[w] ^= m[w];
    }

    /** Toggle a Z error on q in the masked trials. */
    void
    flipZ(int q, const Word *m)
    {
        Word *zq = z(q);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes)
            Ops::store(zq + w, Ops::load(zq + w) ^ Ops::load(m + w));
        for (; w < words_; ++w)
            zq[w] ^= m[w];
    }

    /** @name Branch-free masked Clifford conjugation. */
    /** @{ */

    /** Hadamard: swap X and Z in the masked trials (XOR swap). */
    void
    applyH(int q, const Word *m)
    {
        Word *xq = x(q);
        Word *zq = z(q);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes) {
            const auto xv = Ops::load(xq + w);
            const auto zv = Ops::load(zq + w);
            const auto diff = (xv ^ zv) & Ops::load(m + w);
            Ops::store(xq + w, xv ^ diff);
            Ops::store(zq + w, zv ^ diff);
        }
        for (; w < words_; ++w) {
            const Word diff = (xq[w] ^ zq[w]) & m[w];
            xq[w] ^= diff;
            zq[w] ^= diff;
        }
    }

    /** Phase gate: X -> Y (adds Z where X is set). */
    void
    applyS(int q, const Word *m)
    {
        const Word *xq = x(q);
        Word *zq = z(q);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes)
            Ops::store(zq + w,
                       Ops::load(zq + w)
                           ^ (Ops::load(xq + w) & Ops::load(m + w)));
        for (; w < words_; ++w)
            zq[w] ^= xq[w] & m[w];
    }

    /** CX: X on control spreads to target; Z on target to control. */
    void
    applyCx(int control, int target, const Word *m)
    {
        const Word *xc = x(control);
        Word *xt = x(target);
        Word *zc = z(control);
        const Word *zt = z(target);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes) {
            const auto mm = Ops::load(m + w);
            Ops::store(xt + w,
                       Ops::load(xt + w) ^ (Ops::load(xc + w) & mm));
            Ops::store(zc + w,
                       Ops::load(zc + w) ^ (Ops::load(zt + w) & mm));
        }
        for (; w < words_; ++w) {
            xt[w] ^= xc[w] & m[w];
            zc[w] ^= zt[w] & m[w];
        }
    }

    /** CZ: X on either side deposits Z on the other. */
    void
    applyCz(int a, int b, const Word *m)
    {
        const Word *xa = x(a);
        const Word *xb = x(b);
        Word *za = z(a);
        Word *zb = z(b);
        int w = 0;
        for (; w + Ops::kLanes <= words_; w += Ops::kLanes) {
            const auto mm = Ops::load(m + w);
            Ops::store(zb + w,
                       Ops::load(zb + w) ^ (Ops::load(xa + w) & mm));
            Ops::store(za + w,
                       Ops::load(za + w) ^ (Ops::load(xb + w) & mm));
        }
        for (; w < words_; ++w) {
            zb[w] ^= xa[w] & m[w];
            za[w] ^= xb[w] & m[w];
        }
    }

    /** @} */

    /** @name Batched error injection. */
    /** @{ */

    /**
     * Uniform non-identity Pauli with probability p on qubit q, per
     * masked trial. One Bernoulli word per mask word; the Pauli kind
     * is drawn per hit trial (hits are rare at physical rates).
     * Mask-all-zero words are skipped, so the RNG stream depends on
     * the mask — kept for the original engine's stream and tests.
     */
    void
    inject1q(Rng &rng, BernoulliWord &p, int q, const Word *m)
    {
        Word *xq = x(q);
        Word *zq = z(q);
        for (int w = 0; w < words_; ++w) {
            if (!m[w])
                continue;
            Word hit = p.next(rng) & m[w];
            while (hit) {
                const int t = __builtin_ctzll(hit);
                hit &= hit - 1;
                const int pauli =
                    static_cast<int>(rng.below(3)) + 1;
                if (pauli & 1)
                    xq[w] ^= Word{1} << t;
                if (pauli & 2)
                    zq[w] ^= Word{1} << t;
            }
        }
    }

    /** Uniform non-identity two-qubit Pauli, per masked trial. */
    void
    inject2q(Rng &rng, BernoulliWord &p, int a, int b, const Word *m)
    {
        Word *xa = x(a);
        Word *za = z(a);
        Word *xb = x(b);
        Word *zb = z(b);
        for (int w = 0; w < words_; ++w) {
            if (!m[w])
                continue;
            Word hit = p.next(rng) & m[w];
            while (hit) {
                const int t = __builtin_ctzll(hit);
                hit &= hit - 1;
                const int pauli =
                    static_cast<int>(rng.below(15)) + 1;
                if (pauli & 1)
                    xa[w] ^= Word{1} << t;
                if (pauli & 2)
                    za[w] ^= Word{1} << t;
                if (pauli & 4)
                    xb[w] ^= Word{1} << t;
                if (pauli & 8)
                    zb[w] ^= Word{1} << t;
            }
        }
    }

    /**
     * Stream-sampled single-qubit injection: the stream advances
     * over all wordsPerQubit() words unconditionally (one uniform
     * draw per hit bit, none otherwise); hits outside the mask are
     * dropped without drawing a Pauli kind.
     */
    void
    inject1q(Rng &rng, RareBernoulliStream &p, int q, const Word *m)
    {
        Word *xq = x(q);
        Word *zq = z(q);
        p.window(rng, words_, [&](int w, Word raw) {
            Word hit = raw & m[w];
            while (hit) {
                const int t = __builtin_ctzll(hit);
                hit &= hit - 1;
                const int pauli =
                    static_cast<int>(rng.below(3)) + 1;
                if (pauli & 1)
                    xq[w] ^= Word{1} << t;
                if (pauli & 2)
                    zq[w] ^= Word{1} << t;
            }
        });
    }

    /** Stream-sampled two-qubit injection (see inject1q). */
    void
    inject2q(Rng &rng, RareBernoulliStream &p, int a, int b,
             const Word *m)
    {
        Word *xa = x(a);
        Word *za = z(a);
        Word *xb = x(b);
        Word *zb = z(b);
        p.window(rng, words_, [&](int w, Word raw) {
            Word hit = raw & m[w];
            while (hit) {
                const int t = __builtin_ctzll(hit);
                hit &= hit - 1;
                const int pauli =
                    static_cast<int>(rng.below(15)) + 1;
                if (pauli & 1)
                    xa[w] ^= Word{1} << t;
                if (pauli & 2)
                    za[w] ^= Word{1} << t;
                if (pauli & 4)
                    xb[w] ^= Word{1} << t;
                if (pauli & 8)
                    zb[w] ^= Word{1} << t;
            }
        });
    }

    /** @} */

  private:
    std::size_t
    plane(int q) const
    {
        assert(q >= 0 && q < numQubits_);
        return static_cast<std::size_t>(q)
            * static_cast<std::size_t>(words_);
    }

    int numQubits_;
    int words_;
    std::vector<Word> xw_;
    std::vector<Word> zw_;
};

/** The 1-lane reference instantiation (the original 64-bit path). */
using BatchPauliFrame = BatchPauliFrameT<simd::WordOps>;

} // namespace qc

#endif // QC_ERROR_BATCH_PAULI_FRAME_HH
