/**
 * @file
 * Portable scalar-fallback engine (ScalarOps<4>): same 4-word
 * blocking as the 256-bit path with no vector types at all. The CI
 * width matrix runs this leg to prove results do not depend on the
 * vector extension path.
 */

#include "error/simd/BatchEngineWidths.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeScalar(const ErrorParams &errors, const MovementModel &movement,
           CorrectionSemantics semantics, int words)
{
    return std::make_unique<BatchWorkerT<simd::ScalarOps<4>>>(
        errors, movement, semantics, words);
}

} // namespace qc::batch_widths
