/**
 * @file
 * Width dispatch table for the batch Monte Carlo worker.
 */

#include <stdexcept>

#include "error/simd/BatchEngineWidths.hh"

namespace qc {

std::unique_ptr<BatchWorkerBase>
makeBatchWorker(simd::Width width, const ErrorParams &errors,
                const MovementModel &movement,
                CorrectionSemantics semantics, int words)
{
    switch (width) {
    case simd::Width::Scalar:
        return batch_widths::makeScalar(errors, movement, semantics,
                                        words);
    case simd::Width::W64:
        return batch_widths::makeW64(errors, movement, semantics,
                                     words);
    case simd::Width::W128:
        return batch_widths::makeW128(errors, movement, semantics,
                                      words);
    case simd::Width::W256:
        return batch_widths::makeW256(errors, movement, semantics,
                                      words);
    case simd::Width::W512:
        return batch_widths::makeW512(errors, movement, semantics,
                                      words);
    case simd::Width::Auto:
        break;
    }
    throw std::invalid_argument(
        "makeBatchWorker: width must be resolved (non-Auto)");
}

} // namespace qc
