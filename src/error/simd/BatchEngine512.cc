/**
 * @file
 * 512-bit engine (VecOps<8>). CMake compiles this translation unit
 * with -mavx512f where supported (see BatchEngine256.cc for the
 * dispatch-safety handshake).
 */

#include "error/simd/BatchEngineWidths.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeW512(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words)
{
    return std::make_unique<BatchWorkerT<simd::VecOps<8>>>(
        errors, movement, semantics, words);
}

} // namespace qc::batch_widths
