/**
 * @file
 * 64-bit reference engine (plain uint64_t words) — the pre-SIMD
 * path every wider width must match bit for bit.
 */

#include "error/simd/BatchEngineWidths.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeW64(const ErrorParams &errors, const MovementModel &movement,
        CorrectionSemantics semantics, int words)
{
    return std::make_unique<BatchWorkerT<simd::WordOps>>(
        errors, movement, semantics, words);
}

} // namespace qc::batch_widths
