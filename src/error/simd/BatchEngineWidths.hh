/**
 * @file
 * Per-width batch-worker factories, one per translation unit so
 * each can carry its own target flags (see CMakeLists.txt). Only
 * BatchEngineFactory.cc includes this.
 */

#ifndef QC_ERROR_SIMD_BATCH_ENGINE_WIDTHS_HH
#define QC_ERROR_SIMD_BATCH_ENGINE_WIDTHS_HH

#include "error/BatchEngine.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeScalar(const ErrorParams &errors, const MovementModel &movement,
           CorrectionSemantics semantics, int words);

std::unique_ptr<BatchWorkerBase>
makeW64(const ErrorParams &errors, const MovementModel &movement,
        CorrectionSemantics semantics, int words);

std::unique_ptr<BatchWorkerBase>
makeW128(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words);

std::unique_ptr<BatchWorkerBase>
makeW256(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words);

std::unique_ptr<BatchWorkerBase>
makeW512(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words);

} // namespace qc::batch_widths

#endif // QC_ERROR_SIMD_BATCH_ENGINE_WIDTHS_HH
