/**
 * @file
 * 256-bit engine (VecOps<4>). CMake compiles this translation unit
 * with -mavx2 where the toolchain supports it (and then defines
 * QC_SIMD_W256_ISA="avx2" on SimdDispatch.cc so dispatch refuses
 * the width on CPUs that cannot execute it). Without the flag the
 * compiler splits the vectors into 128-bit halves — correct, just
 * narrower.
 */

#include "error/simd/BatchEngineWidths.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeW256(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words)
{
    return std::make_unique<BatchWorkerT<simd::VecOps<4>>>(
        errors, movement, semantics, words);
}

} // namespace qc::batch_widths
