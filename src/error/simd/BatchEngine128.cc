/**
 * @file
 * 128-bit engine (VecOps<2>): lowers to SSE2 on x86-64's baseline
 * target, NEON on aarch64 — no extra target flags needed.
 */

#include "error/simd/BatchEngineWidths.hh"

namespace qc::batch_widths {

std::unique_ptr<BatchWorkerBase>
makeW128(const ErrorParams &errors, const MovementModel &movement,
         CorrectionSemantics semantics, int words)
{
    return std::make_unique<BatchWorkerT<simd::VecOps<2>>>(
        errors, movement, semantics, words);
}

} // namespace qc::batch_widths
