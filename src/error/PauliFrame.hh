/**
 * @file
 * Pauli-frame error tracking for stabilizer-circuit Monte Carlo
 * (paper Section 2.2).
 *
 * Errors are tracked as X/Z bit masks over up to 64 physical
 * qubits. Clifford gates conjugate the frame (two-qubit gates
 * propagate bit and phase flips between qubits, exactly the effect
 * the paper's methodology calls out); error injection draws
 * uniformly over the non-identity Paulis on the op's support.
 */

#ifndef QC_ERROR_PAULI_FRAME_HH
#define QC_ERROR_PAULI_FRAME_HH

#include <cassert>
#include <cstdint>

#include "common/Rng.hh"

namespace qc {

/** X/Z error masks over up to 64 physical qubits. */
class PauliFrame
{
  public:
    /** Clear all tracked errors. */
    void
    clear()
    {
        x_ = 0;
        z_ = 0;
    }

    /** Raw X-error mask. */
    std::uint64_t xMask() const { return x_; }

    /** Raw Z-error mask. */
    std::uint64_t zMask() const { return z_; }

    /** X-error bits within [base, base+width). */
    std::uint64_t
    xBits(int base, int width) const
    {
        assert(base >= 0 && width >= 0 && base + width <= 64);
        return width <= 0 ? 0 : (x_ >> base) & maskOf(width);
    }

    /** Z-error bits within [base, base+width). */
    std::uint64_t
    zBits(int base, int width) const
    {
        assert(base >= 0 && width >= 0 && base + width <= 64);
        return width <= 0 ? 0 : (z_ >> base) & maskOf(width);
    }

    /** True if qubit q carries an X component. */
    bool hasX(int q) const { return (x_ >> q) & 1; }

    /** True if qubit q carries a Z component. */
    bool hasZ(int q) const { return (z_ >> q) & 1; }

    /** Manually toggle an X error (used for applied corrections). */
    void flipX(int q) { x_ ^= bit(q); }

    /** Manually toggle a Z error. */
    void flipZ(int q) { z_ ^= bit(q); }

    /** Forget all errors on [base, base+width) (qubit discarded). */
    void
    clearRange(int base, int width)
    {
        assert(base >= 0 && width >= 0 && base + width <= 64);
        if (width <= 0)
            return;
        // maskOf(width) << base is safe: width >= 1 implies
        // base <= 63 here, and base + width == 64 keeps the shifted
        // mask inside the word.
        const std::uint64_t m = ~(maskOf(width) << base);
        x_ &= m;
        z_ &= m;
    }

    /** @name Clifford conjugation. */
    /** @{ */

    /** Hadamard: X <-> Z. */
    void
    applyH(int q)
    {
        const std::uint64_t xq = x_ & bit(q);
        const std::uint64_t zq = z_ & bit(q);
        x_ = (x_ & ~bit(q)) | zq;
        z_ = (z_ & ~bit(q)) | xq;
    }

    /** Phase gate: X -> Y (adds a Z component on X errors). */
    void
    applyS(int q)
    {
        if (hasX(q))
            z_ ^= bit(q);
    }

    /** CX: X on control spreads to target; Z on target to control. */
    void
    applyCx(int control, int target)
    {
        if (hasX(control))
            x_ ^= bit(target);
        if (hasZ(target))
            z_ ^= bit(control);
    }

    /** CZ: X on either side deposits Z on the other. */
    void
    applyCz(int a, int b)
    {
        if (hasX(a))
            z_ ^= bit(b);
        if (hasX(b))
            z_ ^= bit(a);
    }

    /** @} */

    /** @name Error injection. */
    /** @{ */

    /** Uniform non-identity Pauli on one qubit, with probability p. */
    void
    inject1q(Rng &rng, double p, int q)
    {
        if (!rng.bernoulli(p))
            return;
        applyUniform1(rng, q);
    }

    /** Uniform non-identity two-qubit Pauli, with probability p. */
    void
    inject2q(Rng &rng, double p, int a, int b)
    {
        if (!rng.bernoulli(p))
            return;
        applyUniform2(rng, a, b);
    }

    /**
     * The hit path of inject1q without the Bernoulli decision:
     * apply a uniformly drawn non-identity Pauli to q. Lets a
     * fault oracle (error/FaultOracle.hh) own the fire/no-fire
     * decision while the kind draw stays identical to inject1q.
     */
    void
    applyUniform1(Rng &rng, int q)
    {
        applyPauli(static_cast<int>(rng.below(3)) + 1, q);
    }

    /** Two-qubit counterpart of applyUniform1 (inject2q's hit path). */
    void
    applyUniform2(Rng &rng, int a, int b)
    {
        const int pauli = static_cast<int>(rng.below(15)) + 1;
        applyPauli(pauli & 3, a);
        applyPauli(pauli >> 2, b);
    }

    /** @} */

  private:
    static std::uint64_t
    bit(int q)
    {
        assert(q >= 0 && q < 64);
        return std::uint64_t{1} << q;
    }

    static std::uint64_t
    maskOf(int width)
    {
        assert(width >= 0);
        if (width <= 0)
            return 0;
        return width >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << width) - 1;
    }

    /** Apply Pauli code (0=I, 1=X, 2=Z, 3=Y) to qubit q. */
    void
    applyPauli(int code, int q)
    {
        if (code & 1)
            x_ ^= bit(q);
        if (code & 2)
            z_ ^= bit(q);
    }

    std::uint64_t x_ = 0;
    std::uint64_t z_ = 0;
};

} // namespace qc

#endif // QC_ERROR_PAULI_FRAME_HH
