/**
 * @file
 * Minimal deterministic discrete-event simulation core used by the
 * microarchitecture models (paper Section 5.2's "event-based
 * simulation of ancilla factory production and data qubit gate
 * consumption").
 */

#ifndef QC_SIM_SIMULATOR_HH
#define QC_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/Types.hh"

namespace qc {

/**
 * A time-ordered event queue. Events scheduled for the same tick
 * fire in scheduling order (stable), which keeps runs deterministic.
 */
class Simulator
{
  public:
    using Handler = std::function<void()>;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule a handler at an absolute time. Scheduling into the
     * past (when < now()) is an error — silently accepting such an
     * event would fire it out of order and corrupt causality — and
     * panics with both timestamps in the message.
     */
    void schedule(Time when, Handler handler);

    /** Schedule a handler after a delay. */
    void
    scheduleAfter(Time delay, Handler handler)
    {
        schedule(now_ + delay, std::move(handler));
    }

    /** Run until the queue drains. Returns the final time. */
    Time run();

    /**
     * Run events with timestamps <= limit, then stop. If pending
     * events remain, now() is advanced to `limit` (the throttled-
     * experiment deadline semantics: the run is cut off mid-flight
     * at exactly the budget). If the queue drains first, now() stays
     * at the last event fired, as in run(). Calling run()/runUntil()
     * again resumes the remaining events.
     *
     * @return the new now()
     */
    Time runUntil(Time limit);

    /** Events still waiting in the queue. */
    std::size_t pending() const { return queue_.size(); }

    /** Number of events processed so far. */
    std::uint64_t eventsProcessed() const { return processed_; }

  private:
    struct Event
    {
        Time when;
        std::uint64_t seq;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace qc

#endif // QC_SIM_SIMULATOR_HH
