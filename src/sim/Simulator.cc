#include "sim/Simulator.hh"

#include "common/Logging.hh"

namespace qc {

void
Simulator::schedule(Time when, Handler handler)
{
    if (when < now_)
        panic("Simulator: scheduling into the past (", when, " < ",
              now_, ")");
    queue_.push(Event{when, nextSeq_++, std::move(handler)});
}

Time
Simulator::run()
{
    while (!queue_.empty()) {
        // Moving out of a priority_queue requires a const_cast;
        // contained handlers are never observed again after pop.
        Event event = std::move(
            const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = event.when;
        ++processed_;
        event.handler();
    }
    return now_;
}

Time
Simulator::runUntil(Time limit)
{
    if (limit < now_)
        panic("Simulator: runUntil into the past (", limit, " < ",
              now_, ")");
    while (!queue_.empty() && queue_.top().when <= limit) {
        Event event = std::move(
            const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = event.when;
        ++processed_;
        event.handler();
    }
    if (!queue_.empty())
        now_ = limit;
    return now_;
}

} // namespace qc
