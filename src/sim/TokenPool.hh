/**
 * @file
 * Resource pools modeling ancilla production for the event-driven
 * runs. Both pools answer the same question: "if I claim n tokens
 * now, when are they all available?" — with first-come-first-served
 * allocation and unbounded buffering of tokens produced ahead of
 * demand.
 */

#ifndef QC_SIM_TOKEN_POOL_HH
#define QC_SIM_TOKEN_POOL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/Logging.hh"
#include "common/Types.hh"

namespace qc {

/**
 * Tokens produced at a steady aggregate rate (a farm of pipelined
 * factories, or Figure 8's "steady throughput" abstraction). The
 * k-th token ever produced becomes available at
 *     startup + k / rate.
 */
class RateTokenPool
{
  public:
    /**
     * @param per_ms   production rate (tokens per millisecond); a
     *                 non-positive rate means "infinite" (tokens
     *                 always available)
     * @param startup  pipeline fill latency before the first token
     */
    explicit RateTokenPool(BandwidthPerMs per_ms, Time startup = 0)
        : ratePerMs_(per_ms), startup_(startup)
    {
    }

    /**
     * Claim `count` tokens. Returns the earliest time all of them
     * exist (claims are FCFS in call order).
     */
    Time
    claim(int count)
    {
        if (count <= 0)
            return 0;
        if (ratePerMs_ <= 0)
            return 0; // unbounded production
        issued_ += static_cast<std::uint64_t>(count);
        const double ms =
            static_cast<double>(issued_) / ratePerMs_;
        return startup_
            + static_cast<Time>(ms * static_cast<double>(nsPerMs));
    }

    /** Total tokens claimed so far. */
    std::uint64_t issued() const { return issued_; }

  private:
    BandwidthPerMs ratePerMs_;
    Time startup_;
    std::uint64_t issued_ = 0;
};

/**
 * Tokens produced by a small bank of producers with *bounded*
 * buffering: each producer holds at most one finished token (the
 * cell has storage for a single spare encoded ancilla). This is the
 * QLA/CQLA-style dedicated generator the paper contrasts with
 * shared factories: when its data qubit is idle the generator's
 * capacity is wasted, because it cannot stockpile or serve anyone
 * else (Section 5.1: "imbalances in encoded ancilla need cause some
 * generators to go idle while others cannot meet need").
 *
 * Claims must be issued in nondecreasing `now` order (guaranteed by
 * the event-driven executor).
 */
class OnDemandBankPool
{
  public:
    OnDemandBankPool(int producers, Time period)
        : period_(period),
          freeAt_(static_cast<std::size_t>(producers), -period)
    {
        if (producers <= 0 || period <= 0)
            panic("OnDemandBankPool: bad parameters");
    }

    /**
     * Claim `count` tokens at simulated time `now`. Each token is
     * served by the earliest-free producer: ready at
     * max(now, freeAt + period) — i.e. a producer that has been
     * idle for at least one period has one token buffered.
     */
    Time
    claim(int count, Time now)
    {
        Time ready_all = now;
        for (int i = 0; i < count; ++i) {
            // Earliest-free producer.
            std::size_t best = 0;
            for (std::size_t p = 1; p < freeAt_.size(); ++p) {
                if (freeAt_[p] < freeAt_[best])
                    best = p;
            }
            const Time ready =
                std::max(now, freeAt_[best] + period_);
            freeAt_[best] = ready;
            if (ready > ready_all)
                ready_all = ready;
        }
        issued_ += static_cast<std::uint64_t>(count);
        return ready_all;
    }

    /** Total tokens claimed so far. */
    std::uint64_t issued() const { return issued_; }

  private:
    Time period_;
    std::vector<Time> freeAt_;
    std::uint64_t issued_ = 0;
};

/**
 * Tokens produced by a small bank of non-pipelined producers with
 * unbounded buffering, each finishing one token every `period`. The
 * k-th token becomes available at ceil(k / producers) * period.
 * (Kept as the optimistic upper bound on bank behaviour; the
 * microarchitecture models use OnDemandBankPool.)
 */
class BankTokenPool
{
  public:
    BankTokenPool(int producers, Time period)
        : producers_(producers), period_(period)
    {
        if (producers <= 0 || period <= 0)
            panic("BankTokenPool: bad parameters");
    }

    /** Claim `count` tokens (FCFS). */
    Time
    claim(int count)
    {
        if (count <= 0)
            return 0;
        issued_ += static_cast<std::uint64_t>(count);
        const std::uint64_t batches =
            (issued_ + static_cast<std::uint64_t>(producers_) - 1)
            / static_cast<std::uint64_t>(producers_);
        return static_cast<Time>(batches) * period_;
    }

    /** Total tokens claimed so far. */
    std::uint64_t issued() const { return issued_; }

  private:
    int producers_;
    Time period_;
    std::uint64_t issued_ = 0;
};

} // namespace qc

#endif // QC_SIM_TOKEN_POOL_HH
