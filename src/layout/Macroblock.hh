/**
 * @file
 * The abstract ion-trap layout building blocks of paper Figure 9.
 *
 * A layout is a grid of macroblocks. Each macroblock is a fixed
 * pattern of electrodes providing movement channels in some subset
 * of the four directions and, for the gate variants, a gate
 * location where laser pulses can be applied to resident ions.
 * Areas throughout the project are counted in macroblocks
 * (Section 4.1).
 */

#ifndef QC_LAYOUT_MACROBLOCK_HH
#define QC_LAYOUT_MACROBLOCK_HH

#include <cstdint>
#include <string_view>

namespace qc {

/** Macroblock kinds (Figure 9). */
enum class MacroblockKind : std::uint8_t
{
    Empty,              ///< no electrodes: not part of the layout
    DeadEndGate,        ///< gate location, single port
    StraightChannelGate,///< gate location on a through channel
    StraightChannel,    ///< plain through channel
    Turn,               ///< 90-degree corner
    ThreeWay,           ///< T intersection
    FourWay,            ///< + intersection
};

/** Cardinal directions used for ports and routing. */
enum class Dir : std::uint8_t { North, East, South, West };

/** Opposite direction. */
constexpr Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::North: return Dir::South;
      case Dir::East:  return Dir::West;
      case Dir::South: return Dir::North;
      case Dir::West:  return Dir::East;
    }
    return Dir::North;
}

/** Display name. */
constexpr std::string_view
macroblockName(MacroblockKind kind)
{
    switch (kind) {
      case MacroblockKind::Empty:               return "empty";
      case MacroblockKind::DeadEndGate:         return "dead-end gate";
      case MacroblockKind::StraightChannelGate: return "channel gate";
      case MacroblockKind::StraightChannel:     return "channel";
      case MacroblockKind::Turn:                return "turn";
      case MacroblockKind::ThreeWay:            return "3-way";
      case MacroblockKind::FourWay:             return "4-way";
    }
    return "?";
}

/** True if ions can sit at a gate location in this block. */
constexpr bool
hasGateLocation(MacroblockKind kind)
{
    return kind == MacroblockKind::DeadEndGate
        || kind == MacroblockKind::StraightChannelGate;
}

/**
 * Port bitmask for a block in its canonical orientation. Straight
 * blocks run North-South when `vertical`, else East-West; turns
 * connect North-East when `vertical`, else South-West; dead ends
 * open North/East respectively. Orientation is a property of the
 * grid cell, not the kind.
 */
unsigned portMask(MacroblockKind kind, bool vertical);

/** Per-direction port test against a portMask() value. */
constexpr bool
hasPort(unsigned mask, Dir d)
{
    return mask & (1u << static_cast<unsigned>(d));
}

} // namespace qc

#endif // QC_LAYOUT_MACROBLOCK_HH
