#include "layout/Grid.hh"

#include "common/Logging.hh"

namespace qc {

unsigned
portMask(MacroblockKind kind, bool vertical)
{
    constexpr unsigned north = 1u << static_cast<unsigned>(Dir::North);
    constexpr unsigned east = 1u << static_cast<unsigned>(Dir::East);
    constexpr unsigned south = 1u << static_cast<unsigned>(Dir::South);
    constexpr unsigned west = 1u << static_cast<unsigned>(Dir::West);

    switch (kind) {
      case MacroblockKind::Empty:
        return 0;
      case MacroblockKind::DeadEndGate:
        return vertical ? north : east;
      case MacroblockKind::StraightChannelGate:
      case MacroblockKind::StraightChannel:
        return vertical ? (north | south) : (east | west);
      case MacroblockKind::Turn:
        return vertical ? (north | east) : (south | west);
      case MacroblockKind::ThreeWay:
        return vertical ? (north | south | east)
                        : (east | west | south);
      case MacroblockKind::FourWay:
        return north | east | south | west;
    }
    return 0;
}

LayoutGrid::LayoutGrid(int width, int height)
    : width_(width), height_(height),
      cells_(static_cast<std::size_t>(width)
             * static_cast<std::size_t>(height))
{
    if (width <= 0 || height <= 0)
        fatal("LayoutGrid: dimensions must be positive");
}

const Cell &
LayoutGrid::at(Coord c) const
{
    if (!inBounds(c))
        panic("LayoutGrid::at out of bounds (", c.x, ",", c.y, ")");
    return cells_[static_cast<std::size_t>(c.y)
                  * static_cast<std::size_t>(width_)
                  + static_cast<std::size_t>(c.x)];
}

void
LayoutGrid::set(Coord c, MacroblockKind kind, bool vertical)
{
    if (!inBounds(c))
        panic("LayoutGrid::set out of bounds (", c.x, ",", c.y, ")");
    cells_[static_cast<std::size_t>(c.y)
           * static_cast<std::size_t>(width_)
           + static_cast<std::size_t>(c.x)] = {kind, vertical};
}

Area
LayoutGrid::occupiedArea() const
{
    Area area = 0;
    for (const Cell &cell : cells_) {
        if (cell.kind != MacroblockKind::Empty)
            area += 1;
    }
    return area;
}

int
LayoutGrid::gateLocationCount() const
{
    int count = 0;
    for (const Cell &cell : cells_) {
        if (hasGateLocation(cell.kind))
            ++count;
    }
    return count;
}

std::vector<Coord>
LayoutGrid::gateLocations() const
{
    std::vector<Coord> out;
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            if (hasGateLocation(at({x, y}).kind))
                out.push_back({x, y});
        }
    }
    return out;
}

bool
LayoutGrid::connected(Coord from, Dir d) const
{
    const Coord to = step(from, d);
    if (!inBounds(from) || !inBounds(to))
        return false;
    const Cell &a = at(from);
    const Cell &b = at(to);
    if (a.kind == MacroblockKind::Empty ||
        b.kind == MacroblockKind::Empty) {
        return false;
    }
    return hasPort(portMask(a.kind, a.vertical), d)
        && hasPort(portMask(b.kind, b.vertical), opposite(d));
}

} // namespace qc
