#include "layout/Route.hh"

#include <array>
#include <limits>
#include <queue>
#include <vector>

namespace qc {

namespace {

constexpr int numDirs = 4;

struct State
{
    Time cost;
    int index; // (y * width + x) * 4 + dir

    bool operator>(const State &o) const { return cost > o.cost; }
};

} // namespace

std::optional<RouteCost>
route(const LayoutGrid &grid, Coord from, Coord to,
      const IonTrapParams &tech)
{
    if (!grid.inBounds(from) || !grid.inBounds(to))
        return std::nullopt;
    if (from == to)
        return RouteCost{};

    const int w = grid.width();
    const int h = grid.height();
    const std::size_t states =
        static_cast<std::size_t>(w) * static_cast<std::size_t>(h)
        * numDirs;
    constexpr Time inf = std::numeric_limits<Time>::max();
    std::vector<Time> dist(states, inf);
    // Track (straights, turns) along the best path per state so the
    // caller gets op counts, not just latency.
    std::vector<RouteCost> tally(states);

    auto idx = [w](Coord c, int dir) {
        return (static_cast<std::size_t>(c.y)
                    * static_cast<std::size_t>(w)
                + static_cast<std::size_t>(c.x))
                   * numDirs
               + static_cast<std::size_t>(dir);
    };

    std::priority_queue<State, std::vector<State>, std::greater<>> pq;

    // Seed: leave the source in any connected direction.
    for (int d = 0; d < numDirs; ++d) {
        const Dir dir = static_cast<Dir>(d);
        if (!grid.connected(from, dir))
            continue;
        const Coord next = LayoutGrid::step(from, dir);
        const std::size_t i = idx(next, d);
        if (tech.tmove < dist[i]) {
            dist[i] = tech.tmove;
            tally[i] = {1, 0};
            pq.push({tech.tmove, static_cast<int>(i)});
        }
    }

    while (!pq.empty()) {
        const State s = pq.top();
        pq.pop();
        const std::size_t si = static_cast<std::size_t>(s.index);
        if (s.cost > dist[si])
            continue;
        const int dir_in = s.index % numDirs;
        const int flat = s.index / numDirs;
        const Coord here{flat % w, flat / w};
        if (here == to) {
            return tally[si];
        }
        for (int d = 0; d < numDirs; ++d) {
            const Dir dir = static_cast<Dir>(d);
            if (!grid.connected(here, dir))
                continue;
            const Coord next = LayoutGrid::step(here, dir);
            const bool turning = d != dir_in;
            const Time cost = s.cost + tech.tmove
                + (turning ? tech.tturn : 0);
            const std::size_t i = idx(next, d);
            if (cost < dist[i]) {
                dist[i] = cost;
                tally[i] = tally[si];
                tally[i].straights += 1;
                tally[i].turns += turning ? 1 : 0;
                pq.push({cost, static_cast<int>(i)});
            }
        }
    }
    return std::nullopt;
}

} // namespace qc
