/**
 * @file
 * Rectangular macroblock grid with orientation per cell.
 */

#ifndef QC_LAYOUT_GRID_HH
#define QC_LAYOUT_GRID_HH

#include <vector>

#include "common/Types.hh"
#include "layout/Macroblock.hh"

namespace qc {

/** Grid coordinate (x = column, y = row; y grows southward). */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const = default;
};

/** One grid cell: a macroblock kind plus its orientation. */
struct Cell
{
    MacroblockKind kind = MacroblockKind::Empty;
    bool vertical = false;
};

/**
 * A rectangular field of macroblocks.
 */
class LayoutGrid
{
  public:
    LayoutGrid(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    /** True if c lies within the rectangle. */
    bool
    inBounds(Coord c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    /** Cell accessor (must be in bounds). */
    const Cell &at(Coord c) const;

    /** Set a cell (must be in bounds). */
    void set(Coord c, MacroblockKind kind, bool vertical = false);

    /** Number of non-empty macroblocks (the layout's area). */
    Area occupiedArea() const;

    /** Number of gate locations in the layout. */
    int gateLocationCount() const;

    /** All coordinates holding gate locations, row-major. */
    std::vector<Coord> gateLocations() const;

    /**
     * True if an ion can cross directly from `from` toward
     * direction d: both cells must exist, be non-empty, and expose
     * facing ports.
     */
    bool connected(Coord from, Dir d) const;

    /** Neighbor coordinate in direction d (may be out of bounds). */
    static Coord
    step(Coord c, Dir d)
    {
        switch (d) {
          case Dir::North: return {c.x, c.y - 1};
          case Dir::East:  return {c.x + 1, c.y};
          case Dir::South: return {c.x, c.y + 1};
          case Dir::West:  return {c.x - 1, c.y};
        }
        return c;
    }

  private:
    int width_;
    int height_;
    std::vector<Cell> cells_;
};

} // namespace qc

#endif // QC_LAYOUT_GRID_HH
