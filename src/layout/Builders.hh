/**
 * @file
 * Canonical layout builders: the single-encoded-data-qubit compute
 * region of Figure 10, the simple (non-pipelined) ancilla factory of
 * Figure 11, and movement-model calibration from routed layouts.
 */

#ifndef QC_LAYOUT_BUILDERS_HH
#define QC_LAYOUT_BUILDERS_HH

#include "error/AncillaSim.hh"
#include "layout/Grid.hh"
#include "layout/Route.hh"

namespace qc {

/**
 * The data-qubit compute region of Figure 10: one column of seven
 * Straight Channel Gate macroblocks (one gate location per physical
 * qubit of the [[7,1,3]] block), with vertical channels on both
 * sides connecting to the surrounding interconnect.
 *
 * The returned grid is 3 wide x 7 high; its *data area* in the
 * paper's accounting is the 7 gate macroblocks (the flanking
 * channels belong to the interconnect budget).
 */
LayoutGrid buildDataQubitRegion();

/** Area charged to one encoded data qubit (m macroblocks). */
Area dataQubitArea();

/**
 * The simple ancilla factory of Figure 11: three rows of ten gate
 * macroblocks (seven encode + three verification qubits each),
 * interleaved with communication rows; 90 macroblocks total.
 */
LayoutGrid buildSimpleFactory();

/**
 * Calibrate an error-simulation MovementModel from a routed layout:
 * averages the straight/turn counts over all gate-location pairs at
 * the layout's typical interaction distance (adjacent gate rows).
 */
MovementModel calibrateMovement(const LayoutGrid &layout,
                                const IonTrapParams &tech);

} // namespace qc

#endif // QC_LAYOUT_BUILDERS_HH
