#include "layout/Builders.hh"

#include <cmath>

#include "codes/SteaneCode.hh"
#include "common/Logging.hh"

namespace qc {

LayoutGrid
buildDataQubitRegion()
{
    // 3 wide x 7 high: a gate location per physical qubit in the
    // middle column, full intersections on both flanks so ions can
    // enter from either side of the interconnect (Figure 10).
    LayoutGrid grid(3, SteaneCode::numPhysical);
    for (int y = 0; y < SteaneCode::numPhysical; ++y) {
        grid.set({0, y}, MacroblockKind::FourWay);
        grid.set({1, y}, MacroblockKind::StraightChannelGate,
                 /*vertical=*/false);
        grid.set({2, y}, MacroblockKind::FourWay);
    }
    return grid;
}

Area
dataQubitArea()
{
    return SteaneCode::numPhysical;
}

LayoutGrid
buildSimpleFactory()
{
    // 10 wide x 9 high = 90 macroblocks (Figure 11): gate rows at
    // y = 1, 4, 7 hold ten gate locations each (seven encode plus
    // three verification qubits); the remaining rows are full
    // intersections used for communication.
    LayoutGrid grid(10, 9);
    for (int y = 0; y < 9; ++y) {
        const bool gate_row = (y == 1 || y == 4 || y == 7);
        for (int x = 0; x < 10; ++x) {
            if (gate_row) {
                grid.set({x, y}, MacroblockKind::StraightChannelGate,
                         /*vertical=*/true);
            } else {
                grid.set({x, y}, MacroblockKind::FourWay);
            }
        }
    }
    return grid;
}

MovementModel
calibrateMovement(const LayoutGrid &layout, const IonTrapParams &tech)
{
    // Average routed cost between gate locations in different rows
    // at small horizontal offset — the typical two-qubit interaction
    // pattern inside a factory (a qubit travels to its partner's
    // gate location).
    const auto gates = layout.gateLocations();
    double straights = 0;
    double turns = 0;
    int pairs = 0;
    for (const Coord &a : gates) {
        for (const Coord &b : gates) {
            if (a.y >= b.y || std::abs(a.x - b.x) > 2)
                continue;
            const auto cost = route(layout, a, b, tech);
            if (!cost)
                continue;
            straights += cost->straights;
            turns += cost->turns;
            ++pairs;
        }
    }
    MovementModel model;
    if (pairs > 0) {
        model.movesPerCx = static_cast<int>(
            std::lround(straights / pairs));
        model.turnsPerCx =
            static_cast<int>(std::lround(turns / pairs));
    } else {
        warn("calibrateMovement: no routable gate pairs; "
             "keeping defaults");
    }
    model.movesPerMeas = 1;
    return model;
}

} // namespace qc
