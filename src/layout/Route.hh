/**
 * @file
 * Minimum-latency ion routing over a LayoutGrid.
 *
 * Movement cost follows Table 4: each macroblock crossed in a
 * straight line costs one Straight Move (t_move); each change of
 * heading costs one Turn (t_turn). The router is a Dijkstra search
 * over (cell, heading) states, so it prefers longer straight paths
 * over shorter ones with more turns exactly as the hardware does.
 */

#ifndef QC_LAYOUT_ROUTE_HH
#define QC_LAYOUT_ROUTE_HH

#include <optional>

#include "common/Params.hh"
#include "common/Types.hh"
#include "layout/Grid.hh"

namespace qc {

/** Movement-op tally for one routed path. */
struct RouteCost
{
    int straights = 0; ///< macroblocks crossed straight
    int turns = 0;     ///< heading changes

    /** Total latency under a technology's move parameters. */
    Time
    latency(const IonTrapParams &tech) const
    {
        return straights * tech.tmove + turns * tech.tturn;
    }

    /** Total movement operations (for error accounting). */
    int moveOps() const { return straights + turns; }
};

/**
 * Route an ion from one cell to another.
 *
 * @return the cheapest RouteCost, or nullopt if unreachable.
 */
std::optional<RouteCost> route(const LayoutGrid &grid, Coord from,
                               Coord to, const IonTrapParams &tech);

} // namespace qc

#endif // QC_LAYOUT_ROUTE_HH
