#include "factory/FarmSim.hh"

#include <algorithm>
#include <vector>

#include "common/Logging.hh"

namespace qc {

namespace {

/**
 * An initiation-limited bank of pipelined units: `count` units each
 * able to hold `stages` in-flight batches, so a new batch may start
 * every latency/stages per unit. The k-th initiation across the
 * bank completes at ceil(k / (count*stages)) * latency... more
 * precisely, slot k starts at ceil(k / (count*stages)) *
 * (latency / stages) and finishes latency later. Items also wait
 * for their inputs.
 */
class StageBank
{
  public:
    explicit StageBank(const StageDesign &stage)
        : latency_(stage.unit.latency),
          interval_(stage.unit.latency / stage.unit.stages),
          slots_(static_cast<std::size_t>(stage.count)
                     * static_cast<std::size_t>(stage.unit.stages),
                 0)
    {
    }

    /**
     * Process one batch whose inputs are ready at `ready`; returns
     * its completion time. Initiations are FCFS over the bank's
     * pipeline slots.
     */
    Time
    process(Time ready)
    {
        // Earliest-available pipeline slot.
        std::size_t best = 0;
        for (std::size_t i = 1; i < slots_.size(); ++i) {
            if (slots_[i] < slots_[best])
                best = i;
        }
        const Time start = std::max(ready, slots_[best]);
        // The slot frees one initiation interval later; the batch
        // itself completes after the full unit latency.
        slots_[best] = start + interval_;
        return start + latency_;
    }

  private:
    Time latency_;
    Time interval_;
    std::vector<Time> slots_;
};

} // namespace

FarmSimResult
simulateZeroFactory(const ZeroFactory &factory, int candidates,
                    std::uint64_t seed)
{
    if (candidates < 6)
        fatal("simulateZeroFactory: need at least 6 candidates");

    const auto &stages = factory.stages();
    // Stage order per ZeroFactory: prep, cx, cat, verify, correct.
    StageBank prep(stages[0]);
    StageBank cx(stages[1]);
    StageBank cat(stages[2]);
    StageBank verify(stages[3]);
    StageBank correct(stages[4]);

    Rng rng(seed);
    // Verification post-selection outcomes are drawn 64 candidates
    // at a time through the batched Bernoulli sampler (bit t of a
    // word = candidate t's discard coin), amortizing the RNG cost
    // the same way the batched Monte Carlo engine does.
    BernoulliWord discard_coin(1.0 - factory.acceptRate());
    std::uint64_t discard_bits = 0;
    int discard_bits_left = 0;
    FarmSimResult result;

    // Verified candidates waiting to be grouped in threes for the
    // correction stage (A corrected by B and C).
    std::vector<Time> verified_ready;
    Time last_output = 0;
    Time first_batch_output = 0;
    std::uint64_t outputs_before_warmup = 0;
    const int warmup = std::max(2, candidates / 10);

    for (int i = 0; i < candidates; ++i) {
        // Ten physical qubits per candidate: seven for the encode
        // network, three for its verification cat state.
        Time qubits = 0;
        for (int q = 0; q < 10; ++q)
            qubits = std::max(qubits, prep.process(0));

        const Time encoded = cx.process(qubits);
        const Time cat_ready = cat.process(qubits);
        const Time checked =
            verify.process(std::max(encoded, cat_ready));

        if (discard_bits_left == 0) {
            discard_bits = discard_coin.next(rng);
            discard_bits_left = 64;
        }
        const bool rejected = discard_bits & 1;
        discard_bits >>= 1;
        --discard_bits_left;
        if (rejected) {
            ++result.discarded;
            continue;
        }
        verified_ready.push_back(checked);

        if (verified_ready.size() == 3) {
            const Time inputs = std::max(
                {verified_ready[0], verified_ready[1],
                 verified_ready[2]});
            const Time done = correct.process(inputs);
            verified_ready.clear();
            ++result.produced;
            if (result.produced == 1) {
                result.firstOutput = done;
                first_batch_output = done;
            }
            if (result.produced
                <= static_cast<std::uint64_t>(warmup)) {
                ++outputs_before_warmup;
                first_batch_output = done;
            }
            last_output = std::max(last_output, done);
        }
    }

    const std::uint64_t steady =
        result.produced - outputs_before_warmup;
    if (steady > 0 && last_output > first_batch_output) {
        result.throughput = static_cast<double>(steady)
            / toMs(last_output - first_batch_output);
    }
    return result;
}

} // namespace qc
