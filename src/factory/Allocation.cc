#include "factory/Allocation.hh"

namespace qc {

FactoryAllocation
allocateForBandwidth(const ZeroFactory &zero, const Pi8Factory &pi8,
                     BandwidthPerMs zero_qec_per_ms,
                     BandwidthPerMs pi8_per_ms)
{
    FactoryAllocation alloc;
    alloc.zeroQecBandwidth = zero_qec_per_ms;
    alloc.pi8Bandwidth = pi8_per_ms;
    alloc.zeroFactoryArea = zero.totalArea();
    alloc.pi8FactoryArea = pi8.totalArea();

    alloc.zeroFactoriesForQec = zero_qec_per_ms / zero.throughput();
    alloc.pi8Factories = pi8_per_ms / pi8.throughput();
    // Each pi/8 ancilla consumes one encoded zero (Fig 5b).
    alloc.zeroFactoriesForPi8 = pi8_per_ms / zero.throughput();
    return alloc;
}

} // namespace qc
