#include "factory/Allocation.hh"

#include "codes/ConcatenatedCode.hh"

namespace qc {

FactoryAllocation
allocateForBandwidth(const ZeroFactory &zero, const Pi8Factory &pi8,
                     BandwidthPerMs zero_qec_per_ms,
                     BandwidthPerMs pi8_per_ms)
{
    FactoryAllocation alloc;
    alloc.zeroQecBandwidth = zero_qec_per_ms;
    alloc.pi8Bandwidth = pi8_per_ms;
    alloc.zeroFactoryArea = zero.totalArea();
    alloc.pi8FactoryArea = pi8.totalArea();

    alloc.zeroFactoriesForQec = zero_qec_per_ms / zero.throughput();
    alloc.pi8Factories = pi8_per_ms / pi8.throughput();
    // Each pi/8 ancilla consumes one encoded zero (Fig 5b).
    alloc.zeroFactoriesForPi8 = pi8_per_ms / zero.throughput();
    return alloc;
}

FactoryAllocation
allocateForBandwidthLevel2(const Level2ZeroFactory &zero,
                           const Level2Pi8Factory &pi8,
                           BandwidthPerMs zero_qec_per_ms,
                           BandwidthPerMs pi8_per_ms)
{
    FactoryAllocation alloc;
    alloc.codeLevel = 2;
    alloc.zeroQecBandwidth = zero_qec_per_ms;
    alloc.pi8Bandwidth = pi8_per_ms;
    alloc.zeroFactoryArea = zero.totalArea();
    alloc.pi8FactoryArea = pi8.totalArea();

    alloc.zeroFactoriesForQec = zero_qec_per_ms / zero.throughput();
    alloc.pi8Factories = pi8_per_ms / pi8.throughput();
    // Each level-2 pi/8 ancilla consumes one level-2 zero (Fig 5b
    // one level up); its seven-block cat is level-1 traffic counted
    // below.
    alloc.zeroFactoriesForPi8 = pi8_per_ms / zero.throughput();

    // Inter-level traffic: level-1 zeros feeding the level-2 zero
    // cascades (QEC and pi/8 chains) plus the cat states of the
    // conversions.
    alloc.interLevelZeroPerMs =
        (zero_qec_per_ms + pi8_per_ms) * zero.level1ZerosPerOutput()
        + pi8_per_ms * ConcatenatedSteane::subBlocksPerPi8Cat;
    alloc.level1FeederFactories =
        (alloc.zeroFactoriesForQec + alloc.zeroFactoriesForPi8)
            * zero.level1FeederFactories()
        + alloc.pi8Factories * pi8.level1FeederFactories();
    return alloc;
}

} // namespace qc
