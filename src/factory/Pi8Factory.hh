/**
 * @file
 * The encoded pi/8 ancilla factory of paper Section 4.4.2
 * (Figure 5b, Tables 7-8): converts encoded zero ancillae into
 * encoded pi/8 ancillae via a 7-qubit cat state, a transversal
 * interaction stage, a decode stage and a measurement fix-up.
 *
 * Unit counts are derived by bandwidth matching with the 7-qubit
 * cat preparation as the designated bottleneck (the paper's
 * choice). Under the paper's ion-trap parameters this reproduces
 * Table 8: 4 cat units, 1 transversal unit, 4 decode units, 2
 * fix-up units; 147 macroblocks of functional units plus 256 of
 * crossbars = 403 total; throughput 18.3 encoded pi/8 ancillae/ms.
 */

#ifndef QC_FACTORY_PI8_FACTORY_HH
#define QC_FACTORY_PI8_FACTORY_HH

#include <vector>

#include "factory/ZeroFactory.hh"

namespace qc {

/** The pipelined pi/8 conversion factory. */
class Pi8Factory
{
  public:
    explicit Pi8Factory(IonTrapParams tech = IonTrapParams::paper());

    /** The four stage designs in pipeline order (Table 8). */
    const std::vector<StageDesign> &stages() const { return stages_; }

    /** The three inter-stage crossbars (two columns each). */
    const std::vector<CrossbarDesign> &crossbars() const
    {
        return crossbars_;
    }

    /** Total functional-unit area (147 macroblocks). */
    Area functionalUnitArea() const;

    /** Total crossbar area (256 macroblocks). */
    Area crossbarArea() const;

    /** Conversion-only area (403 macroblocks; excludes the zero
     *  factories feeding this one). */
    Area totalArea() const;

    /** 18.3 encoded pi/8 ancillae / ms (cat-stage limited). */
    BandwidthPerMs throughput() const;

    /**
     * Encoded-zero input bandwidth required at full rate: one
     * encoded zero per produced pi/8 ancilla.
     */
    BandwidthPerMs zeroInputBandwidth() const { return throughput(); }

    /** End-to-end conversion latency for one ancilla. */
    Time latency() const;

    const IonTrapParams &tech() const { return tech_; }

  private:
    IonTrapParams tech_;
    std::vector<StageDesign> stages_;
    std::vector<CrossbarDesign> crossbars_;
};

} // namespace qc

#endif // QC_FACTORY_PI8_FACTORY_HH
