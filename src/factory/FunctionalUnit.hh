/**
 * @file
 * Functional-unit specifications for pipelined ancilla factories
 * (paper Section 4.4, Tables 5 and 7).
 *
 * Each unit is described symbolically in the technology's physical
 * latencies; bandwidths are derived as
 *     items x internalStages / latency
 * which reproduces the paper's Table 5/7 numbers exactly under the
 * ion-trap parameters of Tables 1 and 4.
 */

#ifndef QC_FACTORY_FUNCTIONAL_UNIT_HH
#define QC_FACTORY_FUNCTIONAL_UNIT_HH

#include <string>
#include <vector>

#include "common/Params.hh"
#include "common/Types.hh"

namespace qc {

/** One pipeline functional unit (a row of Table 5 or Table 7). */
struct FunctionalUnitSpec
{
    std::string name;
    Time latency = 0;      ///< end-to-end latency of one batch
    int stages = 1;        ///< internal pipeline stages
    double itemsIn = 1;    ///< physical qubits consumed per batch
    double itemsOut = 1;   ///< physical qubits produced per batch
    Area area = 0;         ///< macroblocks per unit
    int height = 0;        ///< macroblocks of stage-column height

    /** Input bandwidth in qubits per millisecond. */
    BandwidthPerMs
    inBandwidth() const
    {
        return bandwidthOf(latency, itemsIn, stages);
    }

    /** Output bandwidth in qubits per millisecond. */
    BandwidthPerMs
    outBandwidth() const
    {
        return bandwidthOf(latency, itemsOut, stages);
    }
};

/** The functional units of the encoded-zero factory (Table 5). */
struct ZeroFactoryUnits
{
    FunctionalUnitSpec zeroPrep;   ///< physical |0> (+ optional H)
    FunctionalUnitSpec cxStage;    ///< the 9-CX encode network
    FunctionalUnitSpec catPrep;    ///< 3-qubit cat states
    FunctionalUnitSpec verify;     ///< cat-state verification
    FunctionalUnitSpec bpCorrect;  ///< bit + phase correction

    /**
     * @param tech        physical latencies
     * @param accept_rate verification acceptance probability
     *                    (paper: 99.8%, from the Monte Carlo runs)
     */
    ZeroFactoryUnits(const IonTrapParams &tech, double accept_rate);
};

/** The pipeline stages of the pi/8 conversion factory (Table 7). */
struct Pi8FactoryUnits
{
    FunctionalUnitSpec catPrep7;     ///< 7-qubit cat states
    FunctionalUnitSpec transversal;  ///< CX/CS/CZ + transversal pi/8
    FunctionalUnitSpec decode;       ///< decode (plus store)
    FunctionalUnitSpec fixup;        ///< H / measure / transversal Z

    explicit Pi8FactoryUnits(const IonTrapParams &tech);
};

} // namespace qc

#endif // QC_FACTORY_FUNCTIONAL_UNIT_HH
