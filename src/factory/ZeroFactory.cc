#include "factory/ZeroFactory.hh"

#include <cmath>

#include "common/Logging.hh"
#include "error/BatchAncillaSim.hh"

namespace qc {

double
measuredZeroAcceptRate(ErrorParams errors, MovementModel movement,
                       std::uint64_t seed, std::uint64_t trials)
{
    BatchAncillaSim sim(errors, movement, seed);
    const PrepEstimate est =
        sim.estimate(ZeroPrepStrategy::VerifyOnly, trials);
    return 1.0 - est.discardRate();
}

ZeroFactory
ZeroFactory::calibrated(IonTrapParams tech, ErrorParams errors,
                        MovementModel movement, std::uint64_t seed,
                        std::uint64_t trials)
{
    return ZeroFactory(
        tech, measuredZeroAcceptRate(errors, movement, seed, trials));
}

SimpleZeroFactory::SimpleZeroFactory(IonTrapParams tech) : tech_(tech)
{
}

Time
SimpleZeroFactory::latency() const
{
    return tech_.tprep + 2 * tech_.tmeas + 6 * tech_.t2q
        + 2 * tech_.t1q + 8 * tech_.tturn + 30 * tech_.tmove;
}

BandwidthPerMs
SimpleZeroFactory::throughput() const
{
    return bandwidthOf(latency());
}

Area
SimpleZeroFactory::area() const
{
    return 90;
}

ZeroFactory::ZeroFactory(IonTrapParams tech, double accept_rate)
    : tech_(tech), acceptRate_(accept_rate)
{
    if (accept_rate <= 0.0 || accept_rate > 1.0)
        fatal("ZeroFactory: acceptance rate must be in (0, 1]");

    const ZeroFactoryUnits units(tech, accept_rate);

    // The single CX-network unit is the design reference: all other
    // stages are sized to keep it saturated (Section 4.4.1).
    const int cx_count = 1;
    const double encoded_flow =
        cx_count * units.cxStage.outBandwidth(); // qubits/ms

    // Each seven-qubit encoded ancilla is verified against a
    // three-qubit cat state: cat flow is bandwidth-matched 7:3.
    const double cat_flow = encoded_flow * 3.0 / 7.0;
    const int cat_count = static_cast<int>(
        std::ceil(cat_flow / units.catPrep.outBandwidth()));

    // Stage 1 feeds both the CX network and the cat preparation.
    const double prep_flow = encoded_flow + cat_flow;
    const int prep_count = static_cast<int>(
        std::ceil(prep_flow / units.zeroPrep.outBandwidth()));

    // Verification units receive the encoded qubits plus their cat
    // qubits (10 per ancilla).
    const int verify_count = static_cast<int>(
        std::ceil((encoded_flow + cat_flow)
                  / units.verify.inBandwidth()));

    // Correction units receive the verified encoded qubits.
    const double verified_flow = encoded_flow * acceptRate_;
    const int correct_count = static_cast<int>(
        std::ceil(verified_flow / units.bpCorrect.inBandwidth()));

    stages_ = {
        {units.zeroPrep, prep_count},
        {units.cxStage, cx_count},
        {units.catPrep, cat_count},
        {units.verify, verify_count},
        {units.bpCorrect, correct_count},
    };

    // Crossbars (Fig 13a): stage 1 funnels inward to the much
    // smaller stage 2, so a single column suffices; the later
    // boundaries move qubits both ways and get two columns. Height
    // matches the taller adjacent stage column.
    const int h1 = stages_[0].totalHeight();
    const int h2 =
        stages_[1].totalHeight() + stages_[2].totalHeight();
    const int h3 = stages_[3].totalHeight();
    const int h4 = stages_[4].totalHeight();
    crossbars_ = {
        {1, std::max(h1, h2)},
        {2, std::max(h2, h3)},
        {2, std::max(h3, h4)},
    };
}

Area
ZeroFactory::functionalUnitArea() const
{
    Area area = 0;
    for (const StageDesign &s : stages_)
        area += s.totalArea();
    return area;
}

Area
ZeroFactory::crossbarArea() const
{
    Area area = 0;
    for (const CrossbarDesign &xb : crossbars_)
        area += xb.area();
    return area;
}

Area
ZeroFactory::totalArea() const
{
    return functionalUnitArea() + crossbarArea();
}

BandwidthPerMs
ZeroFactory::throughput() const
{
    const double encoded_flow = stages_[1].aggregateOut();
    return encoded_flow / 7.0 * acceptRate_ / 3.0;
}

Time
ZeroFactory::latency() const
{
    // One transit across a crossbar: enter, cross the two columns,
    // turn into the next stage.
    const Time transit = 2 * tech_.tmove + 2 * tech_.tturn;
    Time total = 0;
    // A produced ancilla passes prep, the CX network, verification
    // and correction (the cat path runs concurrently and is
    // shorter).
    total += stages_[0].unit.latency;
    total += stages_[1].unit.latency;
    total += stages_[3].unit.latency;
    total += stages_[4].unit.latency;
    total += 3 * transit;
    return total;
}

} // namespace qc
