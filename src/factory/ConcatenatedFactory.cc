#include "factory/ConcatenatedFactory.hh"

#include "codes/ConcatenatedCode.hh"
#include "codes/EncodedOp.hh"
#include "common/Logging.hh"
#include "error/RecursiveError.hh"

namespace qc {

namespace {

/** Internal pipeline depth of the level-2 assembly line: encode,
 *  verify, bit-correct, phase-correct. */
constexpr int assemblyStages = 4;

/**
 * Area of one block workspace: a level-1 block's seven gate sites
 * plus an equal routing share, i.e. one level-2 tile-area quantum.
 */
Area
blockWorkspaceArea()
{
    return ConcatenatedSteane::areaScalePerLevel;
}

/**
 * Crossbar overhead multiplier, matched to the measured ratio of
 * the corresponding level-1 design (e.g. Table 6: 168 crossbar /
 * 130 functional).
 */
template <typename Factory>
double
crossbarShare(const Factory &level1)
{
    const Area functional = level1.functionalUnitArea();
    return functional > 0
        ? static_cast<double>(level1.crossbarArea()) / functional
        : 1.0;
}

} // namespace

Level2ZeroFactory::Level2ZeroFactory(IonTrapParams tech,
                                     double l1AcceptRate,
                                     double l2AcceptRate)
    : tech_(tech),
      l2Accept_(l2AcceptRate),
      level1_(tech, l1AcceptRate),
      cascade_({})
{
    if (l2AcceptRate <= 0.0 || l2AcceptRate > 1.0)
        fatal("Level2ZeroFactory: acceptance rate must be in (0, 1]");

    // The Fig 4c schedule at level-2 effective latencies. The seven
    // block zeros arrive pipelined from the level-1 farm, so the
    // assembly's encode stage starts at the transversal seed
    // Hadamards (t1q) and the three disjoint CX rounds.
    const IonTrapParams eff =
        ConcatenatedSteane::effectiveTech(tech, 2);
    const Time encode = eff.t1q + 3 * eff.t2q;
    const Time verify = eff.t2q + eff.tmeas;
    const Time correct = 2 * (eff.t2q + eff.tmeas + eff.t1q);
    assemblyLatency_ = encode + verify + correct;

    // Twelve block workspaces: seven for the encoded block, three
    // for the verification cat, two for correction-ancilla staging.
    const double workspaces = 12;
    assemblyArea_ = workspaces * blockWorkspaceArea()
        * (1.0 + crossbarShare(level1_));

    CascadeStage farm;
    farm.name = "level-1 zero factory";
    farm.unitOutPerMs = level1_.throughput();
    farm.inputsPerOutput = 0; // fed by raw physical resources
    farm.unitArea = level1_.totalArea();
    farm.unitLatency = level1_.latency();

    CascadeStage assembly;
    assembly.name = "level-2 assembly";
    assembly.unitOutPerMs =
        bandwidthOf(assemblyLatency_, 1, assemblyStages) * l2Accept_
        / ConcatenatedSteane::rawBlocksPerDelivered;
    assembly.inputsPerOutput = level1ZerosPerOutput();
    assembly.unitArea = assemblyArea_;
    assembly.unitLatency = assemblyLatency_;

    cascade_ = FactoryCascade({farm, assembly});
}

Level2ZeroFactory
Level2ZeroFactory::calibrated(IonTrapParams tech,
                              const RecursiveErrorAnalysis &analysis)
{
    return Level2ZeroFactory(tech, analysis.level1AcceptRate,
                             analysis.level2AcceptRate);
}

double
Level2ZeroFactory::level1ZerosPerOutput() const
{
    // Ten level-1 zeros per raw block (seven block + three cat),
    // three raw verified blocks per delivered output, divided by
    // the per-attempt verification acceptance.
    return static_cast<double>(
               ConcatenatedSteane::subBlocksPerRawZero
               * ConcatenatedSteane::rawBlocksPerDelivered)
        / l2Accept_;
}

BandwidthPerMs
Level2ZeroFactory::throughput() const
{
    return cascade_.stages()[1].unitOutPerMs;
}

BandwidthPerMs
Level2ZeroFactory::level1InputBandwidth() const
{
    return cascade_.boundaryBandwidth(0, throughput());
}

double
Level2ZeroFactory::level1FeederFactories() const
{
    return cascade_.unitsFor(throughput())[0];
}

Area
Level2ZeroFactory::assemblyArea() const
{
    return assemblyArea_;
}

Area
Level2ZeroFactory::feederArea() const
{
    return level1FeederFactories() * level1_.totalArea();
}

Area
Level2ZeroFactory::totalArea() const
{
    return cascade_.areaFor(throughput());
}

Time
Level2ZeroFactory::latency() const
{
    // One crossbar-style transit per cascade boundary at the
    // level-2 movement scale.
    const IonTrapParams eff =
        ConcatenatedSteane::effectiveTech(tech_, 2);
    const Time transit = 2 * eff.tmove + 2 * eff.tturn;
    return cascade_.fillLatency() + transit;
}

Level2Pi8Factory::Level2Pi8Factory(IonTrapParams tech,
                                   double l1AcceptRate)
    : tech_(tech), level1_(tech, l1AcceptRate), catCascade_({})
{
    // Fig 5b one level up: cat of seven level-1 encoded qubits
    // (blocks arrive from the level-1 farm; transversal H plus
    // seven CXs), transversal interaction with the level-2 zero,
    // decode, and the measurement fix-up.
    const IonTrapParams eff =
        ConcatenatedSteane::effectiveTech(tech, 2);
    const Time cat = eff.t1q + 7 * eff.t2q;
    const Time transversal = 3 * eff.t2q;
    const Time decode = 7 * eff.t2q;
    const Time fixup = eff.tmeas + 2 * eff.t1q;
    conversionLatency_ = cat + transversal + decode + fixup;

    // Ten block workspaces: seven cat blocks, the level-2 zero
    // being converted, and two staging slots for decode/fix-up.
    const double workspaces = 10;
    conversionArea_ = workspaces * blockWorkspaceArea()
        * (1.0 + crossbarShare(Pi8Factory(tech)));

    CascadeStage farm;
    farm.name = "level-1 zero factory";
    farm.unitOutPerMs = level1_.throughput();
    farm.inputsPerOutput = 0;
    farm.unitArea = level1_.totalArea();
    farm.unitLatency = level1_.latency();

    CascadeStage conversion;
    conversion.name = "level-2 pi/8 conversion";
    conversion.unitOutPerMs =
        bandwidthOf(conversionLatency_, 1, assemblyStages);
    conversion.inputsPerOutput =
        ConcatenatedSteane::subBlocksPerPi8Cat;
    conversion.unitArea = conversionArea_;
    conversion.unitLatency = conversionLatency_;

    catCascade_ = FactoryCascade({farm, conversion});
}

BandwidthPerMs
Level2Pi8Factory::throughput() const
{
    return catCascade_.stages()[1].unitOutPerMs;
}

BandwidthPerMs
Level2Pi8Factory::level1InputBandwidth() const
{
    return catCascade_.boundaryBandwidth(0, throughput());
}

double
Level2Pi8Factory::level1FeederFactories() const
{
    return catCascade_.unitsFor(throughput())[0];
}

Area
Level2Pi8Factory::conversionArea() const
{
    return conversionArea_;
}

Area
Level2Pi8Factory::feederArea() const
{
    return level1FeederFactories() * level1_.totalArea();
}

Area
Level2Pi8Factory::totalArea() const
{
    return catCascade_.areaFor(throughput());
}

Time
Level2Pi8Factory::latency() const
{
    const IonTrapParams eff =
        ConcatenatedSteane::effectiveTech(tech_, 2);
    const Time transit = 2 * eff.tmove + 2 * eff.tturn;
    return catCascade_.fillLatency() + transit;
}

} // namespace qc
