#include "factory/Pi8Factory.hh"

#include <cmath>

namespace qc {

Pi8Factory::Pi8Factory(IonTrapParams tech) : tech_(tech)
{
    const Pi8FactoryUnits units(tech);

    // One transversal unit is the capacity reference; the cat
    // preparation stage is sized as the (intentional) bottleneck:
    // as many cat units as the transversal stage can absorb, since
    // half of the transversal stage's input qubits come from cat
    // states and half from encoded zeroes.
    const int transversal_count = 1;
    const double transversal_cap =
        transversal_count * units.transversal.inBandwidth();
    const int cat_count = static_cast<int>(std::floor(
        (transversal_cap / 2.0) / units.catPrep7.outBandwidth()));

    // Actual qubit flow through the transversal stage: cat qubits
    // plus an equal flow of encoded-zero qubits.
    const double flow =
        2.0 * cat_count * units.catPrep7.outBandwidth();

    const int decode_count = static_cast<int>(
        std::ceil(flow / units.decode.inBandwidth()));

    const double decode_out_flow =
        flow * units.decode.itemsOut / units.decode.itemsIn;
    const int fixup_count = static_cast<int>(
        std::ceil(decode_out_flow / units.fixup.inBandwidth()));

    stages_ = {
        {units.catPrep7, cat_count},
        {units.transversal, transversal_count},
        {units.decode, decode_count},
        {units.fixup, fixup_count},
    };

    // All three crossbars move qubits in both directions (recycled
    // cat qubits flow back), so each gets two columns sized to the
    // taller adjacent stage.
    const int h1 = stages_[0].totalHeight();
    const int h2 = stages_[1].totalHeight();
    const int h3 = stages_[2].totalHeight();
    const int h4 = stages_[3].totalHeight();
    crossbars_ = {
        {2, std::max(h1, h2)},
        {2, std::max(h2, h3)},
        {2, std::max(h3, h4)},
    };
}

Area
Pi8Factory::functionalUnitArea() const
{
    Area area = 0;
    for (const StageDesign &s : stages_)
        area += s.totalArea();
    return area;
}

Area
Pi8Factory::crossbarArea() const
{
    Area area = 0;
    for (const CrossbarDesign &xb : crossbars_)
        area += xb.area();
    return area;
}

Area
Pi8Factory::totalArea() const
{
    return functionalUnitArea() + crossbarArea();
}

BandwidthPerMs
Pi8Factory::throughput() const
{
    // Each 7-qubit cat state yields one encoded pi/8 ancilla.
    return stages_[0].aggregateOut() / 7.0;
}

Time
Pi8Factory::latency() const
{
    const Time transit = 2 * tech_.tmove + 2 * tech_.tturn;
    Time total = 0;
    for (const StageDesign &s : stages_)
        total += s.unit.latency;
    total += 3 * transit;
    return total;
}

} // namespace qc
