#include "factory/FunctionalUnit.hh"

namespace qc {

ZeroFactoryUnits::ZeroFactoryUnits(const IonTrapParams &tech,
                                   double accept_rate)
{
    // Table 5, row by row. Latencies are the paper's symbolic
    // expressions; areas and heights are the paper's layouts
    // (Fig 13b-f).
    zeroPrep = {"Zero Prep",
                tech.tprep + tech.t1q + 2 * tech.tturn + tech.tmove,
                /*stages=*/1, /*in=*/1, /*out=*/1,
                /*area=*/1, /*height=*/1};

    cxStage = {"CX Stage",
               3 * tech.t2q + 6 * tech.tturn + 5 * tech.tmove,
               /*stages=*/3, /*in=*/7, /*out=*/7,
               /*area=*/28, /*height=*/4};

    catPrep = {"Cat State Prep",
               2 * tech.t2q + 4 * tech.tturn + 2 * tech.tmove,
               /*stages=*/2, /*in=*/3, /*out=*/3,
               /*area=*/6, /*height=*/2};

    verify = {"Verification",
              tech.tmeas + tech.t2q + 2 * tech.tturn + 2 * tech.tmove,
              /*stages=*/1, /*in=*/10, /*out=*/7 * accept_rate,
              /*area=*/10, /*height=*/10};

    bpCorrect = {"B/P Correction",
                 tech.tmeas + 2 * tech.t2q + 6 * tech.tturn
                     + 8 * tech.tmove,
                 /*stages=*/1, /*in=*/21, /*out=*/7,
                 /*area=*/21, /*height=*/21};
}

Pi8FactoryUnits::Pi8FactoryUnits(const IonTrapParams &tech)
{
    // Table 7, row by row.
    catPrep7 = {"Cat State Prepare",
                7 * tech.t2q + 14 * tech.tturn + 8 * tech.tmove,
                /*stages=*/1, /*in=*/7, /*out=*/7,
                /*area=*/12, /*height=*/6};

    transversal = {"Transversal CX/CS/CZ/pi8",
                   3 * tech.t2q + 2 * tech.tturn + 3 * tech.tmove,
                   /*stages=*/1, /*in=*/14, /*out=*/14,
                   /*area=*/7, /*height=*/7};

    decode = {"Decode (plus Store)",
              7 * tech.t2q + 14 * tech.tturn + 8 * tech.tmove,
              /*stages=*/1, /*in=*/14, /*out=*/8,
              /*area=*/19, /*height=*/13};

    fixup = {"H/M/Transversal Z",
             tech.tmeas + 2 * tech.t1q + 2 * tech.tturn
                 + 2 * tech.tmove,
             /*stages=*/1, /*in=*/8, /*out=*/7,
             /*area=*/8, /*height=*/8};
}

} // namespace qc
