/**
 * @file
 * Sizing ancilla-generation hardware to a target bandwidth (paper
 * Section 5.1, Table 9): how much chip area must be devoted to
 * encoded-zero factories (for QEC) and pi/8 factories (for
 * non-transversal gates, including the zero factories feeding them)
 * so a circuit can run at the speed of data.
 */

#ifndef QC_FACTORY_ALLOCATION_HH
#define QC_FACTORY_ALLOCATION_HH

#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace qc {

/** Factory counts and areas for a bandwidth requirement. */
struct FactoryAllocation
{
    /** Requested encoded-zero bandwidth for QEC (per ms). */
    BandwidthPerMs zeroQecBandwidth = 0;
    /** Requested encoded-pi/8 bandwidth (per ms). */
    BandwidthPerMs pi8Bandwidth = 0;

    /** Fractional zero factories dedicated to QEC. */
    double zeroFactoriesForQec = 0;
    /** Fractional pi/8 conversion factories. */
    double pi8Factories = 0;
    /** Fractional zero factories feeding the pi/8 factories. */
    double zeroFactoriesForPi8 = 0;

    /** Area of a single zero / pi/8 factory (for conversions). */
    Area zeroFactoryArea = 0;
    Area pi8FactoryArea = 0;

    /** QEC-generation area (Table 9 column 4). */
    Area
    qecArea() const
    {
        return zeroFactoriesForQec * zeroFactoryArea;
    }

    /** pi/8-generation area including feeders (Table 9 column 5). */
    Area
    pi8Area() const
    {
        return pi8Factories * pi8FactoryArea
            + zeroFactoriesForPi8 * zeroFactoryArea;
    }

    /** All ancilla-generation area. */
    Area totalArea() const { return qecArea() + pi8Area(); }
};

/**
 * Size factories for the given bandwidths (fractional counts, as in
 * the paper's Table 9 areas).
 */
FactoryAllocation allocateForBandwidth(const ZeroFactory &zero,
                                       const Pi8Factory &pi8,
                                       BandwidthPerMs zero_qec_per_ms,
                                       BandwidthPerMs pi8_per_ms);

} // namespace qc

#endif // QC_FACTORY_ALLOCATION_HH
