/**
 * @file
 * Sizing ancilla-generation hardware to a target bandwidth (paper
 * Section 5.1, Table 9): how much chip area must be devoted to
 * encoded-zero factories (for QEC) and pi/8 factories (for
 * non-transversal gates, including the zero factories feeding them)
 * so a circuit can run at the speed of data.
 */

#ifndef QC_FACTORY_ALLOCATION_HH
#define QC_FACTORY_ALLOCATION_HH

#include "factory/ConcatenatedFactory.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace qc {

/** Factory counts and areas for a bandwidth requirement. */
struct FactoryAllocation
{
    /** Code recursion level the ancillae are encoded at. */
    int codeLevel = 1;

    /** Requested encoded-zero bandwidth for QEC (per ms). */
    BandwidthPerMs zeroQecBandwidth = 0;
    /** Requested encoded-pi/8 bandwidth (per ms). */
    BandwidthPerMs pi8Bandwidth = 0;

    /** Fractional zero factories dedicated to QEC. */
    double zeroFactoriesForQec = 0;
    /** Fractional pi/8 conversion factories. */
    double pi8Factories = 0;
    /** Fractional zero factories feeding the pi/8 factories. */
    double zeroFactoriesForPi8 = 0;

    /** Area of a single zero / pi/8 factory (for conversions). */
    Area zeroFactoryArea = 0;
    Area pi8FactoryArea = 0;

    // --- Level >= 2 only: the cascade's inter-level traffic -------
    /**
     * Level-1 zeros/ms crossing the concatenation boundary into the
     * level-2 assembly and cat-feed stages (0 at level 1).
     */
    BandwidthPerMs interLevelZeroPerMs = 0;

    /**
     * Fractional level-1 zero factories embedded inside the level-2
     * cascades. Informational: their area is already included in
     * zeroFactoryArea / pi8FactoryArea.
     */
    double level1FeederFactories = 0;

    /** QEC-generation area (Table 9 column 4). */
    Area
    qecArea() const
    {
        return zeroFactoriesForQec * zeroFactoryArea;
    }

    /** pi/8-generation area including feeders (Table 9 column 5). */
    Area
    pi8Area() const
    {
        return pi8Factories * pi8FactoryArea
            + zeroFactoriesForPi8 * zeroFactoryArea;
    }

    /** All ancilla-generation area. */
    Area totalArea() const { return qecArea() + pi8Area(); }
};

/**
 * Size factories for the given bandwidths (fractional counts, as in
 * the paper's Table 9 areas).
 */
FactoryAllocation allocateForBandwidth(const ZeroFactory &zero,
                                       const Pi8Factory &pi8,
                                       BandwidthPerMs zero_qec_per_ms,
                                       BandwidthPerMs pi8_per_ms);

/**
 * Size level-2 cascades for the given *level-2* ancilla bandwidths.
 * Keeps the Table 9 split: zeroFactoriesForQec are whole level-2
 * zero cascades (level-1 feeders included in their area),
 * pi8Factories are conversion lines (cat feeders included), and
 * zeroFactoriesForPi8 are the level-2 zero cascades feeding the
 * conversions. interLevelZeroPerMs reports the total level-1 zero
 * traffic crossing the concatenation boundary.
 */
FactoryAllocation
allocateForBandwidthLevel2(const Level2ZeroFactory &zero,
                           const Level2Pi8Factory &pi8,
                           BandwidthPerMs zero_qec_per_ms,
                           BandwidthPerMs pi8_per_ms);

} // namespace qc

#endif // QC_FACTORY_ALLOCATION_HH
