/**
 * @file
 * The fully-pipelined encoded-zero ancilla factory of paper
 * Section 4.4.1 (Figures 12-13, Table 6), plus the simple
 * non-pipelined factory of Section 4.3 (Figure 11) for comparison.
 *
 * The pipelined design is derived, not hard-coded: functional unit
 * counts are chosen by matching the output bandwidth of each stage
 * to the input bandwidth of the next, with the single CX-network
 * unit as the reference (the paper's procedure). Under the paper's
 * ion-trap parameters this reproduces Table 6 exactly: 24 zero
 * preps, 1 CX unit, 1 cat unit, 3 verification units and 2 B/P
 * correction units; 130 macroblocks of functional units plus 168 of
 * crossbars = 298 total; throughput 10.5 encoded ancillae / ms.
 */

#ifndef QC_FACTORY_ZERO_FACTORY_HH
#define QC_FACTORY_ZERO_FACTORY_HH

#include <cstdint>
#include <vector>

#include "error/AncillaSim.hh" // MovementModel
#include "factory/FunctionalUnit.hh"

namespace qc {

/** One pipeline stage of a sized factory. */
struct StageDesign
{
    FunctionalUnitSpec unit;
    int count = 0;

    /** Height of the stage column (units stacked vertically). */
    int totalHeight() const { return count * unit.height; }

    /** Macroblock area of all units in the stage. */
    Area totalArea() const { return count * unit.area; }

    /** Aggregate input bandwidth (qubits/ms). */
    BandwidthPerMs aggregateIn() const
    {
        return count * unit.inBandwidth();
    }

    /** Aggregate output bandwidth (qubits/ms). */
    BandwidthPerMs aggregateOut() const
    {
        return count * unit.outBandwidth();
    }
};

/** A sized crossbar between two pipeline stages (Fig 13a). */
struct CrossbarDesign
{
    int columns = 2; ///< one column per movement direction
    int height = 0;  ///< matched to the taller adjacent stage

    Area area() const { return static_cast<Area>(columns) * height; }
};

/** The simple (non-pipelined) factory of Figure 11. */
class SimpleZeroFactory
{
  public:
    explicit SimpleZeroFactory(
        IonTrapParams tech = IonTrapParams::paper());

    /**
     * Latency of one complete preparation using the paper's
     * hand-optimized schedule:
     * tprep + 2 tmeas + 6 t2q + 2 t1q + 8 tturn + 30 tmove (323 us).
     */
    Time latency() const;

    /** One ancilla per latency: 3.1 encoded ancillae / ms. */
    BandwidthPerMs throughput() const;

    /** 90 macroblocks (three gate rows plus communication rows). */
    Area area() const;

  private:
    IonTrapParams tech_;
};

/**
 * Verification acceptance rate measured by the batched Pauli-frame
 * Monte Carlo engine (per-attempt acceptance of the VerifyOnly
 * strategy). At the paper's technology point this lands on the
 * Section 2.3 value of ~0.998 used by the Table 6 design; off the
 * paper point it lets factory designs track the actual error model
 * instead of a hard-coded constant.
 */
double measuredZeroAcceptRate(
    ErrorParams errors, MovementModel movement,
    std::uint64_t seed = 1, std::uint64_t trials = 1 << 20);

/** The pipelined encoded-zero factory (Fig 12, Table 6). */
class ZeroFactory
{
  public:
    /**
     * @param tech        physical latencies (Tables 1 and 4)
     * @param accept_rate verification acceptance rate (0.998 from
     *                    the Section 2.3 Monte Carlo)
     */
    explicit ZeroFactory(IonTrapParams tech = IonTrapParams::paper(),
                         double accept_rate = 0.998);

    /**
     * Size a factory from a Monte Carlo-measured acceptance rate
     * (measuredZeroAcceptRate) instead of the hard-coded paper
     * constant.
     */
    static ZeroFactory
    calibrated(IonTrapParams tech, ErrorParams errors,
               MovementModel movement, std::uint64_t seed = 1,
               std::uint64_t trials = 1 << 20);

    /** The five stage designs in pipeline order (Table 6). */
    const std::vector<StageDesign> &stages() const { return stages_; }

    /** The three inter-stage crossbars. */
    const std::vector<CrossbarDesign> &crossbars() const
    {
        return crossbars_;
    }

    /** Total functional-unit area (130 macroblocks). */
    Area functionalUnitArea() const;

    /** Total crossbar area (168 macroblocks). */
    Area crossbarArea() const;

    /** Whole-factory area (298 macroblocks). */
    Area totalArea() const;

    /**
     * Sustained output bandwidth: CX-stage qubit flow over seven
     * qubits per ancilla, times the verification acceptance, times
     * one third (two of three ancillae are consumed correcting the
     * third): 10.5 encoded ancillae / ms.
     */
    BandwidthPerMs throughput() const;

    /**
     * End-to-end latency of one ancilla through the pipeline
     * (unit latencies plus one crossbar transit per boundary).
     */
    Time latency() const;

    /** Verification acceptance rate used in the design. */
    double acceptRate() const { return acceptRate_; }

    const IonTrapParams &tech() const { return tech_; }

  private:
    IonTrapParams tech_;
    double acceptRate_;
    std::vector<StageDesign> stages_;
    std::vector<CrossbarDesign> crossbars_;
};

} // namespace qc

#endif // QC_FACTORY_ZERO_FACTORY_HH
