/**
 * @file
 * Event-level simulation of the pipelined encoded-zero factory
 * (Fig 12): candidates flow through the prep farm, the CX encode
 * network, cat preparation, verification post-selection and the
 * correction stage, each modeled as a bank of initiation-limited
 * units with the Table 5 latencies.
 *
 * This cross-validates the closed-form Table 6 design: the measured
 * steady-state output rate must match ZeroFactory::throughput()
 * (10.5 encoded ancillae/ms at the paper's technology point), and
 * the first-output latency must match the pipeline fill time.
 */

#ifndef QC_FACTORY_FARM_SIM_HH
#define QC_FACTORY_FARM_SIM_HH

#include <cstdint>

#include "common/Rng.hh"
#include "factory/ZeroFactory.hh"

namespace qc {

/** Outcome of a factory-pipeline simulation. */
struct FarmSimResult
{
    /** Measured steady-state output rate (per ms). */
    BandwidthPerMs throughput = 0;

    /** Completion time of the first delivered ancilla. */
    Time firstOutput = 0;

    /** Ancillae delivered. */
    std::uint64_t produced = 0;

    /** Candidates rejected by verification. */
    std::uint64_t discarded = 0;
};

/**
 * Simulate `candidates` encoded-ancilla candidates through the
 * factory pipeline.
 *
 * @param factory    the sized design (unit counts, latencies)
 * @param candidates number of 7-qubit candidates to push through
 * @param seed       RNG seed for verification post-selection
 */
FarmSimResult simulateZeroFactory(const ZeroFactory &factory,
                                  int candidates,
                                  std::uint64_t seed = 1);

} // namespace qc

#endif // QC_FACTORY_FARM_SIM_HH
