/**
 * @file
 * Level-2 ancilla factories: cascades that consume level-1 factory
 * outputs and deliver level-2 encoded ancillae.
 *
 * Concatenation makes the designs self-similar. A level-2 encoded
 * zero is prepared by the Fig 4c verify-and-correct schedule with
 * every physical operation replaced by a level-1 encoded operation
 * (latencies from ConcatenatedSteane::effectiveTech), and every
 * physical |0> replaced by a level-1 encoded zero drawn from the
 * standard pipelined level-1 factory of Table 6. One "level-2 zero
 * factory" is therefore a two-stage FactoryCascade:
 *
 *   stage 0: fractional level-1 pipelined zero factories
 *            (ZeroFactory: 10.5 ancillae/ms, 298 mb each at the
 *            paper point), enough to keep stage 1 saturated;
 *   stage 1: one level-2 assembly line running encode / verify /
 *            bit-correct / phase-correct as a four-deep pipeline at
 *            level-2 effective latencies. Each raw block consumes
 *            ten level-1 zeros (seven for the block, three for the
 *            verification cat), and three raw verified blocks yield
 *            one delivered level-2 zero (the delivered block plus
 *            its two correction ancillae — the same divide-by-three
 *            as the Table 6 throughput derivation).
 *
 * The level-2 pi/8 factory mirrors Fig 5b one level up: a
 * seven-block cat of level-1 encoded qubits (seven level-1 zeros
 * per output), a transversal interaction with one level-2 zero, a
 * decode stage and the measurement fix-up. Its reported area
 * includes the level-1 cat-feeder factories; the level-2 zero
 * supply is provisioned separately (Allocation keeps the paper's
 * Table 9 split of pi/8 conversion vs feeder zero generation).
 *
 * Units: bandwidths in items/ms, areas in level-1 macroblocks,
 * times in ns. All quantities are symbolic in IonTrapParams.
 */

#ifndef QC_FACTORY_CONCATENATED_FACTORY_HH
#define QC_FACTORY_CONCATENATED_FACTORY_HH

#include "factory/Cascade.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace qc {

struct RecursiveErrorAnalysis;

/** The level-2 encoded-zero factory cascade. */
class Level2ZeroFactory
{
  public:
    /**
     * @param tech          physical latencies (Tables 1 and 4)
     * @param l1AcceptRate  level-1 verification acceptance used to
     *                      size the embedded level-1 factories
     *                      (paper: 0.998 from the Monte Carlo)
     * @param l2AcceptRate  level-2 verification acceptance (level-1
     *                      logical rates are ~p^2, so this is very
     *                      close to one; 0.999 default)
     */
    explicit Level2ZeroFactory(
        IonTrapParams tech = IonTrapParams::paper(),
        double l1AcceptRate = 0.998, double l2AcceptRate = 0.999);

    /**
     * Size a level-2 factory from a recursive Monte Carlo analysis
     * (analyzeRecursiveError): both acceptance rates measured.
     */
    static Level2ZeroFactory
    calibrated(IonTrapParams tech,
               const RecursiveErrorAnalysis &analysis);

    /** The two-stage cascade (level-1 farm, level-2 assembly). */
    const FactoryCascade &cascade() const { return cascade_; }

    /** Delivered level-2 zeros/ms of one assembly line. */
    BandwidthPerMs throughput() const;

    /** Level-1 zeros/ms consumed at full rate (the inter-level
     *  bandwidth across the cascade boundary). */
    BandwidthPerMs level1InputBandwidth() const;

    /** Fractional level-1 ZeroFactory count embedded per assembly
     *  line (their area is included in totalArea()). */
    double level1FeederFactories() const;

    /** Level-1 zeros consumed per delivered level-2 zero. */
    double level1ZerosPerOutput() const;

    /** Assembly-line area (block workspaces + crossbar share). */
    Area assemblyArea() const;

    /** Area of the embedded level-1 feeder factories. */
    Area feederArea() const;

    /** Whole-cascade area per delivered-bandwidth unit of one
     *  assembly line (feeders included). */
    Area totalArea() const;

    /** Cold-start latency: level-1 fill plus the assembly pipeline. */
    Time latency() const;

    /** Level-2 verification acceptance used in the design. */
    double acceptRate() const { return l2Accept_; }

    /** The embedded level-1 factory design. */
    const ZeroFactory &level1() const { return level1_; }

    const IonTrapParams &tech() const { return tech_; }

  private:
    IonTrapParams tech_;
    double l2Accept_;
    ZeroFactory level1_;
    Time assemblyLatency_ = 0;
    Area assemblyArea_ = 0;
    FactoryCascade cascade_;
};

/** The level-2 pi/8 conversion factory. */
class Level2Pi8Factory
{
  public:
    explicit Level2Pi8Factory(
        IonTrapParams tech = IonTrapParams::paper(),
        double l1AcceptRate = 0.998);

    /** Delivered level-2 pi/8 ancillae/ms of one conversion line. */
    BandwidthPerMs throughput() const;

    /** Level-2 zeros/ms consumed at full rate (one per output). */
    BandwidthPerMs level2ZeroInputBandwidth() const
    {
        return throughput();
    }

    /** Level-1 zeros/ms consumed for cat states (seven per output). */
    BandwidthPerMs level1InputBandwidth() const;

    /** Fractional level-1 ZeroFactory count feeding the cats. */
    double level1FeederFactories() const;

    /** Conversion-line area (block workspaces + crossbar share). */
    Area conversionArea() const;

    /** Area of the embedded level-1 cat-feeder factories. */
    Area feederArea() const;

    /** Conversion plus cat feeders; excludes the level-2 zero
     *  supply, which Allocation provisions separately. */
    Area totalArea() const;

    /** Cold-start conversion latency (cat feed included). */
    Time latency() const;

    const IonTrapParams &tech() const { return tech_; }

  private:
    IonTrapParams tech_;
    ZeroFactory level1_;
    Time conversionLatency_ = 0;
    Area conversionArea_ = 0;
    FactoryCascade catCascade_;
};

} // namespace qc

#endif // QC_FACTORY_CONCATENATED_FACTORY_HH
