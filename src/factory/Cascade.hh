/**
 * @file
 * The recursive exact pi/2^k gate construction of paper Figure 6
 * (Section 2.5 / 4.4.2): a cascade of pi/2^i ancilla factories
 * (i = 3..k) with k-2 CX and X gates, where each measurement has an
 * equal chance of requiring the next, larger rotation.
 *
 * The paper does not use this construction in its main circuits
 * (it requires arbitrary-precision physical rotations) but analyzes
 * its data-critical-path advantage; this model backs the
 * corresponding ablation bench.
 */

#ifndef QC_FACTORY_CASCADE_HH
#define QC_FACTORY_CASCADE_HH

#include "common/Params.hh"
#include "common/Types.hh"

namespace qc {

/** Analytic model of the Figure 6 cascade. */
class CascadeModel
{
  public:
    /**
     * Expected number of CX (ancilla interaction) gates on the data
     * critical path for an exact pi/2^k gate: the first interaction
     * always happens; stage i+1 runs only if stage i measured the
     * "wrong" state (probability 1/2 each).
     */
    static double
    expectedCxCount(int k)
    {
        if (k <= 2)
            return k >= 1 ? 1.0 : 0.0;
        const int stages = k - 2;
        double expected = 0.0;
        double prob = 1.0;
        for (int i = 0; i < stages; ++i) {
            expected += prob;
            prob *= 0.5;
        }
        return expected;
    }

    /** Expected X (fix-up) gates: one fewer than the CX count. */
    static double
    expectedXCount(int k)
    {
        const double cx = expectedCxCount(k);
        return cx > 1.0 ? cx - 1.0 : 0.0;
    }

    /**
     * Expected data-path latency of an exact pi/2^k via the
     * cascade: each stage is an ancilla interaction (CX), a
     * measurement, and a conditional X.
     */
    static Time
    expectedDataLatency(int k, const IonTrapParams &tech)
    {
        const double stages = expectedCxCount(k);
        const double per_stage = static_cast<double>(
            tech.t2q + tech.tmeas + tech.t1q);
        return static_cast<Time>(stages * per_stage);
    }

    /** Worst-case latency: every stage fires (k-2 stages). */
    static Time
    worstCaseDataLatency(int k, const IonTrapParams &tech)
    {
        const int stages = k <= 2 ? (k >= 1 ? 1 : 0) : k - 2;
        return stages * (tech.t2q + tech.tmeas + tech.t1q);
    }
};

} // namespace qc

#endif // QC_FACTORY_CASCADE_HH
