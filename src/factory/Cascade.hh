/**
 * @file
 * Factory cascades: chains of production stages where each stage
 * consumes the outputs of the one below it.
 *
 * Two cascade families live here:
 *
 *  - FactoryCascade, the general sizing abstraction. A stage is
 *    described by one unit's delivered bandwidth, its per-output
 *    consumption of the upstream product, its area and its fill
 *    latency; the cascade sizes fractional unit counts at every
 *    stage for a target top-level output bandwidth and reports the
 *    inter-stage (inter-level) bandwidths. The level-2 concatenated
 *    factories (ConcatenatedFactory.hh) are two-stage instances:
 *    level-1 pipelined factories feeding a level-2 assembly line.
 *
 *  - CascadeModel, the recursive exact pi/2^k gate construction of
 *    paper Figure 6 (Section 2.5 / 4.4.2): a cascade of pi/2^i
 *    ancilla factories (i = 3..k) with k-2 CX and X gates, where
 *    each measurement has an equal chance of requiring the next,
 *    larger rotation. The paper does not use this construction in
 *    its main circuits (it requires arbitrary-precision physical
 *    rotations) but analyzes its data-critical-path advantage; this
 *    model backs the corresponding ablation bench.
 *
 * Units: bandwidths in items/ms, areas in macroblocks, times in ns.
 */

#ifndef QC_FACTORY_CASCADE_HH
#define QC_FACTORY_CASCADE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/Params.hh"
#include "common/Types.hh"

namespace qc {

/** One production stage of a multi-level factory cascade. */
struct CascadeStage
{
    /** Display name ("level-1 zero factory", "level-2 assembly"). */
    std::string name;

    /** Delivered outputs per millisecond of ONE unit of this stage. */
    BandwidthPerMs unitOutPerMs = 0;

    /**
     * Outputs of the stage below consumed per delivered output of
     * this stage (0 for the bottom stage, which is fed by raw
     * physical resources).
     */
    double inputsPerOutput = 0;

    /** Macroblock area of one unit. */
    Area unitArea = 0;

    /** Fill latency of one unit (first output after a cold start). */
    Time unitLatency = 0;
};

/**
 * A linear chain of production stages, bottom (physical-fed) first.
 * Sizing is fractional, as in the paper's Table 9 areas: unit
 * counts scale continuously with the requested bandwidth.
 */
class FactoryCascade
{
  public:
    explicit FactoryCascade(std::vector<CascadeStage> stages)
        : stages_(std::move(stages))
    {
    }

    const std::vector<CascadeStage> &stages() const { return stages_; }

    /**
     * Output bandwidth (items/ms) crossing the boundary *above*
     * stage `stage` when the top stage delivers `outPerMs`: the
     * inter-level bandwidth requirement.
     */
    BandwidthPerMs
    boundaryBandwidth(std::size_t stage, BandwidthPerMs outPerMs) const
    {
        BandwidthPerMs demand = outPerMs;
        for (std::size_t s = stages_.size(); s-- > stage + 1;)
            demand *= stages_[s].inputsPerOutput;
        return demand;
    }

    /** Fractional unit count per stage at `outPerMs` delivered. */
    std::vector<double>
    unitsFor(BandwidthPerMs outPerMs) const
    {
        std::vector<double> units(stages_.size(), 0.0);
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const BandwidthPerMs demand =
                boundaryBandwidth(s, outPerMs);
            if (stages_[s].unitOutPerMs > 0)
                units[s] = demand / stages_[s].unitOutPerMs;
        }
        return units;
    }

    /** Total macroblock area of all stages at `outPerMs`. */
    Area
    areaFor(BandwidthPerMs outPerMs) const
    {
        Area area = 0;
        const std::vector<double> units = unitsFor(outPerMs);
        for (std::size_t s = 0; s < stages_.size(); ++s)
            area += units[s] * stages_[s].unitArea;
        return area;
    }

    /** Cold-start fill latency: one item traverses every stage. */
    Time
    fillLatency() const
    {
        Time total = 0;
        for (const CascadeStage &stage : stages_)
            total += stage.unitLatency;
        return total;
    }

  private:
    std::vector<CascadeStage> stages_;
};

/** Analytic model of the Figure 6 cascade. */
class CascadeModel
{
  public:
    /**
     * Expected number of CX (ancilla interaction) gates on the data
     * critical path for an exact pi/2^k gate: the first interaction
     * always happens; stage i+1 runs only if stage i measured the
     * "wrong" state (probability 1/2 each).
     */
    static double
    expectedCxCount(int k)
    {
        if (k <= 2)
            return k >= 1 ? 1.0 : 0.0;
        const int stages = k - 2;
        double expected = 0.0;
        double prob = 1.0;
        for (int i = 0; i < stages; ++i) {
            expected += prob;
            prob *= 0.5;
        }
        return expected;
    }

    /** Expected X (fix-up) gates: one fewer than the CX count. */
    static double
    expectedXCount(int k)
    {
        const double cx = expectedCxCount(k);
        return cx > 1.0 ? cx - 1.0 : 0.0;
    }

    /**
     * Expected data-path latency of an exact pi/2^k via the
     * cascade: each stage is an ancilla interaction (CX), a
     * measurement, and a conditional X.
     */
    static Time
    expectedDataLatency(int k, const IonTrapParams &tech)
    {
        const double stages = expectedCxCount(k);
        const double per_stage = static_cast<double>(
            tech.t2q + tech.tmeas + tech.t1q);
        return static_cast<Time>(stages * per_stage);
    }

    /** Worst-case latency: every stage fires (k-2 stages). */
    static Time
    worstCaseDataLatency(int k, const IonTrapParams &tech)
    {
        const int stages = k <= 2 ? (k >= 1 ? 1 : 0) : k - 2;
        return stages * (tech.t2q + tech.tmeas + tech.t1q);
    }
};

} // namespace qc

#endif // QC_FACTORY_CASCADE_HH
