/**
 * @file
 * 2x2 unitary matrices up to global phase, used by the Fowler-style
 * gate-sequence search (Section 2.5 of the paper; Fowler,
 * quant-ph/0506126).
 */

#ifndef QC_SYNTH_SU2_HH
#define QC_SYNTH_SU2_HH

#include <complex>

namespace qc {

/**
 * A single-qubit unitary. Comparison and distance are defined up to
 * global phase, which is the physically meaningful equivalence.
 */
class Su2
{
  public:
    using Cplx = std::complex<double>;

    /** Identity. */
    Su2();

    /** From explicit entries (row major). */
    Su2(Cplx a00, Cplx a01, Cplx a10, Cplx a11);

    /** @name Generators. */
    /** @{ */
    static Su2 identity();
    static Su2 hGate();
    static Su2 tGate();
    static Su2 tdgGate();
    static Su2 sGate();
    static Su2 sdgGate();
    static Su2 zGate();
    static Su2 xGate();
    /** Z-rotation: diag(1, e^{i theta}). */
    static Su2 phase(double theta);
    /** Z-rotation by pi/2^k: diag(1, e^{i pi/2^k}). */
    static Su2 rotZ(int k);
    /** @} */

    /** Matrix product (this applied after rhs, i.e. *this * rhs). */
    Su2 operator*(const Su2 &rhs) const;

    /** Conjugate transpose. */
    Su2 dagger() const;

    /**
     * Phase-invariant distance in [0, 1]:
     * d(U, V) = sqrt(1 - |tr(U^dag V)| / 2).
     * Zero iff U = e^{i phi} V.
     */
    double distTo(const Su2 &other) const;

    /** Entry accessor (r, c in {0, 1}). */
    Cplx at(int r, int c) const { return m_[r][c]; }

  private:
    Cplx m_[2][2];
};

} // namespace qc

#endif // QC_SYNTH_SU2_HH
