#include "synth/Su2.hh"

#include <cmath>

namespace qc {

namespace {

constexpr double invSqrt2 = 0.70710678118654752440;

} // namespace

Su2::Su2() : Su2(1.0, 0.0, 0.0, 1.0)
{
}

Su2::Su2(Cplx a00, Cplx a01, Cplx a10, Cplx a11)
{
    m_[0][0] = a00;
    m_[0][1] = a01;
    m_[1][0] = a10;
    m_[1][1] = a11;
}

Su2
Su2::identity()
{
    return Su2();
}

Su2
Su2::hGate()
{
    return Su2(invSqrt2, invSqrt2, invSqrt2, -invSqrt2);
}

Su2
Su2::tGate()
{
    return phase(M_PI / 4.0);
}

Su2
Su2::tdgGate()
{
    return phase(-M_PI / 4.0);
}

Su2
Su2::sGate()
{
    return phase(M_PI / 2.0);
}

Su2
Su2::sdgGate()
{
    return phase(-M_PI / 2.0);
}

Su2
Su2::zGate()
{
    return phase(M_PI);
}

Su2
Su2::xGate()
{
    return Su2(0.0, 1.0, 1.0, 0.0);
}

Su2
Su2::phase(double theta)
{
    return Su2(1.0, 0.0, 0.0, std::polar(1.0, theta));
}

Su2
Su2::rotZ(int k)
{
    const double magnitude = M_PI / std::ldexp(1.0, std::abs(k));
    return phase(k >= 0 ? magnitude : -magnitude);
}

Su2
Su2::operator*(const Su2 &rhs) const
{
    Su2 out(0.0, 0.0, 0.0, 0.0);
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            out.m_[r][c] = m_[r][0] * rhs.m_[0][c]
                + m_[r][1] * rhs.m_[1][c];
        }
    }
    return out;
}

Su2
Su2::dagger() const
{
    return Su2(std::conj(m_[0][0]), std::conj(m_[1][0]),
               std::conj(m_[0][1]), std::conj(m_[1][1]));
}

double
Su2::distTo(const Su2 &other) const
{
    const Su2 prod = dagger() * other;
    const double traceMag = std::abs(prod.m_[0][0] + prod.m_[1][1]);
    // Clamp against tiny negative values from rounding.
    const double inner = 1.0 - std::min(1.0, traceMag / 2.0);
    return std::sqrt(inner < 0.0 ? 0.0 : inner);
}

} // namespace qc
