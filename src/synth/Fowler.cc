#include "synth/Fowler.hh"

#include <algorithm>
#include <cstdint>

#include "common/Logging.hh"

namespace qc {

namespace {

/** Decomposition of T^a (a in [0,7]) over {T, S, Z, Sdg, Tdg}. */
const std::vector<GateKind> &
tPowerGates(int a)
{
    static const std::vector<GateKind> table[8] = {
        {},
        {GateKind::T},
        {GateKind::S},
        {GateKind::S, GateKind::T},
        {GateKind::Z},
        {GateKind::Z, GateKind::T},
        {GateKind::Sdg},
        {GateKind::Tdg},
    };
    return table[a];
}

/** Weighted cost of the decomposition of T^a. */
int
tPowerCost(int a, bool pure_ht, int t_weight)
{
    if (pure_ht)
        return a * t_weight;
    int cost = 0;
    for (GateKind g : tPowerGates(a)) {
        cost += (g == GateKind::T || g == GateKind::Tdg) ? t_weight
                                                         : 1;
    }
    return cost;
}

GateKind
inverseOf(GateKind kind)
{
    switch (kind) {
      case GateKind::T:   return GateKind::Tdg;
      case GateKind::Tdg: return GateKind::T;
      case GateKind::S:   return GateKind::Sdg;
      case GateKind::Sdg: return GateKind::S;
      case GateKind::H:   return GateKind::H;
      case GateKind::Z:   return GateKind::Z;
      case GateKind::X:   return GateKind::X;
      default:
        panic("inverseOf: unsupported gate in sequence");
    }
}

Su2
matrixOf(GateKind kind)
{
    switch (kind) {
      case GateKind::H:   return Su2::hGate();
      case GateKind::T:   return Su2::tGate();
      case GateKind::Tdg: return Su2::tdgGate();
      case GateKind::S:   return Su2::sGate();
      case GateKind::Sdg: return Su2::sdgGate();
      case GateKind::Z:   return Su2::zGate();
      case GateKind::X:   return Su2::xGate();
      default:
        panic("matrixOf: unsupported gate in sequence");
    }
}

/** DFS state shared across the recursion. */
struct SearchCtx
{
    const Su2 *target;
    double maxError;
    int maxSyllables;
    bool pureHT;
    int tWeight;

    // Best-so-far.
    double bestError = 2.0;
    int bestCost = 1 << 30;
    std::vector<std::uint8_t> bestWord; // a0, a1, ..., as
    bool found = false;

    // Current path of syllable exponents.
    std::vector<std::uint8_t> word;

    void
    consider(const Su2 &m, int cost)
    {
        const double err = m.distTo(*target);
        const bool ok = err <= maxError;
        if (found) {
            // Among acceptable words prefer lower cost, then error.
            if (ok && (cost < bestCost ||
                       (cost == bestCost && err < bestError))) {
                bestCost = cost;
                bestError = err;
                bestWord = word;
            }
        } else if (ok) {
            found = true;
            bestCost = cost;
            bestError = err;
            bestWord = word;
        } else if (err < bestError) {
            // Track the closest miss as a fallback answer.
            bestError = err;
            bestCost = cost;
            bestWord = word;
        }
    }
};

/**
 * Recursively extend the word with "H T^a" syllables.
 *
 * @param ctx       search state
 * @param m         unitary of the word so far (later gates on left)
 * @param cost      decomposed gate count of the word so far
 * @param depth     syllables consumed so far
 */
void
extend(SearchCtx &ctx, const Su2 &m, int cost, int depth)
{
    if (depth >= ctx.maxSyllables)
        return;
    const Su2 afterH = Su2::hGate() * m;
    const Su2 tMat = Su2::tGate();

    ctx.word.push_back(0);
    // a = 0 is only meaningful as a final syllable (a trailing H);
    // deeper syllables with a = 0 would merge two H's.
    ctx.consider(afterH, cost + 1);

    Su2 cur = afterH;
    for (int a = 1; a <= 7; ++a) {
        cur = tMat * cur;
        ctx.word.back() = static_cast<std::uint8_t>(a);
        const int c = cost + 1 + tPowerCost(a, ctx.pureHT,
                                            ctx.tWeight);
        ctx.consider(cur, c);
        extend(ctx, cur, c, depth + 1);
    }
    ctx.word.pop_back();
}

ApproxSequence
wordToSequence(const std::vector<std::uint8_t> &word, double error,
               bool pure_ht)
{
    ApproxSequence seq;
    seq.error = error;
    bool first = true;
    for (std::uint8_t a : word) {
        if (!first)
            seq.gates.push_back(GateKind::H);
        if (pure_ht) {
            seq.gates.insert(seq.gates.end(), a, GateKind::T);
        } else {
            const auto &gates = tPowerGates(a);
            seq.gates.insert(seq.gates.end(), gates.begin(),
                             gates.end());
        }
        first = false;
    }
    return seq;
}

} // namespace

int
ApproxSequence::tCount() const
{
    return static_cast<int>(
        std::count_if(gates.begin(), gates.end(), [](GateKind g) {
            return g == GateKind::T || g == GateKind::Tdg;
        }));
}

Su2
ApproxSequence::unitary() const
{
    Su2 m = Su2::identity();
    for (GateKind g : gates)
        m = matrixOf(g) * m;
    return m;
}

ApproxSequence
ApproxSequence::inverted() const
{
    ApproxSequence inv;
    inv.error = error;
    inv.gates.reserve(gates.size());
    for (auto it = gates.rbegin(); it != gates.rend(); ++it)
        inv.gates.push_back(inverseOf(*it));
    return inv;
}

FowlerSynth::FowlerSynth(Options options) : opts_(options)
{
    if (opts_.maxSyllables < 1 || opts_.maxSyllables > 9)
        fatal("FowlerSynth: maxSyllables must be in [1, 9]");
}

ApproxSequence
FowlerSynth::search(const Su2 &target) const
{
    auto run_dfs = [&](double max_error) {
        SearchCtx ctx;
        ctx.target = &target;
        ctx.maxError = max_error;
        ctx.maxSyllables = opts_.maxSyllables;
        ctx.pureHT = opts_.pureHT;
        ctx.tWeight = opts_.tCostWeight;

        // Leading T^{a0} syllable (no H before it), a0 = 0 meaning
        // the empty word.
        const Su2 tMat = Su2::tGate();
        Su2 cur = Su2::identity();
        for (int a0 = 0; a0 <= 7; ++a0) {
            if (a0 > 0)
                cur = tMat * cur;
            ctx.word.assign(1, static_cast<std::uint8_t>(a0));
            const int cost =
                tPowerCost(a0, opts_.pureHT, opts_.tCostWeight);
            ctx.consider(cur, cost);
            extend(ctx, cur, cost, 0);
        }
        return ctx;
    };

    SearchCtx ctx = run_dfs(opts_.maxError);
    if (!ctx.found) {
        // The tolerance is unreachable at this depth. Re-search for
        // the cheapest word within a tight (2%) band of the best
        // achievable error, so the cost objective (and in
        // particular the T weight) still selects among the words of
        // essentially optimal fidelity.
        ctx = run_dfs(ctx.bestError * 1.02 + 1e-15);
    }
    return wordToSequence(ctx.bestWord, ctx.bestError, opts_.pureHT);
}

const ApproxSequence &
FowlerSynth::rotZ(int k)
{
    auto it = cache_.find(k);
    if (it != cache_.end())
        return it->second;

    ApproxSequence seq;
    const int mag = k < 0 ? -k : k;
    if (mag == 0) {
        seq.gates = {GateKind::Z};
    } else if (mag == 1) {
        seq.gates = {k > 0 ? GateKind::S : GateKind::Sdg};
    } else if (mag == 2) {
        seq.gates = {k > 0 ? GateKind::T : GateKind::Tdg};
    } else if (k > 0) {
        seq = search(Su2::rotZ(k));
    } else {
        seq = rotZ(mag).inverted();
    }
    return cache_.emplace(k, std::move(seq)).first->second;
}

} // namespace qc
