/**
 * @file
 * Fowler-style exhaustive search for fault-tolerant single-qubit
 * rotation approximations (paper Section 2.5; Fowler,
 * quant-ph/0506126).
 *
 * Small-angle pi/2^k rotations have no transversal implementation on
 * the [[7,1,3]] code, so the paper approximates each one offline by
 * the minimum-length word over the fault-tolerant gate set {H, T}
 * within an acceptable error. We search canonical words of the form
 *
 *     T^{a0} (H T^{a1}) (H T^{a2}) ... (H T^{as})
 *
 * with a0, as in [0,7] and interior ai in [1,7] (any {H,T} word
 * reduces to this form since H^2 = I and T^8 = I), and report the
 * cheapest word whose phase-invariant distance to the target is
 * within tolerance. T-powers are re-expressed over {T, S, Z, Sdg,
 * Tdg} so the emitted sequence consumes the minimum number of pi/8
 * ancillae.
 */

#ifndef QC_SYNTH_FOWLER_HH
#define QC_SYNTH_FOWLER_HH

#include <map>
#include <vector>

#include "circuit/Gate.hh"
#include "synth/Su2.hh"

namespace qc {

/** A fault-tolerant gate word approximating a target unitary. */
struct ApproxSequence
{
    /** Gates in application order (H, T, Tdg, S, Sdg, Z only). */
    std::vector<GateKind> gates;

    /** Phase-invariant distance to the target (0 = exact). */
    double error = 0.0;

    /** Total gate count. */
    int size() const { return static_cast<int>(gates.size()); }

    /** Number of pi/8-ancilla-consuming gates (T and Tdg). */
    int tCount() const;

    /** True if this word implements the target exactly. */
    bool exact() const { return error == 0.0; }

    /** The unitary this word implements. */
    Su2 unitary() const;

    /** The inverse word (reversed, each gate inverted). */
    ApproxSequence inverted() const;
};

/**
 * Cached exhaustive {H, T} search for pi/2^k rotation words.
 */
class FowlerSynth
{
  public:
    struct Options
    {
        /**
         * Maximum number of H-separated syllables to search. Node
         * count grows as ~7^maxSyllables; 6 completes in well under
         * a second, 7 in a few seconds.
         */
        int maxSyllables = 6;

        /** Acceptable phase-invariant distance to the target. */
        double maxError = 1e-3;

        /**
         * Emit words over the literal {H, T} alphabet (T^a as a
         * repeated T gates) instead of compressing T powers into
         * {T, S, Z, Sdg, Tdg}. Fowler's search [14] — and therefore
         * the paper's QFT gate mix with its ~47% non-transversal
         * fraction — uses the literal alphabet; the compressed form
         * consumes fewer pi/8 ancillae and is the better
         * engineering choice, so both are supported and the
         * difference is an ablation in the bench suite.
         */
        bool pureHT = false;

        /**
         * Relative cost of a T/Tdg gate versus a Clifford in the
         * word-cost objective. T gates consume an encoded pi/8
         * ancilla (Section 2.4), so weighting them higher steers
         * the search toward Clifford-rich words of equal fidelity
         * and lowers the pi/8 bandwidth the circuit demands.
         */
        int tCostWeight = 1;
    };

    /** Search with default options. */
    FowlerSynth() : FowlerSynth(Options{}) {}

    explicit FowlerSynth(Options options);

    /**
     * Word for the rotation diag(1, e^{i pi/2^k}); a negative k
     * requests the inverse rotation diag(1, e^{-i pi/2^|k|}).
     *
     * k in {0, 1, 2} (and negatives) are exact Cliffords / T gates;
     * larger |k| triggers (cached) search. If no word reaches
     * maxError within maxSyllables the best word found is returned
     * with its residual error — callers can inspect
     * ApproxSequence::error.
     */
    const ApproxSequence &rotZ(int k);

    /** Search for an arbitrary target unitary (uncached). */
    ApproxSequence search(const Su2 &target) const;

    const Options &options() const { return opts_; }

  private:
    Options opts_;
    std::map<int, ApproxSequence> cache_;
};

} // namespace qc

#endif // QC_SYNTH_FOWLER_HH
