/**
 * @file
 * Polymorphic microarchitecture models behind one shared
 * event-driven dataflow executor (the paper's Section 5.2
 * "event-based simulation of ancilla factory production and data
 * qubit gate consumption").
 *
 * An ArchModel describes where encoded ancillae come from and what
 * data movement costs; the base class owns the executor loop that
 * walks the dataflow graph in dependence order. Each run creates a
 * fresh ArchExecution carrying the model's per-run state (generator
 * banks, compute cache, token pools) and counters.
 *
 * Models register by string key in ArchRegistry ("qla", "gqla",
 * "cqla", "gcqla", "fma"); the legacy MicroarchKind enum and
 * runMicroarch() in arch/Microarch.hh are thin aliases over the
 * registry, kept so pre-redesign wiring stays bit-identical.
 *
 * Unknown keys throw std::invalid_argument listing the registered
 * keys.
 */

#ifndef QC_API_ARCH_MODEL_HH
#define QC_API_ARCH_MODEL_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/Microarch.hh"
#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"

namespace qc {

/**
 * Per-run state and policy hooks of one microarchitecture run. The
 * executor calls moveOverhead() then ancillaReady() for each gate,
 * in that order — models that route the ancilla claim to the site
 * chosen by movement (the cached architectures) rely on it.
 */
class ArchExecution
{
  public:
    virtual ~ArchExecution() = default;

    /**
     * Movement / cache latency (ns) charged before the gate
     * executes. Implementations update their movement counters in
     * result.
     */
    virtual Time moveOverhead(const Gate &gate) = 0;

    /**
     * Earliest simulated time (ns) the gate's encoded ancillae are
     * delivered to its QEC site, given the launch attempt at `now`.
     */
    virtual Time ancillaReady(const Gate &gate, Time now) = 0;

    /** Counters and outcome, updated by the hooks and executor. */
    ArchRunResult result;
};

/**
 * One microarchitecture model. Stateless and shareable: all per-run
 * state lives in the ArchExecution returned by prepare().
 */
class ArchModel
{
  public:
    virtual ~ArchModel() = default;

    /** Display name (paper style: "QLA", "Fully-Multiplexed"). */
    virtual std::string name() const = 0;

    /**
     * Build the per-run state (banks, cache, pools) and charge the
     * configuration's ancilla-generation area to result.
     */
    virtual std::unique_ptr<ArchExecution>
    prepare(const DataflowGraph &graph, const EncodedOpModel &model,
            const MicroarchConfig &config) const = 0;

    /**
     * Run one dataflow graph to completion: the shared event-driven
     * executor, identical for every model. The EncodedOpModel must
     * already be at the config's code level (the facade builds it
     * from ConcatenatedSteane::effectiveTech); times in the result
     * are ns, areas macroblocks.
     */
    ArchRunResult run(const DataflowGraph &graph,
                      const EncodedOpModel &model,
                      const MicroarchConfig &config) const;
};

/**
 * Process-wide registry of microarchitecture models. Built-in
 * models (defined in arch/Microarch.cc) self-register on first use.
 */
class ArchRegistry
{
  public:
    static ArchRegistry &instance();

    /** Register (or replace) a model under a lookup key. */
    void add(const std::string &key,
             std::shared_ptr<const ArchModel> model);

    bool contains(const std::string &key) const;

    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** Look up a model; throws std::invalid_argument on unknowns. */
    const ArchModel &get(const std::string &key) const;

  private:
    std::map<std::string, std::shared_ptr<const ArchModel>> models_;
};

/**
 * Registers the five built-in models (defined in arch/Microarch.cc;
 * called once by ArchRegistry::instance).
 */
void registerBuiltinArchModels(ArchRegistry &registry);

} // namespace qc

#endif // QC_API_ARCH_MODEL_HH
