/**
 * @file
 * Minimal JSON value type for the experiment API: enough to
 * round-trip ExperimentConfig and serialize Result for the BENCH_*
 * trajectory files, with no external dependency.
 *
 * Objects keep their keys sorted (std::map), so serialization is
 * deterministic and diff-friendly. Numbers are stored as double;
 * integral values within the exact double range print without a
 * decimal point, so Time (int64 nanoseconds) fields survive a
 * round-trip bit-exactly for any simulated time under ~104 days.
 *
 * Errors (syntax errors on parse, kind mismatches on access) throw
 * std::invalid_argument: the API layer reports user-input problems
 * as catchable exceptions rather than aborting, unlike the panic()
 * convention of the inner simulation layers.
 */

#ifndef QC_API_JSON_HH
#define QC_API_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qc {

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double v) : kind_(Kind::Number), number_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(std::int64_t v) : Json(static_cast<double>(v)) {}
    Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    /** An empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Checked accessors; throw std::invalid_argument on mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t index) const;
    void push(Json value);

    /** Object access. */
    bool has(const std::string &key) const;
    const Json &at(const std::string &key) const;
    void set(const std::string &key, Json value);
    const std::map<std::string, Json> &items() const;

    /** Typed object lookups with defaults for absent keys. */
    bool getBool(const std::string &key, bool fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Serialize; indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 2) const;

    /**
     * Stable 64-bit content hash (FNV-1a over the canonical dump).
     * Keys are sorted, so two values that compare equal hash equal
     * regardless of construction order; used by the sweep engine's
     * per-point config memoization.
     */
    std::uint64_t hash() const;

    /** Parse a complete JSON document; throws on syntax errors. */
    static Json parse(const std::string &text);

    /** File helpers (throw std::invalid_argument on I/O failure). */
    static Json loadFile(const std::string &path);
    void saveFile(const std::string &path, int indent = 2) const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

} // namespace qc

#endif // QC_API_JSON_HH
