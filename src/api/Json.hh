/**
 * @file
 * Minimal JSON value type for the experiment API: enough to
 * round-trip ExperimentConfig and serialize Result for the BENCH_*
 * trajectory files, with no external dependency.
 *
 * Objects keep their keys sorted (std::map), so serialization is
 * deterministic and diff-friendly. Numbers are stored as double;
 * integral values within the exact double range print without a
 * decimal point, so Time (int64 nanoseconds) fields survive a
 * round-trip bit-exactly for any simulated time under ~104 days.
 *
 * Errors (syntax errors on parse, kind mismatches on access) throw
 * std::invalid_argument: the API layer reports user-input problems
 * as catchable exceptions rather than aborting, unlike the panic()
 * convention of the inner simulation layers.
 *
 * The parser is the trust boundary for every file the process does
 * not control (resume documents, serve protocol files, hoard
 * objects, sweep specs), so it enforces two hard resource bounds:
 * documents larger than kMaxDocumentBytes and nesting deeper than
 * kMaxParseDepth are parse errors, never allocations or stack
 * frames. Untrusted-input callers that must not throw use the
 * find()/asIndex() accessors instead of at()/asInt().
 */

#ifndef QC_API_JSON_HH
#define QC_API_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qc {

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double v) : kind_(Kind::Number), number_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(std::int64_t v) : Json(static_cast<double>(v)) {}
    Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    /** An empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Checked accessors; throw std::invalid_argument on mismatch.
     *  asInt additionally throws when the number is NaN or outside
     *  the int64 range — the cast would otherwise be undefined
     *  behavior on hostile input like 1e300. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const;

    /**
     * Non-throwing index accessor for untrusted documents: true
     * iff this is a number that is finite, integral, non-negative
     * and at most 2^53 - 1 (exactly representable), writing it to
     * `out`. Protocol code uses this for array indices so a
     * hostile "index": 1e300 reads as malformed, not as UB.
     */
    bool asIndex(std::size_t &out) const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t index) const;
    void push(Json value);

    /** Object access. */
    bool has(const std::string &key) const;
    const Json &at(const std::string &key) const;
    void set(const std::string &key, Json value);
    const std::map<std::string, Json> &items() const;

    /**
     * Bounds-checked lookups for untrusted documents: nullptr when
     * this is not an object/array or the key/index is absent,
     * never a throw. The parse surfaces on the serve commit and
     * hoard fetch paths must use these (enforced by qclint's
     * parse-robustness rule) so a malformed file reads as a clean
     * rejection instead of an exception mid-merge.
     */
    const Json *find(const std::string &key) const;
    const Json *find(std::size_t index) const;

    /** Typed object lookups with defaults for absent keys. */
    bool getBool(const std::string &key, bool fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Serialize; indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 2) const;

    /**
     * Stable 64-bit content hash (FNV-1a over the canonical dump).
     * Keys are sorted, so two values that compare equal hash equal
     * regardless of construction order; used by the sweep engine's
     * per-point config memoization.
     */
    std::uint64_t hash() const;

    /**
     * Hard input bounds, enforced by parse(). Deeper nesting or a
     * larger document is a parse error (std::invalid_argument
     * naming the limit) — never a stack overflow or an unbounded
     * allocation. Real configs/results nest a handful of levels
     * and the largest aggregated sweep documents are a few MB;
     * both limits carry order-of-magnitude headroom.
     */
    static constexpr int kMaxParseDepth = 256;
    static constexpr std::size_t kMaxDocumentBytes =
        std::size_t(64) << 20; // 64 MiB

    /** Parse a complete JSON document; throws on syntax errors. */
    static Json parse(const std::string &text);

    /** File helpers (throw std::invalid_argument on I/O failure). */
    static Json loadFile(const std::string &path);
    void saveFile(const std::string &path, int indent = 2) const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

} // namespace qc

#endif // QC_API_JSON_HH
