/**
 * @file
 * The unified experiment facade: one configuration object, one
 * runner, one structured result for the paper's whole pipeline —
 * pick a workload, lower it, run it under a schedule/architecture
 * model, and report latency, ancilla demand, factory utilization
 * and throughput.
 *
 * Everything the benches, examples and sweep studies previously
 * wired by hand is one call here:
 *
 *     qc::ExperimentConfig config;
 *     config.workload = "qcla";
 *     config.schedule = qc::ScheduleMode::Arch;
 *     config.arch = "fma";
 *     qc::Result result = qc::runExperiment(config);
 *     std::cout << result.toJson().dump();
 *
 * Configs load/save as JSON, and Result serializes to JSON for the
 * BENCH_* trajectory files. Input errors (unknown workload/arch
 * names, malformed JSON, unsupported code level) throw
 * std::invalid_argument.
 */

#ifndef QC_API_EXPERIMENT_HH
#define QC_API_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/ArchModel.hh"
#include "api/Json.hh"
#include "api/Workload.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "factory/Allocation.hh"

namespace qc {

/** How the experiment schedules the lowered dataflow graph. */
enum class ScheduleMode
{
    /**
     * Figure 1b's ideal: all ancilla preparation off the critical
     * path; the makespan is the speed-of-data runtime.
     */
    SpeedOfData,

    /**
     * Steady rate-limited ancilla supply (Figure 8). Rates come
     * from zeroPerMs/pi8PerMs, or from the sized factory
     * allocation when those are zero.
     */
    Throttled,

    /**
     * Full microarchitecture simulation (Figure 15) under the
     * ArchModel named by `arch`.
     */
    Arch,
};

/** Round-trippable display name ("speed-of-data", ...). */
std::string scheduleModeName(ScheduleMode mode);

/** Inverse of scheduleModeName; throws on unknown names. */
ScheduleMode scheduleModeFromName(const std::string &name);

/**
 * Everything one experiment needs, JSON-round-trippable. Defaults
 * reproduce the paper's baseline: 32-bit workloads on the level-1
 * [[7,1,3]] code at the Table 1/4 technology point.
 */
struct ExperimentConfig
{
    /** Workload registry name ("qrca", "qcla", "qft", ...). */
    std::string workload = "qrca";

    /** Workload construction knobs (bits, lowering, qft). */
    WorkloadParams params{};

    /** Rotation-word search knobs (Section 2.5). */
    FowlerSynth::Options synth{};

    /**
     * Error-correction code recursion level: 1 is the paper's
     * [[7,1,3]] Steane baseline, 2 re-encodes every logical qubit
     * as seven level-1 blocks (recursive durations, error rates and
     * cascade factories from codes/ConcatenatedCode.hh,
     * error/RecursiveError.hh and factory/ConcatenatedFactory.hh).
     * Levels outside [1, ConcatenatedSteane::maxModeledLevel] are
     * rejected at run time with std::invalid_argument so configs
     * stay honest about what is modeled.
     */
    int codeLevel = 1;

    /** Physical operation latencies in ns (Tables 1 and 4). */
    IonTrapParams tech = IonTrapParams::paper();

    /** Physical error rates (Section 2.2); recorded in results. */
    ErrorParams errors = ErrorParams::paper();

    /**
     * Monte Carlo factory calibration: when true, the zero-factory
     * designs behind the Table 9 allocation, the throttled-mode
     * default supply rate and the utilization yardsticks are sized
     * from the verification acceptance *measured* at `errors` by
     * the batched Pauli-frame engine (ZeroFactory::calibrated, with
     * movement charges calibrated from the routed Fig 11 layout)
     * instead of the hard-coded Table 6 constant. At codeLevel 2
     * the recursive analysis calibrates both level acceptances.
     * Off by default: the paper's constants keep results
     * bit-reproducible without a Monte Carlo pass.
     */
    bool calibrateFactories = false;

    /** Trials for the calibration pass (per level). */
    std::uint64_t calibrationTrials = 1 << 20;

    /** Schedule mode (see ScheduleMode). */
    ScheduleMode schedule = ScheduleMode::SpeedOfData;

    // --- Arch mode -------------------------------------------------
    /** ArchRegistry key ("qla", "gqla", "cqla", "gcqla", "fma"). */
    std::string arch = "fma";

    /** (G)QLA / (G)CQLA: parallel generators per site. */
    int generatorsPerSite = 1;

    /** (G)CQLA: compute-cache capacity in logical qubits. */
    int cacheSlots = 24;

    /** FullyMultiplexed: total factory area budget (macroblocks). */
    Area areaBudget = 3000;

    /** Teleport latency override in ns; 0 derives from the
     *  effective technology point at codeLevel. */
    Time teleport = 0;

    // --- Throttled mode --------------------------------------------
    /** Encoded-zero supply rate (ancillae per ms); 0 = use the
     *  sized allocation's provisioned rate. */
    BandwidthPerMs zeroPerMs = 0;

    /** Encoded-pi/8 supply rate (ancillae per ms); 0 =
     *  unconstrained. */
    BandwidthPerMs pi8PerMs = 0;

    /**
     * Throttled-run budget in ns: cut the simulation off at this
     * time and report a partial result. 0 = run to completion.
     */
    Time timeLimit = 0;

    // --- Reporting -------------------------------------------------
    /** Bins in the Figure 7 ancilla-demand profile. */
    int demandBins = 40;

    /** MicroarchConfig equivalent (for the arch-mode run). */
    MicroarchConfig microarchConfig() const;

    /** Paper-parity baseline for one workload (BenchCommon's old
     *  hand-wired synthesis options, 32 bits). */
    static ExperimentConfig paper(const std::string &workload);

    /** JSON round-trip; missing keys keep their defaults. */
    static ExperimentConfig fromJson(const Json &json);
    Json toJson() const;

    /**
     * Stable 64-bit configuration hash (Json::hash of toJson), the
     * key of the sweep engine's per-point memoization cache: two
     * configs that run identically hash identically.
     */
    std::uint64_t hash() const;

    /**
     * Canonical identity of the *workload* part of the config
     * (workload name, construction params, synthesis knobs) — the
     * fields Experiment::run(variant) requires to match. Configs
     * with equal workloadKey() can share one built Workload; the
     * sweep engine's cross-point workload cache keys on it.
     */
    std::string workloadKey() const;

    /** File convenience wrappers. */
    static ExperimentConfig load(const std::string &path);
    void save(const std::string &path) const;
};

/**
 * Version of the Result / sweep-document JSON payload. History:
 * 1 was the original facade shape (PR 2); 2 added the gated
 * level-2 keys (code_level, inter-level factory fields — present
 * only on concatenated runs, so level-1 payloads stayed stable)
 * and made the version explicit as "schema_version". Consumers
 * should treat missing "schema_version" as 1.
 */
inline constexpr int kResultSchemaVersion = 2;

/**
 * Structured outcome of one experiment: the Table 2/3 analytics,
 * the Figure 7 demand profile, the Table 9 factory sizing, and the
 * makespan under the configured schedule.
 */
struct Result
{
    std::string workload;  ///< display name
    std::string schedule;  ///< schedule mode name
    std::string arch;      ///< arch model name (Arch mode only)
    int codeLevel = 1;     ///< code recursion level of the run

    // --- Circuit shape ---------------------------------------------
    int qubits = 0;              ///< logical qubit count
    std::uint64_t gates = 0;     ///< fault-tolerant gate count
    std::uint64_t pi8Gates = 0;  ///< non-transversal (T/Tdg) count

    // --- Speed-of-data analytics (always computed) -----------------
    LatencySplit split;            ///< Table 2 latency split (ns)
    BandwidthSummary bandwidth;    ///< Table 3 demand (per ms)
    std::vector<double> demandProfile; ///< Figure 7 envelope
                                       ///< (avg ancillae per bin)

    // --- Factory provisioning (Table 9 sizing, integral units) ----
    FactoryAllocation allocation; ///< counts + areas (macroblocks)
    double zeroUtilization = 0; ///< achieved / provisioned zero BW
    double pi8Utilization = 0;  ///< achieved / provisioned pi/8 BW

    // --- Scheduled outcome -----------------------------------------
    Time makespan = 0;         ///< ns under the configured schedule
    bool completed = true;     ///< false if timeLimit cut it off
    std::uint64_t gatesExecuted = 0; ///< retired (< gates if cut)
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;
    ArchRunResult archRun;     ///< populated in Arch mode

    /**
     * Logical throughput in KLOPS — thousands of fault-tolerant
     * logical operations per second at the achieved makespan.
     */
    double klops() const;

    /** Slowdown versus the speed-of-data ideal (>= 1). */
    double slowdown() const;

    Json toJson() const;

    /**
     * Compact flat aggregation of the headline metrics (makespan,
     * KLOPS, slowdown, bandwidth, factory area, arch counters when
     * present) for sweep points and trajectory files, where the
     * full nested toJson() per point would drown the signal.
     */
    Json summaryJson() const;
};

/**
 * An immutable workload bundle shared across many experiments: the
 * built workload plus the dependency DAG over its lowered circuit.
 * The graph references the workload's circuit in place;
 * makeSharedWorkload therefore builds `graph` as an aliasing
 * pointer that co-owns the workload, so retaining either pointer
 * keeps everything it references alive. Build one with
 * makeSharedWorkload or through the sweep engine's cross-point
 * cache (SweepContext::workload). Everything here is const —
 * concurrent experiments may read it freely.
 */
struct SharedWorkload
{
    std::shared_ptr<const Workload> workload;
    /** DataflowGraph over workload->lowered.circuit. */
    std::shared_ptr<const DataflowGraph> graph;
};

/** Bundle an already-built workload with its dataflow graph. */
SharedWorkload makeSharedWorkload(Workload workload);

/**
 * Builds the workload once (with its synthesis cache) and runs one
 * or more schedule variants against it.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig config);

    /**
     * Adopt an already-built workload (e.g. one shared across many
     * experiments by a bench). The config's workload fields are
     * assumed to describe it; no rebuild happens.
     */
    Experiment(ExperimentConfig config, Workload workload);

    /**
     * Share an already-built workload without copying it (the
     * sweep engine's cross-point cache hands the same instance to
     * many concurrent points). The workload must outlive the
     * experiment and is never mutated.
     */
    Experiment(ExperimentConfig config,
               std::shared_ptr<const Workload> workload);

    /**
     * Const-shared-workload mode: share both the workload and its
     * dataflow graph, so the experiment performs *no* per-point
     * synthesis, copy or graph construction at all — the mode large
     * sweeps run in (every point of a Table 5-8-scale grid reuses
     * one immutable bundle). shared.graph must be the DAG over
     * shared.workload->lowered.circuit (makeSharedWorkload
     * guarantees this). Results are bit-identical to the other
     * construction modes.
     */
    Experiment(ExperimentConfig config, SharedWorkload shared);

    /**
     * Non-copyable/movable: the cached DataflowGraph references the
     * cached workload's circuit in place.
     */
    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    const ExperimentConfig &config() const { return config_; }

    /** The constructed workload (built lazily, cached). */
    const Workload &workload();

    /** Run with the stored configuration. */
    Result run();

    /**
     * Run a variant configuration against the cached workload. The
     * variant must describe the same workload (name, params and
     * synthesis knobs are checked; throws std::invalid_argument on
     * mismatch) — schedule/arch/factory fields may differ freely.
     */
    Result run(const ExperimentConfig &variant);

  private:
    /**
     * The speed-of-data analytics depend only on the cached
     * workload, the technology point and the bin count, so variant
     * sweeps (e.g. the Figure 15 bench's ~20 arch points per
     * workload) reuse them instead of re-walking the circuit.
     */
    struct Analytics
    {
        IonTrapParams tech;
        int codeLevel = 1;
        bool calibrated = false;
        std::uint64_t calibrationTrials = 0;
        ErrorParams errors;
        int demandBins = 0;
        LatencySplit split;
        BandwidthSummary bandwidth;
        std::vector<double> demandProfile;
        FactoryAllocation allocation;
        /** Delivered bandwidth of one provisioned zero / pi/8
         *  factory at this level (per ms), for the throttled-mode
         *  default supply and the utilization yardsticks. */
        BandwidthPerMs zeroUnitThroughput = 0;
        BandwidthPerMs pi8UnitThroughput = 0;
    };

    const Analytics &analytics(const ExperimentConfig &variant);

    /** The dependency DAG: the shared one when provided, else
     *  built lazily over the cached workload's circuit. */
    const DataflowGraph &graph();

    ExperimentConfig config_;
    std::optional<FowlerSynth> synth_;
    std::optional<Workload> workload_;
    std::shared_ptr<const Workload> shared_; ///< takes precedence
    std::shared_ptr<const DataflowGraph> sharedGraph_;
    std::optional<DataflowGraph> graph_;
    std::optional<Analytics> analytics_;
};

/** One-shot convenience: build, run, discard the workload cache. */
Result runExperiment(const ExperimentConfig &config);

} // namespace qc

#endif // QC_API_EXPERIMENT_HH
