/**
 * @file
 * The unified experiment facade: one configuration object, one
 * runner, one structured result for the paper's whole pipeline —
 * pick a workload, lower it, run it under a schedule/architecture
 * model, and report latency, ancilla demand, factory utilization
 * and throughput.
 *
 * Everything the benches, examples and sweep studies previously
 * wired by hand is one call here:
 *
 *     qc::ExperimentConfig config;
 *     config.workload = "qcla";
 *     config.schedule = qc::ScheduleMode::Arch;
 *     config.arch = "fma";
 *     qc::Result result = qc::runExperiment(config);
 *     std::cout << result.toJson().dump();
 *
 * Configs load/save as JSON, and Result serializes to JSON for the
 * BENCH_* trajectory files. Input errors (unknown workload/arch
 * names, malformed JSON, unsupported code level) throw
 * std::invalid_argument.
 */

#ifndef QC_API_EXPERIMENT_HH
#define QC_API_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "api/ArchModel.hh"
#include "api/Json.hh"
#include "api/Workload.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "factory/Allocation.hh"

namespace qc {

/** How the experiment schedules the lowered dataflow graph. */
enum class ScheduleMode
{
    /**
     * Figure 1b's ideal: all ancilla preparation off the critical
     * path; the makespan is the speed-of-data runtime.
     */
    SpeedOfData,

    /**
     * Steady rate-limited ancilla supply (Figure 8). Rates come
     * from zeroPerMs/pi8PerMs, or from the sized factory
     * allocation when those are zero.
     */
    Throttled,

    /**
     * Full microarchitecture simulation (Figure 15) under the
     * ArchModel named by `arch`.
     */
    Arch,
};

/** Round-trippable display name ("speed-of-data", ...). */
std::string scheduleModeName(ScheduleMode mode);

/** Inverse of scheduleModeName; throws on unknown names. */
ScheduleMode scheduleModeFromName(const std::string &name);

/**
 * Everything one experiment needs, JSON-round-trippable. Defaults
 * reproduce the paper's baseline: 32-bit workloads on the level-1
 * [[7,1,3]] code at the Table 1/4 technology point.
 */
struct ExperimentConfig
{
    /** Workload registry name ("qrca", "qcla", "qft", ...). */
    std::string workload = "qrca";

    /** Workload construction knobs (bits, lowering, qft). */
    WorkloadParams params{};

    /** Rotation-word search knobs (Section 2.5). */
    FowlerSynth::Options synth{};

    /**
     * Error-correction code recursion level. The models cover the
     * paper's level-1 [[7,1,3]] Steane code only; any other value
     * is rejected at run time so configs stay honest when higher
     * levels land.
     */
    int codeLevel = 1;

    /** Physical operation latencies (Tables 1 and 4). */
    IonTrapParams tech = IonTrapParams::paper();

    /** Physical error rates (Section 2.2); recorded in results. */
    ErrorParams errors = ErrorParams::paper();

    /** Schedule mode (see ScheduleMode). */
    ScheduleMode schedule = ScheduleMode::SpeedOfData;

    // --- Arch mode -------------------------------------------------
    /** ArchRegistry key ("qla", "gqla", "cqla", "gcqla", "fma"). */
    std::string arch = "fma";

    /** (G)QLA / (G)CQLA: parallel generators per site. */
    int generatorsPerSite = 1;

    /** (G)CQLA: compute-cache capacity in logical qubits. */
    int cacheSlots = 24;

    /** FullyMultiplexed: total factory area budget (macroblocks). */
    Area areaBudget = 3000;

    /** Teleport latency override; 0 derives from tech. */
    Time teleport = 0;

    // --- Throttled mode --------------------------------------------
    /** Encoded-zero supply rate; 0 = use the sized allocation. */
    BandwidthPerMs zeroPerMs = 0;

    /** Encoded-pi/8 supply rate; 0 = unconstrained. */
    BandwidthPerMs pi8PerMs = 0;

    /**
     * Throttled-run budget: cut the simulation off at this time
     * and report a partial result. 0 = run to completion.
     */
    Time timeLimit = 0;

    // --- Reporting -------------------------------------------------
    /** Bins in the Figure 7 ancilla-demand profile. */
    int demandBins = 40;

    /** MicroarchConfig equivalent (for the arch-mode run). */
    MicroarchConfig microarchConfig() const;

    /** Paper-parity baseline for one workload (BenchCommon's old
     *  hand-wired synthesis options, 32 bits). */
    static ExperimentConfig paper(const std::string &workload);

    /** JSON round-trip; missing keys keep their defaults. */
    static ExperimentConfig fromJson(const Json &json);
    Json toJson() const;

    /** File convenience wrappers. */
    static ExperimentConfig load(const std::string &path);
    void save(const std::string &path) const;
};

/**
 * Structured outcome of one experiment: the Table 2/3 analytics,
 * the Figure 7 demand profile, the Table 9 factory sizing, and the
 * makespan under the configured schedule.
 */
struct Result
{
    std::string workload;  ///< display name
    std::string schedule;  ///< schedule mode name
    std::string arch;      ///< arch model name (Arch mode only)

    // --- Circuit shape ---------------------------------------------
    int qubits = 0;
    std::uint64_t gates = 0;     ///< fault-tolerant gate count
    std::uint64_t pi8Gates = 0;  ///< non-transversal (T/Tdg) count

    // --- Speed-of-data analytics (always computed) -----------------
    LatencySplit split;            ///< Table 2 latency split
    BandwidthSummary bandwidth;    ///< Table 3 demand
    std::vector<double> demandProfile; ///< Figure 7 envelope

    // --- Factory provisioning (Table 9 sizing, integral units) ----
    FactoryAllocation allocation;
    double zeroUtilization = 0; ///< achieved / provisioned zero BW
    double pi8Utilization = 0;  ///< achieved / provisioned pi/8 BW

    // --- Scheduled outcome -----------------------------------------
    Time makespan = 0;
    bool completed = true;     ///< false if timeLimit cut it off
    std::uint64_t gatesExecuted = 0; ///< retired (< gates if cut)
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;
    ArchRunResult archRun;     ///< populated in Arch mode

    /**
     * Logical throughput in KLOPS — thousands of fault-tolerant
     * logical operations per second at the achieved makespan.
     */
    double klops() const;

    /** Slowdown versus the speed-of-data ideal (>= 1). */
    double slowdown() const;

    Json toJson() const;
};

/**
 * Builds the workload once (with its synthesis cache) and runs one
 * or more schedule variants against it.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig config);

    /**
     * Adopt an already-built workload (e.g. one shared across many
     * experiments by a bench). The config's workload fields are
     * assumed to describe it; no rebuild happens.
     */
    Experiment(ExperimentConfig config, Workload workload);

    /**
     * Non-copyable/movable: the cached DataflowGraph references the
     * cached workload's circuit in place.
     */
    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    const ExperimentConfig &config() const { return config_; }

    /** The constructed workload (built lazily, cached). */
    const Workload &workload();

    /** Run with the stored configuration. */
    Result run();

    /**
     * Run a variant configuration against the cached workload. The
     * variant must describe the same workload (name, params and
     * synthesis knobs are checked; throws std::invalid_argument on
     * mismatch) — schedule/arch/factory fields may differ freely.
     */
    Result run(const ExperimentConfig &variant);

  private:
    /**
     * The speed-of-data analytics depend only on the cached
     * workload, the technology point and the bin count, so variant
     * sweeps (e.g. the Figure 15 bench's ~20 arch points per
     * workload) reuse them instead of re-walking the circuit.
     */
    struct Analytics
    {
        IonTrapParams tech;
        int demandBins = 0;
        LatencySplit split;
        BandwidthSummary bandwidth;
        std::vector<double> demandProfile;
        FactoryAllocation allocation;
    };

    const Analytics &analytics(const ExperimentConfig &variant);

    ExperimentConfig config_;
    std::optional<FowlerSynth> synth_;
    std::optional<Workload> workload_;
    std::optional<DataflowGraph> graph_;
    std::optional<Analytics> analytics_;
};

/** One-shot convenience: build, run, discard the workload cache. */
Result runExperiment(const ExperimentConfig &config);

} // namespace qc

#endif // QC_API_EXPERIMENT_HH
