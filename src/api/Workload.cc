#include "api/Workload.hh"

#include <stdexcept>

namespace qc {

namespace {

[[noreturn]] void
unknownName(const std::string &name,
            const std::vector<std::string> &known)
{
    std::string message = "unknown workload \"" + name
        + "\"; registered workloads:";
    for (const std::string &k : known)
        message += " " + k;
    throw std::invalid_argument(message);
}

} // namespace

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry = [] {
        WorkloadRegistry r;
        registerKernelWorkloads(r);
        return r;
    }();
    return registry;
}

void
WorkloadRegistry::add(const std::string &name,
                      const std::string &description,
                      WorkloadBuilder builder)
{
    entries_[name] = Entry{description, std::move(builder)};
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return entries_.count(name) > 0;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

const WorkloadRegistry::Entry &
WorkloadRegistry::lookup(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        unknownName(name, names());
    return it->second;
}

const std::string &
WorkloadRegistry::description(const std::string &name) const
{
    return lookup(name).description;
}

Workload
WorkloadRegistry::build(const std::string &name, FowlerSynth &synth,
                        const WorkloadParams &params) const
{
    Workload workload = lookup(name).builder(synth, params);
    workload.key = name;
    return workload;
}

} // namespace qc
