#include "api/ArchModel.hh"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "sim/Simulator.hh"

namespace qc {

ArchRunResult
ArchModel::run(const DataflowGraph &graph,
               const EncodedOpModel &model,
               const MicroarchConfig &config) const
{
    const auto &gates = graph.circuit().gates();
    const auto n = static_cast<NodeId>(graph.numNodes());

    Simulator sim;
    const std::unique_ptr<ArchExecution> exec =
        prepare(graph, model, config);

    std::vector<int> missing(n, 0);
    for (NodeId i = 0; i < n; ++i)
        missing[i] = static_cast<int>(graph.preds(i).size());

    std::function<void(NodeId)> launch = [&](NodeId node) {
        const Gate &g = gates[node];
        // Movement/cache bookkeeping first: it determines the QEC
        // site whose bank the ancilla claim goes to.
        const Time overhead = exec->moveOverhead(g);
        exec->result.zerosConsumed +=
            static_cast<std::uint64_t>(model.zeroAncillae(g));
        exec->result.pi8Consumed +=
            static_cast<std::uint64_t>(model.pi8Ancillae(g));
        const Time start =
            std::max(sim.now(), exec->ancillaReady(g, sim.now()));
        Time latency = overhead + model.dataLatency(g);
        if (model.needsQec(g.kind))
            latency += model.qecInteractLatency();
        sim.schedule(start + latency, [&, node]() {
            exec->result.makespan =
                std::max(exec->result.makespan, sim.now());
            for (NodeId succ : graph.succs(node)) {
                if (--missing[succ] == 0)
                    launch(succ);
            }
        });
    };

    for (NodeId root : graph.roots())
        sim.schedule(0, [&, root]() { launch(root); });

    sim.run();
    return exec->result;
}

ArchRegistry &
ArchRegistry::instance()
{
    static ArchRegistry registry = [] {
        ArchRegistry r;
        registerBuiltinArchModels(r);
        return r;
    }();
    return registry;
}

void
ArchRegistry::add(const std::string &key,
                  std::shared_ptr<const ArchModel> model)
{
    models_[key] = std::move(model);
}

bool
ArchRegistry::contains(const std::string &key) const
{
    return models_.count(key) > 0;
}

std::vector<std::string>
ArchRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto &[key, model] : models_)
        out.push_back(key);
    return out;
}

const ArchModel &
ArchRegistry::get(const std::string &key) const
{
    const auto it = models_.find(key);
    if (it == models_.end()) {
        std::string message = "unknown architecture \"" + key
            + "\"; registered architectures:";
        for (const std::string &k : keys())
            message += " " + k;
        throw std::invalid_argument(message);
    }
    return *it->second;
}

} // namespace qc
