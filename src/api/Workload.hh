/**
 * @file
 * Named, parameterized benchmark workloads (the experiment API's
 * front door to kernels/): a string-keyed registry of circuit
 * builders covering the paper's kernels (Section 3.1's adders and
 * QFT) plus synthetic generators for scaling studies.
 *
 * Builders produce the circuit at the benchmark gate level and
 * lowered to the fault-tolerant [[7,1,3]] gate set in one step, so
 * every consumer — benches, examples, qc::Experiment — shares one
 * construction path instead of wiring makeQrca/lowerToFaultTolerant
 * by hand.
 *
 * Unknown names throw std::invalid_argument listing the registered
 * names (catchable; the API layer does not abort on user input).
 */

#ifndef QC_API_WORKLOAD_HH
#define QC_API_WORKLOAD_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kernels/Lower.hh"
#include "kernels/Qft.hh"
#include "synth/Fowler.hh"

namespace qc {

/** Construction knobs shared by all workload builders. */
struct WorkloadParams
{
    /** Operand width in bits / logical qubit count (paper: 32). */
    int bits = 32;

    /** Lowering knobs (rotation cutoff index k for pi/2^k). */
    LoweringOptions lowering{};

    /** QFT-specific generation knobs. */
    QftOptions qft{};
};

/** A fully-constructed workload: benchmark-level and lowered. */
struct Workload
{
    std::string key;    ///< registry name it was built from
    std::string name;   ///< display name (paper-table style)
    Circuit highLevel;  ///< over {Toffoli, CRotZ, ...}
    Lowered lowered;    ///< fault-tolerant gate set
};

/** Builds one workload from shared synthesis state and params. */
using WorkloadBuilder =
    std::function<Workload(FowlerSynth &, const WorkloadParams &)>;

/**
 * The process-wide workload registry. Kernel workloads (qrca, qcla,
 * qft, chain, ladder) self-register on first use; additional
 * workloads can be added at runtime (e.g. by a frontend loading
 * circuits from disk).
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Register (or replace) a named workload builder. */
    void add(const std::string &name, const std::string &description,
             WorkloadBuilder builder);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** One-line description; throws on unknown names. */
    const std::string &description(const std::string &name) const;

    /** Build a workload by name; throws on unknown names. */
    Workload build(const std::string &name, FowlerSynth &synth,
                   const WorkloadParams &params = {}) const;

  private:
    struct Entry
    {
        std::string description;
        WorkloadBuilder builder;
    };

    const Entry &lookup(const std::string &name) const;

    std::map<std::string, Entry> entries_;
};

/**
 * Registers the built-in kernel workloads (defined in
 * kernels/Workloads.cc; called once by WorkloadRegistry::instance).
 */
void registerKernelWorkloads(WorkloadRegistry &registry);

} // namespace qc

#endif // QC_API_WORKLOAD_HH
