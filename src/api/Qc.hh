/**
 * @file
 * Single facade header for the qalypso experiment API. Downstream
 * consumers — benches, examples, notebooks, services — include this
 * one header and get:
 *
 *  - qc::WorkloadRegistry  named, parameterized benchmark circuits
 *                          ("qrca", "qcla", "qft", "chain",
 *                          "ladder", plus runtime registrations)
 *  - qc::ArchRegistry      the five microarchitecture models as
 *                          polymorphic qc::ArchModel instances
 *                          ("qla", "gqla", "cqla", "gcqla", "fma")
 *  - qc::ExperimentConfig  one JSON-round-trippable description of
 *                          a run (workload, code level 1 or 2,
 *                          error rates, schedule mode, factory
 *                          budget, optional Monte Carlo factory
 *                          calibration)
 *  - qc::Experiment /      build once, run schedule variants, get a
 *    qc::runExperiment     structured qc::Result (latency split,
 *                          demand profile, factory utilization,
 *                          KLOPS) that serializes to JSON
 *  - qc::Json              the minimal JSON value used throughout
 *
 * Units everywhere: qc::Time is integer nanoseconds, areas are
 * macroblocks, bandwidths are items per millisecond, error rates
 * are probabilities per operation.
 *
 * The paper's headline artifacts map to one-liners; see
 * src/api/README.md for the table/figure-to-call map,
 * docs/ARCHITECTURE.md for the module tour, and docs/PAPER_MAP.md
 * for the artifact-to-bench map (level-2 analogs included).
 */

#ifndef QC_API_QC_HH
#define QC_API_QC_HH

#include "api/ArchModel.hh"
#include "api/Experiment.hh"
#include "api/Json.hh"
#include "api/Workload.hh"

#endif // QC_API_QC_HH
