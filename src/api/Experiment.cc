#include "api/Experiment.hh"

#include <cmath>
#include <stdexcept>

#include "codes/ConcatenatedCode.hh"
#include "error/RecursiveError.hh"
#include "factory/ConcatenatedFactory.hh"
#include "layout/Builders.hh"

namespace qc {

namespace {

/** Integral factory counts actually built (Table 9's ceilings). */
double
provisionedUnits(double fractional)
{
    return fractional > 0 ? std::ceil(fractional) : 0.0;
}

Json
ionTrapToJson(const IonTrapParams &tech)
{
    Json j = Json::object();
    j.set("t1q_ns", tech.t1q);
    j.set("t2q_ns", tech.t2q);
    j.set("tmeas_ns", tech.tmeas);
    j.set("tprep_ns", tech.tprep);
    j.set("tmove_ns", tech.tmove);
    j.set("tturn_ns", tech.tturn);
    return j;
}

IonTrapParams
ionTrapFromJson(const Json &j)
{
    IonTrapParams tech;
    tech.t1q = j.getInt("t1q_ns", tech.t1q);
    tech.t2q = j.getInt("t2q_ns", tech.t2q);
    tech.tmeas = j.getInt("tmeas_ns", tech.tmeas);
    tech.tprep = j.getInt("tprep_ns", tech.tprep);
    tech.tmove = j.getInt("tmove_ns", tech.tmove);
    tech.tturn = j.getInt("tturn_ns", tech.tturn);
    return tech;
}

} // namespace

std::string
scheduleModeName(ScheduleMode mode)
{
    switch (mode) {
      case ScheduleMode::SpeedOfData: return "speed-of-data";
      case ScheduleMode::Throttled:   return "throttled";
      case ScheduleMode::Arch:        return "arch";
    }
    return "?";
}

ScheduleMode
scheduleModeFromName(const std::string &name)
{
    if (name == "speed-of-data")
        return ScheduleMode::SpeedOfData;
    if (name == "throttled")
        return ScheduleMode::Throttled;
    if (name == "arch")
        return ScheduleMode::Arch;
    throw std::invalid_argument(
        "unknown schedule mode \"" + name
        + "\"; expected speed-of-data, throttled, or arch");
}

MicroarchConfig
ExperimentConfig::microarchConfig() const
{
    MicroarchConfig out;
    out.tech = tech;
    out.codeLevel = codeLevel;
    out.generatorsPerSite = generatorsPerSite;
    out.cacheSlots = cacheSlots;
    out.areaBudget = areaBudget;
    out.teleport = teleport;
    return out;
}

ExperimentConfig
ExperimentConfig::paper(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.params.bits = 32;
    // Literal {H, T} rotation words, as in Fowler's search and the
    // paper's QFT derivation (Section 2.5).
    config.synth = FowlerSynth::Options{
        /*maxSyllables=*/6, /*maxError=*/1e-3, /*pureHT=*/true,
        /*tCostWeight=*/3};
    return config;
}

Json
ExperimentConfig::toJson() const
{
    Json j = Json::object();
    j.set("workload", workload);
    j.set("bits", params.bits);

    Json lowering = Json::object();
    lowering.set("maxRotK", params.lowering.maxRotK);
    j.set("lowering", lowering);

    Json qft = Json::object();
    qft.set("maxK", params.qft.maxK);
    qft.set("withSwaps", params.qft.withSwaps);
    j.set("qft", qft);

    Json synthJson = Json::object();
    synthJson.set("maxSyllables", synth.maxSyllables);
    synthJson.set("maxError", synth.maxError);
    synthJson.set("pureHT", synth.pureHT);
    synthJson.set("tCostWeight", synth.tCostWeight);
    j.set("synth", synthJson);

    j.set("codeLevel", codeLevel);
    j.set("calibrateFactories", calibrateFactories);
    j.set("calibrationTrials",
          static_cast<std::int64_t>(calibrationTrials));
    j.set("tech", ionTrapToJson(tech));

    Json errorsJson = Json::object();
    errorsJson.set("pGate", errors.pGate);
    errorsJson.set("pMove", errors.pMove);
    j.set("errors", errorsJson);

    j.set("schedule", scheduleModeName(schedule));
    j.set("arch", arch);
    j.set("generatorsPerSite", generatorsPerSite);
    j.set("cacheSlots", cacheSlots);
    j.set("areaBudget", areaBudget);
    j.set("teleport_ns", teleport);
    j.set("zeroPerMs", zeroPerMs);
    j.set("pi8PerMs", pi8PerMs);
    j.set("timeLimit_ns", timeLimit);
    j.set("demandBins", demandBins);
    return j;
}

ExperimentConfig
ExperimentConfig::fromJson(const Json &j)
{
    ExperimentConfig config;
    config.workload = j.getString("workload", config.workload);
    config.params.bits = static_cast<int>(
        j.getInt("bits", config.params.bits));
    if (j.has("lowering")) {
        config.params.lowering.maxRotK = static_cast<int>(
            j.at("lowering").getInt(
                "maxRotK", config.params.lowering.maxRotK));
    }
    if (j.has("qft")) {
        const Json &qft = j.at("qft");
        config.params.qft.maxK = static_cast<int>(
            qft.getInt("maxK", config.params.qft.maxK));
        config.params.qft.withSwaps =
            qft.getBool("withSwaps", config.params.qft.withSwaps);
    }
    if (j.has("synth")) {
        const Json &synth = j.at("synth");
        config.synth.maxSyllables = static_cast<int>(synth.getInt(
            "maxSyllables", config.synth.maxSyllables));
        config.synth.maxError =
            synth.getDouble("maxError", config.synth.maxError);
        config.synth.pureHT =
            synth.getBool("pureHT", config.synth.pureHT);
        config.synth.tCostWeight = static_cast<int>(synth.getInt(
            "tCostWeight", config.synth.tCostWeight));
    }
    config.codeLevel = static_cast<int>(
        j.getInt("codeLevel", config.codeLevel));
    config.calibrateFactories = j.getBool(
        "calibrateFactories", config.calibrateFactories);
    config.calibrationTrials =
        static_cast<std::uint64_t>(j.getInt(
            "calibrationTrials",
            static_cast<std::int64_t>(config.calibrationTrials)));
    if (j.has("tech"))
        config.tech = ionTrapFromJson(j.at("tech"));
    if (j.has("errors")) {
        const Json &errors = j.at("errors");
        config.errors.pGate =
            errors.getDouble("pGate", config.errors.pGate);
        config.errors.pMove =
            errors.getDouble("pMove", config.errors.pMove);
    }
    config.schedule = scheduleModeFromName(j.getString(
        "schedule", scheduleModeName(config.schedule)));
    config.arch = j.getString("arch", config.arch);
    config.generatorsPerSite = static_cast<int>(
        j.getInt("generatorsPerSite", config.generatorsPerSite));
    config.cacheSlots = static_cast<int>(
        j.getInt("cacheSlots", config.cacheSlots));
    config.areaBudget =
        j.getDouble("areaBudget", config.areaBudget);
    config.teleport = j.getInt("teleport_ns", config.teleport);
    config.zeroPerMs = j.getDouble("zeroPerMs", config.zeroPerMs);
    config.pi8PerMs = j.getDouble("pi8PerMs", config.pi8PerMs);
    config.timeLimit = j.getInt("timeLimit_ns", config.timeLimit);
    config.demandBins = static_cast<int>(
        j.getInt("demandBins", config.demandBins));
    return config;
}

std::uint64_t
ExperimentConfig::hash() const
{
    return toJson().hash();
}

std::string
ExperimentConfig::workloadKey() const
{
    // Exactly the fields Experiment::run(variant) checks: configs
    // differing only elsewhere may share one built workload.
    Json j = Json::object();
    j.set("workload", workload);
    j.set("bits", params.bits);
    j.set("maxRotK", params.lowering.maxRotK);
    j.set("qftMaxK", params.qft.maxK);
    j.set("qftWithSwaps", params.qft.withSwaps);
    j.set("maxSyllables", synth.maxSyllables);
    j.set("maxError", synth.maxError);
    j.set("pureHT", synth.pureHT);
    j.set("tCostWeight", synth.tCostWeight);
    return j.dump(0);
}

ExperimentConfig
ExperimentConfig::load(const std::string &path)
{
    return fromJson(Json::loadFile(path));
}

void
ExperimentConfig::save(const std::string &path) const
{
    toJson().saveFile(path);
}

double
Result::klops() const
{
    if (makespan <= 0)
        return 0;
    const double seconds =
        static_cast<double>(makespan) / (1e3 * nsPerMs);
    return static_cast<double>(gatesExecuted) / seconds / 1e3;
}

double
Result::slowdown() const
{
    if (bandwidth.runtime <= 0)
        return 1.0;
    return static_cast<double>(makespan)
        / static_cast<double>(bandwidth.runtime);
}

Json
Result::toJson() const
{
    Json j = Json::object();
    j.set("schema_version", kResultSchemaVersion);
    j.set("workload", workload);
    j.set("schedule", schedule);
    if (!arch.empty())
        j.set("arch", arch);
    // Level-1 serialization predates the level knob and stays
    // byte-identical; the key appears only for concatenated runs.
    if (codeLevel != 1)
        j.set("code_level", codeLevel);

    Json circuit = Json::object();
    circuit.set("qubits", qubits);
    circuit.set("gates", gates);
    circuit.set("pi8_gates", pi8Gates);
    j.set("circuit", circuit);

    Json splitJson = Json::object();
    splitJson.set("data_op_us", toUs(split.dataOp));
    splitJson.set("qec_interact_us", toUs(split.qecInteract));
    splitJson.set("ancilla_prep_us", toUs(split.ancillaPrep));
    splitJson.set("data_op_share", split.dataOpShare());
    splitJson.set("qec_interact_share", split.qecInteractShare());
    splitJson.set("ancilla_prep_share", split.ancillaPrepShare());
    j.set("latency_split", splitJson);

    Json bw = Json::object();
    bw.set("speed_of_data_ms", toMs(bandwidth.runtime));
    bw.set("zeros", bandwidth.zerosConsumed);
    bw.set("pi8s", bandwidth.pi8Consumed);
    bw.set("zero_per_ms", bandwidth.zeroPerMs());
    bw.set("pi8_per_ms", bandwidth.pi8PerMs());
    j.set("bandwidth", bw);

    Json profile = Json::array();
    for (double v : demandProfile)
        profile.push(v);
    j.set("demand_profile", profile);

    Json factories = Json::object();
    factories.set("zero_for_qec", allocation.zeroFactoriesForQec);
    factories.set("pi8", allocation.pi8Factories);
    factories.set("zero_for_pi8", allocation.zeroFactoriesForPi8);
    factories.set("qec_area", allocation.qecArea());
    factories.set("pi8_area", allocation.pi8Area());
    factories.set("total_area", allocation.totalArea());
    factories.set("zero_utilization", zeroUtilization);
    factories.set("pi8_utilization", pi8Utilization);
    if (allocation.codeLevel >= 2) {
        factories.set("inter_level_zero_per_ms",
                      allocation.interLevelZeroPerMs);
        factories.set("level1_feeder_factories",
                      allocation.level1FeederFactories);
    }
    j.set("factories", factories);

    Json run = Json::object();
    run.set("makespan_ms", toMs(makespan));
    run.set("completed", completed);
    run.set("gates_executed", gatesExecuted);
    run.set("zeros_consumed", zerosConsumed);
    run.set("pi8_consumed", pi8Consumed);
    run.set("klops", klops());
    run.set("slowdown", slowdown());
    j.set("run", run);

    if (schedule == scheduleModeName(ScheduleMode::Arch)) {
        Json archJson = Json::object();
        archJson.set("ancilla_area", archRun.ancillaArea);
        archJson.set("teleports", archRun.teleports);
        archJson.set("cache_accesses", archRun.cacheAccesses);
        archJson.set("cache_misses", archRun.cacheMisses);
        archJson.set("miss_rate", archRun.missRate());
        j.set("arch_run", archJson);
    }
    return j;
}

Json
Result::summaryJson() const
{
    Json j = Json::object();
    j.set("workload", workload);
    j.set("schedule", schedule);
    if (!arch.empty())
        j.set("arch", arch);
    // Same gating convention as toJson(): level-1 summaries stay
    // byte-identical to the pre-level-knob shape.
    if (codeLevel != 1)
        j.set("code_level", codeLevel);
    j.set("qubits", qubits);
    j.set("gates", gates);
    j.set("makespan_ms", toMs(makespan));
    j.set("klops", klops());
    j.set("slowdown", slowdown());
    if (!completed)
        j.set("completed", completed);
    j.set("zero_per_ms", bandwidth.zeroPerMs());
    j.set("pi8_per_ms", bandwidth.pi8PerMs());
    j.set("factory_area", allocation.totalArea());
    if (allocation.codeLevel >= 2) {
        j.set("inter_level_zero_per_ms",
              allocation.interLevelZeroPerMs);
    }
    if (schedule == scheduleModeName(ScheduleMode::Arch)) {
        j.set("ancilla_area", archRun.ancillaArea);
        if (archRun.cacheAccesses)
            j.set("miss_rate", archRun.missRate());
    }
    return j;
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config))
{
}

Experiment::Experiment(ExperimentConfig config, Workload workload)
    : config_(std::move(config)), workload_(std::move(workload))
{
}

Experiment::Experiment(ExperimentConfig config,
                       std::shared_ptr<const Workload> workload)
    : config_(std::move(config)), shared_(std::move(workload))
{
}

Experiment::Experiment(ExperimentConfig config, SharedWorkload shared)
    : config_(std::move(config)),
      shared_(std::move(shared.workload)),
      sharedGraph_(std::move(shared.graph))
{
}

namespace {

/** Owns the workload a DataflowGraph references in place, so an
 *  aliasing graph pointer keeps both alive together. */
struct GraphHolder
{
    explicit GraphHolder(std::shared_ptr<const Workload> w)
        : workload(std::move(w)), graph(workload->lowered.circuit)
    {
    }
    std::shared_ptr<const Workload> workload;
    DataflowGraph graph;
};

} // namespace

SharedWorkload
makeSharedWorkload(Workload workload)
{
    SharedWorkload out;
    out.workload =
        std::make_shared<const Workload>(std::move(workload));
    // The graph references the workload's circuit in place, so the
    // graph pointer must co-own the workload: alias into a holder
    // that keeps both alive even if only `graph` is retained.
    auto holder =
        std::make_shared<const GraphHolder>(out.workload);
    out.graph = std::shared_ptr<const DataflowGraph>(
        holder, &holder->graph);
    return out;
}

const Workload &
Experiment::workload()
{
    if (shared_)
        return *shared_;
    if (!workload_) {
        synth_.emplace(config_.synth);
        workload_ = WorkloadRegistry::instance().build(
            config_.workload, *synth_, config_.params);
    }
    return *workload_;
}

const DataflowGraph &
Experiment::graph()
{
    if (sharedGraph_)
        return *sharedGraph_;
    if (!graph_)
        graph_.emplace(workload().lowered.circuit);
    return *graph_;
}

const Experiment::Analytics &
Experiment::analytics(const ExperimentConfig &variant)
{
    const int bins = std::max(1, variant.demandBins);
    const IonTrapParams &tech = variant.tech;
    const bool fresh = !analytics_
        || analytics_->demandBins != bins
        || analytics_->codeLevel != variant.codeLevel
        || analytics_->calibrated != variant.calibrateFactories
        || (variant.calibrateFactories
            && (analytics_->calibrationTrials
                    != variant.calibrationTrials
                || analytics_->errors.pGate != variant.errors.pGate
                || analytics_->errors.pMove != variant.errors.pMove))
        || analytics_->tech.t1q != tech.t1q
        || analytics_->tech.t2q != tech.t2q
        || analytics_->tech.tmeas != tech.tmeas
        || analytics_->tech.tprep != tech.tprep
        || analytics_->tech.tmove != tech.tmove
        || analytics_->tech.tturn != tech.tturn;
    if (fresh) {
        // The encoded-op yardstick: level-1 uses the physical
        // technology point directly; level 2 prices every encoded
        // operation with the recursive effective latencies.
        const EncodedOpModel model(ConcatenatedSteane::effectiveTech(
            tech, variant.codeLevel));
        const DataflowGraph &graph = this->graph();
        Analytics out;
        out.tech = tech;
        out.codeLevel = variant.codeLevel;
        out.calibrated = variant.calibrateFactories;
        out.calibrationTrials = variant.calibrationTrials;
        out.errors = variant.errors;
        out.demandBins = bins;
        out.split = latencySplit(graph, model);
        out.bandwidth = bandwidthAtSpeedOfData(graph, model);
        out.demandProfile = ancillaDemandProfile(
            graph, model, static_cast<std::size_t>(bins));
        if (variant.codeLevel >= 2) {
            // Level-2 cascades; optionally with both verification
            // acceptances measured by the recursive Monte Carlo.
            Level2ZeroFactory zero =
                variant.calibrateFactories
                    ? Level2ZeroFactory::calibrated(
                          tech,
                          analyzeRecursiveError(
                              variant.errors,
                              calibrateMovement(buildSimpleFactory(),
                                                tech),
                              /*seed=*/1, variant.calibrationTrials,
                              variant.calibrationTrials * 4))
                    : Level2ZeroFactory(tech);
            const Level2Pi8Factory pi8(tech);
            out.allocation = allocateForBandwidthLevel2(
                zero, pi8, out.bandwidth.zeroPerMs(),
                out.bandwidth.pi8PerMs());
            out.zeroUnitThroughput = zero.throughput();
            out.pi8UnitThroughput = pi8.throughput();
        } else {
            const ZeroFactory zero =
                variant.calibrateFactories
                    ? ZeroFactory::calibrated(
                          tech, variant.errors,
                          calibrateMovement(buildSimpleFactory(),
                                            tech),
                          /*seed=*/1, variant.calibrationTrials)
                    : ZeroFactory(tech);
            const Pi8Factory pi8(tech);
            out.allocation = allocateForBandwidth(
                zero, pi8, out.bandwidth.zeroPerMs(),
                out.bandwidth.pi8PerMs());
            out.zeroUnitThroughput = zero.throughput();
            out.pi8UnitThroughput = pi8.throughput();
        }
        analytics_ = std::move(out);
    }
    return *analytics_;
}

Result
Experiment::run()
{
    return run(config_);
}

Result
Experiment::run(const ExperimentConfig &variant)
{
    ConcatenatedSteane::validateLevel(variant.codeLevel);
    if (variant.workload != config_.workload
        || variant.params.bits != config_.params.bits
        || variant.params.lowering.maxRotK
            != config_.params.lowering.maxRotK
        || variant.params.qft.maxK != config_.params.qft.maxK
        || variant.params.qft.withSwaps
            != config_.params.qft.withSwaps
        || variant.synth.maxSyllables != config_.synth.maxSyllables
        || variant.synth.maxError != config_.synth.maxError
        || variant.synth.pureHT != config_.synth.pureHT
        || variant.synth.tCostWeight != config_.synth.tCostWeight) {
        throw std::invalid_argument(
            "Experiment::run(variant): variant describes a "
            "different workload than the cached one (\""
            + variant.workload + "\" vs \"" + config_.workload
            + "\"); construct a new Experiment instead");
    }

    const Workload &w = workload();
    const EncodedOpModel model(ConcatenatedSteane::effectiveTech(
        variant.tech, variant.codeLevel));
    const DataflowGraph &graph = this->graph();

    Result result;
    result.workload = w.name;
    result.schedule = scheduleModeName(variant.schedule);
    result.codeLevel = variant.codeLevel;
    result.qubits = static_cast<int>(w.lowered.circuit.numQubits());
    const GateCensus census = w.lowered.circuit.census();
    result.gates = census.total;
    result.pi8Gates = census.nonTransversal1q();

    // The speed-of-data analytics are the common yardstick every
    // schedule mode is reported against.
    const Analytics &cached = analytics(variant);
    result.split = cached.split;
    result.bandwidth = cached.bandwidth;
    result.demandProfile = cached.demandProfile;
    result.allocation = cached.allocation;

    switch (variant.schedule) {
      case ScheduleMode::SpeedOfData:
        result.makespan = result.bandwidth.runtime;
        result.zerosConsumed = result.bandwidth.zerosConsumed;
        result.pi8Consumed = result.bandwidth.pi8Consumed;
        result.gatesExecuted = result.gates;
        break;

      case ScheduleMode::Throttled: {
        // Default supply: what the integrally provisioned QEC
        // factories actually deliver.
        const BandwidthPerMs zeroRate = variant.zeroPerMs > 0
            ? variant.zeroPerMs
            : provisionedUnits(result.allocation.zeroFactoriesForQec)
                * cached.zeroUnitThroughput;
        const ThrottledResult run =
            throttledRun(graph, model, zeroRate, variant.pi8PerMs,
                         variant.timeLimit);
        result.makespan = run.makespan;
        result.completed = run.completed;
        result.zerosConsumed = run.zerosConsumed;
        result.pi8Consumed = run.pi8Consumed;
        result.gatesExecuted = run.gatesExecuted;
        break;
      }

      case ScheduleMode::Arch: {
        const ArchModel &archModel =
            ArchRegistry::instance().get(variant.arch);
        result.arch = archModel.name();
        result.archRun = archModel.run(graph, model,
                                       variant.microarchConfig());
        result.makespan = result.archRun.makespan;
        result.zerosConsumed = result.archRun.zerosConsumed;
        result.pi8Consumed = result.archRun.pi8Consumed;
        result.gatesExecuted = result.gates;
        break;
      }
    }

    // Factory utilization: achieved consumption rate against the
    // integrally provisioned production bandwidth.
    if (result.makespan > 0) {
        const double ms = toMs(result.makespan);
        const double zeroCap =
            provisionedUnits(result.allocation.zeroFactoriesForQec)
            * cached.zeroUnitThroughput;
        const double pi8Cap =
            provisionedUnits(result.allocation.pi8Factories)
            * cached.pi8UnitThroughput;
        if (zeroCap > 0) {
            result.zeroUtilization =
                static_cast<double>(result.zerosConsumed) / ms
                / zeroCap;
        }
        if (pi8Cap > 0) {
            result.pi8Utilization =
                static_cast<double>(result.pi8Consumed) / ms
                / pi8Cap;
        }
    }
    return result;
}

Result
runExperiment(const ExperimentConfig &config)
{
    return Experiment(config).run();
}

} // namespace qc
