#include "api/Json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace qc {

namespace {

[[noreturn]] void
jsonError(const std::string &what)
{
    throw std::invalid_argument("json: " + what);
}

const char *
kindName(Json::Kind kind)
{
    switch (kind) {
      case Json::Kind::Null:   return "null";
      case Json::Kind::Bool:   return "bool";
      case Json::Kind::Number: return "number";
      case Json::Kind::String: return "string";
      case Json::Kind::Array:  return "array";
      case Json::Kind::Object: return "object";
    }
    return "?";
}

/** Largest integer magnitude exactly representable in a double. */
constexpr double exactIntLimit = 9007199254740992.0; // 2^53

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (std::isfinite(v) && v == std::floor(v)
        && std::fabs(v) < exactIntLimit) {
        out += std::to_string(static_cast<std::int64_t>(v));
        return;
    }
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null like most encoders.
        out += "null";
        return;
    }
    // std::to_chars is locale-independent by definition; an
    // ostringstream here would honor the global locale's decimal
    // separator and could emit "0,5" — invalid JSON — under e.g.
    // de_DE. %.17g-equivalent formatting keeps the bytes identical
    // to the previous precision(17) stream under the C locale
    // (round-trip exact for every double).
    char buf[32];
    const std::to_chars_result r = std::to_chars(
        buf, buf + sizeof buf, v, std::chars_format::general, 17);
    out.append(buf, r.ptr);
}

/** Recursive-descent parser over a bounds-checked cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        const Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            jsonError("trailing characters at offset "
                      + std::to_string(pos_));
        return value;
    }

  private:
    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            jsonError("unexpected end of input");
        return text_[pos_];
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(
                   text_[pos_])))
            ++pos_;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            jsonError(std::string("expected '") + c + "' at offset "
                      + std::to_string(pos_));
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                jsonError(std::string("bad literal, expected ")
                          + word);
            ++pos_;
        }
    }

    Json
    parseValue()
    {
        // Bound recursion so hostile nesting ("[[[[...") throws
        // like every other malformed input instead of overflowing
        // the stack; real configs/results nest a handful deep.
        if (depth_ >= Json::kMaxParseDepth)
            jsonError("nesting deeper than "
                      + std::to_string(Json::kMaxParseDepth)
                      + " levels");
        ++depth_;
        Json out;
        switch (peek()) {
          case '{': out = parseObject(); break;
          case '[': out = parseArray(); break;
          case '"': out = Json(parseString()); break;
          case 't': literal("true"); out = Json(true); break;
          case 'f': literal("false"); out = Json(false); break;
          case 'n': literal("null"); break;
          default:  out = parseNumber(); break;
        }
        --depth_;
        return out;
    }

    Json
    parseObject()
    {
        expect('{');
        Json out = Json::object();
        if (consume('}'))
            return out;
        do {
            if (peek() != '"')
                jsonError("object key must be a string at offset "
                          + std::to_string(pos_));
            std::string key = parseString();
            expect(':');
            out.set(key, parseValue());
        } while (consume(','));
        expect('}');
        return out;
    }

    Json
    parseArray()
    {
        expect('[');
        Json out = Json::array();
        if (consume(']'))
            return out;
        do {
            out.push(parseValue());
        } while (consume(','));
        expect(']');
        return out;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                jsonError("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                jsonError("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    jsonError("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + static_cast<
                        std::size_t>(i)];
                    unsigned digit;
                    if (h >= '0' && h <= '9')
                        digit = static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        digit = static_cast<unsigned>(h - 'a') + 10;
                    else if (h >= 'A' && h <= 'F')
                        digit = static_cast<unsigned>(h - 'A') + 10;
                    else
                        jsonError(std::string("bad hex digit '") + h
                                  + "' in \\u escape");
                    code = code * 16 + digit;
                }
                pos_ += 4;
                // Config/result content is ASCII; encode the BMP
                // code point as UTF-8 without surrogate handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80
                                             | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                jsonError(std::string("bad escape '\\") + esc + "'");
            }
        }
    }

    Json
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(
                       text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            jsonError("expected a value at offset "
                      + std::to_string(start));
        const std::string token = text_.substr(start, pos_ - start);
        // std::from_chars parses in the C locale regardless of the
        // global locale (std::stod would read "0,5" under de_DE).
        // It rejects a leading '+', which strtod accepted — keep
        // accepting it for compatibility with the old parser.
        const char *first = token.data();
        const char *last = token.data() + token.size();
        if (first != last && *first == '+')
            ++first;
        double value = 0;
        const std::from_chars_result r =
            std::from_chars(first, last, value);
        if (r.ec != std::errc() || r.ptr != last || first == last)
            jsonError("bad number '" + token + "'");
        return Json(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        jsonError(std::string("expected bool, have ")
                  + kindName(kind_));
    return bool_;
}

double
Json::asDouble() const
{
    if (kind_ != Kind::Number)
        jsonError(std::string("expected number, have ")
                  + kindName(kind_));
    return number_;
}

std::int64_t
Json::asInt() const
{
    const double v = asDouble();
    // The bounds are the two nearest doubles bracketing the int64
    // range; a value outside them (or NaN, which fails both
    // comparisons) would make the cast undefined behavior.
    if (!(v >= -9223372036854775808.0
          && v < 9223372036854775808.0))
        jsonError("number " + std::to_string(v)
                  + " does not fit in int64");
    return static_cast<std::int64_t>(v);
}

bool
Json::asIndex(std::size_t &out) const
{
    if (kind_ != Kind::Number)
        return false;
    const double v = number_;
    if (!(v >= 0.0 && v < exactIntLimit)
        || v != std::floor(v))
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::String)
        jsonError(std::string("expected string, have ")
                  + kindName(kind_));
    return string_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    jsonError(std::string("expected array/object, have ")
              + kindName(kind_));
}

const Json &
Json::at(std::size_t index) const
{
    if (kind_ != Kind::Array)
        jsonError(std::string("expected array, have ")
                  + kindName(kind_));
    if (index >= array_.size())
        jsonError("array index " + std::to_string(index)
                  + " out of range");
    return array_[index];
}

void
Json::push(Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        jsonError(std::string("push into ") + kindName(kind_));
    array_.push_back(std::move(value));
}

bool
Json::has(const std::string &key) const
{
    return kind_ == Kind::Object && object_.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        jsonError(std::string("expected object, have ")
                  + kindName(kind_));
    const auto it = object_.find(key);
    if (it == object_.end())
        jsonError("missing key \"" + key + "\"");
    return it->second;
}

void
Json::set(const std::string &key, Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        jsonError(std::string("set on ") + kindName(kind_));
    object_[key] = std::move(value);
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const Json *
Json::find(std::size_t index) const
{
    if (kind_ != Kind::Array || index >= array_.size())
        return nullptr;
    return &array_[index];
}

const std::map<std::string, Json> &
Json::items() const
{
    if (kind_ != Kind::Object)
        jsonError(std::string("expected object, have ")
                  + kindName(kind_));
    return object_;
}

bool
Json::getBool(const std::string &key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

double
Json::getDouble(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asDouble() : fallback;
}

std::int64_t
Json::getInt(const std::string &key, std::int64_t fallback) const
{
    return has(key) ? at(key).asInt() : fallback;
}

std::string
Json::getString(const std::string &key,
                const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(
                              indent > 0 ? indent * (depth + 1) : 0),
                          ' ');
    const std::string close(static_cast<std::size_t>(
                                indent > 0 ? indent * depth : 0),
                            ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        appendNumber(out, number_);
        break;
      case Kind::String:
        appendEscaped(out, string_);
        break;
      case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        bool first = true;
        for (const Json &v : array_) {
            if (!first) {
                out += ',';
                out += nl;
            }
            first = false;
            out += pad;
            v.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += close;
        out += ']';
        break;
      }
      case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        bool first = true;
        for (const auto &[key, v] : object_) {
            if (!first) {
                out += ',';
                out += nl;
            }
            first = false;
            out += pad;
            appendEscaped(out, key);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += close;
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::uint64_t
Json::hash() const
{
    // FNV-1a over the compact dump: the dump is canonical (sorted
    // keys, shortest-round-trip numbers), so the hash is stable
    // across construction order, processes and platforms.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : dump(0)) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

Json
Json::parse(const std::string &text)
{
    if (text.size() > kMaxDocumentBytes)
        jsonError("document of " + std::to_string(text.size())
                  + " bytes exceeds the "
                  + std::to_string(kMaxDocumentBytes)
                  + "-byte limit");
    return Parser(text).document();
}

Json
Json::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        jsonError("cannot open " + path);
    // Reject oversized files before buffering them: the parse()
    // bound alone would still have read the whole file into
    // memory first.
    in.seekg(0, std::ios::end);
    const std::streamoff bytes = in.tellg();
    if (bytes >= 0
        && static_cast<std::uint64_t>(bytes) > kMaxDocumentBytes)
        jsonError(path + " is " + std::to_string(bytes)
                  + " bytes, over the "
                  + std::to_string(kMaxDocumentBytes)
                  + "-byte document limit");
    in.seekg(0, std::ios::beg);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

void
Json::saveFile(const std::string &path, int indent) const
{
    std::ofstream out(path);
    if (!out)
        jsonError("cannot write " + path);
    out << dump(indent) << "\n";
    if (!out)
        jsonError("write to " + path + " failed");
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:   return true;
      case Kind::Bool:   return bool_ == other.bool_;
      case Kind::Number: return number_ == other.number_;
      case Kind::String: return string_ == other.string_;
      case Kind::Array:  return array_ == other.array_;
      case Kind::Object: return object_ == other.object_;
    }
    return false;
}

} // namespace qc
