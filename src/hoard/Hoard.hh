/**
 * @file
 * Umbrella header for the hoard cache — the persistent
 * content-addressed result store (docs/HOARD.md).
 */

#ifndef QC_HOARD_HOARD_HH
#define QC_HOARD_HOARD_HH

#include "hoard/HoardKey.hh"   // IWYU pragma: export
#include "hoard/HoardStore.hh" // IWYU pragma: export

#endif // QC_HOARD_HOARD_HH
