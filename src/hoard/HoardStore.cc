#include "hoard/HoardStore.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/Clock.hh"
#include "common/DurableFile.hh"
#include "hoard/HoardKey.hh"
#include "serve/Lease.hh"
#include "serve/Protocol.hh"
#include "sweep/SweepPlan.hh"

namespace qc {

namespace fs = std::filesystem;

namespace {

std::string
hexDigest(const Json &result)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(result.hash()));
    return buffer;
}

bool
isObjectName(const std::string &name)
{
    // Publish temps (".json.tmp-<nonce>") and anything else a
    // crash leaves behind must stay invisible to readers.
    return name.size() > 5
           && name.compare(name.size() - 5, 5, ".json") == 0;
}

/** Object files under objects/, sorted by path for determinism. */
std::vector<std::string>
objectFiles(const std::string &objectsDir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (fs::recursive_directory_iterator
             it(objectsDir, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec)
            && isObjectName(it->path().filename().string()))
            paths.push_back(it->path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** Leftover publish temps (non-".json" regular files). */
std::vector<std::string>
tempFiles(const std::string &objectsDir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (fs::recursive_directory_iterator
             it(objectsDir, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec)
            && !isObjectName(it->path().filename().string()))
            paths.push_back(it->path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

} // namespace

HoardStore::HoardStore(std::string root, FaultInjector fault)
    : root_(std::move(root)), fault_(std::move(fault)),
      nonce_(Lease::makeNonce())
{
    fs::create_directories(root_ + "/objects");
    fs::create_directories(root_ + "/quarantine");
    const std::string marker = root_ + "/hoard.json";
    if (fs::exists(marker)) {
        const Json meta = Json::loadFile(marker);
        const std::int64_t version =
            meta.getInt("hoard_version", -1);
        if (version != kStoreVersion) {
            throw std::invalid_argument(
                "hoard store " + root_ + " has hoard_version "
                + std::to_string(version) + "; this build reads "
                + std::to_string(kStoreVersion));
        }
        return;
    }
    Json meta = Json::object();
    meta.set("hoard_version", kStoreVersion);
    writeFileDurable(marker, meta.dump(2) + "\n",
                     ".tmp-" + nonce_);
}

std::string
HoardStore::keyFor(const std::string &runner, const Json &config)
{
    return hoardKeyHash(runner, config);
}

std::string
HoardStore::objectPath(const std::string &key) const
{
    return root_ + "/objects/" + key.substr(0, 2) + "/" + key
           + ".json";
}

bool
HoardStore::validateObject(const Json &object,
                           const std::string &key,
                           std::string &why) const
{
    if (!object.isObject()) {
        why = "not a JSON object";
        return false;
    }
    if (object.getInt("store_version", -1) != kStoreVersion) {
        why = "wrong store_version";
        return false;
    }
    if (object.getString("key", "") != key) {
        why = "key does not match object name";
        return false;
    }
    // Objects are on-disk artifacts anyone can edit; every field
    // read goes through find() so a malformed object quarantines
    // instead of throwing out of the fetch path.
    const Json *result = object.find("result");
    const Json *keyConfig = object.find("key_config");
    const Json *runner = object.find("runner");
    if (!result || !keyConfig || !runner || !runner->isString()) {
        why = "missing field";
        return false;
    }
    if (object.getString("digest", "") != hexDigest(*result)) {
        why = "digest mismatch";
        return false;
    }
    if (result->isObject() && result->has("error")) {
        why = "cached error result";
        return false;
    }
    // The name must be the hash of the stored identity — catches
    // an object renamed (or hand-copied) onto the wrong key.
    if (hoardKeyHash(runner->asString(), *keyConfig) != key) {
        why = "key_config does not hash to the key";
        return false;
    }
    return true;
}

void
HoardStore::quarantineObject(const std::string &path)
{
    const std::string target = root_ + "/quarantine/"
                               + fs::path(path).filename().string()
                               + "." + nonce_;
    std::error_code ec;
    fs::rename(path, target, ec);
    if (ec)
        fs::remove(path, ec); // cross-device fallback: drop it
    bumpQuarantined();
}

void
HoardStore::bumpQuarantined()
{
    MutexLock lock(mutex_);
    ++counters_.quarantined;
}

bool
HoardStore::fetch(const std::string &runner, const Json &config,
                  Json &result)
{
    const std::string key = hoardKeyHash(runner, config);
    const std::string path = objectPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        MutexLock lock(mutex_);
        ++counters_.misses;
        return false;
    }
    Json object;
    std::string why;
    bool valid = false;
    try {
        object = Json::loadFile(path);
        valid = validateObject(object, key, why);
        // The full-identity guard: a 64-bit collision between two
        // distinct key configs must read as a miss, never a hit.
        const Json *keyConfig = object.find("key_config");
        if (valid
            && (object.getString("runner", "") != runner
                || !keyConfig
                || *keyConfig != hoardKeyConfig(runner, config))) {
            valid = false;
            why = "key_config mismatch";
        }
    } catch (const std::exception &e) {
        valid = false;
        why = e.what();
    }
    if (!valid) {
        quarantineObject(path);
        MutexLock lock(mutex_);
        ++counters_.misses;
        return false;
    }
    result = *object.find("result");
    MutexLock lock(mutex_);
    ++counters_.hits;
    return true;
}

bool
HoardStore::store(const std::string &runner, const Json &config,
                  const Json &result)
{
    // Error results always re-run (matching resume semantics); a
    // transient failure must not poison the persistent store.
    if (result.isObject() && result.has("error"))
        return false;
    const std::string key = hoardKeyHash(runner, config);
    const std::string path = objectPath(key);
    std::error_code ec;
    if (fs::exists(path, ec) && !ec) {
        // Idempotent duplicate publish: the existing object's
        // content is identical by construction (same key → same
        // key config → same deterministic result), so first wins.
        MutexLock lock(mutex_);
        ++counters_.duplicates;
        return false;
    }
    Json object = Json::object();
    object.set("digest", hexDigest(result));
    object.set("key", key);
    object.set("key_config", hoardKeyConfig(runner, config));
    object.set("result", result);
    object.set("runner", runner);
    object.set("store_version", kStoreVersion);
    object.set("stored_ms", wallClockEpochMs());
    const std::string body = object.dump(2) + "\n";
    fs::create_directories(fs::path(path).parent_path());
    if (fault_.is("crash-before-hoard-publish")) {
        // Model a crash with the temp durably on disk but never
        // renamed: the object must stay invisible to every reader.
        writeFileDurable(path + ".partial-" + nonce_, body,
                         ".tmp-" + nonce_);
        fault_.fire("crash-before-hoard-publish");
    }
    writeFileDurable(path, body, ".tmp-" + nonce_);
    fault_.fire("crash-after-hoard-publish");
    MutexLock lock(mutex_);
    ++counters_.stores;
    return true;
}

HoardCounters
HoardStore::counters() const
{
    MutexLock lock(mutex_);
    return counters_;
}

std::vector<HoardObjectInfo>
HoardStore::list() const
{
    std::vector<HoardObjectInfo> infos;
    for (const std::string &path : objectFiles(root_ + "/objects")) {
        HoardObjectInfo info;
        info.path = path;
        info.key = fs::path(path).stem().string();
        info.bytes = fileBytes(path);
        try {
            const Json object = Json::loadFile(path);
            info.runner = object.getString("runner", "");
            info.storedMs = object.getInt("stored_ms", 0);
        } catch (const std::exception &) {
            // Unreadable: storedMs 0 sorts it oldest, so gc evicts
            // it first; verify() will quarantine it.
        }
        infos.push_back(std::move(info));
    }
    return infos;
}

void
HoardStore::writeIndex(const std::vector<HoardObjectInfo> &infos)
{
    Json entries = Json::object();
    for (const HoardObjectInfo &info : infos) {
        Json entry = Json::object();
        entry.set("bytes", info.bytes);
        entry.set("runner", info.runner);
        entry.set("stored_ms", info.storedMs);
        entries.set(info.key, std::move(entry));
    }
    Json index = Json::object();
    index.set("entries", std::move(entries));
    index.set("hoard_version", kStoreVersion);
    writeFileDurable(root_ + "/index.json", index.dump(2) + "\n",
                     ".tmp-" + nonce_);
}

HoardVerifyReport
HoardStore::verify()
{
    HoardVerifyReport report;
    std::vector<HoardObjectInfo> survivors;
    for (const std::string &path : objectFiles(root_ + "/objects")) {
        ++report.objects;
        const std::string key = fs::path(path).stem().string();
        bool valid = false;
        std::string why;
        Json object;
        try {
            object = Json::loadFile(path);
            valid = validateObject(object, key, why);
        } catch (const std::exception &) {
        }
        if (!valid) {
            quarantineObject(path);
            ++report.quarantined;
            continue;
        }
        ++report.ok;
        HoardObjectInfo info;
        info.key = key;
        info.path = path;
        info.bytes = fileBytes(path);
        info.runner = object.getString("runner", "");
        info.storedMs = object.getInt("stored_ms", 0);
        survivors.push_back(std::move(info));
    }
    // Prune index entries whose object is gone (orphans from a
    // crash between an eviction and its index rewrite).
    const std::string indexPath = root_ + "/index.json";
    std::error_code ec;
    if (fs::exists(indexPath, ec) && !ec) {
        try {
            const Json index = Json::loadFile(indexPath);
            const Json *entries = index.find("entries");
            if (entries && entries->isObject()) {
                for (const auto &[key, entry] :
                     entries->items()) {
                    (void)entry;
                    const bool present = std::any_of(
                        survivors.begin(), survivors.end(),
                        [&](const HoardObjectInfo &info) {
                            return info.key == key;
                        });
                    if (!present)
                        ++report.orphanedIndexEntries;
                }
            }
        } catch (const std::exception &) {
            // Unparsable index: the rewrite below replaces it.
        }
    }
    writeIndex(survivors);
    return report;
}

HoardGcReport
HoardStore::gc(std::uint64_t maxBytes, double maxAgeDays)
{
    HoardGcReport report;
    for (const std::string &temp : tempFiles(root_ + "/objects")) {
        std::error_code ec;
        if (fs::remove(temp, ec) && !ec)
            ++report.tempsRemoved;
    }
    std::vector<HoardObjectInfo> infos = list();
    // Oldest publish first; key breaks ties deterministically.
    std::sort(infos.begin(), infos.end(),
              [](const HoardObjectInfo &a,
                 const HoardObjectInfo &b) {
                  return a.storedMs != b.storedMs
                             ? a.storedMs < b.storedMs
                             : a.key < b.key;
              });
    std::uint64_t totalBytes = 0;
    for (const HoardObjectInfo &info : infos)
        totalBytes += info.bytes;
    const std::int64_t cutoffMs =
        maxAgeDays > 0
            ? wallClockEpochMs()
                  - static_cast<std::int64_t>(maxAgeDays
                                              * 86400.0 * 1000.0)
            : 0;
    std::vector<HoardObjectInfo> kept;
    for (std::size_t i = 0; i < infos.size(); ++i) {
        const HoardObjectInfo &info = infos[i];
        const bool tooOld = maxAgeDays > 0
                            && info.storedMs < cutoffMs;
        const bool overBudget = maxBytes > 0
                                && totalBytes > maxBytes;
        if (tooOld || overBudget) {
            std::error_code ec;
            fs::remove(info.path, ec);
            ++report.evicted;
            report.evictedBytes += info.bytes;
            totalBytes -= info.bytes;
            continue;
        }
        ++report.kept;
        report.keptBytes += info.bytes;
        kept.push_back(info);
    }
    writeIndex(kept);
    return report;
}

std::size_t
HoardStore::ingestServe(const std::string &serveDir)
{
    const ServeDir dir(serveDir);
    const Json manifest = Json::loadFile(dir.manifest());
    const Json *specJson = manifest.find("spec");
    if (!specJson) {
        throw std::invalid_argument(
            "serve manifest " + dir.manifest()
            + " carries no spec");
    }
    const SweepSpec spec = SweepSpec::fromJson(*specJson);
    const SweepPlan plan = SweepPlan::expand(spec);
    std::size_t ingested = 0;
    std::error_code ec;
    std::vector<std::string> deltaPaths;
    for (fs::directory_iterator it(dir.resultDir(), ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec))
            deltaPaths.push_back(it->path().string());
    }
    std::sort(deltaPaths.begin(), deltaPaths.end());
    for (const std::string &path : deltaPaths) {
        ShardDelta delta;
        try {
            if (!ShardDelta::fromJson(Json::loadFile(path), delta))
                continue; // malformed: same tolerance as merge
        } catch (const std::exception &) {
            continue; // torn commit: skip, never throw
        }
        for (const DeltaPoint &point : delta.points) {
            if (point.failed
                || point.index >= plan.points.size())
                continue;
            // The same skew guard the coordinator's merge applies:
            // a delta from a different expansion must not publish.
            if (point.configHash
                != hexConfigHash(plan.hashes[point.index]))
                continue;
            if (store(spec.runner,
                      plan.points[point.index].config,
                      point.result))
                ++ingested;
        }
    }
    return ingested;
}

Json
HoardStore::stat() const
{
    const std::vector<HoardObjectInfo> infos = list();
    std::uint64_t totalBytes = 0;
    Json runners = Json::object();
    for (const HoardObjectInfo &info : infos) {
        totalBytes += info.bytes;
        const std::string name =
            info.runner.empty() ? "(unreadable)" : info.runner;
        runners.set(name, runners.getInt(name, 0) + 1);
    }
    std::size_t indexEntries = 0;
    const std::string indexPath = root_ + "/index.json";
    std::error_code ec;
    if (fs::exists(indexPath, ec) && !ec) {
        try {
            const Json index = Json::loadFile(indexPath);
            const Json *entries = index.find("entries");
            if (entries && entries->isObject())
                indexEntries = entries->items().size();
        } catch (const std::exception &) {
        }
    }
    std::size_t quarantined = 0;
    for (fs::directory_iterator it(root_ + "/quarantine", ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec))
            ++quarantined;
    }
    Json out = Json::object();
    out.set("bytes", totalBytes);
    out.set("hoard_version", kStoreVersion);
    out.set("index_entries",
            static_cast<std::int64_t>(indexEntries));
    out.set("objects", static_cast<std::int64_t>(infos.size()));
    out.set("quarantined_files",
            static_cast<std::int64_t>(quarantined));
    out.set("runners", std::move(runners));
    return out;
}

} // namespace qc
