/**
 * @file
 * The hoard cache-key policy: which configuration fields identify a
 * result, and which are reporting-only knobs that cannot change it.
 *
 * A sweep point's result is cached under the hash of its *key
 * configuration* — the canonical config JSON with the runner's
 * reporting-only fields normalized away. Two configs that differ
 * only in reporting-only fields therefore share one stored object,
 * which is what makes results reusable across spec variants (the
 * PR 5 "reuse compatible points" open item, resolved here as a key
 * policy with its own classification-guard tests in
 * tests/test_hoard.cc: every runner field must be classified as
 * semantic or reporting-only, so adding a field without deciding
 * fails a test).
 *
 * Policy per runner:
 *
 *   experiment  drops `demandBins` (the runner stores
 *               Result::summaryJson(), which carries no demand
 *               profile, so the binning resolution cannot reach the
 *               cached bytes) and drops `calibrationTrials` when
 *               `calibrateFactories` is false/absent (the trial
 *               count is read only by the calibration pass).
 *               Everything else — including unknown fields — is
 *               semantic.
 *   (others)    identity: every field is semantic. Unknown runners
 *               get no normalization, which is always safe (worst
 *               case is a needless cache miss, never a wrong hit).
 *
 * The policy is deliberately conservative: a field is normalized
 * away only when the stored result provably cannot depend on it.
 */

#ifndef QC_HOARD_HOARD_KEY_HH
#define QC_HOARD_HOARD_KEY_HH

#include <string>
#include <vector>

#include "api/Json.hh"

namespace qc {

/**
 * The canonical cache identity of one point configuration under
 * the named runner's key policy: a copy of `config` with the
 * runner's reporting-only fields normalized away. Stored verbatim
 * in each object as `key_config`, and compared exactly on fetch so
 * a 64-bit hash collision can never serve a wrong result.
 */
Json hoardKeyConfig(const std::string &runner, const Json &config);

/** 16-hex-digit store key: hexConfigHash of the key configuration
 *  (with the runner name mixed in, so two runners whose configs
 *  happen to collide still get distinct objects). */
std::string hoardKeyHash(const std::string &runner,
                         const Json &config);

/** The dotted config fields the policy normalizes away for this
 *  runner (empty for runners with an identity policy). Exposed so
 *  the classification-guard tests enumerate the policy rather than
 *  re-stating it. */
std::vector<std::string>
hoardReportingOnlyFields(const std::string &runner);

} // namespace qc

#endif // QC_HOARD_HOARD_KEY_HH
