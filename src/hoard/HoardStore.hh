/**
 * @file
 * The hoard cache: a versioned on-disk content-addressed store of
 * computed sweep results, in the spirit of OpenISR's parcelkeeper
 * chunk store — every point computed in any session is stored once
 * under its canonical config key and reused by any later sweep.
 *
 * Layout under the store root:
 *
 *     ROOT/hoard.json          {"hoard_version": 1}; written first,
 *                              validated on every open
 *     ROOT/objects/<hh>/<key>.json
 *                              one immutable object per key
 *                              (<hh> = first two hex digits);
 *                              published with writeFileDurable, so
 *                              a reader never sees a torn object
 *     ROOT/index.json          advisory listing rebuilt by
 *                              verify()/gc(); fetch/store never
 *                              read it, so a stale or orphaned
 *                              index can only mislead `hoard stat`,
 *                              never a sweep
 *     ROOT/quarantine/         objects that failed validation,
 *                              moved aside (never deleted) for
 *                              post-mortem
 *
 * Each object is a JSON document:
 *
 *     {
 *       "digest": "<16-hex Json::hash of the result>",
 *       "key": "<its own store key>",
 *       "key_config": { ...hoardKeyConfig(runner, config)... },
 *       "result": { ...runner metrics, verbatim... },
 *       "runner": "<runner key>",
 *       "store_version": 1,
 *       "stored_ms": <wall-clock publish stamp, for eviction>
 *     }
 *
 * Integrity model: fetch() re-derives the key from the request,
 * validates store_version, runner, the digest over the result
 * bytes, and the full key_config equality (so a 64-bit hash
 * collision cannot serve a wrong result — the same guard the sweep
 * memo uses). Anything invalid — torn, bit-flipped, wrong version,
 * hand-edited — is moved to quarantine/ and reported as a miss, so
 * the point transparently recomputes and the republished object
 * heals the store.
 *
 * Concurrency model: publishes go through the same durable
 * write-then-rename commit the serve workers use, with a
 * process-unique temp suffix (Lease::makeNonce), so concurrent
 * sweeps sharing a store never tear an object; duplicate publishes
 * of the same key are idempotent (first one wins, the content is
 * identical by construction). Scans only ever consider "*.json"
 * names, so a crashed publish's leftover temp is invisible until
 * gc() sweeps it.
 */

#ifndef QC_HOARD_HOARD_STORE_HH
#define QC_HOARD_HOARD_STORE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/Json.hh"
#include "common/Mutex.hh"
#include "serve/FaultInjector.hh"
#include "sweep/ResultCache.hh"

namespace qc {

/** Session accounting (since this HoardStore was opened). */
struct HoardCounters
{
    std::size_t hits = 0;        ///< fetches served from the store
    std::size_t misses = 0;      ///< fetches that found nothing
    std::size_t stores = 0;      ///< objects newly published
    std::size_t duplicates = 0;  ///< publishes of an existing key
    std::size_t quarantined = 0; ///< invalid objects moved aside
};

/** One stored object, as listed by list(). */
struct HoardObjectInfo
{
    std::string key;       ///< 16-hex store key
    std::string path;      ///< absolute object path
    std::string runner;    ///< owning runner ("" if unreadable)
    std::uint64_t bytes = 0;
    std::int64_t storedMs = 0; ///< publish stamp (0 if unreadable)
};

/** Outcome of verify(). */
struct HoardVerifyReport
{
    std::size_t objects = 0;     ///< object files scanned
    std::size_t ok = 0;          ///< passed full validation
    std::size_t quarantined = 0; ///< failed and moved aside
    std::size_t orphanedIndexEntries = 0; ///< pruned from index
};

/** Outcome of gc(). */
struct HoardGcReport
{
    std::size_t kept = 0;
    std::size_t evicted = 0;
    std::size_t tempsRemoved = 0; ///< leftover publish temps swept
    std::uint64_t keptBytes = 0;
    std::uint64_t evictedBytes = 0;
};

class HoardStore final : public ResultCache
{
  public:
    /** Object format version stamped into every object. */
    static constexpr std::int64_t kStoreVersion = 1;

    /**
     * Open (creating if needed) the store at `root`. Writes the
     * version marker on first open; throws std::invalid_argument
     * if an existing marker names a different version (a future
     * format must not be silently misread as this one).
     */
    explicit HoardStore(std::string root,
                        FaultInjector fault = FaultInjector());

    const std::string &root() const { return root_; }

    /** The store key a (runner, config) pair resolves to. */
    static std::string keyFor(const std::string &runner,
                              const Json &config);

    /** Absolute object path for a key. */
    std::string objectPath(const std::string &key) const;

    /**
     * Read-through lookup. On a valid hit, assigns the stored
     * result and returns true. Invalid objects (torn, digest
     * mismatch, wrong version/runner, key_config mismatch) are
     * quarantined and reported as a miss. Thread-safe.
     */
    bool fetch(const std::string &runner, const Json &config,
               Json &result) override;

    /**
     * Publish a computed result. Returns true if a new object was
     * written; false for duplicates (idempotent — the existing
     * object is left untouched) and for error results, which are
     * never cached ({"error": ...} must always re-run, matching
     * resume semantics). Thread-safe; safe against concurrent
     * publishers of the same key.
     */
    bool store(const std::string &runner, const Json &config,
               const Json &result) override;

    /** Session counters (snapshot). Thread-safe. */
    HoardCounters counters() const;

    /** All stored objects, ordered by key. */
    std::vector<HoardObjectInfo> list() const;

    /**
     * Full integrity scan: every object is re-validated
     * (filename/key/digest/key_config/version) and failures are
     * quarantined; the index is rebuilt, pruning entries whose
     * object is gone. Not safe against concurrent writers of the
     * index (fetch/store remain safe).
     */
    HoardVerifyReport verify();

    /**
     * Size/age eviction, oldest publish stamp first: drop objects
     * older than `maxAgeDays` (0 = no age bound), then drop oldest
     * until the store fits `maxBytes` (0 = no size bound). Also
     * sweeps leftover publish temps and rebuilds the index.
     * Unreadable objects sort oldest, so they evict first.
     */
    HoardGcReport gc(std::uint64_t maxBytes, double maxAgeDays);

    /**
     * Ingest leftover shard deltas from a `qcarch serve`
     * coordination directory (deltas the coordinator crashed
     * before merging): expands the manifest's spec, cross-checks
     * each delta point's config_hash against the plan, and
     * publishes every non-failed point. Returns the number of new
     * objects. Throws std::invalid_argument if `serveDir` has no
     * readable manifest; malformed/torn delta files and mismatched
     * points are skipped (the same tolerance the coordinator's
     * merge applies).
     */
    std::size_t ingestServe(const std::string &serveDir);

    /** Store statistics as a JSON document (for `qcarch hoard
     *  stat`): object/byte totals, per-runner counts, index and
     *  quarantine state. */
    Json stat() const;

  private:
    bool validateObject(const Json &object, const std::string &key,
                        std::string &why) const;
    void quarantineObject(const std::string &path);
    void writeIndex(const std::vector<HoardObjectInfo> &infos);
    void bumpQuarantined();

    std::string root_;
    FaultInjector fault_;
    std::string nonce_; ///< process-unique temp suffix component

    mutable Mutex mutex_;
    HoardCounters counters_ QC_GUARDED_BY(mutex_);
};

} // namespace qc

#endif // QC_HOARD_HOARD_STORE_HH
