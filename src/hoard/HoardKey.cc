#include "hoard/HoardKey.hh"

#include <cstdio>

namespace qc {

namespace {

/** Rebuild an object without one top-level key (Json has no erase;
 *  objects are small). No-op when the key is absent. */
Json
withoutKey(const Json &object, const std::string &key)
{
    Json out = Json::object();
    for (const auto &[name, value] : object.items()) {
        if (name != key)
            out.set(name, value);
    }
    return out;
}

} // namespace

Json
hoardKeyConfig(const std::string &runner, const Json &config)
{
    if (runner != "experiment" || !config.isObject())
        return config;
    // demandBins only shapes the demand-profile report, which
    // summaryJson() (the stored result) does not include.
    Json key = withoutKey(config, "demandBins");
    // calibrationTrials is read only by the factory-calibration
    // pass; with calibration off it is inert.
    if (!key.getBool("calibrateFactories", false))
        key = withoutKey(key, "calibrationTrials");
    return key;
}

std::string
hoardKeyHash(const std::string &runner, const Json &config)
{
    Json identity = Json::object();
    identity.set("config", hoardKeyConfig(runner, config));
    identity.set("runner", runner);
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(identity.hash()));
    return buffer;
}

std::vector<std::string>
hoardReportingOnlyFields(const std::string &runner)
{
    if (runner == "experiment")
        return {"demandBins", "calibrationTrials"};
    return {};
}

} // namespace qc
