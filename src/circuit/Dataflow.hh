/**
 * @file
 * Qubit-dependency dataflow graph over a Circuit, plus ASAP
 * scheduling against a pluggable latency model.
 *
 * This is the foundation of the paper's Section 3 analysis: the
 * "speed of data" of a circuit is the makespan of its ASAP schedule
 * when every gate costs only its data-interaction latency (ancilla
 * preparation removed from the critical path).
 */

#ifndef QC_CIRCUIT_DATAFLOW_HH
#define QC_CIRCUIT_DATAFLOW_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/Circuit.hh"
#include "common/Types.hh"

namespace qc {

/** Index of a gate (node) within a DataflowGraph. */
using NodeId = std::uint32_t;

/** Result of scheduling a dataflow graph. */
struct Schedule
{
    /** Start time per gate, indexed by NodeId. */
    std::vector<Time> start;
    /** End time per gate, indexed by NodeId. */
    std::vector<Time> end;
    /** Completion time of the whole circuit. */
    Time makespan = 0;
};

/**
 * Dependency DAG over the gates of a circuit.
 *
 * Gate B depends on gate A iff they share a qubit and A precedes B
 * in program order with no intervening gate on that qubit (i.e.
 * last-writer edges, which are sufficient for scheduling since all
 * our dependencies are read-modify-write).
 */
class DataflowGraph
{
  public:
    /** Latency assigned to each gate when scheduling. */
    using LatencyModel = std::function<Time(const Gate &)>;

    /** Build the dependency DAG for a circuit (kept by reference). */
    explicit DataflowGraph(const Circuit &circuit);

    /** The underlying circuit. */
    const Circuit &circuit() const { return circuit_; }

    /** Number of gate nodes. */
    std::size_t numNodes() const { return preds_.size(); }

    /** Immediate predecessors of node n. */
    const std::vector<NodeId> &preds(NodeId n) const
    {
        return preds_[n];
    }

    /** Immediate successors of node n. */
    const std::vector<NodeId> &succs(NodeId n) const
    {
        return succs_[n];
    }

    /** Nodes with no predecessors. */
    const std::vector<NodeId> &roots() const { return roots_; }

    /**
     * As-soon-as-possible schedule: each gate starts when all its
     * predecessors have finished. Assumes unbounded resources — the
     * definition of "speed of data" (Figure 1b).
     */
    Schedule asap(const LatencyModel &latency) const;

    /**
     * Unit-latency depth of each node (longest path in gate count);
     * the maximum plus one is the circuit's logical depth.
     */
    std::vector<std::uint32_t> levels() const;

    /** Logical depth (longest chain of dependent gates). */
    std::uint32_t depth() const;

  private:
    const Circuit &circuit_;
    std::vector<std::vector<NodeId>> preds_;
    std::vector<std::vector<NodeId>> succs_;
    std::vector<NodeId> roots_;
};

} // namespace qc

#endif // QC_CIRCUIT_DATAFLOW_HH
