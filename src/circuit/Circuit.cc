#include "circuit/Circuit.hh"

#include "common/Logging.hh"

namespace qc {

Circuit::Circuit(Qubit num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    if (num_qubits == 0)
        fatal("circuit '", name_, "' must have at least one qubit");
}

void
Circuit::checkQubit(Qubit q) const
{
    if (q >= numQubits_) {
        panic("qubit index ", q, " out of range (circuit '", name_,
              "' has ", numQubits_, " qubits)");
    }
}

void
Circuit::append(const Gate &gate)
{
    const int arity = gate.arity();
    for (int i = 0; i < arity; ++i) {
        const Qubit q = gate.ops[static_cast<std::size_t>(i)];
        checkQubit(q);
        for (int j = i + 1; j < arity; ++j) {
            if (q == gate.ops[static_cast<std::size_t>(j)]) {
                panic("gate ", gateName(gate.kind),
                      " has duplicate operand ", q);
            }
        }
    }
    gates_.push_back(gate);
}

Qubit
Circuit::addQubits(Qubit count)
{
    const Qubit first = numQubits_;
    numQubits_ += count;
    return first;
}

namespace {

Gate
make1(GateKind kind, Qubit q, std::int16_t param = 0)
{
    Gate g;
    g.kind = kind;
    g.ops = {q, invalidQubit, invalidQubit};
    g.param = param;
    return g;
}

Gate
make2(GateKind kind, Qubit a, Qubit b, std::int16_t param = 0)
{
    Gate g;
    g.kind = kind;
    g.ops = {a, b, invalidQubit};
    g.param = param;
    return g;
}

} // namespace

Circuit &
Circuit::prepZ(Qubit q)
{
    append(make1(GateKind::PrepZ, q));
    return *this;
}

Circuit &
Circuit::prepX(Qubit q)
{
    append(make1(GateKind::PrepX, q));
    return *this;
}

Circuit &
Circuit::h(Qubit q)
{
    append(make1(GateKind::H, q));
    return *this;
}

Circuit &
Circuit::x(Qubit q)
{
    append(make1(GateKind::X, q));
    return *this;
}

Circuit &
Circuit::y(Qubit q)
{
    append(make1(GateKind::Y, q));
    return *this;
}

Circuit &
Circuit::z(Qubit q)
{
    append(make1(GateKind::Z, q));
    return *this;
}

Circuit &
Circuit::s(Qubit q)
{
    append(make1(GateKind::S, q));
    return *this;
}

Circuit &
Circuit::sdg(Qubit q)
{
    append(make1(GateKind::Sdg, q));
    return *this;
}

Circuit &
Circuit::t(Qubit q)
{
    append(make1(GateKind::T, q));
    return *this;
}

Circuit &
Circuit::tdg(Qubit q)
{
    append(make1(GateKind::Tdg, q));
    return *this;
}

Circuit &
Circuit::cx(Qubit control, Qubit target)
{
    append(make2(GateKind::CX, control, target));
    return *this;
}

Circuit &
Circuit::cz(Qubit a, Qubit b)
{
    append(make2(GateKind::CZ, a, b));
    return *this;
}

Circuit &
Circuit::rotZ(Qubit q, int k)
{
    append(make1(GateKind::RotZ, q, static_cast<std::int16_t>(k)));
    return *this;
}

Circuit &
Circuit::crotZ(Qubit control, Qubit target, int k)
{
    append(make2(GateKind::CRotZ, control, target,
                 static_cast<std::int16_t>(k)));
    return *this;
}

Circuit &
Circuit::toffoli(Qubit a, Qubit b, Qubit target)
{
    Gate g;
    g.kind = GateKind::Toffoli;
    g.ops = {a, b, target};
    append(g);
    return *this;
}

Circuit &
Circuit::measure(Qubit q)
{
    append(make1(GateKind::Measure, q));
    return *this;
}

GateCensus
Circuit::census() const
{
    GateCensus c;
    for (const Gate &g : gates_) {
        ++c.byKind[static_cast<std::size_t>(g.kind)];
        ++c.total;
    }
    return c;
}

} // namespace qc
