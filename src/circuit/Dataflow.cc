#include "circuit/Dataflow.hh"

#include <algorithm>

#include "common/Logging.hh"

namespace qc {

DataflowGraph::DataflowGraph(const Circuit &circuit) : circuit_(circuit)
{
    const auto &gates = circuit.gates();
    const auto n = static_cast<NodeId>(gates.size());
    preds_.resize(n);
    succs_.resize(n);

    // lastOnQubit[q] = most recent gate touching qubit q, or
    // invalidQubit-like sentinel when none.
    constexpr NodeId none = ~NodeId{0};
    std::vector<NodeId> last_on_qubit(circuit.numQubits(), none);

    for (NodeId i = 0; i < n; ++i) {
        const Gate &g = gates[i];
        const int arity = g.arity();
        for (int slot = 0; slot < arity; ++slot) {
            const Qubit q = g.ops[static_cast<std::size_t>(slot)];
            const NodeId prev = last_on_qubit[q];
            if (prev != none) {
                // Avoid duplicate edges when two gates share more
                // than one qubit (cannot happen with distinct
                // operand qubits and last-writer edges, but be safe).
                auto &p = preds_[i];
                if (std::find(p.begin(), p.end(), prev) == p.end()) {
                    p.push_back(prev);
                    succs_[prev].push_back(i);
                }
            }
            last_on_qubit[q] = i;
        }
        if (preds_[i].empty())
            roots_.push_back(i);
    }
}

Schedule
DataflowGraph::asap(const LatencyModel &latency) const
{
    const auto n = static_cast<NodeId>(numNodes());
    Schedule sched;
    sched.start.assign(n, 0);
    sched.end.assign(n, 0);

    // Program order is already a topological order (edges only go
    // from earlier to later gates).
    for (NodeId i = 0; i < n; ++i) {
        Time ready = 0;
        for (NodeId p : preds_[i])
            ready = std::max(ready, sched.end[p]);
        const Time lat = latency(circuit_.gates()[i]);
        if (lat < 0)
            panic("negative gate latency");
        sched.start[i] = ready;
        sched.end[i] = ready + lat;
        sched.makespan = std::max(sched.makespan, sched.end[i]);
    }
    return sched;
}

std::vector<std::uint32_t>
DataflowGraph::levels() const
{
    const auto n = static_cast<NodeId>(numNodes());
    std::vector<std::uint32_t> level(n, 0);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId p : preds_[i])
            level[i] = std::max(level[i], level[p] + 1);
    }
    return level;
}

std::uint32_t
DataflowGraph::depth() const
{
    std::uint32_t d = 0;
    for (std::uint32_t lvl : levels())
        d = std::max(d, lvl + 1);
    return numNodes() ? d : 0;
}

} // namespace qc
