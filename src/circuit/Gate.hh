/**
 * @file
 * The logical (encoded-level) gate vocabulary used throughout
 * qalypso. Benchmarks are expressed over these gates; the codes
 * module decides how each is realized fault-tolerantly on the
 * [[7,1,3]] code (transversal vs. ancilla-consuming), and the arch
 * module assigns latencies.
 */

#ifndef QC_CIRCUIT_GATE_HH
#define QC_CIRCUIT_GATE_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace qc {

/** Index of a logical qubit within a Circuit. */
using Qubit = std::uint32_t;

/** Sentinel for an unused operand slot. */
constexpr Qubit invalidQubit = ~Qubit{0};

/**
 * Logical gate kinds.
 *
 * The set covers the paper's universal set on the [[7,1,3]] code
 * (Section 2.1: transversal X, Y, Z, S, H, CX plus the
 * non-transversal T = pi/8 gate), the composite gates the benchmark
 * generators start from (Toffoli, controlled rotations), and the
 * state preparation / measurement bookends.
 */
enum class GateKind : std::uint8_t
{
    PrepZ,    ///< Initialize a logical qubit to |0>.
    PrepX,    ///< Initialize a logical qubit to |+>.
    H,        ///< Hadamard (transversal).
    X,        ///< Pauli X (transversal).
    Y,        ///< Pauli Y (transversal).
    Z,        ///< Pauli Z (transversal).
    S,        ///< Phase gate (transversal on [[7,1,3]]).
    Sdg,      ///< Inverse phase gate.
    T,        ///< pi/8 gate (non-transversal; consumes a pi/8 ancilla).
    Tdg,      ///< Inverse pi/8 gate (same cost as T).
    CX,       ///< Controlled-NOT (transversal).
    CZ,       ///< Controlled-Z (transversal).
    RotZ,     ///< Single-qubit Z-rotation by pi/2^k; param = k.
    CRotZ,    ///< Controlled Z-rotation by pi/2^k; param = k.
    Toffoli,  ///< CCX; decomposed to Clifford+T by the kernels module.
    Measure,  ///< Z-basis measurement of one logical qubit.

    NumKinds
};

/** Number of logical operands a gate kind takes (1, 2 or 3). */
constexpr int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::CRotZ:
        return 2;
      case GateKind::Toffoli:
        return 3;
      default:
        return 1;
    }
}

/** Human-readable mnemonic for a gate kind. */
constexpr std::string_view
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::PrepZ:   return "prep0";
      case GateKind::PrepX:   return "prep+";
      case GateKind::H:       return "H";
      case GateKind::X:       return "X";
      case GateKind::Y:       return "Y";
      case GateKind::Z:       return "Z";
      case GateKind::S:       return "S";
      case GateKind::Sdg:     return "Sdg";
      case GateKind::T:       return "T";
      case GateKind::Tdg:     return "Tdg";
      case GateKind::CX:      return "CX";
      case GateKind::CZ:      return "CZ";
      case GateKind::RotZ:    return "RotZ";
      case GateKind::CRotZ:   return "CRotZ";
      case GateKind::Toffoli: return "Toffoli";
      case GateKind::Measure: return "measure";
      default:                return "?";
    }
}

/**
 * One logical gate instance.
 *
 * Operand slots beyond the gate's arity hold invalidQubit. The param
 * field carries the rotation exponent k for RotZ/CRotZ (angle
 * pi/2^k) and is 0 otherwise. A negative param denotes the inverse
 * rotation (angle -pi/2^|k|).
 */
struct Gate
{
    GateKind kind{GateKind::PrepZ};
    std::array<Qubit, 3> ops{invalidQubit, invalidQubit, invalidQubit};
    std::int16_t param{0};

    /** Arity of this instance. */
    int arity() const { return gateArity(kind); }

    /** True if any operand equals q. */
    bool
    touches(Qubit q) const
    {
        for (int i = 0; i < arity(); ++i) {
            if (ops[static_cast<std::size_t>(i)] == q)
                return true;
        }
        return false;
    }
};

/** True for kinds that are diagonal rotations parameterized by k. */
constexpr bool
isRotation(GateKind kind)
{
    return kind == GateKind::RotZ || kind == GateKind::CRotZ;
}

/** True for the preparation bookends. */
constexpr bool
isPrep(GateKind kind)
{
    return kind == GateKind::PrepZ || kind == GateKind::PrepX;
}

} // namespace qc

#endif // QC_CIRCUIT_GATE_HH
