/**
 * @file
 * Logical circuit container and fluent builder interface.
 *
 * A Circuit is an ordered list of gates over a fixed set of logical
 * qubits. Order encodes program order; actual parallelism is
 * recovered by DataflowGraph from qubit dependencies.
 */

#ifndef QC_CIRCUIT_CIRCUIT_HH
#define QC_CIRCUIT_CIRCUIT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/Gate.hh"

namespace qc {

/** Per-kind gate counts plus derived summary figures. */
struct GateCensus
{
    /** Count per GateKind. */
    std::array<std::uint64_t, static_cast<std::size_t>(
        GateKind::NumKinds)> byKind{};

    /** Total gates. */
    std::uint64_t total = 0;

    /** Count for one kind. */
    std::uint64_t
    of(GateKind kind) const
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    /** T + Tdg count (the non-transversal pi/8 applications). */
    std::uint64_t nonTransversal1q() const
    {
        return of(GateKind::T) + of(GateKind::Tdg);
    }
};

/**
 * An ordered logical quantum circuit.
 */
class Circuit
{
  public:
    /** Create a circuit over n logical qubits. */
    explicit Circuit(Qubit num_qubits, std::string name = "circuit");

    /** Number of logical qubits (including data ancillae). */
    Qubit numQubits() const { return numQubits_; }

    /** Circuit name (used in reports). */
    const std::string &name() const { return name_; }

    /** All gates in program order. */
    const std::vector<Gate> &gates() const { return gates_; }

    /** Gate count. */
    std::size_t size() const { return gates_.size(); }

    /** Append a fully-formed gate (operands validated). */
    void append(const Gate &gate);

    /**
     * Grow the qubit set (returns the index of the first new qubit).
     * Used by decomposition passes that introduce ancillae.
     */
    Qubit addQubits(Qubit count);

    /** @name Fluent builders (validated, return *this). */
    /** @{ */
    Circuit &prepZ(Qubit q);
    Circuit &prepX(Qubit q);
    Circuit &h(Qubit q);
    Circuit &x(Qubit q);
    Circuit &y(Qubit q);
    Circuit &z(Qubit q);
    Circuit &s(Qubit q);
    Circuit &sdg(Qubit q);
    Circuit &t(Qubit q);
    Circuit &tdg(Qubit q);
    Circuit &cx(Qubit control, Qubit target);
    Circuit &cz(Qubit a, Qubit b);
    Circuit &rotZ(Qubit q, int k);
    Circuit &crotZ(Qubit control, Qubit target, int k);
    Circuit &toffoli(Qubit a, Qubit b, Qubit target);
    Circuit &measure(Qubit q);
    /** @} */

    /** Tally gates by kind. */
    GateCensus census() const;

  private:
    void checkQubit(Qubit q) const;

    Qubit numQubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace qc

#endif // QC_CIRCUIT_CIRCUIT_HH
