#include "sweep/SweepEngine.hh"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "sweep/WorkStealingPool.hh"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

std::string
hexHash(std::uint64_t hash)
{
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(hash));
    return out;
}

} // namespace

SweepReport
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const SweepRunner &runner =
        SweepRunnerRegistry::instance().get(spec.runner);
    const std::vector<SweepPoint> points = spec.expand();
    const auto t0 = Clock::now();

    // Per-point config memoization: duplicate configurations
    // (overlapping grids, degenerate axes) execute once; the rest
    // are cache hits. The dedup keys on the full canonical dump —
    // the 64-bit hash is reported per point but never trusted for
    // equality, so a hash collision cannot alias two configs. The
    // hit/miss split is a function of the point list alone, so it
    // is deterministic across thread counts.
    std::vector<std::uint64_t> hashes(points.size());
    std::vector<std::size_t> canonical(points.size());
    std::vector<std::size_t> unique;
    {
        std::map<std::string, std::size_t> first;
        for (std::size_t i = 0; i < points.size(); ++i) {
            hashes[i] = points[i].config.hash();
            auto [it, inserted] =
                first.emplace(points[i].config.dump(0), i);
            canonical[i] = it->second;
            if (inserted)
                unique.push_back(i);
        }
    }

    SweepReport report;
    report.points = points.size();
    report.cacheMisses = unique.size();
    report.cacheHits = points.size() - unique.size();

    // Execute the unique points on the work-stealing pool; results
    // land in expansion-order slots, so aggregation below is
    // deterministic no matter how the pool schedules them.
    std::vector<Json> results(points.size());
    // char, not bool: vector<bool> is bit-packed, and workers set
    // failure flags for distinct indices concurrently.
    std::vector<char> pointFailed(points.size(), 0);
    SweepContext context;
    std::mutex progressMutex;
    std::size_t done = 0;
    auto tick = [&](std::size_t index, bool cached) {
        if (!options.progress)
            return;
        SweepProgress progress;
        progress.done = ++done;
        progress.total = points.size();
        progress.point = &points[index];
        progress.cached = cached;
        options.progress(progress);
    };

    WorkStealingPool pool(options.threads);
    pool.run(unique.size(), [&](std::size_t task) {
        const std::size_t index = unique[task];
        try {
            results[index] =
                runner.runPoint(points[index].config, context);
        } catch (const std::exception &e) {
            Json error = Json::object();
            error.set("error", e.what());
            results[index] = std::move(error);
            pointFailed[index] = 1;
        }
        std::lock_guard<std::mutex> lock(progressMutex);
        tick(index, /*cached=*/false);
    });
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (canonical[i] != i) {
            results[i] = results[canonical[i]];
            pointFailed[i] = pointFailed[canonical[i]];
            tick(i, /*cached=*/true);
        }
        if (pointFailed[i])
            ++report.failed;
    }

    // Aggregate: one flat object per point — the axis assignment
    // first, then the runner's metrics (runner keys win on
    // collision, e.g. "trials" rounded up to a full batch).
    Json pointsJson = Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
        Json point = Json::object();
        for (const auto &[field, value] :
             points[i].assignment.items())
            point.set(field, value);
        if (results[i].isObject()) {
            for (const auto &[key, value] : results[i].items())
                point.set(key, value);
        }
        point.set("config_hash", hexHash(hashes[i]));
        pointsJson.push(point);
    }

    Json doc = Json::object();
    doc.set("sweep", spec.name);
    doc.set("runner", spec.runner);
    // Bind the metadata before iterating: range-for does not
    // lifetime-extend a temporary through the .items() call.
    const Json metadata = runner.metadata();
    for (const auto &[key, value] : metadata.items())
        doc.set(key, value);
    doc.set("spec", spec.toJson());
    doc.set("grid_points", points.size());
    Json cache = Json::object();
    cache.set("hits", report.cacheHits);
    cache.set("misses", report.cacheMisses);
    doc.set("cache", cache);
    doc.set("points", pointsJson);

    report.doc = std::move(doc);
    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return report;
}

} // namespace qc
