#include "sweep/SweepEngine.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "sweep/WorkStealingPool.hh"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

std::string
hexHash(std::uint64_t hash)
{
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(hash));
    return out;
}

/** Reuse key: a point is the same point iff both its merged
 *  configuration and its axis assignment match. Config alone is
 *  not enough for byte-identity: the aggregated object interleaves
 *  assignment keys with runner metrics, so a config-equal point
 *  whose assignment moved (axis <-> base across spec edits) must
 *  re-execute rather than replay a differently-shaped object. */
std::string
reuseKey(const SweepPoint &point)
{
    return point.config.dump(0) + '\n' + point.assignment.dump(0);
}

/**
 * Index a resume document's stored points by reuseKey of its own
 * spec expansion. A matched point's stored object is replayed into
 * the output *verbatim* — aggregation produced it from the same
 * assignment and the same (pure-function-of-config) metrics, so it
 * is byte-identical to what a fresh run would emit. Matching on
 * the full canonical config (not the 64-bit hash) makes collisions
 * impossible; the stored config_hash is still cross-checked to
 * catch edited or version-skewed files. Stored points carrying
 * {"error": ...} — including the "interrupted" stubs a checkpoint
 * writes for not-yet-computed points — are omitted so resume
 * retries them. Returned pointers alias `doc`.
 */
std::map<std::string, const Json *>
resumeIndex(const Json &doc, const std::string &runner)
{
    if (!doc.isObject() || !doc.has("spec") || !doc.has("points")
        || !doc.at("points").isArray()) {
        throw std::invalid_argument(
            "resume document is not a sweep output (expected an "
            "object with \"spec\" and \"points\")");
    }
    const SweepSpec prior = SweepSpec::fromJson(doc.at("spec"));
    if (prior.runner != runner) {
        throw std::invalid_argument(
            "resume document was produced by runner \""
            + prior.runner + "\" but this sweep uses \"" + runner
            + "\"");
    }
    const std::vector<SweepPoint> priorPoints = prior.expand();
    const Json &stored = doc.at("points");
    if (stored.size() != priorPoints.size()) {
        throw std::invalid_argument(
            "resume document is truncated or edited: \"points\" "
            "holds "
            + std::to_string(stored.size())
            + " entries but its spec expands to "
            + std::to_string(priorPoints.size()));
    }

    std::map<std::string, const Json *> out;
    for (std::size_t j = 0; j < priorPoints.size(); ++j) {
        const Json &point = stored.at(j);
        if (!point.isObject()) {
            throw std::invalid_argument(
                "resume document point "+ std::to_string(j)
                + " is not an object");
        }
        if (point.has("error"))
            continue;
        const std::string expected =
            hexHash(priorPoints[j].config.hash());
        if (!point.has("config_hash")
            || point.at("config_hash") != Json(expected)) {
            throw std::invalid_argument(
                "resume document point " + std::to_string(j)
                + " has a config_hash mismatch (file edited, or "
                  "produced by an incompatible engine version)");
        }
        out.emplace(reuseKey(priorPoints[j]), &point);
    }
    return out;
}

} // namespace

SweepReport
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const SweepRunner &runner =
        SweepRunnerRegistry::instance().get(spec.runner);
    const std::vector<SweepPoint> points = spec.expand();
    if (points.empty()) {
        // A zero-point sweep (a programmatic spec with no grids)
        // would emit a vacuous document; refuse loudly instead.
        throw std::invalid_argument(
            "sweep spec \"" + spec.name
            + "\" expands to zero points; give it at least one "
              "grid (axes may be empty for a one-point sweep)");
    }
    const auto t0 = Clock::now();

    // Per-point config memoization: duplicate configurations
    // (overlapping grids, degenerate axes) execute once; the rest
    // are cache hits. The dedup keys on the full canonical dump —
    // the 64-bit hash is reported per point but never trusted for
    // equality, so a hash collision cannot alias two configs. The
    // hit/miss split is a function of the point list alone, so it
    // is deterministic across thread counts.
    std::vector<std::uint64_t> hashes(points.size());
    std::vector<std::size_t> canonical(points.size());
    std::vector<std::size_t> unique;
    {
        std::map<std::string, std::size_t> first;
        for (std::size_t i = 0; i < points.size(); ++i) {
            hashes[i] = points[i].config.hash();
            auto [it, inserted] =
                first.emplace(points[i].config.dump(0), i);
            canonical[i] = it->second;
            if (inserted)
                unique.push_back(i);
        }
    }

    SweepReport report;
    report.points = points.size();
    report.cacheMisses = unique.size();
    report.cacheHits = points.size() - unique.size();

    // Execute the unique points on the work-stealing pool; results
    // land in expansion-order slots, so aggregation below is
    // deterministic no matter how the pool schedules them.
    std::vector<Json> results(points.size());
    // char, not bool: vector<bool> is bit-packed, and workers set
    // failure flags for distinct indices concurrently.
    std::vector<char> pointFailed(points.size(), 0);

    // Resume: points whose (config, assignment) pair already
    // appears in the prior output replay the stored object
    // verbatim; unique configs every point of which is replayed
    // never reach the pool. Only the schedule changes — the
    // aggregated document below is byte-identical to a fresh run.
    std::vector<const Json *> reused(points.size(), nullptr);
    if (options.resume) {
        const std::map<std::string, const Json *> prior =
            resumeIndex(*options.resume, spec.runner);
        for (std::size_t i = 0; i < points.size(); ++i) {
            auto it = prior.find(reuseKey(points[i]));
            if (it != prior.end())
                reused[i] = it->second;
        }
    }
    std::vector<char> needRun(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!reused[i])
            needRun[canonical[i]] = 1;
    }
    std::vector<std::size_t> toRun;
    toRun.reserve(unique.size());
    for (std::size_t index : unique) {
        if (needRun[index])
            toRun.push_back(index);
    }
    report.resumed = unique.size() - toRun.size();
    report.executed = toRun.size();

    // One flat object per point — the axis assignment first, then
    // the runner's metrics (runner keys win on collision, e.g.
    // "trials" rounded up to a full batch); resumed points replay
    // their stored object. Shared by the final aggregation and the
    // periodic checkpoints, which record not-yet-finished points as
    // {"error": "interrupted..."} stubs that a later --resume
    // re-runs.
    auto buildPoint = [&](std::size_t i, bool finished) {
        if (reused[i])
            return *reused[i];
        Json point = Json::object();
        for (const auto &[field, value] :
             points[i].assignment.items())
            point.set(field, value);
        if (!finished) {
            point.set("error",
                      "interrupted: point not computed before "
                      "this checkpoint");
        } else if (results[canonical[i]].isObject()) {
            for (const auto &[key, value] :
                 results[canonical[i]].items())
                point.set(key, value);
        }
        point.set("config_hash", hexHash(hashes[i]));
        return point;
    };
    auto buildDoc = [&](const std::vector<char> &finished) {
        Json pointsJson = Json::array();
        for (std::size_t i = 0; i < points.size(); ++i)
            pointsJson.push(buildPoint(
                i, reused[i] != nullptr
                       || finished[canonical[i]] != 0));
        Json doc = Json::object();
        doc.set("schema_version", kResultSchemaVersion);
        doc.set("sweep", spec.name);
        doc.set("runner", spec.runner);
        // Bind the metadata before iterating: range-for does not
        // lifetime-extend a temporary through the .items() call.
        const Json metadata = runner.metadata();
        for (const auto &[key, value] : metadata.items())
            doc.set(key, value);
        doc.set("spec", spec.toJson());
        doc.set("grid_points", points.size());
        Json cache = Json::object();
        cache.set("hits", report.cacheHits);
        cache.set("misses", report.cacheMisses);
        doc.set("cache", cache);
        doc.set("points", pointsJson);
        return doc;
    };

    SweepContext context;
    std::mutex progressMutex;
    std::size_t done = 0;
    std::vector<char> finished(points.size(), 0);
    auto lastCheckpoint = t0;
    // Checkpoints replace the target wholesale (write-then-rename),
    // which would clobber a device node, pipe or symlink handed in
    // as the output path (`--out /dev/null`): only checkpoint onto
    // a regular file or a not-yet-existing path.
    std::string checkpointPath = options.checkpointPath;
    if (!checkpointPath.empty()) {
        std::error_code ec;
        const std::filesystem::file_status status =
            std::filesystem::symlink_status(checkpointPath, ec);
        if (!ec && std::filesystem::exists(status)
            && !std::filesystem::is_regular_file(status))
            checkpointPath.clear();
    }
    // Crash durability: atomically replace the checkpoint file
    // (write-then-rename, so a kill never leaves torn JSON). Called
    // under the progress mutex; finished results are write-once, so
    // snapshotting them here is race-free. Best-effort: a failed
    // rename cleans up its temp file and the sweep carries on.
    auto checkpoint = [&](bool force) {
        if (checkpointPath.empty())
            return;
        const auto now = Clock::now();
        if (!force
            && std::chrono::duration<double>(now - lastCheckpoint)
                       .count()
                   < options.checkpointSeconds)
            return;
        lastCheckpoint = now;
        const std::string tmp = checkpointPath + ".tmp";
        buildDoc(finished).saveFile(tmp);
        if (std::rename(tmp.c_str(), checkpointPath.c_str()) != 0)
            std::remove(tmp.c_str());
    };
    auto tick = [&](std::size_t index, bool cached, bool resumed) {
        if (!options.progress)
            return;
        SweepProgress progress;
        progress.done = ++done;
        progress.total = points.size();
        progress.point = &points[index];
        progress.cached = cached;
        progress.resumed = resumed;
        options.progress(progress);
    };

    WorkStealingPool pool(options.threads);
    pool.run(toRun.size(), [&](std::size_t task) {
        const std::size_t index = toRun[task];
        try {
            results[index] =
                runner.runPoint(points[index].config, context);
        } catch (const std::exception &e) {
            Json error = Json::object();
            error.set("error", e.what());
            results[index] = std::move(error);
            pointFailed[index] = 1;
        }
        std::lock_guard<std::mutex> lock(progressMutex);
        finished[index] = 1;
        checkpoint(/*force=*/false);
        tick(index, /*cached=*/false, /*resumed=*/false);
    });
    // Leave the checkpoint file equal to the final document, so a
    // kill between here and the caller's own write still resumes
    // to a complete sweep.
    checkpoint(/*force=*/true);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (canonical[i] != i) {
            pointFailed[i] = pointFailed[canonical[i]];
            tick(i, /*cached=*/true, reused[canonical[i]] != nullptr);
        } else if (!needRun[i]) {
            tick(i, /*cached=*/false, /*resumed=*/true);
        }
        if (reused[i])
            pointFailed[i] = 0;
        if (pointFailed[i])
            ++report.failed;
    }

    report.doc = buildDoc(finished);
    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return report;
}

} // namespace qc
