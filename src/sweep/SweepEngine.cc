#include "sweep/SweepEngine.hh"

#include <chrono>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/DurableFile.hh"
#include "sweep/SweepPlan.hh"
#include "sweep/WorkStealingPool.hh"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

SweepReport
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const auto t0 = Clock::now();

    // The assembler owns expansion, dedup, resume replay and
    // document aggregation — the same layer `qcarch serve` builds
    // its merged document through, which is why the two paths are
    // byte-identical by construction.
    SweepAssembler assembler(spec);
    const SweepPlan &plan = assembler.plan();
    if (options.resume)
        assembler.applyResume(*options.resume);
    const std::vector<std::size_t> toRun = assembler.pending();

    SweepReport report;
    report.points = plan.points.size();
    report.cacheMisses = plan.unique.size();
    report.cacheHits = plan.points.size() - plan.unique.size();
    report.resumed = assembler.resumedCount();
    report.executed = toRun.size();

    SweepContext context;
    std::mutex progressMutex;
    std::size_t done = 0;
    auto lastCheckpoint = t0;
    // Checkpoints replace the target wholesale (write-then-rename),
    // which would clobber a device node, pipe or symlink handed in
    // as the output path (`--out /dev/null`): only checkpoint onto
    // a regular file or a not-yet-existing path.
    std::string checkpointPath = options.checkpointPath;
    if (!checkpointPath.empty()) {
        std::error_code ec;
        const std::filesystem::file_status status =
            std::filesystem::symlink_status(checkpointPath, ec);
        if (!ec && std::filesystem::exists(status)
            && !std::filesystem::is_regular_file(status))
            checkpointPath.clear();
    }
    // Crash durability: atomically AND durably replace the
    // checkpoint file — the temp file and its directory are
    // fsync'd around the rename, so neither a kill nor a power
    // loss can leave a torn or empty-but-renamed checkpoint.
    // Called under the progress mutex; finished results are
    // write-once, so snapshotting them here is race-free.
    // Best-effort: a failed write leaves the previous checkpoint
    // and the sweep carries on.
    auto checkpoint = [&](bool force) {
        if (checkpointPath.empty())
            return;
        const auto now = Clock::now();
        if (!force
            && std::chrono::duration<double>(now - lastCheckpoint)
                       .count()
                   < options.checkpointSeconds)
            return;
        lastCheckpoint = now;
        try {
            writeFileDurable(checkpointPath,
                             assembler.document().dump(2) + "\n");
        } catch (const std::exception &) {
        }
    };
    auto tick = [&](std::size_t index, bool cached, bool resumed) {
        if (!options.progress)
            return;
        SweepProgress progress;
        progress.done = ++done;
        progress.total = plan.points.size();
        progress.point = &plan.points[index];
        progress.cached = cached;
        progress.resumed = resumed;
        options.progress(progress);
    };

    WorkStealingPool pool(options.threads);
    pool.run(
        toRun.size(),
        [&](std::size_t task) {
            const std::size_t index = toRun[task];
            Json result;
            bool failed = false;
            try {
                result = assembler.runner().runPoint(
                    plan.points[index].config, context);
            } catch (const std::exception &e) {
                result = Json::object();
                result.set("error", e.what());
                failed = true;
            }
            std::lock_guard<std::mutex> lock(progressMutex);
            assembler.setResult(index, std::move(result), failed);
            checkpoint(/*force=*/false);
            tick(index, /*cached=*/false, /*resumed=*/false);
        },
        options.stopRequested);
    // Leave the checkpoint file equal to the final document, so a
    // kill between here and the caller's own write still resumes
    // to a complete sweep. After a requested stop this is the
    // "final checkpoint" the drain contract promises: every
    // finished point saved, every pending point a resumable stub.
    checkpoint(/*force=*/true);
    report.interrupted = assembler.pending().size();
    std::vector<char> wasRun(plan.points.size(), 0);
    for (std::size_t index : toRun)
        wasRun[index] = 1;
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        const std::size_t canon = plan.canonical[i];
        if (canon != i)
            tick(i, /*cached=*/true, assembler.replayed(canon));
        else if (!wasRun[i])
            tick(i, /*cached=*/false, /*resumed=*/true);
    }
    report.failed = assembler.failedPoints();

    report.doc = assembler.document();
    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return report;
}

} // namespace qc
