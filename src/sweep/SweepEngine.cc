#include "sweep/SweepEngine.hh"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/DurableFile.hh"
#include "common/Mutex.hh"
#include "sweep/SweepPlan.hh"
#include "sweep/WorkStealingPool.hh"

namespace qc {

namespace {

using SteadyClock = std::chrono::steady_clock;

/**
 * The engine's shared mutable state during the parallel phase:
 * result slots, checkpoint writes and progress ticks, serialized
 * under one annotated mutex. Pool workers call commit(); the main
 * thread calls finalCheckpoint()/replayTick() after the pool has
 * drained (still through the lock — cheap, and it keeps the
 * annotations unconditional).
 *
 * Checkpoint-before-tick ordering is part of the engine contract:
 * `qcarch sweep`'s crash-at-point fault relies on the K-th executed
 * point being durably checkpointed before its progress tick fires.
 */
class PointSink
{
  public:
    PointSink(SweepAssembler &assembler, const SweepPlan &plan,
              const SweepOptions &options,
              std::string checkpointPath,
              SteadyClock::time_point start)
        : assembler_(&assembler), plan_(plan), options_(options),
          checkpointPath_(std::move(checkpointPath)),
          lastCheckpoint_(start)
    {
    }

    /** Lands one executed result: slot write, periodic checkpoint,
     *  progress tick — atomically with respect to other commits.
     *  `published` marks results newly written to the hoard. */
    void commit(std::size_t index, Json result, bool failed,
                bool published = false) QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        assembler_->setResult(index, std::move(result), failed);
        if (published)
            ++hoardStored_;
        checkpoint(/*force=*/false);
        tick(index, /*cached=*/false, /*resumed=*/false,
             /*hoarded=*/false);
    }

    /** Lands a result served from the hoard cache (read-through
     *  hit): identical to commit() except for accounting and the
     *  progress flag — the document cannot tell them apart. */
    void commitHoarded(std::size_t index, Json result)
        QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        assembler_->setResult(index, std::move(result),
                              /*failed=*/false);
        ++hoardHits_;
        checkpoint(/*force=*/false);
        tick(index, /*cached=*/false, /*resumed=*/false,
             /*hoarded=*/true);
    }

    std::size_t hoardHits() const QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return hoardHits_;
    }

    std::size_t hoardStored() const QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return hoardStored_;
    }

    /** The end-of-run checkpoint: leaves the file equal to the
     *  final document (or, after a drain, to a resumable one). */
    void finalCheckpoint() QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        checkpoint(/*force=*/true);
    }

    /** Progress tick for a point satisfied without executing
     *  (memo duplicate or resume replay). */
    void replayTick(std::size_t index, bool cached, bool resumed)
        QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        tick(index, cached, resumed, /*hoarded=*/false);
    }

  private:
    /**
     * Crash durability: atomically AND durably replace the
     * checkpoint file — the temp file and its directory are
     * fsync'd around the rename, so neither a kill nor a power
     * loss can leave a torn or empty-but-renamed checkpoint.
     * Finished results are write-once, so snapshotting the
     * document under the lock is race-free. Best-effort: a failed
     * write leaves the previous checkpoint and the sweep carries
     * on.
     */
    void checkpoint(bool force) QC_REQUIRES(mutex_)
    {
        if (checkpointPath_.empty())
            return;
        const auto now = SteadyClock::now();
        if (!force
            && std::chrono::duration<double>(now - lastCheckpoint_)
                       .count()
                   < options_.checkpointSeconds)
            return;
        lastCheckpoint_ = now;
        try {
            writeFileDurable(checkpointPath_,
                             assembler_->document().dump(2) + "\n");
        } catch (const std::exception &) {
        }
    }

    void tick(std::size_t index, bool cached, bool resumed,
              bool hoarded) QC_REQUIRES(mutex_)
    {
        if (!options_.progress)
            return;
        SweepProgress progress;
        progress.done = ++done_;
        progress.total = plan_.points.size();
        progress.point = &plan_.points[index];
        progress.cached = cached;
        progress.resumed = resumed;
        progress.hoarded = hoarded;
        options_.progress(progress);
    }

    mutable Mutex mutex_;
    SweepAssembler *const assembler_ QC_PT_GUARDED_BY(mutex_);
    const SweepPlan &plan_;
    const SweepOptions &options_;
    const std::string checkpointPath_;
    SteadyClock::time_point lastCheckpoint_ QC_GUARDED_BY(mutex_);
    std::size_t done_ QC_GUARDED_BY(mutex_) = 0;
    std::size_t hoardHits_ QC_GUARDED_BY(mutex_) = 0;
    std::size_t hoardStored_ QC_GUARDED_BY(mutex_) = 0;
};

/**
 * Checkpoints replace the target wholesale (write-then-rename),
 * which would clobber a device node, pipe or symlink handed in as
 * the output path (`--out /dev/null`): only checkpoint onto a
 * regular file or a not-yet-existing path.
 */
std::string
safeCheckpointPath(const std::string &requested)
{
    if (requested.empty())
        return requested;
    std::error_code ec;
    const std::filesystem::file_status status =
        std::filesystem::symlink_status(requested, ec);
    if (!ec && std::filesystem::exists(status)
        && !std::filesystem::is_regular_file(status))
        return "";
    return requested;
}

} // namespace

SweepReport
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const auto t0 = SteadyClock::now();

    // The assembler owns expansion, dedup, resume replay and
    // document aggregation — the same layer `qcarch serve` builds
    // its merged document through, which is why the two paths are
    // byte-identical by construction.
    SweepAssembler assembler(spec);
    const SweepPlan &plan = assembler.plan();
    if (options.resume)
        assembler.applyResume(*options.resume);
    const std::vector<std::size_t> toRun = assembler.pending();

    SweepReport report;
    report.points = plan.points.size();
    report.cacheMisses = plan.unique.size();
    report.cacheHits = plan.points.size() - plan.unique.size();
    report.resumed = assembler.resumedCount();
    report.executed = toRun.size();

    SweepContext context;
    PointSink sink(assembler, plan, options,
                   safeCheckpointPath(options.checkpointPath), t0);

    WorkStealingPool pool(options.threads);
    pool.run(
        toRun.size(),
        [&](std::size_t task) {
            const std::size_t index = toRun[task];
            // Read-through: a valid hoard object replaces the
            // computation outright. The stored result is the
            // runner's own metrics JSON, so the document is
            // byte-identical either way.
            if (options.hoard) {
                Json stored;
                if (options.hoard->fetch(
                        spec.runner, plan.points[index].config,
                        stored)) {
                    sink.commitHoarded(index, std::move(stored));
                    return;
                }
            }
            Json result;
            bool failed = false;
            try {
                result = assembler.runner().runPoint(
                    plan.points[index].config, context);
            } catch (const std::exception &e) {
                result = Json::object();
                result.set("error", e.what());
                failed = true;
            }
            // Write-behind: publish before the commit tick so the
            // crash-at-point fault (which fires inside the tick)
            // proves "ticked ⇒ both checkpointed and hoarded".
            bool published = false;
            if (options.hoard && !failed) {
                published = options.hoard->store(
                    spec.runner, plan.points[index].config,
                    result);
            }
            sink.commit(index, std::move(result), failed,
                        published);
        },
        options.stopRequested);
    // Leave the checkpoint file equal to the final document, so a
    // kill between here and the caller's own write still resumes
    // to a complete sweep. After a requested stop this is the
    // "final checkpoint" the drain contract promises: every
    // finished point saved, every pending point a resumable stub.
    sink.finalCheckpoint();
    report.interrupted = assembler.pending().size();
    std::vector<char> wasRun(plan.points.size(), 0);
    for (std::size_t index : toRun)
        wasRun[index] = 1;
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        const std::size_t canon = plan.canonical[i];
        if (canon != i)
            sink.replayTick(i, /*cached=*/true,
                            assembler.replayed(canon));
        else if (!wasRun[i])
            sink.replayTick(i, /*cached=*/false, /*resumed=*/true);
    }
    report.failed = assembler.failedPoints();
    report.hoardHits = sink.hoardHits();
    report.hoardStored = sink.hoardStored();
    report.executed -= report.hoardHits;

    report.doc = assembler.document();
    report.wallSeconds =
        std::chrono::duration<double>(SteadyClock::now() - t0)
            .count();
    return report;
}

} // namespace qc
