/**
 * @file
 * The shared expansion/aggregation layer under every sweep
 * executor. A SweepPlan is the deterministic expansion of a spec
 * plus its config-dedup structure; a SweepAssembler owns the plan,
 * collects per-unique-point results from any source — the
 * in-process pool (runSweep), a resume document (PR 5 replay), or
 * shard deltas streamed back by `qcarch work` processes — and
 * emits the aggregated document.
 *
 * This layer is what makes the distributed path's headline
 * guarantee cheap to keep: `qcarch serve` + N workers and a
 * single-shot `qcarch sweep` build their documents through the
 * same code over the same plan, so equal results give byte-equal
 * documents by construction.
 */

#ifndef QC_SWEEP_SWEEP_PLAN_HH
#define QC_SWEEP_SWEEP_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sweep/SweepRunner.hh"
#include "sweep/SweepSpec.hh"

namespace qc {

/** "%016llx" of a config hash — the document's config_hash key. */
std::string hexConfigHash(std::uint64_t hash);

/**
 * A spec's expanded point list with its dedup structure. Every
 * field is a pure function of the spec, so two processes expanding
 * the same spec agree on every index — shard descriptors in the
 * serve protocol are just indices into this plan.
 */
struct SweepPlan
{
    std::vector<SweepPoint> points; ///< expansion order
    std::vector<std::uint64_t> hashes;    ///< per-point config hash
    /** points[i] is a duplicate of points[canonical[i]] (the first
     *  point with the same canonical config); canonical[i] == i for
     *  the unique points. */
    std::vector<std::size_t> canonical;
    std::vector<std::size_t> unique; ///< canonical indices, in order

    /** Expand and dedup; throws std::invalid_argument on zero-point
     *  specs (a vacuous document helps nobody). */
    static SweepPlan expand(const SweepSpec &spec);
};

/**
 * Collects results for a plan and emits the aggregated document.
 * Not thread-safe; callers serialize access (the engine uses its
 * progress mutex, the coordinator is single-threaded).
 */
class SweepAssembler
{
  public:
    /** Expands the spec (copied) and resolves the runner. */
    explicit SweepAssembler(const SweepSpec &spec);

    const SweepPlan &plan() const { return plan_; }
    const SweepSpec &spec() const { return spec_; }
    const SweepRunner &runner() const { return *runner_; }

    /**
     * Replay stored points from a previous output of the same
     * runner (`--resume`, or a coordinator restarted on its own
     * partial checkpoint): points matched by canonical config +
     * axis assignment (config_hash cross-checked) adopt the stored
     * object verbatim, so the final document is byte-identical to
     * a fresh run. Stored {"error": ...} points — including
     * "interrupted" checkpoint stubs — are skipped so they re-run.
     * Throws std::invalid_argument on malformed/truncated/edited
     * documents (see docs/SWEEPS.md).
     */
    void applyResume(const Json &resumeDoc);

    /** Unique (canonical) indices still needing execution, in
     *  order. Shrinks as results arrive. */
    std::vector<std::size_t> pending() const;

    /** True once the canonical index has a result (or every point
     *  of its config was replayed by applyResume). */
    bool has(std::size_t canonicalIndex) const;

    /**
     * Store the runner's metrics (or {"error": ...}) for one
     * canonical index. `failed` marks points that threw. Returns
     * false (and changes nothing) if the index already has a
     * result — the idempotent-duplicate case when a reclaimed
     * shard was also committed by its presumed-dead owner.
     */
    bool setResult(std::size_t canonicalIndex, Json result,
                   bool failed);

    bool complete() const { return pendingCount_ == 0; }

    /** True if the expanded point adopted a stored object from
     *  applyResume. */
    bool replayed(std::size_t pointIndex) const
    {
        return isReplayed_[pointIndex] != 0;
    }

    /** Unique points adopted from the resume document. */
    std::size_t resumedCount() const { return resumed_; }

    /** Expanded points whose result carries {"error": ...} (memo
     *  duplicates of a failed point included; replayed points never
     *  count). Meaningful once complete. */
    std::size_t failedPoints() const;

    /**
     * The aggregated document: one flat object per expanded point
     * (assignment, then runner metrics, then config_hash), document
     * metadata, spec provenance, cache accounting. Pending points
     * are recorded as {"error": "interrupted: ..."} stubs a later
     * resume re-runs, so the document is valid at any moment — the
     * checkpoint, the final output and the serve-side merged
     * document are all this one function.
     */
    Json document() const;

  private:
    SweepSpec spec_;
    const SweepRunner *runner_;
    SweepPlan plan_;
    std::vector<Json> results_;      ///< by canonical index
    std::vector<char> haveResult_;   ///< by canonical index
    std::vector<char> resultFailed_; ///< by canonical index
    std::vector<Json> replayed_;     ///< by point index; Null = none
    std::vector<char> isReplayed_;   ///< by point index
    std::size_t pendingCount_ = 0;
    std::size_t resumed_ = 0;
};

/**
 * Index a resume document's stored points by the reuse key of its
 * own spec expansion (canonical config + axis assignment). Stored
 * points carrying {"error": ...} are omitted so resume retries
 * them. Returned pointers alias `doc`. Throws std::invalid_argument
 * on malformed, truncated or edited documents and on runner
 * mismatch.
 */
std::map<std::string, const Json *>
buildResumeIndex(const Json &doc, const std::string &runner);

} // namespace qc

#endif // QC_SWEEP_SWEEP_PLAN_HH
