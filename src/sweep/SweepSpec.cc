#include "sweep/SweepSpec.hh"

#include <algorithm>
#include <stdexcept>

#include "sweep/SweepRunner.hh"

namespace qc {

namespace {

SweepAxis::Leg
legFromJson(const Json &json)
{
    if (!json.isObject() || !json.has("field")
        || !json.has("values")) {
        throw std::invalid_argument(
            "sweep axis must be an object with \"field\" and "
            "\"values\" keys (or a \"zip\" group of them); got "
            + json.dump(0));
    }
    SweepAxis::Leg leg;
    leg.field = json.at("field").asString();
    const Json &values = json.at("values");
    if (!values.isArray() || values.size() == 0) {
        throw std::invalid_argument(
            "sweep axis \"" + leg.field
            + "\": \"values\" must be a non-empty array");
    }
    for (std::size_t i = 0; i < values.size(); ++i)
        leg.values.push_back(values.at(i));
    return leg;
}

SweepAxis
axisFromJson(const Json &json)
{
    SweepAxis axis;
    if (json.isObject() && json.has("zip")) {
        const Json &legs = json.at("zip");
        if (!legs.isArray() || legs.size() < 2) {
            throw std::invalid_argument(
                "sweep \"zip\" group needs at least two legs");
        }
        for (std::size_t i = 0; i < legs.size(); ++i)
            axis.legs.push_back(legFromJson(legs.at(i)));
        for (const SweepAxis::Leg &leg : axis.legs) {
            if (leg.values.size() != axis.length()) {
                throw std::invalid_argument(
                    "sweep zip legs must have equal lengths: \""
                    + axis.legs.front().field + "\" has "
                    + std::to_string(axis.length()) + ", \""
                    + leg.field + "\" has "
                    + std::to_string(leg.values.size()));
            }
        }
    } else {
        axis.legs.push_back(legFromJson(json));
    }
    return axis;
}

Json
axisToJson(const SweepAxis &axis)
{
    auto legJson = [](const SweepAxis::Leg &leg) {
        Json j = Json::object();
        j.set("field", leg.field);
        Json values = Json::array();
        for (const Json &v : leg.values)
            values.push(v);
        j.set("values", values);
        return j;
    };
    if (axis.legs.size() == 1)
        return legJson(axis.legs.front());
    Json legs = Json::array();
    for (const SweepAxis::Leg &leg : axis.legs)
        legs.push(legJson(leg));
    Json j = Json::object();
    j.set("zip", legs);
    return j;
}

std::vector<SweepAxis>
axesFromJson(const Json &json)
{
    if (!json.isArray())
        throw std::invalid_argument(
            "sweep \"axes\" must be an array");
    std::vector<SweepAxis> axes;
    for (std::size_t i = 0; i < json.size(); ++i)
        axes.push_back(axisFromJson(json.at(i)));
    return axes;
}

} // namespace

std::size_t
SweepGrid::points() const
{
    std::size_t n = 1;
    for (const SweepAxis &axis : axes) {
        // Overflow-checked product: a hostile spec's cartesian
        // blow-up must be a clean error, not a size_t wrap that
        // under-reports the grid (and then over-allocates).
        std::size_t next = 0;
        if (__builtin_mul_overflow(n, axis.length(), &next)
            || next > kMaxSweepPoints) {
            throw std::invalid_argument(
                "sweep grid expands past the "
                + std::to_string(kMaxSweepPoints)
                + "-point limit");
        }
        n = next;
    }
    return n;
}

SweepSpec
SweepSpec::fromJson(const Json &json)
{
    if (!json.isObject())
        throw std::invalid_argument(
            "sweep spec must be a JSON object");
    // Unknown document keys fail fast too: a typo'd "axis" must
    // not silently collapse the sweep to a bare-base point.
    for (const auto &[key, value] : json.items()) {
        if (key != "name" && key != "runner" && key != "base"
            && key != "axes" && key != "grids") {
            throw std::invalid_argument(
                "unknown sweep spec key \"" + key
                + "\"; expected name, runner, base, axes, grids");
        }
    }
    SweepSpec spec;
    spec.name = json.getString("name", "");
    spec.runner = json.getString("runner", spec.runner);
    if (json.has("base"))
        spec.base = json.at("base");

    if (json.has("axes") && json.has("grids")) {
        throw std::invalid_argument(
            "sweep spec: give either top-level \"axes\" (single "
            "grid) or \"grids\", not both");
    }
    if (json.has("axes")) {
        SweepGrid grid;
        grid.axes = axesFromJson(json.at("axes"));
        spec.grids.push_back(std::move(grid));
    } else if (json.has("grids")) {
        const Json &grids = json.at("grids");
        if (!grids.isArray() || grids.size() == 0) {
            throw std::invalid_argument(
                "sweep \"grids\" must be a non-empty array");
        }
        for (std::size_t i = 0; i < grids.size(); ++i) {
            const Json &g = grids.at(i);
            if (!g.isObject()) {
                throw std::invalid_argument(
                    "sweep grid entries must be objects with "
                    "\"axes\" (and optional \"base\")");
            }
            for (const auto &[key, value] : g.items()) {
                if (key != "base" && key != "axes") {
                    throw std::invalid_argument(
                        "unknown sweep grid key \"" + key
                        + "\"; expected base, axes");
                }
            }
            SweepGrid grid;
            if (g.has("base"))
                grid.base = g.at("base");
            if (g.has("axes"))
                grid.axes = axesFromJson(g.at("axes"));
            spec.grids.push_back(std::move(grid));
        }
    } else {
        // A bare base is a one-point sweep (grid with no axes).
        spec.grids.push_back(SweepGrid{});
    }

    // Fail fast on unknown runners and fields (zip-length
    // mismatches already threw during axis parsing above).
    spec.validate();
    return spec;
}

SweepSpec
SweepSpec::load(const std::string &path)
{
    return fromJson(Json::loadFile(path));
}

Json
SweepSpec::toJson() const
{
    Json j = Json::object();
    if (!name.empty())
        j.set("name", name);
    j.set("runner", runner);
    j.set("base", base);
    if (grids.size() == 1 && grids.front().base == Json::object()) {
        Json axes = Json::array();
        for (const SweepAxis &axis : grids.front().axes)
            axes.push(axisToJson(axis));
        j.set("axes", axes);
    } else {
        Json gridsJson = Json::array();
        for (const SweepGrid &grid : grids) {
            Json g = Json::object();
            if (grid.base != Json::object())
                g.set("base", grid.base);
            Json axes = Json::array();
            for (const SweepAxis &axis : grid.axes)
                axes.push(axisToJson(axis));
            g.set("axes", axes);
            gridsJson.push(g);
        }
        j.set("grids", gridsJson);
    }
    return j;
}

std::size_t
SweepSpec::points() const
{
    std::size_t n = 0;
    for (const SweepGrid &grid : grids) {
        n += grid.points();
        if (n > kMaxSweepPoints) {
            throw std::invalid_argument(
                "sweep spec expands past the "
                + std::to_string(kMaxSweepPoints)
                + "-point limit");
        }
    }
    return n;
}

namespace {

/** Dotted leaf paths of a config object ({"a": {"b": 1}} -> a.b). */
void
flattenPaths(const Json &json, const std::string &prefix,
             std::vector<std::string> &out)
{
    for (const auto &[key, value] : json.items()) {
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        if (value.isObject() && value.items().size() > 0)
            flattenPaths(value, path, out);
        else
            out.push_back(path);
    }
}

} // namespace

void
SweepSpec::validate() const
{
    const SweepRunner &r =
        SweepRunnerRegistry::instance().get(runner);
    const std::vector<std::string> valid = r.fields();
    auto check = [&](const std::string &field, const char *where) {
        if (std::find(valid.begin(), valid.end(), field)
            == valid.end()) {
            throw std::invalid_argument(
                "unknown sweep " + std::string(where) + " \""
                + field + "\" for runner \"" + r.name()
                + "\"; valid fields: " + joinNames(valid));
        }
    };
    // Base keys get the same fail-fast treatment as axis fields: a
    // typo ("pgate") must not silently sweep at the default value.
    std::vector<std::string> basePaths;
    flattenPaths(base, "", basePaths);
    for (const SweepGrid &grid : grids)
        flattenPaths(grid.base, "", basePaths);
    for (const std::string &path : basePaths)
        check(path, "base key");
    for (const SweepGrid &grid : grids) {
        for (const SweepAxis &axis : grid.axes) {
            for (const SweepAxis::Leg &leg : axis.legs)
                check(leg.field, "field");
        }
    }
}

std::vector<SweepPoint>
SweepSpec::expand() const
{
    validate();
    std::vector<SweepPoint> points;
    for (const SweepGrid &grid : grids) {
        const Json gridBase = mergeJson(base, grid.base);
        // Odometer over the axes: the last axis varies fastest.
        std::vector<std::size_t> at(grid.axes.size(), 0);
        const std::size_t total = grid.points();
        for (std::size_t i = 0; i < total; ++i) {
            SweepPoint point;
            point.config = gridBase;
            point.assignment = Json::object();
            for (std::size_t a = 0; a < grid.axes.size(); ++a) {
                for (const SweepAxis::Leg &leg :
                     grid.axes[a].legs) {
                    const Json &value = leg.values[at[a]];
                    setJsonPath(point.config, leg.field, value);
                    point.assignment.set(leg.field, value);
                }
            }
            points.push_back(std::move(point));
            for (std::size_t a = grid.axes.size(); a-- > 0;) {
                if (++at[a] < grid.axes[a].length())
                    break;
                at[a] = 0;
            }
        }
    }
    return points;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

void
setJsonPath(Json &object, const std::string &path, Json value)
{
    const std::size_t dot = path.find('.');
    if (dot == std::string::npos) {
        object.set(path, std::move(value));
        return;
    }
    const std::string head = path.substr(0, dot);
    Json child = object.has(head) && object.at(head).isObject()
        ? object.at(head)
        : Json::object();
    setJsonPath(child, path.substr(dot + 1), std::move(value));
    object.set(head, std::move(child));
}

Json
mergeJson(const Json &base, const Json &overlay)
{
    if (!base.isObject() || !overlay.isObject())
        return overlay;
    Json out = base;
    for (const auto &[key, value] : overlay.items()) {
        if (out.has(key) && out.at(key).isObject()
            && value.isObject()) {
            out.set(key, mergeJson(out.at(key), value));
        } else {
            out.set(key, value);
        }
    }
    return out;
}

} // namespace qc
