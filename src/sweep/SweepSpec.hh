/**
 * @file
 * Declarative description of an experiment sweep: a named runner, a
 * base configuration, and one or more grids of axes over the
 * runner's configuration fields. The paper's result sweeps — error
 * -rate planes (Fig 4/8), architecture comparisons (Fig 15), level
 * scaling studies — are each one SweepSpec, expanded to a
 * deterministic point list and executed by the engine in
 * SweepEngine.hh.
 *
 * JSON shape (see docs/SWEEPS.md for the full format):
 *
 *     {
 *       "name": "fig4_grid",
 *       "runner": "mc-prep",
 *       "base": {"trials": 2000000, "seed": 20080623},
 *       "axes": [
 *         {"field": "strategy",
 *          "values": ["basic", "verify_and_correct"]},
 *         {"field": "pGate", "values": [1e-5, 1e-4, 1e-3]},
 *         {"field": "pMove", "values": [1e-7, 1e-6]}
 *       ]
 *     }
 *
 * Axes expand as a cartesian product in declaration order (the last
 * axis varies fastest, like nested loops). An axis may instead be a
 * *zip* group — parallel legs of equal length that advance together,
 * for sweeping tuples like (arch, generatorsPerSite) pairs:
 *
 *     {"zip": [{"field": "arch", "values": ["qla", "gqla"]},
 *              {"field": "generatorsPerSite", "values": [1, 4]}]}
 *
 * A spec may hold several "grids" (each with optional base
 * overrides); the point list is their concatenation. Field names
 * are dotted paths into the runner's config JSON ("errors.pGate");
 * unknown fields throw std::invalid_argument listing the runner's
 * valid fields.
 */

#ifndef QC_SWEEP_SWEEP_SPEC_HH
#define QC_SWEEP_SWEEP_SPEC_HH

#include <cstddef>
#include <string>
#include <vector>

#include "api/Json.hh"

namespace qc {

/** One sweep dimension: a single field, or zipped parallel legs. */
struct SweepAxis
{
    struct Leg
    {
        std::string field;        ///< dotted config path
        std::vector<Json> values; ///< one per step along the axis
    };

    /** size() == 1 for a plain axis, > 1 for a zip group. */
    std::vector<Leg> legs;

    /** Steps along this axis (equal for every leg of a zip). */
    std::size_t length() const
    {
        return legs.empty() ? 0 : legs.front().values.size();
    }
};

/**
 * Largest point count a spec may expand to. A hostile (or typo'd)
 * spec whose cartesian product explodes must fail with a clear
 * error while still cheap to detect — not overflow std::size_t in
 * points() or OOM materializing the list. The largest shipped
 * paper grid is ~10^3 points; 2^22 leaves three orders of
 * magnitude of headroom.
 */
constexpr std::size_t kMaxSweepPoints = std::size_t(1) << 22;

/** One cartesian grid of axes, with optional base overrides. */
struct SweepGrid
{
    Json base = Json::object();  ///< merged over the spec base
    std::vector<SweepAxis> axes; ///< product in declaration order

    /** Points this grid expands to (product of axis lengths).
     *  Throws std::invalid_argument beyond kMaxSweepPoints. */
    std::size_t points() const;
};

/**
 * One expanded sweep point: the fully merged configuration handed
 * to the runner, and the flat axis assignment that labels the point
 * in the aggregated output.
 */
struct SweepPoint
{
    Json config;     ///< base + grid base + axis assignments
    Json assignment; ///< dotted-field -> value, axes only
};

/** A complete sweep description; see the file comment for JSON. */
struct SweepSpec
{
    std::string name;                 ///< output label
    std::string runner = "experiment"; ///< SweepRunnerRegistry key
    Json base = Json::object();       ///< shared config defaults
    std::vector<SweepGrid> grids;     ///< concatenated point lists

    /**
     * Parse a spec document. A top-level "axes" array is shorthand
     * for a single grid. Throws std::invalid_argument on malformed
     * shapes, unknown runners, unknown axis fields (listing the
     * valid ones) and zip legs of unequal length.
     */
    static SweepSpec fromJson(const Json &json);

    /** fromJson(Json::loadFile(path)). */
    static SweepSpec load(const std::string &path);

    Json toJson() const;

    /** Total points across all grids. */
    std::size_t points() const;

    /**
     * Check the runner exists and every axis field is one it
     * publishes, without materializing the point list. Throws
     * std::invalid_argument listing the valid names otherwise.
     */
    void validate() const;

    /**
     * Expand to the deterministic point list: grids in order, each
     * grid a cartesian product with the last axis varying fastest.
     * Re-validates axis fields against the runner's field list.
     */
    std::vector<SweepPoint> expand() const;
};

/**
 * Set a dotted path ("errors.pGate") in a JSON object, creating
 * intermediate objects as needed.
 */
void setJsonPath(Json &object, const std::string &path, Json value);

/** Deep-merge overlay onto base: overlay's keys win; nested
 *  objects merge recursively. */
Json mergeJson(const Json &base, const Json &overlay);

/** "a, b, c" — for error messages listing valid names. */
std::string joinNames(const std::vector<std::string> &names);

} // namespace qc

#endif // QC_SWEEP_SWEEP_SPEC_HH
