#include "sweep/SweepPlan.hh"

#include <cstdio>
#include <stdexcept>

namespace qc {

namespace {

/** Reuse key: a point is the same point iff both its merged
 *  configuration and its axis assignment match. Config alone is
 *  not enough for byte-identity: the aggregated object interleaves
 *  assignment keys with runner metrics, so a config-equal point
 *  whose assignment moved (axis <-> base across spec edits) must
 *  re-execute rather than replay a differently-shaped object. */
std::string
reuseKey(const SweepPoint &point)
{
    return point.config.dump(0) + '\n' + point.assignment.dump(0);
}

} // namespace

std::string
hexConfigHash(std::uint64_t hash)
{
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(hash));
    return out;
}

SweepPlan
SweepPlan::expand(const SweepSpec &spec)
{
    SweepPlan plan;
    plan.points = spec.expand();
    if (plan.points.empty()) {
        // A zero-point sweep (a programmatic spec with no grids)
        // would emit a vacuous document; refuse loudly instead.
        throw std::invalid_argument(
            "sweep spec \"" + spec.name
            + "\" expands to zero points; give it at least one "
              "grid (axes may be empty for a one-point sweep)");
    }

    // Per-point config dedup: duplicate configurations (overlapping
    // grids, degenerate axes) execute once; the rest are cache
    // hits. The dedup keys on the full canonical dump — the 64-bit
    // hash is reported per point but never trusted for equality, so
    // a hash collision cannot alias two configs. The hit/miss split
    // is a function of the point list alone, so it is deterministic
    // across thread counts and across processes.
    plan.hashes.resize(plan.points.size());
    plan.canonical.resize(plan.points.size());
    std::map<std::string, std::size_t> first;
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        plan.hashes[i] = plan.points[i].config.hash();
        auto [it, inserted] =
            first.emplace(plan.points[i].config.dump(0), i);
        plan.canonical[i] = it->second;
        if (inserted)
            plan.unique.push_back(i);
    }
    return plan;
}

std::map<std::string, const Json *>
buildResumeIndex(const Json &doc, const std::string &runner)
{
    if (!doc.isObject() || !doc.has("spec") || !doc.has("points")
        || !doc.at("points").isArray()) {
        throw std::invalid_argument(
            "resume document is not a sweep output (expected an "
            "object with \"spec\" and \"points\")");
    }
    const SweepSpec prior = SweepSpec::fromJson(doc.at("spec"));
    if (prior.runner != runner) {
        throw std::invalid_argument(
            "resume document was produced by runner \""
            + prior.runner + "\" but this sweep uses \"" + runner
            + "\"");
    }
    const std::vector<SweepPoint> priorPoints = prior.expand();
    const Json &stored = doc.at("points");
    if (stored.size() != priorPoints.size()) {
        throw std::invalid_argument(
            "resume document is truncated or edited: \"points\" "
            "holds "
            + std::to_string(stored.size())
            + " entries but its spec expands to "
            + std::to_string(priorPoints.size()));
    }

    std::map<std::string, const Json *> out;
    for (std::size_t j = 0; j < priorPoints.size(); ++j) {
        const Json &point = stored.at(j);
        if (!point.isObject()) {
            throw std::invalid_argument(
                "resume document point " + std::to_string(j)
                + " is not an object");
        }
        if (point.has("error"))
            continue;
        const std::string expected =
            hexConfigHash(priorPoints[j].config.hash());
        if (!point.has("config_hash")
            || point.at("config_hash") != Json(expected)) {
            throw std::invalid_argument(
                "resume document point " + std::to_string(j)
                + " has a config_hash mismatch (file edited, or "
                  "produced by an incompatible engine version)");
        }
        out.emplace(reuseKey(priorPoints[j]), &point);
    }
    return out;
}

SweepAssembler::SweepAssembler(const SweepSpec &spec)
    : spec_(spec),
      runner_(&SweepRunnerRegistry::instance().get(spec.runner)),
      plan_(SweepPlan::expand(spec))
{
    results_.resize(plan_.points.size());
    haveResult_.assign(plan_.points.size(), 0);
    resultFailed_.assign(plan_.points.size(), 0);
    replayed_.resize(plan_.points.size());
    isReplayed_.assign(plan_.points.size(), 0);
    pendingCount_ = plan_.unique.size();
}

void
SweepAssembler::applyResume(const Json &resumeDoc)
{
    const std::map<std::string, const Json *> prior =
        buildResumeIndex(resumeDoc, spec_.runner);
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        auto it = prior.find(reuseKey(plan_.points[i]));
        if (it != prior.end()) {
            replayed_[i] = *it->second; // copied: doc may be local
            isReplayed_[i] = 1;
        }
    }
    // A unique config still needs execution if any of its points
    // was not replayed (a replayed duplicate does not cover a
    // non-replayed sibling — the sibling needs the raw metrics).
    std::vector<char> needRun(plan_.points.size(), 0);
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        if (!isReplayed_[i] && !haveResult_[plan_.canonical[i]])
            needRun[plan_.canonical[i]] = 1;
    }
    std::size_t pendingNow = 0;
    for (std::size_t index : plan_.unique)
        pendingNow += needRun[index];
    resumed_ = pendingCount_ - pendingNow;
    pendingCount_ = pendingNow;
}

std::vector<std::size_t>
SweepAssembler::pending() const
{
    std::vector<char> needRun(plan_.points.size(), 0);
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        if (!isReplayed_[i] && !haveResult_[plan_.canonical[i]])
            needRun[plan_.canonical[i]] = 1;
    }
    std::vector<std::size_t> out;
    for (std::size_t index : plan_.unique) {
        if (needRun[index])
            out.push_back(index);
    }
    return out;
}

bool
SweepAssembler::has(std::size_t canonicalIndex) const
{
    if (haveResult_[canonicalIndex])
        return true;
    // Covered if every expansion of this config was replayed.
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        if (plan_.canonical[i] == canonicalIndex && !isReplayed_[i])
            return false;
    }
    return true;
}

bool
SweepAssembler::setResult(std::size_t canonicalIndex, Json result,
                          bool failed)
{
    if (canonicalIndex >= plan_.points.size()
        || plan_.canonical[canonicalIndex] != canonicalIndex) {
        throw std::invalid_argument(
            "setResult: " + std::to_string(canonicalIndex)
            + " is not a canonical point index");
    }
    if (has(canonicalIndex))
        return false;
    results_[canonicalIndex] = std::move(result);
    haveResult_[canonicalIndex] = 1;
    resultFailed_[canonicalIndex] = failed ? 1 : 0;
    --pendingCount_;
    return true;
}

std::size_t
SweepAssembler::failedPoints() const
{
    std::size_t failed = 0;
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        if (!isReplayed_[i] && resultFailed_[plan_.canonical[i]])
            ++failed;
    }
    return failed;
}

Json
SweepAssembler::document() const
{
    // One flat object per point — the axis assignment first, then
    // the runner's metrics (runner keys win on collision, e.g.
    // "trials" rounded up to a full batch); replayed points emit
    // their stored object verbatim; pending points are recorded as
    // {"error": "interrupted..."} stubs that a later resume
    // re-runs.
    Json pointsJson = Json::array();
    for (std::size_t i = 0; i < plan_.points.size(); ++i) {
        if (isReplayed_[i]) {
            pointsJson.push(replayed_[i]);
            continue;
        }
        const std::size_t canon = plan_.canonical[i];
        Json point = Json::object();
        for (const auto &[field, value] :
             plan_.points[i].assignment.items())
            point.set(field, value);
        if (!haveResult_[canon]) {
            point.set("error",
                      "interrupted: point not computed before "
                      "this checkpoint");
        } else if (results_[canon].isObject()) {
            for (const auto &[key, value] : results_[canon].items())
                point.set(key, value);
        }
        point.set("config_hash", hexConfigHash(plan_.hashes[i]));
        pointsJson.push(point);
    }

    Json doc = Json::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("sweep", spec_.name);
    doc.set("runner", spec_.runner);
    // Bind the metadata before iterating: range-for does not
    // lifetime-extend a temporary through the .items() call.
    const Json metadata = runner_->metadata();
    for (const auto &[key, value] : metadata.items())
        doc.set(key, value);
    doc.set("spec", spec_.toJson());
    doc.set("grid_points", plan_.points.size());
    Json cache = Json::object();
    cache.set("hits", plan_.points.size() - plan_.unique.size());
    cache.set("misses", plan_.unique.size());
    doc.set("cache", cache);
    doc.set("points", pointsJson);
    return doc;
}

} // namespace qc
