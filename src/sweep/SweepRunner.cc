#include "sweep/SweepRunner.hh"

#include <stdexcept>

#include "error/BatchAncillaSim.hh"
#include "layout/Builders.hh"
#include "sweep/SweepSpec.hh"

namespace qc {

namespace {

// ----------------------------------------------------------------
// "experiment": the qc::Experiment facade, one point = one Result.
// ----------------------------------------------------------------

class ExperimentRunner : public SweepRunner
{
  public:
    std::string name() const override { return "experiment"; }

    std::string
    description() const override
    {
        return "qc::runExperiment over ExperimentConfig fields "
               "(workloads, schedules, architectures, code levels, "
               "error rates)";
    }

    std::vector<std::string>
    fields() const override
    {
        return {
            "arch",
            "areaBudget",
            "bits",
            "cacheSlots",
            "calibrateFactories",
            "calibrationTrials",
            "codeLevel",
            "demandBins",
            "errors.pGate",
            "errors.pMove",
            "generatorsPerSite",
            "lowering.maxRotK",
            "pi8PerMs",
            "qft.maxK",
            "qft.withSwaps",
            "schedule",
            "synth.maxError",
            "synth.maxSyllables",
            "synth.pureHT",
            "synth.tCostWeight",
            "tech.t1q_ns",
            "tech.t2q_ns",
            "tech.tmeas_ns",
            "tech.tmove_ns",
            "tech.tprep_ns",
            "tech.tturn_ns",
            "teleport_ns",
            "timeLimit_ns",
            "workload",
            "zeroPerMs",
            "zeroPerMsOfAverage",
        };
    }

    Json
    runPoint(const Json &config,
             SweepContext &context) const override
    {
        const ExperimentConfig c = ExperimentConfig::fromJson(config);
        SharedWorkload workload = context.workload(c);

        // Figure 8-style derived throttling: a supply rate given as
        // a fraction of this workload's own average bandwidth at
        // speed of data (computed once per workload, not per
        // fraction point).
        const double fraction =
            config.getDouble("zeroPerMsOfAverage", 0.0);
        if (fraction > 0) {
            if (c.schedule != ScheduleMode::Throttled) {
                throw std::invalid_argument(
                    "zeroPerMsOfAverage is a throttled-mode knob; "
                    "this point's schedule is \""
                    + scheduleModeName(c.schedule)
                    + "\" — set \"schedule\": \"throttled\" or "
                      "drop the fraction");
            }
            ExperimentConfig throttled = c;
            throttled.zeroPerMs =
                context.averageZeroBandwidth(c, workload) * fraction;
            Experiment experiment(throttled, std::move(workload));
            Json out = experiment.run().summaryJson();
            out.set("zero_supply_per_ms", throttled.zeroPerMs);
            return out;
        }
        Experiment experiment(c, std::move(workload));
        return experiment.run().summaryJson();
    }
};

// ----------------------------------------------------------------
// "mc-prep": BatchAncillaSim Monte Carlo points (Figure 4 planes).
// ----------------------------------------------------------------

struct McStrategy
{
    const char *key;
    ZeroPrepStrategy strategy;
    bool pi8;
};

constexpr McStrategy kMcStrategies[] = {
    {"basic", ZeroPrepStrategy::Basic, false},
    {"verify_only", ZeroPrepStrategy::VerifyOnly, false},
    {"correct_only", ZeroPrepStrategy::CorrectOnly, false},
    {"verify_and_correct", ZeroPrepStrategy::VerifyAndCorrect,
     false},
    {"pi8_conversion", ZeroPrepStrategy::VerifyAndCorrect, true},
};

const McStrategy &
mcStrategy(const std::string &key)
{
    for (const McStrategy &s : kMcStrategies) {
        if (key == s.key)
            return s;
    }
    std::vector<std::string> keys;
    for (const McStrategy &s : kMcStrategies)
        keys.push_back(s.key);
    throw std::invalid_argument("unknown mc-prep strategy \"" + key
                                + "\"; expected one of: "
                                + joinNames(keys));
}

CorrectionSemantics
mcSemantics(const std::string &key)
{
    if (key == "discard_on_syndrome")
        return CorrectionSemantics::DiscardOnSyndrome;
    if (key == "apply_fix")
        return CorrectionSemantics::ApplyFix;
    throw std::invalid_argument(
        "unknown mc-prep semantics \"" + key
        + "\"; expected discard_on_syndrome or apply_fix");
}

class McPrepRunner : public SweepRunner
{
  public:
    std::string name() const override { return "mc-prep"; }

    std::string
    description() const override
    {
        return "BatchAncillaSim Monte Carlo ancilla-prep error "
               "rates over (strategy, pGate, pMove) grids";
    }

    std::vector<std::string>
    fields() const override
    {
        return {"maxFaults", "pGate", "pMove", "sampler", "seed",
                "semantics", "strategy", "trials",
                "trialsPerStratum", "width", "wordsPerQubit"};
    }

    Json
    metadata() const override
    {
        Json j = Json::object();
        j.set("engine", "BatchAncillaSim");
        return j;
    }

    Json
    runPoint(const Json &config, SweepContext &) const override
    {
        ErrorParams errors;
        errors.pGate = config.getDouble("pGate", errors.pGate);
        errors.pMove = config.getDouble("pMove", errors.pMove);
        const std::uint64_t trials = static_cast<std::uint64_t>(
            config.getInt("trials", 400000));
        const std::uint64_t seed = static_cast<std::uint64_t>(
            config.getInt("seed", 20080623));
        const McStrategy &strategy =
            mcStrategy(config.getString("strategy", "basic"));
        const CorrectionSemantics semantics = mcSemantics(
            config.getString("semantics", "discard_on_syndrome"));

        BatchSimConfig batch;
        batch.wordsPerQubit = static_cast<int>(config.getInt(
            "wordsPerQubit", batch.wordsPerQubit));
        // One thread per point: the sweep engine owns parallelism
        // across points. (The engine is bit-identical across its
        // own thread counts anyway; this keeps a point's cost
        // independent of the pool size.)
        batch.threads = 1;
        // SIMD width of the batch engine. Every width is
        // bit-identical, so this (like QC_FORCE_WIDTH, which
        // overrides "auto") never shows up in the results.
        const std::string widthKey =
            config.getString("width", "auto");
        if (!simd::parseWidth(widthKey, &batch.width))
            throw std::invalid_argument(
                "unknown mc-prep width \"" + widthKey + "\"");

        // Movement charges calibrated from the routed Fig 11
        // layout — identical for every point, so computed once.
        static const MovementModel movement = calibrateMovement(
            buildSimpleFactory(), IonTrapParams::paper());

        const ErrorParams paper = ErrorParams::paper();
        Json out = Json::object();
        out.set("paper_point", errors.pGate == paper.pGate
                                   && errors.pMove == paper.pMove);

        BatchAncillaSim sim(errors, movement, seed, semantics,
                            batch);

        const std::string sampler =
            config.getString("sampler", "naive");
        if (sampler == "stratified") {
            // Rare-event importance sampling (see
            // error/ImportanceSampler.hh): tight CIs at
            // deep-subthreshold points where `trials` naive trials
            // would record zero failures.
            ImportanceConfig ic;
            ic.maxFaults = static_cast<int>(
                config.getInt("maxFaults", ic.maxFaults));
            ic.trialsPerStratum = static_cast<std::uint64_t>(
                config.getInt("trialsPerStratum",
                              static_cast<std::int64_t>(
                                  ic.trialsPerStratum)));
            const StratifiedEstimate est = strategy.pi8
                ? sim.estimateStratifiedPi8(ic)
                : sim.estimateStratified(strategy.strategy, ic);
            const Interval ci = est.errorInterval();
            out.set("error_rate", est.errorRate());
            out.set("ci_lo", ci.lo);
            out.set("ci_hi", ci.hi);
            out.set("gate_sites",
                    static_cast<std::int64_t>(est.gateSites));
            out.set("move_sites",
                    static_cast<std::int64_t>(est.moveSites));
            out.set("strata",
                    static_cast<std::int64_t>(est.strata.size()));
            out.set("truncated_prior", est.truncatedPrior);
            out.set("trials", est.totalTrials);
            return out;
        }
        if (sampler != "naive")
            throw std::invalid_argument(
                "unknown mc-prep sampler \"" + sampler
                + "\"; expected naive or stratified");

        const PrepEstimate est = strategy.pi8
            ? sim.estimatePi8(trials)
            : sim.estimate(strategy.strategy, trials);
        const Interval ci = est.errorInterval();
        out.set("error_rate", est.errorRate());
        out.set("ci_lo", ci.lo);
        out.set("ci_hi", ci.hi);
        out.set("verify_fail_rate", est.discardRate());
        out.set("trials", est.trials);
        return out;
    }
};

} // namespace

SharedWorkload
SweepContext::workload(const ExperimentConfig &config)
{
    const std::string key = config.workloadKey();
    std::promise<SharedWorkload> promise;
    std::shared_future<SharedWorkload> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(key, future);
            builder = true;
        } else {
            future = it->second;
        }
    }
    // Waiting happens outside the lock so one long synthesis does
    // not serialize unrelated lookups.
    if (!builder)
        return future.get();
    // First requester builds (synthesis, lowering and the dataflow
    // graph); concurrent requesters for the same workload block on
    // the future above.
    try {
        FowlerSynth synth(config.synth);
        SharedWorkload built = makeSharedWorkload(
            WorkloadRegistry::instance().build(
                config.workload, synth, config.params));
        promise.set_value(built);
        return built;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        cache_.erase(key);
        throw;
    }
}

std::size_t
SweepContext::workloadsBuilt()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

BandwidthPerMs
SweepContext::averageZeroBandwidth(const ExperimentConfig &config,
                                   SharedWorkload workload)
{
    // Normalize away the supply knobs: fraction points differing
    // only in their throttle share one yardstick entry.
    ExperimentConfig ideal = config;
    ideal.schedule = ScheduleMode::SpeedOfData;
    ideal.zeroPerMs = 0;
    ideal.pi8PerMs = 0;
    ideal.timeLimit = 0;
    const std::string key = ideal.toJson().dump(0);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = bandwidth_.find(key);
        if (it != bandwidth_.end())
            return it->second;
    }
    Experiment experiment(ideal, std::move(workload));
    const BandwidthPerMs rate =
        experiment.run().bandwidth.zeroPerMs();
    std::lock_guard<std::mutex> lock(mutex_);
    bandwidth_.emplace(key, rate);
    return rate;
}

SweepRunnerRegistry &
SweepRunnerRegistry::instance()
{
    static SweepRunnerRegistry *registry = [] {
        auto *r = new SweepRunnerRegistry;
        registerBuiltinSweepRunners(*r);
        return r;
    }();
    return *registry;
}

void
SweepRunnerRegistry::add(const std::string &key,
                         std::shared_ptr<const SweepRunner> runner)
{
    runners_[key] = std::move(runner);
}

bool
SweepRunnerRegistry::contains(const std::string &key) const
{
    return runners_.count(key) != 0;
}

std::vector<std::string>
SweepRunnerRegistry::keys() const
{
    std::vector<std::string> out;
    for (const auto &[key, runner] : runners_)
        out.push_back(key);
    return out;
}

const SweepRunner &
SweepRunnerRegistry::get(const std::string &key) const
{
    auto it = runners_.find(key);
    if (it == runners_.end()) {
        throw std::invalid_argument(
            "unknown sweep runner \"" + key
            + "\"; registered runners: " + joinNames(keys()));
    }
    return *it->second;
}

void
registerBuiltinSweepRunners(SweepRunnerRegistry &registry)
{
    registry.add("experiment",
                 std::make_shared<const ExperimentRunner>());
    registry.add("mc-prep", std::make_shared<const McPrepRunner>());
}

} // namespace qc
