/**
 * @file
 * The parallel sweep executor: expands a SweepSpec, memoizes
 * duplicate points by configuration hash, runs the unique points on
 * a work-stealing thread pool, and aggregates the results into one
 * JSON document in deterministic (expansion) order.
 *
 * Output is bit-identical for a given spec regardless of thread
 * count: results land in expansion-order slots, the memo cache is
 * computed from the point list (not the schedule), and nothing
 * wall-clock-dependent enters the document. Wall time and thread
 * count are reported out-of-band in the SweepReport.
 *
 * Document shape (BENCH_*.json-compatible: flat metric keys per
 * point under a "points" array):
 *
 *     {
 *       "sweep": "<spec name>",
 *       "runner": "<runner key>",
 *       ...runner metadata ("engine": ...),
 *       "spec": { ...the spec itself, for provenance... },
 *       "grid_points": N,
 *       "cache": {"hits": H, "misses": M},
 *       "points": [ {<axis assignments> + <runner metrics>}, ... ]
 *     }
 */

#ifndef QC_SWEEP_SWEEP_ENGINE_HH
#define QC_SWEEP_SWEEP_ENGINE_HH

#include <cstddef>
#include <functional>

#include "sweep/SweepRunner.hh"
#include "sweep/SweepSpec.hh"

namespace qc {

/** One progress tick, delivered serially (under the engine lock). */
struct SweepProgress
{
    std::size_t done = 0;  ///< points finished (cache hits included)
    std::size_t total = 0; ///< expanded point count
    /** The point that just finished. */
    const SweepPoint *point = nullptr;
    bool cached = false;   ///< satisfied from the memo cache
};

/** Execution knobs; the spec itself stays machine-independent. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency().
     *  Results are independent of this value. */
    int threads = 1;

    /** Progress sink; called serially, may be empty. */
    std::function<void(const SweepProgress &)> progress;
};

/** Outcome of one sweep run. */
struct SweepReport
{
    Json doc;                   ///< the aggregated document
    std::size_t points = 0;     ///< expanded point count
    std::size_t cacheHits = 0;  ///< points served from the memo
    std::size_t cacheMisses = 0;///< points actually executed
    std::size_t failed = 0;     ///< points that threw (see "error")
    double wallSeconds = 0;     ///< not part of doc (determinism)
};

/**
 * Expand and execute a sweep. Spec-shape problems (unknown runner
 * or axis fields, zip mismatches) throw std::invalid_argument;
 * per-point execution errors are recorded on the point as
 * {"error": message} and counted in SweepReport::failed.
 */
SweepReport runSweep(const SweepSpec &spec,
                     const SweepOptions &options = {});

} // namespace qc

#endif // QC_SWEEP_SWEEP_ENGINE_HH
