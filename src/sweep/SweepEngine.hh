/**
 * @file
 * The parallel sweep executor: expands a SweepSpec, memoizes
 * duplicate points by configuration hash, runs the unique points on
 * a work-stealing thread pool, and aggregates the results into one
 * JSON document in deterministic (expansion) order.
 *
 * Output is bit-identical for a given spec regardless of thread
 * count: results land in expansion-order slots, the memo cache is
 * computed from the point list (not the schedule), and nothing
 * wall-clock-dependent enters the document. Wall time and thread
 * count are reported out-of-band in the SweepReport.
 *
 * Document shape (BENCH_*.json-compatible: flat metric keys per
 * point under a "points" array):
 *
 *     {
 *       "schema_version": 2,
 *       "sweep": "<spec name>",
 *       "runner": "<runner key>",
 *       ...runner metadata ("engine": ...),
 *       "spec": { ...the spec itself, for provenance... },
 *       "grid_points": N,
 *       "cache": {"hits": H, "misses": M},
 *       "points": [ {<axis assignments> + <runner metrics>}, ... ]
 *     }
 */

#ifndef QC_SWEEP_SWEEP_ENGINE_HH
#define QC_SWEEP_SWEEP_ENGINE_HH

#include <cstddef>
#include <functional>

#include "sweep/ResultCache.hh"
#include "sweep/SweepRunner.hh"
#include "sweep/SweepSpec.hh"

namespace qc {

/** One progress tick, delivered serially (under the engine lock). */
struct SweepProgress
{
    std::size_t done = 0;  ///< points finished (cache hits included)
    std::size_t total = 0; ///< expanded point count
    /** The point that just finished. */
    const SweepPoint *point = nullptr;
    bool cached = false;   ///< satisfied from the memo cache
    bool resumed = false;  ///< satisfied from the resume document
    bool hoarded = false;  ///< satisfied from the hoard cache
};

/** Execution knobs; the spec itself stays machine-independent. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency().
     *  Results are independent of this value. */
    int threads = 1;

    /** Progress sink; called serially, may be empty. */
    std::function<void(const SweepProgress &)> progress;

    /**
     * A previous sweep output to resume from (`qcarch sweep
     * --resume`): points whose configuration already appears in it
     * — matched by the full canonical config of the resume
     * document's own spec expansion, with the stored config_hash
     * cross-checked — are served from the stored results instead
     * of re-executing. Stored points carrying an {"error": ...}
     * are re-run. The aggregated document is byte-identical to a
     * fresh single-shot run of the same spec: resume accounting is
     * reported only out-of-band in SweepReport. The document must
     * come from the same runner (and engine version); malformed or
     * truncated documents throw std::invalid_argument. Not owned;
     * must outlive runSweep.
     */
    const Json *resume = nullptr;

    /**
     * Crash durability: when non-empty, the engine periodically
     * writes the aggregated document to this path during the run
     * (atomic write-then-rename, so a kill never leaves torn
     * JSON). Not-yet-computed points are recorded as
     * {"error": "interrupted: ..."} stubs, which a later `resume`
     * of the same file re-runs — so a killed sweep restarts from
     * exactly the points it finished. `qcarch sweep --out X`
     * checkpoints to X. The final checkpoint equals the final
     * document.
     */
    std::string checkpointPath;

    /** Minimum seconds between checkpoint writes (0 = write after
     *  every completed point). */
    double checkpointSeconds = 5.0;

    /**
     * Graceful-drain hook, polled between points (a running point
     * always completes). When it returns true the pool stops
     * taking new work, a final checkpoint is written (pending
     * points as "interrupted" stubs a later resume re-runs), and
     * runSweep returns with SweepReport::interrupted counting the
     * undone points. `qcarch sweep` wires its SIGINT/SIGTERM flag
     * here. May be empty.
     */
    std::function<bool()> stopRequested;

    /**
     * Optional persistent result cache (`qcarch sweep --hoard`,
     * docs/HOARD.md). When set, each unique point is first looked
     * up in the cache (read-through, from the pool workers) and
     * each newly computed non-error result is published back
     * (write-behind). Hits are byte-identical to cold computation
     * by construction — the stored object is the runner's own
     * metrics JSON — so the document never depends on the cache
     * state. The production implementation is HoardStore, injected
     * by the CLI; the engine sees only the ResultCache interface.
     * Not owned; must outlive runSweep. Thread-safe.
     */
    ResultCache *hoard = nullptr;
};

/** Outcome of one sweep run. */
struct SweepReport
{
    Json doc;                   ///< the aggregated document
    std::size_t points = 0;     ///< expanded point count
    std::size_t cacheHits = 0;  ///< points served from the memo
    std::size_t cacheMisses = 0;///< unique points (memo misses)
    std::size_t resumed = 0;    ///< unique points from the resume doc
    /** Unique points actually run (hoard hits excluded). */
    std::size_t executed = 0;
    std::size_t failed = 0;     ///< points that threw (see "error")
    /** Unique points served from the hoard cache. */
    std::size_t hoardHits = 0;
    /** Newly computed points published to the hoard cache. */
    std::size_t hoardStored = 0;
    /** Unique points left undone by a stopRequested drain; the doc
     *  holds "interrupted" stubs for them (0 = ran to completion). */
    std::size_t interrupted = 0;
    double wallSeconds = 0;     ///< not part of doc (determinism)
};

/**
 * Expand and execute a sweep. Spec-shape problems (unknown runner
 * or axis fields, zip mismatches), zero-point specs and malformed
 * resume documents throw std::invalid_argument; per-point
 * execution errors are recorded on the point as {"error": message}
 * and counted in SweepReport::failed.
 */
SweepReport runSweep(const SweepSpec &spec,
                     const SweepOptions &options = {});

} // namespace qc

#endif // QC_SWEEP_SWEEP_ENGINE_HH
