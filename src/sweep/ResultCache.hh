/**
 * @file
 * The sweep engine's view of a persistent result cache: fetch a
 * previously computed result for a (runner, config) identity, and
 * publish a newly computed one. HoardStore (src/hoard/) is the one
 * production implementation; the engine deliberately sees only this
 * interface so the sweep layer never includes hoard headers — the
 * module DAG runs sweep -> hoard via dependency injection at the
 * CLI, not via an include edge (enforced by qclint's layering rule
 * against tools/layers.json).
 */

#ifndef QC_SWEEP_RESULT_CACHE_HH
#define QC_SWEEP_RESULT_CACHE_HH

#include <string>

#include "api/Json.hh"

namespace qc {

class ResultCache
{
  public:
    virtual ~ResultCache() = default;

    /**
     * Read-through lookup. On a valid hit, assigns the stored
     * result and returns true; any invalid or absent entry is a
     * miss. Must be thread-safe: the engine calls it from pool
     * workers. A hit must be byte-identical to cold computation of
     * the same point — the engine folds it into the aggregated
     * document without re-validation.
     */
    virtual bool fetch(const std::string &runner, const Json &config,
                       Json &result) = 0;

    /**
     * Publish a computed result (write-behind). Returns true if a
     * new entry was written; false for duplicates and for results
     * the cache refuses (e.g. {"error": ...}). Thread-safe.
     */
    virtual bool store(const std::string &runner, const Json &config,
                       const Json &result) = 0;
};

} // namespace qc

#endif // QC_SWEEP_RESULT_CACHE_HH
