/**
 * @file
 * The unit of work a sweep executes: a SweepRunner turns one point
 * configuration (JSON) into one point result (JSON). Runners are
 * registered by string key — the SweepSpec's "runner" field — and
 * publish the configuration fields a spec may put on its axes, so
 * bad specs fail fast with the valid field list in the error.
 *
 * Built-ins:
 *
 *  - "experiment"  qc::runExperiment over ExperimentConfig JSON
 *                  (workload, bits, codeLevel, schedule, arch,
 *                  errors.pGate, ... — every knob of the facade),
 *                  plus the derived field "zeroPerMsOfAverage" for
 *                  Figure 8-style throttling at a fraction of the
 *                  workload's own average bandwidth. Workload
 *                  builds (synthesis included) are shared across
 *                  points through the SweepContext cache.
 *
 *  - "mc-prep"     BatchAncillaSim Monte Carlo estimation of the
 *                  encoded-zero preparation strategies and the pi/8
 *                  conversion (Figure 4 error-rate planes):
 *                  strategy, pGate, pMove, trials, seed, semantics,
 *                  wordsPerQubit.
 *
 * Every runner must be a pure function of the point configuration
 * (seeded Monte Carlo included) so sweep output is bit-identical
 * regardless of thread count or scheduling.
 */

#ifndef QC_SWEEP_SWEEP_RUNNER_HH
#define QC_SWEEP_SWEEP_RUNNER_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/Experiment.hh"
#include "api/Json.hh"

namespace qc {

/**
 * Shared state one sweep run threads through its points: the
 * cross-point workload cache. Thread-safe; the first point to need
 * a workload builds it — synthesis, lowering AND the dataflow
 * graph over the lowered circuit — and every other point shares
 * the immutable SharedWorkload bundle (no per-point synthesis,
 * copy or graph construction). Concurrent requests for the same
 * workload block on that one build.
 */
class SweepContext
{
  public:
    /** The built workload bundle for the config's workloadKey(). */
    SharedWorkload workload(const ExperimentConfig &config);

    /** Distinct workloads built so far. */
    std::size_t workloadsBuilt();

    /**
     * The workload's average encoded-zero bandwidth (per ms) at
     * speed of data under this config — the Figure 8 yardstick.
     * Cached by the normalized speed-of-data config, so fraction
     * sweeps compute it once per workload instead of once per
     * point. Racing points may both compute it (deterministic, so
     * harmless); the first store wins.
     */
    BandwidthPerMs
    averageZeroBandwidth(const ExperimentConfig &config,
                         SharedWorkload workload);

  private:
    std::mutex mutex_;
    std::map<std::string, std::shared_future<SharedWorkload>>
        cache_;
    std::map<std::string, BandwidthPerMs> bandwidth_;
};

/** Turns one point configuration into one point result. */
class SweepRunner
{
  public:
    virtual ~SweepRunner() = default;

    /** Registry key ("experiment", "mc-prep"). */
    virtual std::string name() const = 0;

    /** One-line description for `qcarch list runners`. */
    virtual std::string description() const = 0;

    /** Dotted config fields a spec may sweep, sorted. */
    virtual std::vector<std::string> fields() const = 0;

    /** Document-level keys merged into the aggregated output
     *  ("engine": "BatchAncillaSim"). */
    virtual Json metadata() const { return Json::object(); }

    /**
     * Run one point. Must be safe to call concurrently from many
     * threads and deterministic in `config`. User-input problems
     * throw std::invalid_argument; the engine records the message
     * on the point rather than abandoning the sweep.
     */
    virtual Json runPoint(const Json &config,
                          SweepContext &context) const = 0;
};

/** Process-wide runner registry; built-ins self-register. */
class SweepRunnerRegistry
{
  public:
    static SweepRunnerRegistry &instance();

    /** Register (or replace) a runner under a lookup key. */
    void add(const std::string &key,
             std::shared_ptr<const SweepRunner> runner);

    bool contains(const std::string &key) const;

    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** Look up a runner; throws std::invalid_argument listing the
     *  registered keys on unknowns. */
    const SweepRunner &get(const std::string &key) const;

  private:
    std::map<std::string, std::shared_ptr<const SweepRunner>>
        runners_;
};

/** Registers the built-in runners (called once by instance()). */
void registerBuiltinSweepRunners(SweepRunnerRegistry &registry);

} // namespace qc

#endif // QC_SWEEP_SWEEP_RUNNER_HH
