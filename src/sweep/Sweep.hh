/**
 * @file
 * Single facade header for the sweep subsystem. Consumers — the
 * qcarch CLI, the figure/table benches, tests — include this one
 * header and get:
 *
 *  - qc::SweepSpec            declarative sweep descriptions
 *                             (cartesian + zipped axes, grid
 *                             unions, JSON round-trip)
 *  - qc::SweepRunner /        pluggable point executors
 *    qc::SweepRunnerRegistry  ("experiment", "mc-prep")
 *  - qc::runSweep             the parallel executor: work-stealing
 *                             pool, config-hash memoization,
 *                             deterministic aggregation
 *
 * See docs/SWEEPS.md for the spec format and CLI usage, and
 * src/sweep/README.md for the module tour.
 */

#ifndef QC_SWEEP_SWEEP_HH
#define QC_SWEEP_SWEEP_HH

#include "sweep/SweepEngine.hh"
#include "sweep/SweepPlan.hh"
#include "sweep/SweepRunner.hh"
#include "sweep/SweepSpec.hh"

#endif // QC_SWEEP_SWEEP_HH
