/**
 * @file
 * A small work-stealing task pool for index-addressed work: N
 * workers, each owning a deque of task indices, popping their own
 * front and stealing a victim's back when empty. Built for the
 * sweep engine's point lists, where tasks vary wildly in cost (a
 * 2M-trial Monte Carlo point next to a cached analytic one) and
 * results are written to index-addressed slots, so scheduling
 * order never affects output.
 *
 * Tasks are seeded round-robin in contiguous runs so neighbouring
 * points (which tend to share workloads and cost profiles) start on
 * the same worker, and stealing only rebalances the tail.
 */

#ifndef QC_SWEEP_WORK_STEALING_POOL_HH
#define QC_SWEEP_WORK_STEALING_POOL_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/Mutex.hh"

namespace qc {

class WorkStealingPool
{
  public:
    /** threads == 0 selects std::thread::hardware_concurrency(). */
    explicit WorkStealingPool(int threads)
    {
        if (threads <= 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            threads = hw > 0 ? static_cast<int>(hw) : 1;
        }
        workers_ = static_cast<std::size_t>(threads);
    }

    std::size_t workers() const { return workers_; }

    /**
     * Run body(index) for every index in [0, tasks), distributed
     * over the pool. Returns when all tasks finished. If any body
     * throws, the first exception (in worker order) is rethrown
     * after the pool drains; remaining tasks still run.
     *
     * `stop` (may be empty) is polled before each task is taken:
     * once it returns true, workers take no further tasks and run()
     * returns after in-flight tasks complete — the graceful-drain
     * path behind `qcarch sweep`'s SIGINT/SIGTERM handling.
     * Skipped tasks are simply never invoked.
     */
    void
    run(std::size_t tasks,
        const std::function<void(std::size_t)> &body,
        const std::function<bool()> &stop = {}) const
    {
        if (tasks == 0)
            return;
        const std::size_t n = std::min(workers_, tasks);

        // Seed contiguous runs of tasks round-robin across workers.
        // No worker threads exist yet, but the queues are guarded
        // state: lock anyway (uncontended) so the annotations hold
        // everywhere.
        std::vector<Shard> shards(n);
        const std::size_t chunk = (tasks + n - 1) / n;
        for (std::size_t w = 0, next = 0; w < n; ++w) {
            MutexLock lock(shards[w].mutex);
            for (std::size_t i = 0;
                 i < chunk && next < tasks; ++i, ++next)
                shards[w].queue.push_back(next);
        }

        std::vector<std::exception_ptr> errors(n);
        auto worker = [&](std::size_t self) {
            for (;;) {
                if (stop && stop())
                    return;
                std::optional<std::size_t> task =
                    popOwn(shards[self]);
                for (std::size_t victim = 0;
                     !task && victim < n; ++victim) {
                    if (victim != self)
                        task = steal(shards[victim]);
                }
                if (!task)
                    return;
                try {
                    body(*task);
                } catch (...) {
                    if (!errors[self])
                        errors[self] = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(n > 1 ? n - 1 : 0);
        for (std::size_t w = 1; w < n; ++w)
            threads.emplace_back(worker, w);
        worker(0);
        for (std::thread &t : threads)
            t.join();
        for (const std::exception_ptr &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
    }

  private:
    struct Shard
    {
        Mutex mutex;
        std::deque<std::size_t> queue QC_GUARDED_BY(mutex);
    };

    static std::optional<std::size_t>
    popOwn(Shard &shard)
    {
        MutexLock lock(shard.mutex);
        if (shard.queue.empty())
            return std::nullopt;
        const std::size_t task = shard.queue.front();
        shard.queue.pop_front();
        return task;
    }

    static std::optional<std::size_t>
    steal(Shard &shard)
    {
        MutexLock lock(shard.mutex);
        if (shard.queue.empty())
            return std::nullopt;
        const std::size_t task = shard.queue.back();
        shard.queue.pop_back();
        return task;
    }

    std::size_t workers_ = 1;
};

} // namespace qc

#endif // QC_SWEEP_WORK_STEALING_POOL_HH
