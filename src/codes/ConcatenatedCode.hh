/**
 * @file
 * Recursive concatenation of the [[7,1,3]] Steane code (paper
 * Section 2.1: "logical qubits may be re-encoded recursively").
 *
 * The key observation the model rests on is self-similarity: a
 * level-L logical qubit is seven level-(L-1) blocks, and every
 * level-L primitive operation is the level-1 schedule executed with
 * level-(L-1) encoded operations in place of physical ones. The
 * paper's accounting (every useful encoded gate is followed by a
 * QEC step whose data/ancilla interaction rides the critical path)
 * therefore recurses cleanly:
 *
 *     t1q(L)   = t1q(L-1) + qec(L-1)      transversal 1q + lower QEC
 *     t2q(L)   = t2q(L-1) + qec(L-1)      transversal CX + lower QEC
 *     tmeas(L) = tmeas(L-1)               transversal readout;
 *                                         decoding is classical
 *     tprep(L) = zeroPrep(L-1)            a fresh level-(L-1) zero,
 *                                         rebuilt from scratch
 *     qec(L)   = t2q(L) + tmeas(L) + t1q(L)
 *
 * where zeroPrep is the Fig 4c verify-and-correct schedule and qec
 * is the Fig 2 interaction window, both already symbolic in the
 * technology parameters. effectiveTech() packages one level of this
 * recursion as an IonTrapParams whose entries are the latencies of
 * level-(L-1) encoded primitives, so EncodedOpModel(effectiveTech(
 * tech, L)) prices level-L operations with its unmodified formulas.
 *
 * Footprints scale by areaScalePerLevel per level: seven sub-block
 * tiles plus an equal share of intra-block channel/ancilla routing
 * (the macroblock discipline of Section 4.1 applied one level up).
 * Movement latencies scale by the linear size of the tile,
 * moveScalePerLevel = ceil(sqrt(areaScalePerLevel)).
 *
 * All times are ns (Time); areas are level-1 macroblocks (Area).
 */

#ifndef QC_CODES_CONCATENATED_CODE_HH
#define QC_CODES_CONCATENATED_CODE_HH

#include "common/Params.hh"
#include "common/Types.hh"

namespace qc {

/** Level-parameterized tables for concatenated [[7,1,3]] coding. */
class ConcatenatedSteane
{
  public:
    /** Highest recursion level the models cover. */
    static constexpr int maxModeledLevel = 2;

    /**
     * Tile-area growth per concatenation level: seven sub-block
     * tiles plus an equal routing share (Section 4.1's macroblock
     * split between gate locations and channels, one level up).
     */
    static constexpr int areaScalePerLevel = 14;

    /** Linear tile growth per level: ceil(sqrt(areaScalePerLevel)). */
    static constexpr int moveScalePerLevel = 4;

    /**
     * Validate a code recursion level. Throws std::invalid_argument
     * for level < 1 or level > maxModeledLevel with a message naming
     * what is modeled.
     */
    static void validateLevel(int level);

    /** Physical qubits per level-L logical qubit: 7^L. */
    static int physicalQubits(int level);

    /**
     * Data-tile footprint of one level-L logical qubit, in (level-1)
     * macroblocks: areaScalePerLevel^(L-1) times the level-1 tile.
     */
    static Area tileArea(int level);

    /**
     * Effective technology point at a recursion level: the latencies
     * (ns) of level-(L-1) encoded primitive operations, suitable for
     * constructing an EncodedOpModel that prices level-L encoded
     * operations. Level 1 returns `tech` unchanged (primitives are
     * physical ops). The level must pass validateLevel().
     */
    static IonTrapParams effectiveTech(const IonTrapParams &tech,
                                       int level);

    /**
     * One step of the latency recursion: primitives one level up,
     * given primitives at the current level. Exposed for tests that
     * pin the closed-form values.
     */
    static IonTrapParams stepUp(const IonTrapParams &tech);

    /**
     * Level-(L-1)-encoded zero ancillae consumed per *raw* level-L
     * encoded zero block: seven for the block itself plus three for
     * the verification cat (the Fig 4a cat state is three
     * level-(L-1) encoded qubits at level >= 2).
     */
    static constexpr int subBlocksPerRawZero = 10;

    /**
     * Raw verified blocks consumed per *delivered* level-L zero: the
     * delivered block plus the two blocks consumed as bit/phase
     * correction ancillae (Fig 2 / the paper's divide-by-three in
     * the Table 6 throughput derivation).
     */
    static constexpr int rawBlocksPerDelivered = 3;

    /**
     * Level-(L-1) encoded zeros consumed per delivered level-L
     * encoded pi/8 ancilla, on top of one level-L zero: the
     * seven-block cat state of the Fig 5b conversion.
     */
    static constexpr int subBlocksPerPi8Cat = 7;
};

} // namespace qc

#endif // QC_CODES_CONCATENATED_CODE_HH
