#include "codes/EncodedOp.hh"

#include "common/Logging.hh"

namespace qc {

Time
EncodedOpModel::dataLatency(const Gate &gate) const
{
    switch (gate.kind) {
      case GateKind::PrepZ:
      case GateKind::PrepX:
        // Swap in a fresh encoded zero (|+> folds a transversal H
        // into the same handoff window).
        return tech_.t1q;
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
        return tech_.t1q;
      case GateKind::CX:
      case GateKind::CZ:
        return tech_.t2q;
      case GateKind::T:
      case GateKind::Tdg:
        return pi8InteractLatency();
      case GateKind::Measure:
        return tech_.tmeas;
      case GateKind::RotZ:
      case GateKind::CRotZ:
      case GateKind::Toffoli:
        panic("EncodedOpModel: gate ", gateName(gate.kind),
              " must be lowered before encoded execution");
      default:
        panic("EncodedOpModel: unknown gate kind");
    }
}

} // namespace qc
