/**
 * @file
 * The [[7,1,3]] Steane CSS code (paper Section 2.1).
 *
 * Qubits are indexed 0..6 and identified with the columns 1..7 of
 * the [7,4,3] Hamming parity-check matrix (qubit q <-> column value
 * q+1), so the syndrome of an error pattern is simply the XOR of
 * (q+1) over its support and the perfect decoder flips qubit s-1.
 *
 * This module provides the code tables (stabilizer masks, logical
 * operators, encoder schedule), the perfect-decoder logical-error
 * test used by the Monte Carlo engine, and the transversality
 * classification of the logical gate set (Section 2.1: X, Y, Z,
 * Phase, Hadamard and CX are transversal; the pi/8 gate is not).
 */

#ifndef QC_CODES_STEANE_CODE_HH
#define QC_CODES_STEANE_CODE_HH

#include <array>
#include <cstdint>

#include "circuit/Gate.hh"

namespace qc {

/** Static tables and helpers for the [[7,1,3]] code. */
class SteaneCode
{
  public:
    /** Physical qubits per encoded qubit. */
    static constexpr int numPhysical = 7;

    /** Bit mask type over the 7 physical qubits (bit q = qubit q). */
    using Mask = std::uint8_t;

    /** All seven qubits: the weight-7 logical X / logical Z mask. */
    static constexpr Mask logicalMask = 0x7f;

    /**
     * The three X-stabilizer generator supports (identical masks
     * serve as Z-stabilizers; the code is self-dual CSS). Row i
     * contains the qubits whose column value has bit i set.
     */
    static constexpr std::array<Mask, 3> stabilizers = {
        // bit0 of column: qubits {0, 2, 4, 6}
        Mask{0b1010101},
        // bit1 of column: qubits {1, 2, 5, 6}
        Mask{0b1100110},
        // bit2 of column: qubits {3, 4, 5, 6}
        Mask{0b1111000},
    };

    /** Parity of a mask (true = odd). */
    static bool
    parity(Mask m)
    {
        return __builtin_parity(m);
    }

    /**
     * Hamming syndrome of an error pattern: XOR of (q+1) over the
     * support. Zero means "no detectable error".
     */
    static unsigned
    syndromeOf(Mask error)
    {
        unsigned s = 0;
        for (int q = 0; q < numPhysical; ++q) {
            if (error & (Mask{1} << q))
                s ^= static_cast<unsigned>(q + 1);
        }
        return s;
    }

    /**
     * Perfect-decoder correction for a syndrome: the mask to flip
     * (single qubit s-1), or 0 for the trivial syndrome.
     */
    static Mask
    correctionFor(unsigned syndrome)
    {
        return syndrome == 0 ? Mask{0}
                             : static_cast<Mask>(Mask{1}
                                                 << (syndrome - 1));
    }

    /**
     * Parity-aware perfect decode: the minimal-weight error pattern
     * with the given Hamming syndrome AND logical-readout parity.
     * Both quantities are observable on a transversal readout word
     * (the syndrome from the Hamming checks, the parity from the
     * logical operator), and together they pin the error's coset:
     * applying the returned mask always leaves a *stabilizer*
     * residual, never a logical one.
     *
     * This is the fix-up the ApplyFix correction semantics must use.
     * Decoding from the syndrome alone (correctionFor) turns a
     * correlated weight-2 error — a single mid-encoder fault fans
     * out to two qubits — into a weight-3 logical operator: the
     * weight-2 pattern has a non-trivial syndrome but *even* parity,
     * so the single-qubit "fix" completes it to a logical
     * representative. That first-order failure path is what pushed
     * Verify-and-Correct under ApplyFix to Correct-Only rates
     * (~1e-3) instead of the paper's 2.9e-5 (Fig 4c).
     *
     * Shapes: odd parity and syndrome s != 0 is the weight-1 flip of
     * qubit s-1; odd parity with s == 0 is a weight-3 logical
     * representative; even parity with s != 0 is a weight-2 pattern
     * (columns pair to s); even parity with s == 0 needs no fix.
     */
    static Mask
    fixFor(unsigned syndrome, bool oddParity)
    {
        if (!oddParity) {
            if (syndrome == 0)
                return Mask{0};
            if (syndrome == 1)
                return Mask{0b110}; // columns 2^3 = 1
            // Column 1 (qubit 0) paired with column syndrome^1.
            return static_cast<Mask>(
                Mask{1} | (Mask{1} << ((syndrome ^ 1u) - 1)));
        }
        if (syndrome == 0)
            return Mask{0b111}; // columns 1^2^3 = 0, odd weight
        return static_cast<Mask>(Mask{1} << (syndrome - 1));
    }

    /**
     * True iff the error pattern, after perfect syndrome decoding,
     * leaves a *logical* operator (uncorrectable error). The
     * residual always has trivial syndrome, so it is either a
     * stabilizer (even weight) or a logical representative (odd
     * weight).
     */
    static bool
    uncorrectable(Mask error)
    {
        const Mask residual =
            static_cast<Mask>(error ^ correctionFor(syndromeOf(error)));
        return parity(residual);
    }

    /**
     * Minimum weight of the error pattern over its stabilizer coset
     * (the physically meaningful "size" of an error: weight-4
     * stabilizer-shaped junk is equivalent to no error at all).
     */
    static int
    cosetMinWeight(Mask error)
    {
        int best = numPhysical;
        for (unsigned combo = 0; combo < 8; ++combo) {
            Mask s = 0;
            for (int r = 0; r < 3; ++r) {
                if (combo & (1u << r))
                    s ^= stabilizers[static_cast<std::size_t>(r)];
            }
            const int w = __builtin_popcount(
                static_cast<unsigned>(error ^ s));
            if (w < best)
                best = w;
        }
        return best;
    }

    /**
     * True iff the error is *not* equivalent (modulo stabilizers) to
     * a weight <= 1 error, i.e. a single downstream round of ideal
     * QEC cannot be guaranteed to remove it. This is the acceptance
     * criterion used when grading prepared ancillae (Figure 4).
     */
    static bool
    badCoset(Mask error)
    {
        return cosetMinWeight(error) > 1;
    }

    /**
     * Transversality of the logical gate set on this code
     * (Section 2.1). Preparation and measurement are grouped with
     * the transversal operations: they are realized bitwise.
     */
    static bool
    transversal(GateKind kind)
    {
        switch (kind) {
          case GateKind::T:
          case GateKind::Tdg:
          case GateKind::RotZ:
          case GateKind::CRotZ:
          case GateKind::Toffoli:
            return false;
          default:
            return true;
        }
    }

    /** One CX of the encoder schedule. */
    struct EncoderCx
    {
        int control;
        int target;
        int round; ///< 0, 1 or 2: CXs in a round act on disjoint qubits
    };

    /**
     * The Basic Encoded Zero Ancilla Prepare circuit (Fig 3b):
     * Hadamards on the three seed qubits, then nine CX in three
     * fully-parallel rounds. Seeds are chosen so that seed i fans
     * out stabilizer row i.
     */
    static constexpr std::array<int, 3> encoderSeeds = {0, 1, 3};

    /** The nine encoder CXs grouped in three disjoint rounds. */
    static constexpr std::array<EncoderCx, 9> encoderCxs = {{
        {0, 2, 0}, {1, 6, 0}, {3, 5, 0},
        {0, 4, 1}, {1, 2, 1}, {3, 6, 1},
        {0, 6, 2}, {1, 5, 2}, {3, 4, 2},
    }};

    /**
     * The weight-3 logical-Z representative measured by the
     * verification step with its 3-qubit cat state (Fig 4).
     *
     * The support {1, 4, 6} (= logical Z times stabilizer rows 0
     * and 2) is chosen to match the encoder schedule above: every
     * uncorrectable X pattern reachable from a SINGLE fault in the
     * Basic-0 circuit — the late-seed and last-round CX patterns
     * {0,6}, {1,5} and {3,4} — has odd overlap with this support and
     * is therefore detected. (A test enumerates all single faults
     * and checks this property; see tests/codes.)
     */
    static constexpr Mask verifyMask = Mask{0b1010010}; // {1, 4, 6}
};

} // namespace qc

#endif // QC_CODES_STEANE_CODE_HH
