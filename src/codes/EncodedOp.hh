/**
 * @file
 * Latency and ancilla-consumption model for operations on encoded
 * qubits (paper Sections 2 and 3).
 *
 * The model follows the paper's accounting:
 *
 *  - A transversal gate costs its physical latency: all seven
 *    physical operations fire concurrently in the data region's
 *    dedicated gate locations (Fig 10).
 *  - Every useful gate is followed by a QEC step. Only the
 *    data/ancilla *interaction* is on the data's critical path:
 *    a transversal CX with the ancilla, the ancilla measurement and
 *    the conditional transversal correction (t2q + tmeas + t1q).
 *    The bit- and phase-correction interactions are pipelined and
 *    their measurements overlap (Fig 13f), so one window covers the
 *    QEC step while consuming TWO encoded zero ancillae (Fig 2).
 *  - A pi/8 gate is executed by interacting the data with an
 *    encoded pi/8 ancilla transversally, measuring, and applying a
 *    conditional transversal correction (Fig 5a): t2q + tmeas + t1q
 *    on the data path, consuming one encoded pi/8 ancilla.
 *  - Logical preparation swaps in a fresh encoded zero from a
 *    factory (one encoded-zero ancilla, t1q of data-path latency;
 *    a |+> prep adds a transversal Hadamard which is folded into
 *    the same window).
 *
 * All quantities are symbolic in IonTrapParams.
 */

#ifndef QC_CODES_ENCODED_OP_HH
#define QC_CODES_ENCODED_OP_HH

#include "circuit/Gate.hh"
#include "common/Params.hh"
#include "common/Types.hh"

namespace qc {

/** Symbolic latency/ancilla model for encoded operations. */
class EncodedOpModel
{
  public:
    explicit EncodedOpModel(IonTrapParams tech = IonTrapParams::paper())
        : tech_(tech)
    {
    }

    const IonTrapParams &tech() const { return tech_; }

    /**
     * Data-path latency of one encoded gate (no QEC, no ancilla
     * preparation — Figure 1b's grey blocks).
     */
    Time dataLatency(const Gate &gate) const;

    /**
     * Data-path latency of the QEC step that follows a useful gate
     * (interaction only: Table 2 column 3's unit of work).
     */
    Time
    qecInteractLatency() const
    {
        return tech_.t2q + tech_.tmeas + tech_.t1q;
    }

    /** Data-path latency of a pi/8 ancilla interaction (Fig 5a). */
    Time
    pi8InteractLatency() const
    {
        return tech_.t2q + tech_.tmeas + tech_.t1q;
    }

    /**
     * Critical-path latency (movement excluded) of preparing one
     * high-fidelity encoded zero ancilla with the verify+correct
     * circuit of Fig 4c: basic encode, cat verification, then bit
     * and phase correction.
     */
    Time
    zeroPrepLatency() const
    {
        const Time encode = tech_.tprep + tech_.t1q + 3 * tech_.t2q;
        const Time verify = tech_.t2q + tech_.tmeas;
        const Time correct = tech_.t2q + tech_.tmeas + tech_.t1q;
        return encode + verify + 2 * correct;
    }

    /**
     * Critical-path latency (movement excluded) of turning an
     * encoded zero into an encoded pi/8 ancilla (Fig 5b): the
     * 7-qubit cat preparation runs concurrently with the zero
     * preparation, then the transversal interaction, decode and
     * measurement/fix-up stages run in series.
     */
    Time
    pi8PrepLatency() const
    {
        const Time cat = tech_.tprep + tech_.t1q + 7 * tech_.t2q;
        const Time zero = zeroPrepLatency();
        const Time transversal = 3 * tech_.t2q;
        const Time decode = 7 * tech_.t2q;
        const Time fixup = tech_.tmeas + 2 * tech_.t1q;
        return (cat > zero ? cat : zero) + transversal + decode + fixup;
    }

    /**
     * True if a QEC step follows this gate. Following the paper, a
     * QEC step follows every useful gate; preparations deliver
     * already-corrected ancillae and measurements destroy the
     * state, so neither is followed by QEC.
     */
    bool
    needsQec(GateKind kind) const
    {
        return kind != GateKind::Measure && !isPrep(kind);
    }

    /**
     * Encoded zero ancillae consumed by this gate: two per QEC step
     * (bit + phase, Fig 2), plus one for a logical preparation.
     */
    int
    zeroAncillae(const Gate &gate) const
    {
        int count = needsQec(gate.kind) ? 2 : 0;
        if (isPrep(gate.kind))
            count += 1;
        return count;
    }

    /** Encoded pi/8 ancillae consumed by this gate (T/Tdg: one). */
    int
    pi8Ancillae(const Gate &gate) const
    {
        return (gate.kind == GateKind::T || gate.kind == GateKind::Tdg)
                   ? 1
                   : 0;
    }

  private:
    IonTrapParams tech_;
};

} // namespace qc

#endif // QC_CODES_ENCODED_OP_HH
