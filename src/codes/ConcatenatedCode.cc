#include "codes/ConcatenatedCode.hh"

#include <stdexcept>
#include <string>

#include "codes/EncodedOp.hh"

namespace qc {

void
ConcatenatedSteane::validateLevel(int level)
{
    if (level >= 1 && level <= maxModeledLevel)
        return;
    throw std::invalid_argument(
        "codeLevel " + std::to_string(level)
        + " not modeled; the [[7,1,3]] Steane code is modeled at "
          "levels 1 and "
        + std::to_string(maxModeledLevel)
        + " (recursive concatenation beyond level "
        + std::to_string(maxModeledLevel) + " is future work)");
}

int
ConcatenatedSteane::physicalQubits(int level)
{
    validateLevel(level);
    int n = 1;
    for (int l = 0; l < level; ++l)
        n *= 7;
    return n;
}

Area
ConcatenatedSteane::tileArea(int level)
{
    validateLevel(level);
    Area area = 1;
    for (int l = 1; l < level; ++l)
        area *= areaScalePerLevel;
    return area;
}

IonTrapParams
ConcatenatedSteane::stepUp(const IonTrapParams &tech)
{
    const EncodedOpModel lower(tech);
    const Time qec = lower.qecInteractLatency();
    IonTrapParams eff;
    // Transversal gates run one encoded gate on each sub-block
    // concurrently; each is followed by the lower level's QEC
    // interaction window (Fig 2 accounting, one level down).
    eff.t1q = tech.t1q + qec;
    eff.t2q = tech.t2q + qec;
    // Transversal readout measures all sub-blocks concurrently; the
    // recursive decode is classical post-processing.
    eff.tmeas = tech.tmeas;
    // A fresh "primitive" zero one level up is a complete
    // verify-and-correct rebuild at the lower level (Fig 4c).
    eff.tprep = lower.zeroPrepLatency();
    // Blocks cross linearly larger tiles; turns go through the same
    // intersections.
    eff.tmove = moveScalePerLevel * tech.tmove;
    eff.tturn = tech.tturn;
    return eff;
}

IonTrapParams
ConcatenatedSteane::effectiveTech(const IonTrapParams &tech, int level)
{
    validateLevel(level);
    IonTrapParams eff = tech;
    for (int l = 1; l < level; ++l)
        eff = stepUp(eff);
    return eff;
}

} // namespace qc
