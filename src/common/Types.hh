/**
 * @file
 * Fundamental unit types shared by all qalypso modules.
 *
 * All simulated time is kept in 64-bit integer nanoseconds so that the
 * ion-trap latency constants from the paper (Tables 1 and 4, given in
 * microseconds) are exactly representable and event ordering is
 * deterministic. Areas are kept in macroblocks (Section 4.1); several
 * derived areas in the paper are fractional, so we use double.
 */

#ifndef QC_COMMON_TYPES_HH
#define QC_COMMON_TYPES_HH

#include <cstdint>

namespace qc {

/** Simulated time in nanoseconds. */
using Time = std::int64_t;

/** Number of nanoseconds per microsecond. */
constexpr Time nsPerUs = 1000;

/** Number of nanoseconds per millisecond. */
constexpr Time nsPerMs = 1000000;

/** Convert whole microseconds to Time (exact). */
constexpr Time
usec(std::int64_t us)
{
    return us * nsPerUs;
}

/** Convert whole milliseconds to Time (exact). */
constexpr Time
msec(std::int64_t ms)
{
    return ms * nsPerMs;
}

/** Convert a Time to (possibly fractional) microseconds. */
constexpr double
toUs(Time t)
{
    return static_cast<double>(t) / nsPerUs;
}

/** Convert a Time to (possibly fractional) milliseconds. */
constexpr double
toMs(Time t)
{
    return static_cast<double>(t) / nsPerMs;
}

/** Layout area in macroblocks (Section 4.1). */
using Area = double;

/**
 * Production or consumption bandwidth. The paper quotes all
 * bandwidths in items per millisecond ("encoded ancillae / ms",
 * "qubits / ms"); we store exactly that unit.
 */
using BandwidthPerMs = double;

/**
 * Convert a per-item latency into a bandwidth, optionally with
 * multiple items emitted per completion and multiple internal
 * pipeline stages (Table 5's "Stages" column): a unit with s internal
 * stages initiates a new batch every latency/s.
 *
 * @param latency   total latency of the unit for one batch
 * @param items     items produced per batch
 * @param stages    internal pipeline stages within the unit
 * @return items per millisecond
 */
constexpr BandwidthPerMs
bandwidthOf(Time latency, double items = 1.0, int stages = 1)
{
    return items * stages * static_cast<double>(nsPerMs)
        / static_cast<double>(latency);
}

} // namespace qc

#endif // QC_COMMON_TYPES_HH
