#include "Table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qc {

void
TextTable::header(std::initializer_list<std::string> cells)
{
    header_.assign(cells);
}

void
TextTable::row(std::initializer_list<std::string> cells)
{
    rows_.emplace_back(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        total += 2 * (widths.empty() ? 0 : widths.size() - 1);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << quote(cells[i]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmtFixed(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
fmtSci(double v, int precision)
{
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(precision) << v;
    return ss.str();
}

std::string
fmtInt(long long v)
{
    return std::to_string(v);
}

std::string
fmtPct(double ratio, int precision)
{
    return fmtFixed(100.0 * ratio, precision) + "%";
}

} // namespace qc
