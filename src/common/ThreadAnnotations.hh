/**
 * @file
 * Clang thread-safety-analysis attribute macros (no-ops on GCC and
 * MSVC). The `QC_` spellings follow the canonical set from the
 * clang Thread Safety Analysis documentation; building with clang
 * turns every annotated invariant in this codebase into a
 * compile-time check (`-Wthread-safety`, an error under
 * `-DQC_WERROR=ON` — the CI clang lanes).
 *
 * libstdc++'s std::mutex carries no capability attributes, so the
 * analysis cannot see std::lock_guard acquisitions. All annotated
 * code therefore locks through qc::Mutex / qc::MutexLock
 * (common/Mutex.hh), which wrap std::mutex with QC_CAPABILITY /
 * QC_SCOPED_CAPABILITY attributes the analysis does understand.
 *
 * See docs/ANALYSIS.md for the full static-analysis story (which
 * structures are annotated, how to run the checks locally).
 */

#ifndef QC_COMMON_THREAD_ANNOTATIONS_HH
#define QC_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#define QC_THREAD_ATTRIBUTE__(x) __attribute__((x))
#else
#define QC_THREAD_ATTRIBUTE__(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define QC_CAPABILITY(x) QC_THREAD_ATTRIBUTE__(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define QC_SCOPED_CAPABILITY QC_THREAD_ATTRIBUTE__(scoped_lockable)

/** Member data that may only be touched while holding `x`. */
#define QC_GUARDED_BY(x) QC_THREAD_ATTRIBUTE__(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define QC_PT_GUARDED_BY(x) QC_THREAD_ATTRIBUTE__(pt_guarded_by(x))

/** Function requires `...` held on entry (and does not release). */
#define QC_REQUIRES(...) \
    QC_THREAD_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/** Function acquires `...` (held on exit, not on entry). */
#define QC_ACQUIRE(...) \
    QC_THREAD_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/** Function releases `...` (held on entry, not on exit). */
#define QC_RELEASE(...) \
    QC_THREAD_ATTRIBUTE__(release_capability(__VA_ARGS__))

/** Function may not be called while holding `...`. */
#define QC_EXCLUDES(...) \
    QC_THREAD_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/** Function acquires `...` iff it returns `ret`. */
#define QC_TRY_ACQUIRE(ret, ...) \
    QC_THREAD_ATTRIBUTE__(try_acquire_capability(ret, __VA_ARGS__))

/** Returns a reference to the capability guarding the result. */
#define QC_RETURN_CAPABILITY(x) \
    QC_THREAD_ATTRIBUTE__(lock_returned(x))

/** Escape hatch: the function's locking is checked by review, not
 *  by the analysis. Every use needs a comment saying why. */
#define QC_NO_THREAD_SAFETY_ANALYSIS \
    QC_THREAD_ATTRIBUTE__(no_thread_safety_analysis)

#endif // QC_COMMON_THREAD_ANNOTATIONS_HH
