/**
 * @file
 * Crash-durable atomic file replacement: write the content to a
 * temporary file in the target's directory, fsync it, rename it
 * over the target, then fsync the directory. The rename gives
 * atomicity (a reader never sees a torn file); the two fsyncs give
 * durability (a power loss after the call returns cannot roll the
 * file back to empty or to the previous content's length with new
 * metadata — the failure mode plain write-then-rename leaves open,
 * because the rename can reach disk before the data does).
 *
 * Used by the sweep engine's checkpoint commits and by the serve
 * coordinator/worker for checkpoint documents and shard deltas.
 */

#ifndef QC_COMMON_DURABLE_FILE_HH
#define QC_COMMON_DURABLE_FILE_HH

#include <string>

namespace qc {

/**
 * Atomically and durably replace `path` with `content` via
 * write + fsync + rename + directory fsync. `tmpSuffix` names the
 * temporary (`path + tmpSuffix`); concurrent writers of the same
 * target must use distinct suffixes. Throws std::runtime_error on
 * I/O failure (the temporary is cleaned up).
 */
void writeFileDurable(const std::string &path,
                      const std::string &content,
                      const std::string &tmpSuffix = ".tmp");

/**
 * writeFileDurable, but the temporary is truncated to
 * `tornBytes` before the rename — a deliberately torn commit for
 * fault-injection tests of reader-side validation. Never use
 * outside fault injection.
 */
void writeFileTorn(const std::string &path,
                   const std::string &content, std::size_t tornBytes,
                   const std::string &tmpSuffix = ".tmp");

/** fsync the directory containing `path` (best-effort). */
void syncParentDir(const std::string &path);

} // namespace qc

#endif // QC_COMMON_DURABLE_FILE_HH
