/**
 * @file
 * Deterministic pseudo-random number generation for Monte Carlo
 * simulation. We use xoshiro256** seeded via SplitMix64: fast,
 * high-quality, and fully reproducible across platforms (unlike
 * std::mt19937_64 + std::uniform_real_distribution, whose output is
 * implementation-defined for some distributions).
 */

#ifndef QC_COMMON_RNG_HH
#define QC_COMMON_RNG_HH

#include <cstdint>

namespace qc {

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies UniformRandomBitGenerator so it can also be handed to
 * standard-library facilities where cross-platform reproducibility
 * does not matter.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        // 53 high-quality bits -> [0,1) with full double resolution.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform01() < p;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling, with the
        // simple rejection fix-up for exactness.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Derive an independent child stream (for parallel replicas). */
    Rng
    split()
    {
        return Rng((*this)() ^ 0xd2b74407b1ce6e93ull);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace qc

#endif // QC_COMMON_RNG_HH
