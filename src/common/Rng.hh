/**
 * @file
 * Deterministic pseudo-random number generation for Monte Carlo
 * simulation. We use xoshiro256** seeded via SplitMix64: fast,
 * high-quality, and fully reproducible across platforms (unlike
 * std::mt19937_64 + std::uniform_real_distribution, whose output is
 * implementation-defined for some distributions).
 */

#ifndef QC_COMMON_RNG_HH
#define QC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace qc {

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies UniformRandomBitGenerator so it can also be handed to
 * standard-library facilities where cross-platform reproducibility
 * does not matter.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        // 53 high-quality bits -> [0,1) with full double resolution.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform01() < p;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling, with the
        // simple rejection fix-up for exactness.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Derive an independent child stream (for parallel replicas). */
    Rng
    split()
    {
        return Rng((*this)() ^ 0xd2b74407b1ce6e93ull);
    }

    /**
     * One 64-bit word whose bits are independent Bernoulli(p) draws
     * (bit t = trial t), consuming ~1-2 raw outputs for small p
     * instead of 64. See BernoulliWord for the sampling scheme; this
     * convenience form re-derives the per-p constants on every call,
     * so hot loops should hold a BernoulliWord instead.
     */
    std::uint64_t bernoulliMask(double p);

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Batched Bernoulli(p) bit sampler: next() emits a 64-bit word whose
 * bits are independent Bernoulli(p) draws.
 *
 * Coarse-to-fine: one uniform draw decides whether *any* of the 64
 * bits is set (probability 1 - (1-p)^64, rare for the small per-op
 * error rates the Monte Carlo engine uses); only then are the set
 * positions recovered by exact geometric gap sampling, one uniform
 * draw per set bit. The expected cost is 1 + 64p draws per word
 * versus 64 for bitwise rejection, and the output distribution is
 * exactly i.i.d. Bernoulli(p) per bit.
 *
 * The per-p constants (1/log(1-p) and the any-hit threshold) are
 * precomputed at construction so the hot path touches no
 * transcendentals in the common all-zero case.
 */
class BernoulliWord
{
  public:
    explicit BernoulliWord(double p = 0.0) : p_(p)
    {
        if (p <= 0.0) {
            threshold_ = 0.0; // never enters the hit path
            invDenom_ = 0.0;
        } else if (p >= 1.0) {
            threshold_ = 2.0; // always hits; next() short-circuits
            invDenom_ = 0.0;
        } else {
            const double log1mp = std::log1p(-p);
            invDenom_ = 1.0 / log1mp;
            // P(at least one of the 64 bits set) = 1 - (1-p)^64.
            threshold_ = -std::expm1(64.0 * log1mp);
        }
    }

    /** The per-bit probability this sampler was built for. */
    double p() const { return p_; }

    /** Draw the next 64-trial Bernoulli mask. */
    std::uint64_t
    next(Rng &rng)
    {
        const double u0 = rng.uniform01();
        if (!(u0 < threshold_))
            return 0;
        if (p_ >= 1.0)
            return ~std::uint64_t{0};
        // Conditioned on u0 < threshold, floor(log(1-u0)/log(1-p))
        // is exactly the first set position truncated to [0, 64).
        std::uint64_t mask = 0;
        double pos = std::floor(std::log1p(-u0) * invDenom_);
        while (pos < 64.0) {
            mask |= std::uint64_t{1} << static_cast<int>(pos);
            // Gap to the next set bit is geometric(p).
            pos += 1.0
                + std::floor(std::log1p(-rng.uniform01())
                             * invDenom_);
        }
        return mask;
    }

  private:
    double p_;
    double threshold_;
    double invDenom_;
};

/**
 * Persistent rare-event Bernoulli(p) bit stream with O(1) skip over
 * hit-free windows.
 *
 * Where BernoulliWord restarts its coarse-to-fine scheme on every
 * 64-bit word (one uniform draw per word minimum), this sampler
 * models the bit stream as a geometric renewal process and carries
 * the gap to the next set bit *across* words: advancing over a
 * window of W words with no hits costs a single compare-and-subtract
 * and zero RNG draws. Expected RNG cost is exactly one uniform draw
 * per set bit (plus one at reset), so for physical error rates like
 * 1e-4 an injection site costs ~p * 64 * words draws instead of
 * `words` draws — the dominant win behind the batch engine's SIMD
 * throughput target.
 *
 * The output distribution is exactly i.i.d. Bernoulli(p) per bit,
 * and — critically for the cross-width bit-identity guarantee — the
 * draw sequence is defined over the *bit stream*, independent of
 * how the caller blocks words into vector lanes.
 */
class RareBernoulliStream
{
  public:
    explicit RareBernoulliStream(double p = 0.0) : p_(p)
    {
        if (p <= 0.0)
            mode_ = Mode::Never;
        else if (p >= 1.0)
            mode_ = Mode::Always;
        else {
            mode_ = Mode::Rare;
            invDenom_ = 1.0 / std::log1p(-p);
        }
    }

    /** The per-bit probability this stream was built for. */
    double p() const { return p_; }

    /**
     * Restart the stream (e.g. at the top of a batch): draws the
     * position of the first set bit. Must be called before the
     * first window() with the same Rng that window() will use.
     */
    void
    reset(Rng &rng)
    {
        gap_ = mode_ == Mode::Rare ? gapFrom(rng) : 0;
    }

    /**
     * Advance the stream over the next `words` 64-bit words and
     * invoke visit(w, mask) for each word index in [0, words) whose
     * mask has at least one set bit. Words with no hits are skipped
     * entirely (no callback, no RNG). Gap draws for a word complete
     * before its visit runs, so interleaving other draws (e.g.
     * Pauli-kind selection) inside visit keeps the combined stream
     * deterministic.
     */
    template <class F>
    void
    window(Rng &rng, int words, F &&visit)
    {
        if (mode_ == Mode::Never)
            return;
        const std::uint64_t bits = 64ull * static_cast<unsigned>(words);
        if (mode_ == Mode::Always) {
            for (int w = 0; w < words; ++w)
                visit(w, ~std::uint64_t{0});
            return;
        }
        while (gap_ < bits) {
            const int w = static_cast<int>(gap_ >> 6);
            const std::uint64_t base = std::uint64_t(w) << 6;
            std::uint64_t mask = 0;
            do {
                mask |= std::uint64_t{1} << (gap_ - base);
                gap_ += 1 + gapFrom(rng);
            } while (gap_ < base + 64);
            visit(w, mask);
        }
        gap_ -= bits;
    }

  private:
    enum class Mode
    {
        Never,
        Rare,
        Always,
    };

    std::uint64_t
    gapFrom(Rng &rng)
    {
        // Geometric(p) via inversion; clamp the (astronomically
        // rare for any representable u) overflow case instead of
        // invoking double->int UB.
        const double g =
            std::floor(std::log1p(-rng.uniform01()) * invDenom_);
        if (!(g < 9.0e18))
            return std::uint64_t{1} << 62;
        return static_cast<std::uint64_t>(g);
    }

    double p_ = 0.0;
    double invDenom_ = 0.0;
    Mode mode_ = Mode::Never;
    std::uint64_t gap_ = 0;
};

inline std::uint64_t
Rng::bernoulliMask(double p)
{
    BernoulliWord sampler(p);
    return sampler.next(*this);
}

} // namespace qc

#endif // QC_COMMON_RNG_HH
