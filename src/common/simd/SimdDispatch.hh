/**
 * @file
 * Runtime SIMD width selection for the batch Monte Carlo engine.
 *
 * Engine widths are lane counts over 64-bit words; the per-width
 * engine translation units are compiled with the matching target
 * flags (see CMakeLists.txt) and registered with the ISA they
 * require. Selection order:
 *
 *   1. `QC_FORCE_WIDTH` environment override
 *      ("scalar" | "64" | "128" | "256" | "512"), the CI
 *      width-dispatch matrix seam. Forcing a width whose ISA the
 *      CPU lacks is a hard error (loud, instead of SIGILL later).
 *   2. Widest built width the running CPU supports.
 *
 * All widths produce bit-identical results — the RNG stream to
 * trial-lane assignment is width-invariant — so dispatch is purely
 * a throughput decision.
 *
 * This header plus SimdDispatch.cc are the only places allowed to
 * query CPU features (`__builtin_cpu_supports`) or include raw
 * intrinsics headers; qclint's `simd-seam` rule enforces that.
 */

#ifndef QC_COMMON_SIMD_SIMDDISPATCH_HH
#define QC_COMMON_SIMD_SIMDDISPATCH_HH

#include <string>

namespace qc::simd {

/** Engine width: lanes of 64 trials advanced per vector op. */
enum class Width
{
    Auto,    ///< pick the widest supported at runtime
    Scalar,  ///< ScalarOps<4> portable fallback (no vector types)
    W64,     ///< plain uint64_t reference path
    W128,
    W256,
    W512,
};

/** Human-readable name ("auto", "scalar", "64", ... "512"). */
const char *widthName(Width w);

/**
 * Parse a width name as accepted by QC_FORCE_WIDTH. Returns true on
 * success. Accepts "auto", "scalar", "scalar-fallback", "64",
 * "128", "256", "512".
 */
bool parseWidth(const std::string &name, Width *out);

/**
 * ISA feature string a width's engine TU was compiled to require
 * ("" when it runs on any CPU the binary runs on, "avx2", "avx512f").
 */
const char *widthRequiredIsa(Width w);

/** Whether the running CPU can execute the given width's engine. */
bool widthSupported(Width w);

/** Lanes (64-bit words advanced per vector step) of a width. */
int widthLanes(Width w);

/**
 * Resolve Auto (env override, then widest supported). Throws
 * std::runtime_error on an unparseable QC_FORCE_WIDTH value or a
 * forced width the CPU cannot execute. Non-Auto inputs are
 * validated the same way and returned unchanged.
 *
 * maxLanes > 0 caps the *automatically* chosen width (a batch of
 * wordsPerQubit words gains nothing from lanes it cannot fill);
 * explicitly requested or QC_FORCE_WIDTH widths are never clamped —
 * every width is correct at any batch size, just not faster.
 */
Width resolveWidth(Width requested, int maxLanes = 0);

/**
 * The ISA the resolved auto width actually uses on this machine —
 * recorded in benchmark output so a committed baseline's rates can
 * be interpreted ("avx512f", "avx2", "sse2", or "portable").
 */
const char *dispatchedIsa();

} // namespace qc::simd

#endif // QC_COMMON_SIMD_SIMDDISPATCH_HH
