/**
 * @file
 * SIMD width dispatch — the only translation unit allowed to query
 * CPU features. The per-width engine TUs advertise the ISA they
 * were compiled to require via QC_SIMD_W*_ISA compile definitions
 * set alongside the per-file target flags in CMakeLists.txt, so
 * this file cannot drift out of sync with the build: forcing a
 * width whose ISA the CPU lacks fails with a clear error instead of
 * executing an illegal instruction.
 */

#include "common/simd/SimdDispatch.hh"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

// ISA each width engine TU was compiled to require. Empty means the
// TU uses only the binary's baseline target and runs anywhere the
// binary does. CMake overrides these per-file when it applies
// -mavx2 / -mavx512f to the corresponding engine TU.
#ifndef QC_SIMD_W256_ISA
#define QC_SIMD_W256_ISA ""
#endif
#ifndef QC_SIMD_W512_ISA
#define QC_SIMD_W512_ISA ""
#endif

namespace qc::simd {

namespace {

bool
cpuHas(const char *isa)
{
    if (isa == nullptr || *isa == '\0')
        return true;
#if (defined(__x86_64__) || defined(__i386__)) \
    && (defined(__GNUC__) || defined(__clang__))
    if (std::strcmp(isa, "avx2") == 0)
        return __builtin_cpu_supports("avx2") != 0;
    if (std::strcmp(isa, "avx512f") == 0)
        return __builtin_cpu_supports("avx512f") != 0;
#endif
    // Unknown requirement on this platform: refuse rather than risk
    // SIGILL.
    return false;
}

int
lanesOf(Width w)
{
    switch (w) {
    case Width::W64:
        return 1;
    case Width::W128:
        return 2;
    case Width::Scalar:
    case Width::W256:
        return 4;
    case Width::W512:
        return 8;
    case Width::Auto:
        break;
    }
    return 1;
}

} // namespace

const char *
widthName(Width w)
{
    switch (w) {
    case Width::Auto:
        return "auto";
    case Width::Scalar:
        return "scalar";
    case Width::W64:
        return "64";
    case Width::W128:
        return "128";
    case Width::W256:
        return "256";
    case Width::W512:
        return "512";
    }
    return "?";
}

bool
parseWidth(const std::string &name, Width *out)
{
    if (name == "auto")
        *out = Width::Auto;
    else if (name == "scalar" || name == "scalar-fallback")
        *out = Width::Scalar;
    else if (name == "64")
        *out = Width::W64;
    else if (name == "128")
        *out = Width::W128;
    else if (name == "256")
        *out = Width::W256;
    else if (name == "512")
        *out = Width::W512;
    else
        return false;
    return true;
}

const char *
widthRequiredIsa(Width w)
{
    switch (w) {
    case Width::W256:
        return QC_SIMD_W256_ISA;
    case Width::W512:
        return QC_SIMD_W512_ISA;
    default:
        return "";
    }
}

bool
widthSupported(Width w)
{
    return w != Width::Auto && cpuHas(widthRequiredIsa(w));
}

Width
resolveWidth(Width requested, int maxLanes)
{
    Width w = requested;
    bool forced = false;
    if (w == Width::Auto) {
        const char *env = std::getenv("QC_FORCE_WIDTH");
        if (env != nullptr && *env != '\0') {
            if (!parseWidth(env, &w))
                throw std::runtime_error(
                    std::string("QC_FORCE_WIDTH: unrecognized width '")
                    + env
                    + "' (expected scalar|64|128|256|512|auto)");
            forced = w != Width::Auto;
        }
    } else {
        forced = true;
    }
    if (w == Width::Auto) {
        // Widest supported width whose lanes a batch can fill.
        for (Width cand :
             {Width::W512, Width::W256, Width::W128, Width::W64}) {
            if (maxLanes > 0 && lanesOf(cand) > maxLanes
                && cand != Width::W64)
                continue;
            if (widthSupported(cand)) {
                w = cand;
                break;
            }
        }
        if (w == Width::Auto)
            w = Width::Scalar;
    }
    if (!widthSupported(w))
        throw std::runtime_error(
            std::string("SIMD width ") + widthName(w)
            + (forced ? " (forced)" : "") + " requires ISA '"
            + widthRequiredIsa(w)
            + "' which this CPU does not support");
    return w;
}

int
widthLanes(Width w)
{
    return lanesOf(w);
}

const char *
dispatchedIsa()
{
    const char *isa = widthRequiredIsa(resolveWidth(Width::Auto));
    if (*isa != '\0')
        return isa;
#if defined(__x86_64__) || defined(__i386__)
    return "sse2";
#else
    return "portable";
#endif
}

} // namespace qc::simd
