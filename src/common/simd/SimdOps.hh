/**
 * @file
 * Word-width abstraction for the bit-packed Monte Carlo engines.
 *
 * The batch Pauli-frame algebra is pure XOR/AND/NOT over arrays of
 * 64-bit words, so widening it to 128/256/512 bits is a matter of
 * processing kLanes words per step with the same operators. Each Ops
 * type below packages a vector value type `V` (kLanes x uint64),
 * unaligned load/store, and the bitwise operators the engine needs.
 *
 * Two families:
 *  - VecOps<N>: GCC/Clang vector extensions (`vector_size`). The
 *    compiler lowers the generic operators to whatever the TU's
 *    target flags allow (SSE2/AVX2/AVX-512), so no intrinsics
 *    headers are needed and the same source builds on any GNU-ish
 *    compiler and architecture.
 *  - ScalarOps<N>: a plain struct-of-words fallback with identical
 *    semantics, for compilers without vector extensions and for the
 *    forced-fallback CI leg that proves results do not depend on the
 *    vector path.
 *
 * WordOps is the 1-lane reference (plain uint64_t), i.e. exactly the
 * pre-SIMD engine. Bit-identity across all of these is guaranteed by
 * construction: the engine keeps every RNG-consuming loop ordered
 * per 64-bit word and only blocks pure-bitwise loops by kLanes.
 */

#ifndef QC_COMMON_SIMD_SIMDOPS_HH
#define QC_COMMON_SIMD_SIMDOPS_HH

#include <cstdint>
#include <cstring>

namespace qc::simd {

#if defined(__GNUC__) || defined(__clang__)
#define QC_SIMD_HAVE_VECTOR_EXT 1
#else
#define QC_SIMD_HAVE_VECTOR_EXT 0
#endif

/** 1-lane reference ops: plain uint64_t, the original 64-bit path. */
struct WordOps
{
    static constexpr int kLanes = 1;
    using V = std::uint64_t;

    static V
    load(const std::uint64_t *p)
    {
        return *p;
    }

    static void
    store(std::uint64_t *p, V v)
    {
        *p = v;
    }

    static V
    zero()
    {
        return 0;
    }
};

/**
 * Portable fallback: kLanes words advanced per step with ordinary
 * scalar code. Same blocking as the vector path, no vector types.
 */
template <int N>
struct ScalarOps
{
    static constexpr int kLanes = N;

    struct V
    {
        std::uint64_t lane[N];

        friend V
        operator^(V a, V b)
        {
            V r;
            for (int i = 0; i < N; ++i)
                r.lane[i] = a.lane[i] ^ b.lane[i];
            return r;
        }

        friend V
        operator&(V a, V b)
        {
            V r;
            for (int i = 0; i < N; ++i)
                r.lane[i] = a.lane[i] & b.lane[i];
            return r;
        }

        friend V
        operator|(V a, V b)
        {
            V r;
            for (int i = 0; i < N; ++i)
                r.lane[i] = a.lane[i] | b.lane[i];
            return r;
        }

        friend V
        operator~(V a)
        {
            V r;
            for (int i = 0; i < N; ++i)
                r.lane[i] = ~a.lane[i];
            return r;
        }
    };

    static V
    load(const std::uint64_t *p)
    {
        V v;
        std::memcpy(v.lane, p, sizeof(v.lane));
        return v;
    }

    static void
    store(std::uint64_t *p, V v)
    {
        std::memcpy(p, v.lane, sizeof(v.lane));
    }

    static V
    zero()
    {
        V v{};
        return v;
    }
};

#if QC_SIMD_HAVE_VECTOR_EXT

/**
 * Vector-extension ops: N x uint64 processed per step. The TU's
 * target flags decide the instruction selection (-mavx2 lowers
 * VecOps<4> to 256-bit ymm ops; without it the compiler splits into
 * 128-bit halves — still correct, just narrower).
 */
template <int N>
struct VecOps
{
    static constexpr int kLanes = N;

    typedef std::uint64_t V
        __attribute__((vector_size(8 * N), aligned(8)));

    static V
    load(const std::uint64_t *p)
    {
        V v;
        std::memcpy(&v, p, sizeof(V));
        return v;
    }

    static void
    store(std::uint64_t *p, V v)
    {
        std::memcpy(p, &v, sizeof(V));
    }

    static V
    zero()
    {
        return V{};
    }
};

#else

template <int N>
using VecOps = ScalarOps<N>;

#endif

} // namespace qc::simd

#endif // QC_COMMON_SIMD_SIMDOPS_HH
