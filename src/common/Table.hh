/**
 * @file
 * Plain-text table and CSV emission used by the bench binaries to
 * print paper-style tables and figure series.
 */

#ifndef QC_COMMON_TABLE_HH
#define QC_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace qc {

/**
 * A simple column-aligned text table.
 *
 * Columns are sized to the widest cell; numeric formatting is the
 * caller's responsibility (use fmtFixed/fmtSci below).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::initializer_list<std::string> cells);

    /** Append a data row. */
    void row(std::initializer_list<std::string> cells);

    /** Append a data row from a vector. */
    void row(std::vector<std::string> cells);

    /** Render with column alignment and a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtFixed(double v, int precision = 1);

/** Format a double in scientific notation. */
std::string fmtSci(double v, int precision = 2);

/** Format an integer with no decoration. */
std::string fmtInt(long long v);

/** Format a ratio as a percentage string, e.g. "78.2%". */
std::string fmtPct(double ratio, int precision = 1);

} // namespace qc

#endif // QC_COMMON_TABLE_HH
