#include "common/Clock.hh"

#include <chrono>

namespace qc {

namespace {

/** The real clock. This is the whitelisted home of the repo's only
 *  raw system_clock read (qclint rule `wall-clock`). */
class SystemWallClock : public WallClock
{
  public:
    std::int64_t epochMs() override
    {
        return std::chrono::duration_cast<
                   std::chrono::milliseconds>(
                   std::chrono::system_clock::now()
                       .time_since_epoch())
            .count();
    }
};

SystemWallClock gSystemClock;

/** nullptr means "the system clock" so a static fake installed
 *  before main still beats static-init ordering. */
std::atomic<WallClock *> gOverride{nullptr};

} // namespace

WallClock &
WallClock::current()
{
    WallClock *installed = gOverride.load();
    return installed ? *installed : gSystemClock;
}

WallClock *
WallClock::install(WallClock *clock)
{
    return gOverride.exchange(clock);
}

std::int64_t
wallClockEpochMs()
{
    return WallClock::current().epochMs();
}

} // namespace qc
