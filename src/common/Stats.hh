/**
 * @file
 * Small statistics helpers used by the Monte Carlo engine and the
 * event-driven simulations: running moments, binomial confidence
 * intervals, and time-series accumulation for the figure benches.
 */

#ifndef QC_COMMON_STATS_HH
#define QC_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace qc {

/**
 * Single-pass running mean/variance/extrema (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (0 if empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen (0 if empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** A two-sided confidence interval. */
struct Interval
{
    double lo;
    double hi;

    /** True if x lies within [lo, hi]. */
    bool contains(double x) const { return lo <= x && x <= hi; }
};

/**
 * Wilson score interval for a binomial proportion.
 *
 * Robust for the small success counts that appear when estimating
 * rare logical-error rates (Figure 4 reproduces rates down to 2.9e-5).
 *
 * @param successes number of successes observed
 * @param trials    number of trials (> 0)
 * @param z         normal quantile (1.96 for 95%, 2.58 for 99%)
 */
Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double z = 1.96);

/**
 * Fixed-bin histogram over a [0, span) domain; used to bin ancilla
 * demand over time for the Figure 7 bench.
 */
class TimeSeriesBinner
{
  public:
    /**
     * @param span  total domain covered
     * @param bins  number of equal-width bins (> 0)
     */
    TimeSeriesBinner(double span, std::size_t bins);

    /** Add weight at position t; out-of-range samples are clamped. */
    void add(double t, double weight = 1.0);

    /** Add weight uniformly over [t0, t1), split across bins. */
    void addRange(double t0, double t1, double weight = 1.0);

    /** Accumulated weight per bin. */
    const std::vector<double> &bins() const { return bins_; }

    /** Center position of bin i. */
    double binCenter(std::size_t i) const;

    /** Width of each bin. */
    double binWidth() const { return width_; }

  private:
    double span_;
    double width_;
    std::vector<double> bins_;
};

} // namespace qc

#endif // QC_COMMON_STATS_HH
