/**
 * @file
 * An annotated mutex for clang thread-safety analysis. qc::Mutex is
 * std::mutex wearing QC_CAPABILITY attributes; qc::MutexLock is the
 * matching scoped lock. Code that guards data with QC_GUARDED_BY
 * must lock through these types — a plain std::lock_guard over a
 * plain std::mutex is invisible to the analysis (libstdc++ ships no
 * capability annotations), so guarded accesses under it would be
 * diagnosed as unlocked.
 *
 * The wrapper adds no state and no behavior: it compiles to exactly
 * the std::mutex calls it forwards to.
 */

#ifndef QC_COMMON_MUTEX_HH
#define QC_COMMON_MUTEX_HH

#include <mutex>

#include "common/ThreadAnnotations.hh"

namespace qc {

/** std::mutex as a clang thread-safety capability. */
class QC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() QC_ACQUIRE() { mutex_.lock(); }
    void unlock() QC_RELEASE() { mutex_.unlock(); }
    bool try_lock() QC_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    std::mutex mutex_;
};

/** Scoped lock over qc::Mutex (the annotated std::lock_guard). */
class QC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) QC_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() QC_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace qc

#endif // QC_COMMON_MUTEX_HH
