/**
 * @file
 * Technology parameter bundles: physical operation latencies
 * (paper Tables 1 and 4) and physical error rates (Section 2.2).
 */

#ifndef QC_COMMON_PARAMS_HH
#define QC_COMMON_PARAMS_HH

#include "Types.hh"

namespace qc {

/**
 * Physical operation latencies for a trapped-ion technology.
 *
 * Defaults reproduce Table 1 (gate/measure/prepare) and Table 4
 * (movement) of the paper. All analyses are symbolic in these
 * parameters, so alternative technologies can be modelled by
 * constructing a different instance.
 */
struct IonTrapParams
{
    /** One-qubit gate latency (t_1q). */
    Time t1q = usec(1);
    /** Two-qubit gate latency (t_2q). */
    Time t2q = usec(10);
    /** Measurement latency (t_meas). */
    Time tmeas = usec(50);
    /** Physical zero-state preparation latency (t_prep). */
    Time tprep = usec(51);
    /** Straight move across one macroblock (t_move). */
    Time tmove = usec(1);
    /** Turn through an intersection (t_turn). */
    Time tturn = usec(10);

    /** The paper's baseline technology point [9, 15, 16]. */
    static IonTrapParams
    paper()
    {
        return IonTrapParams{};
    }
};

/**
 * Independent physical error probabilities (Section 2.2).
 *
 * Every gate-type operation (1q, 2q, measure, prepare) fails with
 * probability pGate; every movement operation (straight move or turn)
 * deposits an error with probability pMove.
 */
struct ErrorParams
{
    /** Error probability per gate operation. */
    double pGate = 1e-4;
    /** Error probability per movement operation. */
    double pMove = 1e-6;

    /** The paper's baseline error point (Section 2.2). */
    static ErrorParams
    paper()
    {
        return ErrorParams{};
    }
};

} // namespace qc

#endif // QC_COMMON_PARAMS_HH
