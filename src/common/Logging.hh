/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh:
 * panic() for internal invariant violations (aborts), fatal() for
 * user-input errors (exits cleanly), warn()/inform() for status.
 */

#ifndef QC_COMMON_LOGGING_HH
#define QC_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace qc {

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream ss;
    (ss << ... << std::forward<Args>(args));
    return ss.str();
}

} // namespace detail

/** Report an internal bug and abort. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: "
              << detail::concat(std::forward<Args>(args)...) << std::endl;
    std::abort();
}

/** Report an unrecoverable user error and exit(1). Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: "
              << detail::concat(std::forward<Args>(args)...) << std::endl;
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::cerr << "warn: "
              << detail::concat(std::forward<Args>(args)...) << std::endl;
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::cout << "info: "
              << detail::concat(std::forward<Args>(args)...) << std::endl;
}

} // namespace qc

#endif // QC_COMMON_LOGGING_HH
