#include "Stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qc {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Interval
wilsonInterval(std::uint64_t successes, std::uint64_t trials, double z)
{
    assert(trials > 0 && successes <= trials);
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

TimeSeriesBinner::TimeSeriesBinner(double span, std::size_t bins)
    : span_(span), width_(span / static_cast<double>(bins)), bins_(bins, 0.0)
{
    assert(bins > 0 && span > 0.0);
}

void
TimeSeriesBinner::add(double t, double weight)
{
    auto idx = static_cast<std::ptrdiff_t>(t / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
    bins_[static_cast<std::size_t>(idx)] += weight;
}

void
TimeSeriesBinner::addRange(double t0, double t1, double weight)
{
    if (t1 <= t0) {
        add(t0, weight);
        return;
    }
    const double density = weight / (t1 - t0);
    t0 = std::clamp(t0, 0.0, span_);
    t1 = std::clamp(t1, 0.0, span_);
    auto first = static_cast<std::size_t>(
        std::clamp(t0 / width_, 0.0,
                   static_cast<double>(bins_.size() - 1)));
    auto last = static_cast<std::size_t>(
        std::clamp(t1 / width_, 0.0,
                   static_cast<double>(bins_.size() - 1)));
    for (std::size_t i = first; i <= last; ++i) {
        const double lo = std::max(t0, static_cast<double>(i) * width_);
        const double hi =
            std::min(t1, static_cast<double>(i + 1) * width_);
        if (hi > lo)
            bins_[i] += density * (hi - lo);
    }
}

double
TimeSeriesBinner::binCenter(std::size_t i) const
{
    return (static_cast<double>(i) + 0.5) * width_;
}

} // namespace qc
