/**
 * @file
 * The injectable wall-clock seam. Everything in the library that
 * needs real-world time — today, the serve lease protocol's expiry
 * stamps — reads it through qc::WallClock::current(), so tests can
 * install a FakeWallClock and step time by hand instead of sleeping
 * out TTLs, and the qclint `wall-clock` rule can confine raw
 * std::chrono::system_clock reads to common/Clock.cc.
 *
 * Monotonic *interval* timing (std::chrono::steady_clock for
 * backoff, heartbeat cadence, wall-seconds reporting) is not
 * wall-clock and does not route through this seam: it never enters
 * serialized output and cannot jump backwards.
 *
 * The override is process-wide and intended for tests; install() is
 * an atomic pointer swap, so concurrent epochMs() readers are safe,
 * but installing while another thread still *depends* on the old
 * clock is a test-structure bug.
 */

#ifndef QC_COMMON_CLOCK_HH
#define QC_COMMON_CLOCK_HH

#include <atomic>
#include <cstdint>

namespace qc {

/** Source of wall-clock time (epoch milliseconds). */
class WallClock
{
  public:
    virtual ~WallClock() = default;

    /** Milliseconds since the Unix epoch. */
    virtual std::int64_t epochMs() = 0;

    /** The process-wide clock: the real system clock unless a test
     *  installed a fake. */
    static WallClock &current();

    /**
     * Install a replacement clock (not owned; must outlive its
     * installation). Returns the previously installed clock, or
     * nullptr if the system clock was active. Passing nullptr
     * restores the system clock. Prefer ScopedWallClock in tests.
     */
    static WallClock *install(WallClock *clock);
};

/** WallClock::current().epochMs() — the one sanctioned wall-clock
 *  read outside common/Clock.cc. */
std::int64_t wallClockEpochMs();

/** A manual clock for tests: starts where you say, moves only when
 *  advanced. Thread-safe. */
class FakeWallClock : public WallClock
{
  public:
    explicit FakeWallClock(std::int64_t startMs = 1700000000000)
        : nowMs_(startMs)
    {
    }

    std::int64_t epochMs() override { return nowMs_.load(); }

    void advanceMs(std::int64_t deltaMs)
    {
        nowMs_.fetch_add(deltaMs);
    }

    void setMs(std::int64_t ms) { nowMs_.store(ms); }

  private:
    std::atomic<std::int64_t> nowMs_;
};

/** Installs `clock` for the enclosing scope, restoring whatever was
 *  active before on destruction. */
class ScopedWallClock
{
  public:
    explicit ScopedWallClock(WallClock &clock)
        : previous_(WallClock::install(&clock))
    {
    }

    ~ScopedWallClock() { WallClock::install(previous_); }

    ScopedWallClock(const ScopedWallClock &) = delete;
    ScopedWallClock &operator=(const ScopedWallClock &) = delete;

  private:
    WallClock *previous_;
};

} // namespace qc

#endif // QC_COMMON_CLOCK_HH
