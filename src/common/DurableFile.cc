#include "common/DurableFile.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace qc {

namespace {

[[noreturn]] void
fail(const std::string &what, const std::string &path)
{
    throw std::runtime_error(what + " " + path + ": "
                             + std::strerror(errno));
}

std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

void
writeImpl(const std::string &path, const std::string &content,
          std::size_t bytes, const std::string &tmpSuffix)
{
    const std::string tmp = path + tmpSuffix;
    const int fd =
        ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        fail("cannot create", tmp);
    const char *data = content.data();
    std::size_t left = bytes;
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::remove(tmp.c_str());
            fail("cannot write", tmp);
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        fail("cannot fsync", tmp);
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fail("cannot rename into", path);
    }
    syncParentDir(path);
}

} // namespace

void
syncParentDir(const std::string &path)
{
    // Best-effort: some filesystems refuse O_RDONLY on directories
    // or fsync on a directory fd; the rename is already atomic.
    const int fd =
        ::open(parentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

void
writeFileDurable(const std::string &path, const std::string &content,
                 const std::string &tmpSuffix)
{
    writeImpl(path, content, content.size(), tmpSuffix);
}

void
writeFileTorn(const std::string &path, const std::string &content,
              std::size_t tornBytes, const std::string &tmpSuffix)
{
    writeImpl(path, content, std::min(tornBytes, content.size()),
              tmpSuffix);
}

} // namespace qc
