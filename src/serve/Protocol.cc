#include "serve/Protocol.hh"

#include <cstdio>

namespace qc {

namespace {

/** find() + kind check for the reject-whole parsers below: the
 *  getString/getBool lookups throw on a present-but-mistyped key,
 *  which is exactly what a fromJson returning bool must not do. */
bool
readString(const Json &json, const char *key, std::string &out)
{
    const Json *value = json.find(key);
    if (!value || !value->isString())
        return false;
    out = value->asString();
    return true;
}

bool
readOptionalBool(const Json &json, const char *key, bool &out)
{
    const Json *value = json.find(key);
    if (!value)
        return true; // absent: keep the default
    if (!value->isBool())
        return false;
    out = value->asBool();
    return true;
}

} // namespace

std::string
shardId(std::size_t ordinal)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "shard-%04zu", ordinal);
    return buf;
}

Json
ShardDescriptor::toJson() const
{
    Json indicesJson = Json::array();
    for (std::size_t index : indices)
        indicesJson.push(Json(static_cast<std::uint64_t>(index)));
    Json j = Json::object();
    j.set("id", id);
    j.set("indices", std::move(indicesJson));
    j.set("attempt", attempt);
    return j;
}

bool
ShardDescriptor::fromJson(const Json &json, ShardDescriptor &out)
{
    // Every read below is bounds-checked (find/asIndex, never
    // at()/asInt): queue entries come off a shared filesystem, and
    // a malformed one must read as "reject this file", not as an
    // exception escaping into the acquire/merge loop.
    const Json *indices = json.find("indices");
    if (!indices || !indices->isArray())
        return false;
    if (!readString(json, "id", out.id))
        return false;
    std::size_t attempt = 0;
    if (const Json *a = json.find("attempt")) {
        if (!a->asIndex(attempt) || attempt > kMaxShardAttempts)
            return false;
    }
    out.attempt = static_cast<int>(attempt);
    out.indices.clear();
    for (std::size_t i = 0; i < indices->size(); ++i) {
        std::size_t index = 0;
        if (!indices->find(i)->asIndex(index))
            return false;
        out.indices.push_back(index);
    }
    return !out.id.empty();
}

Json
ShardDelta::toJson() const
{
    Json pointsJson = Json::array();
    for (const DeltaPoint &point : points) {
        Json p = Json::object();
        p.set("index", static_cast<std::uint64_t>(point.index));
        p.set("config_hash", point.configHash);
        p.set("failed", point.failed);
        p.set("result", point.result);
        pointsJson.push(std::move(p));
    }
    Json j = Json::object();
    j.set("id", id);
    j.set("owner", owner);
    j.set("partial", partial);
    j.set("points", std::move(pointsJson));
    return j;
}

bool
ShardDelta::fromJson(const Json &json, ShardDelta &out)
{
    const Json *points = json.find("points");
    if (!points || !points->isArray())
        return false;
    if (!readString(json, "id", out.id))
        return false;
    out.owner.clear();
    if (json.find("owner")
        && !readString(json, "owner", out.owner))
        return false;
    out.partial = false;
    if (!readOptionalBool(json, "partial", out.partial))
        return false;
    out.points.clear();
    for (std::size_t i = 0; i < points->size(); ++i) {
        const Json *p = points->find(i);
        const Json *index = p->find("index");
        const Json *result = p->find("result");
        DeltaPoint point;
        if (!index || !result || !index->asIndex(point.index)
            || !readString(*p, "config_hash", point.configHash))
            return false;
        if (!readOptionalBool(*p, "failed", point.failed))
            return false;
        point.result = *result;
        out.points.push_back(std::move(point));
    }
    return !out.id.empty();
}

} // namespace qc
