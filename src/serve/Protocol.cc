#include "serve/Protocol.hh"

#include <cstdio>

namespace qc {

std::string
shardId(std::size_t ordinal)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "shard-%04zu", ordinal);
    return buf;
}

Json
ShardDescriptor::toJson() const
{
    Json indicesJson = Json::array();
    for (std::size_t index : indices)
        indicesJson.push(Json(static_cast<std::uint64_t>(index)));
    Json j = Json::object();
    j.set("id", id);
    j.set("indices", std::move(indicesJson));
    j.set("attempt", attempt);
    return j;
}

bool
ShardDescriptor::fromJson(const Json &json, ShardDescriptor &out)
{
    if (!json.isObject() || !json.has("id") || !json.has("indices")
        || !json.at("indices").isArray())
        return false;
    out.id = json.getString("id", "");
    out.attempt = static_cast<int>(json.getInt("attempt", 0));
    out.indices.clear();
    const Json &arr = json.at("indices");
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr.at(i).isNumber())
            return false;
        out.indices.push_back(
            static_cast<std::size_t>(arr.at(i).asInt()));
    }
    return !out.id.empty();
}

Json
ShardDelta::toJson() const
{
    Json pointsJson = Json::array();
    for (const DeltaPoint &point : points) {
        Json p = Json::object();
        p.set("index", static_cast<std::uint64_t>(point.index));
        p.set("config_hash", point.configHash);
        p.set("failed", point.failed);
        p.set("result", point.result);
        pointsJson.push(std::move(p));
    }
    Json j = Json::object();
    j.set("id", id);
    j.set("owner", owner);
    j.set("partial", partial);
    j.set("points", std::move(pointsJson));
    return j;
}

bool
ShardDelta::fromJson(const Json &json, ShardDelta &out)
{
    if (!json.isObject() || !json.has("id") || !json.has("points")
        || !json.at("points").isArray())
        return false;
    out.id = json.getString("id", "");
    out.owner = json.getString("owner", "");
    out.partial = json.getBool("partial", false);
    out.points.clear();
    const Json &arr = json.at("points");
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const Json &p = arr.at(i);
        if (!p.isObject() || !p.has("index")
            || !p.has("config_hash") || !p.has("result")
            || !p.at("index").isNumber())
            return false;
        DeltaPoint point;
        point.index =
            static_cast<std::size_t>(p.at("index").asInt());
        point.configHash = p.getString("config_hash", "");
        point.failed = p.getBool("failed", false);
        point.result = p.at("result");
        out.points.push_back(std::move(point));
    }
    return !out.id.empty();
}

} // namespace qc
