/**
 * @file
 * Deterministic fault injection for the sweep service's failure
 * machinery. A FaultInjector is parsed from a spec string (the
 * `--fault` flag or the QCARCH_FAULT environment variable) and
 * threaded through the coordinator, the worker and the `qcarch
 * sweep` CLI path, so the kill-matrix CI gate and the tests can
 * place crashes at the exact protocol points the recovery story
 * claims to survive:
 *
 *   crash-before-commit   worker: delta written + fsync'd, process
 *                         dies before the rename publishes it
 *   crash-after-commit    worker: delta renamed into results/,
 *                         process dies before releasing its lease
 *   torn-delta            worker: half the delta bytes are renamed
 *                         into results/ (simulating a non-durable
 *                         commit), then the process dies
 *   stale-heartbeat       worker: acquires its lease, then never
 *                         renews it and dawdles past the TTL, so
 *                         the coordinator reclaims a lease whose
 *                         owner is still alive
 *   slow-worker=MS        worker: sleeps MS milliseconds before
 *                         each point (widens race windows)
 *   crash-at-point=K      sweep/serve: the process dies immediately
 *                         after the K-th point is finished (and,
 *                         with checkpointing on, checkpointed)
 *   crash-before-hoard-publish
 *                         hoard store: the object's bytes are
 *                         durably on disk as a temp, the process
 *                         dies before the rename publishes it (no
 *                         reader may ever see the object)
 *   crash-after-hoard-publish
 *                         hoard store: the object is published,
 *                         the process dies before committing the
 *                         point to the sweep document
 *
 * Injected crashes exit with FaultInjector::kExitCode so harnesses
 * can verify the fault actually fired.
 */

#ifndef QC_SERVE_FAULT_INJECTOR_HH
#define QC_SERVE_FAULT_INJECTOR_HH

#include <cstddef>
#include <string>

namespace qc {

class FaultInjector
{
  public:
    /** Exit code of an injected crash (documented in qcarch
     *  --help; distinct from 0/1/2 usage codes and the
     *  interrupted-with-checkpoint code 3). */
    static constexpr int kExitCode = 42;

    /** The faults `parse` accepts, for error messages and docs. */
    static const char *validSpecs();

    /** Disarmed injector: every query is false, fire() no-ops. */
    FaultInjector() = default;

    /**
     * Parse a spec string ("crash-before-commit",
     * "slow-worker=50", ...). Empty spec → disarmed. Throws
     * std::invalid_argument listing the valid specs otherwise.
     */
    static FaultInjector parse(const std::string &spec);

    /** parse(getenv("QCARCH_FAULT")), disarmed when unset. */
    static FaultInjector fromEnv();

    bool armed() const { return !kind_.empty(); }
    const std::string &kind() const { return kind_; }

    /** The K of crash-at-point=K / the MS of slow-worker=MS. */
    long param() const { return param_; }

    /** True iff armed with exactly this fault kind. */
    bool is(const std::string &kind) const { return kind_ == kind; }

    /**
     * Crash (exit kExitCode, after flushing a stderr note) iff
     * armed with `kind`. The crash sites call this inline:
     * fire("crash-before-commit") between the delta fsync and its
     * rename, etc.
     */
    void fire(const std::string &kind) const;

    /** fire("crash-at-point") iff pointsDone == param(). */
    void fireAtPoint(std::size_t pointsDone) const;

    /** Sleep this thread iff armed with slow-worker. */
    void maybeSleep() const;

  private:
    std::string kind_;
    long param_ = 0;
};

} // namespace qc

#endif // QC_SERVE_FAULT_INJECTOR_HH
