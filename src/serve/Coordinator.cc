#include "serve/Coordinator.hh"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/DurableFile.hh"
#include "serve/Lease.hh"
#include "serve/Protocol.hh"
#include "sweep/SweepPlan.hh"

namespace qc {

namespace {

namespace fs = std::filesystem;

/** Appends timestamped lines to DIR/log (flushed per line — the
 *  kill-matrix gate greps this file after kills) and mirrors them
 *  to stderr unless quiet. */
class ServeLog
{
  public:
    ServeLog(const std::string &path, bool quiet)
        // qclint: allow(raw-io): append-only human-readable log, not a commit artifact; losing a tail line on crash is acceptable
        : file_(std::fopen(path.c_str(), "a")), quiet_(quiet),
          start_(std::chrono::steady_clock::now())
    {
        if (!file_)
            throw std::runtime_error("cannot open log " + path);
    }

    ~ServeLog()
    {
        if (file_)
            std::fclose(file_);
    }

    void operator()(const char *format, ...)
        __attribute__((format(printf, 2, 3)))
    {
        char line[1024];
        va_list args;
        va_start(args, format);
        std::vsnprintf(line, sizeof line, format, args);
        va_end(args);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::fprintf(file_, "[serve +%.3fs] %s\n", elapsed, line);
        std::fflush(file_);
        if (!quiet_) {
            std::fprintf(stderr, "[serve] %s\n", line);
            std::fflush(stderr);
        }
    }

  private:
    std::FILE *file_;
    bool quiet_;
    std::chrono::steady_clock::time_point start_;
};

/** Sorted *.json entries of a directory (torn temp files carry a
 *  .tmp infix and are excluded by construction of their names). */
std::vector<std::string>
listJsonFiles(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 5
            && name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** Refuse to checkpoint onto directories/sockets/etc (same guard
 *  as the sweep engine: a mistyped --out should fail loudly). */
void
checkCheckpointTarget(const std::string &path)
{
    std::error_code ec;
    const fs::file_status status = fs::symlink_status(path, ec);
    if (!ec && fs::exists(status) && !fs::is_regular_file(status)) {
        throw std::runtime_error(
            "checkpoint path " + path
            + " exists and is not a regular file");
    }
}

struct ShardState
{
    ShardDescriptor desc;
};

class Coordinator
{
  public:
    Coordinator(const SweepSpec &spec,
                const CoordinatorOptions &options)
        : options_(options), dir_(options.dir), assembler_(spec),
          log_((prepareRoot(), dir_.logFile()), options.quiet)
    {
    }

    CoordinatorReport run()
    {
        checkCheckpointTarget(options_.outPath);
        resumeFromCheckpoint();
        prepareDirs();
        mergeLeftoverDeltas();
        publishQueue();
        publishManifest();
        loop();
        report_.resumed = assembler_.resumedCount();
        report_.failed = assembler_.failedPoints();
        return report_;
    }

  private:
    /** The log lives inside the root, so the root must exist
     *  before the log member constructs. */
    void prepareRoot() const
    {
        fs::create_directories(dir_.root);
    }

    void prepareDirs()
    {
        fs::create_directories(dir_.queueDir());
        fs::create_directories(dir_.leaseDir());
        fs::create_directories(dir_.resultDir());
        // A leftover done marker would make fresh workers exit
        // immediately.
        std::remove(dir_.doneMarker().c_str());
    }

    void resumeFromCheckpoint()
    {
        std::error_code ec;
        if (!fs::exists(options_.outPath, ec)
            || fs::file_size(options_.outPath, ec) == 0)
            return;
        // Throws on foreign/edited documents — same contract as
        // `qcarch sweep --resume` (docs/SWEEPS.md).
        assembler_.applyResume(Json::loadFile(options_.outPath));
        log_("resumed %zu unique points from %s",
             assembler_.resumedCount(), options_.outPath.c_str());
    }

    /**
     * Deltas committed while no coordinator was running (or not
     * yet merged when it died) are the crash-recovery record:
     * merge them before building the new queue, then checkpoint
     * and delete them so the restart is idempotent.
     */
    void mergeLeftoverDeltas()
    {
        const std::vector<std::string> files =
            listJsonFiles(dir_.resultDir());
        for (const std::string &file : files)
            mergeDelta(file, /*startup=*/true);
        if (!files.empty()) {
            checkpoint();
            for (const std::string &file : files)
                std::remove(file.c_str());
            log_("recovered %zu leftover delta file(s)",
                 files.size());
        }
        // Stale queue entries and leases belong to the previous
        // generation; the queue is rebuilt from what is still
        // pending, and orphaned leases would only block shards a
        // still-running old worker no longer owns.
        for (const std::string &file :
             listJsonFiles(dir_.queueDir()))
            std::remove(file.c_str());
        std::error_code ec;
        for (const auto &entry :
             fs::directory_iterator(dir_.leaseDir(), ec))
            std::remove(entry.path().string().c_str());
    }

    void publishQueue()
    {
        const std::vector<std::size_t> pending =
            assembler_.pending();
        std::size_t shardPoints = options_.shardPoints;
        if (shardPoints == 0) {
            const std::size_t workers = std::max(
                1, options_.workersExpected);
            shardPoints =
                std::max<std::size_t>(1,
                                      pending.size() / (4 * workers));
        }
        std::size_t ordinal = 0;
        for (std::size_t begin = 0; begin < pending.size();
             begin += shardPoints) {
            ShardDescriptor desc;
            desc.id = shardId(ordinal++);
            const std::size_t end =
                std::min(begin + shardPoints, pending.size());
            desc.indices.assign(pending.begin() + begin,
                                pending.begin() + end);
            writeFileDurable(dir_.queueEntry(desc.id),
                             desc.toJson().dump(2) + "\n");
            shards_[desc.id] = ShardState{desc};
        }
        log_("queued %zu shard(s) of <= %zu point(s) "
             "(%zu pending of %zu unique)",
             shards_.size(), shardPoints, pending.size(),
             assembler_.plan().unique.size());
    }

    void publishManifest()
    {
        std::int64_t generation = 1;
        std::error_code ec;
        if (fs::exists(dir_.manifest(), ec)) {
            try {
                generation = Json::loadFile(dir_.manifest())
                                 .getInt("generation", 0)
                             + 1;
            } catch (const std::exception &) {
                // Torn manifest from a killed coordinator: the
                // durable rewrite below replaces it.
            }
        }
        Json manifest = Json::object();
        manifest.set("generation", generation);
        manifest.set("lease_seconds", options_.leaseSeconds);
        manifest.set("runner", assembler_.spec().runner);
        manifest.set("sweep", assembler_.spec().name);
        manifest.set("spec", assembler_.spec().toJson());
        writeFileDurable(dir_.manifest(),
                         manifest.dump(2) + "\n");
        log_("manifest published (generation %lld, lease %.1fs)",
             static_cast<long long>(generation),
             options_.leaseSeconds);
    }

    void loop()
    {
        auto lastCheckpoint = std::chrono::steady_clock::now();
        bool dirty = false;
        while (true) {
            if (options_.stopRequested && options_.stopRequested()) {
                checkpoint();
                writeFileDurable(dir_.doneMarker(),
                                 "interrupted\n");
                log_("stop requested: checkpoint written, "
                     "%zu unique point(s) still pending",
                     assembler_.pending().size());
                report_.interrupted = true;
                report_.exitCode = kInterruptedExit;
                return;
            }

            for (const std::string &file :
                 listJsonFiles(dir_.resultDir())) {
                if (processed_.count(file))
                    continue;
                processed_.insert(file);
                if (mergeDelta(file, /*startup=*/false))
                    dirty = true;
            }

            reclaimStaleLeases();

            const auto now = std::chrono::steady_clock::now();
            const double since =
                std::chrono::duration<double>(now - lastCheckpoint)
                    .count();
            if (dirty && since >= options_.checkpointSeconds) {
                checkpoint();
                lastCheckpoint = now;
                dirty = false;
            }

            // The CI coordinator-crash leg: die only after the
            // K-th merged point is durably checkpointed, so the
            // restart must recover exactly the rest.
            if (options_.fault.is("crash-at-point")
                && report_.executed
                       >= static_cast<std::size_t>(
                           options_.fault.param())) {
                checkpoint();
                options_.fault.fire("crash-at-point");
            }

            if (assembler_.complete()) {
                checkpoint();
                writeFileDurable(dir_.doneMarker(), "complete\n");
                log_("sweep complete: %zu executed, %zu resumed, "
                     "%zu duplicate point(s), %zu rejected "
                     "delta(s), %zu reclaim(s)",
                     report_.executed, assembler_.resumedCount(),
                     report_.duplicates, report_.rejected,
                     report_.reclaimedExpired
                         + report_.reclaimedDead);
                return;
            }

            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.pollMs));
        }
    }

    /** Returns true iff at least one new point merged. */
    bool mergeDelta(const std::string &file, bool startup)
    {
        Json json;
        try {
            json = Json::loadFile(file);
        } catch (const std::exception &) {
            log_("rejected torn delta %s (unparsable; deleted)",
                 file.c_str());
            std::remove(file.c_str());
            ++report_.rejected;
            return false;
        }
        ShardDelta delta;
        if (!ShardDelta::fromJson(json, delta)) {
            log_("rejected malformed delta %s (deleted)",
                 file.c_str());
            std::remove(file.c_str());
            ++report_.rejected;
            return false;
        }

        const SweepPlan &plan = assembler_.plan();
        for (const DeltaPoint &point : delta.points) {
            const bool canonical =
                point.index < plan.points.size()
                && plan.canonical[point.index] == point.index;
            if (!canonical
                || point.configHash
                       != hexConfigHash(plan.hashes[point.index])) {
                log_("rejected conflicting delta %s (point %zu "
                     "config_hash mismatch; deleted)",
                     file.c_str(), point.index);
                std::remove(file.c_str());
                ++report_.rejected;
                return false;
            }
        }

        bool mergedAny = false;
        for (const DeltaPoint &point : delta.points) {
            if (assembler_.setResult(point.index, point.result,
                                     point.failed)) {
                ++report_.executed;
                mergedAny = true;
            } else {
                ++report_.duplicates;
                if (!startup) {
                    log_("duplicate point %zu in %s "
                         "(already merged; idempotent)",
                         point.index, file.c_str());
                }
            }
        }
        if (!startup)
            finishShardBookkeeping(delta);
        return mergedAny;
    }

    void finishShardBookkeeping(const ShardDelta &delta)
    {
        auto it = shards_.find(delta.id);
        if (it == shards_.end())
            return; // previous-generation shard; content merged
        std::vector<std::size_t> &indices = it->second.desc.indices;
        std::set<std::size_t> covered;
        for (const DeltaPoint &point : delta.points)
            covered.insert(point.index);
        indices.erase(std::remove_if(indices.begin(), indices.end(),
                                     [&](std::size_t index) {
                                         return covered.count(
                                             index);
                                     }),
                      indices.end());
        // The committing worker leaves its lease in place as a
        // commit fence; removing it is this function's job, and
        // only AFTER the queue entry reflects the delta — so no
        // worker can re-acquire the shard from a stale descriptor
        // and recompute committed points.
        if (delta.partial && !indices.empty()) {
            ShardDescriptor &desc = it->second.desc;
            ++desc.attempt;
            writeFileDurable(dir_.queueEntry(desc.id),
                             desc.toJson().dump(2) + "\n");
            std::remove(dir_.lease(desc.id).c_str());
            log_("partial delta for %s: %zu point(s) re-queued "
                 "(attempt %d)",
                 desc.id.c_str(), indices.size(), desc.attempt);
            return;
        }
        std::remove(dir_.queueEntry(delta.id).c_str());
        std::remove(dir_.lease(delta.id).c_str());
        log_("shard %s committed (%zu point(s) by %s)",
             delta.id.c_str(), delta.points.size(),
             delta.owner.c_str());
        shards_.erase(it);
    }

    void reclaimStaleLeases()
    {
        const std::int64_t now = nowEpochMs();
        // Iterate over a name snapshot: reclaiming mutates shards_.
        std::vector<std::string> ids;
        for (const auto &[id, state] : shards_)
            ids.push_back(id);
        for (const std::string &id : ids)
            reclaimIfStale(id, now);
    }

    void reclaimIfStale(const std::string &id, std::int64_t now)
    {
        // A delta that landed after this iteration's merge scan
        // must be merged before any reclaim decision: reclaiming a
        // committed-but-unmerged shard would re-queue points the
        // next merge is about to cover (crash-after-commit leaves
        // exactly this state: delta on disk, owner dead, lease
        // held).
        for (const std::string &file :
             listJsonFiles(dir_.resultDir())) {
            const std::string name =
                fs::path(file).filename().string();
            if (name.rfind(id + ".", 0) == 0
                && !processed_.count(file))
                return;
        }
        const std::string leasePath = dir_.lease(id);
        LeaseInfo info;
        const bool readable = Lease::read(leasePath, info);
        if (!readable) {
            std::error_code ec;
            if (!fs::exists(leasePath, ec))
                return; // no lease: the shard is simply free
            // An unparsable lease means its writer died mid-write
            // (tryAcquire publishes in place); nobody owns it.
            reclaim(id, leasePath, "unreadable lease");
            return;
        }
        if (!info.ownerAlive()) {
            // Dead-PID fast path: no need to wait out the TTL.
            reclaim(id, leasePath,
                    ("dead owner pid "
                     + std::to_string(info.pid))
                        .c_str(),
                    /*expired=*/false);
        } else if (info.expired(now)) {
            reclaim(id, leasePath,
                    ("expired lease of pid "
                     + std::to_string(info.pid))
                        .c_str(),
                    /*expired=*/true);
        }
    }

    void reclaim(const std::string &id,
                 const std::string &leasePath, const char *reason,
                 bool expired = false)
    {
        auto it = shards_.find(id);
        if (it == shards_.end())
            return;
        // Drop committed indices first: a shard whose delta landed
        // before its owner died must not re-execute any point.
        ShardDescriptor &desc = it->second.desc;
        std::vector<std::size_t> remaining;
        for (std::size_t index : desc.indices) {
            if (!assembler_.has(index))
                remaining.push_back(index);
        }
        const std::size_t dropped =
            desc.indices.size() - remaining.size();
        // Re-publish the queue entry BEFORE the steal: while the
        // lease file exists no worker can acquire the shard, so no
        // one can read a descriptor that is mid-rewrite.
        if (remaining.empty()) {
            std::remove(dir_.queueEntry(id).c_str());
        } else {
            desc.indices = std::move(remaining);
            ++desc.attempt;
            writeFileDurable(dir_.queueEntry(id),
                             desc.toJson().dump(2) + "\n");
        }
        if (!Lease::steal(leasePath,
                          dir_.leaseDir() + "/.reclaim-" + id)) {
            // The owner released it in this instant — it committed
            // after all; the delta scan will finish the shard.
            return;
        }
        if (expired)
            ++report_.reclaimedExpired;
        else
            ++report_.reclaimedDead;
        if (dropped > 0 && !desc.indices.empty()) {
            log_("reclaimed %s for %s: dropped %zu committed "
                 "point(s), re-queued %zu (attempt %d)",
                 reason, id.c_str(), dropped, desc.indices.size(),
                 desc.attempt);
        } else if (desc.indices.empty()) {
            log_("reclaimed %s for %s: shard already fully "
                 "committed, not re-queued",
                 reason, id.c_str());
            shards_.erase(id);
        } else {
            log_("reclaimed %s for %s: re-queued %zu point(s) "
                 "(attempt %d)",
                 reason, id.c_str(), desc.indices.size(),
                 desc.attempt);
        }
    }

    void checkpoint()
    {
        writeFileDurable(options_.outPath,
                         assembler_.document().dump(2) + "\n");
    }

    CoordinatorOptions options_;
    ServeDir dir_;
    SweepAssembler assembler_;
    ServeLog log_;
    std::map<std::string, ShardState> shards_;
    std::set<std::string> processed_;
    CoordinatorReport report_;
};

} // namespace

CoordinatorReport
runCoordinator(const SweepSpec &spec,
               const CoordinatorOptions &options)
{
    if (options.outPath.empty())
        throw std::invalid_argument("coordinator needs an --out path");
    if (options.dir.empty())
        throw std::invalid_argument(
            "coordinator needs a coordination directory");
    Coordinator coordinator(spec, options);
    return coordinator.run();
}

} // namespace qc
