/**
 * @file
 * The sweep service worker behind `qcarch work`: polls a
 * coordination directory (Protocol.hh), checks a shard out under
 * an exclusive lease, computes its points through the same
 * SweepRunner path the single-shot engine uses, and commits the
 * delta back durably. Idle workers back off exponentially with
 * jitter, so a fleet pointed at an empty queue does not hammer the
 * filesystem in lockstep.
 *
 * A worker heartbeats its lease (renewal every TTL/3) from a side
 * thread while computing. Losing the lease — the coordinator
 * reclaimed it after a stall — aborts the commit: ownership is
 * re-verified (nonce re-read) immediately before the delta is
 * published, so a reclaimed worker wastes its work instead of
 * racing the shard's new owner. A stop request (SIGINT/SIGTERM)
 * commits the points already computed as a partial delta and exits
 * with kInterruptedExit; the coordinator re-queues the rest.
 */

#ifndef QC_SERVE_WORKER_HH
#define QC_SERVE_WORKER_HH

#include <functional>
#include <string>

#include "serve/FaultInjector.hh"

namespace qc {

struct WorkerOptions
{
    std::string dir;    ///< coordination directory
    int pollMs = 100;   ///< initial idle poll / backoff floor
    int backoffMaxMs = 2000; ///< idle backoff ceiling
    /** Exit 0 after this long with no shard acquired and no done
     *  marker (0 = wait forever for the coordinator). */
    double maxIdleSeconds = 0.0;
    bool quiet = false;
    FaultInjector fault; ///< crash-before/after-commit, torn-delta,
                         ///< stale-heartbeat, slow-worker=MS
    /** Polled between points; true → partial commit + exit
     *  kInterruptedExit. */
    std::function<bool()> stopRequested;
};

struct WorkerReport
{
    std::size_t shards = 0; ///< deltas committed (partials count)
    std::size_t points = 0; ///< points computed and committed
    std::size_t abandoned = 0; ///< shards dropped to a lost lease
    bool interrupted = false;
    int exitCode = 0;
};

/**
 * Run the worker until the coordinator writes the done marker
 * (exit 0), the idle limit passes (exit 0), or a stop request
 * drains it (exit kInterruptedExit). Throws on setup problems
 * (unreadable directory, unknown runner in the manifest).
 */
WorkerReport runWorker(const WorkerOptions &options);

} // namespace qc

#endif // QC_SERVE_WORKER_HH
