/**
 * @file
 * Time-limited exclusive leases over a filesystem directory — the
 * at-most-one-owner checkout at the heart of the sweep service,
 * modeled on OpenISR's parcel locks: a parcel (here, a point
 * shard) is checked out on at most one client at a time, the lock
 * carries its owner and an expiry, and an owner that stops
 * heartbeating forfeits the checkout.
 *
 * A lease is one JSON file. Acquisition is O_CREAT|O_EXCL — the
 * filesystem arbitrates ties, so two workers racing for a shard
 * cannot both win. Renewal atomically rewrites the file after
 * verifying the nonce still matches (a renewal after a reclaim
 * must not resurrect the lease for the old owner). Expiry is
 * wall-clock (epoch milliseconds) plus a dead-owner fast path:
 * a lease whose recorded PID no longer exists is reclaimable
 * immediately, without waiting out the TTL. PIDs are only
 * meaningful on one box; remote workers rely on the TTL alone.
 *
 * Races that slip the window (an owner renewing in the same
 * instant its lease is reclaimed) are tolerated one layer up:
 * workers re-verify ownership immediately before publishing a
 * delta, and the coordinator's merge accepts idempotent duplicate
 * results (config_hash-checked), so the worst case is wasted work,
 * never a wrong document.
 */

#ifndef QC_SERVE_LEASE_HH
#define QC_SERVE_LEASE_HH

#include <cstdint>
#include <string>

namespace qc {

/** Epoch milliseconds (wall-clock — leases expire in real time).
 *  Reads qc::WallClock::current(), so tests can install a
 *  FakeWallClock (common/Clock.hh) and step lease expiry by hand. */
std::int64_t nowEpochMs();

/** The contents of one lease file. */
struct LeaseInfo
{
    int pid = 0;            ///< owner process (same-box liveness)
    std::string nonce;      ///< owner instance (PID reuse guard)
    std::int64_t expiresMs = 0; ///< epoch ms; past = reclaimable
    double ttlSeconds = 0;  ///< renewal interval basis

    bool expired(std::int64_t nowMs) const
    {
        return nowMs > expiresMs;
    }

    /** False iff pid is known-dead on this box (ESRCH). */
    bool ownerAlive() const;
};

class Lease
{
  public:
    /**
     * Try to create `path` exclusively (O_CREAT|O_EXCL) holding
     * `info` with expiry now + ttl. Returns true on acquisition,
     * false if the file already exists. Throws std::runtime_error
     * on I/O errors other than EEXIST.
     */
    static bool tryAcquire(const std::string &path, LeaseInfo info);

    /**
     * Read a lease file. Returns false if absent or unparsable (a
     * torn lease is treated as absent by readers; writers always
     * publish whole files via rename).
     */
    static bool read(const std::string &path, LeaseInfo &out);

    /**
     * Extend the expiry to now + ttl iff the file still holds our
     * nonce. Returns false — and leaves the file alone — if the
     * lease is gone or owned by someone else (the caller lost the
     * checkout and must stop publishing).
     */
    static bool renew(const std::string &path,
                      const LeaseInfo &mine);

    /** Remove the lease iff it still holds our nonce. Returns true
     *  if removed. */
    static bool release(const std::string &path,
                        const std::string &nonce);

    /**
     * Reclaim a stale lease: atomically rename it aside (so two
     * reclaimers cannot both process the same lease file — the
     * loser's rename fails with ENOENT) and delete it. Returns
     * true iff this caller won the rename. The shard becomes
     * acquirable again via tryAcquire. `aside` must be on the same
     * filesystem.
     */
    static bool steal(const std::string &path,
                      const std::string &aside);

    /** A process-unique owner nonce ("pid-epochms-counter"). */
    static std::string makeNonce();
};

} // namespace qc

#endif // QC_SERVE_LEASE_HH
