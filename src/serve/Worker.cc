#include "serve/Worker.hh"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/DurableFile.hh"
#include "common/Mutex.hh"
#include "serve/Coordinator.hh" // kInterruptedExit
#include "serve/Lease.hh"
#include "serve/Protocol.hh"
#include "sweep/SweepPlan.hh"

namespace qc {

namespace {

namespace fs = std::filesystem;

void
note(const WorkerOptions &options, const char *format, ...)
    __attribute__((format(printf, 2, 3)));

void
note(const WorkerOptions &options, const char *format, ...)
{
    if (options.quiet)
        return;
    char line[512];
    va_list args;
    va_start(args, format);
    std::vsnprintf(line, sizeof line, format, args);
    va_end(args);
    std::fprintf(stderr, "[work %d] %s\n",
                 static_cast<int>(::getpid()), line);
    std::fflush(stderr);
}

/** Sorted queue descriptors currently on disk (torn ones
 *  skipped). */
std::vector<ShardDescriptor>
listQueue(const ServeDir &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(dir.queueDir(), ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 5
            && name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    std::vector<ShardDescriptor> out;
    for (const std::string &file : files) {
        try {
            ShardDescriptor desc;
            if (ShardDescriptor::fromJson(Json::loadFile(file),
                                          desc))
                out.push_back(std::move(desc));
        } catch (const std::exception &) {
            // Vanished between listing and load, or torn: skip.
        }
    }
    return out;
}

/**
 * Renews the lease every TTL/3 from a side thread; lost() flips
 * when a renewal fails (the lease was reclaimed or replaced). The
 * stop/lost handshake between the compute thread and the heartbeat
 * thread lives behind an annotated mutex, so clang's thread-safety
 * analysis proves every access is serialized.
 */
class Heartbeat
{
  public:
    Heartbeat(std::string path, LeaseInfo mine, bool suppressed)
        : path_(std::move(path)), mine_(std::move(mine))
    {
        if (suppressed)
            return; // stale-heartbeat fault: never renew
        thread_ = std::thread([this] { loop(); });
    }

    ~Heartbeat()
    {
        {
            MutexLock lock(mutex_);
            stop_ = true;
        }
        if (thread_.joinable())
            thread_.join();
    }

    bool lost() const QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return lost_;
    }

  private:
    bool stopRequested() const QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return stop_;
    }

    void markLost() QC_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        lost_ = true;
    }

    void loop()
    {
        const auto interval = std::chrono::milliseconds(
            std::max<long>(50,
                           static_cast<long>(mine_.ttlSeconds
                                             * 1000.0 / 3.0)));
        auto next = std::chrono::steady_clock::now() + interval;
        while (!stopRequested()) {
            if (std::chrono::steady_clock::now() >= next) {
                if (!Lease::renew(path_, mine_)) {
                    markLost();
                    return;
                }
                next = std::chrono::steady_clock::now() + interval;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }

    const std::string path_;
    const LeaseInfo mine_;
    std::thread thread_;
    mutable Mutex mutex_;
    bool stop_ QC_GUARDED_BY(mutex_) = false;
    bool lost_ QC_GUARDED_BY(mutex_) = false;
};

class Worker
{
  public:
    explicit Worker(const WorkerOptions &options)
        : options_(options), dir_(options.dir),
          nonce_(Lease::makeNonce()),
          jitter_(std::hash<std::string>{}(nonce_))
    {
    }

    WorkerReport run()
    {
        waitForManifest();
        if (report_.exitCode != 0 || done_)
            return report_;

        const Json manifest = Json::loadFile(dir_.manifest());
        ttlSeconds_ = manifest.getDouble("lease_seconds", 30.0);
        const Json *specJson = manifest.find("spec");
        if (!specJson) {
            throw std::invalid_argument(
                "serve manifest " + dir_.manifest()
                + " carries no spec");
        }
        const SweepSpec spec = SweepSpec::fromJson(*specJson);
        plan_ = SweepPlan::expand(spec);
        runner_ = &SweepRunnerRegistry::instance().get(spec.runner);
        note(options_, "joined %s: sweep \"%s\", %zu point(s), "
                       "lease %.1fs",
             dir_.root.c_str(), spec.name.c_str(),
             plan_.points.size(), ttlSeconds_);

        int backoffMs = options_.pollMs;
        auto lastProgress = std::chrono::steady_clock::now();
        while (true) {
            if (stopRequested()) {
                report_.interrupted = true;
                report_.exitCode = kInterruptedExit;
                return report_;
            }
            if (doneMarkerPresent())
                return report_;

            bool didWork = false;
            for (const ShardDescriptor &desc : listQueue(dir_)) {
                if (tryShard(desc)) {
                    didWork = true;
                    break; // rescan: the queue just changed
                }
                if (stopRequested() || report_.exitCode != 0)
                    break;
            }
            if (report_.exitCode != 0) // partial commit happened
                return report_;
            if (didWork) {
                backoffMs = options_.pollMs;
                lastProgress = std::chrono::steady_clock::now();
                continue;
            }

            const double idle =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - lastProgress)
                    .count();
            if (options_.maxIdleSeconds > 0
                && idle > options_.maxIdleSeconds) {
                note(options_,
                     "idle for %.1fs with nothing to acquire; "
                     "leaving",
                     idle);
                return report_;
            }
            // Exponential backoff with jitter: sleep a uniform
            // draw from [backoff/2, backoff], then double the
            // ceiling — idle fleets spread out instead of polling
            // in lockstep.
            std::uniform_int_distribution<int> draw(backoffMs / 2,
                                                    backoffMs);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(draw(jitter_)));
            backoffMs =
                std::min(backoffMs * 2, options_.backoffMaxMs);
        }
    }

  private:
    bool stopRequested() const
    {
        return options_.stopRequested && options_.stopRequested();
    }

    bool doneMarkerPresent()
    {
        std::error_code ec;
        if (!fs::exists(dir_.doneMarker(), ec))
            return false;
        note(options_, "done marker present; leaving");
        done_ = true;
        return true;
    }

    void waitForManifest()
    {
        bool announced = false;
        while (true) {
            std::error_code ec;
            if (fs::exists(dir_.manifest(), ec))
                return;
            if (doneMarkerPresent())
                return;
            if (stopRequested()) {
                report_.interrupted = true;
                report_.exitCode = kInterruptedExit;
                return;
            }
            if (!announced) {
                note(options_, "waiting for a manifest in %s",
                     dir_.root.c_str());
                announced = true;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.pollMs));
        }
    }

    /** Returns true iff the shard was acquired and committed. */
    bool tryShard(const ShardDescriptor &desc)
    {
        const std::string leasePath = dir_.lease(desc.id);
        LeaseInfo mine;
        mine.pid = static_cast<int>(::getpid());
        mine.nonce = nonce_;
        mine.ttlSeconds = ttlSeconds_;
        if (!Lease::tryAcquire(leasePath, mine))
            return false;
        note(options_, "acquired %s (%zu point(s), attempt %d)",
             desc.id.c_str(), desc.indices.size(), desc.attempt);

        // The stale-heartbeat fault fires once per process: hold
        // the lease without renewing and dawdle past the TTL, so
        // the coordinator reclaims a lease whose owner is alive.
        bool suppressHeartbeat = false;
        if (options_.fault.is("stale-heartbeat") && !staleDone_) {
            staleDone_ = true;
            suppressHeartbeat = true;
            const auto dawdle = std::chrono::milliseconds(
                static_cast<long>(ttlSeconds_ * 2200.0));
            note(options_,
                 "stale-heartbeat fault: holding %s silently for "
                 "%.1fs",
                 desc.id.c_str(), ttlSeconds_ * 2.2);
            std::this_thread::sleep_for(dawdle);
        }

        ShardDelta delta;
        delta.id = desc.id;
        delta.owner = nonce_;
        bool lost = false;
        {
            Heartbeat heartbeat(leasePath, mine, suppressHeartbeat);
            for (std::size_t index : desc.indices) {
                if (heartbeat.lost()) {
                    lost = true;
                    break;
                }
                if (stopRequested()) {
                    delta.partial = true;
                    break;
                }
                options_.fault.maybeSleep();
                delta.points.push_back(computePoint(index));
            }
            lost = lost || heartbeat.lost();
        }
        if (lost) {
            ++report_.abandoned;
            note(options_,
                 "lost the lease on %s mid-compute; abandoning "
                 "%zu computed point(s)",
                 desc.id.c_str(), delta.points.size());
            return false;
        }
        if (delta.partial && delta.points.empty()) {
            // Drained before computing anything: just put the
            // shard back.
            Lease::release(leasePath, nonce_);
            report_.interrupted = true;
            report_.exitCode = kInterruptedExit;
            return false;
        }
        return commit(desc, leasePath, delta);
    }

    DeltaPoint computePoint(std::size_t index)
    {
        DeltaPoint point;
        point.index = index;
        point.configHash = hexConfigHash(plan_.hashes[index]);
        try {
            point.result = runner_->runPoint(
                plan_.points[index].config, context_);
        } catch (const std::exception &error) {
            Json failure = Json::object();
            failure.set("error", std::string(error.what()));
            point.result = std::move(failure);
            point.failed = true;
        }
        return point;
    }

    bool commit(const ShardDescriptor &desc,
                const std::string &leasePath, ShardDelta &delta)
    {
        // Re-verify ownership immediately before publishing: if
        // the lease was reclaimed (and possibly re-acquired) while
        // we computed, our delta must not race the new owner's.
        LeaseInfo current;
        if (!Lease::read(leasePath, current)
            || current.nonce != nonce_) {
            ++report_.abandoned;
            note(options_,
                 "no longer own %s at commit time; abandoning "
                 "%zu point(s)",
                 desc.id.c_str(), delta.points.size());
            return false;
        }

        const std::string resultPath =
            dir_.result(desc.id, nonce_);
        const std::string body = delta.toJson().dump(2) + "\n";
        const std::string tmpSuffix = ".tmp-" + nonce_;

        if (options_.fault.is("torn-delta")) {
            // Publish half the bytes, then die: the coordinator
            // must reject the torn file and re-queue via lease
            // reclamation.
            writeFileTorn(resultPath, body, body.size() / 2,
                          tmpSuffix);
            options_.fault.fire("torn-delta");
        }
        if (options_.fault.is("crash-before-commit")) {
            // Write + fsync the temp file but never rename it in:
            // the published name must not appear.
            writeFileDurable(resultPath + tmpSuffix, body,
                             ".partial");
            options_.fault.fire("crash-before-commit");
        }

        writeFileDurable(resultPath, body, tmpSuffix);
        options_.fault.fire("crash-after-commit");
        // Deliberately NO lease release here: the lease doubles as
        // the commit fence. Until the coordinator has merged the
        // delta and removed (or rewritten) the queue entry, the
        // lease file keeps other workers from re-acquiring the
        // shard from the stale descriptor and recomputing
        // committed points; the coordinator removes the lease
        // together with its queue bookkeeping.

        ++report_.shards;
        report_.points += delta.points.size();
        note(options_, "committed %s%s (%zu point(s))",
             desc.id.c_str(), delta.partial ? " [partial]" : "",
             delta.points.size());
        if (delta.partial) {
            report_.interrupted = true;
            report_.exitCode = kInterruptedExit;
        }
        return true;
    }

    WorkerOptions options_;
    ServeDir dir_;
    std::string nonce_;
    std::mt19937 jitter_;
    double ttlSeconds_ = 30.0;
    SweepPlan plan_;
    const SweepRunner *runner_ = nullptr;
    SweepContext context_;
    bool staleDone_ = false;
    bool done_ = false;
    WorkerReport report_;
};

} // namespace

WorkerReport
runWorker(const WorkerOptions &options)
{
    if (options.dir.empty())
        throw std::invalid_argument(
            "worker needs a --coordinator directory");
    Worker worker(options);
    return worker.run();
}

} // namespace qc
