/**
 * @file
 * Umbrella header for the sweep service: the coordinator/worker
 * pair behind `qcarch serve` and `qcarch work`, the filesystem
 * lease protocol they coordinate through, and the fault injector
 * the kill-matrix CI gate drives them with. See docs/SERVE.md for
 * the protocol walkthrough and the failure matrix.
 */

#ifndef QC_SERVE_SERVE_HH
#define QC_SERVE_SERVE_HH

#include "serve/Coordinator.hh"
#include "serve/FaultInjector.hh"
#include "serve/Lease.hh"
#include "serve/Protocol.hh"
#include "serve/Worker.hh"

#endif // QC_SERVE_SERVE_HH
