#include "serve/Lease.hh"

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "api/Json.hh"
#include "common/Clock.hh"
#include "common/DurableFile.hh"

namespace qc {

namespace {

Json
toJson(const LeaseInfo &info)
{
    Json j = Json::object();
    j.set("pid", info.pid);
    j.set("nonce", info.nonce);
    j.set("expires_ms", info.expiresMs);
    j.set("ttl_seconds", info.ttlSeconds);
    return j;
}

bool
fromJson(const Json &j, LeaseInfo &out)
{
    // Lease files are written by other processes; treat them as
    // untrusted and read every field through bounds-checked
    // accessors so a corrupt file reads as "no valid lease".
    const Json *pid = j.find("pid");
    const Json *nonce = j.find("nonce");
    const Json *expires = j.find("expires_ms");
    std::size_t pidValue = 0;
    if (!pid || !nonce || !expires || !nonce->isString()
        || !pid->asIndex(pidValue)
        || pidValue > static_cast<std::size_t>(INT_MAX))
        return false;
    std::size_t expiresValue = 0;
    if (!expires->asIndex(expiresValue))
        return false;
    out.pid = static_cast<int>(pidValue);
    out.nonce = nonce->asString();
    out.expiresMs = static_cast<std::int64_t>(expiresValue);
    out.ttlSeconds = 0.0;
    if (const Json *ttl = j.find("ttl_seconds")) {
        if (!ttl->isNumber())
            return false;
        out.ttlSeconds = ttl->asDouble();
    }
    return true;
}

} // namespace

std::int64_t
nowEpochMs()
{
    // Routed through the injectable clock seam so lease-expiry
    // tests step a FakeWallClock instead of sleeping out TTLs.
    return wallClockEpochMs();
}

bool
LeaseInfo::ownerAlive() const
{
    if (pid <= 0)
        return true; // unknown owner: fall back to the TTL
    if (::kill(pid, 0) == 0)
        return true;
    return errno != ESRCH;
}

bool
Lease::tryAcquire(const std::string &path, LeaseInfo info)
{
    info.expiresMs =
        nowEpochMs()
        + static_cast<std::int64_t>(info.ttlSeconds * 1000.0);
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        throw std::runtime_error("cannot create lease " + path
                                 + ": " + std::strerror(errno));
    }
    const std::string body = toJson(info).dump(0) + "\n";
    const char *data = body.data();
    std::size_t left = body.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::remove(path.c_str());
            throw std::runtime_error("cannot write lease " + path
                                     + ": "
                                     + std::strerror(errno));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    return true;
}

bool
Lease::read(const std::string &path, LeaseInfo &out)
{
    try {
        return fromJson(Json::loadFile(path), out);
    } catch (const std::exception &) {
        return false;
    }
}

bool
Lease::renew(const std::string &path, const LeaseInfo &mine)
{
    LeaseInfo current;
    if (!read(path, current) || current.nonce != mine.nonce)
        return false;
    LeaseInfo renewed = mine;
    renewed.expiresMs =
        nowEpochMs()
        + static_cast<std::int64_t>(mine.ttlSeconds * 1000.0);
    // Atomic replace; the pre-write nonce check above keeps a
    // reclaimed-and-reacquired lease from being clobbered (the
    // remaining instant-race is tolerated by commit-time ownership
    // verification and idempotent merges — see the file comment).
    try {
        writeFileDurable(path, toJson(renewed).dump(0) + "\n",
                         ".renew." + mine.nonce);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

bool
Lease::release(const std::string &path, const std::string &nonce)
{
    LeaseInfo current;
    if (!read(path, current) || current.nonce != nonce)
        return false;
    return std::remove(path.c_str()) == 0;
}

bool
Lease::steal(const std::string &path, const std::string &aside)
{
    if (std::rename(path.c_str(), aside.c_str()) != 0)
        return false; // someone else already reclaimed it
    std::remove(aside.c_str());
    return true;
}

std::string
Lease::makeNonce()
{
    static std::atomic<unsigned> counter{0};
    return std::to_string(static_cast<int>(::getpid())) + "-"
           + std::to_string(nowEpochMs()) + "-"
           + std::to_string(counter.fetch_add(1));
}

} // namespace qc
