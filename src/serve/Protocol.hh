/**
 * @file
 * The on-disk protocol `qcarch serve` (coordinator) and `qcarch
 * work` (workers) speak, OpenISR-style: the coordinator expands a
 * sweep spec into point *shards* (parcels), workers check a shard
 * out under a time-limited exclusive lease, compute it, and check
 * the result back in as a durable *delta* the coordinator merges
 * into the single checkpoint document.
 *
 * Everything lives under one coordination directory:
 *
 *     DIR/manifest.json   spec + lease TTL + generation; written
 *                         last at startup, so a manifest's
 *                         presence means the directory is open
 *     DIR/queue/          one descriptor per uncommitted shard:
 *                         {"id", "indices": [plan indices],
 *                          "attempt"} — rewritten (attempt+1,
 *                         committed indices dropped) when a lease
 *                         is reclaimed or a partial delta lands
 *     DIR/leases/         at-most-one-owner checkouts (Lease.hh)
 *     DIR/results/        committed shard deltas (atomic+durable
 *                         rename; the coordinator's crash-recovery
 *                         record)
 *     DIR/done            written by the coordinator on exit:
 *                         "complete" or "interrupted"; workers
 *                         exit when it appears
 *     DIR/log             coordinator event log (reclaims, merges,
 *                         rejections — the kill-matrix gate greps
 *                         it)
 *
 * Shard indices refer to the deterministic SweepPlan expansion of
 * the manifest's spec, which both sides compute independently —
 * the protocol never ships configurations, only indices, and every
 * delta point carries its config_hash so a mismatched expansion
 * (version skew, edited spec) is rejected at merge time instead of
 * corrupting the document.
 */

#ifndef QC_SERVE_PROTOCOL_HH
#define QC_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "api/Json.hh"

namespace qc {

/** Path helpers for a coordination directory. */
struct ServeDir
{
    std::string root;

    explicit ServeDir(std::string rootPath)
        : root(std::move(rootPath))
    {
    }

    std::string manifest() const { return root + "/manifest.json"; }
    std::string queueDir() const { return root + "/queue"; }
    std::string leaseDir() const { return root + "/leases"; }
    std::string resultDir() const { return root + "/results"; }
    std::string doneMarker() const { return root + "/done"; }
    std::string logFile() const { return root + "/log"; }

    std::string queueEntry(const std::string &shardId) const
    {
        return queueDir() + "/" + shardId + ".json";
    }
    std::string lease(const std::string &shardId) const
    {
        return leaseDir() + "/" + shardId + ".lease";
    }
    /** Delta names carry the committing worker's nonce so a
     *  partial commit and a later completion of the same shard
     *  never collide (each delta file is immutable once renamed
     *  in). */
    std::string result(const std::string &shardId,
                       const std::string &nonce) const
    {
        return resultDir() + "/" + shardId + "." + nonce + ".json";
    }
};

/** "shard-0007" — stable, sortable shard names. */
std::string shardId(std::size_t ordinal);

/**
 * Largest attempt counter a queue entry may carry. Attempts only
 * grow by one per reclaim, so any larger value means a corrupt or
 * hostile descriptor; rejecting it keeps the int field from being
 * fed an out-of-range number.
 */
constexpr std::size_t kMaxShardAttempts = 1u << 20;

/** One queue descriptor. */
struct ShardDescriptor
{
    std::string id;
    std::vector<std::size_t> indices; ///< canonical plan indices
    int attempt = 0;

    Json toJson() const;
    /** False on malformed/torn content (readers skip it). */
    static bool fromJson(const Json &json, ShardDescriptor &out);
};

/** One computed point inside a delta. */
struct DeltaPoint
{
    std::size_t index = 0;  ///< canonical plan index
    std::string configHash; ///< hexConfigHash of the plan config
    bool failed = false;    ///< result is {"error": ...}
    Json result;            ///< runner metrics (or the error)
};

/** A committed shard delta. */
struct ShardDelta
{
    std::string id;
    std::string owner;    ///< committing worker's lease nonce
    bool partial = false; ///< a drain cut the shard short
    std::vector<DeltaPoint> points;

    Json toJson() const;
    /** False on malformed/torn content. */
    static bool fromJson(const Json &json, ShardDelta &out);
};

} // namespace qc

#endif // QC_SERVE_PROTOCOL_HH
