#include "serve/FaultInjector.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include <unistd.h>

namespace qc {

namespace {

bool
needsParam(const std::string &kind)
{
    return kind == "slow-worker" || kind == "crash-at-point";
}

bool
knownKind(const std::string &kind)
{
    return kind == "crash-before-commit"
           || kind == "crash-after-commit" || kind == "torn-delta"
           || kind == "stale-heartbeat"
           || kind == "crash-before-hoard-publish"
           || kind == "crash-after-hoard-publish"
           || needsParam(kind);
}

} // namespace

const char *
FaultInjector::validSpecs()
{
    return "crash-before-commit, crash-after-commit, torn-delta, "
           "stale-heartbeat, crash-before-hoard-publish, "
           "crash-after-hoard-publish, slow-worker=MS, "
           "crash-at-point=K";
}

FaultInjector
FaultInjector::parse(const std::string &spec)
{
    FaultInjector fault;
    if (spec.empty())
        return fault;
    const std::size_t eq = spec.find('=');
    const std::string kind = spec.substr(0, eq);
    if (!knownKind(kind)) {
        throw std::invalid_argument("unknown fault \"" + spec
                                    + "\" (valid: "
                                    + validSpecs() + ")");
    }
    if (needsParam(kind) != (eq != std::string::npos)) {
        throw std::invalid_argument(
            "fault \"" + spec + "\" "
            + (needsParam(kind) ? "needs" : "does not take")
            + " a =VALUE parameter (valid: " + validSpecs() + ")");
    }
    fault.kind_ = kind;
    if (eq != std::string::npos) {
        try {
            fault.param_ = std::stol(spec.substr(eq + 1));
        } catch (const std::exception &) {
            throw std::invalid_argument(
                "fault \"" + spec
                + "\" has a non-numeric parameter (valid: "
                + validSpecs() + ")");
        }
        if (fault.param_ < 0) {
            throw std::invalid_argument(
                "fault \"" + spec
                + "\" has a negative parameter (valid: "
                + validSpecs() + ")");
        }
    }
    return fault;
}

FaultInjector
FaultInjector::fromEnv()
{
    const char *spec = std::getenv("QCARCH_FAULT");
    return parse(spec ? spec : "");
}

void
FaultInjector::fire(const std::string &kind) const
{
    if (kind_ != kind)
        return;
    std::fprintf(stderr, "[fault] %s: injected crash (pid %d)\n",
                 kind_.c_str(), static_cast<int>(::getpid()));
    std::fflush(stderr);
    // _exit, not exit: an injected crash must look like a kill —
    // no atexit handlers, no stream flushing, no stack unwinding.
    ::_exit(kExitCode);
}

void
FaultInjector::fireAtPoint(std::size_t pointsDone) const
{
    if (is("crash-at-point")
        && pointsDone == static_cast<std::size_t>(param_))
        fire("crash-at-point");
}

void
FaultInjector::maybeSleep() const
{
    if (is("slow-worker")) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(param_));
    }
}

} // namespace qc
