/**
 * @file
 * The sweep service coordinator behind `qcarch serve`: expands a
 * sweep spec into point shards, publishes them in a coordination
 * directory (Protocol.hh), merges the shard deltas workers commit
 * back, and maintains the single atomic checkpoint document —
 * exactly the document a single-shot `qcarch sweep` would write,
 * byte for byte, because both paths aggregate through
 * SweepAssembler.
 *
 * Failure handling, all of it exercised by tests/test_serve.cc and
 * the CI kill matrix (tools/kill_matrix.sh):
 *
 *  - A worker that dies (or stops heartbeating) forfeits its lease;
 *    the coordinator reclaims it — rename-aside, so each expiry is
 *    reclaimed exactly once — and re-queues only the indices not
 *    already committed, so a shard whose delta landed before its
 *    owner died is never re-executed.
 *  - Deltas are validated before merging: torn/unparsable files and
 *    config_hash conflicts are rejected (deleted + logged), never
 *    merged. Duplicate deltas for already-merged points (a
 *    presumed-dead worker that actually committed) merge
 *    idempotently.
 *  - The coordinator checkpoints durably (write + fsync + rename +
 *    parent fsync); a coordinator restarted on a partial --out
 *    resumes through the same replay path as `qcarch sweep
 *    --resume`, then re-merges any leftover deltas.
 *  - SIGINT/SIGTERM (via options.stopRequested) writes a final
 *    checkpoint, marks the directory "interrupted" so workers
 *    drain, and returns kInterruptedExit.
 */

#ifndef QC_SERVE_COORDINATOR_HH
#define QC_SERVE_COORDINATOR_HH

#include <cstddef>
#include <functional>
#include <string>

#include "serve/FaultInjector.hh"
#include "sweep/SweepSpec.hh"

namespace qc {

/** Exit code when a stop request drained the run with a durable
 *  checkpoint on disk (coordinator, worker and `qcarch sweep`
 *  share it). */
constexpr int kInterruptedExit = 3;

struct CoordinatorOptions
{
    std::string outPath; ///< checkpoint + final document
    std::string dir;     ///< coordination directory
    int workersExpected = 1; ///< sizes shards (when shardPoints 0)
    double leaseSeconds = 30.0; ///< worker heartbeat TTL
    /** Points per shard; 0 = auto: pending / (4 * workers), so a
     *  straggler holds at most ~1/4 of a worker's fair share. */
    std::size_t shardPoints = 0;
    int pollMs = 200;    ///< results/lease scan interval
    double checkpointSeconds = 5.0; ///< 0 = after every merge
    bool quiet = false;  ///< suppress the stderr mirror of the log
    FaultInjector fault; ///< honors crash-at-point=K
    /** Polled each loop; true → drain and exit kInterruptedExit. */
    std::function<bool()> stopRequested;
};

struct CoordinatorReport
{
    std::size_t executed = 0;  ///< unique points merged this run
    std::size_t resumed = 0;   ///< unique points replayed from out
    std::size_t reclaimedExpired = 0; ///< alive-but-stale owners
    std::size_t reclaimedDead = 0;    ///< dead-PID fast path
    std::size_t duplicates = 0; ///< idempotent duplicate points
    std::size_t rejected = 0;   ///< torn/conflicting deltas dropped
    std::size_t failed = 0;     ///< points whose result is an error
    bool interrupted = false;
    int exitCode = 0;
};

/**
 * Run the coordinator until the document is complete (exit 0) or a
 * stop request drains it (exit kInterruptedExit). Throws
 * std::invalid_argument/std::runtime_error on setup problems (bad
 * spec, unwritable directory).
 */
CoordinatorReport runCoordinator(const SweepSpec &spec,
                                 const CoordinatorOptions &options);

} // namespace qc

#endif // QC_SERVE_COORDINATOR_HH
