#include "arch/SpeedOfData.hh"

#include "common/Stats.hh"

namespace qc {

namespace {

/** Latency model: data interaction only. */
DataflowGraph::LatencyModel
dataOnly(const EncodedOpModel &model)
{
    return [&model](const Gate &g) { return model.dataLatency(g); };
}

/** Latency model: data + QEC interaction. */
DataflowGraph::LatencyModel
dataPlusQec(const EncodedOpModel &model)
{
    return [&model](const Gate &g) {
        Time t = model.dataLatency(g);
        if (model.needsQec(g.kind))
            t += model.qecInteractLatency();
        return t;
    };
}

/**
 * Latency model: fully serialized execution, no overlap of ancilla
 * preparation with computation (Table 2's construction). The two
 * zero ancillae of a QEC step are prepared concurrently by the
 * factory hardware, so one zero-prep latency is charged per QEC
 * step; a pi/8 gate additionally waits for the pi/8 conversion.
 */
DataflowGraph::LatencyModel
serialized(const EncodedOpModel &model)
{
    return [&model](const Gate &g) {
        Time t = model.dataLatency(g);
        if (model.needsQec(g.kind)) {
            t += model.qecInteractLatency();
            t += model.zeroPrepLatency();
        }
        if (g.kind == GateKind::T || g.kind == GateKind::Tdg)
            t += model.pi8PrepLatency();
        return t;
    };
}

} // namespace

LatencySplit
latencySplit(const DataflowGraph &graph, const EncodedOpModel &model)
{
    const Time t_data = graph.asap(dataOnly(model)).makespan;
    const Time t_qec = graph.asap(dataPlusQec(model)).makespan;
    const Time t_full = graph.asap(serialized(model)).makespan;

    LatencySplit split;
    split.dataOp = t_data;
    split.qecInteract = t_qec - t_data;
    split.ancillaPrep = t_full - t_qec;
    return split;
}

BandwidthSummary
bandwidthAtSpeedOfData(const DataflowGraph &graph,
                       const EncodedOpModel &model)
{
    BandwidthSummary summary;
    summary.runtime = graph.asap(dataPlusQec(model)).makespan;
    for (const Gate &g : graph.circuit().gates()) {
        summary.zerosConsumed +=
            static_cast<std::uint64_t>(model.zeroAncillae(g));
        summary.pi8Consumed +=
            static_cast<std::uint64_t>(model.pi8Ancillae(g));
    }
    return summary;
}

std::vector<double>
ancillaDemandProfile(const DataflowGraph &graph,
                     const EncodedOpModel &model, std::size_t bins)
{
    const Schedule sched = graph.asap(dataPlusQec(model));
    if (sched.makespan == 0)
        return std::vector<double>(bins, 0.0);

    const auto &gates = graph.circuit().gates();
    std::vector<double> out(bins, 0.0);
    TimeSeriesBinner conc(static_cast<double>(sched.makespan), bins);
    for (NodeId n = 0; n < gates.size(); ++n) {
        const Gate &g = gates[n];
        const int zeros = model.zeroAncillae(g);
        if (zeros == 0)
            continue;
        // The ancillae must exist during the trailing QEC window of
        // the gate (the just-in-time envelope).
        const Time window = model.needsQec(g.kind)
                                ? model.qecInteractLatency()
                                : model.dataLatency(g);
        const double end = static_cast<double>(sched.end[n]);
        const double start = end - static_cast<double>(window);
        // addRange spreads the weight uniformly over the window.
        // Using weight = zeros * window yields a density of `zeros`
        // ancillae per ns; integrating over a bin and dividing by
        // the bin width (below) gives average ancillae-in-flight.
        conc.addRange(start, end,
                      static_cast<double>(zeros)
                          * static_cast<double>(window));
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = conc.bins()[i] / conc.binWidth();
    return out;
}

} // namespace qc
