/**
 * @file
 * Speed-of-data analysis of benchmark circuits (paper Section 3):
 * the Table 2 latency split, the Table 3 average ancilla
 * bandwidths, and the Figure 7 ancilla-demand profile.
 *
 * "Speed of data" (Figure 1b) is the ASAP schedule of the logical
 * dataflow graph where each gate costs only its data-interaction
 * latency plus the QEC interaction that must follow it — all
 * ancilla preparation runs off the critical path.
 */

#ifndef QC_ARCH_SPEED_OF_DATA_HH
#define QC_ARCH_SPEED_OF_DATA_HH

#include <cstdint>
#include <vector>

#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"

namespace qc {

/** One row of Table 2 (latencies of the serial execution). */
struct LatencySplit
{
    /** Critical path of useful data operations only (column 2). */
    Time dataOp = 0;
    /** Added critical path from QEC data/ancilla interaction. */
    Time qecInteract = 0;
    /** Added critical path from encoded ancilla preparation. */
    Time ancillaPrep = 0;

    Time total() const { return dataOp + qecInteract + ancillaPrep; }

    double dataOpShare() const
    {
        return static_cast<double>(dataOp) / total();
    }
    double qecInteractShare() const
    {
        return static_cast<double>(qecInteract) / total();
    }
    double ancillaPrepShare() const
    {
        return static_cast<double>(ancillaPrep) / total();
    }
};

/**
 * Compute the Table 2 split: three ASAP schedules with cumulative
 * latency models (data-only; data + QEC interact; fully serialized
 * with one ancilla-preparation latency per QEC step and per pi/8
 * gate, movement excluded).
 */
LatencySplit latencySplit(const DataflowGraph &graph,
                          const EncodedOpModel &model);

/** One row of Table 3 plus its underlying totals. */
struct BandwidthSummary
{
    Time runtime = 0;             ///< speed-of-data makespan
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;

    /** Average encoded-zero bandwidth needed (per ms). */
    BandwidthPerMs
    zeroPerMs() const
    {
        return runtime ? static_cast<double>(zerosConsumed)
                             / toMs(runtime)
                       : 0;
    }

    /** Average encoded-pi/8 bandwidth needed (per ms). */
    BandwidthPerMs
    pi8PerMs() const
    {
        return runtime ? static_cast<double>(pi8Consumed)
                             / toMs(runtime)
                       : 0;
    }
};

/** Compute Table 3: ancilla totals over the speed-of-data runtime. */
BandwidthSummary bandwidthAtSpeedOfData(const DataflowGraph &graph,
                                        const EncodedOpModel &model);

/**
 * Figure 7: average number of encoded-zero ancillae that must be in
 * the system per time bin, at the speed of data. Each QEC step
 * holds its two ancillae for the QEC interaction window (the
 * just-in-time envelope).
 *
 * @return per-bin average concurrency (size = bins)
 */
std::vector<double> ancillaDemandProfile(const DataflowGraph &graph,
                                         const EncodedOpModel &model,
                                         std::size_t bins);

} // namespace qc

#endif // QC_ARCH_SPEED_OF_DATA_HH
