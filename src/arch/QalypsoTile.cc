#include "arch/QalypsoTile.hh"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/Logging.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"
#include "sim/Simulator.hh"
#include "sim/TokenPool.hh"

namespace qc {

QalypsoRunResult
runQalypso(const DataflowGraph &graph, const EncodedOpModel &model,
           const QalypsoConfig &config)
{
    if (config.tileSize < 1)
        fatal("runQalypso: tile size must be >= 1");

    const auto &gates = graph.circuit().gates();
    const auto n = static_cast<NodeId>(graph.numNodes());
    const int nq = static_cast<int>(graph.circuit().numQubits());
    const IonTrapParams &tech = config.tech;
    const int tiles =
        (nq + config.tileSize - 1) / config.tileSize;

    QalypsoRunResult result;
    result.tiles = tiles;
    result.totalFactoryArea =
        config.factoryAreaPerTile * static_cast<Area>(tiles);

    // Demand-proportional split of each tile's factory budget.
    std::uint64_t zero_demand = 0;
    std::uint64_t pi8_demand = 0;
    for (const Gate &g : gates) {
        zero_demand +=
            static_cast<std::uint64_t>(model.zeroAncillae(g));
        pi8_demand +=
            static_cast<std::uint64_t>(model.pi8Ancillae(g));
    }
    const ZeroFactory zero(tech);
    const Pi8Factory pi8(tech);
    const double cost_zero = zero.totalArea() / zero.throughput();
    const double cost_pi8 = pi8.totalArea() / pi8.throughput()
        + zero.totalArea() / zero.throughput();
    const double weighted =
        static_cast<double>(zero_demand) * cost_zero
        + static_cast<double>(pi8_demand) * cost_pi8;
    const double scale =
        weighted > 0 ? config.factoryAreaPerTile
                * static_cast<double>(tiles) / weighted
                     : 0.0;
    // Per-tile pools (each tile owns 1/tiles of the farm).
    const BandwidthPerMs zero_bw_tile =
        static_cast<double>(zero_demand) * scale
        / static_cast<double>(tiles);
    const BandwidthPerMs pi8_bw_tile =
        static_cast<double>(pi8_demand) * scale
        / static_cast<double>(tiles);

    std::vector<RateTokenPool> zero_pools;
    std::vector<RateTokenPool> pi8_pools;
    zero_pools.reserve(static_cast<std::size_t>(tiles));
    pi8_pools.reserve(static_cast<std::size_t>(tiles));
    for (int t = 0; t < tiles; ++t) {
        zero_pools.emplace_back(zero_bw_tile, zero.latency());
        pi8_pools.emplace_back(pi8_bw_tile,
                               zero.latency() + pi8.latency());
    }

    const Time teleport = config.teleportLatency();
    const int region = std::min(config.tileSize, nq);
    const Time ballistic =
        std::max(2, 2 * region / 3) * tech.tmove + 2 * tech.tturn;
    const Time hop = 3 * tech.tmove + tech.tturn;

    auto tileOf = [&](Qubit q) {
        return static_cast<int>(q) / config.tileSize;
    };

    Simulator sim;
    std::vector<int> missing(n, 0);
    for (NodeId i = 0; i < n; ++i)
        missing[i] = static_cast<int>(graph.preds(i).size());

    std::function<void(NodeId)> launch = [&](NodeId node) {
        const Gate &g = gates[node];
        const Time now = sim.now();

        // The QEC site is the tile of the last operand.
        const int home = tileOf(
            g.ops[static_cast<std::size_t>(g.arity() - 1)]);

        Time ready = now;
        const int z = model.zeroAncillae(g);
        const int p = model.pi8Ancillae(g);
        result.zerosConsumed += static_cast<std::uint64_t>(z);
        result.pi8Consumed += static_cast<std::uint64_t>(p);
        if (z > 0) {
            ready = std::max(
                ready,
                zero_pools[static_cast<std::size_t>(home)].claim(z));
        }
        if (p > 0) {
            ready = std::max(
                ready,
                pi8_pools[static_cast<std::size_t>(home)].claim(p));
        }

        Time overhead = hop;
        if (g.arity() == 2) {
            if (tileOf(g.ops[0]) == tileOf(g.ops[1])) {
                ++result.intraTile2q;
                overhead += ballistic;
            } else {
                ++result.interTile2q;
                result.teleports += 1;
                overhead += teleport;
            }
        }

        Time latency = overhead + model.dataLatency(g);
        if (model.needsQec(g.kind))
            latency += model.qecInteractLatency();

        sim.schedule(ready + latency, [&, node]() {
            result.makespan = std::max(result.makespan, sim.now());
            for (NodeId succ : graph.succs(node)) {
                if (--missing[succ] == 0)
                    launch(succ);
            }
        });
    };

    for (NodeId root : graph.roots())
        sim.schedule(0, [&, root]() { launch(root); });

    sim.run();
    return result;
}

} // namespace qc
