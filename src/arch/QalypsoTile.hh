/**
 * @file
 * The tiled Qalypso microarchitecture of paper Section 5.3 /
 * Figure 16: dense data-only regions, each surrounded by its own
 * ancilla factories with output ports at the region edge, connected
 * by a teleport-based inter-tile network.
 *
 * Relative to the single-region fully-multiplexed model
 * (Microarch.hh), this adds the two effects that determine tile
 * size — the paper's stated open problem: ancilla supply is
 * multiplexed only *within* a tile, and two-qubit gates between
 * tiles pay teleportation while intra-tile gates move
 * ballistically.
 */

#ifndef QC_ARCH_QALYPSO_TILE_HH
#define QC_ARCH_QALYPSO_TILE_HH

#include <cstdint>

#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"

namespace qc {

/** Configuration of a tiled Qalypso run. */
struct QalypsoConfig
{
    IonTrapParams tech{};

    /** Logical qubits per tile (contiguous index blocks). */
    int tileSize = 32;

    /**
     * Factory area per tile (macroblocks), split between the zero
     * farm and the pi/8 chain in proportion to the circuit's
     * demand mix (as in the fully-multiplexed model).
     */
    Area factoryAreaPerTile = 2000;

    /** Teleport latency override; 0 derives from tech. */
    Time teleport = 0;

    Time
    teleportLatency() const
    {
        if (teleport > 0)
            return teleport;
        return tech.tprep + 2 * tech.t2q + tech.tmeas + 2 * tech.t1q;
    }
};

/** Outcome of a tiled run. */
struct QalypsoRunResult
{
    Time makespan = 0;
    int tiles = 0;
    Area totalFactoryArea = 0;
    std::uint64_t intraTile2q = 0;
    std::uint64_t interTile2q = 0;
    std::uint64_t teleports = 0;
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;

    /** Fraction of two-qubit gates crossing tiles. */
    double
    interTileFraction() const
    {
        const std::uint64_t total = intraTile2q + interTile2q;
        return total ? static_cast<double>(interTile2q)
                           / static_cast<double>(total)
                     : 0.0;
    }
};

/** Run a benchmark dataflow on the tiled Qalypso organization. */
QalypsoRunResult runQalypso(const DataflowGraph &graph,
                            const EncodedOpModel &model,
                            const QalypsoConfig &config);

} // namespace qc

#endif // QC_ARCH_QALYPSO_TILE_HH
