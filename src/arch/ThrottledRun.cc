#include "arch/ThrottledRun.hh"

#include <algorithm>
#include <vector>

#include "sim/Simulator.hh"
#include "sim/TokenPool.hh"

namespace qc {

ThrottledResult
throttledRun(const DataflowGraph &graph, const EncodedOpModel &model,
             BandwidthPerMs zero_per_ms, BandwidthPerMs pi8_per_ms,
             Time deadline)
{
    const auto &gates = graph.circuit().gates();
    const auto n = static_cast<NodeId>(graph.numNodes());

    Simulator sim;
    RateTokenPool zeros(zero_per_ms);
    RateTokenPool pi8s(pi8_per_ms);
    ThrottledResult result;

    std::vector<int> missing(n, 0);
    for (NodeId i = 0; i < n; ++i)
        missing[i] = static_cast<int>(graph.preds(i).size());

    // Recursive lambdas via Y-combinator-ish std::function pair.
    std::function<void(NodeId)> launch = [&](NodeId node) {
        const Gate &g = gates[node];
        Time start = sim.now();

        const int z = model.zeroAncillae(g);
        if (z > 0) {
            result.zerosConsumed += static_cast<std::uint64_t>(z);
            start = std::max(start, zeros.claim(z));
        }
        const int p = model.pi8Ancillae(g);
        if (p > 0) {
            result.pi8Consumed += static_cast<std::uint64_t>(p);
            start = std::max(start, pi8s.claim(p));
        }

        Time latency = model.dataLatency(g);
        if (model.needsQec(g.kind))
            latency += model.qecInteractLatency();

        const Time end = start + latency;
        sim.schedule(end, [&, node]() {
            result.makespan = std::max(result.makespan, sim.now());
            ++result.gatesExecuted;
            for (NodeId succ : graph.succs(node)) {
                if (--missing[succ] == 0)
                    launch(succ);
            }
        });
    };

    // Kick off the roots at t = 0 through the event queue so token
    // claims happen in deterministic time order.
    for (NodeId root : graph.roots())
        sim.schedule(0, [&, root]() { launch(root); });

    if (deadline > 0) {
        sim.runUntil(deadline);
        if (sim.pending() > 0) {
            result.completed = false;
            result.makespan = std::max(result.makespan, sim.now());
        }
    } else {
        sim.run();
    }
    return result;
}

} // namespace qc
