/**
 * @file
 * Microarchitecture models for the paper's Section 5.2 latency/area
 * evaluation (Figure 15): QLA, GQLA, CQLA, GCQLA and the
 * fully-multiplexed ancilla distribution used by Qalypso.
 *
 * All five share the same event-driven dataflow executor; they
 * differ in where encoded ancillae come from and what data movement
 * costs:
 *
 *  - QLA [22]: every logical data qubit owns a dedicated ancilla
 *    generator producing serially (one simple factory); operands of
 *    two-qubit gates teleport to an interaction site and back home
 *    for their QEC step.
 *  - GQLA: QLA generalized to k parallel generators per data qubit.
 *  - CQLA [15]: a compute cache of data qubits with richer ancilla
 *    support; gates execute only on cached qubits, and misses incur
 *    teleport-in (plus a writeback teleport when a dirty qubit is
 *    evicted). LRU replacement, as in sim-cache.
 *  - GCQLA: CQLA with k parallel generators per cache slot.
 *  - Fully-Multiplexed (Qalypso, Section 5.3): a shared farm of
 *    pipelined factories feeds all data qubits; ancillae travel a
 *    short ballistic hop from the factory output port to the dense
 *    data-only region, and data moves ballistically inside it.
 *
 * The models are implemented as qc::ArchModel subclasses registered
 * in qc::ArchRegistry (api/ArchModel.hh) under the keys "qla",
 * "gqla", "cqla", "gcqla" and "fma"; new consumers should go
 * through the registry or qc::Experiment. The MicroarchKind enum
 * and runMicroarch() below are a thin compatibility layer over the
 * registry, kept so existing wiring stays bit-identical.
 */

#ifndef QC_ARCH_MICROARCH_HH
#define QC_ARCH_MICROARCH_HH

#include <cstdint>
#include <string>

#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace qc {

/** The five modeled microarchitectures. */
enum class MicroarchKind
{
    Qla,
    Gqla,
    Cqla,
    Gcqla,
    FullyMultiplexed,
};

/** Display name. */
std::string microarchName(MicroarchKind kind);

/** ArchRegistry lookup key ("qla", ..., "fma") for a kind. */
std::string microarchKey(MicroarchKind kind);

/**
 * Knobs for a single microarchitecture run. When running through
 * the ArchRegistry the model identity comes from the registry key
 * and `kind` is ignored; it is consumed only by the runMicroarch()
 * compatibility wrapper.
 */
struct MicroarchConfig
{
    MicroarchKind kind = MicroarchKind::FullyMultiplexed;
    IonTrapParams tech{};

    /**
     * Code recursion level of the executed circuit's logical qubits
     * (1 = the paper's [[7,1,3]] baseline, 2 = concatenated). The
     * models derive effective block-operation latencies, generator
     * designs and footprints from it; `tech` stays the *physical*
     * technology point at every level.
     */
    int codeLevel = 1;

    /**
     * (G)QLA / (G)CQLA: parallel generators per site; 1 reproduces
     * the original QLA/CQLA proposals.
     */
    int generatorsPerSite = 1;

    /** (G)CQLA: compute-cache capacity in logical qubits. */
    int cacheSlots = 24;

    /**
     * FullyMultiplexed: total factory area budget (macroblocks),
     * split between the zero-factory farm and the pi/8 chain in
     * proportion to the circuit's ancilla demand mix.
     */
    Area areaBudget = 3000;

    /**
     * Teleportation latency between tiles / to the compute cache
     * (EPR prep, transversal Bell measurement and fix-up). Zero
     * means "derive from the effective technology point"
     * (tprep + 2 t2q + tmeas + 2 t1q at the configured codeLevel).
     */
    Time teleport = 0;

    /**
     * Effective block-operation latencies at codeLevel
     * (ConcatenatedSteane::effectiveTech; equals `tech` at level 1).
     */
    IonTrapParams effTech() const;

    /** Derived teleport latency. */
    Time
    teleportLatency() const
    {
        if (teleport > 0)
            return teleport;
        const IonTrapParams eff = effTech();
        return eff.tprep + 2 * eff.t2q + eff.tmeas + 2 * eff.t1q;
    }
};

/** Outcome of one microarchitecture run. */
struct ArchRunResult
{
    Time makespan = 0;
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;
    std::uint64_t teleports = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheAccesses = 0;
    Area ancillaArea = 0; ///< generation hardware charged (x-axis)

    double
    missRate() const
    {
        return cacheAccesses
                   ? static_cast<double>(cacheMisses) / cacheAccesses
                   : 0.0;
    }
};

/**
 * Run one benchmark dataflow under one microarchitecture
 * configuration. Compatibility wrapper: dispatches config.kind
 * through the ArchRegistry, so results are identical to calling
 * the registered model directly.
 */
ArchRunResult runMicroarch(const DataflowGraph &graph,
                           const EncodedOpModel &model,
                           const MicroarchConfig &config);

} // namespace qc

#endif // QC_ARCH_MICROARCH_HH
