#include "arch/Microarch.hh"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/Logging.hh"
#include "sim/Simulator.hh"
#include "sim/TokenPool.hh"

namespace qc {

std::string
microarchName(MicroarchKind kind)
{
    switch (kind) {
      case MicroarchKind::Qla:              return "QLA";
      case MicroarchKind::Gqla:             return "GQLA";
      case MicroarchKind::Cqla:             return "CQLA";
      case MicroarchKind::Gcqla:            return "GCQLA";
      case MicroarchKind::FullyMultiplexed: return "Fully-Multiplexed";
    }
    return "?";
}

namespace {

/**
 * Small LRU set of logical qubits with stable slot assignment (the
 * CQLA compute cache; slots carry the per-site generator banks).
 */
class LruCache
{
  public:
    struct Access
    {
        bool hit = false;
        bool evicted = false;
        int slot = 0;
    };

    explicit LruCache(std::size_t capacity) : capacity_(capacity)
    {
        for (std::size_t s = capacity; s > 0; --s)
            freeSlots_.push_back(static_cast<int>(s - 1));
    }

    /** Touch q (MRU); reports hit/eviction and the slot q occupies. */
    Access
    access(Qubit q)
    {
        Access out;
        auto it = std::find_if(
            order_.begin(), order_.end(),
            [q](const Entry &e) { return e.qubit == q; });
        if (it != order_.end()) {
            out.hit = true;
            out.slot = it->slot;
            const Entry entry = *it;
            order_.erase(it);
            order_.push_front(entry);
            return out;
        }
        int slot;
        if (freeSlots_.empty()) {
            out.evicted = true;
            slot = order_.back().slot;
            order_.pop_back();
        } else {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        }
        out.slot = slot;
        order_.push_front(Entry{q, slot});
        return out;
    }

  private:
    struct Entry
    {
        Qubit qubit;
        int slot;
    };

    std::size_t capacity_;
    std::deque<Entry> order_;
    std::vector<int> freeSlots_;
};

/** Ballistic two-qubit rendezvous inside a dense data region. */
Time
ballistic2q(int region_qubits, const IonTrapParams &tech)
{
    // Average column separation is a third of the region width;
    // each encoded-qubit column plus its channel is two macroblocks
    // wide. Two turns to leave and rejoin a column.
    const int moves = std::max(2, 2 * region_qubits / 3);
    return moves * tech.tmove + 2 * tech.tturn;
}

/** Hop of a fresh ancilla from a factory output port to the data. */
Time
ancillaHop(const IonTrapParams &tech)
{
    return 3 * tech.tmove + tech.tturn;
}

} // namespace

ArchRunResult
runMicroarch(const DataflowGraph &graph, const EncodedOpModel &model,
             const MicroarchConfig &config)
{
    const auto &gates = graph.circuit().gates();
    const auto n = static_cast<NodeId>(graph.numNodes());
    const Qubit nq = graph.circuit().numQubits();
    const IonTrapParams &tech = config.tech;
    const int k = std::max(1, config.generatorsPerSite);

    const bool cached = config.kind == MicroarchKind::Cqla
        || config.kind == MicroarchKind::Gcqla;
    const bool per_qubit = config.kind == MicroarchKind::Qla
        || config.kind == MicroarchKind::Gqla;
    const bool fma = config.kind == MicroarchKind::FullyMultiplexed;

    ArchRunResult result;
    Simulator sim;

    // --- Ancilla production hardware -----------------------------
    const SimpleZeroFactory simple(tech);
    const ZeroFactory zeroFactory(tech);
    const Pi8Factory pi8Factory(tech);

    // Per-qubit banks for (G)QLA; per-cache-slot banks for (G)CQLA.
    // Both use on-demand production with single-ancilla buffering:
    // a dedicated generator cannot stockpile for its site nor serve
    // another one (Section 5.1).
    std::vector<OnDemandBankPool> banks;
    if (per_qubit) {
        banks.reserve(nq);
        for (Qubit q = 0; q < nq; ++q)
            banks.emplace_back(k, simple.latency());
        result.ancillaArea =
            static_cast<Area>(nq) * k * simple.area();
    }
    std::vector<OnDemandBankPool> slotBanks;
    if (cached) {
        slotBanks.reserve(static_cast<std::size_t>(
            config.cacheSlots));
        for (int s = 0; s < config.cacheSlots; ++s)
            slotBanks.emplace_back(k, simple.latency());
        result.ancillaArea =
            static_cast<Area>(config.cacheSlots) * k * simple.area();
    }

    // Fully multiplexed: split the budget between the zero farm and
    // the pi/8 chain in proportion to the circuit's demand mix.
    std::uint64_t zero_demand = 0;
    std::uint64_t pi8_demand = 0;
    for (const Gate &g : gates) {
        zero_demand +=
            static_cast<std::uint64_t>(model.zeroAncillae(g));
        pi8_demand +=
            static_cast<std::uint64_t>(model.pi8Ancillae(g));
    }
    std::unique_ptr<RateTokenPool> fmaZeros;
    std::unique_ptr<RateTokenPool> fmaPi8s;
    if (fma) {
        // Area per unit bandwidth for each product.
        const double cost_zero =
            zeroFactory.totalArea() / zeroFactory.throughput();
        const double cost_pi8 =
            pi8Factory.totalArea() / pi8Factory.throughput()
            + zeroFactory.totalArea() / zeroFactory.throughput();
        const double weighted =
            static_cast<double>(zero_demand) * cost_zero
            + static_cast<double>(pi8_demand) * cost_pi8;
        const double scale =
            weighted > 0 ? config.areaBudget / weighted : 0;
        const BandwidthPerMs zero_bw =
            static_cast<double>(zero_demand) * scale;
        const BandwidthPerMs pi8_bw =
            static_cast<double>(pi8_demand) * scale;
        fmaZeros = std::make_unique<RateTokenPool>(
            zero_bw, zeroFactory.latency());
        fmaPi8s = std::make_unique<RateTokenPool>(
            pi8_bw, zeroFactory.latency() + pi8Factory.latency());
        result.ancillaArea = config.areaBudget;
    }

    // Extra conversion time for a pi/8 ancilla produced from a bank
    // zero (banks produce zeroes; the conversion pipeline of Fig 5b
    // adds its stages on top).
    const Time pi8_extra =
        model.pi8PrepLatency() - model.zeroPrepLatency();

    // --- Movement and cache state ---------------------------------
    LruCache cache(static_cast<std::size_t>(
        std::max(2, config.cacheSlots)));
    const Time teleport = config.teleportLatency();

    // Slot hosting the most recent gate's QEC site (set by
    // moveOverhead, consumed by ancillaReady for the cached archs).
    int qec_slot = 0;

    auto moveOverhead = [&](const Gate &g) -> Time {
        const int arity = g.arity();
        if (per_qubit) {
            // One operand teleports to its partner's site for a
            // two-qubit gate; the QEC step runs there with the
            // site's own generators and the return trip overlaps
            // with the next gate's transfer.
            if (arity == 2) {
                result.teleports += 1;
                return teleport;
            }
            return 0;
        }
        if (cached) {
            Time penalty = 0;
            for (int i = 0; i < arity; ++i) {
                ++result.cacheAccesses;
                const LruCache::Access access = cache.access(
                    g.ops[static_cast<std::size_t>(i)]);
                qec_slot = access.slot;
                if (!access.hit) {
                    ++result.cacheMisses;
                    ++result.teleports;
                    penalty += teleport; // fetch
                    if (access.evicted) {
                        ++result.teleports;
                        penalty += teleport; // dirty writeback
                    }
                }
            }
            if (arity == 2)
                penalty += ballistic2q(config.cacheSlots, tech);
            return penalty;
        }
        // Fully multiplexed: dense data-only region, ballistic hops.
        Time penalty = ancillaHop(tech);
        if (arity == 2)
            penalty += ballistic2q(static_cast<int>(nq), tech);
        return penalty;
    };

    auto ancillaReady = [&](const Gate &g) -> Time {
        const Time now = sim.now();
        Time ready = now;
        const int z = model.zeroAncillae(g);
        const int p = model.pi8Ancillae(g);
        result.zerosConsumed += static_cast<std::uint64_t>(z);
        result.pi8Consumed += static_cast<std::uint64_t>(p);
        if (per_qubit) {
            // Claims go to the home bank of the gate's last operand
            // (where the QEC step runs).
            const Qubit home = g.ops[static_cast<std::size_t>(
                g.arity() - 1)];
            auto &bank = banks[home];
            if (z > 0)
                ready = std::max(ready, bank.claim(z, now));
            if (p > 0) {
                ready = std::max(ready,
                                 bank.claim(p, now) + pi8_extra);
            }
        } else if (cached) {
            // Fresh ancillae live outside the compute cache proper
            // and are teleported in ("even with very fast encoded
            // ancilla production, cache misses are still incurred
            // to bring ancillae to data" — Section 5.2). This
            // delivery sets CQLA's plateau.
            auto &bank = slotBanks[static_cast<std::size_t>(
                qec_slot)];
            if (z > 0) {
                ready = std::max(ready,
                                 bank.claim(z, now) + teleport);
            }
            if (p > 0) {
                ready = std::max(
                    ready, bank.claim(p, now) + teleport + pi8_extra);
            }
        } else {
            if (z > 0)
                ready = std::max(ready, fmaZeros->claim(z));
            if (p > 0)
                ready = std::max(ready, fmaPi8s->claim(p));
        }
        return ready;
    };

    // --- Event-driven dataflow execution -------------------------
    std::vector<int> missing(n, 0);
    for (NodeId i = 0; i < n; ++i)
        missing[i] = static_cast<int>(graph.preds(i).size());

    std::function<void(NodeId)> launch = [&](NodeId node) {
        const Gate &g = gates[node];
        // Movement/cache bookkeeping first: it determines the QEC
        // site whose bank the ancilla claim goes to.
        const Time overhead = moveOverhead(g);
        const Time start = std::max(sim.now(), ancillaReady(g));
        Time latency = overhead + model.dataLatency(g);
        if (model.needsQec(g.kind))
            latency += model.qecInteractLatency();
        sim.schedule(start + latency, [&, node]() {
            result.makespan = std::max(result.makespan, sim.now());
            for (NodeId succ : graph.succs(node)) {
                if (--missing[succ] == 0)
                    launch(succ);
            }
        });
    };

    for (NodeId root : graph.roots())
        sim.schedule(0, [&, root]() { launch(root); });

    sim.run();
    return result;
}

} // namespace qc
