#include "arch/Microarch.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "api/ArchModel.hh"
#include "codes/ConcatenatedCode.hh"
#include "common/Logging.hh"
#include "factory/ConcatenatedFactory.hh"
#include "sim/TokenPool.hh"

namespace qc {

IonTrapParams
MicroarchConfig::effTech() const
{
    return ConcatenatedSteane::effectiveTech(tech, codeLevel);
}

std::string
microarchName(MicroarchKind kind)
{
    switch (kind) {
      case MicroarchKind::Qla:              return "QLA";
      case MicroarchKind::Gqla:             return "GQLA";
      case MicroarchKind::Cqla:             return "CQLA";
      case MicroarchKind::Gcqla:            return "GCQLA";
      case MicroarchKind::FullyMultiplexed: return "Fully-Multiplexed";
    }
    return "?";
}

std::string
microarchKey(MicroarchKind kind)
{
    switch (kind) {
      case MicroarchKind::Qla:              return "qla";
      case MicroarchKind::Gqla:             return "gqla";
      case MicroarchKind::Cqla:             return "cqla";
      case MicroarchKind::Gcqla:            return "gcqla";
      case MicroarchKind::FullyMultiplexed: return "fma";
    }
    return "?";
}

namespace {

/**
 * Small LRU set of logical qubits with stable slot assignment (the
 * CQLA compute cache; slots carry the per-site generator banks).
 */
class LruCache
{
  public:
    struct Access
    {
        bool hit = false;
        bool evicted = false;
        int slot = 0;
    };

    explicit LruCache(std::size_t capacity) : capacity_(capacity)
    {
        for (std::size_t s = capacity; s > 0; --s)
            freeSlots_.push_back(static_cast<int>(s - 1));
    }

    /** Touch q (MRU); reports hit/eviction and the slot q occupies. */
    Access
    access(Qubit q)
    {
        Access out;
        auto it = std::find_if(
            order_.begin(), order_.end(),
            [q](const Entry &e) { return e.qubit == q; });
        if (it != order_.end()) {
            out.hit = true;
            out.slot = it->slot;
            const Entry entry = *it;
            order_.erase(it);
            order_.push_front(entry);
            return out;
        }
        int slot;
        if (freeSlots_.empty()) {
            out.evicted = true;
            slot = order_.back().slot;
            order_.pop_back();
        } else {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        }
        out.slot = slot;
        order_.push_front(Entry{q, slot});
        return out;
    }

  private:
    struct Entry
    {
        Qubit qubit;
        int slot;
    };

    std::size_t capacity_;
    std::deque<Entry> order_;
    std::vector<int> freeSlots_;
};

/** Ballistic two-qubit rendezvous inside a dense data region. */
Time
ballistic2q(int region_qubits, const IonTrapParams &tech)
{
    // Average column separation is a third of the region width;
    // each encoded-qubit column plus its channel is two macroblocks
    // wide. Two turns to leave and rejoin a column.
    const int moves = std::max(2, 2 * region_qubits / 3);
    return moves * tech.tmove + 2 * tech.tturn;
}

/** Hop of a fresh ancilla from a factory output port to the data. */
Time
ancillaHop(const IonTrapParams &tech)
{
    return 3 * tech.tmove + tech.tturn;
}

/**
 * Extra conversion time for a pi/8 ancilla produced from a bank
 * zero (banks produce zeroes; the conversion pipeline of Fig 5b
 * adds its stages on top).
 */
Time
pi8Extra(const EncodedOpModel &model)
{
    return model.pi8PrepLatency() - model.zeroPrepLatency();
}

// ----------------------------------------------------------------
// (G)QLA: every logical data qubit owns k dedicated serial ancilla
// generators; operands of two-qubit gates teleport to an
// interaction site and back home for their QEC step.
// ----------------------------------------------------------------

class QlaExecution : public ArchExecution
{
  public:
    QlaExecution(const DataflowGraph &graph,
                 const EncodedOpModel &model,
                 const MicroarchConfig &config, int k)
        : model_(model),
          teleport_(config.teleportLatency()),
          pi8Extra_(pi8Extra(model))
    {
        const Qubit nq = graph.circuit().numQubits();
        // The dedicated serial generator is the Fig 11 schedule at
        // the configured level's block-operation latencies, on a
        // tile whose footprint scales with the block.
        const SimpleZeroFactory simple(config.effTech());
        const Area tileScale =
            ConcatenatedSteane::tileArea(config.codeLevel);
        banks_.reserve(nq);
        for (Qubit q = 0; q < nq; ++q)
            banks_.emplace_back(k, simple.latency());
        result.ancillaArea =
            static_cast<Area>(nq) * k * simple.area() * tileScale;
    }

    Time
    moveOverhead(const Gate &g) override
    {
        // One operand teleports to its partner's site for a
        // two-qubit gate; the QEC step runs there with the site's
        // own generators and the return trip overlaps with the next
        // gate's transfer.
        if (g.arity() == 2) {
            result.teleports += 1;
            return teleport_;
        }
        return 0;
    }

    Time
    ancillaReady(const Gate &g, Time now) override
    {
        Time ready = now;
        const int z = model_.zeroAncillae(g);
        const int p = model_.pi8Ancillae(g);
        // Claims go to the home bank of the gate's last operand
        // (where the QEC step runs).
        auto &bank = banks_[g.ops[static_cast<std::size_t>(
            g.arity() - 1)]];
        if (z > 0)
            ready = std::max(ready, bank.claim(z, now));
        if (p > 0)
            ready = std::max(ready, bank.claim(p, now) + pi8Extra_);
        return ready;
    }

  private:
    const EncodedOpModel &model_;
    const Time teleport_;
    const Time pi8Extra_;
    std::vector<OnDemandBankPool> banks_;
};

class QlaModel : public ArchModel
{
  public:
    /**
     * "QLA" and "GQLA" are one model: the original QLA proposal is
     * the k = 1 point of its generalization, so the distinction is
     * the display name plus the generatorsPerSite the caller asks
     * for (exactly as the pre-registry enum behaved).
     */
    explicit QlaModel(std::string name) : name_(std::move(name)) {}

    std::string name() const override { return name_; }

    std::unique_ptr<ArchExecution>
    prepare(const DataflowGraph &graph, const EncodedOpModel &model,
            const MicroarchConfig &config) const override
    {
        const int k = std::max(1, config.generatorsPerSite);
        return std::make_unique<QlaExecution>(graph, model, config,
                                              k);
    }

  private:
    std::string name_;
};

// ----------------------------------------------------------------
// (G)CQLA: a compute cache of data qubits with k generators per
// slot; gates execute only on cached qubits, and misses incur
// teleport-in (plus a writeback teleport when a dirty qubit is
// evicted). LRU replacement, as in sim-cache.
// ----------------------------------------------------------------

class CqlaExecution : public ArchExecution
{
  public:
    CqlaExecution(const EncodedOpModel &model,
                  const MicroarchConfig &config, int k)
        : model_(model),
          teleport_(config.teleportLatency()),
          pi8Extra_(pi8Extra(model)),
          tech_(config.effTech()),
          cacheSlots_(config.cacheSlots),
          cache_(static_cast<std::size_t>(
              std::max(2, config.cacheSlots)))
    {
        const SimpleZeroFactory simple(config.effTech());
        const Area tileScale =
            ConcatenatedSteane::tileArea(config.codeLevel);
        slotBanks_.reserve(static_cast<std::size_t>(
            std::max(2, config.cacheSlots)));
        for (int s = 0; s < std::max(2, config.cacheSlots); ++s)
            slotBanks_.emplace_back(k, simple.latency());
        result.ancillaArea = static_cast<Area>(config.cacheSlots)
            * k * simple.area() * tileScale;
    }

    Time
    moveOverhead(const Gate &g) override
    {
        Time penalty = 0;
        const int arity = g.arity();
        for (int i = 0; i < arity; ++i) {
            ++result.cacheAccesses;
            const LruCache::Access access =
                cache_.access(g.ops[static_cast<std::size_t>(i)]);
            qecSlot_ = access.slot;
            if (!access.hit) {
                ++result.cacheMisses;
                ++result.teleports;
                penalty += teleport_; // fetch
                if (access.evicted) {
                    ++result.teleports;
                    penalty += teleport_; // dirty writeback
                }
            }
        }
        if (arity == 2)
            penalty += ballistic2q(cacheSlots_, tech_);
        return penalty;
    }

    Time
    ancillaReady(const Gate &g, Time now) override
    {
        // Fresh ancillae live outside the compute cache proper and
        // are teleported in ("even with very fast encoded ancilla
        // production, cache misses are still incurred to bring
        // ancillae to data" — Section 5.2). This delivery sets
        // CQLA's plateau.
        Time ready = now;
        const int z = model_.zeroAncillae(g);
        const int p = model_.pi8Ancillae(g);
        auto &bank =
            slotBanks_[static_cast<std::size_t>(qecSlot_)];
        if (z > 0)
            ready = std::max(ready, bank.claim(z, now) + teleport_);
        if (p > 0) {
            ready = std::max(
                ready, bank.claim(p, now) + teleport_ + pi8Extra_);
        }
        return ready;
    }

  private:
    const EncodedOpModel &model_;
    const Time teleport_;
    const Time pi8Extra_;
    const IonTrapParams tech_;
    const int cacheSlots_;
    LruCache cache_;
    std::vector<OnDemandBankPool> slotBanks_;
    // Slot hosting the most recent gate's QEC site (set by
    // moveOverhead, consumed by ancillaReady).
    int qecSlot_ = 0;
};

class CqlaModel : public ArchModel
{
  public:
    /** "CQLA" is the k = 1 point of "GCQLA"; see QlaModel. */
    explicit CqlaModel(std::string name) : name_(std::move(name)) {}

    std::string name() const override { return name_; }

    std::unique_ptr<ArchExecution>
    prepare(const DataflowGraph &graph, const EncodedOpModel &model,
            const MicroarchConfig &config) const override
    {
        (void)graph;
        const int k = std::max(1, config.generatorsPerSite);
        return std::make_unique<CqlaExecution>(model, config, k);
    }

  private:
    std::string name_;
};

// ----------------------------------------------------------------
// Fully-Multiplexed (Qalypso, Section 5.3): a shared farm of
// pipelined factories feeds all data qubits; ancillae travel a
// short ballistic hop from the factory output port to the dense
// data-only region, and data moves ballistically inside it.
// ----------------------------------------------------------------

class FmaExecution : public ArchExecution
{
  public:
    FmaExecution(const DataflowGraph &graph,
                 const EncodedOpModel &model,
                 const MicroarchConfig &config)
        : model_(model),
          tech_(config.effTech()),
          nq_(static_cast<int>(graph.circuit().numQubits()))
    {
        // Area per unit delivered bandwidth and pipeline fill
        // latency for each product at the configured code level.
        // Each pi/8 ancilla also consumes one zero, hence the
        // cost_zero coupling term.
        double cost_zero, cost_pi8;
        Time zero_fill, pi8_fill;
        const auto price = [&](const auto &zeroFactory,
                               const auto &pi8Factory) {
            cost_zero =
                zeroFactory.totalArea() / zeroFactory.throughput();
            cost_pi8 =
                pi8Factory.totalArea() / pi8Factory.throughput()
                + cost_zero;
            zero_fill = zeroFactory.latency();
            pi8_fill = zeroFactory.latency() + pi8Factory.latency();
        };
        if (config.codeLevel >= 2) {
            price(Level2ZeroFactory(config.tech),
                  Level2Pi8Factory(config.tech));
        } else {
            price(ZeroFactory(config.tech), Pi8Factory(config.tech));
        }

        // Split the budget between the zero farm and the pi/8 chain
        // in proportion to the circuit's demand mix.
        std::uint64_t zero_demand = 0;
        std::uint64_t pi8_demand = 0;
        for (const Gate &g : graph.circuit().gates()) {
            zero_demand +=
                static_cast<std::uint64_t>(model.zeroAncillae(g));
            pi8_demand +=
                static_cast<std::uint64_t>(model.pi8Ancillae(g));
        }

        const double weighted =
            static_cast<double>(zero_demand) * cost_zero
            + static_cast<double>(pi8_demand) * cost_pi8;
        const double scale =
            weighted > 0 ? config.areaBudget / weighted : 0;
        const BandwidthPerMs zero_bw =
            static_cast<double>(zero_demand) * scale;
        const BandwidthPerMs pi8_bw =
            static_cast<double>(pi8_demand) * scale;
        zeros_ = std::make_unique<RateTokenPool>(zero_bw, zero_fill);
        pi8s_ = std::make_unique<RateTokenPool>(pi8_bw, pi8_fill);
        result.ancillaArea = config.areaBudget;
    }

    Time
    moveOverhead(const Gate &g) override
    {
        // Dense data-only region, ballistic hops.
        Time penalty = ancillaHop(tech_);
        if (g.arity() == 2)
            penalty += ballistic2q(nq_, tech_);
        return penalty;
    }

    Time
    ancillaReady(const Gate &g, Time now) override
    {
        Time ready = now;
        const int z = model_.zeroAncillae(g);
        const int p = model_.pi8Ancillae(g);
        if (z > 0)
            ready = std::max(ready, zeros_->claim(z));
        if (p > 0)
            ready = std::max(ready, pi8s_->claim(p));
        return ready;
    }

  private:
    const EncodedOpModel &model_;
    const IonTrapParams tech_;
    const int nq_;
    std::unique_ptr<RateTokenPool> zeros_;
    std::unique_ptr<RateTokenPool> pi8s_;
};

class FmaModel : public ArchModel
{
  public:
    std::string name() const override { return "Fully-Multiplexed"; }

    std::unique_ptr<ArchExecution>
    prepare(const DataflowGraph &graph, const EncodedOpModel &model,
            const MicroarchConfig &config) const override
    {
        return std::make_unique<FmaExecution>(graph, model, config);
    }
};

} // namespace

void
registerBuiltinArchModels(ArchRegistry &registry)
{
    registry.add("qla", std::make_shared<QlaModel>("QLA"));
    registry.add("gqla", std::make_shared<QlaModel>("GQLA"));
    registry.add("cqla", std::make_shared<CqlaModel>("CQLA"));
    registry.add("gcqla", std::make_shared<CqlaModel>("GCQLA"));
    registry.add("fma", std::make_shared<FmaModel>());
}

ArchRunResult
runMicroarch(const DataflowGraph &graph, const EncodedOpModel &model,
             const MicroarchConfig &config)
{
    return ArchRegistry::instance()
        .get(microarchKey(config.kind))
        .run(graph, model, config);
}

} // namespace qc
