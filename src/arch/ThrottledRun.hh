/**
 * @file
 * Event-driven execution under a steady encoded-ancilla supply
 * (paper Figure 8): data dependencies as in the speed-of-data
 * schedule, but every QEC step must first claim two encoded zero
 * ancillae from a rate-limited pool (and every pi/8 gate one pi/8
 * ancilla from its own pool, when constrained).
 */

#ifndef QC_ARCH_THROTTLED_RUN_HH
#define QC_ARCH_THROTTLED_RUN_HH

#include <cstdint>

#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"

namespace qc {

/** Outcome of a throttled run. */
struct ThrottledResult
{
    Time makespan = 0;
    std::uint64_t zerosConsumed = 0;
    std::uint64_t pi8Consumed = 0;

    /** Gates retired (equals the circuit size unless cut off). */
    std::uint64_t gatesExecuted = 0;

    /** False when a deadline stopped the run before completion. */
    bool completed = true;
};

/**
 * Execute the dataflow graph with a steady ancilla supply.
 *
 * @param graph       lowered benchmark dataflow
 * @param model       encoded-operation model
 * @param zero_per_ms encoded-zero production rate; <= 0 means
 *                    unconstrained
 * @param pi8_per_ms  encoded-pi/8 production rate; <= 0 means
 *                    unconstrained (Figure 8 constrains zeros only)
 * @param deadline    cut the simulation off at this time (via
 *                    Simulator::runUntil) and report a partial
 *                    result; <= 0 runs to completion
 */
ThrottledResult throttledRun(const DataflowGraph &graph,
                             const EncodedOpModel &model,
                             BandwidthPerMs zero_per_ms,
                             BandwidthPerMs pi8_per_ms = 0,
                             Time deadline = 0);

} // namespace qc

#endif // QC_ARCH_THROTTLED_RUN_HH
