/**
 * @file
 * The n-bit Quantum Fourier Transform benchmark (paper Sections 2.5
 * and 3.1).
 *
 * The generator emits the textbook QFT: a Hadamard on each qubit
 * followed by controlled phase rotations CRotZ(d) (angle pi/2^d)
 * from each lower-order qubit, optionally followed by the final
 * qubit-reversal swaps (realized as triples of CX). Rotations finer
 * than maxK are omitted at generation time (the standard approximate
 * QFT); the lowering pass may elide further and expands the
 * remaining rotations into fault-tolerant H/T words (Section 2.5).
 */

#ifndef QC_KERNELS_QFT_HH
#define QC_KERNELS_QFT_HH

#include "circuit/Circuit.hh"

namespace qc {

/** Options for QFT generation. */
struct QftOptions
{
    /**
     * Keep controlled rotations with exponent d <= maxK only; a
     * non-positive value keeps every rotation (exact QFT).
     */
    int maxK = 0;

    /** Emit the final qubit-reversal swap network (3 CX each). */
    bool withSwaps = true;
};

/**
 * Build the n-qubit QFT over qubits [0, n).
 */
Circuit makeQft(int n, const QftOptions &options = {});

} // namespace qc

#endif // QC_KERNELS_QFT_HH
