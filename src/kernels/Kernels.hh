/**
 * @file
 * Benchmark registry: the paper's three kernels (Section 3.1), each
 * produced both at the benchmark gate level and lowered to the
 * fault-tolerant gate set with shared synthesis options.
 */

#ifndef QC_KERNELS_KERNELS_HH
#define QC_KERNELS_KERNELS_HH

#include <string>
#include <vector>

#include "kernels/Lower.hh"
#include "kernels/Qft.hh"

namespace qc {

/** The paper's benchmark kernels. */
enum class BenchmarkKind
{
    Qrca, ///< 32-bit Quantum Ripple-Carry Adder
    Qcla, ///< 32-bit Quantum Carry-Lookahead Adder
    Qft,  ///< 32-bit Quantum Fourier Transform
};

/** Display name matching the paper's tables. */
std::string benchmarkName(BenchmarkKind kind, int bits);

/** Options shared by all benchmark constructions. */
struct BenchmarkOptions
{
    /** Operand width (the paper uses 32 everywhere). */
    int bits = 32;

    /** Lowering knobs (rotation cutoff). */
    LoweringOptions lowering{};

    /** QFT-specific generation knobs. */
    QftOptions qft{};
};

/** A fully-constructed benchmark. */
struct Benchmark
{
    BenchmarkKind kind;
    std::string name;
    Circuit highLevel;  ///< over {Toffoli, CRotZ, ...}
    Lowered lowered;    ///< fault-tolerant gate set
};

/**
 * Build one benchmark.
 *
 * @param kind    which kernel
 * @param synth   shared rotation-word cache
 * @param options construction knobs
 */
Benchmark makeBenchmark(BenchmarkKind kind, FowlerSynth &synth,
                        const BenchmarkOptions &options = {});

/** Build all three paper benchmarks with shared options. */
std::vector<Benchmark> makeAllBenchmarks(
    FowlerSynth &synth, const BenchmarkOptions &options = {});

} // namespace qc

#endif // QC_KERNELS_KERNELS_HH
