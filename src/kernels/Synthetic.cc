#include "kernels/Synthetic.hh"

#include "common/Logging.hh"

namespace qc {

Circuit
makeChain(int length)
{
    if (length < 1)
        panic("makeChain: length must be positive, got ", length);
    Circuit c(1, "chain-" + std::to_string(length));
    for (int i = 0; i < length; ++i) {
        if (i % 2 == 0)
            c.h(0);
        else
            c.t(0);
    }
    return c;
}

Circuit
makeLadder(int width, int layers)
{
    if (width < 2 || layers < 1)
        panic("makeLadder: need width >= 2 and layers >= 1, got ",
              width, "x", layers);
    const Qubit w = static_cast<Qubit>(width);
    Circuit c(w, "ladder-" + std::to_string(width) + "x"
                  + std::to_string(layers));
    for (int layer = 0; layer < layers; ++layer) {
        for (Qubit q = 0; q < w; ++q)
            c.h(q);
        // Brick pattern: pairs (0,1),(2,3),... on even layers,
        // (1,2),(3,4),... on odd ones.
        for (Qubit q = static_cast<Qubit>(layer % 2); q + 1 < w;
             q += 2)
            c.cx(q, q + 1);
    }
    return c;
}

} // namespace qc
