/**
 * @file
 * Exact classical simulation of computational-basis circuits.
 *
 * The adder kernels use only {PrepZ, X, CX, Toffoli}, all of which
 * permute computational basis states, so their arithmetic can be
 * verified exactly on classical bit vectors. Used heavily by the
 * test suite.
 */

#ifndef QC_KERNELS_CLASSICAL_SIM_HH
#define QC_KERNELS_CLASSICAL_SIM_HH

#include <cstdint>
#include <vector>

#include "circuit/Circuit.hh"

namespace qc {

/**
 * Run a computational-basis circuit on an initial bit assignment.
 *
 * @param circuit  circuit containing only PrepZ/X/CX/Toffoli/Measure
 * @param initial  initial bit per qubit (padded with zeros if short)
 * @return final bit per qubit
 *
 * Panics on any non-classical gate.
 */
std::vector<bool> runClassical(const Circuit &circuit,
                               std::vector<bool> initial);

/** Pack bits [base, base+count) of a state into an integer, LSB first. */
std::uint64_t packBits(const std::vector<bool> &state, Qubit base,
                       Qubit count);

/** Unpack an integer into bits [base, base+count) of a state. */
void unpackBits(std::vector<bool> &state, Qubit base, Qubit count,
                std::uint64_t value);

} // namespace qc

#endif // QC_KERNELS_CLASSICAL_SIM_HH
