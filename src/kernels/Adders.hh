/**
 * @file
 * Benchmark adder kernels (paper Section 3.1).
 *
 * - QRCA: the n-bit Quantum Ripple-Carry Adder in the
 *   Vedral-Barenco-Ekert style the paper assumes ("two n-bit data
 *   inputs plus n+1 ancillae", Section 3): registers a, b and an
 *   (n+1)-bit carry register; computes b <- a + b, with the carry-out
 *   in c[n] and c[0..n-1] restored to zero.
 *
 * - QCLA: an n-bit Quantum Carry-Lookahead Adder after
 *   Draper-Kutin-Rains-Svore [19]: Brent-Kung prefix tree over
 *   (generate, propagate) pairs in O(log n) Toffoli depth, sum
 *   produced out-of-place, all intermediate carries and
 *   propagate-products uncomputed.
 *
 * Both kernels are emitted over {PrepZ, CX, Toffoli}; lowering to
 * the fault-tolerant Clifford+T set is a separate pass (Lower.hh).
 * Because every gate is classical in the computational basis, both
 * are verified end-to-end by classical simulation in the test suite.
 */

#ifndef QC_KERNELS_ADDERS_HH
#define QC_KERNELS_ADDERS_HH

#include "circuit/Circuit.hh"

namespace qc {

/** Register map for a generated adder circuit. */
struct AdderLayout
{
    Qubit aBase;      ///< first qubit of input register a (n bits)
    Qubit bBase;      ///< first qubit of input/output register b
    Qubit sumBase;    ///< first qubit of the sum output register
    Qubit sumBits;    ///< number of sum output bits (n or n+1)
    Qubit carryOut;   ///< qubit holding the final carry
    Qubit numQubits;  ///< total qubits including ancillae
};

/** A generated adder kernel plus its register map. */
struct AdderKernel
{
    Circuit circuit;
    AdderLayout layout;
};

/**
 * Build the n-bit ripple-carry adder (VBE style).
 *
 * @param n            operand width in bits (>= 1)
 * @param prep_ancilla emit PrepZ on the carry ancillae first
 */
AdderKernel makeQrca(int n, bool prep_ancilla = true);

/**
 * Build the n-bit carry-lookahead adder (Brent-Kung prefix tree).
 *
 * @param n            operand width in bits (>= 1)
 * @param prep_ancilla emit PrepZ on all ancillae first
 */
AdderKernel makeQcla(int n, bool prep_ancilla = true);

} // namespace qc

#endif // QC_KERNELS_ADDERS_HH
