/**
 * @file
 * Lowering from the benchmark gate set to the fault-tolerant
 * [[7,1,3]] gate set.
 *
 * The output circuit uses only gates with direct fault-tolerant
 * implementations on the Steane code (paper Section 2): the
 * transversal Cliffords {X, Y, Z, S, Sdg, H, CX, CZ}, the
 * ancilla-mediated pi/8 gates {T, Tdg}, and prep/measure. The pass
 *
 *  - expands every Toffoli into the standard 15-gate Clifford+T
 *    network (6 CX, 7 T/Tdg, 2 H),
 *  - decomposes every controlled rotation CRotZ(k) into 2 CX plus 3
 *    single-qubit pi/2^(k+1) rotations (Section 2.5, [14]),
 *  - replaces each remaining RotZ with its exact Clifford/T form
 *    (|k| <= 2) or its cached Fowler {H,T} word, and
 *  - elides rotations finer than a configurable cutoff, accumulating
 *    the skipped angle as an explicit error budget.
 */

#ifndef QC_KERNELS_LOWER_HH
#define QC_KERNELS_LOWER_HH

#include <cstdint>

#include "circuit/Circuit.hh"
#include "synth/Fowler.hh"

namespace qc {

/** Knobs controlling the lowering pass. */
struct LoweringOptions
{
    /**
     * Rotations with exponent |k| > maxRotK are elided entirely
     * (approximate-QFT style). The induced error is tracked in
     * LoweringStats::elidedAngleSum. Non-positive disables elision.
     */
    int maxRotK = 8;
};

/** Accounting produced by the lowering pass. */
struct LoweringStats
{
    std::uint64_t toffolis = 0;       ///< Toffolis expanded
    std::uint64_t controlledRots = 0; ///< CRotZ gates decomposed
    std::uint64_t rotations = 0;      ///< RotZ gates synthesized
    std::uint64_t elided = 0;         ///< rotations dropped by cutoff
    double elidedAngleSum = 0.0;      ///< total |angle| dropped (rad)
    double approxErrorSum = 0.0;      ///< sum of Fowler word errors
    double approxErrorMax = 0.0;      ///< worst Fowler word error
};

/** A lowered circuit plus its accounting. */
struct Lowered
{
    Circuit circuit;
    LoweringStats stats;
};

/**
 * Lower a circuit to the fault-tolerant gate set.
 *
 * @param input  circuit over the benchmark gate set
 * @param synth  rotation-word cache (shared across calls)
 * @param options lowering knobs
 */
Lowered lowerToFaultTolerant(const Circuit &input, FowlerSynth &synth,
                             const LoweringOptions &options = {});

} // namespace qc

#endif // QC_KERNELS_LOWER_HH
