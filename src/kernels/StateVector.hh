/**
 * @file
 * Dense state-vector simulator for small circuits.
 *
 * Supports every logical gate kind (including parameterized
 * rotations and Toffoli), so the test suite can check unitary-level
 * equivalence of decompositions: Toffoli lowering, controlled-phase
 * decomposition, Fowler words, and small QFTs against the exact DFT.
 * Intended for <= ~16 qubits; not a performance component.
 */

#ifndef QC_KERNELS_STATE_VECTOR_HH
#define QC_KERNELS_STATE_VECTOR_HH

#include <complex>
#include <vector>

#include "circuit/Circuit.hh"

namespace qc {

/** Dense 2^n-amplitude simulator. */
class StateVector
{
  public:
    using Cplx = std::complex<double>;

    /** Initialize n qubits to |0...0>. */
    explicit StateVector(Qubit num_qubits);

    /** Initialize to a computational basis state (LSB = qubit 0). */
    StateVector(Qubit num_qubits, std::uint64_t basis_state);

    /** Number of qubits. */
    Qubit numQubits() const { return numQubits_; }

    /** Amplitude vector (size 2^n, index bit i = qubit i). */
    const std::vector<Cplx> &amplitudes() const { return amps_; }

    /** Apply one gate. Measure gates are rejected (panic). */
    void apply(const Gate &gate);

    /** Apply every gate of a circuit in order. */
    void run(const Circuit &circuit);

    /**
     * Fidelity-style overlap |<other|this>| in [0, 1]; 1 iff equal
     * up to global phase.
     */
    double overlap(const StateVector &other) const;

    /** Probability that qubit q measures 1. */
    double probOne(Qubit q) const;

  private:
    void apply1q(Qubit q, const Cplx m[2][2]);
    void applyPhase1q(Qubit q, Cplx phase);
    void applyControlledPhase(Qubit a, Qubit b, Cplx phase);
    void applyCx(Qubit control, Qubit target);
    void applyToffoli(Qubit a, Qubit b, Qubit target);
    void reset(Qubit q);

    Qubit numQubits_;
    std::vector<Cplx> amps_;
};

} // namespace qc

#endif // QC_KERNELS_STATE_VECTOR_HH
