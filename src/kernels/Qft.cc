#include "kernels/Qft.hh"

#include "common/Logging.hh"

namespace qc {

Circuit
makeQft(int n, const QftOptions &options)
{
    if (n < 1)
        fatal("makeQft: width must be >= 1, got ", n);
    const auto un = static_cast<Qubit>(n);
    Circuit circ(un, "qft" + std::to_string(n));

    const int max_k = options.maxK > 0 ? options.maxK : n - 1;
    for (int i = 0; i < n; ++i) {
        const auto qi = static_cast<Qubit>(i);
        circ.h(qi);
        for (int d = 1; d <= max_k && i + d < n; ++d) {
            circ.crotZ(static_cast<Qubit>(i + d), qi, d);
        }
    }
    if (options.withSwaps) {
        for (int i = 0; i < n / 2; ++i) {
            const auto lo = static_cast<Qubit>(i);
            const auto hi = static_cast<Qubit>(n - 1 - i);
            circ.cx(lo, hi);
            circ.cx(hi, lo);
            circ.cx(lo, hi);
        }
    }
    return circ;
}

} // namespace qc
