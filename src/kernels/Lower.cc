#include "kernels/Lower.hh"

#include <cmath>
#include <cstdlib>

#include "common/Logging.hh"

namespace qc {

namespace {

/** Standard 15-gate Clifford+T Toffoli (Nielsen & Chuang Fig 4.9). */
void
expandToffoli(Circuit &out, Qubit a, Qubit b, Qubit t)
{
    out.h(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(b);
    out.t(t);
    out.h(t);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

class LoweringPass
{
  public:
    LoweringPass(const Circuit &input, FowlerSynth &synth,
                 const LoweringOptions &options)
        : synth_(synth), opts_(options),
          out_(input.numQubits(), input.name() + ".ft")
    {
        for (const Gate &g : input.gates())
            lowerGate(g);
    }

    Lowered
    take()
    {
        return {std::move(out_), stats_};
    }

  private:
    bool
    elideRot(int k)
    {
        if (opts_.maxRotK > 0 && std::abs(k) > opts_.maxRotK) {
            ++stats_.elided;
            stats_.elidedAngleSum += M_PI / std::ldexp(1.0, std::abs(k));
            return true;
        }
        return false;
    }

    void
    emitRotZ(Qubit q, int k)
    {
        ++stats_.rotations;
        const ApproxSequence &seq = synth_.rotZ(k);
        stats_.approxErrorSum += seq.error;
        if (seq.error > stats_.approxErrorMax)
            stats_.approxErrorMax = seq.error;
        for (GateKind g : seq.gates) {
            Gate gate;
            gate.kind = g;
            gate.ops = {q, invalidQubit, invalidQubit};
            out_.append(gate);
        }
    }

    void
    lowerRotZ(Qubit q, int k)
    {
        if (elideRot(k))
            return;
        emitRotZ(q, k);
    }

    void
    lowerCRotZ(Qubit control, Qubit target, int k)
    {
        ++stats_.controlledRots;
        if (elideRot(k))
            return;
        if (k == 0) {
            out_.cz(control, target);
            return;
        }
        // CPhase(theta) = P(theta/2)_c P(theta/2)_t CX
        //                 P(-theta/2)_t CX, with theta = pi/2^k.
        const int half = k > 0 ? k + 1 : k - 1;
        emitRotZ(control, half);
        emitRotZ(target, half);
        out_.cx(control, target);
        emitRotZ(target, -half);
        out_.cx(control, target);
    }

    void
    lowerGate(const Gate &g)
    {
        switch (g.kind) {
          case GateKind::Toffoli:
            ++stats_.toffolis;
            expandToffoli(out_, g.ops[0], g.ops[1], g.ops[2]);
            break;
          case GateKind::RotZ:
            lowerRotZ(g.ops[0], g.param);
            break;
          case GateKind::CRotZ:
            lowerCRotZ(g.ops[0], g.ops[1], g.param);
            break;
          case GateKind::PrepZ:
          case GateKind::PrepX:
          case GateKind::H:
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
          case GateKind::S:
          case GateKind::Sdg:
          case GateKind::T:
          case GateKind::Tdg:
          case GateKind::CX:
          case GateKind::CZ:
          case GateKind::Measure:
            out_.append(g);
            break;
          default:
            panic("lowering: unhandled gate kind ", gateName(g.kind));
        }
    }

    FowlerSynth &synth_;
    const LoweringOptions &opts_;
    Circuit out_;
    LoweringStats stats_;
};

} // namespace

Lowered
lowerToFaultTolerant(const Circuit &input, FowlerSynth &synth,
                     const LoweringOptions &options)
{
    LoweringPass pass(input, synth, options);
    return pass.take();
}

} // namespace qc
