/**
 * @file
 * Built-in workload registrations: the paper's three kernels plus
 * the synthetic scaling generators, exposed to the experiment API
 * by string name. New kernels added to this directory should
 * register themselves here to become visible to qc::Experiment,
 * the benches, and sweep studies.
 */

#include "api/Workload.hh"

#include "kernels/Kernels.hh"
#include "kernels/Synthetic.hh"

namespace qc {

namespace {

/** Wrap a paper benchmark kind as a workload builder. */
WorkloadBuilder
paperKernel(BenchmarkKind kind)
{
    return [kind](FowlerSynth &synth, const WorkloadParams &params) {
        BenchmarkOptions options;
        options.bits = params.bits;
        options.lowering = params.lowering;
        options.qft = params.qft;
        Benchmark bench = makeBenchmark(kind, synth, options);
        return Workload{"", bench.name, std::move(bench.highLevel),
                        std::move(bench.lowered)};
    };
}

/** Lower an already-built synthetic circuit into a Workload. */
Workload
lowerSynthetic(Circuit circuit, FowlerSynth &synth,
               const WorkloadParams &params)
{
    Lowered lowered =
        lowerToFaultTolerant(circuit, synth, params.lowering);
    std::string name = circuit.name();
    return Workload{"", std::move(name), std::move(circuit),
                    std::move(lowered)};
}

} // namespace

void
registerKernelWorkloads(WorkloadRegistry &registry)
{
    registry.add("qrca",
                 "32-bit-style Quantum Ripple-Carry Adder "
                 "(serial; paper Table 3's low-bandwidth kernel)",
                 paperKernel(BenchmarkKind::Qrca));
    registry.add("qcla",
                 "Quantum Carry-Lookahead Adder (parallel; the "
                 "paper's high-bandwidth adder)",
                 paperKernel(BenchmarkKind::Qcla));
    registry.add("qft",
                 "Quantum Fourier Transform with Fowler-synthesized "
                 "rotation words (Section 2.5)",
                 paperKernel(BenchmarkKind::Qft));
    registry.add(
        "chain",
        "synthetic fully-serial 1-qubit H/T chain of `bits` gates "
        "(zero parallelism; exact analytic properties)",
        [](FowlerSynth &synth, const WorkloadParams &params) {
            return lowerSynthetic(makeChain(params.bits), synth,
                                  params);
        });
    registry.add(
        "ladder",
        "synthetic brickwork H+CX ladder, `bits` wide and `bits` "
        "layers deep (parallelism = width)",
        [](FowlerSynth &synth, const WorkloadParams &params) {
            return lowerSynthetic(
                makeLadder(params.bits, params.bits), synth, params);
        });
}

} // namespace qc
