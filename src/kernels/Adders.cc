#include "kernels/Adders.hh"

#include <vector>

#include "common/Logging.hh"

namespace qc {

namespace {

/** VBE majority/carry block: c1 ^= maj(c0, a, b); b ^= a. */
void
vbeCarry(Circuit &c, Qubit c0, Qubit a, Qubit b, Qubit c1)
{
    c.toffoli(a, b, c1);
    c.cx(a, b);
    c.toffoli(c0, b, c1);
}

/** Inverse of vbeCarry. */
void
vbeCarryInv(Circuit &c, Qubit c0, Qubit a, Qubit b, Qubit c1)
{
    c.toffoli(c0, b, c1);
    c.cx(a, b);
    c.toffoli(a, b, c1);
}

/** VBE sum block: b = a xor b xor c0. */
void
vbeSum(Circuit &c, Qubit c0, Qubit a, Qubit b)
{
    c.cx(a, b);
    c.cx(c0, b);
}

} // namespace

AdderKernel
makeQrca(int n, bool prep_ancilla)
{
    if (n < 1)
        fatal("makeQrca: operand width must be >= 1, got ", n);
    const auto un = static_cast<Qubit>(n);

    // Register map: a[0..n), b[0..n), c[0..n+1).
    const Qubit a0 = 0;
    const Qubit b0 = un;
    const Qubit c0 = 2 * un;
    const Qubit total = 3 * un + 1;

    Circuit circ(total, "qrca" + std::to_string(n));
    if (prep_ancilla) {
        for (Qubit i = 0; i <= un; ++i)
            circ.prepZ(c0 + i);
    }

    auto a = [&](int i) { return a0 + static_cast<Qubit>(i); };
    auto b = [&](int i) { return b0 + static_cast<Qubit>(i); };
    auto c = [&](int i) { return c0 + static_cast<Qubit>(i); };

    for (int i = 0; i < n; ++i)
        vbeCarry(circ, c(i), a(i), b(i), c(i + 1));
    circ.cx(a(n - 1), b(n - 1));
    vbeSum(circ, c(n - 1), a(n - 1), b(n - 1));
    for (int i = n - 2; i >= 0; --i) {
        vbeCarryInv(circ, c(i), a(i), b(i), c(i + 1));
        vbeSum(circ, c(i), a(i), b(i));
    }

    AdderLayout layout;
    layout.aBase = a0;
    layout.bBase = b0;
    layout.sumBase = b0;   // sum replaces b in place
    layout.sumBits = un;
    layout.carryOut = c(n);
    layout.numQubits = total;
    return {std::move(circ), layout};
}

namespace {

/**
 * Bookkeeping for the Brent-Kung propagate-product tree.
 *
 * blockProduct(t, j) names the qubit holding the AND of the
 * propagate bits over block [j*2^t, (j+1)*2^t). Level 0 products are
 * the propagate bits themselves (held in register b after the
 * CX(a, b) round); higher levels live in dedicated ancillae.
 */
class PropagateTree
{
  public:
    PropagateTree(int n, Qubit p_base, Qubit anc_base)
        : n_(n), pBase_(p_base)
    {
        Qubit next = anc_base;
        for (int t = 1; (1 << t) <= n / 2; ++t) {
            const int count = n >> t;
            levelBase_.push_back(next);
            levelSize_.push_back(count);
            next += static_cast<Qubit>(count);
        }
        end_ = next;
    }

    /** Number of tree levels above level 0. */
    int levels() const { return static_cast<int>(levelBase_.size()); }

    /** One past the last ancilla used by the tree. */
    Qubit end() const { return end_; }

    /** Qubit holding the level-t product for block j. */
    Qubit
    block(int t, int j) const
    {
        if (t == 0)
            return pBase_ + static_cast<Qubit>(j);
        return levelBase_[static_cast<std::size_t>(t - 1)]
            + static_cast<Qubit>(j);
    }

    /** Emit Toffolis computing every product level bottom-up. */
    void
    compute(Circuit &c) const
    {
        for (int t = 1; t <= levels(); ++t) {
            for (int j = 0; j < levelSize_[static_cast<std::size_t>(
                     t - 1)]; ++j) {
                c.toffoli(block(t - 1, 2 * j), block(t - 1, 2 * j + 1),
                          block(t, j));
            }
        }
    }

    /** Emit Toffolis erasing every product level top-down. */
    void
    uncompute(Circuit &c) const
    {
        for (int t = levels(); t >= 1; --t) {
            for (int j = levelSize_[static_cast<std::size_t>(t - 1)]
                     - 1; j >= 0; --j) {
                c.toffoli(block(t - 1, 2 * j), block(t - 1, 2 * j + 1),
                          block(t, j));
            }
        }
    }

  private:
    int n_;
    Qubit pBase_;
    Qubit end_;
    std::vector<Qubit> levelBase_;
    std::vector<int> levelSize_;
};

} // namespace

AdderKernel
makeQcla(int n, bool prep_ancilla)
{
    if (n < 1)
        fatal("makeQcla: operand width must be >= 1, got ", n);
    if (n == 1) {
        // Degenerate width: the ripple structure is already optimal
        // and the prefix tree is empty.
        AdderKernel k = makeQrca(1, prep_ancilla);
        return k;
    }
    const auto un = static_cast<Qubit>(n);

    // Register map: a[0..n), b[0..n), z[0..n+1) (z[i] = carry c_i),
    // s[0..n+1) (sum, with s[n] the carry-out), then the propagate
    // product tree ancillae.
    const Qubit a0 = 0;
    const Qubit b0 = un;
    const Qubit z0 = 2 * un;
    const Qubit s0 = 3 * un + 1;
    const Qubit tree0 = s0 + un + 1;

    // Probe the tree size first so the circuit can be sized up front.
    PropagateTree probe(n, b0, tree0);
    const Qubit total = probe.end();

    Circuit circ(total, "qcla" + std::to_string(n));
    auto a = [&](int i) { return a0 + static_cast<Qubit>(i); };
    auto b = [&](int i) { return b0 + static_cast<Qubit>(i); };
    auto z = [&](int i) { return z0 + static_cast<Qubit>(i); };
    auto s = [&](int i) { return s0 + static_cast<Qubit>(i); };

    if (prep_ancilla) {
        // Carries, sum output register, and tree ancillae all start
        // in |0>.
        for (Qubit q = z0; q < total; ++q)
            circ.prepZ(q);
    }

    const PropagateTree tree(n, b0, tree0);

    // Round 1: generates. z[i+1] ^= a_i & b_i.
    for (int i = 0; i < n; ++i)
        circ.toffoli(a(i), b(i), z(i + 1));
    // Round 2: propagates in place. b[i] = a_i xor b_i.
    for (int i = 0; i < n; ++i)
        circ.cx(a(i), b(i));

    // Propagate-product tree.
    tree.compute(circ);

    // Up-sweep: combine generate blocks pairwise. After level t,
    // z[(j+1)*2^t] holds the generate of block [j*2^t, (j+1)*2^t).
    int top = 0;
    while ((2 << top) <= n)
        ++top; // top = floor(log2 n), levels are t = 1..top.
    for (int t = 1; t <= top; ++t) {
        const int span = 1 << t;
        for (int j = 0; (j + 1) * span <= n; ++j) {
            const int hi = (j + 1) * span - 1;
            const int mid = hi - span / 2;
            circ.toffoli(tree.block(t - 1, 2 * j + 1), z(mid + 1),
                         z(hi + 1));
        }
    }

    // Down-sweep: fill in the remaining prefixes.
    for (int t = top; t >= 1; --t) {
        const int span = 1 << t;
        for (int j = 1; j * span + span / 2 - 1 < n; ++j) {
            const int idx = j * span + span / 2 - 1;
            circ.toffoli(tree.block(t - 1, 2 * j), z(j * span),
                         z(idx + 1));
        }
    }

    // Sum copy-out: s_i = p_i xor c_i; s_n = c_n.
    circ.cx(b(0), s(0)); // c_0 = 0
    for (int i = 1; i < n; ++i) {
        circ.cx(b(i), s(i));
        circ.cx(z(i), s(i));
    }
    circ.cx(z(n), s(n));

    // Uncompute carries and products (exact reverse of the forward
    // tree; every block is self-inverse).
    for (int t = 1; t <= top; ++t) {
        const int span = 1 << t;
        for (int j = 1; j * span + span / 2 - 1 < n; ++j) {
            const int idx = j * span + span / 2 - 1;
            circ.toffoli(tree.block(t - 1, 2 * j), z(j * span),
                         z(idx + 1));
        }
    }
    for (int t = top; t >= 1; --t) {
        const int span = 1 << t;
        for (int j = 0; (j + 1) * span <= n; ++j) {
            const int hi = (j + 1) * span - 1;
            const int mid = hi - span / 2;
            circ.toffoli(tree.block(t - 1, 2 * j + 1), z(mid + 1),
                         z(hi + 1));
        }
    }
    tree.uncompute(circ);
    for (int i = n - 1; i >= 0; --i)
        circ.cx(a(i), b(i));
    for (int i = n - 1; i >= 0; --i)
        circ.toffoli(a(i), b(i), z(i + 1));

    AdderLayout layout;
    layout.aBase = a0;
    layout.bBase = b0;
    layout.sumBase = s0;
    layout.sumBits = un + 1;
    layout.carryOut = s(n);
    layout.numQubits = total;
    return {std::move(circ), layout};
}

} // namespace qc
