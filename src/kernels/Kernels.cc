#include "kernels/Kernels.hh"

#include "common/Logging.hh"
#include "kernels/Adders.hh"

namespace qc {

std::string
benchmarkName(BenchmarkKind kind, int bits)
{
    std::string prefix = std::to_string(bits) + "-Bit ";
    switch (kind) {
      case BenchmarkKind::Qrca:
        return prefix + "QRCA";
      case BenchmarkKind::Qcla:
        return prefix + "QCLA";
      case BenchmarkKind::Qft:
        return prefix + "QFT";
    }
    panic("benchmarkName: bad kind");
}

Benchmark
makeBenchmark(BenchmarkKind kind, FowlerSynth &synth,
              const BenchmarkOptions &options)
{
    Circuit high(1);
    switch (kind) {
      case BenchmarkKind::Qrca:
        high = makeQrca(options.bits).circuit;
        break;
      case BenchmarkKind::Qcla:
        high = makeQcla(options.bits).circuit;
        break;
      case BenchmarkKind::Qft:
        high = makeQft(options.bits, options.qft);
        break;
    }
    Lowered lowered =
        lowerToFaultTolerant(high, synth, options.lowering);
    return Benchmark{kind, benchmarkName(kind, options.bits),
                     std::move(high), std::move(lowered)};
}

std::vector<Benchmark>
makeAllBenchmarks(FowlerSynth &synth, const BenchmarkOptions &options)
{
    std::vector<Benchmark> out;
    out.push_back(makeBenchmark(BenchmarkKind::Qrca, synth, options));
    out.push_back(makeBenchmark(BenchmarkKind::Qcla, synth, options));
    out.push_back(makeBenchmark(BenchmarkKind::Qft, synth, options));
    return out;
}

} // namespace qc
