#include "kernels/ClassicalSim.hh"

#include "common/Logging.hh"

namespace qc {

std::vector<bool>
runClassical(const Circuit &circuit, std::vector<bool> initial)
{
    initial.resize(circuit.numQubits(), false);
    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::PrepZ:
            initial[g.ops[0]] = false;
            break;
          case GateKind::X:
            initial[g.ops[0]] = !initial[g.ops[0]];
            break;
          case GateKind::CX:
            if (initial[g.ops[0]])
                initial[g.ops[1]] = !initial[g.ops[1]];
            break;
          case GateKind::Toffoli:
            if (initial[g.ops[0]] && initial[g.ops[1]])
                initial[g.ops[2]] = !initial[g.ops[2]];
            break;
          case GateKind::Measure:
            // Computational-basis measurement of a classical state
            // is the identity on the bit vector.
            break;
          default:
            panic("runClassical: non-classical gate ",
                  gateName(g.kind));
        }
    }
    return initial;
}

std::uint64_t
packBits(const std::vector<bool> &state, Qubit base, Qubit count)
{
    std::uint64_t value = 0;
    for (Qubit i = 0; i < count; ++i) {
        if (state[base + i])
            value |= std::uint64_t{1} << i;
    }
    return value;
}

void
unpackBits(std::vector<bool> &state, Qubit base, Qubit count,
           std::uint64_t value)
{
    for (Qubit i = 0; i < count; ++i)
        state[base + i] = (value >> i) & 1;
}

} // namespace qc
