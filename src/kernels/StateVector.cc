#include "kernels/StateVector.hh"

#include <cmath>
#include <cstdlib>

#include "common/Logging.hh"

namespace qc {

namespace {

constexpr double invSqrt2 = 0.70710678118654752440;

} // namespace

StateVector::StateVector(Qubit num_qubits)
    : StateVector(num_qubits, 0)
{
}

StateVector::StateVector(Qubit num_qubits, std::uint64_t basis_state)
    : numQubits_(num_qubits)
{
    if (num_qubits > 24)
        fatal("StateVector: ", num_qubits, " qubits is too large");
    amps_.assign(std::size_t{1} << num_qubits, 0.0);
    amps_[basis_state] = 1.0;
}

void
StateVector::apply1q(Qubit q, const Cplx m[2][2])
{
    const std::size_t stride = std::size_t{1} << q;
    const std::size_t size = amps_.size();
    for (std::size_t base = 0; base < size; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Cplx a0 = amps_[i];
            const Cplx a1 = amps_[i + stride];
            amps_[i] = m[0][0] * a0 + m[0][1] * a1;
            amps_[i + stride] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

void
StateVector::applyPhase1q(Qubit q, Cplx phase)
{
    const std::size_t mask = std::size_t{1} << q;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if (i & mask)
            amps_[i] *= phase;
    }
}

void
StateVector::applyControlledPhase(Qubit a, Qubit b, Cplx phase)
{
    const std::size_t mask =
        (std::size_t{1} << a) | (std::size_t{1} << b);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & mask) == mask)
            amps_[i] *= phase;
    }
}

void
StateVector::applyCx(Qubit control, Qubit target)
{
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & cmask) && !(i & tmask))
            std::swap(amps_[i], amps_[i | tmask]);
    }
}

void
StateVector::applyToffoli(Qubit a, Qubit b, Qubit target)
{
    const std::size_t cmask =
        (std::size_t{1} << a) | (std::size_t{1} << b);
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & cmask) == cmask && !(i & tmask))
            std::swap(amps_[i], amps_[i | tmask]);
    }
}

void
StateVector::reset(Qubit q)
{
    // Project onto |0> and renormalize; panics if the projection is
    // (numerically) zero, since PrepZ in our circuits is only ever
    // applied to qubits already in |0> or being legitimately reset.
    const std::size_t mask = std::size_t{1} << q;
    double norm = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if (i & mask)
            amps_[i] = 0.0;
        else
            norm += std::norm(amps_[i]);
    }
    if (norm < 1e-12)
        panic("StateVector: PrepZ on a qubit with no |0> support");
    const double scale = 1.0 / std::sqrt(norm);
    for (auto &a : amps_)
        a *= scale;
}

void
StateVector::apply(const Gate &g)
{
    using namespace std::complex_literals;
    const Qubit q = g.ops[0];
    switch (g.kind) {
      case GateKind::PrepZ:
        reset(q);
        return;
      case GateKind::PrepX: {
        reset(q);
        const Cplx h[2][2] = {{invSqrt2, invSqrt2},
                              {invSqrt2, -invSqrt2}};
        apply1q(q, h);
        return;
      }
      case GateKind::H: {
        const Cplx h[2][2] = {{invSqrt2, invSqrt2},
                              {invSqrt2, -invSqrt2}};
        apply1q(q, h);
        return;
      }
      case GateKind::X: {
        const Cplx x[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
        apply1q(q, x);
        return;
      }
      case GateKind::Y: {
        const Cplx y[2][2] = {{0.0, -1.0i}, {1.0i, 0.0}};
        apply1q(q, y);
        return;
      }
      case GateKind::Z:
        applyPhase1q(q, -1.0);
        return;
      case GateKind::S:
        applyPhase1q(q, 1.0i);
        return;
      case GateKind::Sdg:
        applyPhase1q(q, -1.0i);
        return;
      case GateKind::T:
        applyPhase1q(q, std::polar(1.0, M_PI / 4.0));
        return;
      case GateKind::Tdg:
        applyPhase1q(q, std::polar(1.0, -M_PI / 4.0));
        return;
      case GateKind::RotZ: {
        const double mag = M_PI / std::ldexp(1.0, std::abs(g.param));
        applyPhase1q(q, std::polar(1.0, g.param >= 0 ? mag : -mag));
        return;
      }
      case GateKind::CX:
        applyCx(g.ops[0], g.ops[1]);
        return;
      case GateKind::CZ:
        applyControlledPhase(g.ops[0], g.ops[1], -1.0);
        return;
      case GateKind::CRotZ: {
        const double mag = M_PI / std::ldexp(1.0, std::abs(g.param));
        applyControlledPhase(
            g.ops[0], g.ops[1],
            std::polar(1.0, g.param >= 0 ? mag : -mag));
        return;
      }
      case GateKind::Toffoli:
        applyToffoli(g.ops[0], g.ops[1], g.ops[2]);
        return;
      default:
        panic("StateVector: unsupported gate ", gateName(g.kind));
    }
}

void
StateVector::run(const Circuit &circuit)
{
    if (circuit.numQubits() != numQubits_)
        panic("StateVector: circuit qubit count mismatch");
    for (const Gate &g : circuit.gates())
        apply(g);
}

double
StateVector::overlap(const StateVector &other) const
{
    if (other.amps_.size() != amps_.size())
        panic("StateVector: overlap size mismatch");
    Cplx inner = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i)
        inner += std::conj(other.amps_[i]) * amps_[i];
    return std::abs(inner);
}

double
StateVector::probOne(Qubit q) const
{
    const std::size_t mask = std::size_t{1} << q;
    double p = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if (i & mask)
            p += std::norm(amps_[i]);
    }
    return p;
}

} // namespace qc
