/**
 * @file
 * Synthetic workload generators for scaling and stress studies,
 * complementing the paper's three kernels: circuits with precisely
 * controllable depth, width and ancilla-demand mix whose analytic
 * properties (gate counts, critical path) are trivial to derive, so
 * API and scheduler tests can assert exact values.
 */

#ifndef QC_KERNELS_SYNTHETIC_HH
#define QC_KERNELS_SYNTHETIC_HH

#include "circuit/Circuit.hh"

namespace qc {

/**
 * A fully serial single-qubit chain of `length` alternating H and T
 * gates: one gate per dependence level, so the speed-of-data
 * critical path is exactly `length` gates long and the pi/8 demand
 * is length/2. The worst case for any ancilla-sharing scheme (zero
 * exploitable parallelism).
 */
Circuit makeChain(int length);

/**
 * A dense brickwork ladder on `width` qubits with `layers` layers:
 * each layer applies H to every qubit, then CX between alternating
 * neighbor pairs (brick pattern). Parallelism equals the width at
 * every level — the best case for shared ancilla factories, with
 * gate count width * layers + ~(width/2) * layers.
 */
Circuit makeLadder(int width, int layers);

} // namespace qc

#endif // QC_KERNELS_SYNTHETIC_HH
