/**
 * @file
 * Tests for the bit-parallel batched Monte Carlo engine: the
 * BernoulliWord mask sampler (bias and within-word independence),
 * masked BatchPauliFrame algebra against the scalar PauliFrame,
 * statistical equivalence of BatchAncillaSim with the scalar
 * reference engine, and bit-reproducibility across thread counts.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

#include "codes/SteaneCode.hh"
#include "common/Stats.hh"
#include "error/AncillaSim.hh"
#include "error/BatchAncillaSim.hh"
#include "error/BatchPauliFrame.hh"
#include "error/PauliFrame.hh"

namespace qc {
namespace {

// ---------------------------------------------------------------
// BernoulliWord / Rng::bernoulliMask.
// ---------------------------------------------------------------

TEST(BernoulliWord, EdgeProbabilities)
{
    Rng rng(1);
    BernoulliWord never(0.0);
    BernoulliWord always(1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(never.next(rng), 0u);
        EXPECT_EQ(always.next(rng), ~std::uint64_t{0});
    }
    EXPECT_EQ(rng.bernoulliMask(0.0), 0u);
    EXPECT_EQ(rng.bernoulliMask(1.0), ~std::uint64_t{0});
}

TEST(BernoulliWord, MeanMatchesPAcrossScales)
{
    for (double p : {1e-4, 1e-2, 0.1, 0.5, 0.9}) {
        Rng rng(42);
        BernoulliWord sampler(p);
        const int words = p < 1e-3 ? 400000 : 40000;
        std::uint64_t bits = 0;
        for (int i = 0; i < words; ++i)
            bits += static_cast<std::uint64_t>(
                __builtin_popcountll(sampler.next(rng)));
        const double n = 64.0 * words;
        const double rate = static_cast<double>(bits) / n;
        // Allow five binomial standard deviations.
        const double sd = std::sqrt(p * (1.0 - p) / n);
        EXPECT_NEAR(rate, p, 5.0 * sd + 1e-12) << "p=" << p;
    }
}

TEST(BernoulliWord, ChiSquaredUnbiasedAcrossBitPositions)
{
    // Bit position must not bias the sampler: the geometric gap
    // walk sets low positions first, so a systematic positional
    // bias is the natural failure mode.
    const double p = 0.3;
    const int words = 50000;
    Rng rng(7);
    BernoulliWord sampler(p);
    std::array<std::uint64_t, 64> counts{};
    for (int i = 0; i < words; ++i) {
        std::uint64_t w = sampler.next(rng);
        while (w) {
            counts[static_cast<std::size_t>(
                __builtin_ctzll(w))] += 1;
            w &= w - 1;
        }
    }
    const double expected = p * words;
    const double var = words * p * (1.0 - p);
    double chi2 = 0;
    for (std::uint64_t c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / var;
    }
    // chi2 ~ ChiSquared(64): mean 64, sd ~11.3. 110 is past the
    // 99.9th percentile; 25 guards against a degenerate sampler.
    EXPECT_LT(chi2, 110.0);
    EXPECT_GT(chi2, 25.0);
}

TEST(BernoulliWord, SetBitCountFollowsBinomial)
{
    // Within-word independence: the popcount distribution must be
    // Binomial(64, p), which a correlated sampler (e.g. a gap walk
    // with an off-by-one) would miss even with the right mean.
    const double p = 0.05;
    const int words = 100000;
    Rng rng(11);
    BernoulliWord sampler(p);
    constexpr int buckets = 10; // 0..8 hits, then >= 9
    std::array<std::uint64_t, buckets> counts{};
    for (int i = 0; i < words; ++i) {
        const int k =
            __builtin_popcountll(sampler.next(rng));
        counts[static_cast<std::size_t>(
            k >= buckets - 1 ? buckets - 1 : k)] += 1;
    }
    // Binomial(64, p) pmf, iteratively.
    std::array<double, buckets> prob{};
    double pmf = std::pow(1.0 - p, 64);
    double tail = 1.0;
    for (int k = 0; k < buckets - 1; ++k) {
        prob[static_cast<std::size_t>(k)] = pmf;
        tail -= pmf;
        pmf *= (64.0 - k) / (k + 1.0) * p / (1.0 - p);
    }
    prob[buckets - 1] = tail;
    double chi2 = 0;
    for (int k = 0; k < buckets; ++k) {
        const double e =
            prob[static_cast<std::size_t>(k)] * words;
        const double d =
            static_cast<double>(
                counts[static_cast<std::size_t>(k)])
            - e;
        chi2 += d * d / e;
    }
    // ChiSquared(9): 99.9th percentile ~ 27.9.
    EXPECT_LT(chi2, 30.0);
}

// ---------------------------------------------------------------
// Masked BatchPauliFrame algebra vs the scalar PauliFrame.
// ---------------------------------------------------------------

TEST(BatchPauliFrame, MaskedOpsMatchScalarFramePerTrial)
{
    constexpr int qubits = 8;
    Rng rng(123);
    BatchPauliFrame batch(qubits, 1);
    std::array<PauliFrame, 64> scalar;

    for (int step = 0; step < 5000; ++step) {
        const std::uint64_t m = rng();
        const int kind = static_cast<int>(rng.below(7));
        const int a = static_cast<int>(rng.below(qubits));
        int b = static_cast<int>(rng.below(qubits - 1));
        if (b >= a)
            ++b;
        for (int t = 0; t < 64; ++t) {
            if (!((m >> t) & 1))
                continue;
            PauliFrame &f = scalar[static_cast<std::size_t>(t)];
            switch (kind) {
              case 0: f.applyH(a); break;
              case 1: f.applyS(a); break;
              case 2: f.applyCx(a, b); break;
              case 3: f.applyCz(a, b); break;
              case 4: f.flipX(a); break;
              case 5: f.flipZ(a); break;
              case 6: f.clearRange(a, 1); break;
            }
        }
        switch (kind) {
          case 0: batch.applyH(a, &m); break;
          case 1: batch.applyS(a, &m); break;
          case 2: batch.applyCx(a, b, &m); break;
          case 3: batch.applyCz(a, b, &m); break;
          case 4: batch.flipX(a, &m); break;
          case 5: batch.flipZ(a, &m); break;
          case 6: batch.clearQubit(a, &m); break;
        }
    }

    for (int q = 0; q < qubits; ++q) {
        for (int t = 0; t < 64; ++t) {
            const PauliFrame &f =
                scalar[static_cast<std::size_t>(t)];
            EXPECT_EQ((batch.x(q)[0] >> t) & 1,
                      static_cast<std::uint64_t>(f.hasX(q)))
                << "q=" << q << " t=" << t;
            EXPECT_EQ((batch.z(q)[0] >> t) & 1,
                      static_cast<std::uint64_t>(f.hasZ(q)))
                << "q=" << q << " t=" << t;
        }
    }
}

TEST(BatchPauliFrame, InjectionRespectsMaskAndProbability)
{
    BatchPauliFrame frame(2, 1);
    Rng rng(5);
    BernoulliWord certain(1.0);
    const std::uint64_t mask = 0xAAAAAAAAAAAAAAAAull;

    frame.inject1q(rng, certain, 0, &mask);
    for (int t = 0; t < 64; ++t) {
        const bool hit = ((frame.x(0)[0] | frame.z(0)[0]) >> t) & 1;
        EXPECT_EQ(hit, ((mask >> t) & 1) != 0) << "t=" << t;
    }

    frame.clear();
    frame.inject2q(rng, certain, 0, 1, &mask);
    for (int t = 0; t < 64; ++t) {
        const bool hit = ((frame.x(0)[0] | frame.z(0)[0]
                           | frame.x(1)[0] | frame.z(1)[0])
                          >> t)
            & 1;
        EXPECT_EQ(hit, ((mask >> t) & 1) != 0) << "t=" << t;
    }

    // Rare-injection rate sanity (also exercised by the estimate
    // equivalence tests below).
    frame.clear();
    BernoulliWord pctw(0.01);
    const std::uint64_t all = ~std::uint64_t{0};
    int faults = 0;
    const int rounds = 20000;
    for (int i = 0; i < rounds; ++i) {
        frame.clearQubit(0, &all);
        frame.inject1q(rng, pctw, 0, &all);
        faults += __builtin_popcountll(frame.x(0)[0]
                                       | frame.z(0)[0]);
    }
    EXPECT_NEAR(static_cast<double>(faults) / (64.0 * rounds), 0.01,
                0.001);
}

// ---------------------------------------------------------------
// Word-parallel classification identity.
// ---------------------------------------------------------------

TEST(SteaneShortcut, ParityXorSyndromeMatchesBadCoset)
{
    // The batched engine classifies residuals word-parallel via
    // badCoset(e) == parity(e) XOR (syndrome(e) != 0); prove the
    // identity over all 128 patterns.
    for (unsigned e = 0; e < 128; ++e) {
        const auto m = static_cast<SteaneCode::Mask>(e);
        EXPECT_EQ(SteaneCode::badCoset(m),
                  SteaneCode::parity(m)
                      ^ (SteaneCode::syndromeOf(m) != 0))
            << "e=" << e;
    }
}

// ---------------------------------------------------------------
// BatchAncillaSim vs the scalar reference engine.
// ---------------------------------------------------------------

bool
overlap(const Interval &a, const Interval &b)
{
    return a.lo <= b.hi && b.lo <= a.hi;
}

TEST(BatchAncillaSim, MatchesScalarEngineForAllStrategies)
{
    const std::uint64_t scalar_trials = 150000;
    const std::uint64_t batch_trials = 1200000;
    for (auto semantics :
         {CorrectionSemantics::DiscardOnSyndrome,
          CorrectionSemantics::ApplyFix}) {
        for (auto strat :
             {ZeroPrepStrategy::Basic, ZeroPrepStrategy::VerifyOnly,
              ZeroPrepStrategy::CorrectOnly,
              ZeroPrepStrategy::VerifyAndCorrect}) {
            AncillaPrepSimulator scalar(ErrorParams::paper(),
                                        MovementModel{}, 0xabc,
                                        semantics);
            BatchAncillaSim batch(ErrorParams::paper(),
                                  MovementModel{}, 0xdef,
                                  semantics);
            const PrepEstimate s =
                scalar.estimateScalar(strat, scalar_trials);
            const PrepEstimate b =
                batch.estimate(strat, batch_trials);
            EXPECT_TRUE(overlap(s.errorInterval(),
                                b.errorInterval()))
                << zeroPrepStrategyName(strat) << " scalar ["
                << s.errorInterval().lo << ", "
                << s.errorInterval().hi << "] batch ["
                << b.errorInterval().lo << ", "
                << b.errorInterval().hi << "]";
            // Verification discard rates must agree as well.
            if (s.verifyTrials && b.verifyTrials) {
                EXPECT_TRUE(overlap(
                    wilsonInterval(s.discards, s.verifyTrials),
                    wilsonInterval(b.discards, b.verifyTrials)))
                    << zeroPrepStrategyName(strat);
            }
        }
    }
}

TEST(BatchAncillaSim, MatchesScalarEngineForPi8)
{
    AncillaPrepSimulator scalar(ErrorParams::paper(),
                                MovementModel{}, 0x314);
    BatchAncillaSim batch(ErrorParams::paper(), MovementModel{},
                          0x159);
    const PrepEstimate s = scalar.estimateScalarPi8(100000);
    const PrepEstimate b = batch.estimatePi8(800000);
    EXPECT_TRUE(overlap(s.errorInterval(), b.errorInterval()))
        << "scalar [" << s.errorInterval().lo << ", "
        << s.errorInterval().hi << "] batch ["
        << b.errorInterval().lo << ", " << b.errorInterval().hi
        << "]";
}

TEST(BatchAncillaSim, ZeroNoiseMeansZeroFailuresExactTallies)
{
    ErrorParams clean;
    clean.pGate = 0;
    clean.pMove = 0;
    BatchAncillaSim sim(clean, MovementModel{}, 3);
    // 100 is deliberately not a multiple of the 64-trial word
    // width: the partial-batch mask must keep tallies exact.
    const PrepEstimate est =
        sim.estimate(ZeroPrepStrategy::VerifyOnly, 100);
    EXPECT_EQ(est.trials, 100u);
    EXPECT_EQ(est.failures, 0u);
    EXPECT_EQ(est.discards, 0u);
    // Noiseless verification passes first try for every trial.
    EXPECT_EQ(est.verifyTrials, 100u);

    const PrepEstimate vc =
        sim.estimate(ZeroPrepStrategy::VerifyAndCorrect, 100);
    EXPECT_EQ(vc.failures, 0u);
    EXPECT_EQ(vc.correctionDiscards, 0u);
    // Bit and phase stage once per trial.
    EXPECT_EQ(vc.correctionTrials, 200u);

    EXPECT_EQ(sim.estimate(ZeroPrepStrategy::Basic, 0).trials, 0u);
}

// ---------------------------------------------------------------
// Determinism: fixed seed + trial count => identical estimates,
// independent of threading and repeatable across instances.
// ---------------------------------------------------------------

bool
sameEstimate(const PrepEstimate &a, const PrepEstimate &b)
{
    return a.trials == b.trials && a.failures == b.failures
        && a.discards == b.discards
        && a.verifyTrials == b.verifyTrials
        && a.correctionDiscards == b.correctionDiscards
        && a.correctionTrials == b.correctionTrials;
}

TEST(BatchAncillaSim, BitReproducibleAcrossThreadCounts)
{
    const std::uint64_t trials = 300000;
    for (auto strat : {ZeroPrepStrategy::VerifyAndCorrect,
                       ZeroPrepStrategy::VerifyOnly}) {
        PrepEstimate results[3];
        const int thread_counts[3] = {1, 2, 4};
        for (int i = 0; i < 3; ++i) {
            BatchSimConfig config;
            config.threads = thread_counts[i];
            BatchAncillaSim sim(ErrorParams::paper(),
                                MovementModel{}, 99,
                                CorrectionSemantics::
                                    DiscardOnSyndrome,
                                config);
            results[i] = sim.estimate(strat, trials);
        }
        EXPECT_TRUE(sameEstimate(results[0], results[1]))
            << zeroPrepStrategyName(strat) << " 1 vs 2 threads";
        EXPECT_TRUE(sameEstimate(results[0], results[2]))
            << zeroPrepStrategyName(strat) << " 1 vs 4 threads";
    }
}

TEST(BatchAncillaSim, ReproducibleAcrossInstancesAndFreshPerCall)
{
    BatchAncillaSim a(ErrorParams::paper(), MovementModel{}, 5);
    BatchAncillaSim b(ErrorParams::paper(), MovementModel{}, 5);
    const PrepEstimate ea =
        a.estimate(ZeroPrepStrategy::Basic, 100000);
    const PrepEstimate eb =
        b.estimate(ZeroPrepStrategy::Basic, 100000);
    EXPECT_TRUE(sameEstimate(ea, eb));

    // A second call on the same instance draws a fresh run seed:
    // same statistics, different trials.
    const PrepEstimate ea2 =
        a.estimate(ZeroPrepStrategy::Basic, 100000);
    EXPECT_TRUE(overlap(ea.errorInterval(), ea2.errorInterval()));
}

TEST(BatchAncillaSim, Pi8BitReproducibleAcrossThreadCounts)
{
    PrepEstimate results[2];
    const int thread_counts[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        BatchSimConfig config;
        config.threads = thread_counts[i];
        BatchAncillaSim sim(
            ErrorParams::paper(), MovementModel{}, 17,
            CorrectionSemantics::DiscardOnSyndrome, config);
        results[i] = sim.estimatePi8(200000);
    }
    EXPECT_TRUE(sameEstimate(results[0], results[1]));
}

// ---------------------------------------------------------------
// RareBernoulliStream: the geometric-renewal bit stream feeding
// the batch injection sites.
// ---------------------------------------------------------------

TEST(RareBernoulliStream, EdgeProbabilities)
{
    Rng rng(2);
    RareBernoulliStream never(0.0);
    never.reset(rng);
    never.window(rng, 8, [](int, std::uint64_t) { FAIL(); });

    RareBernoulliStream always(1.0);
    always.reset(rng);
    int visited = 0;
    always.window(rng, 8, [&](int w, std::uint64_t bits) {
        EXPECT_EQ(w, visited++);
        EXPECT_EQ(bits, ~std::uint64_t{0});
    });
    EXPECT_EQ(visited, 8);
}

TEST(RareBernoulliStream, MeanMatchesPAcrossScales)
{
    for (double p : {0.3, 0.02, 1e-3, 1e-5}) {
        Rng rng(0x5eed);
        RareBernoulliStream stream(p);
        stream.reset(rng);
        const int words = 64;
        const std::uint64_t windows =
            p >= 1e-3 ? 2000 : 200000;
        std::uint64_t ones = 0;
        for (std::uint64_t i = 0; i < windows; ++i) {
            stream.window(rng, words, [&](int, std::uint64_t bits) {
                ones += static_cast<std::uint64_t>(
                    __builtin_popcountll(bits));
            });
        }
        const std::uint64_t total = windows * 64ull * words;
        const double mean =
            static_cast<double>(ones) / static_cast<double>(total);
        const double sigma =
            std::sqrt(p * (1 - p) / static_cast<double>(total));
        EXPECT_NEAR(mean, p, 5 * sigma + 1e-12) << "p=" << p;
    }
}

TEST(RareBernoulliStream, WindowPartitionDoesNotChangeTheStream)
{
    // The stream is a renewal process over a flat bit sequence:
    // chopping it into differently sized windows must reproduce
    // the exact same bit positions (this is what makes the batch
    // engine's RNG consumption independent of batch shape).
    const double p = 0.01;
    const int total_words = 96;
    std::vector<std::uint64_t> reference(total_words, 0);
    {
        Rng rng(77);
        RareBernoulliStream stream(p);
        stream.reset(rng);
        stream.window(rng, total_words,
                      [&](int w, std::uint64_t bits) {
                          reference[static_cast<std::size_t>(w)] =
                              bits;
                      });
    }
    for (int chunk : {1, 3, 32}) {
        Rng rng(77);
        RareBernoulliStream stream(p);
        stream.reset(rng);
        std::vector<std::uint64_t> got(total_words, 0);
        for (int base = 0; base < total_words; base += chunk) {
            const int words =
                std::min(chunk, total_words - base);
            stream.window(rng, words,
                          [&](int w, std::uint64_t bits) {
                              got[static_cast<std::size_t>(
                                  base + w)] = bits;
                          });
        }
        EXPECT_EQ(got, reference) << "chunk=" << chunk;
    }
}

// ---------------------------------------------------------------
// SIMD width dispatch: every width is the same engine.
// ---------------------------------------------------------------

TEST(SimdWidth, ParseAndNameRoundTrip)
{
    for (simd::Width w :
         {simd::Width::Auto, simd::Width::Scalar, simd::Width::W64,
          simd::Width::W128, simd::Width::W256, simd::Width::W512}) {
        simd::Width parsed;
        ASSERT_TRUE(simd::parseWidth(simd::widthName(w), &parsed));
        EXPECT_EQ(parsed, w);
    }
    simd::Width parsed;
    EXPECT_TRUE(simd::parseWidth("scalar-fallback", &parsed));
    EXPECT_EQ(parsed, simd::Width::Scalar);
    EXPECT_FALSE(simd::parseWidth("wide", &parsed));
    EXPECT_FALSE(simd::parseWidth("", &parsed));
}

TEST(SimdWidth, ResolveHonorsForceEnvAndRejectsJunk)
{
    ASSERT_EQ(setenv("QC_FORCE_WIDTH", "128", 1), 0);
    EXPECT_EQ(simd::resolveWidth(simd::Width::Auto),
              simd::Width::W128);
    ASSERT_EQ(setenv("QC_FORCE_WIDTH", "bogus", 1), 0);
    EXPECT_THROW(simd::resolveWidth(simd::Width::Auto),
                 std::runtime_error);
    ASSERT_EQ(unsetenv("QC_FORCE_WIDTH"), 0);
    // An explicit width wins over the environment.
    EXPECT_EQ(simd::resolveWidth(simd::Width::W64),
              simd::Width::W64);
    // Auto resolves to something the machine can actually run.
    EXPECT_TRUE(
        simd::widthSupported(simd::resolveWidth(simd::Width::Auto)));
}

/**
 * The tentpole invariant: every SIMD width — scalar fallback
 * included — produces bit-identical tallies over the full
 * estimate / estimatePi8 surface, because all RNG consumption is
 * ordered per 64-bit stream word and only pure-bitwise loops are
 * blocked by the lane count.
 */
TEST(SimdWidth, CrossWidthBitIdentityOverFullSurface)
{
    const simd::Width widths[] = {
        simd::Width::Scalar, simd::Width::W64, simd::Width::W128,
        simd::Width::W256, simd::Width::W512};
    for (auto semantics :
         {CorrectionSemantics::DiscardOnSyndrome,
          CorrectionSemantics::ApplyFix}) {
        for (auto strat :
             {ZeroPrepStrategy::Basic,
              ZeroPrepStrategy::VerifyAndCorrect}) {
            PrepEstimate ref, refPi8;
            bool first = true;
            for (simd::Width w : widths) {
                if (!simd::widthSupported(w))
                    continue;
                BatchSimConfig config;
                config.width = w;
                BatchAncillaSim sim(ErrorParams::paper(),
                                    MovementModel{}, 0x51dd,
                                    semantics, config);
                EXPECT_EQ(sim.resolvedWidth(), w);
                const PrepEstimate est =
                    sim.estimate(strat, 150000);
                const PrepEstimate pi8 = sim.estimatePi8(50000);
                if (first) {
                    ref = est;
                    refPi8 = pi8;
                    first = false;
                    continue;
                }
                EXPECT_TRUE(sameEstimate(ref, est))
                    << zeroPrepStrategyName(strat) << " width "
                    << simd::widthName(w);
                EXPECT_TRUE(sameEstimate(refPi8, pi8))
                    << "pi8 width " << simd::widthName(w);
            }
        }
    }
}

TEST(SimdWidth, OddBatchShapesStayBitIdenticalAcrossWidths)
{
    // Word counts that leave a scalar tail at every vector width
    // (words % kLanes != 0) must not change results either.
    for (int words : {1, 3, 7}) {
        PrepEstimate ref;
        bool first = true;
        for (simd::Width w :
             {simd::Width::W64, simd::Width::Scalar,
              simd::Width::W256, simd::Width::W512}) {
            if (!simd::widthSupported(w))
                continue;
            BatchSimConfig config;
            config.width = w;
            config.wordsPerQubit = words;
            BatchAncillaSim sim(
                ErrorParams::paper(), MovementModel{}, 0xbee,
                CorrectionSemantics::DiscardOnSyndrome, config);
            const PrepEstimate est = sim.estimate(
                ZeroPrepStrategy::VerifyAndCorrect, 20000);
            if (first) {
                ref = est;
                first = false;
                continue;
            }
            EXPECT_TRUE(sameEstimate(ref, est))
                << "words=" << words << " width "
                << simd::widthName(w);
        }
    }
}

} // namespace
} // namespace qc
