/**
 * @file
 * Tests for the sweep service: the filesystem lease protocol
 * (exclusive acquisition, nonce-checked renewal, wall-clock
 * expiry, single-winner steal, dead-owner fast path), the fault
 * injector's spec parsing, the serve protocol's JSON round trips,
 * and in-process coordinator+worker integration — including the
 * headline guarantee that the merged document is byte-identical
 * to a single-shot `runSweep` of the same spec, across drains,
 * stale leases and conflicting deltas.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "common/Clock.hh"
#include "common/DurableFile.hh"
#include "serve/Serve.hh"
#include "sweep/Sweep.hh"

namespace qc {
namespace {

namespace fs = std::filesystem;

Json
parse(const std::string &text)
{
    return Json::parse(text);
}

/** A fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path(::testing::TempDir() + name + "-"
               + std::to_string(::getpid()))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~ScratchDir() { fs::remove_all(path); }

    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

/** A 4-point mc-prep spec small enough for fast integration
 *  runs. */
const char *const kSpec = R"({
  "name": "serve_test",
  "runner": "mc-prep",
  "base": {"trials": 20000, "seed": 11},
  "axes": [
    {"field": "strategy", "values": ["basic", "verify_and_correct"]},
    {"field": "pGate", "values": [1e-4, 1e-3]}
  ]
})";

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------
// Lease protocol
// ---------------------------------------------------------------

TEST(Lease, AcquisitionIsExclusive)
{
    ScratchDir dir("qc_lease_excl");
    const std::string path = dir.file("a.lease");
    LeaseInfo mine;
    mine.pid = static_cast<int>(::getpid());
    mine.nonce = Lease::makeNonce();
    mine.ttlSeconds = 30.0;
    ASSERT_TRUE(Lease::tryAcquire(path, mine));
    // The filesystem arbitrates: a second O_EXCL create loses.
    EXPECT_FALSE(Lease::tryAcquire(path, mine));

    LeaseInfo stored;
    ASSERT_TRUE(Lease::read(path, stored));
    EXPECT_EQ(stored.pid, mine.pid);
    EXPECT_EQ(stored.nonce, mine.nonce);
    EXPECT_FALSE(stored.expired(nowEpochMs()));
    EXPECT_GT(stored.expiresMs, nowEpochMs() + 20000);
}

TEST(Lease, RenewRequiresTheOwnersNonce)
{
    FakeWallClock clock;
    ScopedWallClock scoped(clock);
    ScratchDir dir("qc_lease_renew");
    const std::string path = dir.file("a.lease");
    LeaseInfo mine;
    mine.pid = static_cast<int>(::getpid());
    mine.nonce = Lease::makeNonce();
    mine.ttlSeconds = 30.0;
    ASSERT_TRUE(Lease::tryAcquire(path, mine));
    LeaseInfo before;
    ASSERT_TRUE(Lease::read(path, before));

    clock.advanceMs(5000);
    ASSERT_TRUE(Lease::renew(path, mine));
    LeaseInfo after;
    ASSERT_TRUE(Lease::read(path, after));
    EXPECT_EQ(after.expiresMs, before.expiresMs + 5000);

    // A usurper's renewal must not resurrect its claim.
    LeaseInfo other = mine;
    other.nonce = Lease::makeNonce();
    EXPECT_FALSE(Lease::renew(path, other));
    LeaseInfo unchanged;
    ASSERT_TRUE(Lease::read(path, unchanged));
    EXPECT_EQ(unchanged.nonce, mine.nonce);
}

TEST(Lease, ExpiryIsWallClock)
{
    // Expiry is driven by the injectable wall clock, so the test
    // advances a fake clock past a realistic TTL instead of
    // shrinking the TTL and really sleeping.
    FakeWallClock clock;
    ScopedWallClock scoped(clock);
    ScratchDir dir("qc_lease_expire");
    const std::string path = dir.file("a.lease");
    LeaseInfo mine;
    mine.pid = static_cast<int>(::getpid());
    mine.nonce = Lease::makeNonce();
    mine.ttlSeconds = 30.0;
    ASSERT_TRUE(Lease::tryAcquire(path, mine));
    LeaseInfo stored;
    ASSERT_TRUE(Lease::read(path, stored));
    EXPECT_FALSE(stored.expired(nowEpochMs()));
    clock.advanceMs(29'999);
    EXPECT_FALSE(stored.expired(nowEpochMs()));
    clock.advanceMs(2);
    EXPECT_TRUE(stored.expired(nowEpochMs()));
    // Expired but the owner (this process) is alive: the dead-PID
    // fast path must NOT claim it is dead.
    EXPECT_TRUE(stored.ownerAlive());
}

TEST(Lease, ReleaseRequiresTheNonce)
{
    ScratchDir dir("qc_lease_release");
    const std::string path = dir.file("a.lease");
    LeaseInfo mine;
    mine.pid = static_cast<int>(::getpid());
    mine.nonce = Lease::makeNonce();
    mine.ttlSeconds = 30.0;
    ASSERT_TRUE(Lease::tryAcquire(path, mine));
    EXPECT_FALSE(Lease::release(path, "someone-else"));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_TRUE(Lease::release(path, mine.nonce));
    EXPECT_FALSE(fs::exists(path));
}

TEST(Lease, StealHasExactlyOneWinner)
{
    ScratchDir dir("qc_lease_steal");
    const std::string path = dir.file("a.lease");
    LeaseInfo mine;
    mine.pid = static_cast<int>(::getpid());
    mine.nonce = Lease::makeNonce();
    mine.ttlSeconds = 0.01;
    ASSERT_TRUE(Lease::tryAcquire(path, mine));
    EXPECT_TRUE(Lease::steal(path, dir.file(".aside")));
    EXPECT_FALSE(fs::exists(path));
    // The rename already happened; a second reclaimer loses.
    EXPECT_FALSE(Lease::steal(path, dir.file(".aside2")));
    // And the shard is acquirable again.
    EXPECT_TRUE(Lease::tryAcquire(path, mine));
}

TEST(Lease, DeadOwnerFastPath)
{
    // Fork a child that exits immediately: its reaped PID is a
    // known-dead process on this box.
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        ::_exit(0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    LeaseInfo dead;
    dead.pid = static_cast<int>(child);
    dead.nonce = "gone";
    dead.expiresMs = nowEpochMs() + 60000; // TTL far from expiry
    EXPECT_FALSE(dead.ownerAlive());

    LeaseInfo alive = dead;
    alive.pid = static_cast<int>(::getpid());
    EXPECT_TRUE(alive.ownerAlive());
}

TEST(Lease, TornLeaseFileReadsAsAbsent)
{
    ScratchDir dir("qc_lease_torn");
    const std::string path = dir.file("a.lease");
    {
        std::ofstream out(path);
        out << "{\"pid\": 12"; // writer died mid-write
    }
    LeaseInfo stored;
    EXPECT_FALSE(Lease::read(path, stored));
}

// ---------------------------------------------------------------
// FaultInjector parsing
// ---------------------------------------------------------------

TEST(FaultInjector, ParsesEveryDocumentedSpec)
{
    EXPECT_FALSE(FaultInjector::parse("").armed());
    EXPECT_TRUE(FaultInjector::parse("crash-before-commit")
                    .is("crash-before-commit"));
    EXPECT_TRUE(FaultInjector::parse("crash-after-commit")
                    .is("crash-after-commit"));
    EXPECT_TRUE(
        FaultInjector::parse("torn-delta").is("torn-delta"));
    EXPECT_TRUE(FaultInjector::parse("stale-heartbeat")
                    .is("stale-heartbeat"));
    const FaultInjector slow = FaultInjector::parse("slow-worker=75");
    EXPECT_TRUE(slow.is("slow-worker"));
    EXPECT_EQ(slow.param(), 75);
    const FaultInjector at = FaultInjector::parse("crash-at-point=2");
    EXPECT_TRUE(at.is("crash-at-point"));
    EXPECT_EQ(at.param(), 2);
}

TEST(FaultInjector, RejectsMalformedSpecsListingValidOnes)
{
    const auto expectThrows = [](const std::string &spec) {
        try {
            FaultInjector::parse(spec);
            FAIL() << spec << " should have thrown";
        } catch (const std::invalid_argument &error) {
            EXPECT_NE(std::string(error.what()).find("torn-delta"),
                      std::string::npos)
                << "error should list the valid specs: "
                << error.what();
        }
    };
    expectThrows("rm-rf");                  // unknown kind
    expectThrows("crash-before-commit=3");  // takes no parameter
    expectThrows("slow-worker");            // needs a parameter
    expectThrows("slow-worker=fast");       // non-numeric
    expectThrows("crash-at-point=-1");      // negative
}

TEST(FaultInjector, DisarmedInjectorNeverFires)
{
    const FaultInjector none;
    EXPECT_FALSE(none.armed());
    none.fire("crash-before-commit"); // must not exit the test run
    none.fireAtPoint(0);
    none.maybeSleep();
    // An armed injector only fires its own kind.
    FaultInjector::parse("crash-after-commit")
        .fire("crash-before-commit");
    FaultInjector::parse("crash-at-point=5").fireAtPoint(4);
}

// ---------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------

TEST(ServeProtocol, ShardDescriptorRoundTrips)
{
    ShardDescriptor desc;
    desc.id = shardId(7);
    EXPECT_EQ(desc.id, "shard-0007");
    desc.indices = {3, 1, 4};
    desc.attempt = 2;
    ShardDescriptor back;
    ASSERT_TRUE(ShardDescriptor::fromJson(desc.toJson(), back));
    EXPECT_EQ(back.id, desc.id);
    EXPECT_EQ(back.indices, desc.indices);
    EXPECT_EQ(back.attempt, desc.attempt);

    ShardDescriptor bad;
    EXPECT_FALSE(ShardDescriptor::fromJson(parse("{}"), bad));
    EXPECT_FALSE(ShardDescriptor::fromJson(
        parse(R"({"id": "x", "indices": ["seven"]})"), bad));
}

TEST(ServeProtocol, ShardDeltaRoundTrips)
{
    ShardDelta delta;
    delta.id = shardId(0);
    delta.owner = "w1";
    delta.partial = true;
    DeltaPoint point;
    point.index = 5;
    point.configHash = "00000000deadbeef";
    point.failed = true;
    point.result = parse(R"({"error": "boom"})");
    delta.points.push_back(point);

    ShardDelta back;
    ASSERT_TRUE(ShardDelta::fromJson(delta.toJson(), back));
    EXPECT_EQ(back.id, delta.id);
    EXPECT_EQ(back.owner, "w1");
    EXPECT_TRUE(back.partial);
    ASSERT_EQ(back.points.size(), 1u);
    EXPECT_EQ(back.points[0].index, 5u);
    EXPECT_EQ(back.points[0].configHash, "00000000deadbeef");
    EXPECT_TRUE(back.points[0].failed);

    ShardDelta bad;
    EXPECT_FALSE(ShardDelta::fromJson(parse("{}"), bad));
    EXPECT_FALSE(ShardDelta::fromJson(
        parse(R"({"id": "x", "points": [{"index": 1}]})"), bad));
}

// ---------------------------------------------------------------
// Coordinator + worker integration (in-process)
// ---------------------------------------------------------------

CoordinatorOptions
coordinatorOptions(const ScratchDir &dir)
{
    CoordinatorOptions options;
    options.outPath = dir.file("out.json");
    options.dir = dir.file("serve");
    options.pollMs = 10;
    options.checkpointSeconds = 0;
    options.quiet = true;
    return options;
}

WorkerOptions
workerOptions(const CoordinatorOptions &coordinator)
{
    WorkerOptions options;
    options.dir = coordinator.dir;
    options.pollMs = 10;
    options.backoffMaxMs = 50;
    options.maxIdleSeconds = 60;
    options.quiet = true;
    return options;
}

TEST(Serve, MergedDocumentIsByteIdenticalToSingleShot)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json golden = runSweep(spec).doc;

    ScratchDir dir("qc_serve_identical");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.workersExpected = 2;
    options.shardPoints = 1; // 4 shards: both workers get some

    std::thread w1([&] { runWorker(workerOptions(options)); });
    std::thread w2([&] { runWorker(workerOptions(options)); });
    const CoordinatorReport report = runCoordinator(spec, options);
    w1.join();
    w2.join();

    EXPECT_EQ(report.exitCode, 0);
    EXPECT_EQ(report.executed, 4u);
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_EQ(golden.dump(2) + "\n", readAll(options.outPath));
}

TEST(Serve, WorkerDrainCommitsAPartialDelta)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json golden = runSweep(spec).doc;

    ScratchDir dir("qc_serve_partial");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.shardPoints = 4; // one shard holds the whole sweep

    // The first worker is told to stop mid-shard: it must commit
    // what it has as a partial delta and exit with the
    // interrupted code; the coordinator re-queues the rest for
    // the second worker.
    CoordinatorReport report;
    std::thread coordinator(
        [&] { report = runCoordinator(spec, options); });

    std::atomic<bool> stopFirst{false};
    WorkerOptions first = workerOptions(options);
    first.fault = FaultInjector::parse("slow-worker=20");
    first.stopRequested = [&] { return stopFirst.load(); };
    std::thread trigger([&] {
        // Flip the stop flag while the worker is inside an early
        // point of the 4-point shard.
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        stopFirst.store(true);
    });
    const WorkerReport firstReport = runWorker(first);
    trigger.join();
    EXPECT_EQ(firstReport.exitCode, kInterruptedExit);
    EXPECT_TRUE(firstReport.interrupted);
    EXPECT_LT(firstReport.points, 4u);

    // A second worker finishes whatever the drain left behind.
    std::thread w2([&] { runWorker(workerOptions(options)); });
    coordinator.join();
    w2.join();

    EXPECT_EQ(report.exitCode, 0);
    EXPECT_EQ(report.duplicates, 0u);
    EXPECT_EQ(golden.dump(2) + "\n", readAll(options.outPath));
    if (firstReport.points > 0) {
        const std::string log = readAll(options.dir + "/log");
        EXPECT_NE(log.find("partial delta"), std::string::npos);
    }
}

TEST(Serve, ExpiredLeaseIsReclaimedExactlyOnceAndNotReExecuted)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json golden = runSweep(spec).doc;

    ScratchDir dir("qc_serve_reclaim");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.shardPoints = 1;
    options.leaseSeconds = 0.1;

    // Squat on shard-0000 with a never-renewed lease held by this
    // (alive) process: the coordinator must take the expired-lease
    // path, exactly once, and a real worker then computes it.
    std::thread squatter([&] {
        const ServeDir serveDir(options.dir);
        const std::string leasePath = serveDir.lease("shard-0000");
        while (!fs::exists(serveDir.queueEntry("shard-0000")))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        LeaseInfo squat;
        squat.pid = static_cast<int>(::getpid());
        squat.nonce = Lease::makeNonce();
        squat.ttlSeconds = options.leaseSeconds;
        Lease::tryAcquire(leasePath, squat);
    });

    std::thread worker([&] { runWorker(workerOptions(options)); });
    const CoordinatorReport report = runCoordinator(spec, options);
    squatter.join();
    worker.join();

    EXPECT_EQ(report.exitCode, 0);
    EXPECT_EQ(report.reclaimedExpired, 1u);
    EXPECT_EQ(report.duplicates, 0u);
    EXPECT_EQ(golden.dump(2) + "\n", readAll(options.outPath));

    const std::string log = readAll(options.dir + "/log");
    const std::string needle = "reclaimed expired lease";
    std::size_t count = 0;
    for (std::size_t at = log.find(needle);
         at != std::string::npos; at = log.find(needle, at + 1))
        ++count;
    EXPECT_EQ(count, 1u);
}

TEST(Serve, ConflictingDeltasAreRejectedNotMerged)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json golden = runSweep(spec).doc;

    ScratchDir dir("qc_serve_conflict");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.shardPoints = 1;

    // Inject a delta whose config_hash does not match the plan: a
    // worker with a skewed expansion (edited spec, incompatible
    // build) must not contaminate the document.
    std::thread forger([&] {
        const ServeDir serveDir(options.dir);
        while (!fs::exists(serveDir.manifest()))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        ShardDelta forged;
        forged.id = "shard-0000";
        forged.owner = "forger";
        DeltaPoint point;
        point.index = 0;
        point.configHash = "0000000000000000"; // wrong on purpose
        point.result = parse(R"({"pFail": 0.5})");
        forged.points.push_back(point);
        writeFileDurable(serveDir.result("shard-0000", "forger"),
                         forged.toJson().dump(2) + "\n");
    });

    std::thread worker([&] { runWorker(workerOptions(options)); });
    const CoordinatorReport report = runCoordinator(spec, options);
    forger.join();
    worker.join();

    EXPECT_EQ(report.exitCode, 0);
    EXPECT_GE(report.rejected, 1u);
    EXPECT_EQ(golden.dump(2) + "\n", readAll(options.outPath));
    const std::string log = readAll(options.dir + "/log");
    EXPECT_NE(log.find("rejected conflicting delta"),
              std::string::npos);
}

TEST(Serve, CoordinatorResumesItsOwnPartialCheckpoint)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json golden = runSweep(spec).doc;

    ScratchDir dir("qc_serve_resume");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.shardPoints = 1;

    // Produce the "crashed half-way" checkpoint the PR 5 way: a
    // drained single-shot run over the same spec leaves two
    // finished points and two interrupted stubs in --out.
    {
        std::atomic<std::size_t> doneCount{0};
        SweepOptions halted;
        halted.threads = 1;
        halted.checkpointPath = options.outPath;
        halted.checkpointSeconds = 0;
        halted.progress = [&](const SweepProgress &) {
            ++doneCount;
        };
        halted.stopRequested = [&] { return doneCount >= 2; };
        const SweepReport half = runSweep(spec, halted);
        ASSERT_EQ(half.interrupted, 2u);
    }

    // A coordinator restarted on that checkpoint replays the two
    // stored points and only serves the rest.
    std::thread worker([&] { runWorker(workerOptions(options)); });
    const CoordinatorReport report = runCoordinator(spec, options);
    worker.join();

    EXPECT_EQ(report.exitCode, 0);
    EXPECT_EQ(report.resumed, 2u);
    EXPECT_EQ(report.executed, 2u);
    EXPECT_EQ(golden.dump(2) + "\n", readAll(options.outPath));
}

TEST(Serve, CoordinatorStopDrainsWithACheckpointAndDoneMarker)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    ScratchDir dir("qc_serve_stop");
    CoordinatorOptions options = coordinatorOptions(dir);
    options.stopRequested = [] { return true; }; // immediate stop

    const CoordinatorReport report = runCoordinator(spec, options);
    EXPECT_TRUE(report.interrupted);
    EXPECT_EQ(report.exitCode, kInterruptedExit);
    EXPECT_EQ(readAll(options.dir + "/done"), "interrupted\n");

    // The checkpoint is a valid resumable document: all stubs.
    const Json checkpoint = Json::loadFile(options.outPath);
    ASSERT_TRUE(checkpoint.at("points").isArray());
    EXPECT_EQ(checkpoint.at("points").size(), 4u);
    EXPECT_TRUE(checkpoint.at("points").at(0).has("error"));
}

TEST(Serve, WorkerExitsOnDoneMarker)
{
    ScratchDir dir("qc_serve_done");
    const ServeDir serveDir(dir.file("serve"));
    fs::create_directories(serveDir.root);
    writeFileDurable(serveDir.doneMarker(), "complete\n");

    WorkerOptions options;
    options.dir = serveDir.root;
    options.pollMs = 5;
    options.quiet = true;
    const WorkerReport report = runWorker(options);
    EXPECT_EQ(report.exitCode, 0);
    EXPECT_EQ(report.shards, 0u);
}

TEST(Serve, IdleWorkerLeavesAfterMaxIdle)
{
    ScratchDir dir("qc_serve_idle");
    // No manifest ever appears; the worker must still terminate…
    // via its stop hook (maxIdle only counts once it has joined).
    std::atomic<bool> stop{false};
    WorkerOptions options;
    options.dir = dir.file("serve");
    options.pollMs = 5;
    options.quiet = true;
    options.stopRequested = [&] { return stop.load(); };
    std::thread flip([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        stop.store(true);
    });
    const WorkerReport report = runWorker(options);
    flip.join();
    EXPECT_EQ(report.exitCode, kInterruptedExit);

    // With a manifest-bearing but empty queue, maxIdleSeconds
    // bounds the wait: build a done-less directory whose queue is
    // empty and check the worker leaves with exit 0.
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const ServeDir serveDir(dir.file("serve2"));
    fs::create_directories(serveDir.queueDir());
    fs::create_directories(serveDir.leaseDir());
    fs::create_directories(serveDir.resultDir());
    Json manifest = Json::object();
    manifest.set("generation", 1);
    manifest.set("lease_seconds", 1.0);
    manifest.set("runner", spec.runner);
    manifest.set("spec", spec.toJson());
    writeFileDurable(serveDir.manifest(),
                     manifest.dump(2) + "\n");
    WorkerOptions bounded;
    bounded.dir = serveDir.root;
    bounded.pollMs = 5;
    bounded.backoffMaxMs = 20;
    bounded.maxIdleSeconds = 0.1;
    bounded.quiet = true;
    const WorkerReport idle = runWorker(bounded);
    EXPECT_EQ(idle.exitCode, 0);
    EXPECT_EQ(idle.shards, 0u);
}

} // namespace
} // namespace qc
