/**
 * @file
 * Unit tests for the circuit IR and dataflow scheduling.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.hh"
#include "circuit/Dataflow.hh"

namespace qc {
namespace {

TEST(Gate, ArityByKind)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::T), 1);
    EXPECT_EQ(gateArity(GateKind::CX), 2);
    EXPECT_EQ(gateArity(GateKind::CRotZ), 2);
    EXPECT_EQ(gateArity(GateKind::Toffoli), 3);
    EXPECT_EQ(gateArity(GateKind::Measure), 1);
}

TEST(Gate, NamesAreStable)
{
    EXPECT_EQ(gateName(GateKind::T), "T");
    EXPECT_EQ(gateName(GateKind::CX), "CX");
    EXPECT_EQ(gateName(GateKind::Toffoli), "Toffoli");
}

TEST(Circuit, BuilderAppendsInOrder)
{
    Circuit c(3);
    c.h(0).cx(0, 1).t(1).toffoli(0, 1, 2).measure(2);
    ASSERT_EQ(c.size(), 5u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::H);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
    EXPECT_EQ(c.gates()[3].kind, GateKind::Toffoli);
    EXPECT_EQ(c.gates()[3].ops[2], 2u);
}

TEST(Circuit, CensusCountsKinds)
{
    Circuit c(2);
    c.h(0).h(1).t(0).tdg(1).cx(0, 1);
    const GateCensus census = c.census();
    EXPECT_EQ(census.total, 5u);
    EXPECT_EQ(census.of(GateKind::H), 2u);
    EXPECT_EQ(census.nonTransversal1q(), 2u);
}

TEST(Circuit, RotationParamStored)
{
    Circuit c(2);
    c.rotZ(0, 5).crotZ(0, 1, -3);
    EXPECT_EQ(c.gates()[0].param, 5);
    EXPECT_EQ(c.gates()[1].param, -3);
}

TEST(Circuit, AddQubitsGrows)
{
    Circuit c(2);
    const Qubit first = c.addQubits(3);
    EXPECT_EQ(first, 2u);
    EXPECT_EQ(c.numQubits(), 5u);
    c.h(4); // must not panic
}

TEST(CircuitDeath, RejectsOutOfRangeOperand)
{
    Circuit c(2);
    EXPECT_DEATH(c.h(2), "out of range");
}

TEST(CircuitDeath, RejectsDuplicateOperands)
{
    Circuit c(2);
    EXPECT_DEATH(c.cx(1, 1), "duplicate");
}

TEST(Dataflow, ChainHasLinearDepth)
{
    Circuit c(1);
    c.h(0).t(0).h(0).t(0);
    DataflowGraph g(c);
    EXPECT_EQ(g.depth(), 4u);
    EXPECT_EQ(g.roots().size(), 1u);
}

TEST(Dataflow, IndependentGatesAreParallel)
{
    Circuit c(4);
    c.h(0).h(1).h(2).h(3);
    DataflowGraph g(c);
    EXPECT_EQ(g.depth(), 1u);
    EXPECT_EQ(g.roots().size(), 4u);
}

TEST(Dataflow, TwoQubitGatesJoinChains)
{
    Circuit c(2);
    c.h(0).h(1).cx(0, 1).t(1);
    DataflowGraph g(c);
    // cx depends on both h's; t depends on cx.
    EXPECT_EQ(g.preds(2).size(), 2u);
    EXPECT_EQ(g.preds(3).size(), 1u);
    EXPECT_EQ(g.depth(), 3u);
}

TEST(Dataflow, AsapMakespanOfChain)
{
    Circuit c(1);
    c.h(0).h(0).h(0);
    DataflowGraph g(c);
    const Schedule s = g.asap([](const Gate &) { return Time{7}; });
    EXPECT_EQ(s.makespan, 21);
    EXPECT_EQ(s.start[2], 14);
}

TEST(Dataflow, AsapRespectsCrossQubitDependencies)
{
    Circuit c(2);
    c.h(0).h(1).cx(0, 1);
    DataflowGraph g(c);
    const Schedule s = g.asap([](const Gate &g_) {
        return g_.kind == GateKind::H ? Time{5} : Time{10};
    });
    EXPECT_EQ(s.start[2], 5);
    EXPECT_EQ(s.makespan, 15);
}

TEST(Dataflow, ParallelismShortensMakespan)
{
    // Two independent chains of 3 gates each.
    Circuit c(2);
    c.h(0).h(0).h(0).h(1).h(1).h(1);
    DataflowGraph g(c);
    const Schedule s = g.asap([](const Gate &) { return Time{10}; });
    EXPECT_EQ(s.makespan, 30);
    EXPECT_EQ(g.depth(), 3u);
}

TEST(Dataflow, LevelsMatchDepth)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).measure(2);
    DataflowGraph g(c);
    const auto levels = g.levels();
    EXPECT_EQ(levels[0], 0u);
    EXPECT_EQ(levels[1], 1u);
    EXPECT_EQ(levels[2], 2u);
    EXPECT_EQ(levels[3], 3u);
}

TEST(Dataflow, PrepStartsNewLifetimeButKeepsOrdering)
{
    Circuit c(1);
    c.h(0).measure(0).prepZ(0).h(0);
    DataflowGraph g(c);
    // Still a chain: reuse of the qubit is ordered.
    EXPECT_EQ(g.depth(), 4u);
}

} // namespace
} // namespace qc
