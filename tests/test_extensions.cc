/**
 * @file
 * Tests for the extension components: the event-level factory farm
 * simulation (cross-validating the analytic Table 6 design), the
 * tiled Qalypso model (Fig 16), and the on-demand token pools that
 * underpin the microarchitecture comparisons.
 */

#include <gtest/gtest.h>

#include "arch/QalypsoTile.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "factory/FarmSim.hh"
#include "kernels/Kernels.hh"
#include "sim/TokenPool.hh"

namespace qc {
namespace {

// ---------------------------------------------------------------
// OnDemandBankPool.
// ---------------------------------------------------------------

TEST(OnDemandBankPool, IdleProducerHasOneBufferedToken)
{
    OnDemandBankPool bank(1, usec(323));
    // At t = 1 ms the single producer has been idle long enough to
    // have one ancilla buffered: the first claim is immediate.
    EXPECT_EQ(bank.claim(1, msec(1)), msec(1));
    // The second must be produced from scratch.
    EXPECT_EQ(bank.claim(1, msec(1)), msec(1) + usec(323));
}

TEST(OnDemandBankPool, BurstSerializesOnOneProducer)
{
    OnDemandBankPool bank(1, usec(100));
    const Time t0 = usec(1000);
    EXPECT_EQ(bank.claim(1, t0), t0);            // buffered
    EXPECT_EQ(bank.claim(1, t0), t0 + usec(100));
    EXPECT_EQ(bank.claim(1, t0), t0 + usec(200));
    EXPECT_EQ(bank.claim(2, t0), t0 + usec(400));
    EXPECT_EQ(bank.issued(), 5u);
}

TEST(OnDemandBankPool, ParallelProducersShareBurst)
{
    OnDemandBankPool bank(4, usec(100));
    const Time t0 = usec(1000);
    // Four buffered tokens immediately, then one period for more.
    EXPECT_EQ(bank.claim(4, t0), t0);
    EXPECT_EQ(bank.claim(4, t0), t0 + usec(100));
}

TEST(OnDemandBankPool, CannotStockpileBeyondBuffer)
{
    // The dedicated-generator pathology the paper targets: a long
    // idle stretch yields only `producers` buffered ancillae, not
    // idle_time / period of them.
    OnDemandBankPool bank(2, usec(100));
    const Time t0 = msec(100); // 100 ms of idleness
    EXPECT_EQ(bank.claim(2, t0), t0);
    EXPECT_GT(bank.claim(1, t0), t0);
}

TEST(OnDemandBankPoolDeath, RejectsBadParameters)
{
    EXPECT_DEATH(OnDemandBankPool(0, usec(1)), "bad parameters");
}

// ---------------------------------------------------------------
// Factory farm simulation vs the analytic design.
// ---------------------------------------------------------------

class FarmSimTest : public ::testing::Test
{
  protected:
    ZeroFactory factory_{IonTrapParams::paper(), 0.998};
};

TEST_F(FarmSimTest, SteadyThroughputMatchesAnalyticDesign)
{
    const FarmSimResult r =
        simulateZeroFactory(factory_, 20000, 42);
    // The event-level pipeline must reproduce the closed-form
    // 10.5 ancillae/ms within a few percent.
    EXPECT_NEAR(r.throughput, factory_.throughput(),
                0.06 * factory_.throughput());
}

TEST_F(FarmSimTest, FirstOutputAfterPipelineFill)
{
    const FarmSimResult r = simulateZeroFactory(factory_, 100, 42);
    // Three candidates must traverse prep+cx+verify before the
    // first correction completes.
    EXPECT_GT(r.firstOutput, factory_.latency() / 2);
    EXPECT_LT(r.firstOutput, 4 * factory_.latency());
}

TEST_F(FarmSimTest, DiscardRateTracksAcceptance)
{
    const FarmSimResult r =
        simulateZeroFactory(factory_, 50000, 7);
    const double discard_rate = static_cast<double>(r.discarded)
        / 50000.0;
    EXPECT_NEAR(discard_rate, 1.0 - factory_.acceptRate(), 0.002);
}

TEST_F(FarmSimTest, OutputCountsAccountForGrouping)
{
    const FarmSimResult r =
        simulateZeroFactory(factory_, 9000, 3);
    // Every output consumes three verified candidates.
    EXPECT_NEAR(static_cast<double>(r.produced),
                (9000.0 - static_cast<double>(r.discarded)) / 3.0,
                1.5);
}

TEST_F(FarmSimTest, LowerAcceptanceLowersThroughput)
{
    const ZeroFactory leaky(IonTrapParams::paper(), 0.5);
    const FarmSimResult good =
        simulateZeroFactory(factory_, 12000, 5);
    const FarmSimResult bad = simulateZeroFactory(leaky, 12000, 5);
    EXPECT_LT(bad.throughput, 0.7 * good.throughput);
}

// ---------------------------------------------------------------
// Tiled Qalypso (Fig 16).
// ---------------------------------------------------------------

class QalypsoTileTest : public ::testing::Test
{
  protected:
    static const Benchmark &
    qrca8()
    {
        static FowlerSynth synth;
        static BenchmarkOptions opts = [] {
            BenchmarkOptions o;
            o.bits = 8;
            return o;
        }();
        static Benchmark b =
            makeBenchmark(BenchmarkKind::Qrca, synth, opts);
        return b;
    }

    EncodedOpModel model_{IonTrapParams::paper()};
};

TEST_F(QalypsoTileTest, SingleTileHasNoTeleports)
{
    DataflowGraph g(qrca8().lowered.circuit);
    QalypsoConfig config;
    config.tileSize =
        static_cast<int>(qrca8().lowered.circuit.numQubits());
    config.factoryAreaPerTile = 4000;
    const QalypsoRunResult r = runQalypso(g, model_, config);
    EXPECT_EQ(r.tiles, 1);
    EXPECT_EQ(r.interTile2q, 0u);
    EXPECT_EQ(r.teleports, 0u);
    EXPECT_GT(r.intraTile2q, 0u);
}

TEST_F(QalypsoTileTest, TinyTilesTeleportHeavily)
{
    DataflowGraph g(qrca8().lowered.circuit);
    QalypsoConfig config;
    config.tileSize = 2;
    config.factoryAreaPerTile = 400;
    const QalypsoRunResult r = runQalypso(g, model_, config);
    EXPECT_GT(r.interTileFraction(), 0.3);
    EXPECT_GT(r.teleports, 0u);
}

TEST_F(QalypsoTileTest, TileCountCoversAllQubits)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const int nq =
        static_cast<int>(qrca8().lowered.circuit.numQubits());
    QalypsoConfig config;
    config.tileSize = 10;
    const QalypsoRunResult r = runQalypso(g, model_, config);
    EXPECT_EQ(r.tiles, (nq + 9) / 10);
    EXPECT_DOUBLE_EQ(r.totalFactoryArea,
                     config.factoryAreaPerTile * r.tiles);
}

TEST_F(QalypsoTileTest, AncillaAccountingMatchesSpeedOfData)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    QalypsoConfig config;
    config.tileSize = 16;
    const QalypsoRunResult r = runQalypso(g, model_, config);
    EXPECT_EQ(r.zerosConsumed, bw.zerosConsumed);
    EXPECT_EQ(r.pi8Consumed, bw.pi8Consumed);
}

TEST_F(QalypsoTileTest, MoreFactoryAreaNeverSlower)
{
    DataflowGraph g(qrca8().lowered.circuit);
    QalypsoConfig small;
    small.tileSize = 16;
    small.factoryAreaPerTile = 300;
    QalypsoConfig big = small;
    big.factoryAreaPerTile = 3000;
    const Time slow = runQalypso(g, model_, small).makespan;
    const Time fast = runQalypso(g, model_, big).makespan;
    EXPECT_LE(fast, slow);
}

TEST_F(QalypsoTileTest, RunsSlowerThanSpeedOfData)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    QalypsoConfig config;
    config.tileSize = 16;
    config.factoryAreaPerTile = 2000;
    const QalypsoRunResult r = runQalypso(g, model_, config);
    EXPECT_GE(r.makespan, bw.runtime);
}

TEST_F(QalypsoTileTest, DeterministicAcrossRuns)
{
    DataflowGraph g(qrca8().lowered.circuit);
    QalypsoConfig config;
    config.tileSize = 8;
    const QalypsoRunResult a = runQalypso(g, model_, config);
    const QalypsoRunResult b = runQalypso(g, model_, config);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.teleports, b.teleports);
}

} // namespace
} // namespace qc
