/**
 * @file
 * Tests for the Pauli-frame Monte Carlo engine: frame algebra,
 * propagation rules, and the Figure 4 reproduction (orderings and
 * magnitudes of the ancilla-preparation error rates).
 */

#include <gtest/gtest.h>

#include "codes/ConcatenatedCode.hh"
#include "error/AncillaSim.hh"
#include "error/PauliFrame.hh"
#include "error/RecursiveError.hh"

namespace qc {
namespace {

TEST(PauliFrame, StartsClean)
{
    PauliFrame f;
    EXPECT_EQ(f.xMask(), 0u);
    EXPECT_EQ(f.zMask(), 0u);
}

TEST(PauliFrame, HSwapsXAndZ)
{
    PauliFrame f;
    f.flipX(3);
    f.applyH(3);
    EXPECT_FALSE(f.hasX(3));
    EXPECT_TRUE(f.hasZ(3));
    f.applyH(3);
    EXPECT_TRUE(f.hasX(3));
    EXPECT_FALSE(f.hasZ(3));
}

TEST(PauliFrame, STurnsXIntoY)
{
    PauliFrame f;
    f.flipX(1);
    f.applyS(1);
    EXPECT_TRUE(f.hasX(1));
    EXPECT_TRUE(f.hasZ(1));
    // S on a pure Z error does nothing.
    PauliFrame g;
    g.flipZ(1);
    g.applyS(1);
    EXPECT_FALSE(g.hasX(1));
    EXPECT_TRUE(g.hasZ(1));
}

TEST(PauliFrame, CxPropagatesXForwardZBackward)
{
    PauliFrame f;
    f.flipX(0);
    f.applyCx(0, 1);
    EXPECT_TRUE(f.hasX(0));
    EXPECT_TRUE(f.hasX(1));

    PauliFrame g;
    g.flipZ(1);
    g.applyCx(0, 1);
    EXPECT_TRUE(g.hasZ(0));
    EXPECT_TRUE(g.hasZ(1));

    // X on target and Z on control do not propagate.
    PauliFrame h;
    h.flipX(1);
    h.flipZ(0);
    h.applyCx(0, 1);
    EXPECT_FALSE(h.hasX(0));
    EXPECT_TRUE(h.hasX(1));
    EXPECT_TRUE(h.hasZ(0));
    EXPECT_FALSE(h.hasZ(1));
}

TEST(PauliFrame, CzDepositsPhaseOnPartner)
{
    PauliFrame f;
    f.flipX(0);
    f.applyCz(0, 1);
    EXPECT_TRUE(f.hasX(0));
    EXPECT_TRUE(f.hasZ(1));
    EXPECT_FALSE(f.hasZ(0));
}

TEST(PauliFrame, ClearRangeForgetsOnlyThatRange)
{
    PauliFrame f;
    f.flipX(2);
    f.flipX(9);
    f.flipZ(10);
    f.clearRange(7, 7);
    EXPECT_TRUE(f.hasX(2));
    EXPECT_FALSE(f.hasX(9));
    EXPECT_FALSE(f.hasZ(10));
}

TEST(PauliFrame, InjectionRespectsProbability)
{
    Rng rng(5);
    PauliFrame f;
    int faults = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        f.clear();
        f.inject1q(rng, 0.01, 0);
        if (f.hasX(0) || f.hasZ(0))
            ++faults;
    }
    EXPECT_NEAR(static_cast<double>(faults) / n, 0.01, 0.002);
}

TEST(PauliFrame, TwoQubitInjectionCoversBothQubits)
{
    Rng rng(6);
    PauliFrame f;
    int on_a = 0, on_b = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        f.clear();
        f.inject2q(rng, 1.0, 0, 1); // always inject
        const bool a = f.hasX(0) || f.hasZ(0);
        const bool b = f.hasX(1) || f.hasZ(1);
        EXPECT_TRUE(a || b); // never identity
        on_a += a;
        on_b += b;
    }
    // 12 of 15 non-identity Paulis touch each side.
    EXPECT_NEAR(static_cast<double>(on_a) / n, 0.8, 0.01);
    EXPECT_NEAR(static_cast<double>(on_b) / n, 0.8, 0.01);
}

// ---------------------------------------------------------------
// Figure 4 reproduction. Trial counts are kept modest for test
// runtime; the bench binary runs the full-precision version.
// ---------------------------------------------------------------

class Fig4Test : public ::testing::Test
{
  protected:
    static PrepEstimate
    run(ZeroPrepStrategy strategy, std::uint64_t trials,
        CorrectionSemantics semantics =
            CorrectionSemantics::DiscardOnSyndrome)
    {
        AncillaPrepSimulator sim(ErrorParams::paper(),
                                 MovementModel{}, 0xf16f4,
                                 semantics);
        return sim.estimate(strategy, trials);
    }
};

TEST_F(Fig4Test, ZeroNoiseMeansZeroErrors)
{
    ErrorParams clean;
    clean.pGate = 0;
    clean.pMove = 0;
    AncillaPrepSimulator sim(clean, MovementModel{}, 1);
    for (auto strat :
         {ZeroPrepStrategy::Basic, ZeroPrepStrategy::VerifyOnly,
          ZeroPrepStrategy::CorrectOnly,
          ZeroPrepStrategy::VerifyAndCorrect}) {
        const PrepEstimate est = sim.estimate(strat, 2000);
        EXPECT_EQ(est.failures, 0u) << zeroPrepStrategyName(strat);
        EXPECT_EQ(est.discards, 0u);
    }
}

TEST_F(Fig4Test, BasicErrorRateOrderOfMagnitude)
{
    // Paper: 1.8e-3. Our reconstruction of the layout/schedule puts
    // it in the low 1e-4..1e-3 band; require the order of magnitude.
    const PrepEstimate est = run(ZeroPrepStrategy::Basic, 200000);
    EXPECT_GT(est.errorRate(), 1e-4);
    EXPECT_LT(est.errorRate(), 3e-3);
}

TEST_F(Fig4Test, VerifyOnlyBeatsBasic)
{
    const PrepEstimate basic = run(ZeroPrepStrategy::Basic, 300000);
    const PrepEstimate verify =
        run(ZeroPrepStrategy::VerifyOnly, 300000);
    EXPECT_LT(verify.errorRate(), basic.errorRate());
}

TEST_F(Fig4Test, VerifyAndCorrectIsOrdersOfMagnitudeBetter)
{
    // Paper: 2.9e-5 vs 3.7e-4 (verify only) — more than an order of
    // magnitude. Under discard semantics our pipeline is at least
    // that much better.
    const PrepEstimate verify =
        run(ZeroPrepStrategy::VerifyOnly, 200000);
    const PrepEstimate vc =
        run(ZeroPrepStrategy::VerifyAndCorrect, 200000);
    EXPECT_LT(vc.errorRate() * 10.0, verify.errorRate());
}

TEST_F(Fig4Test, VerificationFailureRateNearPaper)
{
    // Paper Section 2.3: ~0.2% verification failure rate.
    const PrepEstimate est =
        run(ZeroPrepStrategy::VerifyOnly, 300000);
    EXPECT_GT(est.discardRate(), 0.0005);
    EXPECT_LT(est.discardRate(), 0.004);
}

TEST_F(Fig4Test, ApplyFixSemanticsWeakerThanDiscard)
{
    const PrepEstimate discard = run(
        ZeroPrepStrategy::VerifyAndCorrect, 150000,
        CorrectionSemantics::DiscardOnSyndrome);
    const PrepEstimate apply = run(
        ZeroPrepStrategy::VerifyAndCorrect, 150000,
        CorrectionSemantics::ApplyFix);
    EXPECT_LE(discard.errorRate(), apply.errorRate());
}

TEST_F(Fig4Test, ApplyFixReproducesFig4cOrdering)
{
    // Paper Fig 4c: Verify-and-Correct with in-place fix-ups lands
    // at 2.9e-5 — more than an order of magnitude below Verify Only
    // (3.7e-4). The parity-aware decode plus confirmed phase
    // extraction puts our reconstruction near 1e-5; pin the
    // sub-1e-4 magnitude and the ordering. (Before the fix this
    // strategy sat at Correct-Only rates, ~1e-3.)
    const PrepEstimate vc = run(
        ZeroPrepStrategy::VerifyAndCorrect, 1000000,
        CorrectionSemantics::ApplyFix);
    EXPECT_LT(vc.errorInterval().hi, 1e-4);

    const PrepEstimate verify =
        run(ZeroPrepStrategy::VerifyOnly, 200000,
            CorrectionSemantics::ApplyFix);
    EXPECT_LT(vc.errorRate() * 10.0, verify.errorRate());
}

TEST_F(Fig4Test, ApplyFixScalarAndBatchEnginesAgree)
{
    // The corrected fix-up schedule must be the same physics in
    // both engines: overlapping Wilson intervals at the paper
    // point.
    AncillaPrepSimulator scalar(ErrorParams::paper(),
                                MovementModel{}, 0x51a,
                                CorrectionSemantics::ApplyFix);
    const PrepEstimate s = scalar.estimateScalar(
        ZeroPrepStrategy::VerifyAndCorrect, 400000);
    const PrepEstimate b =
        run(ZeroPrepStrategy::VerifyAndCorrect, 2000000,
            CorrectionSemantics::ApplyFix);
    const Interval si = s.errorInterval();
    const Interval bi = b.errorInterval();
    EXPECT_TRUE(si.lo <= bi.hi && bi.lo <= si.hi)
        << "scalar [" << si.lo << ", " << si.hi << "] batch ["
        << bi.lo << ", " << bi.hi << "]";
}

TEST_F(Fig4Test, CorrectOnlyUnderApplyFixNearPaperValue)
{
    // Paper Fig 4b: 1.1e-3 with in-place corrections.
    const PrepEstimate est =
        run(ZeroPrepStrategy::CorrectOnly, 200000,
            CorrectionSemantics::ApplyFix);
    EXPECT_GT(est.errorRate(), 2e-4);
    EXPECT_LT(est.errorRate(), 4e-3);
}

TEST_F(Fig4Test, MovementErrorsAreSecondOrderEffect)
{
    // pMove = 1e-6 contributes little next to pGate = 1e-4:
    // removing movement errors entirely must not change the basic
    // rate by more than ~30%.
    ErrorParams no_move = ErrorParams::paper();
    no_move.pMove = 0;
    AncillaPrepSimulator with(ErrorParams::paper(), MovementModel{},
                              77);
    AncillaPrepSimulator without(no_move, MovementModel{}, 77);
    const double a =
        with.estimate(ZeroPrepStrategy::Basic, 400000).errorRate();
    const double b =
        without.estimate(ZeroPrepStrategy::Basic, 400000).errorRate();
    EXPECT_NEAR(a, b, 0.3 * a + 1e-5);
}

TEST_F(Fig4Test, Pi8ConversionErrorRateBounded)
{
    AncillaPrepSimulator sim(ErrorParams::paper(), MovementModel{},
                             123);
    const PrepEstimate est = sim.estimatePi8(100000);
    // The conversion adds a cat interaction and decode on top of a
    // verified+corrected zero: still far below the basic rate.
    EXPECT_LT(est.errorRate(), 1e-3);
}

TEST_F(Fig4Test, DeterministicAcrossRuns)
{
    const PrepEstimate a = run(ZeroPrepStrategy::Basic, 50000);
    const PrepEstimate b = run(ZeroPrepStrategy::Basic, 50000);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.discards, b.discards);
}

TEST_F(Fig4Test, HigherGateErrorRaisesOutputError)
{
    ErrorParams noisy = ErrorParams::paper();
    noisy.pGate = 1e-3;
    AncillaPrepSimulator base(ErrorParams::paper(), MovementModel{},
                              9);
    AncillaPrepSimulator hot(noisy, MovementModel{}, 9);
    const double a =
        base.estimate(ZeroPrepStrategy::Basic, 100000).errorRate();
    const double b =
        hot.estimate(ZeroPrepStrategy::Basic, 100000).errorRate();
    EXPECT_GT(b, 3.0 * a);
}

// ---------------------------------------------------------------
// Recursive (level-2) error analytics. Trial counts modest; the
// level-2 bench runs the full-precision version.
// ---------------------------------------------------------------

class RecursiveErrorTest : public ::testing::Test
{
  protected:
    /**
     * Elevated reference point: with discard semantics the paper
     * point's level-1 failures (~8e-7) would make the level-2 rate
     * ~A f1^2 ~ 1e-11 — unmeasurable. Near (but below) the
     * pseudo-threshold both levels resolve with modest trials.
     */
    static const RecursiveErrorAnalysis &
    elevatedAnalysis()
    {
        static const RecursiveErrorAnalysis analysis = [] {
            ErrorParams hot;
            hot.pGate = 1e-2;
            hot.pMove = 1e-5;
            return analyzeRecursiveError(hot, MovementModel{},
                                         0x2f1e7, 1 << 19,
                                         1 << 20);
        }();
        return analysis;
    }
};

TEST_F(RecursiveErrorTest, LevelRatesAreOrderedBelowThreshold)
{
    const RecursiveErrorAnalysis &a = elevatedAnalysis();
    ASSERT_EQ(a.levels.size(), 3u);
    // The reference point sits below pseudo-threshold, so each
    // level of concatenation suppresses the logical error rate.
    EXPECT_TRUE(a.belowThreshold());
    EXPECT_LT(a.levels[1].pGate, a.levels[0].pGate);
    EXPECT_LT(a.levels[2].pGate, a.levels[1].pGate);
    EXPECT_LT(a.levels[1].pMove, a.levels[0].pMove);
}

TEST_F(RecursiveErrorTest, PseudoThresholdMagnitude)
{
    // f1 ~ 3.6e-3 at pGate = 1e-2 gives A ~ 36 and p_th ~ 3e-2 for
    // the discard-on-syndrome factory semantics. Pin the order of
    // magnitude.
    const RecursiveErrorAnalysis &a = elevatedAnalysis();
    EXPECT_GT(a.gateAmplification, 0);
    EXPECT_GT(a.pseudoThreshold, 3e-3);
    EXPECT_LT(a.pseudoThreshold, 3e-1);
}

TEST_F(RecursiveErrorTest, TwoLevelMonteCarloMatchesProjection)
{
    // The analytic recursion f2 = A f1^2 and the two-level Monte
    // Carlo measure the same quantity through different machinery;
    // at this point they land within ~12% of each other. Allow 3x
    // for statistics and the higher-order terms the fit drops.
    const RecursiveErrorAnalysis &a = elevatedAnalysis();
    const double projected = a.projectedFailureRate(2);
    const double measured = a.levels[2].pGate;
    ASSERT_GT(projected, 0);
    ASSERT_GT(a.level2Prep.failures, 0u);
    EXPECT_GT(measured, projected / 3.0);
    EXPECT_LT(measured, projected * 3.0);
}

TEST_F(RecursiveErrorTest, AcceptanceFallsWithLevelErrorRate)
{
    // Verification discards track the input error rate, so the
    // level-2 stage (fed ~p^2 blocks) accepts more often than the
    // level-1 stage it is built from.
    const RecursiveErrorAnalysis &a = elevatedAnalysis();
    EXPECT_GT(a.level1AcceptRate, 0.5);
    EXPECT_LE(a.level1AcceptRate, 1.0);
    EXPECT_GT(a.level2AcceptRate, a.level1AcceptRate);
    EXPECT_LE(a.level2AcceptRate, 1.0);
}

TEST(RecursiveError, PaperPointIsDeepBelowThreshold)
{
    // At the paper's operating point level-1 failures are so rare
    // that a modest run may see none; the Wilson-bound fallback
    // must keep the analysis non-degenerate and the verdict
    // ("concatenation helps here") unambiguous.
    const RecursiveErrorAnalysis a = analyzeRecursiveError(
        ErrorParams::paper(), MovementModel{}, 0x2f1e7, 1 << 20,
        /*level2Trials=*/0);
    ASSERT_EQ(a.levels.size(), 3u);
    EXPECT_GT(a.levels[1].pGate, 0);
    EXPECT_LT(a.levels[1].pGate, 1e-4);
    EXPECT_TRUE(a.belowThreshold());
    EXPECT_GT(a.level1AcceptRate, 0.99);
}

TEST(RecursiveError, SkippingTheTwoLevelPassUsesTheProjection)
{
    const RecursiveErrorAnalysis a = analyzeRecursiveError(
        ErrorParams::paper(), MovementModel{}, 7, 1 << 18,
        /*level2Trials=*/0);
    ASSERT_EQ(a.levels.size(), 3u);
    EXPECT_EQ(a.level2Prep.trials, 0u);
    EXPECT_NEAR(a.levels[2].pGate, a.projectedFailureRate(2),
                1e-12);
}

TEST(RecursiveError, LevelOneLogicalRatesComposition)
{
    PrepEstimate est;
    est.trials = 1000000;
    est.failures = 29; // ~2.9e-5
    const LevelErrorRates rates =
        levelOneLogicalRates(est, ErrorParams::paper());
    EXPECT_EQ(rates.level, 1);
    EXPECT_NEAR(rates.pGate, 2.9e-5, 1e-9);
    // 21 * (moveScale * pMove)^2 under the paper's pMove = 1e-6.
    const double sub = ConcatenatedSteane::moveScalePerLevel * 1e-6;
    EXPECT_NEAR(rates.pMove, 21.0 * sub * sub, 1e-18);
}

} // namespace
} // namespace qc
