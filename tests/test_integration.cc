/**
 * @file
 * Cross-module integration tests: the full pipeline from kernel
 * generation through lowering, speed-of-data analysis, factory
 * sizing and microarchitecture simulation — checking the paper's
 * end-to-end relationships on reduced problem sizes, plus the
 * layout-calibrated Monte Carlo path.
 */

#include <gtest/gtest.h>

#include "arch/Microarch.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "factory/Allocation.hh"
#include "kernels/Kernels.hh"
#include "layout/Builders.hh"

namespace qc {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static FowlerSynth &
    synth()
    {
        static FowlerSynth s;
        return s;
    }

    static Benchmark
    make(BenchmarkKind kind, int bits)
    {
        BenchmarkOptions opts;
        opts.bits = bits;
        return makeBenchmark(kind, synth(), opts);
    }

    EncodedOpModel model_{IonTrapParams::paper()};
};

TEST_F(IntegrationTest, QclaNeedsHigherBandwidthThanQrca)
{
    // Table 3's central contrast: the parallel adder demands several
    // times the ancilla bandwidth of the serial adder (306 vs 35 in
    // the paper at 32 bits).
    const Benchmark qrca = make(BenchmarkKind::Qrca, 16);
    const Benchmark qcla = make(BenchmarkKind::Qcla, 16);
    const BandwidthSummary bw_r = bandwidthAtSpeedOfData(
        DataflowGraph(qrca.lowered.circuit), model_);
    const BandwidthSummary bw_c = bandwidthAtSpeedOfData(
        DataflowGraph(qcla.lowered.circuit), model_);
    EXPECT_GT(bw_c.zeroPerMs(), 3.0 * bw_r.zeroPerMs());
    EXPECT_LT(bw_c.runtime, bw_r.runtime);
}

TEST_F(IntegrationTest, Pi8BandwidthTracksNonTransversalFraction)
{
    const Benchmark qrca = make(BenchmarkKind::Qrca, 16);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(
        DataflowGraph(qrca.lowered.circuit), model_);
    const double ratio = bw.pi8PerMs() / bw.zeroPerMs();
    // Paper Table 3: 7.0/34.8 = 0.20 for QRCA. Expect ~1/5.
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 0.35);
}

TEST_F(IntegrationTest, FactoryAllocationCoversBandwidth)
{
    const Benchmark qrca = make(BenchmarkKind::Qrca, 16);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(
        DataflowGraph(qrca.lowered.circuit), model_);
    const ZeroFactory zero;
    const Pi8Factory pi8;
    const FactoryAllocation alloc = allocateForBandwidth(
        zero, pi8, bw.zeroPerMs(), bw.pi8PerMs());
    // Running throttled at the allocated production rate must come
    // within a small factor of the speed-of-data runtime.
    const double granted =
        alloc.zeroFactoriesForQec * zero.throughput();
    const ThrottledResult run = throttledRun(
        DataflowGraph(qrca.lowered.circuit), model_, granted);
    EXPECT_LT(toMs(run.makespan), 2.2 * toMs(bw.runtime));
}

TEST_F(IntegrationTest, AncillaGenerationDominatesChipArea)
{
    // Section 5.1: even the serial QRCA needs about two thirds of
    // the chip for ancilla generation; data area is the small part.
    const Benchmark qrca = make(BenchmarkKind::Qrca, 32);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(
        DataflowGraph(qrca.lowered.circuit), model_);
    const ZeroFactory zero;
    const Pi8Factory pi8;
    const FactoryAllocation alloc = allocateForBandwidth(
        zero, pi8, bw.zeroPerMs(), bw.pi8PerMs());
    const Area data_area =
        dataQubitArea() * qrca.lowered.circuit.numQubits();
    EXPECT_GT(alloc.totalArea(), data_area);
}

TEST_F(IntegrationTest, LayoutCalibratedMonteCarloStaysInBand)
{
    // Calibrate movement from the routed Fig 11 factory layout and
    // re-run the basic-prep Monte Carlo: with pMove = 1e-6 the rate
    // must remain within the Figure 4 band.
    const MovementModel moves = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    AncillaPrepSimulator sim(ErrorParams::paper(), moves, 4242);
    const PrepEstimate est =
        sim.estimate(ZeroPrepStrategy::Basic, 200000);
    EXPECT_GT(est.errorRate(), 1e-4);
    EXPECT_LT(est.errorRate(), 3e-3);
}

TEST_F(IntegrationTest, ThrottledKneeNearAverageBandwidth)
{
    // Figure 8's shape: at the average bandwidth the run is within
    // a modest factor of optimal; at a tenth it is several times
    // slower.
    const Benchmark qrca = make(BenchmarkKind::Qrca, 8);
    DataflowGraph g(qrca.lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const Time at_avg =
        throttledRun(g, model_, bw.zeroPerMs()).makespan;
    const Time starved =
        throttledRun(g, model_, bw.zeroPerMs() / 10.0).makespan;
    EXPECT_LT(toMs(at_avg), 3.0 * toMs(bw.runtime));
    EXPECT_GT(toMs(starved), 3.0 * toMs(at_avg));
}

TEST_F(IntegrationTest, QalypsoHeadlineSpeedup)
{
    // "more than five times speedup over previous proposals" at
    // matched area: compare FMA against CQLA at the CQLA area.
    const Benchmark qrca = make(BenchmarkKind::Qrca, 8);
    DataflowGraph g(qrca.lowered.circuit);

    MicroarchConfig cqla;
    cqla.kind = MicroarchKind::Cqla;
    cqla.cacheSlots = 8;
    cqla.generatorsPerSite = 1;
    const ArchRunResult cqla_run = runMicroarch(g, model_, cqla);

    MicroarchConfig fma;
    fma.kind = MicroarchKind::FullyMultiplexed;
    fma.areaBudget = cqla_run.ancillaArea;
    const ArchRunResult fma_run = runMicroarch(g, model_, fma);

    EXPECT_GT(static_cast<double>(cqla_run.makespan),
              2.0 * static_cast<double>(fma_run.makespan));
}

TEST_F(IntegrationTest, BenchmarksScaleWithWidth)
{
    for (auto kind : {BenchmarkKind::Qrca, BenchmarkKind::Qcla}) {
        const Benchmark small = make(kind, 8);
        const Benchmark big = make(kind, 16);
        EXPECT_GT(big.lowered.circuit.size(),
                  1.5 * small.lowered.circuit.size());
    }
}

TEST_F(IntegrationTest, QftLoweringProducesPi8Demand)
{
    BenchmarkOptions opts;
    opts.bits = 8;
    const Benchmark qft =
        makeBenchmark(BenchmarkKind::Qft, synth(), opts);
    const GateCensus census = qft.lowered.circuit.census();
    EXPECT_GT(census.nonTransversal1q(), 0u);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(
        DataflowGraph(qft.lowered.circuit), model_);
    EXPECT_GT(bw.pi8PerMs(), 0.0);
}

} // namespace
} // namespace qc
