/**
 * @file
 * Cross-module integration tests: the full pipeline from kernel
 * generation through lowering, speed-of-data analysis, factory
 * sizing and microarchitecture simulation — driven through the
 * qc::Experiment facade on reduced problem sizes, plus the
 * layout-calibrated Monte Carlo path.
 */

#include <gtest/gtest.h>

#include "api/Qc.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "layout/Builders.hh"

namespace qc {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static ExperimentConfig
    config(const std::string &workload, int bits)
    {
        ExperimentConfig c;
        c.workload = workload;
        c.params.bits = bits;
        return c;
    }

    static Result
    speedOfData(const std::string &workload, int bits)
    {
        return runExperiment(config(workload, bits));
    }
};

TEST_F(IntegrationTest, QclaNeedsHigherBandwidthThanQrca)
{
    // Table 3's central contrast: the parallel adder demands several
    // times the ancilla bandwidth of the serial adder (306 vs 35 in
    // the paper at 32 bits).
    const Result qrca = speedOfData("qrca", 16);
    const Result qcla = speedOfData("qcla", 16);
    EXPECT_GT(qcla.bandwidth.zeroPerMs(),
              3.0 * qrca.bandwidth.zeroPerMs());
    EXPECT_LT(qcla.bandwidth.runtime, qrca.bandwidth.runtime);
}

TEST_F(IntegrationTest, Pi8BandwidthTracksNonTransversalFraction)
{
    const Result qrca = speedOfData("qrca", 16);
    const double ratio =
        qrca.bandwidth.pi8PerMs() / qrca.bandwidth.zeroPerMs();
    // Paper Table 3: 7.0/34.8 = 0.20 for QRCA. Expect ~1/5.
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 0.35);
}

TEST_F(IntegrationTest, FactoryAllocationCoversBandwidth)
{
    // Running throttled at the allocated production rate must come
    // within a small factor of the speed-of-data runtime. The
    // throttled experiment derives its default supply rate from the
    // integrally provisioned allocation.
    ExperimentConfig c = config("qrca", 16);
    const Result ideal = runExperiment(c);
    c.schedule = ScheduleMode::Throttled;
    const Result throttled = runExperiment(c);
    EXPECT_TRUE(throttled.completed);
    EXPECT_LT(toMs(throttled.makespan),
              2.2 * toMs(ideal.bandwidth.runtime));
}

TEST_F(IntegrationTest, AncillaGenerationDominatesChipArea)
{
    // Section 5.1: even the serial QRCA needs about two thirds of
    // the chip for ancilla generation; data area is the small part.
    const Result qrca = speedOfData("qrca", 32);
    const Area data_area = dataQubitArea() * qrca.qubits;
    EXPECT_GT(qrca.allocation.totalArea(), data_area);
}

TEST_F(IntegrationTest, LayoutCalibratedMonteCarloStaysInBand)
{
    // Calibrate movement from the routed Fig 11 factory layout and
    // re-run the basic-prep Monte Carlo: with pMove = 1e-6 the rate
    // must remain within the Figure 4 band.
    const MovementModel moves = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    AncillaPrepSimulator sim(ErrorParams::paper(), moves, 4242);
    const PrepEstimate est =
        sim.estimate(ZeroPrepStrategy::Basic, 200000);
    EXPECT_GT(est.errorRate(), 1e-4);
    EXPECT_LT(est.errorRate(), 3e-3);
}

TEST_F(IntegrationTest, ThrottledKneeNearAverageBandwidth)
{
    // Figure 8's shape: at the average bandwidth the run is within
    // a modest factor of optimal; at a tenth it is several times
    // slower.
    ExperimentConfig c = config("qrca", 8);
    Experiment experiment(c);
    const Result ideal = experiment.run();

    c.schedule = ScheduleMode::Throttled;
    c.zeroPerMs = ideal.bandwidth.zeroPerMs();
    const Result at_avg = experiment.run(c);
    c.zeroPerMs = ideal.bandwidth.zeroPerMs() / 10.0;
    const Result starved = experiment.run(c);

    EXPECT_LT(toMs(at_avg.makespan), 3.0 * toMs(ideal.makespan));
    EXPECT_GT(toMs(starved.makespan), 3.0 * toMs(at_avg.makespan));
}

TEST_F(IntegrationTest, QalypsoHeadlineSpeedup)
{
    // "more than five times speedup over previous proposals" at
    // matched area: compare FMA against CQLA at the CQLA area.
    ExperimentConfig c = config("qrca", 8);
    c.schedule = ScheduleMode::Arch;
    c.arch = "cqla";
    c.cacheSlots = 8;
    c.generatorsPerSite = 1;
    Experiment experiment(c);
    const Result cqla = experiment.run();

    ExperimentConfig fma = c;
    fma.arch = "fma";
    fma.areaBudget = cqla.archRun.ancillaArea;
    const Result fma_run = experiment.run(fma);

    EXPECT_GT(static_cast<double>(cqla.makespan),
              2.0 * static_cast<double>(fma_run.makespan));
}

TEST_F(IntegrationTest, BenchmarksScaleWithWidth)
{
    for (const char *workload : {"qrca", "qcla"}) {
        const Result small = speedOfData(workload, 8);
        const Result big = speedOfData(workload, 16);
        EXPECT_GT(big.gates, 1.5 * small.gates);
    }
}

TEST_F(IntegrationTest, QftLoweringProducesPi8Demand)
{
    const Result qft = speedOfData("qft", 8);
    EXPECT_GT(qft.pi8Gates, 0u);
    EXPECT_GT(qft.bandwidth.pi8PerMs(), 0.0);
}

TEST_F(IntegrationTest, KlopsConsistentAcrossSchedules)
{
    // Throughput in logical ops: the throttled run retires the same
    // gates over a longer makespan, so KLOPS must drop by exactly
    // the slowdown factor.
    ExperimentConfig c = config("qcla", 8);
    Experiment experiment(c);
    const Result ideal = experiment.run();

    ExperimentConfig throttled = c;
    throttled.schedule = ScheduleMode::Throttled;
    throttled.zeroPerMs = ideal.bandwidth.zeroPerMs() / 4.0;
    const Result slow = experiment.run(throttled);

    ASSERT_TRUE(slow.completed);
    EXPECT_GT(slow.makespan, ideal.makespan);
    EXPECT_NEAR(ideal.klops() / slow.klops(),
                static_cast<double>(slow.makespan)
                    / static_cast<double>(ideal.makespan),
                1e-9);
}

} // namespace
} // namespace qc
