/**
 * @file
 * Tests for the hoard cache (src/hoard, docs/HOARD.md): the
 * cache-key policy (every ExperimentConfig field classified as
 * semantic or reporting-only, with property tests that
 * reporting-only changes hit and semantic changes miss), store
 * round trips, the corruption matrix (truncated / bit-flipped /
 * wrong-version / orphaned-index / torn-write objects each
 * quarantined and transparently recomputed, output byte-identical
 * to a cold run), eviction order, concurrent sweeps sharing one
 * store, idempotent duplicate publishes, and ingest of leftover
 * serve shard deltas.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/Qc.hh"
#include "common/Clock.hh"
#include "common/DurableFile.hh"
#include "hoard/Hoard.hh"
#include "serve/Lease.hh"
#include "serve/Protocol.hh"
#include "sweep/Sweep.hh"

namespace qc {
namespace {

namespace fs = std::filesystem;

Json
parse(const std::string &text)
{
    return Json::parse(text);
}

/** A fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path(::testing::TempDir() + name + "-"
               + std::to_string(::getpid()))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~ScratchDir() { fs::remove_all(path); }

    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** A 4-point mc-prep spec small enough for fast integration
 *  runs. */
const char *const kSpec = R"({
  "name": "hoard_test",
  "runner": "mc-prep",
  "base": {"trials": 20000, "seed": 11},
  "axes": [
    {"field": "strategy", "values": ["basic", "verify_and_correct"]},
    {"field": "pGate", "values": [1e-4, 1e-3]}
  ]
})";

/** Cold-run `spec` without a hoard: the reference document every
 *  hoard-assisted run must reproduce byte for byte. */
Json
coldDocument(const SweepSpec &spec)
{
    SweepOptions options;
    options.threads = 2;
    return runSweep(spec, options).doc;
}

/** Run `spec` against the store at `root`. */
SweepReport
hoardedRun(const SweepSpec &spec, const std::string &root,
           int threads = 2)
{
    HoardStore hoard(root);
    SweepOptions options;
    options.threads = threads;
    options.hoard = &hoard;
    return runSweep(spec, options);
}

// ---------------------------------------------------------------
// Key policy: classification of every ExperimentConfig field
// ---------------------------------------------------------------

/** Dotted leaf paths of a config JSON ("errors.pGate", ...). */
void
leafPaths(const Json &value, const std::string &prefix,
          std::vector<std::string> &out)
{
    if (value.isObject()) {
        for (const auto &[key, child] : value.items()) {
            leafPaths(child,
                      prefix.empty() ? key : prefix + "." + key,
                      out);
        }
        return;
    }
    out.push_back(prefix);
}

/** Look up / overwrite a dotted path in a config JSON. */
const Json &
atPath(const Json &config, const std::string &path)
{
    const Json *node = &config;
    std::size_t start = 0;
    for (std::size_t dot = path.find('.');
         dot != std::string::npos;
         start = dot + 1, dot = path.find('.', start))
        node = &node->at(path.substr(start, dot - start));
    return node->at(path.substr(start));
}

void
setPath(Json &config, const std::string &path, Json value)
{
    const std::size_t dot = path.find('.');
    if (dot == std::string::npos) {
        config.set(path, std::move(value));
        return;
    }
    const std::string head = path.substr(0, dot);
    Json child =
        config.has(head) ? config.at(head) : Json::object();
    setPath(child, path.substr(dot + 1), std::move(value));
    config.set(head, std::move(child));
}

/** A value guaranteed to differ from the field's current one (the
 *  key policy never validates values, so it need not be a *legal*
 *  setting). */
Json
differentValue(const Json &current)
{
    if (current.isBool())
        return Json(!current.asBool());
    if (current.isNumber())
        return Json(current.asDouble() + 1.0);
    if (current.isString())
        return Json(current.asString() + "_changed");
    return Json(std::string("changed"));
}

/**
 * THE CLASSIFICATION. Every field the experiment runner sweeps
 * must appear in exactly one of these two sets; a field added to
 * the runner (or to ExperimentConfig::toJson) without being
 * classified here fails EveryExperimentFieldIsClassified, which is
 * the point — deciding whether a new knob identifies a result is
 * not optional.
 */
const std::set<std::string> kReportingOnly = {
    // Shapes only the demand-profile report, which summaryJson()
    // (the stored result) does not include.
    "demandBins",
    // Read only by the factory-calibration pass; reporting-only
    // iff calibrateFactories is off (the policy keeps it in the
    // key when calibration is on — see the property tests).
    "calibrationTrials",
};

const std::set<std::string> kSemantic = {
    "arch",
    "areaBudget",
    "bits",
    "cacheSlots",
    "calibrateFactories",
    "codeLevel",
    "errors.pGate",
    "errors.pMove",
    "generatorsPerSite",
    "lowering.maxRotK",
    "pi8PerMs",
    "qft.maxK",
    "qft.withSwaps",
    "schedule",
    "synth.maxError",
    "synth.maxSyllables",
    "synth.pureHT",
    "synth.tCostWeight",
    "tech.t1q_ns",
    "tech.t2q_ns",
    "tech.tmeas_ns",
    "tech.tmove_ns",
    "tech.tprep_ns",
    "tech.tturn_ns",
    "teleport_ns",
    "timeLimit_ns",
    "workload",
    "zeroPerMs",
    "zeroPerMsOfAverage",
};

TEST(HoardKey, EveryExperimentFieldIsClassified)
{
    // The policy's own list must agree with the classification.
    std::set<std::string> policy;
    for (const std::string &field :
         hoardReportingOnlyFields("experiment"))
        policy.insert(field);
    EXPECT_EQ(policy, kReportingOnly);

    // Every sweepable runner field is classified exactly once.
    const std::vector<std::string> fields =
        SweepRunnerRegistry::instance().get("experiment").fields();
    for (const std::string &field : fields) {
        const bool reporting = kReportingOnly.count(field) > 0;
        const bool semantic = kSemantic.count(field) > 0;
        EXPECT_TRUE(reporting || semantic)
            << "unclassified runner field \"" << field
            << "\": decide whether it identifies a result and add "
               "it to kSemantic or kReportingOnly in "
               "tests/test_hoard.cc (and, if reporting-only, to "
               "hoardReportingOnlyFields)";
        EXPECT_FALSE(reporting && semantic)
            << "field \"" << field << "\" classified twice";
    }

    // And nothing in the classification is stale.
    const std::set<std::string> known(fields.begin(), fields.end());
    for (const std::string &field : kSemantic)
        EXPECT_TRUE(known.count(field) > 0)
            << "kSemantic names unknown field \"" << field << "\"";
    for (const std::string &field : kReportingOnly)
        EXPECT_TRUE(known.count(field) > 0)
            << "kReportingOnly names unknown field \"" << field
            << "\"";

    // Every config-JSON leaf is a runner field (a field added to
    // ExperimentConfig::toJson but not to fields() would dodge
    // both the sweeper and this classification).
    std::vector<std::string> leaves;
    leafPaths(ExperimentConfig().toJson(), "", leaves);
    for (const std::string &leaf : leaves)
        EXPECT_TRUE(known.count(leaf) > 0)
            << "ExperimentConfig::toJson leaf \"" << leaf
            << "\" is not a sweepable runner field";
}

TEST(HoardKey, SemanticFieldChangesMiss)
{
    const Json base = ExperimentConfig().toJson();
    const std::string baseKey = hoardKeyHash("experiment", base);
    for (const std::string &field : kSemantic) {
        if (field == "zeroPerMsOfAverage")
            continue; // runner knob, not a toJson leaf (below)
        Json changed = base;
        setPath(changed, field,
                differentValue(atPath(base, field)));
        EXPECT_NE(hoardKeyHash("experiment", changed), baseKey)
            << "semantic field \"" << field
            << "\" did not change the hoard key";
    }
    // zeroPerMsOfAverage arrives only through sweep axes; unknown
    // fields are conservatively semantic, so it must miss too.
    Json fraction = base;
    fraction.set("zeroPerMsOfAverage", 0.5);
    EXPECT_NE(hoardKeyHash("experiment", fraction), baseKey);
}

TEST(HoardKey, ReportingOnlyFieldChangesHit)
{
    Json base = ExperimentConfig().toJson();
    ASSERT_FALSE(base.getBool("calibrateFactories", false));
    const std::string baseKey = hoardKeyHash("experiment", base);
    for (const std::string &field : kReportingOnly) {
        Json changed = base;
        setPath(changed, field,
                differentValue(atPath(base, field)));
        EXPECT_EQ(hoardKeyHash("experiment", changed), baseKey)
            << "reporting-only field \"" << field
            << "\" changed the hoard key";
        EXPECT_EQ(hoardKeyConfig("experiment", changed),
                  hoardKeyConfig("experiment", base));
    }
    // Dropping a reporting-only field entirely is also a hit.
    Json stripped = Json::object();
    for (const auto &[key, value] : base.items()) {
        if (kReportingOnly.count(key) == 0)
            stripped.set(key, value);
    }
    EXPECT_EQ(hoardKeyHash("experiment", stripped), baseKey);
}

TEST(HoardKey, CalibrationTrialsAreSemanticWhenCalibrating)
{
    Json base = ExperimentConfig().toJson();
    base.set("calibrateFactories", true);
    Json changed = base;
    changed.set("calibrationTrials",
                base.getInt("calibrationTrials", 0) + 100);
    // With the calibration pass on, the trial count shapes the
    // calibrated factory rates — it must be part of the key.
    EXPECT_NE(hoardKeyHash("experiment", changed),
              hoardKeyHash("experiment", base));
}

TEST(HoardKey, OtherRunnersUseTheIdentityPolicy)
{
    const Json config =
        parse(R"({"trials": 1000, "seed": 7, "pGate": 1e-4})");
    EXPECT_EQ(hoardKeyConfig("mc-prep", config), config);
    EXPECT_TRUE(hoardReportingOnlyFields("mc-prep").empty());
    Json changed = config;
    changed.set("trials", 2000);
    EXPECT_NE(hoardKeyHash("mc-prep", changed),
              hoardKeyHash("mc-prep", config));
    // The runner name is part of the identity.
    EXPECT_NE(hoardKeyHash("mc-prep", config),
              hoardKeyHash("experiment", config));
}

TEST(HoardKey, ReportingOnlyChangesProduceIdenticalResults)
{
    // The soundness claim behind the policy, checked against the
    // real runner: varying the reporting-only fields leaves the
    // stored result (the runner's metrics JSON) byte-identical.
    const Json base = parse(R"({
      "workload": "qrca", "bits": 6,
      "synth": {"maxSyllables": 3}
    })");
    const SweepRunner &runner =
        SweepRunnerRegistry::instance().get("experiment");
    SweepContext context;
    const std::string reference =
        runner.runPoint(base, context).dump();

    Json rebinned = base;
    rebinned.set("demandBins", 7);
    EXPECT_EQ(runner.runPoint(rebinned, context).dump(),
              reference);

    Json retrialed = base;
    retrialed.set("calibrationTrials", 123456);
    EXPECT_EQ(runner.runPoint(retrialed, context).dump(),
              reference);
}

// ---------------------------------------------------------------
// Store round trips
// ---------------------------------------------------------------

TEST(HoardStore, StoreFetchRoundTrip)
{
    ScratchDir dir("qc_hoard_rt");
    HoardStore hoard(dir.file("store"));
    const Json config = parse(R"({"trials": 1000, "seed": 7})");
    const Json result =
        parse(R"({"rate": 0.125, "trials": 1000})");

    Json missed;
    EXPECT_FALSE(hoard.fetch("mc-prep", config, missed));
    EXPECT_TRUE(hoard.store("mc-prep", config, result));
    Json fetched;
    ASSERT_TRUE(hoard.fetch("mc-prep", config, fetched));
    EXPECT_EQ(fetched.dump(), result.dump());

    const HoardCounters counters = hoard.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.stores, 1u);

    // A second open of the same directory sees the object.
    HoardStore reopened(dir.file("store"));
    Json again;
    ASSERT_TRUE(reopened.fetch("mc-prep", config, again));
    EXPECT_EQ(again.dump(), result.dump());
}

TEST(HoardStore, DuplicatePublishIsIdempotent)
{
    ScratchDir dir("qc_hoard_dup");
    HoardStore hoard(dir.file("store"));
    const Json config = parse(R"({"trials": 1000, "seed": 7})");
    const Json result = parse(R"({"rate": 0.125})");
    ASSERT_TRUE(hoard.store("mc-prep", config, result));
    const std::string path = hoard.objectPath(
        HoardStore::keyFor("mc-prep", config));
    const std::string before = readAll(path);

    // Same publish again — from this handle and from a second one
    // (a concurrent sweep's view of the same store).
    EXPECT_FALSE(hoard.store("mc-prep", config, result));
    HoardStore other(dir.file("store"));
    EXPECT_FALSE(other.store("mc-prep", config, result));
    EXPECT_EQ(readAll(path), before);
    EXPECT_EQ(hoard.counters().duplicates, 1u);
    EXPECT_EQ(other.counters().duplicates, 1u);
}

TEST(HoardStore, ErrorResultsAreNeverStored)
{
    ScratchDir dir("qc_hoard_err");
    HoardStore hoard(dir.file("store"));
    const Json config = parse(R"({"trials": 1000})");
    EXPECT_FALSE(hoard.store(
        "mc-prep", config, parse(R"({"error": "boom"})")));
    Json fetched;
    EXPECT_FALSE(hoard.fetch("mc-prep", config, fetched));
    EXPECT_EQ(hoard.counters().stores, 0u);
}

TEST(HoardStore, WrongStoreVersionMarkerThrows)
{
    ScratchDir dir("qc_hoard_ver");
    const std::string root = dir.file("store");
    fs::create_directories(root);
    writeAll(root + "/hoard.json", "{\"hoard_version\": 99}\n");
    EXPECT_THROW(HoardStore{root}, std::invalid_argument);
}

// ---------------------------------------------------------------
// Sweep integration: warm runs execute nothing, bytes identical
// ---------------------------------------------------------------

TEST(HoardSweep, WarmRunExecutesZeroPointsByteIdentical)
{
    ScratchDir dir("qc_hoard_warm");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json cold = coldDocument(spec);

    const SweepReport first =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(first.executed, 4u);
    EXPECT_EQ(first.hoardHits, 0u);
    EXPECT_EQ(first.hoardStored, 4u);
    EXPECT_EQ(first.doc.dump(), cold.dump());

    const SweepReport second =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.hoardHits, 4u);
    EXPECT_EQ(second.hoardStored, 0u);
    EXPECT_EQ(second.doc.dump(), cold.dump());
}

TEST(HoardSweep, CompatiblePointsReuseAcrossSpecVariants)
{
    // The key policy pays off across *different* specs: a sweep
    // whose base changes only reporting-only fields hits every
    // stored point.
    ScratchDir dir("qc_hoard_variant");
    const Json specJson = parse(R"({
      "name": "variant_a",
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 6,
               "synth": {"maxSyllables": 3}, "demandBins": 40},
      "axes": [{"field": "codeLevel", "values": [1, 2]}]
    })");
    const SweepSpec specA = SweepSpec::fromJson(specJson);
    const SweepReport first =
        hoardedRun(specA, dir.file("store"));
    EXPECT_EQ(first.hoardStored, 2u);

    Json variant = specJson;
    variant.set("name", "variant_b");
    Json variantBase = specJson.at("base");
    variantBase.set("demandBins", 7);
    variantBase.set("calibrationTrials", 999);
    variant.set("base", variantBase);
    const SweepSpec specB = SweepSpec::fromJson(variant);

    const SweepReport second =
        hoardedRun(specB, dir.file("store"));
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.hoardHits, 2u);
    // And the hits are byte-identical to specB's own cold run.
    EXPECT_EQ(second.doc.dump(), coldDocument(specB).dump());

    // A semantic base change misses: nothing is wrongly reused.
    Json shifted = specJson;
    Json shiftedBase = specJson.at("base");
    shiftedBase.set("bits", 7);
    shifted.set("base", shiftedBase);
    const SweepReport third = hoardedRun(
        SweepSpec::fromJson(shifted), dir.file("store"));
    EXPECT_EQ(third.hoardHits, 0u);
    EXPECT_EQ(third.executed, 2u);
}

TEST(HoardSweep, FailedPointsAreNotCached)
{
    ScratchDir dir("qc_hoard_fail");
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "name": "hoard_fail",
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 6,
               "synth": {"maxSyllables": 3}},
      "axes": [{"field": "workload",
                "values": ["qrca", "no_such_workload"]}]
    })"));
    const SweepReport first =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(first.failed, 1u);
    EXPECT_EQ(first.hoardStored, 1u); // only the good point

    // The failed point re-runs on the warm pass (and fails again,
    // identically); the good one hits.
    const SweepReport second =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(second.hoardHits, 1u);
    EXPECT_EQ(second.executed, 1u);
    EXPECT_EQ(second.doc.dump(), first.doc.dump());
}

// ---------------------------------------------------------------
// Corruption matrix: every damage mode quarantines + recomputes
// ---------------------------------------------------------------

/** Populate a store from `kSpec`, damage one object with
 *  `corrupt`, then warm-run and require transparent recovery:
 *  exactly one recompute, output byte-identical, object
 *  quarantined (and the store healed for the next pass). */
void
expectQuarantineAndRecompute(
    const std::string &name,
    const std::function<void(const std::string &objectPath)>
        &corrupt)
{
    SCOPED_TRACE(name);
    ScratchDir dir("qc_hoard_corrupt");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json cold = coldDocument(spec);
    ASSERT_EQ(hoardedRun(spec, dir.file("store")).hoardStored,
              4u);

    HoardStore hoard(dir.file("store"));
    const std::vector<HoardObjectInfo> objects = hoard.list();
    ASSERT_EQ(objects.size(), 4u);
    corrupt(objects[0].path);

    const SweepReport warm =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(warm.hoardHits, 3u);
    EXPECT_EQ(warm.executed, 1u);
    EXPECT_EQ(warm.doc.dump(), cold.dump());

    // The bad object went to quarantine, not oblivion...
    std::size_t quarantined = 0;
    for (const auto &entry : fs::directory_iterator(
             dir.file("store") + "/quarantine"))
        quarantined += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(quarantined, 1u);

    // ...and the recompute healed the store: fully warm again.
    const SweepReport healed =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(healed.hoardHits, 4u);
    EXPECT_EQ(healed.executed, 0u);
    EXPECT_EQ(healed.doc.dump(), cold.dump());
}

TEST(HoardCorruption, TruncatedObjectRecomputes)
{
    expectQuarantineAndRecompute(
        "truncated", [](const std::string &path) {
            const std::string content = readAll(path);
            writeAll(path, content.substr(0, content.size() / 2));
        });
}

TEST(HoardCorruption, BitFlippedPayloadFailsDigest)
{
    expectQuarantineAndRecompute(
        "bit-flip", [](const std::string &path) {
            // Valid JSON, correct shape — but the payload no
            // longer matches the digest.
            Json object = Json::loadFile(path);
            Json result = object.at("result");
            result.set("rate",
                       result.getDouble("rate", 0.0) + 1e-9);
            object.set("result", result);
            object.saveFile(path);
        });
}

TEST(HoardCorruption, WrongObjectStoreVersionRecomputes)
{
    expectQuarantineAndRecompute(
        "wrong-version", [](const std::string &path) {
            Json object = Json::loadFile(path);
            object.set("store_version",
                       HoardStore::kStoreVersion + 1);
            object.saveFile(path);
        });
}

TEST(HoardCorruption, TornWriteRecomputes)
{
    expectQuarantineAndRecompute(
        "torn-write", [](const std::string &path) {
            // A torn commit as writeFileTorn models it: the
            // rename happened, the data only half made it.
            const std::string content = readAll(path);
            writeFileTorn(path, content, content.size() / 3);
        });
}

TEST(HoardCorruption, OrphanedIndexEntryIsPrunedHarmlessly)
{
    ScratchDir dir("qc_hoard_orphan");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json cold = coldDocument(spec);
    ASSERT_EQ(hoardedRun(spec, dir.file("store")).hoardStored,
              4u);

    HoardStore hoard(dir.file("store"));
    EXPECT_EQ(hoard.verify().orphanedIndexEntries, 0u);
    // Lose an object the index still lists (a crash between an
    // eviction and its index rewrite).
    const std::vector<HoardObjectInfo> objects = hoard.list();
    ASSERT_EQ(objects.size(), 4u);
    fs::remove(objects[1].path);

    const HoardVerifyReport report = hoard.verify();
    EXPECT_EQ(report.objects, 3u);
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_EQ(report.orphanedIndexEntries, 1u);
    // Pruned: a second scan is clean.
    EXPECT_EQ(hoard.verify().orphanedIndexEntries, 0u);

    // The index never gates fetches — the sweep just recomputes
    // the lost point and stays byte-identical.
    const SweepReport warm =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(warm.hoardHits, 3u);
    EXPECT_EQ(warm.executed, 1u);
    EXPECT_EQ(warm.doc.dump(), cold.dump());
}

TEST(HoardCorruption, VerifyFindsSeededBadObject)
{
    ScratchDir dir("qc_hoard_verify");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    ASSERT_EQ(hoardedRun(spec, dir.file("store")).hoardStored,
              4u);

    HoardStore hoard(dir.file("store"));
    const std::vector<HoardObjectInfo> objects = hoard.list();
    Json object = Json::loadFile(objects[2].path);
    object.set("digest", std::string(16, '0'));
    object.saveFile(objects[2].path);

    const HoardVerifyReport report = hoard.verify();
    EXPECT_EQ(report.objects, 4u);
    EXPECT_EQ(report.ok, 3u);
    EXPECT_EQ(report.quarantined, 1u);
    // Quarantine keeps the evidence; the scan is then clean.
    EXPECT_FALSE(fs::exists(objects[2].path));
    EXPECT_EQ(hoard.verify().quarantined, 0u);
}

TEST(HoardCorruption, ObjectRenamedOntoWrongKeyIsRejected)
{
    // A copied/renamed object passes its digest check but not the
    // name==hash(key_config) check; both fetch and verify reject.
    ScratchDir dir("qc_hoard_rename");
    HoardStore hoard(dir.file("store"));
    const Json configA = parse(R"({"trials": 1000, "seed": 1})");
    const Json configB = parse(R"({"trials": 1000, "seed": 2})");
    ASSERT_TRUE(hoard.store("mc-prep", configA,
                            parse(R"({"rate": 0.5})")));
    const std::string pathB = hoard.objectPath(
        HoardStore::keyFor("mc-prep", configB));
    fs::create_directories(fs::path(pathB).parent_path());
    fs::copy_file(hoard.objectPath(
                      HoardStore::keyFor("mc-prep", configA)),
                  pathB);

    Json fetched;
    EXPECT_FALSE(hoard.fetch("mc-prep", configB, fetched));
    EXPECT_EQ(hoard.counters().quarantined, 1u);
    // The legitimate object is untouched.
    ASSERT_TRUE(hoard.fetch("mc-prep", configA, fetched));
}

// ---------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------

TEST(HoardGc, EvictsOldestFirstByAgeThenSize)
{
    FakeWallClock clock(1700000000000);
    ScopedWallClock scoped(clock);
    ScratchDir dir("qc_hoard_gc");
    HoardStore hoard(dir.file("store"));
    const Json result = parse(R"({"rate": 0.125})");
    const Json c1 = parse(R"({"trials": 1000, "seed": 1})");
    const Json c2 = parse(R"({"trials": 1000, "seed": 2})");
    const Json c3 = parse(R"({"trials": 1000, "seed": 3})");
    ASSERT_TRUE(hoard.store("mc-prep", c1, result));
    clock.advanceMs(10 * 60 * 1000);
    ASSERT_TRUE(hoard.store("mc-prep", c2, result));
    clock.advanceMs(10 * 60 * 1000);
    ASSERT_TRUE(hoard.store("mc-prep", c3, result));

    // Age bound: 15 minutes. Only c1 (20 minutes old) falls.
    const HoardGcReport byAge =
        hoard.gc(0, 15.0 / (24.0 * 60.0));
    EXPECT_EQ(byAge.evicted, 1u);
    EXPECT_EQ(byAge.kept, 2u);
    Json fetched;
    EXPECT_FALSE(hoard.fetch("mc-prep", c1, fetched));
    EXPECT_TRUE(hoard.fetch("mc-prep", c2, fetched));
    EXPECT_TRUE(hoard.fetch("mc-prep", c3, fetched));

    // Size bound: one byte under the total evicts exactly the
    // oldest survivor (c2) — eviction is oldest-publish-first.
    const HoardGcReport bySize =
        hoard.gc(byAge.keptBytes - 1, 0);
    EXPECT_EQ(bySize.evicted, 1u);
    EXPECT_EQ(bySize.kept, 1u);
    EXPECT_FALSE(hoard.fetch("mc-prep", c2, fetched));
    EXPECT_TRUE(hoard.fetch("mc-prep", c3, fetched));
}

TEST(HoardGc, SweepsLeftoverPublishTemps)
{
    ScratchDir dir("qc_hoard_temps");
    HoardStore hoard(dir.file("store"));
    ASSERT_TRUE(hoard.store("mc-prep",
                            parse(R"({"trials": 1000})"),
                            parse(R"({"rate": 0.125})")));
    // A crashed publish's leftovers: durable temp + torn temp.
    const std::string objects = dir.file("store") + "/objects";
    fs::create_directories(objects + "/ab");
    writeAll(objects + "/ab/deadbeef.json.partial-123", "{}");
    fs::create_directories(objects + "/cd");
    writeAll(objects + "/cd/feedface.json.tmp-456", "{\"x\"");

    // Invisible to readers and to verify...
    EXPECT_EQ(hoard.verify().objects, 1u);
    // ...and swept by gc without touching live objects.
    const HoardGcReport report = hoard.gc(0, 0);
    EXPECT_EQ(report.tempsRemoved, 2u);
    EXPECT_EQ(report.kept, 1u);
    Json fetched;
    EXPECT_TRUE(hoard.fetch(
        "mc-prep", parse(R"({"trials": 1000})"), fetched));
}

// ---------------------------------------------------------------
// Concurrency: sweeps sharing one store
// ---------------------------------------------------------------

TEST(HoardConcurrency, TwoSweepsShareOneStore)
{
    // Two sweeps race over the same fresh store, each with its own
    // handle (the multi-process topology in-process, so TSan sees
    // the threaded read-through and publish paths). Both must come
    // out byte-identical to the cold document, and the store must
    // end up fully warm.
    ScratchDir dir("qc_hoard_race");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const Json cold = coldDocument(spec);

    Json docA, docB;
    std::thread racerA([&] {
        docA = hoardedRun(spec, dir.file("store"), 2).doc;
    });
    std::thread racerB([&] {
        docB = hoardedRun(spec, dir.file("store"), 2).doc;
    });
    racerA.join();
    racerB.join();
    EXPECT_EQ(docA.dump(), cold.dump());
    EXPECT_EQ(docB.dump(), cold.dump());

    const SweepReport warm =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.hoardHits, 4u);
    EXPECT_EQ(warm.doc.dump(), cold.dump());

    HoardStore hoard(dir.file("store"));
    EXPECT_EQ(hoard.verify().quarantined, 0u);
    EXPECT_EQ(hoard.list().size(), 4u);
}

// ---------------------------------------------------------------
// Serve-delta ingest
// ---------------------------------------------------------------

TEST(HoardIngest, LeftoverServeDeltasWarmTheStore)
{
    // A coordinator crash can leave committed deltas that never
    // merged. Build that wreckage by hand: a manifest plus one
    // delta holding two computed points (and one failed point and
    // one skew-mismatched point, both of which must be skipped),
    // plus a torn delta file.
    ScratchDir dir("qc_hoard_ingest");
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const SweepPlan plan = SweepPlan::expand(spec);
    const Json cold = coldDocument(spec);

    const std::string serveRoot = dir.file("coord");
    const ServeDir serve(serveRoot);
    fs::create_directories(serve.resultDir());
    Json manifest = Json::object();
    manifest.set("generation", 1);
    manifest.set("lease_seconds", 30.0);
    manifest.set("runner", spec.runner);
    manifest.set("spec", spec.toJson());
    manifest.saveFile(serve.manifest());

    const SweepRunner &runner =
        SweepRunnerRegistry::instance().get(spec.runner);
    SweepContext context;
    ShardDelta delta;
    delta.id = shardId(0);
    delta.owner = Lease::makeNonce();
    for (std::size_t index : {std::size_t{0}, std::size_t{1}}) {
        DeltaPoint point;
        point.index = index;
        point.configHash = hexConfigHash(plan.hashes[index]);
        point.result =
            runner.runPoint(plan.points[index].config, context);
        delta.points.push_back(std::move(point));
    }
    DeltaPoint failedPoint;
    failedPoint.index = 2;
    failedPoint.configHash = hexConfigHash(plan.hashes[2]);
    failedPoint.failed = true;
    failedPoint.result = parse(R"({"error": "boom"})");
    delta.points.push_back(std::move(failedPoint));
    DeltaPoint skewed; // expansion skew: wrong config_hash
    skewed.index = 3;
    skewed.configHash = std::string(16, '0');
    skewed.result = parse(R"({"rate": 0.5})");
    delta.points.push_back(std::move(skewed));
    writeFileDurable(serve.result(delta.id, delta.owner),
                     delta.toJson().dump(2) + "\n");
    // And a torn delta, which ingest must skip, not choke on.
    writeAll(serve.result(shardId(1), "torn"),
             delta.toJson().dump(2).substr(0, 40));

    HoardStore hoard(dir.file("store"));
    EXPECT_EQ(hoard.ingestServe(serveRoot), 2u);
    // Re-ingest is idempotent.
    EXPECT_EQ(hoard.ingestServe(serveRoot), 0u);

    // The two ingested points hit; the other two compute.
    const SweepReport warm =
        hoardedRun(spec, dir.file("store"));
    EXPECT_EQ(warm.hoardHits, 2u);
    EXPECT_EQ(warm.executed, 2u);
    EXPECT_EQ(warm.doc.dump(), cold.dump());

    HoardStore checked(dir.file("store"));
    EXPECT_EQ(checked.verify().quarantined, 0u);
}

TEST(HoardIngest, MissingManifestThrows)
{
    ScratchDir dir("qc_hoard_ingest_bad");
    HoardStore hoard(dir.file("store"));
    EXPECT_THROW(hoard.ingestServe(dir.file("nowhere")),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Stat
// ---------------------------------------------------------------

TEST(HoardStore, StatCountsObjectsBytesAndQuarantine)
{
    ScratchDir dir("qc_hoard_stat");
    HoardStore hoard(dir.file("store"));
    ASSERT_TRUE(hoard.store("mc-prep",
                            parse(R"({"trials": 1000})"),
                            parse(R"({"rate": 0.125})")));
    ASSERT_TRUE(hoard.store("experiment",
                            parse(R"({"workload": "qrca"})"),
                            parse(R"({"klops": 1.0})")));
    hoard.verify(); // builds the index

    const Json stat = hoard.stat();
    EXPECT_EQ(stat.getInt("objects", -1), 2);
    EXPECT_EQ(stat.getInt("index_entries", -1), 2);
    EXPECT_EQ(stat.getInt("hoard_version", -1),
              HoardStore::kStoreVersion);
    EXPECT_GT(stat.getInt("bytes", 0), 0);
    EXPECT_EQ(stat.at("runners").getInt("mc-prep", 0), 1);
    EXPECT_EQ(stat.at("runners").getInt("experiment", 0), 1);
    EXPECT_EQ(stat.getInt("quarantined_files", -1), 0);
}

} // namespace
} // namespace qc
