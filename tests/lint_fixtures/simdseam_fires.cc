// qclint-fixture: path=src/error/FastEngine.cc
// qclint-fixture: expect=simd-seam:4, simd-seam:8
// Intrinsics header outside the dispatch seam:
#include <immintrin.h>

bool wide() {
    // CPU-feature query outside the dispatch seam:
    return __builtin_cpu_supports("avx2");
}
