// qclint-fixture: path=src/arch/Report.cc
// qclint-fixture: expect=clean
#include <string>

// The locale-float rule is scoped to the Json number paths; other
// translation units parsing human input are out of its blast
// radius (though to_chars is still the better choice).
double parse(const std::string &s) { return std::stod(s); }
