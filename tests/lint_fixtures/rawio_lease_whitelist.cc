// qclint-fixture: path=src/serve/Lease.cc
// qclint-fixture: expect=clean
#include <fcntl.h>

// The lease protocol itself implements the durability seam, so the
// raw-io rule whitelists this file.
int acquire(const char *path) { return ::open(path, O_CREAT | O_EXCL | O_WRONLY, 0644); }
