// qclint-fixture: path=src/sweep/Crash.cc
// qclint-fixture: expect=raw-exit:5
#include <unistd.h>

void die() { _exit(3); }
