// qclint-fixture: path=src/api/Sum.cc
// qclint-fixture: expect=clean
#include <unordered_set>

std::unordered_set<int> gSeen;

// qclint: allow(unordered-iteration): feeds an order-insensitive sum, never serialized output
void total(long &t) { for (int v : gSeen) t += v; }
