// qclint-fixture: path=src/serve/QueueScan.cc
// qclint-fixture: expect=parse-robustness:9, parse-robustness:14
#include <string>

#include "api/Json.hh"

int attempt(const qc::Json &j)
{
    return static_cast<int>(j.at("attempt").asInt());
}

std::string id(const qc::Json &j)
{
    return j.at("id").asString();
}
