// qclint-fixture: path=src/layout/Export.cc
// qclint-fixture: expect=clean
// An inline waiver with a justification suppresses a layering
// finding the same way it does for every other rule.
#include "common/Clock.hh"

// qclint: allow(module-layering): hypothetical one-off export hook
#include "sweep/SweepSpec.hh"

void export_layout() {}
