// qclint-fixture: path=src/common/simd/SimdDispatch.cc
// qclint-fixture: expect=clean
// The dispatch seam is the one TU allowed to query CPU features.

bool cpuHas() { return __builtin_cpu_supports("avx512f"); }
