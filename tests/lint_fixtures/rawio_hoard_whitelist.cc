// qclint-fixture: path=src/hoard/HoardStore.cc
// qclint-fixture: expect=clean
#include <filesystem>

// The hoard commit path is whitelisted: its objects are published
// through writeFileDurable, and its only raw renames are the
// quarantine moves of already-invalid files.
void quarantine(const std::filesystem::path &from,
                const std::filesystem::path &to)
{
    std::filesystem::rename(from, to);
}
