// qclint-fixture: path=src/api/Emit.cc
// qclint-fixture: expect=unordered-iteration:8
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> gCounts;

void emit() { for (const auto &kv : gCounts) (void)kv; }
