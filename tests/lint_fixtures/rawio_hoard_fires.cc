// qclint-fixture: path=src/hoard/HoardKey.cc
// qclint-fixture: expect=raw-io:8
#include <fstream>

// Only HoardStore.cc is whitelisted: any other hoard file writing
// raw streams would bypass the durable publish pattern, so the
// raw-io rule must fire here.
void leak(const char *path) { std::ofstream out(path); }
