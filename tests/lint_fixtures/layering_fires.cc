// qclint-fixture: path=src/sim/Telemetry.cc
// qclint-fixture: expect=module-layering:7, module-layering:8
// sim is an inner engine module: it may reach common only, and
// certainly not back up into the sweep/serve orchestration layers.
#include <string>

#include "serve/Protocol.hh"
#include "hoard/HoardStore.hh"
#include "common/Clock.hh"

void record(const std::string &) {}
