// qclint-fixture: path=src/api/Experiment.cc
// qclint-fixture: expect=clean
// The parse-robustness rule is scoped to the serve/hoard paths
// that parse files other processes wrote. api-level config
// loading reports errors to a human and may keep the throwing
// accessors.
#include "api/Json.hh"

int shots(const qc::Json &j)
{
    return static_cast<int>(j.at("shots").asInt());
}
