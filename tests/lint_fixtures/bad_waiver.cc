// qclint-fixture: path=src/sweep/Example.cc
// qclint-fixture: expect=bad-waiver:5
#include <cstdlib>

// qclint: allow(wall-clock)
int jitter() { return rand() % 10; }
