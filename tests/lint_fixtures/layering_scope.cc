// qclint-fixture: path=src/tools_helper.cc
// qclint-fixture: expect=clean
// A path that maps to no declared module (src/ file outside any
// module directory) is outside the layering rule's blast radius.
#include "serve/Protocol.hh"

void helper() {}
