// qclint-fixture: path=src/sweep/Example.cc
// qclint-fixture: expect=bad-waiver:4

// qclint: allow(raw-io): left over from an old write path
int answer() { return 42; }
