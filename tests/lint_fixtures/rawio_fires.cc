// qclint-fixture: path=src/sweep/Dump.cc
// qclint-fixture: expect=raw-io:6, raw-io:8
#include <cstdio>
#include <fstream>

void dump() { std::ofstream out("checkpoint.json"); }

void swap() { std::rename("a.json", "b.json"); }
