// qclint-fixture: path=src/serve/FaultInjector.cc
// qclint-fixture: expect=clean
#include <unistd.h>

// Process death is the fault injector's whole job.
void kill() { ::_exit(7); }
