// qclint-fixture: path=src/serve/Tidy.cc
// qclint-fixture: expect=clean
#include <chrono>

// steady_clock measures intervals, not wall time; the wall-clock
// rule leaves it alone.
long elapsed() {
    const auto t0 = std::chrono::steady_clock::now();
    return (std::chrono::steady_clock::now() - t0).count();
}
