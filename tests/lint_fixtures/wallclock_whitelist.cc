// qclint-fixture: path=src/common/Clock.cc
// qclint-fixture: expect=clean
#include <chrono>

// The clock seam is the one blessed home of a raw wall-clock read.
long epochMs() { return std::chrono::system_clock::now().time_since_epoch().count(); }
