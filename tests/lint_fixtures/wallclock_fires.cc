// qclint-fixture: path=src/sweep/Example.cc
// qclint-fixture: expect=wall-clock:6, wall-clock:8
#include <chrono>
#include <cstdlib>

int jitter() { return rand() % 10; }

long now() { return std::chrono::system_clock::now().time_since_epoch().count(); }
