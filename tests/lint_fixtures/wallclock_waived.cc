// qclint-fixture: path=src/sweep/Example.cc
// qclint-fixture: expect=clean
#include <cstdlib>

// qclint: allow(wall-clock): jitter only perturbs backoff timing, never results
int jitter() { return rand() % 10; }
