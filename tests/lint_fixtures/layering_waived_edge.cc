// qclint-fixture: path=src/arch/Microarch.cc
// qclint-fixture: expect=clean
// The arch -> api registration edge is waived per-edge in
// tools/layers.json for exactly this file, so the include below
// needs no inline comment.
#include "api/ArchModel.hh"
#include "arch/Microarch.hh"

void register_builtin_models() {}
