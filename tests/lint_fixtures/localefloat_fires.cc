// qclint-fixture: path=src/api/Json.cc
// qclint-fixture: expect=locale-float:6, locale-float:8
#include <iomanip>
#include <string>

double parse(const std::string &s) { return std::stod(s); }

void fmt(std::ostream &os) { os << std::setprecision(17); }
