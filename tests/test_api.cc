/**
 * @file
 * Tests for the qc::Experiment facade: workload/arch registry
 * lookup (including unknown-name errors), the JSON value type,
 * ExperimentConfig round-trips, and bit-identical results between
 * the old hand-wired pipeline and qc::Experiment.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "api/Qc.hh"
#include "arch/Microarch.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "kernels/Kernels.hh"
#include "kernels/Synthetic.hh"

namespace qc {
namespace {

// ---------------------------------------------------------------
// Json
// ---------------------------------------------------------------

TEST(Json, RoundTripsScalarsAndContainers)
{
    Json j = Json::object();
    j.set("flag", true);
    j.set("count", 42);
    j.set("rate", 2.5);
    j.set("name", "qalypso \"quoted\"\n");
    Json arr = Json::array();
    arr.push(1);
    arr.push(Json());
    j.set("list", arr);

    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back, j);
    EXPECT_TRUE(back.at("flag").asBool());
    EXPECT_EQ(back.at("count").asInt(), 42);
    EXPECT_DOUBLE_EQ(back.at("rate").asDouble(), 2.5);
    EXPECT_EQ(back.at("name").asString(), "qalypso \"quoted\"\n");
    EXPECT_EQ(back.at("list").size(), 2u);
    EXPECT_TRUE(back.at("list").at(1).isNull());
}

TEST(Json, IntegersSurviveExactly)
{
    // Time values are int64 nanoseconds; a week of simulated time
    // must round-trip without loss.
    const std::int64_t t = msec(7LL * 24 * 3600 * 1000);
    Json j = Json::object();
    j.set("t", t);
    EXPECT_EQ(Json::parse(j.dump()).at("t").asInt(), t);
    // And without a decimal point in the text.
    EXPECT_NE(j.dump().find(std::to_string(t)), std::string::npos);
}

TEST(Json, ParseErrorsThrow)
{
    EXPECT_THROW(Json::parse("{"), std::invalid_argument);
    EXPECT_THROW(Json::parse("[1,]2"), std::invalid_argument);
    EXPECT_THROW(Json::parse("{\"a\": tru}"), std::invalid_argument);
    EXPECT_THROW(Json::parse("12 34"), std::invalid_argument);
    EXPECT_THROW(Json().at("missing"), std::invalid_argument);
    EXPECT_THROW(Json(1.0).asString(), std::invalid_argument);
    // Non-hex \u escapes are syntax errors, not silent corruption.
    EXPECT_THROW(Json::parse("\"\\u12g4\""), std::invalid_argument);
    EXPECT_THROW(Json::parse("\"\\u-123\""), std::invalid_argument);
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
}

TEST(Json, HostileNestingThrowsInsteadOfOverflowing)
{
    const std::string deep(100000, '[');
    EXPECT_THROW(Json::parse(deep), std::invalid_argument);
    // Reasonable nesting is unaffected.
    std::string ok;
    for (int i = 0; i < 50; ++i)
        ok += '[';
    ok += '1';
    for (int i = 0; i < 50; ++i)
        ok += ']';
    EXPECT_NO_THROW(Json::parse(ok));
}

/** N nested arrays around a scalar: "[[...[1]...]]". */
std::string
nested(int levels)
{
    return std::string(levels, '[') + "1"
           + std::string(levels, ']');
}

TEST(Json, ParseDepthLimitIsExactAndNamed)
{
    // The documented bound: kMaxParseDepth containers parse (the
    // scalar inside is the deepest value), one more throws, and
    // the error names the limit so the fuzz corpus input
    // deep_nesting_4096 stays self-explanatory.
    EXPECT_NO_THROW(Json::parse(nested(Json::kMaxParseDepth - 1)));
    try {
        Json::parse(nested(Json::kMaxParseDepth));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(
                      std::to_string(Json::kMaxParseDepth)),
                  std::string::npos)
            << e.what();
    }
}

TEST(Json, DocumentSizeLimitIsEnforcedAndNamed)
{
    // parse() refuses oversized text up front...
    std::string huge(Json::kMaxDocumentBytes + 1, ' ');
    try {
        Json::parse(huge);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(std::to_string(
                      Json::kMaxDocumentBytes)),
                  std::string::npos)
            << e.what();
    }
    // ...and loadFile() refuses by file size, before buffering
    // the bytes (a sparse file keeps this test cheap).
    const std::string path = ::testing::TempDir()
                             + "qc_json_oversize.json";
    {
        std::ofstream out(path, std::ios::binary);
        out << "{}";
    }
    std::filesystem::resize_file(
        path, Json::kMaxDocumentBytes + 1);
    try {
        Json::loadFile(path);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(std::to_string(
                      Json::kMaxDocumentBytes)),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
    // An exactly-at-the-limit document is fine.
    std::string atLimit = "\"";
    atLimit.append(Json::kMaxDocumentBytes - 2, 'x');
    atLimit += "\"";
    EXPECT_NO_THROW(Json::parse(atLimit));
}

TEST(Json, BoundsCheckedAccessorsRejectInsteadOfThrowing)
{
    const Json j = Json::parse(R"({
      "id": "a", "n": 3, "frac": 0.5, "neg": -1,
      "huge": 1e300, "list": [1, 2]
    })");
    // find(): nullptr on absent keys, wrong kinds, and non-object
    // receivers — never a throw.
    EXPECT_NE(j.find("id"), nullptr);
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_EQ(Json(1.0).find("id"), nullptr);
    EXPECT_EQ(j.at("list").find(2), nullptr);
    ASSERT_NE(j.at("list").find(1), nullptr);

    // asIndex(): true only for finite integral non-negative
    // numbers that fit exactly.
    std::size_t out = 99;
    EXPECT_TRUE(j.at("n").asIndex(out));
    EXPECT_EQ(out, 3u);
    EXPECT_FALSE(j.at("frac").asIndex(out));
    EXPECT_FALSE(j.at("neg").asIndex(out));
    EXPECT_FALSE(j.at("huge").asIndex(out));
    EXPECT_FALSE(j.at("id").asIndex(out));

    // asInt() stays range-checked: a number that cannot round-trip
    // through int64 throws instead of truncating.
    EXPECT_THROW(j.at("huge").asInt(), std::invalid_argument);
}

// ---------------------------------------------------------------
// Registries
// ---------------------------------------------------------------

TEST(WorkloadRegistry, ListsBuiltins)
{
    auto &registry = WorkloadRegistry::instance();
    for (const char *name :
         {"qrca", "qcla", "qft", "chain", "ladder"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        EXPECT_FALSE(registry.description(name).empty()) << name;
    }
    EXPECT_GE(registry.names().size(), 5u);
}

TEST(WorkloadRegistry, UnknownNameThrowsListingKnown)
{
    FowlerSynth synth;
    try {
        WorkloadRegistry::instance().build("grover", synth);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("grover"), std::string::npos);
        EXPECT_NE(what.find("qrca"), std::string::npos);
        EXPECT_NE(what.find("qft"), std::string::npos);
    }
}

TEST(WorkloadRegistry, RuntimeRegistrationIsVisible)
{
    auto &registry = WorkloadRegistry::instance();
    registry.add("unit-test-chain", "test-only alias",
                 [](FowlerSynth &synth, const WorkloadParams &p) {
                     Circuit c = makeChain(p.bits);
                     Lowered lowered =
                         lowerToFaultTolerant(c, synth, p.lowering);
                     return Workload{"", c.name(), c,
                                     std::move(lowered)};
                 });
    FowlerSynth synth;
    WorkloadParams params;
    params.bits = 6;
    const Workload w =
        registry.build("unit-test-chain", synth, params);
    EXPECT_EQ(w.key, "unit-test-chain");
    EXPECT_EQ(w.highLevel.size(), 6u);
}

TEST(ArchRegistry, ListsFiveBuiltinModels)
{
    auto &registry = ArchRegistry::instance();
    for (const char *key : {"qla", "gqla", "cqla", "gcqla", "fma"})
        EXPECT_TRUE(registry.contains(key)) << key;
    EXPECT_EQ(registry.get("qla").name(), "QLA");
    EXPECT_EQ(registry.get("fma").name(), "Fully-Multiplexed");
}

TEST(ArchRegistry, UnknownKeyThrowsListingKnown)
{
    try {
        ArchRegistry::instance().get("systolic");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("systolic"), std::string::npos);
        EXPECT_NE(what.find("fma"), std::string::npos);
    }
}

// ---------------------------------------------------------------
// Synthetic workloads
// ---------------------------------------------------------------

TEST(Synthetic, ChainHasExactShape)
{
    const Circuit c = makeChain(10);
    EXPECT_EQ(c.numQubits(), 1u);
    EXPECT_EQ(c.size(), 10u);
    const GateCensus census = c.census();
    EXPECT_EQ(census.of(GateKind::H), 5u);
    EXPECT_EQ(census.nonTransversal1q(), 5u);
}

TEST(Synthetic, LadderParallelismEqualsWidth)
{
    const Circuit c = makeLadder(6, 4);
    EXPECT_EQ(c.numQubits(), 6u);
    // 6 H per layer + 3/2 bricks alternating, 4 layers.
    const GateCensus census = c.census();
    EXPECT_EQ(census.of(GateKind::H), 24u);
    EXPECT_EQ(census.of(GateKind::CX), 3u + 2u + 3u + 2u);
}

// ---------------------------------------------------------------
// ExperimentConfig JSON round-trip
// ---------------------------------------------------------------

ExperimentConfig
nonDefaultConfig()
{
    ExperimentConfig config;
    config.workload = "qft";
    config.params.bits = 12;
    config.params.lowering.maxRotK = 5;
    config.params.qft.maxK = 7;
    config.params.qft.withSwaps = false;
    config.synth.maxSyllables = 4;
    config.synth.maxError = 2e-3;
    config.synth.pureHT = true;
    config.synth.tCostWeight = 2;
    config.codeLevel = 2;
    config.calibrateFactories = true;
    config.calibrationTrials = 1 << 18;
    config.tech.tmeas = usec(10);
    config.tech.tturn = usec(25);
    config.errors.pGate = 3e-4;
    config.errors.pMove = 2e-6;
    config.schedule = ScheduleMode::Arch;
    config.arch = "gcqla";
    config.generatorsPerSite = 4;
    config.cacheSlots = 12;
    config.areaBudget = 12345.5;
    config.teleport = usec(99);
    config.zeroPerMs = 33.25;
    config.pi8PerMs = 4.5;
    config.timeLimit = msec(250);
    config.demandBins = 17;
    return config;
}

void
expectConfigsEqual(const ExperimentConfig &a,
                   const ExperimentConfig &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.params.bits, b.params.bits);
    EXPECT_EQ(a.params.lowering.maxRotK, b.params.lowering.maxRotK);
    EXPECT_EQ(a.params.qft.maxK, b.params.qft.maxK);
    EXPECT_EQ(a.params.qft.withSwaps, b.params.qft.withSwaps);
    EXPECT_EQ(a.synth.maxSyllables, b.synth.maxSyllables);
    EXPECT_DOUBLE_EQ(a.synth.maxError, b.synth.maxError);
    EXPECT_EQ(a.synth.pureHT, b.synth.pureHT);
    EXPECT_EQ(a.synth.tCostWeight, b.synth.tCostWeight);
    EXPECT_EQ(a.codeLevel, b.codeLevel);
    EXPECT_EQ(a.calibrateFactories, b.calibrateFactories);
    EXPECT_EQ(a.calibrationTrials, b.calibrationTrials);
    EXPECT_EQ(a.tech.t1q, b.tech.t1q);
    EXPECT_EQ(a.tech.t2q, b.tech.t2q);
    EXPECT_EQ(a.tech.tmeas, b.tech.tmeas);
    EXPECT_EQ(a.tech.tprep, b.tech.tprep);
    EXPECT_EQ(a.tech.tmove, b.tech.tmove);
    EXPECT_EQ(a.tech.tturn, b.tech.tturn);
    EXPECT_DOUBLE_EQ(a.errors.pGate, b.errors.pGate);
    EXPECT_DOUBLE_EQ(a.errors.pMove, b.errors.pMove);
    EXPECT_EQ(scheduleModeName(a.schedule),
              scheduleModeName(b.schedule));
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.generatorsPerSite, b.generatorsPerSite);
    EXPECT_EQ(a.cacheSlots, b.cacheSlots);
    EXPECT_DOUBLE_EQ(a.areaBudget, b.areaBudget);
    EXPECT_EQ(a.teleport, b.teleport);
    EXPECT_DOUBLE_EQ(a.zeroPerMs, b.zeroPerMs);
    EXPECT_DOUBLE_EQ(a.pi8PerMs, b.pi8PerMs);
    EXPECT_EQ(a.timeLimit, b.timeLimit);
    EXPECT_EQ(a.demandBins, b.demandBins);
}

TEST(ExperimentConfig, JsonRoundTripPreservesEveryField)
{
    const ExperimentConfig config = nonDefaultConfig();
    const ExperimentConfig back = ExperimentConfig::fromJson(
        Json::parse(config.toJson().dump()));
    expectConfigsEqual(config, back);
    // And the JSON itself is a fixed point.
    EXPECT_EQ(back.toJson(), config.toJson());
}

TEST(ExperimentConfig, FileRoundTrip)
{
    const std::string path = "/tmp/qc_test_config.json";
    const ExperimentConfig config = nonDefaultConfig();
    config.save(path);
    const ExperimentConfig back = ExperimentConfig::load(path);
    expectConfigsEqual(config, back);
    std::remove(path.c_str());
}

TEST(ExperimentConfig, MissingKeysKeepDefaults)
{
    const ExperimentConfig config = ExperimentConfig::fromJson(
        Json::parse("{\"workload\": \"qcla\"}"));
    EXPECT_EQ(config.workload, "qcla");
    const ExperimentConfig defaults;
    EXPECT_EQ(config.params.bits, defaults.params.bits);
    EXPECT_EQ(config.cacheSlots, defaults.cacheSlots);
    EXPECT_EQ(scheduleModeName(config.schedule),
              scheduleModeName(defaults.schedule));
}

TEST(ExperimentConfig, ScheduleModeNamesRoundTrip)
{
    for (ScheduleMode mode :
         {ScheduleMode::SpeedOfData, ScheduleMode::Throttled,
          ScheduleMode::Arch})
        EXPECT_EQ(scheduleModeFromName(scheduleModeName(mode)),
                  mode);
    EXPECT_THROW(scheduleModeFromName("asap"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Experiment vs the old hand-wired pipeline (bit-identical).
// ---------------------------------------------------------------

class ExperimentParity : public ::testing::Test
{
  protected:
    static ExperimentConfig
    paperConfig(const char *workload, int bits)
    {
        ExperimentConfig config = ExperimentConfig::paper(workload);
        config.params.bits = bits;
        return config;
    }

    /** The pre-redesign wiring every bench used to carry. */
    static Benchmark
    handWired(BenchmarkKind kind, int bits)
    {
        static FowlerSynth synth(
            ExperimentConfig::paper("qrca").synth);
        BenchmarkOptions opts;
        opts.bits = bits;
        return makeBenchmark(kind, synth, opts);
    }
};

TEST_F(ExperimentParity, AdderSpeedOfDataIsBitIdentical)
{
    const Benchmark old = handWired(BenchmarkKind::Qrca, 8);
    const EncodedOpModel model(IonTrapParams::paper());
    const DataflowGraph graph(old.lowered.circuit);
    const LatencySplit split = latencySplit(graph, model);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(graph, model);

    const Result result =
        runExperiment(paperConfig("qrca", 8));
    EXPECT_EQ(result.workload, old.name);
    EXPECT_EQ(result.gates, old.lowered.circuit.census().total);
    EXPECT_EQ(result.split.dataOp, split.dataOp);
    EXPECT_EQ(result.split.qecInteract, split.qecInteract);
    EXPECT_EQ(result.split.ancillaPrep, split.ancillaPrep);
    EXPECT_EQ(result.makespan, bw.runtime);
    EXPECT_EQ(result.zerosConsumed, bw.zerosConsumed);
    EXPECT_EQ(result.pi8Consumed, bw.pi8Consumed);
}

TEST_F(ExperimentParity, AdderThrottledIsBitIdentical)
{
    const Benchmark old = handWired(BenchmarkKind::Qrca, 8);
    const EncodedOpModel model(IonTrapParams::paper());
    const DataflowGraph graph(old.lowered.circuit);

    ExperimentConfig config = paperConfig("qrca", 8);
    config.schedule = ScheduleMode::Throttled;
    config.zeroPerMs = 25.0;
    const Result result = runExperiment(config);

    const ThrottledResult run = throttledRun(graph, model, 25.0);
    EXPECT_EQ(result.makespan, run.makespan);
    EXPECT_EQ(result.zerosConsumed, run.zerosConsumed);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.gatesExecuted, result.gates);
}

TEST_F(ExperimentParity, QftArchRunIsBitIdentical)
{
    const Benchmark old = handWired(BenchmarkKind::Qft, 8);
    const EncodedOpModel model(IonTrapParams::paper());
    const DataflowGraph graph(old.lowered.circuit);

    ExperimentConfig config = paperConfig("qft", 8);
    config.schedule = ScheduleMode::Arch;
    config.arch = "gcqla";
    config.generatorsPerSite = 4;
    config.cacheSlots = 8;

    // The pre-redesign enum-switch entry point.
    MicroarchConfig mc = config.microarchConfig();
    mc.kind = MicroarchKind::Gcqla;
    const ArchRunResult oldRun = runMicroarch(graph, model, mc);

    const Result result = runExperiment(config);
    EXPECT_EQ(result.makespan, oldRun.makespan);
    EXPECT_EQ(result.archRun.zerosConsumed, oldRun.zerosConsumed);
    EXPECT_EQ(result.archRun.pi8Consumed, oldRun.pi8Consumed);
    EXPECT_EQ(result.archRun.teleports, oldRun.teleports);
    EXPECT_EQ(result.archRun.cacheMisses, oldRun.cacheMisses);
    EXPECT_EQ(result.archRun.cacheAccesses, oldRun.cacheAccesses);
    EXPECT_DOUBLE_EQ(result.archRun.ancillaArea,
                     oldRun.ancillaArea);
}

TEST_F(ExperimentParity, ConfigJsonRoundTripReproducesResult)
{
    // The acceptance-criteria guard: one exemplar config survives a
    // JSON round-trip and reproduces the same Result.
    ExperimentConfig config = paperConfig("qrca", 8);
    config.schedule = ScheduleMode::Arch;
    config.arch = "fma";
    config.areaBudget = 2000;

    const ExperimentConfig reloaded = ExperimentConfig::fromJson(
        Json::parse(config.toJson().dump()));
    const Result a = runExperiment(config);
    const Result b = runExperiment(reloaded);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.zerosConsumed, b.zerosConsumed);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ---------------------------------------------------------------
// Experiment behavior
// ---------------------------------------------------------------

TEST(Experiment, RejectsUnsupportedCodeLevel)
{
    // Level 2 is modeled since the concatenation PR; level 3 must
    // still fail loudly and name what is modeled.
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 4;
    config.codeLevel = 3;
    try {
        runExperiment(config);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("3"), std::string::npos);
        EXPECT_NE(what.find("level"), std::string::npos);
    }
    config.codeLevel = 0;
    EXPECT_THROW(runExperiment(config), std::invalid_argument);
    config.codeLevel = -1;
    EXPECT_THROW(runExperiment(config), std::invalid_argument);
}

// ---------------------------------------------------------------
// Level-2 concatenation through the facade.
// ---------------------------------------------------------------

class Level2Experiment : public ::testing::Test
{
  protected:
    static ExperimentConfig
    baseConfig()
    {
        ExperimentConfig config = ExperimentConfig::paper("qrca");
        config.params.bits = 6;
        return config;
    }
};

TEST_F(Level2Experiment, SpeedOfDataSelfConsistency)
{
    ExperimentConfig config = baseConfig();
    Experiment experiment(config);
    const Result l1 = experiment.run(config);

    ExperimentConfig level2 = config;
    level2.codeLevel = 2;
    const Result l2 = experiment.run(level2);

    EXPECT_EQ(l1.codeLevel, 1);
    EXPECT_EQ(l2.codeLevel, 2);
    // Same circuit either way; level-2 ops are strictly slower.
    EXPECT_EQ(l2.gates, l1.gates);
    EXPECT_GT(l2.makespan, l1.makespan);
    EXPECT_GT(l2.split.qecInteract, l1.split.qecInteract);
    // Ancilla *counts* are level-independent (two zeros per QEC
    // step, one pi/8 per T), but the stretched runtime lowers the
    // per-ms bandwidth.
    EXPECT_EQ(l2.zerosConsumed, l1.zerosConsumed);
    EXPECT_LT(l2.bandwidth.zeroPerMs(), l1.bandwidth.zeroPerMs());
    // Factory area per delivered bandwidth explodes with the level;
    // even at the lower demand the total area lands in a
    // paper-plausible band above level 1.
    const double areaRatio = l2.allocation.totalArea()
        / l1.allocation.totalArea();
    EXPECT_GT(areaRatio, 2.0);
    EXPECT_LT(areaRatio, 200.0);
    // Inter-level traffic only exists at level 2.
    EXPECT_DOUBLE_EQ(l1.allocation.interLevelZeroPerMs, 0.0);
    EXPECT_GT(l2.allocation.interLevelZeroPerMs,
              l2.bandwidth.zeroPerMs());
}

TEST_F(Level2Experiment, ArchRunsSucceedOnQlaAndCqla)
{
    ExperimentConfig config = baseConfig();
    Experiment experiment(config);
    for (const char *arch : {"qla", "cqla"}) {
        ExperimentConfig l1 = config;
        l1.schedule = ScheduleMode::Arch;
        l1.arch = arch;
        ExperimentConfig l2 = l1;
        l2.codeLevel = 2;
        const Result r1 = experiment.run(l1);
        const Result r2 = experiment.run(l2);
        EXPECT_GT(r2.makespan, r1.makespan) << arch;
        EXPECT_GT(r2.archRun.ancillaArea, r1.archRun.ancillaArea)
            << arch;
        EXPECT_EQ(r2.gatesExecuted, r2.gates) << arch;
        EXPECT_GT(r2.klops(), 0.0) << arch;
    }
}

TEST_F(Level2Experiment, ResultJsonGatesLevelKeys)
{
    ExperimentConfig config = baseConfig();
    Experiment experiment(config);
    const Json j1 = experiment.run(config).toJson();
    // Level-1 serialization stays byte-compatible with PR 2: no
    // level keys appear.
    EXPECT_FALSE(j1.has("code_level"));
    EXPECT_FALSE(j1.at("factories").has("inter_level_zero_per_ms"));

    ExperimentConfig level2 = config;
    level2.codeLevel = 2;
    const Json j2 = experiment.run(level2).toJson();
    EXPECT_EQ(j2.at("code_level").asInt(), 2);
    EXPECT_GT(j2.at("factories")
                  .at("inter_level_zero_per_ms")
                  .asDouble(),
              0.0);
    EXPECT_GT(j2.at("factories")
                  .at("level1_feeder_factories")
                  .asDouble(),
              0.0);
}

TEST(Experiment, CalibrationPassResizesFactoriesOnly)
{
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 6;
    const Result plain = runExperiment(config);

    ExperimentConfig calibrated = config;
    calibrated.calibrateFactories = true;
    calibrated.calibrationTrials = 1 << 16;
    const Result mc = runExperiment(calibrated);

    // The schedule itself is untouched (speed of data has no
    // factory in the loop)...
    EXPECT_EQ(mc.makespan, plain.makespan);
    EXPECT_EQ(mc.zerosConsumed, plain.zerosConsumed);
    // ...but the factory sizing tracks the measured acceptance
    // instead of the Table 6 constant, so the allocation shifts
    // (slightly: the measured rate is near 0.998) while staying in
    // the same band.
    EXPECT_GT(mc.allocation.zeroFactoriesForQec, 0.0);
    EXPECT_NEAR(mc.allocation.zeroFactoriesForQec,
                plain.allocation.zeroFactoriesForQec,
                0.2 * plain.allocation.zeroFactoriesForQec);
}

TEST(Experiment, VariantMustDescribeSameWorkload)
{
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 6;
    Experiment experiment(config);

    ExperimentConfig other = config;
    other.workload = "ladder";
    EXPECT_THROW(experiment.run(other), std::invalid_argument);

    // Schedule knobs may differ freely.
    ExperimentConfig throttled = config;
    throttled.schedule = ScheduleMode::Throttled;
    throttled.zeroPerMs = 50.0;
    EXPECT_NO_THROW(experiment.run(throttled));
}

TEST(Experiment, TimeLimitCutsThrottledRunShort)
{
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 40;
    config.schedule = ScheduleMode::Throttled;
    config.zeroPerMs = 10.0;

    const Result full = runExperiment(config);
    ASSERT_TRUE(full.completed);

    config.timeLimit = full.makespan / 2;
    const Result cut = runExperiment(config);
    EXPECT_FALSE(cut.completed);
    EXPECT_LE(cut.makespan, config.timeLimit);
    EXPECT_LT(cut.gatesExecuted, full.gatesExecuted);
    EXPECT_LT(cut.klops(), full.klops() * 1.5);
}

TEST(Experiment, UtilizationIsAFractionAtSpeedOfData)
{
    const Result result = [&] {
        ExperimentConfig config;
        config.workload = "qcla";
        config.params.bits = 8;
        return runExperiment(config);
    }();
    EXPECT_GT(result.zeroUtilization, 0.0);
    EXPECT_LE(result.zeroUtilization, 1.0 + 1e-9);
    EXPECT_GT(result.klops(), 0.0);
    EXPECT_GE(result.slowdown(), 1.0 - 1e-12);
}

TEST(Experiment, ResultJsonHasTheContractedSections)
{
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 8;
    config.demandBins = 5;
    const Json j = runExperiment(config).toJson();
    for (const char *key :
         {"schema_version", "workload", "schedule", "circuit",
          "latency_split", "bandwidth", "demand_profile",
          "factories", "run"})
        EXPECT_TRUE(j.has(key)) << key;
    EXPECT_EQ(j.at("demand_profile").size(), 5u);
    EXPECT_EQ(j.at("run").at("completed").asBool(), true);
}

TEST(Experiment, SchemaVersionIsTheOnlyTopLevelAddition)
{
    // The schema_version field closes the PR 3 note ("revisit if a
    // schema version field lands"): level-1 payloads must remain
    // byte-identical apart from this single new key. Pin the exact
    // top-level key set — any other addition is a schema change
    // and must bump kResultSchemaVersion.
    ExperimentConfig config;
    config.workload = "chain";
    config.params.bits = 6;
    const Json j = runExperiment(config).toJson();
    EXPECT_EQ(j.at("schema_version").asInt(), kResultSchemaVersion);

    const std::vector<std::string> expected = {
        "bandwidth",      "circuit", "demand_profile",
        "factories",      "latency_split",
        "run",            "schedule", "schema_version",
        "workload"};
    std::vector<std::string> actual;
    for (const auto &[key, value] : j.items())
        actual.push_back(key);
    EXPECT_EQ(actual, expected);

    // Level-1 sweep summaries (the per-point payload) are
    // unchanged entirely: the sweep document carries the version
    // once at top level instead of per point.
    const Json summary = runExperiment(config).summaryJson();
    EXPECT_FALSE(summary.has("schema_version"));
}

} // namespace
} // namespace qc
