/**
 * @file
 * Tests for the architecture analyses: the Table 2/3 speed-of-data
 * machinery, the Figure 7 demand profile, the Figure 8 throttled
 * runs, and the Figure 15 microarchitecture orderings — on small
 * kernels for test speed (the bench binaries run the 32-bit paper
 * configuration).
 */

#include <gtest/gtest.h>

#include "arch/Microarch.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "kernels/Kernels.hh"

namespace qc {
namespace {

class ArchTest : public ::testing::Test
{
  protected:
    static const Benchmark &
    qrca8()
    {
        static FowlerSynth synth;
        static BenchmarkOptions opts = [] {
            BenchmarkOptions o;
            o.bits = 8;
            return o;
        }();
        static Benchmark b =
            makeBenchmark(BenchmarkKind::Qrca, synth, opts);
        return b;
    }

    EncodedOpModel model_{IonTrapParams::paper()};
};

TEST_F(ArchTest, ChainCircuitLatencySplitIsExact)
{
    // One qubit, three H gates: data 3 us, QEC 3 x 61 us, prep
    // 3 x 264 us.
    Circuit c(1);
    c.h(0).h(0).h(0);
    DataflowGraph g(c);
    const LatencySplit split = latencySplit(g, model_);
    EXPECT_EQ(split.dataOp, usec(3));
    EXPECT_EQ(split.qecInteract, usec(183));
    EXPECT_EQ(split.ancillaPrep, usec(792));
}

TEST_F(ArchTest, SplitSharesSumToOne)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const LatencySplit split = latencySplit(g, model_);
    EXPECT_NEAR(split.dataOpShare() + split.qecInteractShare()
                    + split.ancillaPrepShare(),
                1.0, 1e-12);
}

TEST_F(ArchTest, AncillaPrepDominatesAsInTable2)
{
    // Table 2: preparation is ~71-78% of the serialized runtime;
    // data ops only ~5%.
    DataflowGraph g(qrca8().lowered.circuit);
    const LatencySplit split = latencySplit(g, model_);
    EXPECT_GT(split.ancillaPrepShare(), 0.5);
    EXPECT_LT(split.dataOpShare(), 0.2);
    EXPECT_GT(split.ancillaPrepShare(), split.qecInteractShare());
}

TEST_F(ArchTest, BandwidthCountsMatchCensus)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const GateCensus census = qrca8().lowered.circuit.census();
    EXPECT_EQ(bw.pi8Consumed, census.nonTransversal1q());
    EXPECT_GT(bw.zerosConsumed, 2 * census.nonTransversal1q());
    EXPECT_GT(bw.zeroPerMs(), 0.0);
}

TEST_F(ArchTest, DemandProfileIntegratesToDemand)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const auto profile = ancillaDemandProfile(g, model_, 50);
    ASSERT_EQ(profile.size(), 50u);
    double peak = 0;
    for (double v : profile)
        peak = std::max(peak, v);
    EXPECT_GT(peak, 0.0);
    // Average concurrency x runtime must equal total
    // ancilla-occupancy time: zeros x window / runtime on average.
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    double mean = 0;
    for (double v : profile)
        mean += v;
    mean /= static_cast<double>(profile.size());
    // Sanity: mean concurrency is positive and bounded by total
    // zeros (loose envelope).
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, static_cast<double>(bw.zerosConsumed));
}

TEST_F(ArchTest, ThrottledRunUnconstrainedMatchesSpeedOfData)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const ThrottledResult run = throttledRun(g, model_, 0.0);
    EXPECT_EQ(run.makespan, bw.runtime);
    EXPECT_EQ(run.zerosConsumed, bw.zerosConsumed);
}

TEST_F(ArchTest, ThrottledRunMonotonicInRate)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const double avg = bw.zeroPerMs();
    Time last = 0;
    // Rates well below / at / well above the average bandwidth.
    for (double frac : {4.0, 1.0, 0.25, 0.1}) {
        const ThrottledResult run =
            throttledRun(g, model_, avg * frac);
        if (last != 0) {
            EXPECT_GE(run.makespan, last) << "frac=" << frac;
        }
        last = run.makespan;
    }
}

TEST_F(ArchTest, StarvedRunApproachesSupplyBound)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const double rate = bw.zeroPerMs() * 0.1; // 10% of the need
    const ThrottledResult run = throttledRun(g, model_, rate);
    const double supply_bound_ms =
        static_cast<double>(bw.zerosConsumed) / rate;
    EXPECT_GT(toMs(run.makespan), 0.9 * supply_bound_ms);
}

TEST_F(ArchTest, GenerousThroughputNearsSpeedOfData)
{
    DataflowGraph g(qrca8().lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(g, model_);
    const ThrottledResult run =
        throttledRun(g, model_, bw.zeroPerMs() * 20.0);
    EXPECT_LT(toMs(run.makespan), 1.3 * toMs(bw.runtime));
}

// ---------------------------------------------------------------
// Microarchitecture comparisons (Figure 15 orderings).
// ---------------------------------------------------------------

class MicroarchTest : public ArchTest
{
  protected:
    ArchRunResult
    run(MicroarchKind kind, int k = 1, Area budget = 3000)
    {
        DataflowGraph g(qrca8().lowered.circuit);
        MicroarchConfig config;
        config.kind = kind;
        config.generatorsPerSite = k;
        config.areaBudget = budget;
        config.cacheSlots = 8;
        return runMicroarch(g, model_, config);
    }
};

TEST_F(MicroarchTest, NamesAreStable)
{
    EXPECT_EQ(microarchName(MicroarchKind::Qla), "QLA");
    EXPECT_EQ(microarchName(MicroarchKind::FullyMultiplexed),
              "Fully-Multiplexed");
}

TEST_F(MicroarchTest, MoreGeneratorsNeverSlower)
{
    const ArchRunResult k1 = run(MicroarchKind::Qla, 1);
    const ArchRunResult k4 = run(MicroarchKind::Gqla, 4);
    const ArchRunResult k16 = run(MicroarchKind::Gqla, 16);
    EXPECT_GE(k1.makespan, k4.makespan);
    EXPECT_GE(k4.makespan, k16.makespan);
    EXPECT_LT(k1.ancillaArea, k4.ancillaArea);
}

TEST_F(MicroarchTest, FmaBeatsQlaAtEqualArea)
{
    // The headline claim: at matched generation area the fully
    // multiplexed organization is much faster (shared factories
    // are never idle while QLA's per-qubit generators are).
    const ArchRunResult qla = run(MicroarchKind::Qla, 1);
    const ArchRunResult fma =
        run(MicroarchKind::FullyMultiplexed, 1, qla.ancillaArea);
    EXPECT_LT(fma.makespan * 2, qla.makespan);
}

TEST_F(MicroarchTest, CqlaPlateausAboveFma)
{
    // Even with lavish generator provisioning, CQLA keeps paying
    // cache misses; FMA with a huge budget approaches speed of
    // data.
    const ArchRunResult cqla = run(MicroarchKind::Gcqla, 64);
    const ArchRunResult fma =
        run(MicroarchKind::FullyMultiplexed, 1, 500000);
    EXPECT_GT(cqla.makespan, fma.makespan);
    EXPECT_GT(cqla.cacheMisses, 0u);
}

TEST_F(MicroarchTest, QlaPlateauNearFmaPlateau)
{
    // Section 5.2: QLA has no cache misses, so with enough
    // generators it plateaus within a small factor of FMA.
    const ArchRunResult qla = run(MicroarchKind::Gqla, 64);
    const ArchRunResult fma =
        run(MicroarchKind::FullyMultiplexed, 1, 500000);
    EXPECT_LT(qla.makespan, 4 * fma.makespan);
    EXPECT_GE(qla.makespan, fma.makespan);
}

TEST_F(MicroarchTest, QlaChargesTeleportsFor2qGates)
{
    const ArchRunResult qla = run(MicroarchKind::Qla, 1);
    const GateCensus census = qrca8().lowered.circuit.census();
    EXPECT_EQ(qla.teleports,
              census.of(GateKind::CX) + census.of(GateKind::CZ));
}

TEST_F(MicroarchTest, CacheMissRateFallsWithLargerCache)
{
    DataflowGraph g(qrca8().lowered.circuit);
    MicroarchConfig small;
    small.kind = MicroarchKind::Cqla;
    small.cacheSlots = 4;
    MicroarchConfig big = small;
    big.cacheSlots = 20;
    const auto small_run = runMicroarch(g, model_, small);
    const auto big_run = runMicroarch(g, model_, big);
    EXPECT_GT(small_run.missRate(), big_run.missRate());
    EXPECT_GE(small_run.makespan, big_run.makespan);
}

TEST_F(MicroarchTest, FmaLargerBudgetNeverSlower)
{
    Time last = 0;
    for (Area budget : {500.0, 2000.0, 8000.0, 64000.0}) {
        const ArchRunResult r =
            run(MicroarchKind::FullyMultiplexed, 1, budget);
        if (last != 0) {
            EXPECT_LE(r.makespan, last) << "budget=" << budget;
        }
        last = r.makespan;
    }
}

TEST_F(MicroarchTest, AncillaAccountingConsistentAcrossArchs)
{
    const ArchRunResult qla = run(MicroarchKind::Qla, 1);
    const ArchRunResult fma = run(MicroarchKind::FullyMultiplexed);
    const ArchRunResult cqla = run(MicroarchKind::Cqla, 1);
    EXPECT_EQ(qla.zerosConsumed, fma.zerosConsumed);
    EXPECT_EQ(qla.zerosConsumed, cqla.zerosConsumed);
    EXPECT_EQ(qla.pi8Consumed, fma.pi8Consumed);
}

} // namespace
} // namespace qc
