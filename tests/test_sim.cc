/**
 * @file
 * Tests for the discrete-event core: event ordering, determinism,
 * and the token-pool production models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/Simulator.hh"
#include "sim/TokenPool.hh"

namespace qc {
namespace {

TEST(Simulator, FiresInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(usec(30), [&] { order.push_back(3); });
    sim.schedule(usec(10), [&] { order.push_back(1); });
    sim.schedule(usec(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, StableForEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(usec(5), [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersMayScheduleMore)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            sim.scheduleAfter(usec(10), chain);
    };
    sim.schedule(0, chain);
    const Time end = sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(end, usec(40));
}

TEST(Simulator, NowAdvancesMonotonically)
{
    Simulator sim;
    Time last = -1;
    for (Time t : {usec(5), usec(1), usec(9), usec(1)}) {
        sim.schedule(t, [&] {
            EXPECT_GE(sim.now(), last);
            last = sim.now();
        });
    }
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), 4u);
}

TEST(SimulatorDeath, RejectsPastScheduling)
{
    Simulator sim;
    sim.schedule(usec(10), [&] {
        sim.schedule(usec(5), [] {});
    });
    EXPECT_DEATH(sim.run(), "past");
}

TEST(Simulator, RunUntilStopsAtTheLimit)
{
    Simulator sim;
    int fired = 0;
    for (Time t : {usec(10), usec(20), usec(30), usec(40)})
        sim.schedule(t, [&] { ++fired; });
    // Events at the limit itself still fire.
    EXPECT_EQ(sim.runUntil(usec(20)), usec(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 2u);
    EXPECT_EQ(sim.now(), usec(20));
}

TEST(Simulator, RunUntilAdvancesNowToLimitWhenCutOff)
{
    Simulator sim;
    sim.schedule(usec(100), [] {});
    EXPECT_EQ(sim.runUntil(usec(60)), usec(60));
    EXPECT_EQ(sim.now(), usec(60));
    EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilDrainsLikeRunWhenQueueEmpties)
{
    Simulator sim;
    sim.schedule(usec(15), [] {});
    // Queue drains before the limit: now() stays at the last event.
    EXPECT_EQ(sim.runUntil(usec(1000)), usec(15));
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunResumesAfterRunUntil)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(usec(10), [&] { order.push_back(1); });
    sim.schedule(usec(30), [&] { order.push_back(2); });
    sim.runUntil(usec(20));
    EXPECT_EQ(order, (std::vector<int>{1}));
    // Remaining events stay queued and a later run() finishes them.
    EXPECT_EQ(sim.run(), usec(30));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorDeath, RunUntilRejectsPastLimits)
{
    Simulator sim;
    sim.schedule(usec(50), [] {});
    sim.runUntil(usec(40));
    EXPECT_DEATH(sim.runUntil(usec(30)), "past");
}

TEST(RateTokenPool, TokensArriveAtRate)
{
    // 2 tokens per ms -> k-th token at k * 0.5 ms.
    RateTokenPool pool(2.0);
    EXPECT_EQ(pool.claim(1), msec(1) / 2);
    EXPECT_EQ(pool.claim(1), msec(1));
    EXPECT_EQ(pool.claim(2), msec(2));
    EXPECT_EQ(pool.issued(), 4u);
}

TEST(RateTokenPool, StartupDelaysFirstToken)
{
    RateTokenPool pool(1.0, usec(300));
    EXPECT_EQ(pool.claim(1), usec(300) + msec(1));
}

TEST(RateTokenPool, InfiniteRateAlwaysAvailable)
{
    RateTokenPool pool(0.0);
    EXPECT_EQ(pool.claim(100), 0);
}

TEST(RateTokenPool, ZeroClaimIsFree)
{
    RateTokenPool pool(1.0);
    EXPECT_EQ(pool.claim(0), 0);
    EXPECT_EQ(pool.issued(), 0u);
}

TEST(BankTokenPool, SingleProducerSerializes)
{
    BankTokenPool bank(1, usec(323));
    EXPECT_EQ(bank.claim(1), usec(323));
    EXPECT_EQ(bank.claim(1), usec(646));
    EXPECT_EQ(bank.claim(2), usec(323) * 4);
}

TEST(BankTokenPool, ParallelProducersBatch)
{
    BankTokenPool bank(3, usec(100));
    // First three tokens in the first period, next three in the
    // second.
    EXPECT_EQ(bank.claim(3), usec(100));
    EXPECT_EQ(bank.claim(1), usec(200));
    EXPECT_EQ(bank.claim(2), usec(200));
    EXPECT_EQ(bank.claim(1), usec(300));
}

TEST(BankTokenPoolDeath, RejectsBadParameters)
{
    EXPECT_DEATH(BankTokenPool(0, usec(1)), "bad parameters");
}

} // namespace
} // namespace qc
