/**
 * @file
 * Tests for the ancilla factory designs: exact reproduction of the
 * paper's Tables 5-8 under the ion-trap parameters, the simple
 * factory of Section 4.3, bandwidth-matching invariants under
 * parameter sweeps, and the Table 9 allocation math.
 */

#include <gtest/gtest.h>

#include "factory/Allocation.hh"
#include "factory/Cascade.hh"
#include "factory/ConcatenatedFactory.hh"
#include "factory/FunctionalUnit.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace qc {
namespace {

// ---------------------------------------------------------------
// Table 5: zero-factory functional units.
// ---------------------------------------------------------------

class Table5Test : public ::testing::Test
{
  protected:
    ZeroFactoryUnits units_{IonTrapParams::paper(), 0.998};
};

TEST_F(Table5Test, ZeroPrepRow)
{
    EXPECT_EQ(units_.zeroPrep.latency, usec(73));
    EXPECT_NEAR(units_.zeroPrep.inBandwidth(), 13.7, 0.05);
    EXPECT_NEAR(units_.zeroPrep.outBandwidth(), 13.7, 0.05);
    EXPECT_DOUBLE_EQ(units_.zeroPrep.area, 1.0);
}

TEST_F(Table5Test, CxStageRow)
{
    EXPECT_EQ(units_.cxStage.latency, usec(95));
    EXPECT_EQ(units_.cxStage.stages, 3);
    EXPECT_NEAR(units_.cxStage.inBandwidth(), 221.1, 0.1);
    EXPECT_NEAR(units_.cxStage.outBandwidth(), 221.1, 0.1);
    EXPECT_DOUBLE_EQ(units_.cxStage.area, 28.0);
}

TEST_F(Table5Test, CatPrepRow)
{
    EXPECT_EQ(units_.catPrep.latency, usec(62));
    EXPECT_NEAR(units_.catPrep.outBandwidth(), 96.8, 0.1);
    EXPECT_DOUBLE_EQ(units_.catPrep.area, 6.0);
}

TEST_F(Table5Test, VerificationRow)
{
    EXPECT_EQ(units_.verify.latency, usec(82));
    EXPECT_NEAR(units_.verify.inBandwidth(), 122.0, 0.1);
    EXPECT_NEAR(units_.verify.outBandwidth(), 85.2, 0.1);
    EXPECT_DOUBLE_EQ(units_.verify.area, 10.0);
}

TEST_F(Table5Test, CorrectionRow)
{
    EXPECT_EQ(units_.bpCorrect.latency, usec(138));
    EXPECT_NEAR(units_.bpCorrect.inBandwidth(), 152.2, 0.1);
    EXPECT_NEAR(units_.bpCorrect.outBandwidth(), 50.7, 0.1);
    EXPECT_DOUBLE_EQ(units_.bpCorrect.area, 21.0);
}

// ---------------------------------------------------------------
// Table 6: zero-factory unit counts and totals.
// ---------------------------------------------------------------

class Table6Test : public ::testing::Test
{
  protected:
    ZeroFactory factory_{IonTrapParams::paper(), 0.998};
};

TEST_F(Table6Test, UnitCountsMatchPaper)
{
    const auto &stages = factory_.stages();
    ASSERT_EQ(stages.size(), 5u);
    EXPECT_EQ(stages[0].count, 24); // Zero Prepare
    EXPECT_EQ(stages[1].count, 1);  // CX Stage
    EXPECT_EQ(stages[2].count, 1);  // Cat State Prepare
    EXPECT_EQ(stages[3].count, 3);  // Verification
    EXPECT_EQ(stages[4].count, 2);  // B/P Correction
}

TEST_F(Table6Test, StageHeightsMatchPaper)
{
    const auto &stages = factory_.stages();
    EXPECT_EQ(stages[0].totalHeight(), 24);
    EXPECT_EQ(stages[1].totalHeight(), 4);
    EXPECT_EQ(stages[2].totalHeight(), 2);
    EXPECT_EQ(stages[3].totalHeight(), 30);
    EXPECT_EQ(stages[4].totalHeight(), 42);
}

TEST_F(Table6Test, AreasMatchPaper)
{
    EXPECT_DOUBLE_EQ(factory_.functionalUnitArea(), 130.0);
    EXPECT_DOUBLE_EQ(factory_.crossbarArea(), 168.0);
    EXPECT_DOUBLE_EQ(factory_.totalArea(), 298.0);
}

TEST_F(Table6Test, ThroughputIs10Point5PerMs)
{
    EXPECT_NEAR(factory_.throughput(), 10.5, 0.05);
}

TEST_F(Table6Test, EveryStageKeepsUpWithUpstream)
{
    // Downstream aggregate input bandwidth must cover the flow that
    // actually arrives (the bandwidth-matching invariant).
    const auto &s = factory_.stages();
    const double encoded = s[1].aggregateOut();
    const double cat = encoded * 3.0 / 7.0;
    EXPECT_GE(s[0].aggregateOut(), encoded + cat - 1e-9);
    EXPECT_GE(s[2].aggregateOut(), cat - 1e-9);
    EXPECT_GE(s[3].aggregateIn(), encoded + cat - 1e-9);
    EXPECT_GE(s[4].aggregateIn(),
              encoded * factory_.acceptRate() - 1e-9);
}

TEST_F(Table6Test, LatencyLongerThanUnpipelinedCriticalPath)
{
    // The pipeline adds crossbar transits, so end-to-end latency
    // must exceed the raw sum of the four traversed unit latencies.
    const auto &s = factory_.stages();
    const Time raw = s[0].unit.latency + s[1].unit.latency
        + s[3].unit.latency + s[4].unit.latency;
    EXPECT_GT(factory_.latency(), raw);
    EXPECT_LT(factory_.latency(), raw + usec(100));
}

TEST(SimpleFactory, MatchesSection43)
{
    const SimpleZeroFactory f;
    EXPECT_EQ(f.latency(), usec(323));
    EXPECT_NEAR(f.throughput(), 3.1, 0.01);
    EXPECT_DOUBLE_EQ(f.area(), 90.0);
}

TEST(SimpleFactory, PipelinedFactoryHasSimilarBandwidthPerArea)
{
    // Section 5.3's observation: ~3.44 vs ~3.52 ancillae per ms per
    // 100 macroblocks — virtually the same bandwidth density.
    const SimpleZeroFactory simple;
    const ZeroFactory pipelined;
    const double simple_density = simple.throughput() / simple.area();
    const double pipe_density =
        pipelined.throughput() / pipelined.totalArea();
    EXPECT_NEAR(pipe_density / simple_density, 1.0, 0.15);
}

// ---------------------------------------------------------------
// Tables 7-8: pi/8 factory.
// ---------------------------------------------------------------

class Table7Test : public ::testing::Test
{
  protected:
    Pi8FactoryUnits units_{IonTrapParams::paper()};
};

TEST_F(Table7Test, CatPrepRow)
{
    EXPECT_EQ(units_.catPrep7.latency, usec(218));
    EXPECT_NEAR(units_.catPrep7.inBandwidth(), 32.1, 0.05);
    EXPECT_DOUBLE_EQ(units_.catPrep7.area, 12.0);
}

TEST_F(Table7Test, TransversalRow)
{
    EXPECT_EQ(units_.transversal.latency, usec(53));
    EXPECT_NEAR(units_.transversal.inBandwidth(), 264.2, 0.1);
    EXPECT_DOUBLE_EQ(units_.transversal.area, 7.0);
}

TEST_F(Table7Test, DecodeRow)
{
    EXPECT_EQ(units_.decode.latency, usec(218));
    EXPECT_NEAR(units_.decode.inBandwidth(), 64.2, 0.05);
    EXPECT_NEAR(units_.decode.outBandwidth(), 36.7, 0.05);
    EXPECT_DOUBLE_EQ(units_.decode.area, 19.0);
}

TEST_F(Table7Test, FixupRow)
{
    EXPECT_EQ(units_.fixup.latency, usec(74));
    EXPECT_NEAR(units_.fixup.inBandwidth(), 108.1, 0.1);
    EXPECT_NEAR(units_.fixup.outBandwidth(), 94.6, 0.1);
    EXPECT_DOUBLE_EQ(units_.fixup.area, 8.0);
}

class Table8Test : public ::testing::Test
{
  protected:
    Pi8Factory factory_{IonTrapParams::paper()};
};

TEST_F(Table8Test, UnitCountsMatchPaper)
{
    const auto &stages = factory_.stages();
    ASSERT_EQ(stages.size(), 4u);
    EXPECT_EQ(stages[0].count, 4); // Cat State Prepare
    EXPECT_EQ(stages[1].count, 1); // Transversal
    EXPECT_EQ(stages[2].count, 4); // Decode
    EXPECT_EQ(stages[3].count, 2); // H/M/Z
}

TEST_F(Table8Test, HeightsMatchPaper)
{
    const auto &stages = factory_.stages();
    EXPECT_EQ(stages[0].totalHeight(), 24);
    EXPECT_EQ(stages[1].totalHeight(), 7);
    EXPECT_EQ(stages[2].totalHeight(), 52);
    EXPECT_EQ(stages[3].totalHeight(), 16);
}

TEST_F(Table8Test, AreasMatchPaper)
{
    EXPECT_DOUBLE_EQ(factory_.functionalUnitArea(), 147.0);
    EXPECT_DOUBLE_EQ(factory_.crossbarArea(), 256.0);
    EXPECT_DOUBLE_EQ(factory_.totalArea(), 403.0);
}

TEST_F(Table8Test, ThroughputIs18Point3PerMs)
{
    EXPECT_NEAR(factory_.throughput(), 18.3, 0.05);
}

TEST_F(Table8Test, ZeroInputMatchesThroughput)
{
    EXPECT_DOUBLE_EQ(factory_.zeroInputBandwidth(),
                     factory_.throughput());
}

// ---------------------------------------------------------------
// Parameter-sweep properties of the designs.
// ---------------------------------------------------------------

struct TechScale
{
    double factor;
};

class FactoryScalingTest : public ::testing::TestWithParam<TechScale>
{
  protected:
    static IonTrapParams
    scaled(double f)
    {
        IonTrapParams p = IonTrapParams::paper();
        p.t1q = static_cast<Time>(p.t1q * f);
        p.t2q = static_cast<Time>(p.t2q * f);
        p.tmeas = static_cast<Time>(p.tmeas * f);
        p.tprep = static_cast<Time>(p.tprep * f);
        p.tmove = static_cast<Time>(p.tmove * f);
        p.tturn = static_cast<Time>(p.tturn * f);
        return p;
    }
};

TEST_P(FactoryScalingTest, ThroughputScalesInverselyWithLatency)
{
    const double f = GetParam().factor;
    const ZeroFactory base;
    const ZeroFactory scaled_f(scaled(f));
    EXPECT_NEAR(scaled_f.throughput() * f, base.throughput(),
                base.throughput() * 0.01);
    // Unit counts are latency-ratio driven and must not change
    // under uniform scaling.
    for (std::size_t i = 0; i < base.stages().size(); ++i) {
        EXPECT_EQ(scaled_f.stages()[i].count,
                  base.stages()[i].count);
    }
}

TEST_P(FactoryScalingTest, Pi8DesignStableUnderUniformScaling)
{
    const double f = GetParam().factor;
    const Pi8Factory base;
    const Pi8Factory scaled_f(scaled(f));
    EXPECT_DOUBLE_EQ(scaled_f.totalArea(), base.totalArea());
    EXPECT_NEAR(scaled_f.throughput() * f, base.throughput(),
                base.throughput() * 0.01);
}

INSTANTIATE_TEST_SUITE_P(UniformScales, FactoryScalingTest,
                         ::testing::Values(TechScale{2.0},
                                           TechScale{4.0},
                                           TechScale{10.0}),
                         [](const auto &info) {
                             return "x"
                                 + std::to_string(static_cast<int>(
                                     info.param.factor));
                         });

TEST(FactoryDesign, LowerAcceptanceNeedsMoreCorrectionHeadroom)
{
    // Dropping the verification acceptance rate reduces throughput
    // proportionally.
    const ZeroFactory good(IonTrapParams::paper(), 0.998);
    const ZeroFactory bad(IonTrapParams::paper(), 0.5);
    EXPECT_NEAR(bad.throughput() / good.throughput(), 0.5 / 0.998,
                0.01);
}

TEST(FactoryDesignDeath, RejectsBadAcceptRate)
{
    EXPECT_DEATH(ZeroFactory(IonTrapParams::paper(), 0.0),
                 "acceptance");
}

// ---------------------------------------------------------------
// Allocation (Table 9 machinery).
// ---------------------------------------------------------------

TEST(Allocation, QrcaRowOfTable9)
{
    // Paper: QEC bandwidth 34.8/ms -> 986.9 macroblocks of QEC
    // factories; pi/8 bandwidth 7.0/ms -> 354.7 macroblocks
    // including feeder zero factories.
    const ZeroFactory zero;
    const Pi8Factory pi8;
    const FactoryAllocation alloc =
        allocateForBandwidth(zero, pi8, 34.8, 7.0);
    EXPECT_NEAR(alloc.qecArea(), 986.9, 15.0);
    EXPECT_NEAR(alloc.pi8Area(), 354.7, 15.0);
}

TEST(Allocation, ScalesLinearlyWithBandwidth)
{
    const ZeroFactory zero;
    const Pi8Factory pi8;
    const auto one = allocateForBandwidth(zero, pi8, 10, 2);
    const auto ten = allocateForBandwidth(zero, pi8, 100, 20);
    EXPECT_NEAR(ten.totalArea(), 10.0 * one.totalArea(), 1e-6);
}

TEST(Allocation, ZeroBandwidthNeedsNoArea)
{
    const ZeroFactory zero;
    const Pi8Factory pi8;
    const auto none = allocateForBandwidth(zero, pi8, 0, 0);
    EXPECT_DOUBLE_EQ(none.totalArea(), 0.0);
}

// ---------------------------------------------------------------
// Figure 6 cascade model.
// ---------------------------------------------------------------

TEST(Cascade, ExpectedCxCountConvergesToTwo)
{
    EXPECT_DOUBLE_EQ(CascadeModel::expectedCxCount(3), 1.0);
    EXPECT_DOUBLE_EQ(CascadeModel::expectedCxCount(4), 1.5);
    EXPECT_NEAR(CascadeModel::expectedCxCount(20), 2.0, 1e-4);
}

TEST(Cascade, ExpectedLatencyBelowWorstCase)
{
    const IonTrapParams tech;
    for (int k = 3; k <= 10; ++k) {
        EXPECT_LE(CascadeModel::expectedDataLatency(k, tech),
                  CascadeModel::worstCaseDataLatency(k, tech))
            << "k=" << k;
    }
}

TEST(Cascade, WorstCaseGrowsLinearly)
{
    const IonTrapParams tech;
    EXPECT_EQ(CascadeModel::worstCaseDataLatency(5, tech),
              3 * usec(61));
    EXPECT_EQ(CascadeModel::worstCaseDataLatency(10, tech),
              8 * usec(61));
}

// ---------------------------------------------------------------
// FactoryCascade sizing and the level-2 concatenated factories.
// ---------------------------------------------------------------

TEST(FactoryCascade, SizesStagesByInputsPerOutput)
{
    // A toy two-stage chain: bottom units deliver 10/ms, the top
    // stage consumes 5 bottom items per output and delivers 2/ms
    // per unit.
    CascadeStage bottom{"bottom", 10.0, 0.0, 100.0, usec(10)};
    CascadeStage top{"top", 2.0, 5.0, 40.0, usec(30)};
    const FactoryCascade cascade({bottom, top});

    EXPECT_DOUBLE_EQ(cascade.boundaryBandwidth(1, 4.0), 4.0);
    EXPECT_DOUBLE_EQ(cascade.boundaryBandwidth(0, 4.0), 20.0);
    const std::vector<double> units = cascade.unitsFor(4.0);
    ASSERT_EQ(units.size(), 2u);
    EXPECT_DOUBLE_EQ(units[0], 2.0); // 20/ms over 10/ms units
    EXPECT_DOUBLE_EQ(units[1], 2.0); // 4/ms over 2/ms units
    EXPECT_DOUBLE_EQ(cascade.areaFor(4.0), 2.0 * 100 + 2.0 * 40);
    EXPECT_EQ(cascade.fillLatency(), usec(40));
}

class Level2FactoryTest : public ::testing::Test
{
  protected:
    Level2ZeroFactory zero_{IonTrapParams::paper()};
    Level2Pi8Factory pi8_{IonTrapParams::paper()};
    ZeroFactory l1_{IonTrapParams::paper()};
};

TEST_F(Level2FactoryTest, ThroughputBelowLevelOne)
{
    // A delivered level-2 zero embeds three verified raw blocks of
    // ten level-1 zeros each: the cascade is necessarily slower per
    // line and hungrier per output than the level-1 design.
    EXPECT_GT(zero_.throughput(), 0);
    EXPECT_LT(zero_.throughput(), l1_.throughput());
    EXPECT_NEAR(zero_.level1ZerosPerOutput(),
                30.0 / zero_.acceptRate(), 1e-9);
}

TEST_F(Level2FactoryTest, InterLevelBandwidthIsConsistent)
{
    EXPECT_NEAR(zero_.level1InputBandwidth(),
                zero_.throughput() * zero_.level1ZerosPerOutput(),
                1e-9);
    EXPECT_NEAR(zero_.level1FeederFactories(),
                zero_.level1InputBandwidth() / l1_.throughput(),
                1e-9);
}

TEST_F(Level2FactoryTest, AreaDominatedByFeeders)
{
    // Keeping one assembly line saturated takes several pipelined
    // level-1 factories; their area dwarfs the assembly line's.
    EXPECT_GT(zero_.level1FeederFactories(), 1.0);
    EXPECT_GT(zero_.feederArea(), zero_.assemblyArea());
    EXPECT_NEAR(zero_.totalArea(),
                zero_.feederArea() + zero_.assemblyArea(), 1e-9);
    // Area per delivered bandwidth grows steeply with the level.
    const double costL1 = l1_.totalArea() / l1_.throughput();
    const double costL2 = zero_.totalArea() / zero_.throughput();
    EXPECT_GT(costL2, 5.0 * costL1);
    EXPECT_LT(costL2, 500.0 * costL1);
}

TEST_F(Level2FactoryTest, LatencyExceedsLevelOneFill)
{
    EXPECT_GT(zero_.latency(), l1_.latency());
    EXPECT_GT(pi8_.latency(), 0);
}

TEST_F(Level2FactoryTest, Pi8ConsumesSevenCatBlocksPerOutput)
{
    EXPECT_NEAR(pi8_.level1InputBandwidth(),
                7.0 * pi8_.throughput(), 1e-9);
    EXPECT_DOUBLE_EQ(pi8_.level2ZeroInputBandwidth(),
                     pi8_.throughput());
    EXPECT_GT(pi8_.feederArea(), 0);
}

TEST(Level2Allocation, TracksInterLevelTraffic)
{
    const Level2ZeroFactory zero;
    const Level2Pi8Factory pi8;
    const FactoryAllocation alloc =
        allocateForBandwidthLevel2(zero, pi8, 10.0, 2.0);
    EXPECT_EQ(alloc.codeLevel, 2);
    EXPECT_NEAR(alloc.zeroFactoriesForQec,
                10.0 / zero.throughput(), 1e-9);
    EXPECT_NEAR(alloc.pi8Factories, 2.0 / pi8.throughput(), 1e-9);
    EXPECT_NEAR(alloc.zeroFactoriesForPi8,
                2.0 / zero.throughput(), 1e-9);
    // Inter-level traffic: both level-2 zero chains plus the cats.
    EXPECT_NEAR(alloc.interLevelZeroPerMs,
                12.0 * zero.level1ZerosPerOutput() + 2.0 * 7.0,
                1e-9);
    EXPECT_GT(alloc.level1FeederFactories, 0);
    EXPECT_GT(alloc.totalArea(), 0);
}

TEST(Level2Allocation, LevelOneAllocationUnchanged)
{
    // The level-1 path must not pick up level-2 fields.
    const FactoryAllocation alloc = allocateForBandwidth(
        ZeroFactory(), Pi8Factory(), 45.0, 10.0);
    EXPECT_EQ(alloc.codeLevel, 1);
    EXPECT_DOUBLE_EQ(alloc.interLevelZeroPerMs, 0.0);
    EXPECT_DOUBLE_EQ(alloc.level1FeederFactories, 0.0);
}

} // namespace
} // namespace qc
