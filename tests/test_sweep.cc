/**
 * @file
 * Tests for the sweep subsystem: SweepSpec parsing and expansion
 * (cartesian order, zipped axes, grid unions, bad-field errors
 * listing the valid fields), the config-hash memoization cache's
 * hit/miss accounting, thread-count invariance of the aggregated
 * JSON, runner parity with the direct engines, and the shipped
 * specs under specs/.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>

#include "api/Qc.hh"
#include "error/BatchAncillaSim.hh"
#include "layout/Builders.hh"
#include "sweep/Sweep.hh"
#include "sweep/WorkStealingPool.hh"

namespace qc {
namespace {

Json
parse(const std::string &text)
{
    return Json::parse(text);
}

// ---------------------------------------------------------------
// SweepSpec parsing and expansion
// ---------------------------------------------------------------

TEST(SweepSpec, ExpandsCartesianProductLastAxisFastest)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 1000},
      "axes": [
        {"field": "pGate", "values": [1e-5, 1e-4]},
        {"field": "pMove", "values": [1e-7, 1e-6, 1e-5]}
      ]
    })"));
    EXPECT_EQ(spec.points(), 6u);

    const std::vector<SweepPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 6u);
    // Nested-loop order: pMove (last axis) varies fastest.
    EXPECT_DOUBLE_EQ(points[0].config.at("pGate").asDouble(), 1e-5);
    EXPECT_DOUBLE_EQ(points[0].config.at("pMove").asDouble(), 1e-7);
    EXPECT_DOUBLE_EQ(points[1].config.at("pMove").asDouble(), 1e-6);
    EXPECT_DOUBLE_EQ(points[2].config.at("pMove").asDouble(), 1e-5);
    EXPECT_DOUBLE_EQ(points[3].config.at("pGate").asDouble(), 1e-4);
    EXPECT_DOUBLE_EQ(points[3].config.at("pMove").asDouble(), 1e-7);
    // The base rides along on every point.
    EXPECT_EQ(points[5].config.at("trials").asInt(), 1000);
    // The assignment records only the axis fields.
    EXPECT_FALSE(points[0].assignment.has("trials"));
    EXPECT_TRUE(points[0].assignment.has("pGate"));
}

TEST(SweepSpec, ZippedAxesAdvanceTogether)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "axes": [
        {"zip": [
          {"field": "arch", "values": ["qla", "gqla", "gqla"]},
          {"field": "generatorsPerSite", "values": [1, 2, 4]}
        ]},
        {"field": "workload", "values": ["qrca", "qft"]}
      ]
    })"));
    const std::vector<SweepPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 6u);
    // (qla,1), (gqla,2), (gqla,4) each crossed with two workloads.
    EXPECT_EQ(points[0].config.at("arch").asString(), "qla");
    EXPECT_EQ(points[0].config.at("generatorsPerSite").asInt(), 1);
    EXPECT_EQ(points[0].config.at("workload").asString(), "qrca");
    EXPECT_EQ(points[1].config.at("workload").asString(), "qft");
    EXPECT_EQ(points[2].config.at("arch").asString(), "gqla");
    EXPECT_EQ(points[2].config.at("generatorsPerSite").asInt(), 2);
    EXPECT_EQ(points[4].config.at("generatorsPerSite").asInt(), 4);
}

TEST(SweepSpec, ZipLengthMismatchThrows)
{
    EXPECT_THROW(SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "axes": [
        {"zip": [
          {"field": "arch", "values": ["qla", "gqla"]},
          {"field": "generatorsPerSite", "values": [1, 2, 4]}
        ]}
      ]
    })")),
                 std::invalid_argument);
}

TEST(SweepSpec, GridsConcatenateAndMergeBases)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "base": {"bits": 8, "errors": {"pGate": 1e-4}},
      "grids": [
        {"axes": [{"field": "workload", "values": ["qrca"]}]},
        {"base": {"schedule": "arch", "errors": {"pMove": 1e-6}},
         "axes": [{"field": "workload",
                   "values": ["qrca", "qft"]}]}
      ]
    })"));
    const std::vector<SweepPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_FALSE(points[0].config.has("schedule"));
    EXPECT_EQ(points[1].config.at("schedule").asString(), "arch");
    // Nested objects merge key-by-key, not wholesale.
    EXPECT_DOUBLE_EQ(
        points[1].config.at("errors").at("pGate").asDouble(), 1e-4);
    EXPECT_DOUBLE_EQ(
        points[1].config.at("errors").at("pMove").asDouble(), 1e-6);
    EXPECT_EQ(points[2].config.at("bits").asInt(), 8);
}

TEST(SweepSpec, UnknownFieldListsValidFields)
{
    try {
        SweepSpec::fromJson(parse(R"({
          "runner": "experiment",
          "axes": [{"field": "pGait", "values": [1]}]
        })"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("pGait"), std::string::npos);
        EXPECT_NE(message.find("valid fields"), std::string::npos);
        EXPECT_NE(message.find("errors.pGate"), std::string::npos);
        EXPECT_NE(message.find("workload"), std::string::npos);
    }
}

TEST(SweepSpec, UnknownBaseKeyFailsFastToo)
{
    // A typo in the base must not silently sweep at the default
    // value; base keys get the same validation as axis fields.
    try {
        SweepSpec::fromJson(parse(R"({
          "runner": "mc-prep",
          "base": {"pgate": 1e-3},
          "axes": [{"field": "pMove", "values": [1e-6]}]
        })"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("pgate"), std::string::npos);
        EXPECT_NE(message.find("valid fields"), std::string::npos);
    }
    // Nested base objects validate by dotted path.
    EXPECT_THROW(SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "base": {"synth": {"maxSillables": 4}},
      "axes": [{"field": "bits", "values": [8]}]
    })")),
                 std::invalid_argument);
}

TEST(SweepSpec, UnknownRunnerListsRegisteredRunners)
{
    try {
        SweepSpec::fromJson(
            parse(R"({"runner": "quantum-vibes"})"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("quantum-vibes"), std::string::npos);
        EXPECT_NE(message.find("experiment"), std::string::npos);
        EXPECT_NE(message.find("mc-prep"), std::string::npos);
    }
}

TEST(SweepSpec, UnknownSpecOrGridKeysThrow)
{
    // "axis" instead of "axes" must not silently collapse the
    // sweep to a bare-base one-point run.
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"runner": "mc-prep",
                         "axis": [{"field": "pGate",
                                   "values": [1e-4]}]})")),
                 std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"grids": [{"axees": []}]})")),
                 std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(parse(R"({"grids": [1]})")),
                 std::invalid_argument);
}

TEST(SweepSpec, MalformedAxesThrow)
{
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"axes": [{"values": [1]}]})")),
                 std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"axes": [{"field": "bits",
                          "values": []}]})")),
                 std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"axes": [1], "grids": []})")),
                 std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(parse(
                     R"({"axes": [], "grids": []})")),
                 std::invalid_argument);
}

TEST(SweepSpec, JsonRoundTrips)
{
    const Json doc = parse(R"({
      "name": "trip",
      "runner": "experiment",
      "base": {"bits": 8},
      "grids": [
        {"axes": [{"field": "workload", "values": ["qrca"]}]},
        {"base": {"schedule": "arch"},
         "axes": [{"zip": [
            {"field": "arch", "values": ["qla", "cqla"]},
            {"field": "cacheSlots", "values": [1, 24]}]}]}
      ]
    })");
    const SweepSpec spec = SweepSpec::fromJson(doc);
    const SweepSpec back = SweepSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.toJson(), spec.toJson());
    EXPECT_EQ(back.points(), spec.points());
}

TEST(SweepSpec, SetJsonPathCreatesNestedObjects)
{
    Json j = Json::object();
    setJsonPath(j, "errors.pGate", Json(1e-3));
    setJsonPath(j, "errors.pMove", Json(1e-5));
    setJsonPath(j, "bits", Json(16));
    EXPECT_DOUBLE_EQ(j.at("errors").at("pGate").asDouble(), 1e-3);
    EXPECT_DOUBLE_EQ(j.at("errors").at("pMove").asDouble(), 1e-5);
    EXPECT_EQ(j.at("bits").asInt(), 16);
}

// ---------------------------------------------------------------
// Config hash hooks
// ---------------------------------------------------------------

TEST(ConfigHash, DistinguishesConfigsAndIgnoresKeyOrder)
{
    ExperimentConfig a;
    ExperimentConfig b;
    EXPECT_EQ(a.hash(), b.hash());
    b.errors.pGate = 2e-4;
    EXPECT_NE(a.hash(), b.hash());

    // Json::hash is order-insensitive by construction (sorted
    // keys).
    EXPECT_EQ(parse(R"({"a": 1, "b": 2})").hash(),
              parse(R"({"b": 2, "a": 1})").hash());
    EXPECT_NE(parse(R"({"a": 1})").hash(), parse(R"({"a": 2})").hash());
}

TEST(ConfigHash, WorkloadKeyCoversOnlyWorkloadIdentity)
{
    ExperimentConfig a;
    ExperimentConfig b;
    b.schedule = ScheduleMode::Arch;
    b.errors.pGate = 9e-4;
    EXPECT_EQ(a.workloadKey(), b.workloadKey());
    b.params.bits = 12;
    EXPECT_NE(a.workloadKey(), b.workloadKey());
}

// ---------------------------------------------------------------
// Engine: memoization, determinism, error capture
// ---------------------------------------------------------------

/** A degenerate axis with repeated values: 4 points, 2 unique. */
SweepSpec
duplicateSpec()
{
    return SweepSpec::fromJson(parse(R"({
      "name": "dupes",
      "runner": "mc-prep",
      "base": {"trials": 20000, "seed": 7},
      "axes": [
        {"field": "pGate",
         "values": [1e-4, 3e-4, 1e-4, 3e-4]}
      ]
    })"));
}

TEST(SweepEngine, MemoizesDuplicatePointsByConfigHash)
{
    const SweepReport report = runSweep(duplicateSpec());
    EXPECT_EQ(report.points, 4u);
    EXPECT_EQ(report.cacheMisses, 2u);
    EXPECT_EQ(report.cacheHits, 2u);
    EXPECT_EQ(report.failed, 0u);

    const Json &points = report.doc.at("points");
    ASSERT_EQ(points.size(), 4u);
    // Duplicates share the hash and the full result.
    EXPECT_EQ(points.at(0).at("config_hash"),
              points.at(2).at("config_hash"));
    EXPECT_EQ(points.at(0).at("error_rate"),
              points.at(2).at("error_rate"));
    EXPECT_NE(points.at(0).at("config_hash"),
              points.at(1).at("config_hash"));
    // And the accounting lands in the document.
    EXPECT_EQ(report.doc.at("cache").at("hits").asInt(), 2);
    EXPECT_EQ(report.doc.at("cache").at("misses").asInt(), 2);
}

TEST(SweepEngine, AggregatedJsonIsThreadCountInvariant)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "name": "threads",
      "runner": "mc-prep",
      "base": {"trials": 50000, "seed": 11},
      "axes": [
        {"field": "strategy",
         "values": ["basic", "verify_and_correct"]},
        {"field": "pGate", "values": [1e-4, 3e-4, 1e-3]}
      ]
    })"));
    SweepOptions one;
    one.threads = 1;
    SweepOptions four;
    four.threads = 4;
    const std::string a = runSweep(spec, one).doc.dump();
    const std::string b = runSweep(spec, four).doc.dump();
    EXPECT_EQ(a, b);
}

TEST(SweepEngine, ExperimentSweepIsThreadCountInvariant)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "name": "exp-threads",
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 6,
               "synth": {"maxSyllables": 3}},
      "axes": [
        {"field": "schedule",
         "values": ["speed-of-data", "arch"]},
        {"field": "codeLevel", "values": [1, 2]}
      ]
    })"));
    SweepOptions one;
    one.threads = 1;
    SweepOptions four;
    four.threads = 4;
    const std::string a = runSweep(spec, one).doc.dump();
    const std::string b = runSweep(spec, four).doc.dump();
    EXPECT_EQ(a, b);
}

TEST(SweepEngine, PointErrorsAreCapturedNotFatal)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 1000},
      "axes": [
        {"field": "strategy", "values": ["basic", "bogus"]}
      ]
    })"));
    const SweepReport report = runSweep(spec);
    EXPECT_EQ(report.failed, 1u);
    const Json &points = report.doc.at("points");
    EXPECT_FALSE(points.at(0).has("error"));
    EXPECT_TRUE(points.at(1).has("error"));
    EXPECT_NE(points.at(1).at("error").asString().find("bogus"),
              std::string::npos);
}

TEST(SweepEngine, ProgressReportsEveryPointOnce)
{
    std::size_t calls = 0;
    std::size_t cached = 0;
    std::size_t lastDone = 0;
    SweepOptions options;
    options.progress = [&](const SweepProgress &p) {
        ++calls;
        cached += p.cached ? 1 : 0;
        lastDone = p.done;
        EXPECT_EQ(p.total, 4u);
        ASSERT_NE(p.point, nullptr);
    };
    runSweep(duplicateSpec(), options);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(cached, 2u);
    EXPECT_EQ(lastDone, 4u);
}

// ---------------------------------------------------------------
// Runners: parity with the direct engines
// ---------------------------------------------------------------

TEST(SweepRunners, McPrepPointMatchesDirectBatchSim)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 100000, "seed": 20080623,
               "strategy": "verify_and_correct",
               "pGate": 3e-4, "pMove": 1e-6}
    })"));
    const SweepReport report = runSweep(spec);
    ASSERT_EQ(report.points, 1u);
    const Json &point = report.doc.at("points").at(0);

    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    ErrorParams errors;
    errors.pGate = 3e-4;
    BatchAncillaSim sim(errors, movement, 20080623);
    const PrepEstimate est =
        sim.estimate(ZeroPrepStrategy::VerifyAndCorrect, 100000);
    EXPECT_DOUBLE_EQ(point.at("error_rate").asDouble(),
                     est.errorRate());
    EXPECT_DOUBLE_EQ(point.at("verify_fail_rate").asDouble(),
                     est.discardRate());
    EXPECT_FALSE(point.at("paper_point").asBool());
}

TEST(SweepRunners, McPrepStratifiedPointMatchesDirectSampler)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"sampler": "stratified", "maxFaults": 3,
               "trialsPerStratum": 5000, "seed": 20080623,
               "strategy": "verify_and_correct",
               "pGate": 1e-5, "pMove": 1e-7}
    })"));
    const SweepReport report = runSweep(spec);
    ASSERT_EQ(report.points, 1u);
    const Json &point = report.doc.at("points").at(0);

    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    ErrorParams errors;
    errors.pGate = 1e-5;
    errors.pMove = 1e-7;
    BatchAncillaSim sim(errors, movement, 20080623);
    ImportanceConfig config;
    config.maxFaults = 3;
    config.trialsPerStratum = 5000;
    const StratifiedEstimate est = sim.estimateStratified(
        ZeroPrepStrategy::VerifyAndCorrect, config);
    const Interval ci = est.errorInterval();
    EXPECT_DOUBLE_EQ(point.at("error_rate").asDouble(),
                     est.errorRate());
    EXPECT_DOUBLE_EQ(point.at("ci_lo").asDouble(), ci.lo);
    EXPECT_DOUBLE_EQ(point.at("ci_hi").asDouble(), ci.hi);
    EXPECT_EQ(point.at("gate_sites").asInt(),
              static_cast<std::int64_t>(est.gateSites));
    EXPECT_EQ(point.at("move_sites").asInt(),
              static_cast<std::int64_t>(est.moveSites));
    EXPECT_DOUBLE_EQ(point.at("truncated_prior").asDouble(),
                     est.truncatedPrior);
}

TEST(SweepRunners, McPrepForcedWidthMatchesAutoByteForByte)
{
    // The runner deliberately omits the width from its output:
    // every width is bit-identical, so the serialized report must
    // not change when one is forced.
    const char *base = R"({
      "runner": "mc-prep",
      "base": {"trials": 50000, "seed": 7,
               "strategy": "basic", "pGate": 1e-3%s}
    })";
    char autoSpec[512], forcedSpec[512];
    std::snprintf(autoSpec, sizeof autoSpec, base, "");
    std::snprintf(forcedSpec, sizeof forcedSpec, base,
                  ", \"width\": \"scalar-fallback\"");
    const SweepReport a =
        runSweep(SweepSpec::fromJson(parse(autoSpec)));
    const SweepReport b =
        runSweep(SweepSpec::fromJson(parse(forcedSpec)));
    const Json &pa = a.doc.at("points").at(0);
    const Json &pb = b.doc.at("points").at(0);
    // Every result key is identical; only the config hash (which
    // covers the width field itself) may differ.
    for (const auto &[key, value] : pa.items()) {
        if (key == "config_hash")
            continue;
        ASSERT_TRUE(pb.has(key)) << key;
        EXPECT_EQ(value.dump(), pb.at(key).dump()) << key;
    }
    EXPECT_EQ(pa.items().size(), pb.items().size());
}

TEST(SweepRunners, McPrepRejectsUnknownSamplerAndWidth)
{
    // Per-point failures surface as an "error" key on the point,
    // not as an exception out of the engine.
    const SweepReport badSampler =
        runSweep(SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 10, "sampler": "metropolis"}
    })")));
    const Json &p0 = badSampler.doc.at("points").at(0);
    ASSERT_TRUE(p0.has("error"));
    EXPECT_NE(p0.at("error").asString().find("sampler"),
              std::string::npos);

    const SweepReport badWidth =
        runSweep(SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 10, "width": "wide"}
    })")));
    const Json &p1 = badWidth.doc.at("points").at(0);
    ASSERT_TRUE(p1.has("error"));
    EXPECT_NE(p1.at("error").asString().find("width"),
              std::string::npos);
}

TEST(SweepRunners, ExperimentPointMatchesRunExperiment)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 8,
               "synth": {"maxSyllables": 3}},
      "axes": [{"field": "codeLevel", "values": [1, 2]}]
    })"));
    const SweepReport report = runSweep(spec);
    const Json &points = report.doc.at("points");

    ExperimentConfig config;
    config.workload = "qrca";
    config.params.bits = 8;
    config.synth.maxSyllables = 3;
    for (std::size_t i = 0; i < 2; ++i) {
        config.codeLevel = static_cast<int>(i) + 1;
        const Result expected = runExperiment(config);
        const Json &point = points.at(i);
        EXPECT_DOUBLE_EQ(point.at("makespan_ms").asDouble(),
                         toMs(expected.makespan));
        EXPECT_DOUBLE_EQ(point.at("klops").asDouble(),
                         expected.klops());
        EXPECT_DOUBLE_EQ(point.at("factory_area").asDouble(),
                         expected.allocation.totalArea());
    }
}

TEST(SweepRunners, ZeroPerMsOfAverageThrottlesRelativeToWorkload)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 8,
               "synth": {"maxSyllables": 3},
               "schedule": "throttled"},
      "axes": [{"field": "zeroPerMsOfAverage",
                "values": [0.25, 100.0]}]
    })"));
    const SweepReport report = runSweep(spec);
    const Json &points = report.doc.at("points");
    const double starved =
        points.at(0).at("makespan_ms").asDouble();
    const double flooded =
        points.at(1).at("makespan_ms").asDouble();
    // The flooded run sits at the speed-of-data plateau; the
    // starved run pays for the supply gap.
    EXPECT_GT(starved, 3.0 * flooded);
    EXPECT_GT(points.at(0).at("slowdown").asDouble(), 3.0);
    EXPECT_NEAR(points.at(1).at("slowdown").asDouble(), 1.0, 0.35);
    EXPECT_GT(points.at(1).at("zero_supply_per_ms").asDouble(),
              points.at(0).at("zero_supply_per_ms").asDouble());
}

TEST(SweepRunners, ZeroPerMsOfAverageRejectsNonThrottledSchedule)
{
    // The fraction knob must not silently override a conflicting
    // schedule axis; the point records the error instead.
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 6,
               "synth": {"maxSyllables": 3},
               "zeroPerMsOfAverage": 0.5},
      "axes": [{"field": "schedule",
                "values": ["arch", "throttled"]}]
    })"));
    const SweepReport report = runSweep(spec);
    EXPECT_EQ(report.failed, 1u);
    const Json &points = report.doc.at("points");
    EXPECT_TRUE(points.at(0).has("error"));
    EXPECT_NE(points.at(0).at("error").asString().find("throttled"),
              std::string::npos);
    EXPECT_FALSE(points.at(1).has("error"));
}

// ---------------------------------------------------------------
// Resume: interrupted sweeps restart incrementally and the merged
// document is byte-identical to a fresh single-shot run.
// ---------------------------------------------------------------

namespace resume_specs {

const char *kHalf = R"({
  "name": "resume",
  "runner": "mc-prep",
  "base": {"trials": 20000, "seed": 7},
  "axes": [
    {"field": "strategy", "values": ["basic"]},
    {"field": "pGate", "values": [1e-4, 3e-4]}
  ]
})";

const char *kFull = R"({
  "name": "resume",
  "runner": "mc-prep",
  "base": {"trials": 20000, "seed": 7},
  "axes": [
    {"field": "strategy", "values": ["basic", "verify_only"]},
    {"field": "pGate", "values": [1e-4, 3e-4]}
  ]
})";

} // namespace resume_specs

TEST(SweepResume, HalfRunThenResumeIsByteIdenticalToFreshRun)
{
    // "Interrupt at half": run the first half of the grid as its
    // own sweep, then hand its output to the full sweep as the
    // resume document.
    const SweepSpec half =
        SweepSpec::fromJson(parse(resume_specs::kHalf));
    const SweepSpec full =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    const SweepReport halfReport = runSweep(half);

    SweepOptions options;
    options.resume = &halfReport.doc;
    const SweepReport resumed = runSweep(full, options);
    const SweepReport fresh = runSweep(full);

    EXPECT_EQ(resumed.doc.dump(), fresh.doc.dump());
    // Memo/skip accounting: 2 of the 4 unique points came from the
    // file, the other 2 executed; the memo split is unchanged.
    EXPECT_EQ(resumed.points, 4u);
    EXPECT_EQ(resumed.resumed, 2u);
    EXPECT_EQ(resumed.executed, 2u);
    EXPECT_EQ(resumed.cacheMisses, 4u);
    EXPECT_EQ(fresh.resumed, 0u);
    EXPECT_EQ(fresh.executed, 4u);
    // The resumed document carries no trace of the resume (it is
    // byte-identical), and documents declare their schema.
    EXPECT_EQ(resumed.doc.at("schema_version").asInt(),
              kResultSchemaVersion);
}

TEST(SweepResume, FullResumeExecutesNothing)
{
    const SweepSpec full =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    const SweepReport fresh = runSweep(full);
    SweepOptions options;
    options.resume = &fresh.doc;
    const SweepReport resumed = runSweep(full, options);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.resumed, 4u);
    EXPECT_EQ(resumed.doc.dump(), fresh.doc.dump());
}

TEST(SweepResume, CheckpointFileResumesAKilledRun)
{
    // A genuinely killed run leaves only the checkpoint file. With
    // checkpointSeconds = 0 and one thread, the file after point 2
    // is exactly the "killed half-way" state: two finished points,
    // two {"error": "interrupted"} stubs. Resuming from it must
    // execute exactly the stubs and reproduce the fresh document
    // byte-for-byte.
    const SweepSpec full =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    const std::string path =
        ::testing::TempDir() + "qc_sweep_checkpoint.json";
    SweepOptions options;
    options.threads = 1;
    options.checkpointPath = path;
    options.checkpointSeconds = 0;
    Json killed;
    options.progress = [&](const SweepProgress &p) {
        if (p.done == 2)
            killed = Json::loadFile(path);
    };
    const SweepReport fresh = runSweep(full, options);

    ASSERT_TRUE(killed.isObject());
    std::size_t interrupted = 0;
    for (std::size_t i = 0; i < killed.at("points").size(); ++i)
        interrupted += killed.at("points").at(i).has("error");
    EXPECT_EQ(interrupted, 2u);

    SweepOptions resumeOptions;
    resumeOptions.resume = &killed;
    const SweepReport resumed = runSweep(full, resumeOptions);
    EXPECT_EQ(resumed.resumed, 2u);
    EXPECT_EQ(resumed.executed, 2u);
    EXPECT_EQ(resumed.failed, 0u);
    EXPECT_EQ(resumed.doc.dump(), fresh.doc.dump());

    // The final checkpoint equals the final document.
    EXPECT_EQ(Json::loadFile(path).dump(), fresh.doc.dump());
}

TEST(SweepResume, AssignmentShapeChangesReExecuteInsteadOfDrifting)
{
    // Same merged config, different axis assignment (the value
    // moved from an axis into the base between runs): replaying
    // the stored object would change the output shape, so the
    // point must re-execute — byte-identity beats reuse.
    const SweepSpec prior = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 20000, "seed": 7},
      "axes": [
        {"field": "strategy", "values": ["basic"]},
        {"field": "pGate", "values": [1e-4]}
      ]
    })"));
    const SweepSpec reshaped = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 20000, "seed": 7, "strategy": "basic"},
      "axes": [{"field": "pGate", "values": [1e-4]}]
    })"));
    const SweepReport old = runSweep(prior);
    SweepOptions options;
    options.resume = &old.doc;
    const SweepReport resumed = runSweep(reshaped, options);
    EXPECT_EQ(resumed.resumed, 0u);
    EXPECT_EQ(resumed.executed, 1u);
    EXPECT_EQ(resumed.doc.dump(), runSweep(reshaped).doc.dump());
}

TEST(SweepResume, FailedPointsAreRetriedOnResume)
{
    // A stored {"error": ...} point must not be treated as done.
    const SweepSpec bad = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 1000},
      "axes": [{"field": "strategy",
                "values": ["basic", "bogus"]}]
    })"));
    const SweepReport broken = runSweep(bad);
    ASSERT_EQ(broken.failed, 1u);
    SweepOptions options;
    options.resume = &broken.doc;
    const SweepReport resumed = runSweep(bad, options);
    EXPECT_EQ(resumed.resumed, 1u);
    EXPECT_EQ(resumed.executed, 1u); // the failed point re-ran
    EXPECT_EQ(resumed.failed, 1u);   // ...and failed again
}

TEST(SweepResume, RejectsMalformedResumeDocuments)
{
    const SweepSpec spec =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    auto expectThrow = [&](const Json &doc, const char *what) {
        SweepOptions options;
        options.resume = &doc;
        EXPECT_THROW(runSweep(spec, options),
                     std::invalid_argument)
            << what;
    };
    expectThrow(parse(R"({"not": "a sweep output"})"),
                "missing spec/points");
    expectThrow(parse(R"([1, 2, 3])"), "not an object");

    // Truncated points array (as from a killed run).
    const SweepReport fresh = runSweep(spec);
    Json truncated = Json::object();
    truncated.set("spec", fresh.doc.at("spec"));
    Json somePoints = Json::array();
    somePoints.push(fresh.doc.at("points").at(0));
    truncated.set("points", somePoints);
    expectThrow(truncated, "truncated points");

    // Edited config_hash.
    Json edited = fresh.doc;
    Json points = Json::array();
    for (std::size_t i = 0; i < fresh.doc.at("points").size();
         ++i) {
        Json p = fresh.doc.at("points").at(i);
        p.set("config_hash", "0000000000000000");
        points.push(p);
    }
    edited.set("points", points);
    expectThrow(edited, "config_hash mismatch");

    // Wrong runner.
    const SweepReport other = runSweep(SweepSpec::fromJson(parse(
        R"({"runner": "experiment",
            "base": {"workload": "qrca", "bits": 6,
                     "synth": {"maxSyllables": 3}}})")));
    expectThrow(other.doc, "runner mismatch");
}

TEST(SweepEngine, ZeroPointSpecsThrowInsteadOfEmittingNothing)
{
    SweepSpec empty;
    empty.runner = "mc-prep";
    EXPECT_THROW(runSweep(empty), std::invalid_argument);
}

TEST(SweepEngine, MoreThreadsThanPointsIsFine)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "runner": "mc-prep",
      "base": {"trials": 5000, "seed": 3},
      "axes": [{"field": "pGate", "values": [1e-4, 3e-4]}]
    })"));
    SweepOptions narrow;
    narrow.threads = 1;
    SweepOptions wide;
    wide.threads = 64;
    const SweepReport a = runSweep(spec, narrow);
    const SweepReport b = runSweep(spec, wide);
    EXPECT_EQ(a.doc.dump(), b.doc.dump());
    EXPECT_EQ(b.failed, 0u);
}

// ---------------------------------------------------------------
// Const-shared-workload mode: one immutable (workload, graph)
// bundle across points, bit-identical to per-point construction.
// ---------------------------------------------------------------

TEST(SharedWorkload, SharedGraphResultsMatchPerPointBuilds)
{
    ExperimentConfig config;
    config.workload = "qrca";
    config.params.bits = 8;
    config.synth.maxSyllables = 3;

    FowlerSynth synth(config.synth);
    SharedWorkload shared = makeSharedWorkload(
        WorkloadRegistry::instance().build("qrca", synth,
                                           config.params));
    ASSERT_NE(shared.workload, nullptr);
    ASSERT_NE(shared.graph, nullptr);
    EXPECT_EQ(&shared.graph->circuit(),
              &shared.workload->lowered.circuit);

    for (auto schedule :
         {ScheduleMode::SpeedOfData, ScheduleMode::Arch}) {
        config.schedule = schedule;
        Experiment sharedMode(config, shared);
        Experiment workloadOnly(config, shared.workload);
        Experiment fresh(config);
        const std::string a = sharedMode.run().toJson().dump();
        EXPECT_EQ(a, workloadOnly.run().toJson().dump())
            << scheduleModeName(schedule);
        EXPECT_EQ(a, fresh.run().toJson().dump())
            << scheduleModeName(schedule);
    }
}

// ---------------------------------------------------------------
// Shipped specs (single source of truth for the benches)
// ---------------------------------------------------------------

TEST(ShippedSpecs, ParseAndExpandToExpectedCounts)
{
    const struct
    {
        const char *file;
        std::size_t points;
        const char *runner;
    } specs[] = {
        // 30-point (strategy, pGate, pMove) grid plus the 2-point
        // paper-point semantics comparison (Fig 4c ApplyFix).
        {"/fig4_grid.json", 32, "mc-prep"},
        {"/fig8_throughput.json", 30, "experiment"},
        {"/fig15_arch.json", 60, "experiment"},
        {"/level2_scaling.json", 12, "experiment"},
        {"/ci_smoke.json", 4, "experiment"},
        // First half of ci_smoke, for the CI resume gate.
        {"/ci_smoke_half.json", 2, "experiment"},
    };
    for (const auto &s : specs) {
        const SweepSpec spec =
            SweepSpec::load(std::string(QC_SPEC_DIR) + s.file);
        EXPECT_EQ(spec.points(), s.points) << s.file;
        EXPECT_EQ(spec.runner, s.runner) << s.file;
        EXPECT_EQ(spec.expand().size(), s.points) << s.file;
    }
}

// ---------------------------------------------------------------
// Work-stealing pool
// ---------------------------------------------------------------

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce)
{
    WorkStealingPool pool(4);
    std::vector<std::atomic<int>> hits(503);
    pool.run(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingPool, PropagatesTheFirstException)
{
    WorkStealingPool pool(2);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                              if (i == 13)
                                  throw std::runtime_error("boom");
                              completed.fetch_add(1);
                          }),
                 std::runtime_error);
    // The failing task does not abandon the rest of the sweep.
    EXPECT_EQ(completed.load(), 63);
}

TEST(WorkStealingPool, SurvivesEveryTaskThrowing)
{
    // Worst case for the drain-then-rethrow contract: all tasks
    // throw on all workers. run() must still terminate (no
    // deadlock, no std::terminate from a second in-flight
    // exception) and rethrow exactly one of them.
    WorkStealingPool pool(4);
    std::atomic<int> attempts{0};
    EXPECT_THROW(pool.run(97,
                          [&](std::size_t) {
                              attempts.fetch_add(1);
                              throw std::invalid_argument("all");
                          }),
                 std::invalid_argument);
    EXPECT_EQ(attempts.load(), 97);

    // The pool object is reusable after a throwing run.
    std::atomic<int> completed{0};
    pool.run(16, [&](std::size_t) { completed.fetch_add(1); });
    EXPECT_EQ(completed.load(), 16);
}

TEST(WorkStealingPool, StopPredicateDrainsWithoutNewTasks)
{
    // A stop that is true from the start runs nothing.
    WorkStealingPool pool(2);
    std::atomic<int> ran{0};
    pool.run(
        64, [&](std::size_t) { ran.fetch_add(1); },
        [] { return true; });
    EXPECT_EQ(ran.load(), 0);

    // A stop raised mid-run keeps every started task's effect and
    // never starts another after the flag is observed.
    std::atomic<bool> stop{false};
    std::atomic<int> started{0};
    WorkStealingPool serial(1);
    serial.run(
        64,
        [&](std::size_t) {
            if (started.fetch_add(1) + 1 == 5)
                stop.store(true);
        },
        [&] { return stop.load(); });
    EXPECT_EQ(started.load(), 5);
}

// ---------------------------------------------------------------
// Checkpoint cadence and graceful drain
// ---------------------------------------------------------------

TEST(SweepEngine, CheckpointSecondsZeroWritesAfterEveryPoint)
{
    // With checkpointSeconds = 0 and one thread, the checkpoint on
    // disk is never more than zero points behind: at every
    // progress tick for an executed point the file already holds
    // exactly `done` finished entries.
    const SweepSpec spec =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    const std::string path =
        ::testing::TempDir() + "qc_sweep_everypoint.json";
    std::remove(path.c_str());
    SweepOptions options;
    options.threads = 1;
    options.checkpointPath = path;
    options.checkpointSeconds = 0;
    std::size_t checked = 0;
    options.progress = [&](const SweepProgress &p) {
        const Json snapshot = Json::loadFile(path);
        std::size_t finished = 0;
        for (std::size_t i = 0; i < snapshot.at("points").size();
             ++i)
            finished +=
                !snapshot.at("points").at(i).has("error");
        EXPECT_EQ(finished, p.done);
        ++checked;
    };
    const SweepReport report = runSweep(spec, options);
    EXPECT_EQ(checked, report.points);
    std::remove(path.c_str());
}

/** A deliberately slow deterministic runner for checkpoint-cadence
 *  tests. */
class SlowTestRunner : public SweepRunner
{
  public:
    std::string name() const override { return "test-slow"; }
    std::string description() const override
    {
        return "test-only: sleeps 10 ms per point";
    }
    std::vector<std::string> fields() const override
    {
        return {"x"};
    }
    Json runPoint(const Json &config,
                  SweepContext &) const override
    {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
        Json result = Json::object();
        result.set("y", config.at("x").asDouble() * 2);
        return result;
    }
};

TEST(SweepEngine, CheckpointHappensBetweenSlowPoints)
{
    // A single point slower than checkpointSeconds must not
    // suppress checkpointing: the interval gates how OFTEN the
    // engine writes, not whether a finished point reaches disk —
    // each completed point checks the clock, so a checkpoint lands
    // after the slow point even though the interval elapsed
    // mid-point.
    SweepRunnerRegistry::instance().add(
        "test-slow", std::make_shared<SlowTestRunner>());
    const SweepSpec spec = SweepSpec::fromJson(parse(R"({
      "name": "slow",
      "runner": "test-slow",
      "axes": [{"field": "x", "values": [1, 2, 3]}]
    })"));
    const std::string path =
        ::testing::TempDir() + "qc_sweep_slowpoint.json";
    std::remove(path.c_str());
    SweepOptions options;
    options.threads = 1;
    options.checkpointPath = path;
    options.checkpointSeconds = 0.002; // each point takes ~10 ms
    bool sawIntermediate = false;
    options.progress = [&](const SweepProgress &p) {
        if (p.done < p.total) {
            std::error_code ec;
            sawIntermediate |=
                std::filesystem::exists(path, ec);
        }
    };
    const SweepReport report = runSweep(spec, options);
    EXPECT_TRUE(sawIntermediate);
    // The final checkpoint equals the final document.
    EXPECT_EQ(Json::loadFile(path).dump(), report.doc.dump());
    std::remove(path.c_str());
}

TEST(SweepEngine, StopRequestedDrainsToAResumableCheckpoint)
{
    // The SIGINT/SIGTERM path, minus the signal: stop after two
    // points, expect interrupted accounting, a checkpoint whose
    // stubs re-run on resume, and byte-identity with a fresh run.
    const SweepSpec spec =
        SweepSpec::fromJson(parse(resume_specs::kFull));
    const std::string path =
        ::testing::TempDir() + "qc_sweep_drain.json";
    std::remove(path.c_str());
    const SweepReport fresh = runSweep(spec);

    std::size_t done = 0;
    SweepOptions options;
    options.threads = 1;
    options.checkpointPath = path;
    options.checkpointSeconds = 0;
    options.progress = [&](const SweepProgress &) { ++done; };
    options.stopRequested = [&] { return done >= 2; };
    const SweepReport drained = runSweep(spec, options);
    EXPECT_EQ(drained.interrupted, 2u);
    EXPECT_EQ(drained.executed, 4u); // planned; only 2 ran

    const Json checkpoint = Json::loadFile(path);
    SweepOptions resumeOptions;
    resumeOptions.resume = &checkpoint;
    const SweepReport resumed = runSweep(spec, resumeOptions);
    EXPECT_EQ(resumed.resumed, 2u);
    EXPECT_EQ(resumed.executed, 2u);
    EXPECT_EQ(resumed.interrupted, 0u);
    EXPECT_EQ(resumed.doc.dump(), fresh.doc.dump());
    std::remove(path.c_str());
}

} // namespace
} // namespace qc
