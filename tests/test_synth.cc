/**
 * @file
 * Unit tests for the Fowler rotation-word search: Su2 algebra,
 * exact Clifford/T cases, inversion, and approximation quality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "synth/Fowler.hh"
#include "synth/Su2.hh"

namespace qc {
namespace {

TEST(Su2, IdentityDistanceZero)
{
    EXPECT_DOUBLE_EQ(Su2::identity().distTo(Su2::identity()), 0.0);
}

TEST(Su2, GlobalPhaseInvariance)
{
    // Z = e^{i pi/2} diag(e^{-i pi/2}, e^{i pi/2}); phase() differs
    // from the traceless convention by a global phase only.
    const Su2 z1 = Su2::zGate();
    const Su2 z2(-1.0, 0.0, 0.0, 1.0);
    EXPECT_NEAR(z1.distTo(z2), 0.0, 1e-12);
}

TEST(Su2, HIsInvolution)
{
    const Su2 h2 = Su2::hGate() * Su2::hGate();
    EXPECT_NEAR(h2.distTo(Su2::identity()), 0.0, 1e-12);
}

TEST(Su2, TSquaredIsS)
{
    const Su2 t2 = Su2::tGate() * Su2::tGate();
    EXPECT_NEAR(t2.distTo(Su2::sGate()), 0.0, 1e-12);
}

TEST(Su2, SSquaredIsZ)
{
    const Su2 s2 = Su2::sGate() * Su2::sGate();
    EXPECT_NEAR(s2.distTo(Su2::zGate()), 0.0, 1e-12);
}

TEST(Su2, TdgIsInverseOfT)
{
    const Su2 prod = Su2::tGate() * Su2::tdgGate();
    EXPECT_NEAR(prod.distTo(Su2::identity()), 0.0, 1e-12);
}

TEST(Su2, DaggerInverts)
{
    const Su2 u = Su2::hGate() * Su2::tGate() * Su2::hGate();
    EXPECT_NEAR((u.dagger() * u).distTo(Su2::identity()), 0.0, 1e-12);
}

TEST(Su2, RotZMatchesPhase)
{
    EXPECT_NEAR(Su2::rotZ(2).distTo(Su2::tGate()), 0.0, 1e-12);
    EXPECT_NEAR(Su2::rotZ(1).distTo(Su2::sGate()), 0.0, 1e-12);
    EXPECT_NEAR(Su2::rotZ(0).distTo(Su2::zGate()), 0.0, 1e-12);
    EXPECT_NEAR(Su2::rotZ(-2).distTo(Su2::tdgGate()), 0.0, 1e-12);
}

TEST(Su2, DistanceScalesWithAngle)
{
    // |tr(I . rotZ(theta))| = |1 + e^{i theta}| = 2 cos(theta/2),
    // so dist(I, rotZ(k)) = sqrt(1 - cos(pi / 2^{k+1})).
    for (int k = 3; k <= 8; ++k) {
        const double expected = std::sqrt(
            1.0 - std::cos(M_PI / std::ldexp(2.0, k)));
        EXPECT_NEAR(Su2::identity().distTo(Su2::rotZ(k)), expected,
                    1e-12)
            << "k=" << k;
    }
}

class FowlerTest : public ::testing::Test
{
  protected:
    FowlerSynth synth_{FowlerSynth::Options{5, 1e-3}};
};

TEST_F(FowlerTest, ExactCliffordCases)
{
    EXPECT_TRUE(synth_.rotZ(0).exact());
    EXPECT_TRUE(synth_.rotZ(1).exact());
    EXPECT_TRUE(synth_.rotZ(2).exact());
    EXPECT_EQ(synth_.rotZ(2).gates.size(), 1u);
    EXPECT_EQ(synth_.rotZ(2).gates[0], GateKind::T);
    EXPECT_EQ(synth_.rotZ(-1).gates[0], GateKind::Sdg);
}

TEST_F(FowlerTest, WordUnitaryMatchesReportedError)
{
    for (int k = 3; k <= 6; ++k) {
        const ApproxSequence &seq = synth_.rotZ(k);
        const double actual = seq.unitary().distTo(Su2::rotZ(k));
        EXPECT_NEAR(actual, seq.error, 1e-9) << "k=" << k;
    }
}

TEST_F(FowlerTest, InvertedWordImplementsInverse)
{
    const ApproxSequence &fwd = synth_.rotZ(4);
    const ApproxSequence inv = fwd.inverted();
    const Su2 prod = inv.unitary() * fwd.unitary();
    // word * inverse-word is exactly identity (word-level inverse).
    EXPECT_NEAR(prod.distTo(Su2::identity()), 0.0, 1e-9);
}

TEST_F(FowlerTest, NegativeKUsesInvertedCachedWord)
{
    const ApproxSequence &neg = synth_.rotZ(-4);
    const double err = neg.unitary().distTo(Su2::rotZ(-4));
    EXPECT_NEAR(err, neg.error, 1e-9);
}

TEST_F(FowlerTest, TinyRotationsApproximatedByShortWords)
{
    // For k >= 11 the identity is already within 1e-3 of the target,
    // so the search must return a word no worse than that.
    const ApproxSequence &seq = synth_.rotZ(12);
    EXPECT_LE(seq.error, 1e-3);
    EXPECT_LE(seq.size(), 2);
}

TEST_F(FowlerTest, ErrorImprovesOrMatchesTrivialWord)
{
    // The search must never be worse than the empty word.
    for (int k = 3; k <= 10; ++k) {
        const double trivial =
            Su2::identity().distTo(Su2::rotZ(k));
        EXPECT_LE(synth_.rotZ(k).error, trivial + 1e-12)
            << "k=" << k;
    }
}

TEST_F(FowlerTest, DeeperSearchIsNoWorse)
{
    FowlerSynth shallow(FowlerSynth::Options{3, 1e-3});
    FowlerSynth deep(FowlerSynth::Options{6, 1e-3});
    for (int k = 3; k <= 5; ++k) {
        EXPECT_LE(deep.rotZ(k).error, shallow.rotZ(k).error + 1e-12)
            << "k=" << k;
    }
}

TEST_F(FowlerTest, TCountCountsOnlyTGates)
{
    ApproxSequence seq;
    seq.gates = {GateKind::H, GateKind::T, GateKind::S, GateKind::Tdg,
                 GateKind::Z};
    EXPECT_EQ(seq.tCount(), 2);
    EXPECT_EQ(seq.size(), 5);
}

TEST_F(FowlerTest, CacheReturnsSameObject)
{
    const ApproxSequence &a = synth_.rotZ(5);
    const ApproxSequence &b = synth_.rotZ(5);
    EXPECT_EQ(&a, &b);
}

TEST(FowlerSearch, ExactTargetsFoundInSearchSpace)
{
    // H T H is in the space; searching for it must give error ~0 and
    // a short word.
    FowlerSynth synth(FowlerSynth::Options{3, 1e-6});
    const Su2 target =
        Su2::hGate() * Su2::tGate() * Su2::hGate();
    const ApproxSequence seq = synth.search(target);
    EXPECT_NEAR(seq.error, 0.0, 1e-9);
    EXPECT_LE(seq.size(), 3);
}

TEST(FowlerSearch, SGateFoundAsSingleGate)
{
    FowlerSynth synth(FowlerSynth::Options{2, 1e-6});
    const ApproxSequence seq = synth.search(Su2::sGate());
    EXPECT_NEAR(seq.error, 0.0, 1e-9);
    EXPECT_EQ(seq.size(), 1);
    EXPECT_EQ(seq.gates[0], GateKind::S);
}

TEST(FowlerDeath, RejectsBadOptions)
{
    EXPECT_DEATH(FowlerSynth(FowlerSynth::Options{0, 1e-3}),
                 "maxSyllables");
}

} // namespace
} // namespace qc
