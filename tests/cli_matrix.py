#!/usr/bin/env python3
"""Table-driven audit of qcarch's command-line contract.

Every bad invocation — unknown command, unknown subcommand, unknown
flag, missing option value, malformed numeric value, wrong
positional count — must exit 2 and print a one-line usage pointer
on stderr. Well-formed commands whose *input* is bad (unreadable
file) keep exit 1; this is the boundary the CLI's header documents
and the serve/sweep wrappers in CI rely on to tell "retry with a
fixed file" from "fix the script".

Usage: cli_matrix.py <path-to-qcarch>
"""

import subprocess
import sys

USAGE_LINE = "usage: qcarch"

# (description, argv-after-binary, expected-exit, expect-usage-line)
CASES = [
    ("no command at all", [], 2, True),
    ("unknown command", ["frobnicate"], 2, True),
    ("unknown command resembling a flag", ["--threads"], 2, True),
    ("run with no config", ["run"], 2, True),
    ("run with two configs", ["run", "a.json", "b.json"], 2, True),
    ("run with unknown flag", ["run", "a.json", "--format", "csv"],
     2, True),
    ("sweep with no spec", ["sweep"], 2, True),
    ("sweep with misspelled flag",
     ["sweep", "spec.json", "--thread", "4"], 2, True),
    ("sweep --threads missing value",
     ["sweep", "spec.json", "--threads"], 2, True),
    ("sweep --threads non-numeric",
     ["sweep", "spec.json", "--threads", "four"], 2, True),
    ("sweep --threads trailing junk",
     ["sweep", "spec.json", "--threads", "4x"], 2, True),
    ("sweep --threads negative",
     ["sweep", "spec.json", "--threads", "-2"], 2, True),
    ("sweep --checkpoint-seconds negative",
     ["sweep", "spec.json", "--checkpoint-seconds", "-1"], 2, True),
    ("sweep --checkpoint-seconds nan",
     ["sweep", "spec.json", "--checkpoint-seconds", "nan"], 2, True),
    ("sweep bad --fault spec",
     ["sweep", "spec.json", "--fault", "bogus"], 2, True),
    ("serve without --out", ["serve", "spec.json"], 2, True),
    ("serve --shard-points zero",
     ["serve", "spec.json", "--out", "o.json", "--shard-points",
      "0"], 2, True),
    ("serve --poll-ms non-numeric",
     ["serve", "spec.json", "--out", "o.json", "--poll-ms", "fast"],
     2, True),
    ("work without --coordinator", ["work"], 2, True),
    ("work with stray positional",
     ["work", "--coordinator", "d", "extra"], 2, True),
    ("work --poll-ms missing value",
     ["work", "--coordinator", "d", "--poll-ms"], 2, True),
    ("hoard with no subcommand", ["hoard"], 2, True),
    ("hoard unknown subcommand", ["hoard", "prune", "d"], 2, True),
    ("hoard warm without --hoard", ["hoard", "warm", "spec.json"],
     2, True),
    ("hoard gc bad --max-bytes",
     ["hoard", "gc", "d", "--max-bytes", "lots"], 2, True),
    ("hoard ingest without --serve", ["hoard", "ingest", "d"], 2,
     True),
    ("hoard stat with extra positional", ["hoard", "stat", "a", "b"],
     2, True),
    ("list with no subcommand", ["list"], 2, True),
    ("list unknown subcommand", ["list", "gadgets"], 2, True),
    ("list with unknown flag", ["list", "runners", "--json"], 2,
     True),
    # The exit-1 side of the boundary: the invocation is fine, the
    # input is not.
    ("run on a missing file", ["run", "/nonexistent/c.json"], 1,
     False),
    ("sweep on a missing file", ["sweep", "/nonexistent/s.json"], 1,
     False),
    # And exit 0: help is not an error.
    ("help", ["help"], 0, False),
    ("--help", ["--help"], 0, False),
]


def main():
    if len(sys.argv) != 2:
        print("usage: cli_matrix.py <qcarch>", file=sys.stderr)
        return 2
    qcarch = sys.argv[1]
    failures = []
    for description, argv, want_exit, want_usage in CASES:
        proc = subprocess.run([qcarch] + argv, capture_output=True,
                              text=True, timeout=60)
        problems = []
        if proc.returncode != want_exit:
            problems.append("exit %d, want %d"
                            % (proc.returncode, want_exit))
        if want_usage:
            lines = [l for l in proc.stderr.splitlines() if l]
            if not any(l.startswith(USAGE_LINE) for l in lines):
                problems.append("stderr lacks a %r line: %r"
                                % (USAGE_LINE, proc.stderr))
            # "one-line usage": the pointer plus one diagnostic,
            # not the full multi-line help dump.
            if len(lines) > 2:
                problems.append("stderr is %d lines, want <= 2: %r"
                                % (len(lines), proc.stderr))
        if proc.returncode != 0 and not proc.stderr:
            problems.append("non-zero exit with silent stderr")
        if problems:
            failures.append((description, argv, problems))
    for description, argv, problems in failures:
        print("FAIL %s (qcarch %s):" % (description, " ".join(argv)),
              file=sys.stderr)
        for problem in problems:
            print("  " + problem, file=sys.stderr)
    print("cli_matrix: %d/%d cases pass"
          % (len(CASES) - len(failures), len(CASES)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
