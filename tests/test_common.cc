/**
 * @file
 * Unit tests for the common module: units, parameters, RNG,
 * statistics, table formatting and the injectable wall clock.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>

#include "common/Clock.hh"
#include "common/Params.hh"
#include "common/Rng.hh"
#include "common/Stats.hh"
#include "common/Table.hh"
#include "common/Types.hh"

namespace qc {
namespace {

TEST(Types, MicrosecondConversionIsExact)
{
    EXPECT_EQ(usec(1), 1000);
    EXPECT_EQ(usec(51), 51000);
    EXPECT_EQ(msec(1), 1000000);
    EXPECT_DOUBLE_EQ(toUs(usec(323)), 323.0);
    EXPECT_DOUBLE_EQ(toMs(msec(7)), 7.0);
}

TEST(Types, BandwidthOfSingleItem)
{
    // One item per 100 us = 10 per ms.
    EXPECT_DOUBLE_EQ(bandwidthOf(usec(100)), 10.0);
}

TEST(Types, BandwidthScalesWithItemsAndStages)
{
    // 7 items per 95 us with 3 internal stages: the paper's CX
    // stage bandwidth, 221.05 qubits/ms.
    const double bw = bandwidthOf(usec(95), 7, 3);
    EXPECT_NEAR(bw, 221.05, 0.01);
}

TEST(Params, PaperDefaultsMatchTables1And4)
{
    const IonTrapParams p = IonTrapParams::paper();
    EXPECT_EQ(p.t1q, usec(1));
    EXPECT_EQ(p.t2q, usec(10));
    EXPECT_EQ(p.tmeas, usec(50));
    EXPECT_EQ(p.tprep, usec(51));
    EXPECT_EQ(p.tmove, usec(1));
    EXPECT_EQ(p.tturn, usec(10));

    const ErrorParams e = ErrorParams::paper();
    EXPECT_DOUBLE_EQ(e.pGate, 1e-4);
    EXPECT_DOUBLE_EQ(e.pMove, 1e-6);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, Uniform01MeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.25))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, BelowIsBoundedAndCoversRange)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(15);
        EXPECT_LT(v, 15u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 15u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RunningStat, MomentsOfKnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Wilson, CoversTrueProportion)
{
    // 30 successes in 1000 trials, p-hat = 0.03.
    const Interval ci = wilsonInterval(30, 1000);
    EXPECT_LT(ci.lo, 0.03);
    EXPECT_GT(ci.hi, 0.03);
    EXPECT_GT(ci.lo, 0.015);
    EXPECT_LT(ci.hi, 0.05);
}

TEST(Wilson, ZeroSuccessesGivesZeroLowerBound)
{
    const Interval ci = wilsonInterval(0, 1000);
    EXPECT_DOUBLE_EQ(ci.lo, 0.0);
    EXPECT_GT(ci.hi, 0.0);
    EXPECT_LT(ci.hi, 0.01);
}

TEST(Wilson, AllSuccessesGivesOneUpperBound)
{
    const Interval ci = wilsonInterval(1000, 1000);
    EXPECT_DOUBLE_EQ(ci.hi, 1.0);
    EXPECT_GT(ci.lo, 0.99);
}

TEST(TimeSeriesBinner, PointSamplesLandInBins)
{
    TimeSeriesBinner b(100.0, 10);
    b.add(5.0);
    b.add(95.0, 2.0);
    EXPECT_DOUBLE_EQ(b.bins()[0], 1.0);
    EXPECT_DOUBLE_EQ(b.bins()[9], 2.0);
}

TEST(TimeSeriesBinner, RangeSplitsProportionally)
{
    TimeSeriesBinner b(100.0, 10);
    // Weight 10 over [5, 25): 5 units in bin 0, 10 in bin 1, 5 in
    // bin 2.
    b.addRange(5.0, 25.0, 10.0);
    EXPECT_NEAR(b.bins()[0], 2.5, 1e-9);
    EXPECT_NEAR(b.bins()[1], 5.0, 1e-9);
    EXPECT_NEAR(b.bins()[2], 2.5, 1e-9);
    double total = 0;
    for (double v : b.bins())
        total += v;
    EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(TimeSeriesBinner, ClampsOutOfRange)
{
    TimeSeriesBinner b(10.0, 5);
    b.add(-3.0);
    b.add(42.0);
    EXPECT_DOUBLE_EQ(b.bins()[0], 1.0);
    EXPECT_DOUBLE_EQ(b.bins()[4], 1.0);
}

TEST(Table, AlignsColumnsAndSeparatesHeader)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"x,y", "plain"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtInt(42), "42");
    EXPECT_EQ(fmtPct(0.782, 1), "78.2%");
    EXPECT_EQ(fmtSci(0.000029, 1), "2.9e-05");
}

TEST(Clock, SystemClockIsTheDefaultAndLooksLikeEpochMs)
{
    // No fake installed: reads must come from the real system
    // clock. 2020-01-01 in epoch ms is a loose sanity floor.
    const std::int64_t t = wallClockEpochMs();
    EXPECT_GT(t, INT64_C(1577836800000));
    EXPECT_GE(wallClockEpochMs(), t);
}

TEST(Clock, FakeClockOnlyMovesWhenAdvanced)
{
    FakeWallClock fake(INT64_C(1000));
    ScopedWallClock scoped(fake);
    EXPECT_EQ(wallClockEpochMs(), 1000);
    EXPECT_EQ(wallClockEpochMs(), 1000);
    fake.advanceMs(250);
    EXPECT_EQ(wallClockEpochMs(), 1250);
    fake.setMs(INT64_C(5000));
    EXPECT_EQ(wallClockEpochMs(), 5000);
}

TEST(Clock, ScopedInstallRestoresThePreviousClock)
{
    FakeWallClock outer(INT64_C(10));
    ScopedWallClock outerScope(outer);
    {
        FakeWallClock inner(INT64_C(99));
        ScopedWallClock innerScope(inner);
        EXPECT_EQ(wallClockEpochMs(), 99);
    }
    // Leaving the inner scope restores the outer fake, not the
    // system clock.
    EXPECT_EQ(wallClockEpochMs(), 10);
}

} // namespace
} // namespace qc
