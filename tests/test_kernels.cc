/**
 * @file
 * Tests for the benchmark kernels: exact classical verification of
 * both adders over many random operand pairs, unitary-level
 * verification of the Toffoli and controlled-phase decompositions
 * and of small QFTs against the exact transform, and structural
 * checks on the lowering pass.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/Dataflow.hh"
#include "common/Rng.hh"
#include "kernels/Adders.hh"
#include "kernels/ClassicalSim.hh"
#include "kernels/Kernels.hh"
#include "kernels/Lower.hh"
#include "kernels/Qft.hh"
#include "kernels/StateVector.hh"

namespace qc {
namespace {

// ---------------------------------------------------------------
// Adder correctness (exact, classical).
// ---------------------------------------------------------------

struct AdderCase
{
    int bits;
    bool lookahead;
};

class AdderParamTest : public ::testing::TestWithParam<AdderCase>
{
};

TEST_P(AdderParamTest, AddsRandomOperandsExactly)
{
    const AdderCase param = GetParam();
    const AdderKernel kernel = param.lookahead
                                   ? makeQcla(param.bits)
                                   : makeQrca(param.bits);
    Rng rng(0xbeef + static_cast<std::uint64_t>(param.bits)
            + (param.lookahead ? 1000 : 0));
    const std::uint64_t mask =
        param.bits >= 64 ? ~0ull : (1ull << param.bits) - 1;

    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        std::vector<bool> init(kernel.layout.numQubits, false);
        unpackBits(init, kernel.layout.aBase,
                   static_cast<Qubit>(param.bits), a);
        unpackBits(init, kernel.layout.bBase,
                   static_cast<Qubit>(param.bits), b);
        const auto fin = runClassical(kernel.circuit, init);

        const std::uint64_t sum =
            packBits(fin, kernel.layout.sumBase,
                     static_cast<Qubit>(param.bits));
        const bool carry = fin[kernel.layout.carryOut];
        const std::uint64_t expect = a + b;
        EXPECT_EQ(sum, expect & mask)
            << "a=" << a << " b=" << b << " bits=" << param.bits;
        EXPECT_EQ(carry, ((expect >> param.bits) & 1) != 0)
            << "a=" << a << " b=" << b;
        // Input register a must be preserved.
        EXPECT_EQ(packBits(fin, kernel.layout.aBase,
                           static_cast<Qubit>(param.bits)),
                  a);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, AdderParamTest,
    ::testing::Values(AdderCase{1, false}, AdderCase{2, false},
                      AdderCase{3, false}, AdderCase{5, false},
                      AdderCase{8, false}, AdderCase{16, false},
                      AdderCase{32, false}, AdderCase{2, true},
                      AdderCase{3, true}, AdderCase{4, true},
                      AdderCase{5, true}, AdderCase{8, true},
                      AdderCase{16, true}, AdderCase{32, true},
                      AdderCase{31, true}, AdderCase{17, true}),
    [](const ::testing::TestParamInfo<AdderCase> &info) {
        return std::string(info.param.lookahead ? "qcla" : "qrca")
            + std::to_string(info.param.bits);
    });

TEST(Qcla, CleansAllAncillae)
{
    const AdderKernel kernel = makeQcla(16);
    Rng rng(321);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t a = rng() & 0xffff;
        const std::uint64_t b = rng() & 0xffff;
        std::vector<bool> init(kernel.layout.numQubits, false);
        unpackBits(init, kernel.layout.aBase, 16, a);
        unpackBits(init, kernel.layout.bBase, 16, b);
        const auto fin = runClassical(kernel.circuit, init);
        // b register restored, carries and tree ancillae zero.
        EXPECT_EQ(packBits(fin, kernel.layout.bBase, 16), b);
        for (Qubit q = 2 * 16; q < kernel.layout.sumBase; ++q)
            EXPECT_FALSE(fin[q]) << "dirty ancilla " << q;
        for (Qubit q = kernel.layout.sumBase
                 + kernel.layout.sumBits;
             q < kernel.layout.numQubits; ++q) {
            EXPECT_FALSE(fin[q]) << "dirty tree ancilla " << q;
        }
    }
}

TEST(Qrca, QubitCountMatchesPaper)
{
    // "two n-bit data inputs plus n+1 ancillae" (Section 3): 97
    // logical qubits for 32 bits.
    EXPECT_EQ(makeQrca(32).layout.numQubits, 97u);
}

TEST(Qcla, LogDepthBeatsRippleDepth)
{
    const Circuit rca = makeQrca(32).circuit;
    const Circuit cla = makeQcla(32).circuit;
    const auto rca_depth = DataflowGraph(rca).depth();
    const auto cla_depth = DataflowGraph(cla).depth();
    EXPECT_LT(cla_depth * 3, rca_depth)
        << "carry-lookahead should be several times shallower";
}

TEST(Qcla, ToffoliCountScalesLinearly)
{
    const auto c16 = makeQcla(16).circuit.census();
    const auto c32 = makeQcla(32).circuit.census();
    const double ratio =
        static_cast<double>(c32.of(GateKind::Toffoli))
        / static_cast<double>(c16.of(GateKind::Toffoli));
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.3);
}

// ---------------------------------------------------------------
// Unitary-level verification via the dense simulator.
// ---------------------------------------------------------------

TEST(StateVector, ToffoliDecompositionMatchesToffoli)
{
    FowlerSynth synth;
    for (std::uint64_t basis = 0; basis < 8; ++basis) {
        Circuit direct(3);
        direct.toffoli(0, 1, 2);
        Circuit lowered_src(3);
        lowered_src.toffoli(0, 1, 2);
        const Lowered low =
            lowerToFaultTolerant(lowered_src, synth);

        StateVector a(3, basis);
        a.run(direct);
        StateVector b(3, basis);
        b.run(low.circuit);
        EXPECT_NEAR(a.overlap(b), 1.0, 1e-9) << "basis " << basis;
    }
}

TEST(StateVector, ToffoliDecompositionOnSuperposition)
{
    FowlerSynth synth;
    Circuit direct(3);
    direct.h(0).h(1).h(2).toffoli(0, 1, 2);
    Circuit src(3);
    src.h(0).h(1).h(2).toffoli(0, 1, 2);
    const Lowered low = lowerToFaultTolerant(src, synth);
    StateVector a(3);
    a.run(direct);
    StateVector b(3);
    b.run(low.circuit);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-9);
}

TEST(StateVector, ControlledPhaseDecompositionIsExactForCliffordParts)
{
    // CRotZ(k=1) is controlled-S; its decomposition uses exact T
    // gates, so equivalence must be exact.
    FowlerSynth synth;
    Circuit direct(2);
    direct.h(0).h(1).crotZ(0, 1, 1);
    Circuit src(2);
    src.h(0).h(1).crotZ(0, 1, 1);
    LoweringOptions opts;
    const Lowered low = lowerToFaultTolerant(src, synth, opts);
    StateVector a(2);
    a.run(direct);
    StateVector b(2);
    b.run(low.circuit);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-9);
}

TEST(StateVector, QftMatchesExactDftAmplitudes)
{
    // The generator is big-endian (qubit 0 is the most significant
    // bit of the Fourier integer), so with the state vector's
    // little-endian indexing the exact relation is
    //   amp(y) = exp(2 pi i rev(x) rev(y) / 2^n) / sqrt(2^n).
    const int n = 4;
    const Circuit qft = makeQft(n);
    auto rev = [n](std::uint64_t v) {
        std::uint64_t r = 0;
        for (int i = 0; i < n; ++i) {
            if ((v >> i) & 1)
                r |= std::uint64_t{1} << (n - 1 - i);
        }
        return r;
    };
    for (std::uint64_t x : {0ull, 1ull, 5ull, 15ull}) {
        StateVector sv(n, x);
        sv.run(qft);
        const auto &amps = sv.amplitudes();
        for (std::uint64_t y = 0; y < 16; ++y) {
            const double phase = 2.0 * M_PI
                * static_cast<double>(rev(x) * rev(y)) / 16.0;
            const std::complex<double> expect =
                std::polar(0.25, phase);
            EXPECT_NEAR(std::abs(amps[y] - expect), 0.0, 1e-9)
                << "x=" << x << " y=" << y;
        }
    }
}

TEST(StateVector, TruncatedQftCloseToExactForSmallN)
{
    const int n = 5;
    QftOptions exact_opts;
    QftOptions trunc_opts;
    trunc_opts.maxK = 2;
    const Circuit exact = makeQft(n, exact_opts);
    const Circuit trunc = makeQft(n, trunc_opts);
    StateVector a(n, 19);
    a.run(exact);
    StateVector b(n, 19);
    b.run(trunc);
    // Dropped rotations are at most pi/8 each; fidelity stays high.
    EXPECT_GT(a.overlap(b), 0.9);
}

TEST(StateVector, ProbOneTracksHadamard)
{
    Circuit c(1);
    c.h(0);
    StateVector sv(1);
    sv.run(c);
    EXPECT_NEAR(sv.probOne(0), 0.5, 1e-12);
}

// ---------------------------------------------------------------
// Lowering pass structure.
// ---------------------------------------------------------------

TEST(Lowering, OutputsOnlyFaultTolerantGates)
{
    FowlerSynth synth;
    const Circuit qft = makeQft(8);
    const Lowered low = lowerToFaultTolerant(qft, synth);
    for (const Gate &g : low.circuit.gates()) {
        EXPECT_NE(g.kind, GateKind::Toffoli);
        EXPECT_NE(g.kind, GateKind::RotZ);
        EXPECT_NE(g.kind, GateKind::CRotZ);
    }
}

TEST(Lowering, ToffoliExpandsToFifteenGates)
{
    FowlerSynth synth;
    Circuit src(3);
    src.toffoli(0, 1, 2);
    const Lowered low = lowerToFaultTolerant(src, synth);
    EXPECT_EQ(low.circuit.size(), 15u);
    const auto census = low.circuit.census();
    EXPECT_EQ(census.of(GateKind::CX), 6u);
    EXPECT_EQ(census.nonTransversal1q(), 7u);
    EXPECT_EQ(census.of(GateKind::H), 2u);
    EXPECT_EQ(low.stats.toffolis, 1u);
}

TEST(Lowering, ElidesFineRotations)
{
    FowlerSynth synth;
    Circuit src(2);
    src.crotZ(0, 1, 12); // finer than the default cutoff of 8
    LoweringOptions opts;
    opts.maxRotK = 8;
    const Lowered low = lowerToFaultTolerant(src, synth, opts);
    EXPECT_EQ(low.circuit.size(), 0u);
    EXPECT_EQ(low.stats.elided, 1u);
    EXPECT_GT(low.stats.elidedAngleSum, 0.0);
}

TEST(Lowering, KeepsCoarseRotations)
{
    FowlerSynth synth;
    Circuit src(2);
    src.crotZ(0, 1, 2);
    const Lowered low = lowerToFaultTolerant(src, synth);
    EXPECT_GT(low.circuit.size(), 2u);
    EXPECT_EQ(low.stats.elided, 0u);
    EXPECT_EQ(low.stats.controlledRots, 1u);
}

TEST(Lowering, TracksApproximationError)
{
    FowlerSynth synth;
    Circuit src(1);
    src.rotZ(0, 5);
    const Lowered low = lowerToFaultTolerant(src, synth);
    EXPECT_EQ(low.stats.rotations, 1u);
    EXPECT_GT(low.stats.approxErrorMax, 0.0);
    EXPECT_LE(low.stats.approxErrorMax, 0.1);
}

TEST(Lowering, CRotZDecompositionShape)
{
    // CRotZ(k) -> 2 CX + 3 rotation words (Section 2.5 / [14]).
    FowlerSynth synth;
    Circuit src(2);
    src.crotZ(0, 1, 1); // rotations are exact T gates here
    const Lowered low = lowerToFaultTolerant(src, synth);
    const auto census = low.circuit.census();
    EXPECT_EQ(census.of(GateKind::CX), 2u);
    EXPECT_EQ(census.nonTransversal1q(), 3u);
}

// ---------------------------------------------------------------
// Benchmark registry.
// ---------------------------------------------------------------

TEST(Benchmarks, NamesMatchPaper)
{
    EXPECT_EQ(benchmarkName(BenchmarkKind::Qrca, 32), "32-Bit QRCA");
    EXPECT_EQ(benchmarkName(BenchmarkKind::Qcla, 32), "32-Bit QCLA");
    EXPECT_EQ(benchmarkName(BenchmarkKind::Qft, 32), "32-Bit QFT");
}

TEST(Benchmarks, NonTransversalFractionNearPaper)
{
    // Paper Section 3.3: non-transversal one-qubit gates are 40.5%,
    // 41.0% and 46.9% of the QRCA, QCLA and QFT circuits. Our
    // constructions should land in the same neighborhood.
    FowlerSynth synth;
    BenchmarkOptions opts;
    opts.bits = 32;
    for (auto kind : {BenchmarkKind::Qrca, BenchmarkKind::Qcla}) {
        const Benchmark b = makeBenchmark(kind, synth, opts);
        const auto census = b.lowered.circuit.census();
        const double frac =
            static_cast<double>(census.nonTransversal1q())
            / static_cast<double>(census.total);
        EXPECT_GT(frac, 0.25) << b.name;
        EXPECT_LT(frac, 0.55) << b.name;
    }
}

TEST(Benchmarks, QrcaGateCountScaleMatchesPaper)
{
    // Paper Table 3 implies ~4.3k encoded zero ancillae for the
    // 32-bit QRCA, i.e. ~2.1k gates. Require the same order.
    FowlerSynth synth;
    const Benchmark b =
        makeBenchmark(BenchmarkKind::Qrca, synth, BenchmarkOptions{});
    EXPECT_GT(b.lowered.circuit.size(), 1000u);
    EXPECT_LT(b.lowered.circuit.size(), 5000u);
}

} // namespace
} // namespace qc
