/**
 * @file
 * Tests for the rare-event importance sampler
 * (error/ImportanceSampler.hh): stratum weights against the
 * closed-form binomial pmf, site counts against the nominal
 * circuit, agreement with naive Monte Carlo at a feasible point,
 * determinism across thread counts, and the conservative handling
 * of the truncated prior tail.
 */

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include "codes/SteaneCode.hh"
#include "common/Stats.hh"
#include "error/BatchAncillaSim.hh"
#include "error/ImportanceSampler.hh"

namespace qc {
namespace {

bool
overlap(const Interval &a, const Interval &b)
{
    return a.lo <= b.hi && b.lo <= a.hi;
}

/** Closed-form binomial pmf via lgamma, the reference formula. */
double
referencePmf(std::uint64_t n, double p, std::uint64_t k)
{
    const double logc = std::lgamma(static_cast<double>(n) + 1)
        - std::lgamma(static_cast<double>(k) + 1)
        - std::lgamma(static_cast<double>(n - k) + 1);
    return std::exp(logc + static_cast<double>(k) * std::log(p)
                    + static_cast<double>(n - k)
                        * std::log1p(-p));
}

TEST(BinomialPmf, MatchesClosedFormAcrossRegimes)
{
    for (std::uint64_t n : {1ull, 7ull, 19ull, 150ull, 1000ull}) {
        for (double p : {0.3, 1e-2, 1e-4, 1e-6}) {
            double sum = 0.0;
            const std::uint64_t kMax = n < 6 ? n : 6;
            for (std::uint64_t k = 0; k <= kMax; ++k) {
                const double got =
                    StratifiedPrepSampler::binomialPmf(n, p, k);
                const double want = referencePmf(n, p, k);
                EXPECT_NEAR(got, want, want * 1e-10 + 1e-300)
                    << "n=" << n << " p=" << p << " k=" << k;
                sum += got;
            }
            // Low-order terms carry essentially all the mass in
            // the subthreshold regime.
            if (n * p < 0.1) {
                EXPECT_NEAR(sum, 1.0, 1e-6);
            }
        }
    }
}

TEST(BinomialPmf, EdgeCases)
{
    EXPECT_EQ(StratifiedPrepSampler::binomialPmf(10, 0.0, 0), 1.0);
    EXPECT_EQ(StratifiedPrepSampler::binomialPmf(10, 0.0, 1), 0.0);
    EXPECT_EQ(StratifiedPrepSampler::binomialPmf(10, 1.0, 10), 1.0);
    EXPECT_EQ(StratifiedPrepSampler::binomialPmf(10, 1.0, 9), 0.0);
    EXPECT_EQ(StratifiedPrepSampler::binomialPmf(3, 0.5, 4), 0.0);
}

TEST(StratifiedPrepSampler, SiteCountsMatchNominalBasicCircuit)
{
    // The basic encode is 7 preps + the encoder's H and CX gates;
    // movement charges only on the CX gates under the default
    // MovementModel. The dry run must count exactly those sites.
    ErrorParams errors;
    errors.pGate = 1e-3;
    errors.pMove = 1e-5;
    const MovementModel movement{};
    StratifiedPrepSampler sampler(errors, movement, Rng(1),
                                  CorrectionSemantics::
                                      DiscardOnSyndrome);
    ImportanceConfig config;
    config.maxFaults = 1;
    config.trialsPerStratum = 10;
    const StratifiedEstimate est =
        sampler.estimate(ZeroPrepStrategy::Basic, config);

    std::uint64_t cxs = 0;
    for (const auto &cx : SteaneCode::encoderCxs) {
        (void)cx;
        ++cxs;
    }
    std::uint64_t hs = 0;
    for (int seed : SteaneCode::encoderSeeds) {
        (void)seed;
        ++hs;
    }
    const std::uint64_t gates =
        static_cast<std::uint64_t>(SteaneCode::numPhysical) + hs
        + cxs;
    const std::uint64_t moves = cxs
        * static_cast<std::uint64_t>(movement.movesPerCx
                                     + movement.turnsPerCx);
    EXPECT_EQ(est.gateSites, gates);
    EXPECT_EQ(est.moveSites, moves);
}

TEST(StratifiedPrepSampler, ZeroFaultStratumIsAnalyticZero)
{
    ErrorParams errors;
    errors.pGate = 1e-3;
    errors.pMove = 1e-5;
    StratifiedPrepSampler sampler(errors, MovementModel{}, Rng(2),
                                  CorrectionSemantics::
                                      DiscardOnSyndrome);
    ImportanceConfig config;
    config.trialsPerStratum = 2000;
    const StratifiedEstimate est =
        sampler.estimate(ZeroPrepStrategy::Basic, config);
    ASSERT_FALSE(est.strata.empty());
    const StratumEstimate &zero = est.strata.front();
    EXPECT_EQ(zero.gateFaults, 0);
    EXPECT_EQ(zero.moveFaults, 0);
    EXPECT_TRUE(zero.analytic);
    EXPECT_EQ(zero.trials, 0u);
    EXPECT_EQ(zero.rate(), 0.0);
    // Its prior still participates in the weighting (it is the
    // bulk of the mass at subthreshold noise).
    EXPECT_GT(zero.prior, 0.5);
}

TEST(StratifiedPrepSampler, TruncationIsConservative)
{
    ErrorParams errors;
    errors.pGate = 1e-3;
    errors.pMove = 1e-5;
    StratifiedPrepSampler sampler(errors, MovementModel{}, Rng(3),
                                  CorrectionSemantics::
                                      DiscardOnSyndrome);
    // maxFaults = 0 keeps only the analytic stratum: the point
    // estimate is 0 but the whole non-(0,0) mass lands in the
    // upper confidence bound.
    ImportanceConfig config;
    config.maxFaults = 0;
    const StratifiedEstimate est =
        sampler.estimate(ZeroPrepStrategy::Basic, config);
    EXPECT_EQ(est.strata.size(), 1u);
    EXPECT_EQ(est.errorRate(), 0.0);
    const Interval ci = est.errorInterval();
    EXPECT_EQ(ci.lo, 0.0);
    EXPECT_NEAR(ci.hi, est.truncatedPrior, 1e-15);
    EXPECT_GT(est.truncatedPrior, 0.0);
    EXPECT_LT(est.truncatedPrior, 0.5);
}

TEST(StratifiedPrepSampler, MatchesNaiveMonteCarloAtFeasiblePoint)
{
    // At pGate = 1e-3 naive MC resolves the basic-prep failure
    // rate easily, so the two estimators must agree. This is the
    // sampler's correctness anchor: the same decomposition then
    // extends to depths naive MC cannot reach.
    ErrorParams errors;
    errors.pGate = 1e-3;
    errors.pMove = 1e-5;
    for (auto semantics :
         {CorrectionSemantics::DiscardOnSyndrome,
          CorrectionSemantics::ApplyFix}) {
        BatchAncillaSim naiveSim(errors, MovementModel{}, 0xfea,
                                 semantics);
        const PrepEstimate naive =
            naiveSim.estimate(ZeroPrepStrategy::Basic, 4000000);

        BatchAncillaSim stratSim(errors, MovementModel{}, 0xfeb,
                                 semantics);
        ImportanceConfig config;
        config.trialsPerStratum = 40000;
        const StratifiedEstimate strat =
            stratSim.estimateStratified(ZeroPrepStrategy::Basic,
                                        config);
        EXPECT_TRUE(overlap(naive.errorInterval(),
                            strat.errorInterval()))
            << "naive [" << naive.errorInterval().lo << ", "
            << naive.errorInterval().hi << "] stratified ["
            << strat.errorInterval().lo << ", "
            << strat.errorInterval().hi << "]";
    }
}

TEST(StratifiedPrepSampler, Pi8MatchesNaiveMonteCarlo)
{
    ErrorParams errors;
    errors.pGate = 1e-3;
    errors.pMove = 1e-5;
    BatchAncillaSim naiveSim(errors, MovementModel{}, 0x8a,
                             CorrectionSemantics::ApplyFix);
    const PrepEstimate naive = naiveSim.estimatePi8(1500000);

    BatchAncillaSim stratSim(errors, MovementModel{}, 0x8b,
                             CorrectionSemantics::ApplyFix);
    ImportanceConfig config;
    config.trialsPerStratum = 40000;
    const StratifiedEstimate strat =
        stratSim.estimateStratifiedPi8(config);
    EXPECT_TRUE(
        overlap(naive.errorInterval(), strat.errorInterval()))
        << "naive [" << naive.errorInterval().lo << ", "
        << naive.errorInterval().hi << "] stratified ["
        << strat.errorInterval().lo << ", "
        << strat.errorInterval().hi << "]";
}

TEST(StratifiedPrepSampler, DeterministicAcrossThreadCounts)
{
    ErrorParams errors;
    errors.pGate = 1e-4;
    errors.pMove = 1e-6;
    ImportanceConfig config;
    config.trialsPerStratum = 5000;
    StratifiedEstimate results[2];
    const int threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        StratifiedPrepSampler sampler(
            errors, MovementModel{}, Rng(0xd00d),
            CorrectionSemantics::DiscardOnSyndrome, threads[i]);
        results[i] = sampler.estimate(
            ZeroPrepStrategy::VerifyAndCorrect, config);
    }
    ASSERT_EQ(results[0].strata.size(), results[1].strata.size());
    for (std::size_t i = 0; i < results[0].strata.size(); ++i) {
        EXPECT_EQ(results[0].strata[i].failures,
                  results[1].strata[i].failures)
            << "stratum " << i;
        EXPECT_EQ(results[0].strata[i].prior,
                  results[1].strata[i].prior);
    }
    EXPECT_EQ(results[0].errorRate(), results[1].errorRate());
}

TEST(StratifiedPrepSampler, DeepPointGetsTightNonzeroInterval)
{
    // The whole point of the sampler: at pGate = 1e-5 the
    // verify-and-correct failure rate is ~1e-9 territory — naive
    // MC at any affordable trial count sees zero failures, while
    // the stratified estimate resolves a finite, tightly bounded
    // rate from a few hundred thousand trials.
    ErrorParams errors;
    errors.pGate = 1e-5;
    errors.pMove = 1e-7;
    BatchAncillaSim sim(errors, MovementModel{}, 0xdeed,
                        CorrectionSemantics::DiscardOnSyndrome);
    ImportanceConfig config;
    config.trialsPerStratum = 20000;
    const StratifiedEstimate est = sim.estimateStratified(
        ZeroPrepStrategy::VerifyAndCorrect, config);
    const Interval ci = est.errorInterval();
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LT(ci.hi, 1e-6);
    // The truncated tail is negligible against the interval.
    EXPECT_LT(est.truncatedPrior, 1e-12);
}

} // namespace
} // namespace qc
