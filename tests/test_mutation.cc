/**
 * @file
 * Mutation-robustness property tests: take a byte-exact valid
 * artifact, apply every single-byte mutation, and require the
 * reader to uphold its integrity contract on each mutant.
 *
 *  - Hoard objects: for every mutant of a stored object file,
 *    fetch() either returns the original result byte-identical
 *    (the mutation hit a byte the digest/key checks ignore) or
 *    misses with the mutant quarantined out of the object path —
 *    never a third outcome, and never a silently different
 *    result.
 *  - Serve shard deltas: for every mutant of a committed delta
 *    file, the coordinator's leftover-delta recovery merges the
 *    whole delta or rejects the whole delta — never a strict
 *    subset of its points. (The validate-all-then-merge-all shape
 *    of Coordinator::mergeDelta is exactly what this pins down.)
 *
 * These complement the corruption matrix in test_hoard.cc: that
 * enumerates known damage modes, this sweeps the full single-byte
 * neighborhood so a future parser "fix" that opens a partial-merge
 * or silent-corruption window fails loudly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/Qc.hh"
#include "hoard/Hoard.hh"
#include "serve/Serve.hh"
#include "sweep/Sweep.hh"

namespace qc {
namespace {

namespace fs = std::filesystem;

Json
parse(const std::string &text)
{
    return Json::parse(text);
}

/** A fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &name)
        : path(::testing::TempDir() + name + "-"
               + std::to_string(::getpid()))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~ScratchDir() { fs::remove_all(path); }

    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** The two single-byte substitutions tried at every offset: a
 *  low-bit flip (digit/letter neighbors, the classic disk flip)
 *  and a high-bit flip (ASCII -> non-ASCII, breaks tokens). */
const unsigned char kFlips[] = {0x01, 0x80};

// ---------------------------------------------------------------
// Hoard objects
// ---------------------------------------------------------------

TEST(MutationRobustness, HoardObjectEveryByteMutation)
{
    ScratchDir dir("qc_mut_hoard");
    const std::string root = dir.file("store");
    const Json config = parse(R"({"trials": 1000, "seed": 7})");
    const Json result =
        parse(R"({"rate": 0.125, "trials": 1000})");
    {
        HoardStore hoard(root);
        ASSERT_TRUE(hoard.store("mc-prep", config, result));
    }
    const std::string objectPath =
        HoardStore(root).objectPath(
            HoardStore::keyFor("mc-prep", config));
    const std::string original = readAll(objectPath);
    ASSERT_FALSE(original.empty());

    std::size_t hits = 0, quarantined = 0;
    for (std::size_t at = 0; at < original.size(); ++at) {
        for (unsigned char flip : kFlips) {
            std::string mutant = original;
            mutant[at] = static_cast<char>(
                static_cast<unsigned char>(mutant[at]) ^ flip);
            fs::create_directories(
                fs::path(objectPath).parent_path());
            writeAll(objectPath, mutant);

            HoardStore hoard(root);
            Json fetched;
            if (hoard.fetch("mc-prep", config, fetched)) {
                ++hits;
                EXPECT_EQ(fetched.dump(), result.dump())
                    << "byte " << at << " ^ " << int(flip)
                    << ": fetch hit with a DIFFERENT result";
            } else {
                ++quarantined;
                EXPECT_FALSE(fs::exists(objectPath))
                    << "byte " << at << " ^ " << int(flip)
                    << ": miss left the mutant in place instead "
                       "of quarantining it";
            }
        }
    }
    // The sweep must actually bite: a mutant surviving every
    // check with a byte-identical payload is possible (e.g. a
    // flip inside a field no check covers is not), but the vast
    // majority must be caught.
    EXPECT_GT(quarantined, 0u);
    SCOPED_TRACE("hits=" + std::to_string(hits));

    // Healed store: restoring the original bytes fetches again.
    fs::create_directories(fs::path(objectPath).parent_path());
    writeAll(objectPath, original);
    HoardStore healed(root);
    Json fetched;
    ASSERT_TRUE(healed.fetch("mc-prep", config, fetched));
    EXPECT_EQ(fetched.dump(), result.dump());
}

// ---------------------------------------------------------------
// Serve shard deltas
// ---------------------------------------------------------------

/** 4-point mc-prep spec; the delta under test commits points 0
 *  and 1, the other two stay pending (the coordinator is stopped
 *  before any worker could run them). */
const char *const kSpec = R"({
  "name": "mutation_serve",
  "runner": "mc-prep",
  "base": {"trials": 2000, "seed": 11},
  "axes": [
    {"field": "strategy", "values": ["basic", "verify_and_correct"]},
    {"field": "pGate", "values": [1e-4, 1e-3]}
  ]
})";

TEST(MutationRobustness, ServeDeltaMergesWholeOrRejectsWhole)
{
    const SweepSpec spec = SweepSpec::fromJson(parse(kSpec));
    const SweepPlan plan = SweepPlan::expand(spec);
    const SweepRunner &runner =
        SweepRunnerRegistry::instance().get(spec.runner);
    SweepContext context;

    ShardDelta delta;
    delta.id = shardId(0);
    delta.owner = "mutation-owner";
    for (std::size_t index : {std::size_t{0}, std::size_t{1}}) {
        DeltaPoint point;
        point.index = index;
        point.configHash = hexConfigHash(plan.hashes[index]);
        point.result =
            runner.runPoint(plan.points[index].config, context);
        delta.points.push_back(std::move(point));
    }
    const std::string original = delta.toJson().dump(0) + "\n";

    ScratchDir dir("qc_mut_serve");
    std::size_t merged = 0, rejected = 0, iteration = 0;
    for (std::size_t at = 0; at < original.size(); ++at) {
        std::string mutant = original;
        mutant[at] = static_cast<char>(
            static_cast<unsigned char>(mutant[at]) ^ 0x01);

        const std::string sub =
            dir.file("m" + std::to_string(iteration++));
        CoordinatorOptions options;
        options.outPath = sub + "/out.json";
        options.dir = sub + "/serve";
        options.pollMs = 1;
        options.checkpointSeconds = 0;
        options.quiet = true;
        options.stopRequested = [] { return true; };
        const ServeDir serveDir(options.dir);
        fs::create_directories(serveDir.resultDir());
        writeAll(serveDir.result(delta.id, delta.owner), mutant);

        const CoordinatorReport report =
            runCoordinator(spec, options);
        EXPECT_EQ(report.exitCode, kInterruptedExit);
        EXPECT_TRUE(report.executed == 0
                    || report.executed == delta.points.size())
            << "byte " << at << ": PARTIAL merge of "
            << report.executed << "/" << delta.points.size()
            << " points from one delta";
        if (report.executed == delta.points.size()) {
            ++merged;
        } else {
            ++rejected;
            EXPECT_GE(report.rejected, 1u)
                << "byte " << at
                << ": zero points merged but the delta was not "
                   "counted rejected";
        }
        fs::remove_all(sub);
    }
    // Both arms must be exercised for the property to mean
    // anything: some flips land in result payloads the hash
    // checks do not cover (merge-whole), most break the JSON or
    // the config_hash binding (reject-whole).
    EXPECT_GT(merged, 0u);
    EXPECT_GT(rejected, 0u);
}

} // namespace
} // namespace qc
