/**
 * @file
 * Tests for the macroblock layout abstraction: port semantics,
 * routing costs (straights vs turns), and the canonical builders'
 * areas (Figures 10 and 11).
 */

#include <gtest/gtest.h>

#include "layout/Builders.hh"
#include "layout/Grid.hh"
#include "layout/Route.hh"

namespace qc {
namespace {

TEST(Macroblock, PortMasks)
{
    const unsigned straight_v =
        portMask(MacroblockKind::StraightChannel, true);
    EXPECT_TRUE(hasPort(straight_v, Dir::North));
    EXPECT_TRUE(hasPort(straight_v, Dir::South));
    EXPECT_FALSE(hasPort(straight_v, Dir::East));

    const unsigned four = portMask(MacroblockKind::FourWay, false);
    for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West})
        EXPECT_TRUE(hasPort(four, d));

    EXPECT_EQ(portMask(MacroblockKind::Empty, false), 0u);
}

TEST(Macroblock, GateLocations)
{
    EXPECT_TRUE(hasGateLocation(MacroblockKind::DeadEndGate));
    EXPECT_TRUE(hasGateLocation(MacroblockKind::StraightChannelGate));
    EXPECT_FALSE(hasGateLocation(MacroblockKind::FourWay));
    EXPECT_FALSE(hasGateLocation(MacroblockKind::StraightChannel));
}

TEST(Grid, AreaCountsOccupiedCells)
{
    LayoutGrid g(4, 4);
    EXPECT_DOUBLE_EQ(g.occupiedArea(), 0.0);
    g.set({0, 0}, MacroblockKind::FourWay);
    g.set({1, 0}, MacroblockKind::StraightChannel);
    EXPECT_DOUBLE_EQ(g.occupiedArea(), 2.0);
}

TEST(Grid, ConnectivityRequiresFacingPorts)
{
    LayoutGrid g(3, 1);
    g.set({0, 0}, MacroblockKind::StraightChannel, false);
    g.set({1, 0}, MacroblockKind::StraightChannel, false);
    g.set({2, 0}, MacroblockKind::StraightChannel, true); // vertical!
    EXPECT_TRUE(g.connected({0, 0}, Dir::East));
    EXPECT_FALSE(g.connected({1, 0}, Dir::East)); // facing wall
    EXPECT_FALSE(g.connected({0, 0}, Dir::North));
}

TEST(Grid, OutOfBoundsIsNotConnected)
{
    LayoutGrid g(2, 2);
    g.set({0, 0}, MacroblockKind::FourWay);
    EXPECT_FALSE(g.connected({0, 0}, Dir::North));
    EXPECT_FALSE(g.connected({0, 0}, Dir::West));
}

class RouteTest : public ::testing::Test
{
  protected:
    IonTrapParams tech_ = IonTrapParams::paper();
};

TEST_F(RouteTest, StraightCorridor)
{
    LayoutGrid g(5, 1);
    for (int x = 0; x < 5; ++x)
        g.set({x, 0}, MacroblockKind::StraightChannel, false);
    const auto cost = route(g, {0, 0}, {4, 0}, tech_);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(cost->straights, 4);
    EXPECT_EQ(cost->turns, 0);
    EXPECT_EQ(cost->latency(tech_), usec(4));
}

TEST_F(RouteTest, LShapedPathCountsOneTurn)
{
    // 3x3 all four-way: L path from (0,0) to (2,2).
    LayoutGrid g(3, 3);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            g.set({x, y}, MacroblockKind::FourWay);
    const auto cost = route(g, {0, 0}, {2, 2}, tech_);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(cost->straights, 4);
    EXPECT_EQ(cost->turns, 1);
    EXPECT_EQ(cost->latency(tech_), usec(14));
}

TEST_F(RouteTest, PrefersFewerTurnsOverShorterDistance)
{
    // A 5x3 grid where the direct middle path needs two turns but a
    // longer straight path needs one: Dijkstra must pick by latency
    // (tturn = 10 tmove).
    LayoutGrid g(7, 3);
    for (int x = 0; x < 7; ++x) {
        g.set({x, 0}, MacroblockKind::FourWay);
        g.set({x, 2}, MacroblockKind::FourWay);
    }
    g.set({0, 1}, MacroblockKind::StraightChannel, true);
    g.set({6, 1}, MacroblockKind::StraightChannel, true);
    const auto cost = route(g, {0, 0}, {6, 2}, tech_);
    ASSERT_TRUE(cost.has_value());
    // Around: 6 east + turn + 2 south (or equivalent): 8 straights,
    // 1 turn = 18 us beats 2-turn alternatives of equal length.
    EXPECT_EQ(cost->turns, 1);
    EXPECT_EQ(cost->latency(tech_), usec(18));
}

TEST_F(RouteTest, UnreachableReturnsNullopt)
{
    LayoutGrid g(3, 1);
    g.set({0, 0}, MacroblockKind::StraightChannel, false);
    // gap at x=1
    g.set({2, 0}, MacroblockKind::StraightChannel, false);
    EXPECT_FALSE(route(g, {0, 0}, {2, 0}, tech_).has_value());
}

TEST_F(RouteTest, SameCellIsFree)
{
    LayoutGrid g(2, 1);
    g.set({0, 0}, MacroblockKind::FourWay);
    const auto cost = route(g, {0, 0}, {0, 0}, tech_);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(cost->moveOps(), 0);
}

TEST(Builders, DataRegionMatchesFigure10)
{
    const LayoutGrid region = buildDataQubitRegion();
    EXPECT_EQ(region.gateLocationCount(), 7);
    EXPECT_DOUBLE_EQ(dataQubitArea(), 7.0);
    // Every gate location must be reachable from the top-left
    // interconnect corner.
    const IonTrapParams tech;
    for (const Coord &gate : region.gateLocations()) {
        EXPECT_TRUE(route(region, {0, 0}, gate, tech).has_value());
    }
}

TEST(Builders, SimpleFactoryMatchesFigure11)
{
    const LayoutGrid factory = buildSimpleFactory();
    EXPECT_DOUBLE_EQ(factory.occupiedArea(), 90.0);
    EXPECT_EQ(factory.gateLocationCount(), 30); // 3 rows of 10
}

TEST(Builders, SimpleFactoryFullyRoutable)
{
    const LayoutGrid factory = buildSimpleFactory();
    const IonTrapParams tech;
    const auto gates = factory.gateLocations();
    // Every pair of gate locations must be mutually reachable.
    for (std::size_t i = 0; i < gates.size(); i += 7) {
        for (std::size_t j = 0; j < gates.size(); j += 5) {
            EXPECT_TRUE(
                route(factory, gates[i], gates[j], tech).has_value())
                << i << "->" << j;
        }
    }
}

TEST(Builders, CalibratedMovementIsReasonable)
{
    const LayoutGrid factory = buildSimpleFactory();
    const MovementModel model =
        calibrateMovement(factory, IonTrapParams::paper());
    // Adjacent gate rows are three cells apart; expect a handful of
    // moves and a couple of turns per two-qubit interaction.
    EXPECT_GE(model.movesPerCx, 2);
    EXPECT_LE(model.movesPerCx, 8);
    EXPECT_GE(model.turnsPerCx, 1);
    EXPECT_LE(model.turnsPerCx, 4);
}

} // namespace
} // namespace qc
