/**
 * @file
 * Tests for the [[7,1,3]] code tables, the encoder schedule, the
 * fault-tolerance property of the verification operator, and the
 * encoded-operation model.
 *
 * The encoder/stabilizer checks use the dense state-vector
 * simulator: the Fig 3b circuit must produce a +1 eigenstate of all
 * six stabilizer generators and of logical Z.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "codes/ConcatenatedCode.hh"
#include "codes/EncodedOp.hh"
#include "codes/SteaneCode.hh"
#include "kernels/StateVector.hh"

namespace qc {
namespace {

using Mask = SteaneCode::Mask;

TEST(Steane, SyndromeOfSingleErrors)
{
    for (int q = 0; q < 7; ++q) {
        const Mask e = static_cast<Mask>(1u << q);
        EXPECT_EQ(SteaneCode::syndromeOf(e),
                  static_cast<unsigned>(q + 1));
    }
}

TEST(Steane, SyndromeOfStabilizersIsTrivial)
{
    for (Mask s : SteaneCode::stabilizers)
        EXPECT_EQ(SteaneCode::syndromeOf(s), 0u);
    EXPECT_EQ(SteaneCode::syndromeOf(SteaneCode::logicalMask), 0u);
}

TEST(Steane, CorrectionInvertsSingleErrors)
{
    for (int q = 0; q < 7; ++q) {
        const Mask e = static_cast<Mask>(1u << q);
        const Mask c =
            SteaneCode::correctionFor(SteaneCode::syndromeOf(e));
        EXPECT_EQ(c, e);
    }
}

TEST(Steane, SingleErrorsAreCorrectable)
{
    EXPECT_FALSE(SteaneCode::uncorrectable(0));
    for (int q = 0; q < 7; ++q) {
        EXPECT_FALSE(SteaneCode::uncorrectable(
            static_cast<Mask>(1u << q)));
    }
}

TEST(Steane, DoubleErrorsAreUncorrectable)
{
    // Distance 3: every weight-2 error decodes to a logical.
    for (int a = 0; a < 7; ++a) {
        for (int b = a + 1; b < 7; ++b) {
            const Mask e =
                static_cast<Mask>((1u << a) | (1u << b));
            EXPECT_TRUE(SteaneCode::uncorrectable(e))
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Steane, StabilizersAreNotErrors)
{
    for (Mask s : SteaneCode::stabilizers) {
        EXPECT_FALSE(SteaneCode::uncorrectable(s));
        EXPECT_EQ(SteaneCode::cosetMinWeight(s), 0);
    }
}

TEST(Steane, LogicalIsUncorrectable)
{
    EXPECT_TRUE(SteaneCode::uncorrectable(SteaneCode::logicalMask));
    EXPECT_TRUE(SteaneCode::badCoset(SteaneCode::logicalMask));
    EXPECT_EQ(SteaneCode::cosetMinWeight(SteaneCode::logicalMask), 3);
}

TEST(Steane, CosetWeightExamples)
{
    EXPECT_EQ(SteaneCode::cosetMinWeight(0), 0);
    EXPECT_EQ(SteaneCode::cosetMinWeight(Mask{0b0000011}), 2);
    // A stabilizer row missing one qubit is coset-equivalent to a
    // single error.
    const Mask row = SteaneCode::stabilizers[0];
    const Mask almost = static_cast<Mask>(row & ~Mask{1});
    EXPECT_EQ(SteaneCode::cosetMinWeight(almost), 1);
    EXPECT_FALSE(SteaneCode::badCoset(almost));
}

TEST(Steane, VerifyMaskIsLogicalZRepresentative)
{
    EXPECT_EQ(SteaneCode::syndromeOf(SteaneCode::verifyMask), 0u);
    EXPECT_TRUE(SteaneCode::parity(SteaneCode::verifyMask));
    EXPECT_EQ(__builtin_popcount(SteaneCode::verifyMask), 3);
}

TEST(Steane, ParityAwareFixLeavesStabilizerResidual)
{
    // The ApplyFix decode: for every possible readout word, the fix
    // matches both the Hamming syndrome and the logical parity, so
    // the residual is always a stabilizer — never a logical
    // operator. (The syndrome-only decode fails this for every
    // even-parity word with a non-trivial syndrome: it "completes"
    // a weight-2 error into a weight-3 logical.)
    for (unsigned e = 0; e < 128; ++e) {
        const auto m = static_cast<Mask>(e);
        const Mask fix = SteaneCode::fixFor(
            SteaneCode::syndromeOf(m), SteaneCode::parity(m));
        const auto residual = static_cast<Mask>(m ^ fix);
        EXPECT_EQ(SteaneCode::cosetMinWeight(residual), 0)
            << "readout=" << e;
        // The fix itself lives in the readout's coset.
        EXPECT_EQ(SteaneCode::syndromeOf(fix),
                  SteaneCode::syndromeOf(m));
        EXPECT_EQ(SteaneCode::parity(fix), SteaneCode::parity(m));
    }
    // Minimal weights per class: nothing, single flip, weight-2
    // even-parity pattern, weight-3 logical representative.
    EXPECT_EQ(SteaneCode::fixFor(0, false), 0);
    for (unsigned s = 1; s < 8; ++s) {
        EXPECT_EQ(__builtin_popcount(SteaneCode::fixFor(s, true)),
                  1);
        EXPECT_EQ(__builtin_popcount(SteaneCode::fixFor(s, false)),
                  2);
    }
    EXPECT_EQ(__builtin_popcount(SteaneCode::fixFor(0, true)), 3);
}

TEST(Steane, TransversalityClassification)
{
    // Section 2.1: CX, X, Y, Z, Phase, Hadamard transversal; pi/8
    // (and everything containing it) not.
    for (GateKind k : {GateKind::X, GateKind::Y, GateKind::Z,
                       GateKind::S, GateKind::Sdg, GateKind::H,
                       GateKind::CX, GateKind::CZ, GateKind::PrepZ,
                       GateKind::Measure}) {
        EXPECT_TRUE(SteaneCode::transversal(k)) << gateName(k);
    }
    for (GateKind k : {GateKind::T, GateKind::Tdg, GateKind::RotZ,
                       GateKind::CRotZ, GateKind::Toffoli}) {
        EXPECT_FALSE(SteaneCode::transversal(k)) << gateName(k);
    }
}

// ---------------------------------------------------------------
// Encoder circuit properties (state-vector level).
// ---------------------------------------------------------------

Circuit
encoderCircuit()
{
    Circuit c(7);
    for (int seed : SteaneCode::encoderSeeds)
        c.h(static_cast<Qubit>(seed));
    for (const auto &cx : SteaneCode::encoderCxs)
        c.cx(static_cast<Qubit>(cx.control),
             static_cast<Qubit>(cx.target));
    return c;
}

/** Apply X on every qubit in `mask`. */
void
applyXMask(Circuit &c, Mask mask)
{
    for (int q = 0; q < 7; ++q) {
        if (mask & (1u << q))
            c.x(static_cast<Qubit>(q));
    }
}

/** Apply Z on every qubit in `mask`. */
void
applyZMask(Circuit &c, Mask mask)
{
    for (int q = 0; q < 7; ++q) {
        if (mask & (1u << q))
            c.z(static_cast<Qubit>(q));
    }
}

TEST(SteaneEncoder, ProducesPlusOneEigenstateOfAllStabilizers)
{
    StateVector reference(7);
    reference.run(encoderCircuit());

    // X stabilizers.
    for (Mask s : SteaneCode::stabilizers) {
        Circuit c = encoderCircuit();
        applyXMask(c, s);
        StateVector sv(7);
        sv.run(c);
        EXPECT_NEAR(sv.overlap(reference), 1.0, 1e-9)
            << "X stabilizer " << int(s);
    }
    // Z stabilizers.
    for (Mask s : SteaneCode::stabilizers) {
        Circuit c = encoderCircuit();
        applyZMask(c, s);
        StateVector sv(7);
        sv.run(c);
        EXPECT_NEAR(sv.overlap(reference), 1.0, 1e-9)
            << "Z stabilizer " << int(s);
    }
}

TEST(SteaneEncoder, IsLogicalZeroState)
{
    StateVector reference(7);
    reference.run(encoderCircuit());
    // +1 eigenstate of logical Z (all-Z).
    Circuit c = encoderCircuit();
    applyZMask(c, SteaneCode::logicalMask);
    StateVector sv(7);
    sv.run(c);
    EXPECT_NEAR(sv.overlap(reference), 1.0, 1e-9);

    // Logical X flips it to an orthogonal state.
    Circuit cx = encoderCircuit();
    applyXMask(cx, SteaneCode::logicalMask);
    StateVector svx(7);
    svx.run(cx);
    EXPECT_NEAR(svx.overlap(reference), 0.0, 1e-9);
}

TEST(SteaneEncoder, RoundsActOnDisjointQubits)
{
    for (int round = 0; round < 3; ++round) {
        unsigned used = 0;
        for (const auto &cx : SteaneCode::encoderCxs) {
            if (cx.round != round)
                continue;
            const unsigned bits = (1u << cx.control)
                | (1u << cx.target);
            EXPECT_EQ(used & bits, 0u) << "round " << round;
            used |= bits;
        }
    }
}

/**
 * The fault-tolerance property behind the choice of verifyMask:
 * every X pattern reachable from a single X/Y fault anywhere in the
 * Basic-0 encoder must either be coset-equivalent to weight <= 1 or
 * anticommute with the verification operator (odd overlap). This is
 * the exhaustive single-fault enumeration promised in SteaneCode.hh.
 */
TEST(SteaneEncoder, SingleFaultXPatternsCaughtOrBenign)
{
    // Propagate an X error injected on qubit `fq` after `step` CX
    // rounds through the remaining rounds.
    for (int step = 0; step <= 3; ++step) {
        for (int fq = 0; fq < 7; ++fq) {
            Mask x = static_cast<Mask>(1u << fq);
            for (const auto &cx : SteaneCode::encoderCxs) {
                if (cx.round < step)
                    continue;
                if (x & (1u << cx.control))
                    x = static_cast<Mask>(x | (1u << cx.target));
            }
            const bool benign = !SteaneCode::badCoset(x);
            const bool caught = SteaneCode::parity(
                static_cast<Mask>(x & SteaneCode::verifyMask));
            EXPECT_TRUE(benign || caught)
                << "fault on q" << fq << " after round " << step
                << " escapes as pattern " << int(x);
        }
    }

    // Two-qubit X x X faults on each encoder CX, propagated through
    // the remaining rounds.
    for (std::size_t i = 0; i < SteaneCode::encoderCxs.size(); ++i) {
        const auto &site = SteaneCode::encoderCxs[i];
        Mask x = static_cast<Mask>((1u << site.control)
                                   | (1u << site.target));
        for (std::size_t j = i + 1; j < SteaneCode::encoderCxs.size();
             ++j) {
            const auto &cx = SteaneCode::encoderCxs[j];
            if (x & (1u << cx.control))
                x = static_cast<Mask>(x | (1u << cx.target));
        }
        const bool benign = !SteaneCode::badCoset(x);
        const bool caught = SteaneCode::parity(
            static_cast<Mask>(x & SteaneCode::verifyMask));
        EXPECT_TRUE(benign || caught)
            << "XX fault on CX " << i << " escapes as " << int(x);
    }
}

// ---------------------------------------------------------------
// Encoded-operation model.
// ---------------------------------------------------------------

class EncodedOpTest : public ::testing::Test
{
  protected:
    EncodedOpModel model_{IonTrapParams::paper()};

    static Gate
    gate1(GateKind kind)
    {
        Gate g;
        g.kind = kind;
        g.ops = {0, invalidQubit, invalidQubit};
        return g;
    }
};

TEST_F(EncodedOpTest, TransversalLatencies)
{
    EXPECT_EQ(model_.dataLatency(gate1(GateKind::H)), usec(1));
    EXPECT_EQ(model_.dataLatency(gate1(GateKind::Measure)), usec(50));
    Gate cx;
    cx.kind = GateKind::CX;
    cx.ops = {0, 1, invalidQubit};
    EXPECT_EQ(model_.dataLatency(cx), usec(10));
}

TEST_F(EncodedOpTest, QecInteractIs61Microseconds)
{
    // t2q + tmeas + t1q under Table 1.
    EXPECT_EQ(model_.qecInteractLatency(), usec(61));
}

TEST_F(EncodedOpTest, Pi8GateUsesInteractLatency)
{
    EXPECT_EQ(model_.dataLatency(gate1(GateKind::T)), usec(61));
    EXPECT_EQ(model_.dataLatency(gate1(GateKind::Tdg)), usec(61));
}

TEST_F(EncodedOpTest, ZeroPrepLatencyComposition)
{
    // encode (51+1+30) + verify (60) + two corrections (61 each).
    EXPECT_EQ(model_.zeroPrepLatency(), usec(264));
}

TEST_F(EncodedOpTest, Pi8PrepLongerThanZeroPrep)
{
    EXPECT_GT(model_.pi8PrepLatency(), model_.zeroPrepLatency());
}

TEST_F(EncodedOpTest, AncillaAccounting)
{
    EXPECT_EQ(model_.zeroAncillae(gate1(GateKind::H)), 2);
    EXPECT_EQ(model_.zeroAncillae(gate1(GateKind::T)), 2);
    EXPECT_EQ(model_.zeroAncillae(gate1(GateKind::Measure)), 0);
    EXPECT_EQ(model_.zeroAncillae(gate1(GateKind::PrepZ)), 1);
    EXPECT_EQ(model_.pi8Ancillae(gate1(GateKind::T)), 1);
    EXPECT_EQ(model_.pi8Ancillae(gate1(GateKind::Tdg)), 1);
    EXPECT_EQ(model_.pi8Ancillae(gate1(GateKind::H)), 0);
}

TEST_F(EncodedOpTest, QecFollowsUsefulGatesOnly)
{
    EXPECT_TRUE(model_.needsQec(GateKind::H));
    EXPECT_TRUE(model_.needsQec(GateKind::CX));
    EXPECT_TRUE(model_.needsQec(GateKind::T));
    EXPECT_FALSE(model_.needsQec(GateKind::Measure));
    EXPECT_FALSE(model_.needsQec(GateKind::PrepZ));
    EXPECT_FALSE(model_.needsQec(GateKind::PrepX));
}

TEST_F(EncodedOpTest, LoweredGatesRejected)
{
    EXPECT_DEATH(model_.dataLatency(gate1(GateKind::RotZ)),
                 "lowered");
}

TEST_F(EncodedOpTest, SymbolicInAlternativeTechnology)
{
    IonTrapParams fast;
    fast.t1q = usec(2);
    fast.t2q = usec(20);
    fast.tmeas = usec(100);
    fast.tprep = usec(10);
    EncodedOpModel m(fast);
    EXPECT_EQ(m.qecInteractLatency(), usec(122));
    EXPECT_EQ(m.dataLatency(gate1(GateKind::H)), usec(2));
}

// ---------------------------------------------------------------
// Recursive concatenation (ConcatenatedSteane). Closed-form values
// under the paper's Table 1/4 technology point.
// ---------------------------------------------------------------

TEST(ConcatenatedSteane, LevelValidation)
{
    EXPECT_NO_THROW(ConcatenatedSteane::validateLevel(1));
    EXPECT_NO_THROW(ConcatenatedSteane::validateLevel(2));
    EXPECT_THROW(ConcatenatedSteane::validateLevel(0),
                 std::invalid_argument);
    EXPECT_THROW(ConcatenatedSteane::validateLevel(3),
                 std::invalid_argument);
    try {
        ConcatenatedSteane::validateLevel(3);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The error must name the offending level and what is
        // modeled, so sweep configs fail loudly and clearly.
        const std::string what = e.what();
        EXPECT_NE(what.find("3"), std::string::npos);
        EXPECT_NE(what.find("level"), std::string::npos);
    }
}

TEST(ConcatenatedSteane, FootprintsGrowGeometrically)
{
    EXPECT_EQ(ConcatenatedSteane::physicalQubits(1), 7);
    EXPECT_EQ(ConcatenatedSteane::physicalQubits(2), 49);
    EXPECT_EQ(ConcatenatedSteane::tileArea(1), 1.0);
    EXPECT_EQ(ConcatenatedSteane::tileArea(2),
              static_cast<Area>(
                  ConcatenatedSteane::areaScalePerLevel));
}

TEST(ConcatenatedSteane, LevelOneEffectiveTechIsPhysical)
{
    const IonTrapParams tech = IonTrapParams::paper();
    const IonTrapParams eff =
        ConcatenatedSteane::effectiveTech(tech, 1);
    EXPECT_EQ(eff.t1q, tech.t1q);
    EXPECT_EQ(eff.t2q, tech.t2q);
    EXPECT_EQ(eff.tmeas, tech.tmeas);
    EXPECT_EQ(eff.tprep, tech.tprep);
    EXPECT_EQ(eff.tmove, tech.tmove);
    EXPECT_EQ(eff.tturn, tech.tturn);
}

TEST(ConcatenatedSteane, LevelTwoEffectiveTechClosedForm)
{
    // One recursion step under Table 1/4: qec(1) = 61 us, so
    // t1q(2) = 1 + 61, t2q(2) = 10 + 61; measurement is transversal
    // (decode is classical); a fresh level-1 zero is the full
    // Fig 4c rebuild (264 us); moves scale with the tile.
    const IonTrapParams eff = ConcatenatedSteane::effectiveTech(
        IonTrapParams::paper(), 2);
    EXPECT_EQ(eff.t1q, usec(62));
    EXPECT_EQ(eff.t2q, usec(71));
    EXPECT_EQ(eff.tmeas, usec(50));
    EXPECT_EQ(eff.tprep, usec(264));
    EXPECT_EQ(eff.tmove,
              ConcatenatedSteane::moveScalePerLevel * usec(1));
    EXPECT_EQ(eff.tturn, usec(10));
}

TEST(ConcatenatedSteane, LevelTwoEncodedOpModelComposes)
{
    // EncodedOpModel over the effective tech prices level-2 ops
    // with its unmodified formulas: qec(2) = 71 + 50 + 62 = 183 us,
    // and the level-2 zero prep is the Fig 4c schedule at level-2
    // latencies: 264 + 62 + 3*71 + (71+50) + 2*183 = 1026 us.
    const EncodedOpModel m2(ConcatenatedSteane::effectiveTech(
        IonTrapParams::paper(), 2));
    EXPECT_EQ(m2.qecInteractLatency(), usec(183));
    EXPECT_EQ(m2.zeroPrepLatency(), usec(1026));
    EXPECT_GT(m2.pi8PrepLatency(), m2.zeroPrepLatency());
}

TEST(ConcatenatedSteane, StepUpIsMonotoneInEveryLatency)
{
    const IonTrapParams t1 = IonTrapParams::paper();
    const IonTrapParams t2 = ConcatenatedSteane::stepUp(t1);
    EXPECT_GT(t2.t1q, t1.t1q);
    EXPECT_GT(t2.t2q, t1.t2q);
    EXPECT_GE(t2.tmeas, t1.tmeas);
    EXPECT_GT(t2.tprep, t1.tprep);
    EXPECT_GT(t2.tmove, t1.tmove);
}

} // namespace
} // namespace qc
